# Make targets mirror exactly what CI runs (.github/workflows/ci.yml) so
# humans and the workflow can never drift apart.

GO      ?= go
SCALE   ?= mid
WORKERS ?= 0

.PHONY: all build test race bench fmt vet lint sweep

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Bench smoke: one iteration of every bench, so regressions in the bench
# harness itself surface quickly, plus a machine-readable record of the
# run appended to the BENCH_<n>.json perf trajectory (see cmd/benchjson).
# Full runs: `go test -bench=. -benchmem .`
# -timeout 40m: the root package's large-N tiers (BenchmarkLargeN +
# BenchmarkParallelLargeN) legitimately run ~15 min even at one
# iteration each; go test's default 10 min per-package limit would kill
# the run mid-bench.
bench:
	@$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem -timeout 40m ./... > bench.out 2>&1; \
	st=$$?; cat bench.out; \
	if [ $$st -ne 0 ]; then echo "bench failed; output kept in bench.out" >&2; exit $$st; fi; \
	$(GO) run ./cmd/benchjson -in bench.out && rm -f bench.out

# The analyzer fixtures under internal/analysis/testdata are deliberately
# pathological source and sit outside the repo's gofmt gate (the go tool
# already skips testdata directories for build/vet/test on its own).
fmt:
	@out=$$(gofmt -l . | grep -v '^internal/analysis/testdata/' || true); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# slrlint: the repo's determinism analyzers (internal/analysis) behind
# the go vet unitchecker protocol. Zero unsuppressed diagnostics is the
# bar; deliberate exceptions carry //slrlint:allow <analyzer> <reason>.
lint:
	$(GO) build -o bin/slrlint ./cmd/slrlint
	$(GO) vet -vettool=$(CURDIR)/bin/slrlint ./...

# Regenerate the paper's Table I and Figures 3-7 on the work-stealing
# runner. SCALE=full for the paper's exact setup (hours of CPU). -force:
# re-running the target deliberately regenerates the results files (the
# binary otherwise refuses to clobber a non-empty sweep output).
sweep:
	$(GO) run ./cmd/experiments -scale $(SCALE) -workers $(WORKERS) -force \
		-jsonl results-$(SCALE).jsonl -csv results-$(SCALE).csv

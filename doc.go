// Package slr reproduces "Loop-Free Routing Using a Dense Label Set in
// Wireless Networks" (Mosko and Garcia-Luna-Aceves, ICDCS 2004): the Split
// Label Routing framework, the SRP protocol, the four baseline protocols of
// the paper's evaluation (AODV, DSR, LDR, OLSR), and the discrete-event
// wireless simulation substrate the evaluation runs on.
//
// The paper's primary contribution lives in internal/core (the SLR
// framework), internal/frac and internal/label (the dense proper-fraction
// ordinal set), and internal/routing/srp (the SRP protocol). The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's §V; cmd/experiments prints them as text tables.
//
// The evaluation substrate is built for scale: internal/sim is a
// zero-steady-state-allocation event kernel — a ladder-queue scheduler
// (amortized O(1) push/pop, FIFO on (time, seq) ties, differentially
// fuzzed against a reference heap) over pooled events with
// generation-checked timers — internal/radio finds audible sets
// through an incremental spatial grid index (O(neighbors) per
// transmission, byte-identical to the linear reference scan) with bulk
// epoch position refreshes, and
// internal/runner flattens the whole (protocol x pause x trial) grid into
// one job queue consumed by a work-stealing worker pool, streaming
// per-trial JSONL/CSV results as they complete. Identical seeds give
// identical results whatever the worker count — which is what lets a
// sweep span processes and crashes: -shard i/n runs a disjoint
// round-robin slice of the flattened jobs on each of n machines, -resume
// salvages the complete records of an interrupted JSONL (truncating a
// half-written tail) and re-runs only the trials whose identity key
// (protocol, pause, trial, seed) is absent, and cmd/slranalyze merges
// any number of shard files — de-duplicated on that key, short cells
// reported — into analysis output byte-identical to a single-process
// sweep. A failing emitter is disabled at its first error so the sweep
// finishes on the healthy sinks, and non-empty outputs are never
// clobbered without -resume or -force.
//
// The same determinism powers sweep-as-a-service: cmd/slrserve is an
// HTTP/JSON coordinator (internal/sweepd) that owns a sweep's flattened
// job list and leases identity-keyed job batches to pulling slrsim
// -worker processes over a versioned /v1 API whose payloads are exactly
// runner.Job and runner.Record — lease out (POST /v1/lease),
// acknowledge results as JSONL (POST /v1/records, salvage-validated and
// de-duplicated on the identity key), watch progress (GET /v1/status),
// and read the live merged analysis (GET /v1/report). A worker killed
// mid-batch loses nothing: its lease times out and the jobs return to
// the pool; every accepted record is checkpointed to the daemon's
// -jsonl file, which -resume salvages after a coordinator crash. The
// finished service's report and checkpoint are byte-identical to a
// single-process sweep of the same flags.
//
// That byte-identical contract is machine-enforced: internal/analysis
// holds four go/analysis analyzers — map-iteration order escaping into
// output or scheduling, wall-clock or global-rand use in sim-reachable
// code, float formatting outside the canonical runner.Key codec, and
// pooled values retained past their callback — which cmd/slrlint runs
// over the whole repo through go vet -vettool (make lint). Deliberate
// exceptions carry //slrlint:allow annotations with mandatory reasons.
//
// Workloads are declarative: internal/spec loads versioned JSON scenario
// files (see examples/scenarios/) that select every model by name from a
// registry — routing protocols (SRP, LDR, AODV, DSR, OLSR via
// internal/routing), mobility models (waypoint, static, gauss-markov,
// manhattan), traffic models (cbr, poisson, onoff), and radio propagation
// models (unit-disk, shadowing, rayleigh) — each with a validated
// parameter map. The routing registry's "protocol_params" section tunes
// protocol constants (hello/TC intervals, RREQ retry and TTL schedules,
// route lifetimes, SRP's label heuristics) per spec file, so
// protocol-parameter sweeps are ordinary scenario files; see
// examples/scenarios/aodv-aggressive.json. The paper's evaluation setup
// is the built-in "paper-default" spec; both cmd/slrsim and
// cmd/experiments take -spec, and -pparam overrides single constants.
//
// Measurement is a streaming pipeline: internal/metrics collects run
// totals, fixed-bucket log2 latency/hop histograms with exact
// bucket-bound percentiles, and a per-flow sent/recv/first-last-delivery
// ledger, all on an allocation-free per-packet path. Per-trial records
// are versioned and append-only ("schema": 2), and histogram merging is
// exact, so cmd/slranalyze reproduces Table I, every figure table, the
// latency-percentile table, and the shape verdicts from a sweep's JSONL
// alone — byte-identical to the in-process output, without re-simulating.
//
// The large-N tier keeps thousands-of-node scenarios tractable: OLSR's
// routing table and MPR set are cached behind structure versions and
// expiry horizons and rebuild into preallocated storage (allocation-free
// in steady state, byte-identical per seed — see internal/routing/olsr),
// its duplicate cache and neighbor/topology sweeps are expiry-ordered
// and horizon-gated, the MAC's steady-state path allocates nothing, and
// the radio channel's spatial grid amortizes position refreshes at
// N=5000 (BenchmarkChannelTransmitLargeN). The tier has its own
// reference scenarios (examples/scenarios/manhattan-5000.json and
// manhattan-20000.json), bench family (BenchmarkLargeN, through
// N=20000), and a timeboxed 20000-node CI smoke. cmd/slrsim's
// -cpuprofile and -memprofile flags make the next outlier one flag
// away.
//
// The kernel itself executes in two phases — extraction pops the whole
// batch of minimum-timestamp events in seq order, application fires it —
// and that split carries an opt-in parallel mode (Simulator.SetWorkers,
// slrsim -parallel): events tagged with spatial conflict keys derived
// from the radio grid are partitioned into provably disjoint groups per
// same-timestamp window, fanned across a bounded worker pool, and their
// staged kernel effects merged back in deterministic batch-rank order.
// Untagged events are full barriers, so worker count changes wall-clock
// only: output stays byte-identical to serial per seed, enforced by a
// serial-vs-parallel replay gate over all five protocols and a
// differential fuzz harness in internal/sim.
//
// The routing control plane shares one toolkit: internal/routing/rcommon
// owns the drop-reason vocabulary, discovery queues with retry and
// hold-down bookkeeping, RREQ/RERR rate limiters, the periodic beaconer,
// the hello/link-liveness neighbor table, and duplicate-flood
// suppression. internal/routing/rtest's conformance suite runs every
// registered protocol through a shared contract: quiet before Start,
// idempotent Start, deterministic replay at any worker count, and drops
// only from the canonical vocabulary.
package slr

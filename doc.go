// Package slr reproduces "Loop-Free Routing Using a Dense Label Set in
// Wireless Networks" (Mosko and Garcia-Luna-Aceves, ICDCS 2004): the Split
// Label Routing framework, the SRP protocol, the four baseline protocols of
// the paper's evaluation (AODV, DSR, LDR, OLSR), and the discrete-event
// wireless simulation substrate the evaluation runs on.
//
// The paper's primary contribution lives in internal/core (the SLR
// framework), internal/frac and internal/label (the dense proper-fraction
// ordinal set), and internal/routing/srp (the SRP protocol). The
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's §V; cmd/experiments prints them as text tables.
package slr

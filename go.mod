module slr

go 1.24

module slr

go 1.24

// x/tools backs the slrlint determinism analyzers (internal/analysis,
// cmd/slrlint). The vendor/ tree is the source of truth: it holds the
// exact go/analysis subset shipped in this Go toolchain's cmd/vendor,
// so builds never need the network.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

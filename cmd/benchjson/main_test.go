package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: slr
cpu: Intel(R) Xeon(R)
BenchmarkTable1/SRP-8         	       1	 816529 ns/op	     0.93 deliv-ratio	     0.52 net-load	  123 B/op	       4 allocs/op
BenchmarkMediant-8            	     100	      11.5 ns/op	       0 B/op	       0 allocs/op
some unrelated line
PASS
ok  	slr	1.2s
`

func TestParse(t *testing.T) {
	benches, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkTable1/SRP" || b.Iterations != 1 || b.NsPerOp != 816529 {
		t.Fatalf("first bench = %+v", b)
	}
	if b.AllocsPerOp != 4 || b.BytesPerOp != 123 {
		t.Fatalf("allocs/bytes = %v/%v", b.AllocsPerOp, b.BytesPerOp)
	}
	if b.Metrics["deliv-ratio"] != 0.93 || b.Metrics["net-load"] != 0.52 {
		t.Fatalf("metrics = %v", b.Metrics)
	}
	if benches[1].NsPerOp != 11.5 || benches[1].Metrics != nil {
		t.Fatalf("second bench = %+v", benches[1])
	}
}

func TestNextPathSequence(t *testing.T) {
	dir := t.TempDir()
	p, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_1.json" {
		t.Fatalf("first path = %s", p)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_07.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_8.json" {
		t.Fatalf("next path = %s, want BENCH_8.json", p)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-dir", dir}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 || rep.GOOS == "" || rep.GoVersion == "" {
		t.Fatalf("report = %+v", rep)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.out")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", in, "-dir", dir}); err == nil {
		t.Fatal("empty bench input accepted")
	}
}

// Command benchjson converts `go test -bench` text output into a
// machine-readable benchmark record, written to the next free
// BENCH_<n>.json in the output directory. Committing these files turns
// `make bench` runs into a perf trajectory: BENCH_1.json is the state of
// the repo when the file was committed, BENCH_2.json the next measured
// state, and so on — diffable, plottable, and immune to the formatting of
// the bench text.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... > bench.out
//	benchjson -in bench.out
//	benchjson -in bench.out -out my-results.json   # explicit path
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries every other "<value> <unit>" pair on the line —
	// the custom b.ReportMetric values (deliv-ratio, net-load, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level record.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// benchLine matches "BenchmarkName-8  <iters>  <pairs...>", stripping the
// -GOMAXPROCS suffix so records compare across machines. Go omits that
// suffix when GOMAXPROCS=1, so a benchmark whose own name ends in
// "-<digits>" would be truncated inconsistently — name sub-benchmarks
// "N=500", not "-500".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse extracts benchmark results from go test output.
func Parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[fields[i+1]] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// NextPath returns dir/BENCH_<n>.json for the smallest n (starting at 1)
// past every existing BENCH_<k>.json, so each run extends the trajectory.
func NextPath(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	seq := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	max := 0
	for _, e := range entries {
		if m := seq.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n > max {
				max = n
			}
		}
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", max+1)), nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	var (
		in  = fs.String("in", "", "bench output file to parse (default stdin)")
		out = fs.String("out", "", "output path (default: next BENCH_<n>.json in -dir)")
		dir = fs.String("dir", ".", "directory for auto-numbered output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	benches, err := Parse(src)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	path := *out
	if path == "" {
		if path, err = NextPath(*dir); err != nil {
			return err
		}
	}
	rep := Report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(benches), path)
	return nil
}

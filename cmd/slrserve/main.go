// Command slrserve is the sweep coordinator daemon: sweep-as-a-service
// for the paper's evaluation. It owns one sweep's flattened job list —
// the paper grid at a -scale, or one -spec scenario's trial list — and
// serves the /v1 API that slrsim -worker pulls:
//
//	POST /v1/lease    lease a batch of fully parameterized jobs
//	POST /v1/records  acknowledge results (JSONL, the -jsonl schema)
//	GET  /v1/status   live progress counters
//	GET  /v1/report   merged analysis of the records so far
//
// Every accepted record is checkpointed to the -jsonl file; kill the
// daemon and restart it with -resume and it salvages the checkpoint,
// marks the finished trials done, and leases out only the rest. A worker
// that dies mid-batch loses nothing: its lease expires (-lease) and the
// jobs return to the pool. Determinism makes the result independent of
// who ran what — the finished sweep's report and checkpoint are
// byte-identical to a single-process run of the same flags.
//
// -shard i/n serves only that slice of the job list, so several
// coordinators can split a grid the same way sweep processes do.
//
// Example:
//
//	slrserve -scale mid -jsonl grid.jsonl                # paper grid
//	slrserve -spec paper-default -trials 10 -jsonl t.jsonl
//	slrserve -resume -scale mid -jsonl grid.jsonl        # after a crash
//	slrsim -worker http://localhost:8356 -batch 2        # on each machine
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"slr/internal/experiments"
	"slr/internal/routing"
	"slr/internal/runner"
	"slr/internal/runner/sweepcli"
	"slr/internal/scenario"
	"slr/internal/spec"
	"slr/internal/sweepd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slrserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slrserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":8356", "listen address for the /v1 API")
		scaleName = fs.String("scale", "mid", "serve the paper grid at this scale: full, mid, small")
		specArg   = fs.String("spec", "", "serve one scenario spec's trial list (path or built-in name) instead of the paper grid")
		trials    = fs.Int("trials", 0, "override trials (0 = scale or spec default)")
		seed      = fs.Int64("seed", 1, "base random seed")
		lease     = fs.Duration("lease", 5*time.Minute, "lease timeout: how long a worker may hold a batch unacknowledged before it returns to the pool")
	)
	cli := sweepcli.Register(fs, false)
	protoParams := routing.ParamsFlag{}
	fs.Var(protoParams, "pparam", "with -spec: protocol parameter override `name=value` (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cli.Validate(); err != nil {
		return err
	}
	if cli.JSONL == "" {
		return fmt.Errorf("-jsonl is required: it is the coordinator's checkpoint, the file a restarted -resume run and the final analysis read")
	}
	if len(protoParams) > 0 && *specArg == "" {
		return fmt.Errorf("-pparam requires -spec (the paper grid runs every protocol at its published constants)")
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	// Build the flattened job list exactly as the single-process binaries
	// would, before touching the checkpoint file: a bad spec or scale must
	// not truncate existing results.
	var (
		jobs  []runner.Job
		opts  sweepd.Options
		descr string
	)
	if *specArg != "" {
		s, err := spec.Resolve(*specArg)
		if err != nil {
			return err
		}
		p, err := s.Params()
		if err != nil {
			return err
		}
		if len(protoParams) > 0 {
			p.ProtoParams = routing.MergeParams(p.ProtoParams, protoParams)
			if err := routing.Validate(routing.Spec{Name: string(p.Protocol), Params: p.ProtoParams}); err != nil {
				return err
			}
		}
		if seedSet {
			p.Seed = *seed
		}
		n := *trials
		if n <= 0 {
			n = s.TrialCount()
		}
		jobs = runner.TrialJobs(p, n)
		descr = fmt.Sprintf("spec %s: %s, %d trials", *specArg, p.Protocol, n)
	} else {
		scale, err := experiments.ScaleByName(*scaleName)
		if err != nil {
			return err
		}
		if *trials > 0 {
			scale.Trials = *trials
		}
		jobs = runner.GridJobs(scenario.AllProtocols, experiments.PauseFractions,
			scale.Trials, *seed, scale.Params)
		opts.Scale = &scale
		descr = fmt.Sprintf("%s-scale grid: %d protocols x %d pauses x %d trials",
			scale.Name, len(scenario.AllProtocols), len(experiments.PauseFractions), scale.Trials)
	}
	jobs = cli.Shard.Select(jobs)

	out, err := cli.Open(os.Stderr)
	if err != nil {
		return err
	}
	defer out.Close()
	// The coordinator checkpoints through the -jsonl file directly and
	// seeds its lease table from the salvaged records — the shared resume
	// pipeline's skip-set, expressed as "already done" instead of "not in
	// the job list", so /v1/status and /v1/report cover the whole sweep.
	opts.LeaseTimeout = *lease
	opts.Checkpoint = out.JSONLFile
	opts.Salvaged = out.Salvaged
	c, err := sweepd.New(jobs, opts)
	if err != nil {
		return err
	}

	st := c.Status()
	fmt.Fprintf(os.Stderr, "slrserve: %s; %d jobs (%d already done), lease %v\n",
		descr, st.Total, st.Done, *lease)
	if cli.Shard.Count > 1 {
		fmt.Fprintf(os.Stderr, "shard %s: serving a 1/%d slice of the job list\n", cli.Shard, cli.Shard.Count)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "listening on %s (POST %s, POST %s, GET %s, GET %s)\n",
		ln.Addr(), sweepd.PathLease, sweepd.PathRecords, sweepd.PathStatus, sweepd.PathReport)
	if onListen != nil {
		onListen(ln.Addr())
	}
	return http.Serve(ln, sweepd.NewHandler(c))
}

// onListen, when set (tests), receives the bound address once the /v1
// surface is up.
var onListen func(net.Addr)

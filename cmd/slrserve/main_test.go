package main

import (
	"errors"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slr/internal/runner"
	"slr/internal/sweepd"
)

// TestFlagValidation pins the refusals that must fire before the
// checkpoint file is touched.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{}, "-jsonl is required"},
		{[]string{"-jsonl", "x.jsonl", "-resume", "-scale", "nope"}, "scale"},
		{[]string{"-jsonl", "x.jsonl", "-pparam", "ttl_0=30"}, "-pparam requires -spec"},
		{[]string{"-jsonl", "x.jsonl", "-spec", "no-such-spec"}, "no-such-spec"},
		{[]string{"-resume"}, "-resume needs -jsonl"},
	}
	for _, c := range cases {
		err := run(c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) = %v, want error containing %q", c.args, err, c.want)
		}
	}
}

// TestServeTinySpec boots the real daemon on a loopback port with the
// tiny-smoke spec, drains it with two workers — one crashing after its
// first lease, exercising lease expiry end to end through the CLI — and
// diffs the /v1/report bytes against the checked-in analyzer golden, the
// same bytes the single-process CI pipeline produces.
func TestServeTinySpec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	golden, err := os.ReadFile("../../testdata/tiny-smoke-analyze.golden")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	addrCh := make(chan net.Addr, 1)
	onListen = func(a net.Addr) { addrCh <- a }
	defer func() { onListen = nil }()
	go func() {
		err := run([]string{
			"-addr", "127.0.0.1:0",
			"-spec", "../../examples/scenarios/tiny-smoke.json",
			"-trials", "2", "-lease", "250ms", "-jsonl", path,
		})
		if err != nil {
			t.Errorf("daemon: %v", err)
		}
	}()
	var addr net.Addr
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}
	url := "http://" + addr.String()

	// Worker one leases a batch and dies without acknowledging (the
	// in-process stand-in for -crash-after-lease's exit 137); worker two
	// outlives the lease and finishes everything.
	crashed := errors.New("kill -9")
	victim := &sweepd.Worker{URL: url, ID: "victim", Batch: 1,
		OnLease: func([]runner.Job) error { return crashed }}
	if err := victim.Run(); !errors.Is(err, crashed) {
		t.Fatalf("victim exited with %v, want its crash", err)
	}
	survivor := &sweepd.Worker{URL: url, ID: "survivor", Batch: 2,
		Poll: 50 * time.Millisecond, Backoff: 10 * time.Millisecond}
	if err := survivor.Run(); err != nil {
		t.Fatalf("survivor: %v", err)
	}

	resp, err := http.Get(url + sweepd.PathReport + "?report=trials")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(report) != string(golden) {
		t.Fatalf("daemon report diverged from the golden:\n--- golden ---\n%s--- daemon ---\n%s",
			golden, report)
	}

	// The checkpoint file feeds slranalyze to the identical bytes: it is
	// the same merge entry point; just confirm the records parse and
	// cover the sweep.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := runner.ReadRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	if deduped, _ := runner.DedupRecords(recs); len(deduped) != 2 {
		t.Fatalf("checkpoint covers %d trials, want 2", len(deduped))
	}
}

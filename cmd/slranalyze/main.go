// Command slranalyze regenerates the paper's evaluation artifacts from a
// sweep's per-trial JSONL stream alone — no re-simulation. A full-scale
// sweep (400 runs, hours of CPU) is run once with -jsonl; every table,
// CI, percentile merge, and shape verdict is then recomputed offline in
// milliseconds, with protocol filters and report selection, and the
// output is byte-identical to what the in-process sweep printed.
//
// -in repeats, so a sweep split across processes with -shard merges here:
// records from all inputs are concatenated, de-duplicated on the
// (protocol, pause, trial, seed) identity key (duplicates are reported to
// stderr, first occurrence wins — determinism makes the copies
// identical), and analyzed as one sweep, byte-identical to a
// single-process run of the same grid. Grid reports also name any cells
// the merge left short of the scale's trial count — the check that no
// shard went missing. Files with a truncated tail (a killed writer)
// contribute their complete records.
//
// Grid reports (-report all, table1, fig3..fig7, percentiles, shape)
// need -scale to map each record's pause time back to its grid cell and
// to label the tables; records whose pause matches no grid point at that
// scale are counted to stderr and left out. -report trials needs no
// scale: it groups records by (protocol, pause) as they are and prints
// each group's trial summary, which also fits single-spec runs
// (cmd/experiments -spec ... -jsonl).
//
// Example:
//
//	experiments -scale full -workers 0 -jsonl full.jsonl   # hours, once
//	slranalyze -in full.jsonl -scale full                  # ms, repeatable
//	slranalyze -in full.jsonl -scale full -report table1 -protos SRP,LDR
//	slranalyze -in tiny.jsonl -report trials
//	slranalyze -in shard1.jsonl -in shard2.jsonl -scale full   # shard merge
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"slr/internal/experiments"
	"slr/internal/runner"
	"slr/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "slranalyze:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("slranalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var inputs inputList
	fs.Var(&inputs, "in", "sweep JSONL `file` (repeatable to merge shards; \"-\" = stdin; default \"-\")")
	var (
		scaleName = fs.String("scale", "mid", "scale the sweep ran at: full, mid, small (grid reports)")
		trials    = fs.Int("trials", 0, "trials per grid point the sweep ran with, if it overrode the scale default (0 = scale default); sets the missing-cell expectation")
		report    = fs.String("report", "all", "report: all, table1, fig3..fig7, percentiles, shape, trials")
		protos    = fs.String("protos", "", "comma-separated protocol filter (default: all present)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(inputs) == 0 {
		inputs = inputList{"-"}
	}

	var recs []runner.Record
	stdinUsed := false
	for _, in := range inputs {
		var r io.Reader = stdin
		if in == "-" {
			// A second "-" would read an already-drained stream and
			// silently contribute nothing.
			if stdinUsed {
				return fmt.Errorf(`stdin ("-") given more than once`)
			}
			stdinUsed = true
		} else {
			f, err := os.Open(in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		fileRecs, err := runner.ReadRecords(r)
		if err != nil {
			// A sweep killed mid-write leaves a truncated trailing line;
			// the complete records before it are exactly what this tool
			// exists to salvage without re-simulating. Analyze them and
			// say what broke.
			if len(fileRecs) == 0 {
				return fmt.Errorf("reading %s: %w", in, err)
			}
			fmt.Fprintf(stderr, "slranalyze: %s: %v after %d complete records; analyzing those\n",
				in, err, len(fileRecs))
		}
		recs = append(recs, fileRecs...)
	}
	// Shard outputs and resumed files can repeat a trial; the identity key
	// (protocol, pause, trial, seed) spots the copies, which determinism
	// guarantees are identical. Report the count so a double-fed file is
	// visible, then analyze as if the sweep had run in one process.
	recs, dups := runner.DedupRecords(recs)
	if dups > 0 {
		fmt.Fprintf(stderr, "slranalyze: %d duplicate records dropped (same protocol/pause/trial/seed)\n", dups)
	}
	if *protos != "" {
		recs = filterProtos(recs, *protos)
	}
	if len(recs) == 0 {
		return fmt.Errorf("no records to analyze (after filters)")
	}

	// One merge for every report shape: grouping, ordering, and dedup all
	// come from the shared entry point, so this output stays byte-identical
	// to the live sweep's and to the coordinator's /v1/report.
	merged := experiments.MergeRecords(recs)

	if *report == "trials" {
		fmt.Fprint(stdout, merged.TrialsReport())
		return nil
	}

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *trials > 0 {
		// Mirror the sweep's own -trials override so the missing-cell
		// check expects what actually ran, not the scale's default.
		scale.Trials = *trials
	}
	grid, leftover := merged.Grid(scale)
	if len(leftover) > 0 {
		fmt.Fprintf(stderr, "slranalyze: %d of %d records match no %s-scale pause time (wrong -scale? try -report trials); analyzing the rest\n",
			len(leftover), len(recs), scale.Name)
		if len(leftover) == len(recs) {
			return fmt.Errorf("no records left to analyze")
		}
	}
	// A merged shard set short of the scale's trial count means a shard
	// (or the tail of a resume) is missing, and an over-full cell means
	// records from different sweeps were mixed — name the anomalies
	// rather than letting skewed CIs pass for a complete sweep. The check
	// is -protos-safe: MissingCells judges only the protocols the
	// (filtered) grid actually holds.
	if missing := grid.MissingCells(); len(missing) > 0 {
		fmt.Fprintf(stderr, "slranalyze: %d grid cells deviate from %d trials (missing shard, unfinished resume, or mixed sweeps? a sweep run with -trials needs the same flag here):\n",
			len(missing), scale.Trials)
		for _, m := range missing {
			fmt.Fprintln(stderr, "  "+m)
		}
	}

	switch *report {
	case "all":
		fmt.Fprintln(stdout, grid.Report())
	case "table1":
		fmt.Fprintln(stdout, grid.Table1())
	case "percentiles":
		fmt.Fprintln(stdout, grid.LatencyPercentileTable())
	case "shape":
		fmt.Fprintln(stdout, grid.ShapeReport())
	default:
		m := experiments.MetricByName[*report]
		if m == nil {
			return fmt.Errorf("unknown report %q", *report)
		}
		fmt.Fprintln(stdout, grid.FigureTable(*m))
	}
	return nil
}

// inputList collects repeated -in flags.
type inputList []string

func (l *inputList) String() string { return strings.Join(*l, ",") }

func (l *inputList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// filterProtos keeps records whose protocol is in the comma-separated
// list (case-insensitive).
func filterProtos(recs []runner.Record, list string) []runner.Record {
	keep := make(map[scenario.ProtocolName]bool)
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p != "" {
			keep[scenario.ProtocolName(strings.ToUpper(p))] = true
		}
	}
	var out []runner.Record
	for _, rec := range recs {
		if keep[scenario.ProtocolName(strings.ToUpper(rec.Protocol))] {
			out = append(out, rec)
		}
	}
	return out
}

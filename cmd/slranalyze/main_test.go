package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slr/internal/experiments"
	"slr/internal/runner"
	"slr/internal/scenario"
)

// TestReproducesSweepByteIdentically is the acceptance gate of the
// offline aggregator: run the small-scale sweep once in process,
// streaming JSONL exactly as `experiments -jsonl` does (completion order,
// all workers), then re-derive every report from the JSONL alone and
// compare byte for byte against what the live grid printed.
func TestReproducesSweepByteIdentically(t *testing.T) {
	var jsonl bytes.Buffer
	grid, err := experiments.SweepOpts(experiments.Small, scenario.AllProtocols, 1,
		experiments.SweepOptions{Emitters: []runner.Emitter{runner.NewJSONL(&jsonl)}})
	if err != nil {
		t.Fatal(err)
	}
	in := filepath.Join(t.TempDir(), "sweep.jsonl")
	if err := os.WriteFile(in, jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		report string
		want   string
	}{
		{"table1", grid.Table1()},
		{"shape", grid.ShapeReport()},
		{"percentiles", grid.LatencyPercentileTable()},
		{"fig4", grid.FigureTable(experiments.MetricDelivery)},
		{"fig7", grid.FigureTable(experiments.MetricSeqno)},
		{"all", grid.Report()},
	} {
		var out, errw bytes.Buffer
		err := run([]string{"-in", in, "-scale", "small", "-report", tc.report},
			strings.NewReader(""), &out, &errw)
		if err != nil {
			t.Fatalf("-report %s: %v", tc.report, err)
		}
		if got := out.String(); got != tc.want+"\n" {
			t.Errorf("-report %s differs from in-process sweep:\n--- offline ---\n%s--- live ---\n%s",
				tc.report, got, tc.want)
		}
		if errw.Len() != 0 {
			t.Errorf("-report %s: unexpected stderr (leftover records?):\n%s", tc.report, errw.String())
		}
	}

	// Protocol filtering drops the others' columns and turns their shape
	// claims into [n/a], never into verdict flips.
	var out, errw bytes.Buffer
	if err := run([]string{"-in", in, "-scale", "small", "-protos", "srp,ldr", "-report", "table1"},
		strings.NewReader(""), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); strings.Contains(got, "AODV") || !strings.Contains(got, "SRP") {
		t.Errorf("-protos filter not applied:\n%s", got)
	}
	out.Reset()
	if err := run([]string{"-in", in, "-scale", "small", "-protos", "SRP", "-report", "shape"},
		strings.NewReader(""), &out, &errw); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "[n/a]") || strings.Contains(got, "[FAIL]") {
		t.Errorf("shape report on filtered grid should mark comparisons n/a, not FAIL:\n%s", got)
	}
}

// TestShardUnionByteIdentical is the acceptance gate of sharded sweeps:
// split the same grid across 2 and then 4 shard processes, merge the
// shards' JSONL through slranalyze, and require output byte-identical to
// the single-process sweep's analysis — no duplicates, no missing cells,
// no stderr complaints.
func TestShardUnionByteIdentical(t *testing.T) {
	protos := []scenario.ProtocolName{scenario.SRP, scenario.OLSR}
	dir := t.TempDir()
	sweepTo := func(path string, shard runner.ShardSpec) {
		t.Helper()
		var buf bytes.Buffer
		_, err := experiments.SweepOpts(experiments.Small, protos, 1, experiments.SweepOptions{
			Shard:    shard,
			Emitters: []runner.Emitter{runner.NewJSONL(&buf)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	analyze := func(args []string) (string, string) {
		t.Helper()
		var out, errw bytes.Buffer
		if err := run(args, strings.NewReader(""), &out, &errw); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		return out.String(), errw.String()
	}

	single := filepath.Join(dir, "single.jsonl")
	sweepTo(single, runner.ShardSpec{})
	want, errw := analyze([]string{"-in", single, "-scale", "small"})
	if errw != "" {
		t.Fatalf("single-process analysis wrote stderr:\n%s", errw)
	}

	for _, shards := range []int{2, 4} {
		args := []string{"-scale", "small"}
		for i := 1; i <= shards; i++ {
			path := filepath.Join(dir, fmt.Sprintf("shard%d-of-%d.jsonl", i, shards))
			sweepTo(path, runner.ShardSpec{Index: i, Count: shards})
			args = append(args, "-in", path)
		}
		got, errw := analyze(args)
		if got != want {
			t.Errorf("%d-shard merge differs from single-process analysis:\n--- merged ---\n%s--- single ---\n%s",
				shards, got, want)
		}
		if errw != "" {
			t.Errorf("%d-shard merge wrote stderr (dups? missing cells?):\n%s", shards, errw)
		}
	}

	// Feeding one shard twice alongside the rest must dedup (with a stderr
	// note), not double that shard's weight in every mean.
	args := []string{"-scale", "small",
		"-in", filepath.Join(dir, "shard1-of-2.jsonl"),
		"-in", filepath.Join(dir, "shard1-of-2.jsonl"),
		"-in", filepath.Join(dir, "shard2-of-2.jsonl")}
	got, errw := analyze(args)
	if got != want {
		t.Errorf("double-fed shard changed the analysis:\n%s", got)
	}
	if !strings.Contains(errw, "duplicate records dropped") {
		t.Errorf("double-fed shard not reported:\n%s", errw)
	}

	// A lost shard: the analysis proceeds but the holes are named.
	_, errw = analyze([]string{"-scale", "small", "-in", filepath.Join(dir, "shard1-of-2.jsonl")})
	if !strings.Contains(errw, "cells deviate") {
		t.Errorf("missing shard not reported:\n%s", errw)
	}
}

// TestTrialsReportFromStdin covers the scale-free grouping path on a
// hand-built JSONL stream fed through stdin, out of trial order.
func TestTrialsReportFromStdin(t *testing.T) {
	lines := `{"protocol":"LDR","pause_seconds":30,"trial":1,"seed":2,"delivery_ratio":0.8,"network_load":1.5,"latency_sec":0.02,"data_sent":10,"data_recv":8,"schema":2}
{"protocol":"SRP","pause_seconds":30,"trial":0,"seed":1,"delivery_ratio":1,"network_load":0.5,"latency_sec":0.01,"data_sent":10,"data_recv":10,"schema":2}
{"protocol":"LDR","pause_seconds":30,"trial":0,"seed":1,"delivery_ratio":0.9,"network_load":null,"latency_sec":0.03,"data_sent":10,"data_recv":9,"schema":2}
`
	var out, errw bytes.Buffer
	if err := run([]string{"-report", "trials"}, strings.NewReader(lines), &out, &errw); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// Paper protocol order, not input order; the null network_load is
	// excluded and flagged, not averaged.
	if srp, ldr := strings.Index(got, "SRP pause=30s"), strings.Index(got, "LDR pause=30s"); srp < 0 || ldr < 0 || srp > ldr {
		t.Errorf("groups missing or misordered:\n%s", got)
	}
	if !strings.Contains(got, "(n/a in 1 of 2 trials)") {
		t.Errorf("null network_load not flagged:\n%s", got)
	}
}

func TestBadInputs(t *testing.T) {
	if err := run([]string{"-in", "/does/not/exist.jsonl"}, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("missing input file accepted")
	}
	if err := run([]string{"-report", "bogus"}, strings.NewReader(`{"protocol":"SRP","pause_seconds":0}`), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("unknown report accepted")
	}
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("empty input accepted")
	}
	// A doubled "-" would silently read a drained stdin the second time.
	if err := run([]string{"-in", "-", "-in", "-"},
		strings.NewReader(`{"protocol":"SRP","pause_seconds":0}`+"\n"), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("duplicate stdin input accepted")
	}
}

// Command experiments regenerates the paper's evaluation: Table I and
// Figures 3–7, by sweeping (protocol x pause time x trial) and printing
// text tables plus qualitative shape checks.
//
// The default -scale mid runs a half-size network that finishes in minutes
// on one machine while preserving the protocol ranking; -scale full runs
// the paper's exact 100-node / 30-flow / 900 s / 10-trial configuration
// (hours of CPU).
//
// Example:
//
//	experiments -scale mid -exp all
//	experiments -scale full -exp fig5 -trials 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"slr/internal/experiments"
	"slr/internal/runner"
	"slr/internal/scenario"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "mid", "experiment scale: full, mid, small")
		exp       = fs.String("exp", "all", "experiment: all, table1, fig3, fig4, fig5, fig6, fig7")
		trials    = fs.Int("trials", 0, "override trials per grid point (0 = scale default)")
		seed      = fs.Int64("seed", 1, "base random seed")
		quiet     = fs.Bool("quiet", false, "suppress per-run progress output")
		workers   = fs.Int("workers", 0, "worker goroutines for the sweep (0 = all CPUs)")
		jsonOut   = fs.String("json", "", "also write the raw grid as JSON to this file")
		jsonlOut  = fs.String("jsonl", "", "stream per-trial results as JSON lines to this file")
		csvOut    = fs.String("csv", "", "stream per-trial results as CSV to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *trials > 0 {
		scale.Trials = *trials
	}

	protos := scenario.AllProtocols
	var metric *experiments.Metric
	switch *exp {
	case "all", "table1":
	case "fig3":
		metric = &experiments.MetricMACDrops
	case "fig4":
		metric = &experiments.MetricDelivery
	case "fig5":
		metric = &experiments.MetricNetLoad
	case "fig6":
		metric = &experiments.MetricLatency
	case "fig7":
		metric = &experiments.MetricSeqno
		protos = []scenario.ProtocolName{scenario.SRP, scenario.LDR, scenario.AODV}
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}

	opts := experiments.SweepOptions{Workers: *workers}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	for _, stream := range []struct {
		path string
		mk   func(w *os.File) runner.Emitter
	}{
		{*jsonlOut, func(w *os.File) runner.Emitter { return runner.NewJSONL(w) }},
		{*csvOut, func(w *os.File) runner.Emitter { return runner.NewCSV(w) }},
	} {
		if stream.path == "" {
			continue
		}
		f, err := os.Create(stream.path)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.Emitters = append(opts.Emitters, stream.mk(f))
	}

	fmt.Fprintf(os.Stderr, "sweeping %s scale: %d nodes, %d flows, %v, %d trials x %d pauses x %d protocols\n",
		scale.Name, scale.Nodes, scale.Flows, scale.Duration, scale.Trials,
		len(experiments.PauseFractions), len(protos))
	start := time.Now()
	// An emitter failure (e.g. disk full under -jsonl) must not discard a
	// fully computed grid: print the tables, then report the error.
	grid, sweepErr := experiments.SweepOpts(scale, protos, *seed, opts)
	fmt.Fprintf(os.Stderr, "sweep finished in %v\n\n", time.Since(start).Round(time.Second))

	switch *exp {
	case "all":
		fmt.Println(grid.Report())
	case "table1":
		fmt.Println(grid.Table1())
	default:
		fmt.Println(grid.FigureTable(*metric))
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(grid.JSON(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if sweepErr != nil {
		return fmt.Errorf("per-trial streaming failed (tables above are complete): %w", sweepErr)
	}
	return nil
}

// Command experiments regenerates the paper's evaluation: Table I and
// Figures 3–7, by sweeping (protocol x pause time x trial) and printing
// text tables plus qualitative shape checks.
//
// The default -scale mid runs a half-size network that finishes in minutes
// on one machine while preserving the protocol ranking; -scale full runs
// the paper's exact 100-node / 30-flow / 900 s / 10-trial configuration
// (hours of CPU).
//
// With -spec, the command instead runs the trials of one declarative
// scenario spec (a JSON file or a built-in name like "paper-default") and
// prints the per-trial results and their summary; -jsonl/-csv stream the
// trials the same way they do for a sweep, and -pparam name=value
// (repeatable) overrides protocol constants on top of the spec's
// protocol_params.
//
// Sweeps shard and resume: -shard i/n runs a deterministic 1/n slice of
// the flattened job grid so n processes (or machines) split the work, and
// -resume salvages an interrupted -jsonl stream — truncating any partial
// tail line — and appends only the trials whose (protocol, pause, trial,
// seed) identity key is not already present. Merge shard outputs with
// cmd/slranalyze. An existing non-empty -jsonl/-csv file is never
// overwritten unless -resume or -force says so.
//
// Example:
//
//	experiments -scale mid -exp all
//	experiments -scale full -exp fig5 -trials 10
//	experiments -scale full -shard 1/4 -jsonl shard1.jsonl   # x4 machines
//	experiments -scale full -resume -jsonl shard1.jsonl      # after a crash
//	experiments -spec examples/scenarios/manhattan-500.json
//	experiments -spec paper-default -trials 3
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"slr/internal/experiments"
	"slr/internal/routing"
	"slr/internal/runner"
	"slr/internal/runner/sweepcli"
	"slr/internal/scenario"
	"slr/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "mid", "experiment scale: full, mid, small")
		exp       = fs.String("exp", "all", "experiment: all, table1, fig3, fig4, fig5, fig6, fig7")
		specArg   = fs.String("spec", "", "run one scenario spec (path or built-in name) instead of the paper grid")
		trials    = fs.Int("trials", 0, "override trials per grid point (0 = scale default)")
		seed      = fs.Int64("seed", 1, "base random seed")
		quiet     = fs.Bool("quiet", false, "suppress per-run progress output")
		workers   = fs.Int("workers", 0, "worker goroutines for the sweep (0 = all CPUs)")
		jsonOut   = fs.String("json", "", "also write the raw grid as JSON to this file")
	)
	cli := sweepcli.Register(fs, true)
	protoParams := routing.ParamsFlag{}
	fs.Var(protoParams, "pparam", "with -spec: protocol parameter override `name=value` (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := cli.Validate(); err != nil {
		return err
	}
	if len(protoParams) > 0 && *specArg == "" {
		return fmt.Errorf("-pparam requires -spec (the paper grid runs every protocol at its published constants)")
	}
	seedSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			seedSet = true
		}
	})

	scale, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		return err
	}
	if *trials > 0 {
		scale.Trials = *trials
	}

	if *specArg != "" {
		// Resolve the spec before touching any output file: a bad spec
		// must not truncate existing -jsonl/-csv results.
		s, err := spec.Resolve(*specArg)
		if err != nil {
			return err
		}
		p, err := s.Params()
		if err != nil {
			return err
		}
		if len(protoParams) > 0 {
			p.ProtoParams = routing.MergeParams(p.ProtoParams, protoParams)
			if err := routing.Validate(routing.Spec{Name: string(p.Protocol), Params: p.ProtoParams}); err != nil {
				return err
			}
		}
		out, err := cli.Open(os.Stderr)
		if err != nil {
			return err
		}
		defer out.Close()
		return runSpec(s, p, *trials, *seed, seedSet, *workers, *quiet, cli, out)
	}

	protos := scenario.AllProtocols
	var metric *experiments.Metric
	switch *exp {
	case "all", "table1":
	default:
		metric = experiments.MetricByName[*exp]
		if metric == nil {
			return fmt.Errorf("unknown experiment %q", *exp)
		}
		if metric.Protos != nil {
			// Figures restricted to a protocol subset (Fig. 7) only
			// sweep that subset.
			protos = metric.Protos
		}
	}

	if *jsonOut != "" {
		// The -json report is rewritten whole after the sweep; refuse a
		// clobber now, before hours of compute, not at write time. A
		// resumed sweep regenerates the report by design, so -resume
		// authorizes the rewrite like -force does.
		if err := runner.CheckClobber(*jsonOut, cli.Force || cli.Resume); err != nil {
			return err
		}
	}
	out, err := cli.Open(os.Stderr)
	if err != nil {
		return err
	}
	defer out.Close()
	opts := experiments.SweepOptions{
		Workers: *workers, Emitters: out.Emitters,
		Shard: cli.Shard, SkipDone: runner.KeySet(out.Salvaged),
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	fmt.Fprintf(os.Stderr, "sweeping %s scale: %d nodes, %d flows, %v, %d trials x %d pauses x %d protocols\n",
		scale.Name, scale.Nodes, scale.Flows, scale.Duration, scale.Trials,
		len(experiments.PauseFractions), len(protos))
	if cli.Shard.Count > 1 {
		fmt.Fprintf(os.Stderr, "shard %s: running a 1/%d slice; merge every shard's JSONL with slranalyze for the full grid\n",
			cli.Shard, cli.Shard.Count)
	}
	start := time.Now()
	// An emitter failure (e.g. disk full under -jsonl) must not discard a
	// fully computed grid: print the tables, then report the error.
	grid, sweepErr := experiments.SweepOpts(scale, protos, *seed, opts)
	fmt.Fprintf(os.Stderr, "sweep finished in %v\n\n", time.Since(start).Round(time.Second))

	if cli.Resume && len(out.Salvaged) > 0 {
		// The tables should cover the whole sweep, not just the trials this
		// process re-ran: merge the salvaged records with the fresh ones
		// through the shared merge entry point, exactly as slranalyze
		// merges shard files (dedup on the identity key, though SkipDone
		// already made the sets disjoint). Reconstructed tables are
		// byte-identical to live ones (see cmd/slranalyze's tests).
		merged, leftover := experiments.MergeRecords(append(out.Salvaged, grid.JSON().Runs...)).Grid(scale)
		if len(leftover) > 0 {
			fmt.Fprintf(os.Stderr, "%d salvaged records match no %s-scale grid cell (resumed with a different -scale?); left out of the tables\n",
				len(leftover), scale.Name)
		}
		grid = merged
		if missing := grid.MissingCells(); len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "grid still missing %d cells after resume (different -seed or -shard?):\n", len(missing))
			for _, m := range missing {
				fmt.Fprintln(os.Stderr, "  "+m)
			}
		}
	}

	switch *exp {
	case "all":
		fmt.Println(grid.Report())
	case "table1":
		fmt.Println(grid.Table1())
	default:
		fmt.Println(grid.FigureTable(*metric))
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(grid.JSON(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
	if sweepErr != nil {
		return fmt.Errorf("per-trial streaming failed (tables above are complete): %w", sweepErr)
	}
	return nil
}

// runSpec runs the trials of one resolved scenario spec on the
// work-stealing runner and prints the trial summary. A shard runs only its
// slice of the trial list; salvaged records from a resumed JSONL skip
// their jobs and fold back into the printed summary.
func runSpec(s *spec.ScenarioSpec, p scenario.Params, trials int, seed int64, seedSet bool, workers int, quiet bool, cli *sweepcli.Flags, out *sweepcli.Outputs) error {
	if seedSet {
		p.Seed = seed
	}
	if trials <= 0 {
		trials = s.TrialCount()
	}
	name := s.Name
	if name == "" {
		name = "scenario"
	}
	fmt.Fprintf(os.Stderr, "spec %s: %s, %d nodes, %.0fx%.0f m, %v, mobility=%s traffic=%s propagation=%s, %d trials\n",
		name, p.Protocol, p.Nodes, p.Terrain.Width, p.Terrain.Height, p.Duration,
		s.Mobility.Model, orDefault(s.Traffic.Model, "cbr"), orDefault(s.Radio.Propagation, "unit-disk"), trials)
	jobs := cli.Jobs(runner.TrialJobs(p, trials), out, os.Stderr)
	opts := runner.Options{Workers: workers, Emitters: out.Emitters}
	if !quiet {
		opts.Progress = os.Stderr
	}
	start := time.Now()
	results, err := runner.Run(jobs, opts)
	fmt.Fprintf(os.Stderr, "finished in %v\n\n", time.Since(start).Round(time.Millisecond))
	if len(out.Salvaged) > 0 {
		// Fold the salvaged trials back in so the summary covers the whole
		// trial set, not just the jobs this process re-ran.
		recs := append([]runner.Record{}, out.Salvaged...)
		for i, j := range jobs {
			recs = append(recs, runner.NewRecord(j, results[i]))
		}
		for i, ts := range experiments.Groups(recs) {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(experiments.TrialReport(name, ts))
		}
	} else {
		ts := scenario.TrialSet{Protocol: p.Protocol, Pause: p.Pause, Results: results}
		fmt.Print(experiments.TrialReport(name, ts))
	}
	if err != nil {
		return fmt.Errorf("per-trial streaming failed (summary above is complete): %w", err)
	}
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

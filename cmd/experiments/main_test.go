package main

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-scale", "galactic"})
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zap"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSpecMode(t *testing.T) {
	if err := run([]string{"-spec", "../../examples/scenarios/tiny-smoke.json", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecModeUnknown(t *testing.T) {
	if err := run([]string{"-spec", "no-such-spec"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

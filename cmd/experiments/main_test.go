package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownScale(t *testing.T) {
	err := run([]string{"-scale", "galactic"})
	if err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-zap"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSpecMode(t *testing.T) {
	if err := run([]string{"-spec", "../../examples/scenarios/tiny-smoke.json", "-quiet"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecModeUnknown(t *testing.T) {
	if err := run([]string{"-spec", "no-such-spec"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-resume"}); err == nil || !strings.Contains(err.Error(), "-jsonl") {
		t.Errorf("-resume without -jsonl: %v", err)
	}
	if err := run([]string{"-resume", "-jsonl", "x.jsonl", "-csv", "y.csv"}); err == nil || !strings.Contains(err.Error(), "CSV") {
		t.Errorf("-resume with -csv: %v", err)
	}
	if err := run([]string{"-shard", "5/4"}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	if err := run([]string{"-shard", "2"}); err == nil {
		t.Error("malformed shard accepted")
	}
}

// TestRunRefusesToClobber pins the os.Create satellite fix: pointing
// -jsonl or -csv at an existing sweep's output must fail before anything
// runs, leaving the file untouched, unless -resume or -force.
func TestRunRefusesToClobber(t *testing.T) {
	dir := t.TempDir()
	for _, flag := range []string{"-jsonl", "-csv", "-json"} {
		path := filepath.Join(dir, "sweep"+flag+".out")
		if err := os.WriteFile(path, []byte("40 hours of CPU\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		err := run([]string{"-scale", "small", flag, path})
		if err == nil || !strings.Contains(err.Error(), "-force") {
			t.Fatalf("%s clobber: err = %v, want refusal mentioning -force", flag, err)
		}
		if got, _ := os.ReadFile(path); string(got) != "40 hours of CPU\n" {
			t.Fatalf("%s refusal still modified the file: %q", flag, got)
		}
	}
}

// TestRunSpecShardAndResume drives the spec path end to end: two shards'
// JSONL concatenates to the single-process stream, a truncated file
// resumes to the same bytes, and a plain re-run refuses to clobber.
func TestRunSpecShardAndResume(t *testing.T) {
	const spec = "../../examples/scenarios/tiny-smoke.json"
	dir := t.TempDir()
	base := []string{"-spec", spec, "-trials", "2", "-quiet", "-workers", "1"}

	full := filepath.Join(dir, "full.jsonl")
	if err := run(append(base, "-jsonl", full)); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Count(golden, []byte("\n")) != 2 {
		t.Fatalf("expected 2 records:\n%s", golden)
	}

	// Clobber guard, and -force to override it.
	if err := run(append(base, "-jsonl", full)); err == nil {
		t.Fatal("re-run clobbered the existing JSONL")
	}
	if err := run(append(base, "-jsonl", full, "-force")); err != nil {
		t.Fatalf("-force: %v", err)
	}

	// Sharding: with one worker each, shard 1/2 gets trial 0 and shard
	// 2/2 trial 1, so their concatenation is the single-process stream.
	s1, s2 := filepath.Join(dir, "s1.jsonl"), filepath.Join(dir, "s2.jsonl")
	if err := run(append(base, "-shard", "1/2", "-jsonl", s1)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-shard", "2/2", "-jsonl", s2)); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(s1)
	b2, _ := os.ReadFile(s2)
	if !bytes.Equal(append(b1, b2...), golden) {
		t.Fatalf("shard union differs from single process:\n--- shards ---\n%s%s--- single ---\n%s", b1, b2, golden)
	}

	// Kill mid-write: keep the first record plus half the second, resume,
	// and require convergence to the uninterrupted bytes.
	cut := bytes.IndexByte(golden, '\n') + 1
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, golden[:cut+10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-resume", "-jsonl", trunc)); err != nil {
		t.Fatal(err)
	}
	resumed, _ := os.ReadFile(trunc)
	if !bytes.Equal(resumed, golden) {
		t.Fatalf("resume did not converge:\n--- resumed ---\n%s--- golden ---\n%s", resumed, golden)
	}
}

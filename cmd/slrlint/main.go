// Command slrlint is the repo's determinism linter: a go/analysis
// multichecker bundling the four analyzers of internal/analysis
// (mapiter, walltime, floatfmt, pooledescape), each machine-enforcing an
// invariant the byte-identical-per-seed contract depends on.
//
// It speaks the unitchecker protocol, so it composes with the go tool's
// vet driver instead of shipping its own loader:
//
//	go build -o bin/slrlint ./cmd/slrlint
//	go vet -vettool=$(pwd)/bin/slrlint ./...
//
// (make lint does exactly this.) Single analyzers and flags pass through
// vet as usual:
//
//	go vet -vettool=bin/slrlint -mapiter.tests ./internal/routing/...
//
// Suppressions are source comments, not linter config:
// //slrlint:allow <analyzer> <reason> on (or directly above) the flagged
// line, with a mandatory reason. See the README's determinism-discipline
// section for the invariants and their history.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"slr/internal/analysis/floatfmt"
	"slr/internal/analysis/mapiter"
	"slr/internal/analysis/pooledescape"
	"slr/internal/analysis/walltime"
)

func main() {
	unitchecker.Main(
		mapiter.Analyzer,
		walltime.Analyzer,
		floatfmt.Analyzer,
		pooledescape.Analyzer,
	)
}

package main

import (
	"strings"
	"testing"
)

func TestRunSmallScenario(t *testing.T) {
	err := run([]string{
		"-protocol", "SRP", "-nodes", "12", "-width", "600", "-height", "300",
		"-duration", "10s", "-flows", "3", "-seed", "1", "-check",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	err := run([]string{"-protocol", "RIP"})
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLowercaseProtocol(t *testing.T) {
	err := run([]string{
		"-protocol", "olsr", "-nodes", "6", "-width", "400", "-height", "200",
		"-duration", "5s", "-flows", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiTrial(t *testing.T) {
	err := run([]string{
		"-protocol", "AODV", "-nodes", "8", "-width", "500", "-height", "250",
		"-duration", "5s", "-flows", "2", "-trials", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	if err := run([]string{"-spec", "../../examples/scenarios/tiny-smoke.json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecWithFlagOverrides(t *testing.T) {
	// Shrink the built-in paper spec down to test size via explicit flags.
	err := run([]string{
		"-spec", "paper-default", "-nodes", "12", "-width", "600", "-height", "300",
		"-duration", "10s", "-flows", "3", "-trials", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecUnknown(t *testing.T) {
	if err := run([]string{"-spec", "no-such-spec"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

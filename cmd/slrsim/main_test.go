package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/sweepd"
	"slr/internal/traffic"
)

func TestRunSmallScenario(t *testing.T) {
	err := run([]string{
		"-protocol", "SRP", "-nodes", "12", "-width", "600", "-height", "300",
		"-duration", "10s", "-flows", "3", "-seed", "1", "-check",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownProtocol(t *testing.T) {
	err := run([]string{"-protocol", "RIP"})
	if err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunLowercaseProtocol(t *testing.T) {
	err := run([]string{
		"-protocol", "olsr", "-nodes", "6", "-width", "400", "-height", "200",
		"-duration", "5s", "-flows", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiTrial(t *testing.T) {
	err := run([]string{
		"-protocol", "AODV", "-nodes", "8", "-width", "500", "-height", "250",
		"-duration", "5s", "-flows", "2", "-trials", "2",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunSpecFile(t *testing.T) {
	if err := run([]string{"-spec", "../../examples/scenarios/tiny-smoke.json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecWithFlagOverrides(t *testing.T) {
	// Shrink the built-in paper spec down to test size via explicit flags.
	err := run([]string{
		"-spec", "paper-default", "-nodes", "12", "-width", "600", "-height", "300",
		"-duration", "10s", "-flows", "3", "-trials", "1",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSpecUnknown(t *testing.T) {
	if err := run([]string{"-spec", "no-such-spec"}); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

// TestRunJSONLShardResume drives the slrsim streaming path: -jsonl
// refuses to clobber, -shard writes only its slice, and -resume completes
// a truncated stream without re-running salvaged trials.
func TestRunJSONLShardResume(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-protocol", "SRP", "-nodes", "8", "-width", "500", "-height", "250",
		"-duration", "5s", "-flows", "2", "-trials", "2",
	}
	out := filepath.Join(dir, "out.jsonl")
	if err := run(append(base, "-jsonl", out)); err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Count(golden, []byte("\n")) != 2 {
		t.Fatalf("want 2 records:\n%s", golden)
	}

	if err := run(append(base, "-jsonl", out)); err == nil || !strings.Contains(err.Error(), "-force") {
		t.Fatalf("clobber not refused: %v", err)
	}
	if err := run(append(base, "-jsonl", out, "-force")); err != nil {
		t.Fatalf("-force: %v", err)
	}
	if err := run(append(base, "-resume")); err == nil {
		t.Fatal("-resume without -jsonl accepted")
	}

	shard := filepath.Join(dir, "shard2.jsonl")
	if err := run(append(base, "-shard", "2/2", "-jsonl", shard)); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(shard); bytes.Count(b, []byte("\n")) != 1 {
		t.Fatalf("shard 2/2 of 2 trials should hold exactly 1 record:\n%s", b)
	}

	// A salvaged file from a different configuration must be refused, not
	// silently averaged into this run's summary — and refused before any
	// repair touches it, so the refused file stays byte-identical.
	preRefuse, _ := os.ReadFile(out)
	mismatch := append([]string{}, base...)
	mismatch[1] = "AODV"
	if err := run(append(mismatch, "-resume", "-jsonl", out)); err == nil || !strings.Contains(err.Error(), "not resumable") {
		t.Fatalf("cross-protocol resume: %v", err)
	}
	if postRefuse, _ := os.ReadFile(out); !bytes.Equal(postRefuse, preRefuse) {
		t.Fatal("refused cross-protocol resume modified the file")
	}

	// So must a resume whose seed range no longer covers the file's
	// records (slrsim is single-configuration; that can only be a mixup).
	if err := run(append(base, "-seed", "9", "-resume", "-jsonl", out)); err == nil || !strings.Contains(err.Error(), "not resumable") {
		t.Fatalf("shifted-seed resume: %v", err)
	}

	// Truncate mid-second-record and resume: the salvaged first line must
	// survive untouched and the file end up with both trials exactly once.
	cut := bytes.IndexByte(golden, '\n') + 1
	trunc := filepath.Join(dir, "trunc.jsonl")
	if err := os.WriteFile(trunc, golden[:cut+10], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(append(base, "-resume", "-jsonl", trunc)); err != nil {
		t.Fatal(err)
	}
	resumed, _ := os.ReadFile(trunc)
	if !bytes.HasPrefix(resumed, golden[:cut]) {
		t.Fatalf("resume rewrote the salvaged record:\n%s", resumed)
	}
	if bytes.Count(resumed, []byte("\n")) != 2 {
		t.Fatalf("resumed file should hold exactly 2 records:\n%s", resumed)
	}
}

// TestWorkerModeRejectsScenarioFlags: jobs in -worker mode come fully
// parameterized from the coordinator, so combining -worker with scenario
// or output flags is a mixup, named flag by flag.
func TestWorkerModeRejectsScenarioFlags(t *testing.T) {
	err := run([]string{"-worker", "http://localhost:1", "-protocol", "AODV", "-jsonl", "x.jsonl"})
	if err == nil || !strings.Contains(err.Error(), "-jsonl") || !strings.Contains(err.Error(), "-protocol") {
		t.Fatalf("err = %v", err)
	}
}

// TestWorkerModeFlagTable drives the consolidated workerModeFlags
// allowlist: each run-mode flag — the dynamic checkers and the kernel's
// -parallel included — must be refused by name in -worker mode, while the
// worker's own knobs and profiling pass the gate.
func TestWorkerModeFlagTable(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		rejected string // flag that must be named in the error; "" = allowed
	}{
		{"check", []string{"-check"}, "-check"},
		{"ordercheck", []string{"-ordercheck"}, "-ordercheck"},
		{"parallel", []string{"-parallel", "4"}, "-parallel"},
		{"protocol", []string{"-protocol", "AODV"}, "-protocol"},
		{"trials", []string{"-trials", "2"}, "-trials"},
		{"jsonl", []string{"-jsonl", "x.jsonl"}, "-jsonl"},
		{"seed", []string{"-seed", "7"}, "-seed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-worker", "http://127.0.0.1:1"}, tc.args...)
			err := run(args)
			if err == nil || !strings.Contains(err.Error(), tc.rejected) ||
				!strings.Contains(err.Error(), "-worker mode") {
				t.Fatalf("args %v: want rejection naming %s, got %v", args, tc.rejected, err)
			}
		})
	}
	// The worker's own knobs and the profiling flags must pass the gate
	// (checked against the table directly — going through run() would try
	// to reach a coordinator).
	for name := range workerModeFlags {
		if err := rejectNonWorkerFlags(map[string]bool{name: true}); err != nil {
			t.Fatalf("flag -%s should be allowed in -worker mode: %v", name, err)
		}
	}
	if err := rejectNonWorkerFlags(map[string]bool{"cpuprofile": true, "memprofile": true, "batch": true}); err != nil {
		t.Fatalf("profiling + batch should be allowed in -worker mode: %v", err)
	}
}

// TestWorkerModeDrainsCoordinator runs the real -worker code path
// against an in-process coordinator and checks the sweep completes.
func TestWorkerModeDrainsCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	p := scenario.DefaultParams(scenario.SRP, 0, 1)
	p.Nodes = 10
	p.Terrain = geo.Terrain{Width: 500, Height: 250}
	p.Duration = 5 * time.Second
	p.Traffic = traffic.Params{Flows: 2, PacketSize: 256, Rate: 4, MeanLife: 10 * time.Second}
	c, err := sweepd.New(runner.TrialJobs(p, 2), sweepd.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(sweepd.NewHandler(c))
	defer srv.Close()
	if err := run([]string{"-worker", srv.URL, "-worker-id", "t", "-batch", "2"}); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); !st.SweepDone {
		t.Fatalf("sweep not done after worker exit: %+v", st)
	}
}

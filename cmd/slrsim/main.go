// Command slrsim runs a single wireless ad hoc routing simulation and
// prints its metrics.
//
// -spec loads a declarative scenario file (or a built-in name like
// "paper-default") as the baseline; any topology or workload flag given
// explicitly on the command line overrides the spec's value.
//
// -pparam name=value (repeatable) overrides one protocol constant using
// the same vocabulary as the spec's "protocol_params" section.
//
// Example:
//
//	slrsim -protocol SRP -nodes 100 -pause 0 -flows 30 -duration 900s -seed 1
//	slrsim -spec examples/scenarios/manhattan-500.json -trials 1
//	slrsim -spec paper-default -protocol AODV
//	slrsim -protocol AODV -pparam rreq_retries=4 -pparam ttl_0=35
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/routing"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/spec"
	"slr/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slrsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slrsim", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "SRP", "routing protocol: SRP, LDR, AODV, DSR, OLSR")
		nodes     = fs.Int("nodes", 100, "number of nodes")
		width     = fs.Float64("width", 2200, "terrain width in meters")
		height    = fs.Float64("height", 600, "terrain height in meters")
		rng       = fs.Float64("range", 275, "radio range in meters")
		pause     = fs.Duration("pause", 0, "random-waypoint pause time")
		maxSpeed  = fs.Float64("speed", 20, "maximum node speed in m/s")
		duration  = fs.Duration("duration", 900*time.Second, "simulated time")
		seed      = fs.Int64("seed", 1, "random seed (fixes topology and traffic)")
		flows     = fs.Int("flows", 30, "concurrent CBR flows")
		rate      = fs.Float64("rate", 4, "packets per second per flow")
		pktSize   = fs.Int("size", 512, "CBR payload bytes")
		check     = fs.Bool("check", false, "verify loop-freedom invariant during the run")
		trials    = fs.Int("trials", 1, "independent trials (seeds seed..seed+trials-1)")
		specArg   = fs.String("spec", "", "scenario spec (path or built-in name) as the baseline; explicit flags override it")
	)
	protoParams := routing.ParamsFlag{}
	fs.Var(protoParams, "pparam", "protocol parameter override `name=value` (repeatable); keys follow the spec's protocol_params vocabulary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	proto := scenario.ProtocolName(strings.ToUpper(*protoName))
	if err := routing.Validate(routing.Spec{Name: string(proto)}); err != nil {
		return err
	}

	var p scenario.Params
	if *specArg != "" {
		s, err := spec.Resolve(*specArg)
		if err != nil {
			return err
		}
		if p, err = s.Params(); err != nil {
			return err
		}
		if !set["trials"] {
			*trials = s.TrialCount()
		}
		// Explicit flags override the spec; a changed speed or pause
		// also drops the spec's mobility section back to the waypoint
		// defaults those flags describe.
		if set["protocol"] && p.Protocol != proto {
			// The spec's protocol_params described the spec's protocol;
			// they do not carry over to a different one.
			p.Protocol = proto
			p.ProtoParams = nil
		}
		if set["nodes"] {
			p.Nodes = *nodes
		}
		if set["width"] {
			p.Terrain.Width = *width
		}
		if set["height"] {
			p.Terrain.Height = *height
		}
		if set["range"] {
			p.Range = *rng
		}
		if set["duration"] {
			p.Duration = *duration
		}
		if set["seed"] {
			p.Seed = *seed
		}
		if set["flows"] {
			p.Traffic.Flows = *flows
		}
		if set["rate"] {
			p.Traffic.Rate = *rate
		}
		if set["size"] {
			p.Traffic.PacketSize = *pktSize
		}
		if set["pause"] || set["speed"] {
			// Overriding motion flags drops the spec's mobility model
			// back to the waypoint those flags describe, keeping the
			// spec's value for whichever of the pair was not given and
			// never letting the floor exceed the new speed ceiling.
			if set["speed"] {
				p.MaxSpeed = *maxSpeed
			}
			if set["pause"] {
				p.Pause = *pause
			}
			p.MinSpeed = math.Min(p.MinSpeed, p.MaxSpeed)
			p.Mobility = mobility.Spec{}
		}
		if set["check"] {
			p.CheckInvariants = *check
		}
	} else {
		p = scenario.DefaultParams(proto, *pause, *seed)
		p.Nodes = *nodes
		p.Terrain = geo.Terrain{Width: *width, Height: *height}
		p.Range = *rng
		p.MaxSpeed = *maxSpeed
		p.Duration = *duration
		p.Traffic = traffic.Params{
			Flows: *flows, PacketSize: *pktSize, Rate: *rate,
			MeanLife: 60 * time.Second,
		}
		p.CheckInvariants = *check
	}

	// -pparam overrides merge over the spec's protocol_params.
	p.ProtoParams = routing.MergeParams(p.ProtoParams, protoParams)
	if err := routing.Validate(routing.Spec{Name: string(p.Protocol), Params: p.ProtoParams}); err != nil {
		return err
	}

	ts, err := runner.Trials(p, *trials, runner.Options{})
	if err != nil {
		return err
	}
	for _, r := range ts.Results {
		fmt.Printf("protocol=%s seed=%d pause=%v\n", r.Protocol, r.Seed, r.Pause)
		fmt.Printf("  delivery ratio  %.4f  (%d/%d)\n", r.DeliveryRatio, r.DataRecv, r.DataSent)
		fmt.Printf("  network load    %.4f  (%d control packets)\n", r.NetworkLoad, r.ControlTx)
		fmt.Printf("  latency         %.4f s\n", r.Latency)
		fmt.Printf("  mean hops       %.2f\n", r.MeanHops)
		fmt.Printf("  MAC drops/node  %.1f\n", r.MACDrops)
		fmt.Printf("  avg seqno       %.2f\n", r.AvgSeqno)
		if r.MaxDenom > 0 {
			fmt.Printf("  max denominator %d\n", r.MaxDenom)
		}
		if p.CheckInvariants {
			fmt.Printf("  loop checks     %d (%d violations)\n", r.LoopChecks, len(r.LoopErrors))
			for _, e := range r.LoopErrors {
				fmt.Printf("    VIOLATION %s\n", e)
			}
		}
	}
	if *trials > 1 {
		deliv := ts.Series(func(r scenario.Result) float64 { return r.DeliveryRatio })
		load := ts.Series(func(r scenario.Result) float64 { return r.NetworkLoad })
		lat := ts.Series(func(r scenario.Result) float64 { return r.Latency })
		fmt.Printf("mean over %d trials: deliv %.4f±%.4f  load %.4f±%.4f  latency %.4f±%.4f",
			*trials, deliv.Mean(), deliv.CI(), load.Mean(), load.CI(), lat.Mean(), lat.CI())
		if load.NaNs > 0 {
			// Zero-delivery trials have no load ratio; say the sample
			// shrank instead of printing a mean that looks measured.
			fmt.Printf("  (load n/a in %d of %d trials)", load.NaNs, *trials)
		}
		fmt.Println()
	}
	return nil
}

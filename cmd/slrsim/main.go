// Command slrsim runs a single wireless ad hoc routing simulation and
// prints its metrics.
//
// -spec loads a declarative scenario file (or a built-in name like
// "paper-default") as the baseline; any topology or workload flag given
// explicitly on the command line overrides the spec's value.
//
// -pparam name=value (repeatable) overrides one protocol constant using
// the same vocabulary as the spec's "protocol_params" section.
//
// -jsonl streams one record per trial, the same schema the sweep binary
// writes; -shard i/n runs a deterministic 1/n slice of the trial list,
// and -resume continues an interrupted -jsonl, re-running only missing
// trials. Existing non-empty output needs -resume or -force.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the heap
// profile is taken after a final GC), so finding the next hot spot in a
// large-N scenario is one flag away: go tool pprof slrsim cpu.out.
//
// -worker URL turns the binary into a pull worker for an slrserve
// coordinator: it leases job batches over /v1, runs them on all local
// CPUs, and POSTs the records back until the sweep is done. Jobs arrive
// fully parameterized, so no scenario flag combines with -worker.
//
// Example:
//
//	slrsim -protocol SRP -nodes 100 -pause 0 -flows 30 -duration 900s -seed 1
//	slrsim -spec examples/scenarios/manhattan-500.json -trials 1
//	slrsim -spec paper-default -protocol AODV
//	slrsim -protocol AODV -pparam rreq_retries=4 -pparam ttl_0=35
//	slrsim -spec paper-default -trials 10 -shard 2/2 -jsonl shard2.jsonl
//	slrsim -worker http://sweep-host:8356 -batch 4
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/routing"
	"slr/internal/runner"
	"slr/internal/runner/sweepcli"
	"slr/internal/scenario"
	"slr/internal/sim"
	"slr/internal/spec"
	"slr/internal/sweepd"
	"slr/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slrsim:", err)
		os.Exit(1)
	}
}

// workerModeFlags is the single allowlist of flags that combine with
// -worker: the worker's own knobs plus profiling (a worker is exactly
// where a large-N sweep spends its time). Everything else — scenario
// shape, the dynamic checkers (-check, -ordercheck), kernel execution
// knobs (-parallel), and output routing — is refused by name: jobs arrive
// fully parameterized from the coordinator, so such a flag on the same
// command line means confusion, not intent.
var workerModeFlags = map[string]bool{
	"worker": true, "worker-id": true, "batch": true, "poll": true,
	"crash-after-lease": true, "cpuprofile": true, "memprofile": true,
}

// rejectNonWorkerFlags returns an error naming, in sorted order, every
// explicitly set flag outside workerModeFlags.
func rejectNonWorkerFlags(set map[string]bool) error {
	var conflict []string
	for name := range set {
		if !workerModeFlags[name] {
			conflict = append(conflict, "-"+name)
		}
	}
	if len(conflict) == 0 {
		return nil
	}
	sort.Strings(conflict)
	return fmt.Errorf("-worker mode pulls fully parameterized jobs from the coordinator; %s cannot apply", strings.Join(conflict, " "))
}

func run(args []string) (retErr error) {
	fs := flag.NewFlagSet("slrsim", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "SRP", "routing protocol: SRP, LDR, AODV, DSR, OLSR")
		nodes     = fs.Int("nodes", 100, "number of nodes")
		width     = fs.Float64("width", 2200, "terrain width in meters")
		height    = fs.Float64("height", 600, "terrain height in meters")
		rng       = fs.Float64("range", 275, "radio range in meters")
		pause     = fs.Duration("pause", 0, "random-waypoint pause time")
		maxSpeed  = fs.Float64("speed", 20, "maximum node speed in m/s")
		duration  = fs.Duration("duration", 900*time.Second, "simulated time")
		seed      = fs.Int64("seed", 1, "random seed (fixes topology and traffic)")
		flows     = fs.Int("flows", 30, "concurrent CBR flows")
		rate      = fs.Float64("rate", 4, "packets per second per flow")
		pktSize   = fs.Int("size", 512, "CBR payload bytes")
		check     = fs.Bool("check", false, "verify loop-freedom invariant during the run")
		ordrcheck = fs.Bool("ordercheck", false, "shadow the event queue with a reference implementation and verify dispatch order (slow; debugging aid)")
		parallel  = fs.Int("parallel", 1, "kernel workers for applying same-timestamp event batches within each trial (1 = serial; results are byte-identical per seed for any value)")
		trials    = fs.Int("trials", 1, "independent trials (seeds seed..seed+trials-1)")
		specArg   = fs.String("spec", "", "scenario spec (path or built-in name) as the baseline; explicit flags override it")
		cpuProf   = fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to `file`")
		memProf   = fs.String("memprofile", "", "write a pprof heap profile (after GC, at exit) to `file`")

		workerURL  = fs.String("worker", "", "run as a pull worker for the slrserve coordinator at this base `URL`; jobs arrive fully parameterized, so scenario flags do not apply")
		workerID   = fs.String("worker-id", "", "with -worker: identity reported to the coordinator (default hostname-pid)")
		batch      = fs.Int("batch", 1, "with -worker: jobs leased per pull")
		poll       = fs.Duration("poll", 2*time.Second, "with -worker: wait between pulls while every pending job is leased elsewhere")
		crashLease = fs.Bool("crash-after-lease", false, "with -worker: lease one batch, then exit 137 without acknowledging it (crash injection for lease-expiry tests)")
	)
	cli := sweepcli.Register(fs, false)
	protoParams := routing.ParamsFlag{}
	fs.Var(protoParams, "pparam", "protocol parameter override `name=value` (repeatable); keys follow the spec's protocol_params vocabulary")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && retErr == nil {
			retErr = perr
		}
	}()

	if *workerURL != "" {
		if err := rejectNonWorkerFlags(set); err != nil {
			return err
		}
		return runWorker(*workerURL, *workerID, *batch, *poll, *crashLease)
	}

	proto := scenario.ProtocolName(strings.ToUpper(*protoName))
	if err := routing.Validate(routing.Spec{Name: string(proto)}); err != nil {
		return err
	}

	if *ordrcheck {
		// Pair every ladder-queue dispatch against a reference queue for
		// the whole run; the hook attaches it to each trial's fresh kernel.
		scenario.SimHook = func(s *sim.Simulator) { s.EnableOrderCheck() }
	}

	var p scenario.Params
	if *specArg != "" {
		s, err := spec.Resolve(*specArg)
		if err != nil {
			return err
		}
		if p, err = s.Params(); err != nil {
			return err
		}
		if !set["trials"] {
			*trials = s.TrialCount()
		}
		// Explicit flags override the spec; a changed speed or pause
		// also drops the spec's mobility section back to the waypoint
		// defaults those flags describe.
		if set["protocol"] && p.Protocol != proto {
			// The spec's protocol_params described the spec's protocol;
			// they do not carry over to a different one.
			p.Protocol = proto
			p.ProtoParams = nil
		}
		if set["nodes"] {
			p.Nodes = *nodes
		}
		if set["width"] {
			p.Terrain.Width = *width
		}
		if set["height"] {
			p.Terrain.Height = *height
		}
		if set["range"] {
			p.Range = *rng
		}
		if set["duration"] {
			p.Duration = *duration
		}
		if set["seed"] {
			p.Seed = *seed
		}
		if set["flows"] {
			p.Traffic.Flows = *flows
		}
		if set["rate"] {
			p.Traffic.Rate = *rate
		}
		if set["size"] {
			p.Traffic.PacketSize = *pktSize
		}
		if set["pause"] || set["speed"] {
			// Overriding motion flags drops the spec's mobility model
			// back to the waypoint those flags describe, keeping the
			// spec's value for whichever of the pair was not given and
			// never letting the floor exceed the new speed ceiling.
			if set["speed"] {
				p.MaxSpeed = *maxSpeed
			}
			if set["pause"] {
				p.Pause = *pause
			}
			p.MinSpeed = math.Min(p.MinSpeed, p.MaxSpeed)
			p.Mobility = mobility.Spec{}
		}
		if set["check"] {
			p.CheckInvariants = *check
		}
	} else {
		p = scenario.DefaultParams(proto, *pause, *seed)
		p.Nodes = *nodes
		p.Terrain = geo.Terrain{Width: *width, Height: *height}
		p.Range = *rng
		p.MaxSpeed = *maxSpeed
		p.Duration = *duration
		p.Traffic = traffic.Params{
			Flows: *flows, PacketSize: *pktSize, Rate: *rate,
			MeanLife: 60 * time.Second,
		}
		p.CheckInvariants = *check
	}

	if *parallel < 1 {
		return fmt.Errorf("-parallel %d: worker count must be >= 1", *parallel)
	}
	p.Workers = *parallel

	// -pparam overrides merge over the spec's protocol_params.
	p.ProtoParams = routing.MergeParams(p.ProtoParams, protoParams)
	if err := routing.Validate(routing.Spec{Name: string(p.Protocol), Params: p.ProtoParams}); err != nil {
		return err
	}

	if err := cli.Validate(); err != nil {
		return err
	}
	if cli.Resume {
		// slrsim runs one configuration; salvaged records from another
		// (a different -protocol or -pause) can only mean the wrong
		// file. Refuse BEFORE OpenJSONLOutput repairs or truncates the
		// tail — a refused file must stay byte-for-byte untouched.
		// (cmd/experiments' spec mode instead splits mixed groups.)
		if err := checkResumable(cli.JSONL, p, *trials); err != nil {
			return err
		}
	}
	out, err := cli.Open(os.Stderr)
	if err != nil {
		return err
	}
	defer out.Close()
	salvaged := out.Salvaged
	jobs := cli.Jobs(runner.TrialJobs(p, *trials), out, os.Stderr)
	// An emitter failure (e.g. disk full under -jsonl) must not discard
	// computed trials: print the metrics, then report the error.
	results, emitErr := runner.Run(jobs, runner.Options{Emitters: out.Emitters})
	var salvagedAt []bool // parallel to results after the fold
	if len(salvaged) > 0 {
		// Fold the salvaged trials back in, seed (= trial) order, so the
		// printed metrics cover the whole trial set, not just the jobs
		// this process re-ran. A hand-concatenated file can repeat a
		// trial; dedup like every other merge path. Provenance rides along
		// by position, not seed — a shifted -seed resume can give a fresh
		// trial the same seed value as a salvaged one.
		salvaged, _ = runner.DedupRecords(salvaged)
		type trial struct {
			res      scenario.Result
			salvaged bool
		}
		combined := make([]trial, 0, len(salvaged)+len(results))
		for _, rec := range salvaged {
			combined = append(combined, trial{rec.Result(), true})
		}
		for _, r := range results {
			combined = append(combined, trial{r, false})
		}
		// Stable so equal seeds keep a deterministic print order.
		sort.SliceStable(combined, func(i, j int) bool { return combined[i].res.Seed < combined[j].res.Seed })
		results = make([]scenario.Result, len(combined))
		salvagedAt = make([]bool, len(combined))
		for i, t := range combined {
			results[i] = t.res
			salvagedAt[i] = t.salvaged
		}
	}
	ts := scenario.TrialSet{Protocol: p.Protocol, Pause: p.Pause, Results: results}
	for i, r := range ts.Results {
		fmt.Printf("protocol=%s seed=%d pause=%v\n", r.Protocol, r.Seed, r.Pause)
		fmt.Printf("  delivery ratio  %.4f  (%d/%d)\n", r.DeliveryRatio, r.DataRecv, r.DataSent)
		fmt.Printf("  network load    %.4f  (%d control packets)\n", r.NetworkLoad, r.ControlTx)
		fmt.Printf("  latency         %.4f s\n", r.Latency)
		fmt.Printf("  mean hops       %.2f\n", r.MeanHops)
		fmt.Printf("  MAC drops/node  %.1f\n", r.MACDrops)
		fmt.Printf("  avg seqno       %.2f\n", r.AvgSeqno)
		if r.MaxDenom > 0 {
			fmt.Printf("  max denominator %d\n", r.MaxDenom)
		}
		if p.CheckInvariants {
			if i < len(salvagedAt) && salvagedAt[i] {
				// Records carry no loop-check counters: a salvaged trial
				// was not re-checked, and must not read as checked-clean.
				fmt.Printf("  loop checks     n/a (salvaged trial, not re-checked)\n")
				continue
			}
			fmt.Printf("  loop checks     %d (%d violations)\n", r.LoopChecks, len(r.LoopErrors))
			for _, e := range r.LoopErrors {
				fmt.Printf("    VIOLATION %s\n", e)
			}
		}
	}
	if len(ts.Results) > 1 {
		n := len(ts.Results)
		deliv := ts.Series(func(r scenario.Result) float64 { return r.DeliveryRatio })
		load := ts.Series(func(r scenario.Result) float64 { return r.NetworkLoad })
		lat := ts.Series(func(r scenario.Result) float64 { return r.Latency })
		fmt.Printf("mean over %d trials: deliv %.4f±%.4f  load %.4f±%.4f  latency %.4f±%.4f",
			n, deliv.Mean(), deliv.CI(), load.Mean(), load.CI(), lat.Mean(), lat.CI())
		if load.NaNs > 0 {
			// Zero-delivery trials have no load ratio; say the sample
			// shrank instead of printing a mean that looks measured.
			fmt.Printf("  (load n/a in %d of %d trials)", load.NaNs, n)
		}
		fmt.Println()
	}
	if emitErr != nil {
		return fmt.Errorf("per-trial streaming failed (metrics above are complete): %w", emitErr)
	}
	return nil
}

// startProfiles starts CPU profiling to cpu (when non-empty) and returns a
// stop function that finishes it and writes a post-GC heap profile to mem
// (when non-empty). Either path may be empty independently.
func startProfiles(cpu, mem string) (func() error, error) {
	var cpuF *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		cpuF = f
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			defer f.Close()
			// Collect garbage first so the profile shows live steady-state
			// objects, not whatever the last trial left unreclaimed.
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// runWorker pulls and runs leased job batches from an slrserve
// coordinator until the sweep is done. crash injects the lease-expiry
// failure the coordinator must tolerate: lease a batch, then die with the
// kill -9 exit status without acknowledging anything.
func runWorker(url, id string, batch int, poll time.Duration, crash bool) error {
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &sweepd.Worker{URL: url, ID: id, Batch: batch, Poll: poll, Progress: os.Stderr}
	if crash {
		w.OnLease = func(jobs []runner.Job) error {
			fmt.Fprintf(os.Stderr, "%s: leased %d jobs, exiting 137 without acknowledging (crash injection)\n", id, len(jobs))
			os.Exit(137)
			return nil
		}
	}
	fmt.Fprintf(os.Stderr, "%s: pulling from %s (batch %d)\n", id, url, batch)
	return w.Run()
}

// checkResumable reads the file without modifying it and refuses a resume
// whose salvageable records come from a different configuration than p's
// trial list: another protocol or pause, or seeds outside [p.Seed,
// p.Seed+trials). slrsim runs exactly one configuration, so such records
// can only mean the wrong file or the wrong flags. A missing file is a
// cold start; salvage damage is left for ResumeJSONL's own refuse/repair
// logic. The extra read-and-parse before ResumeJSONL re-reads the file is
// the price of refusing BEFORE anything is truncated or repaired.
func checkResumable(path string, p scenario.Params, trials int) error {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	recs, _, _ := runner.SalvageRecords(f)
	for _, rec := range recs {
		if rec.Protocol != string(p.Protocol) || rec.PauseSeconds != p.Pause.Seconds() {
			return fmt.Errorf("%s holds a %s pause=%gs record, but this run is %s pause=%gs; not resumable with these flags",
				path, rec.Protocol, rec.PauseSeconds, p.Protocol, p.Pause.Seconds())
		}
		if rec.Seed < p.Seed || rec.Seed >= p.Seed+int64(trials) {
			return fmt.Errorf("%s holds a seed=%d record, but this run covers seeds %d..%d; not resumable with these flags",
				path, rec.Seed, p.Seed, p.Seed+int64(trials)-1)
		}
	}
	return nil
}

// Command slrsim runs a single wireless ad hoc routing simulation and
// prints its metrics.
//
// Example:
//
//	slrsim -protocol SRP -nodes 100 -pause 0 -flows 30 -duration 900s -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"slr/internal/geo"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slrsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slrsim", flag.ContinueOnError)
	var (
		protoName = fs.String("protocol", "SRP", "routing protocol: SRP, LDR, AODV, DSR, OLSR")
		nodes     = fs.Int("nodes", 100, "number of nodes")
		width     = fs.Float64("width", 2200, "terrain width in meters")
		height    = fs.Float64("height", 600, "terrain height in meters")
		rng       = fs.Float64("range", 275, "radio range in meters")
		pause     = fs.Duration("pause", 0, "random-waypoint pause time")
		maxSpeed  = fs.Float64("speed", 20, "maximum node speed in m/s")
		duration  = fs.Duration("duration", 900*time.Second, "simulated time")
		seed      = fs.Int64("seed", 1, "random seed (fixes topology and traffic)")
		flows     = fs.Int("flows", 30, "concurrent CBR flows")
		rate      = fs.Float64("rate", 4, "packets per second per flow")
		pktSize   = fs.Int("size", 512, "CBR payload bytes")
		check     = fs.Bool("check", false, "verify loop-freedom invariant during the run")
		trials    = fs.Int("trials", 1, "independent trials (seeds seed..seed+trials-1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	proto := scenario.ProtocolName(strings.ToUpper(*protoName))
	found := false
	for _, p := range scenario.AllProtocols {
		if p == proto {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown protocol %q (want one of %v)", *protoName, scenario.AllProtocols)
	}

	p := scenario.DefaultParams(proto, *pause, *seed)
	p.Nodes = *nodes
	p.Terrain = geo.Terrain{Width: *width, Height: *height}
	p.Range = *rng
	p.MaxSpeed = *maxSpeed
	p.Duration = *duration
	p.Traffic = traffic.Params{
		Flows: *flows, PacketSize: *pktSize, Rate: *rate,
		MeanLife: 60 * time.Second,
	}
	p.CheckInvariants = *check

	ts, err := runner.Trials(p, *trials, runner.Options{})
	if err != nil {
		return err
	}
	for _, r := range ts.Results {
		fmt.Printf("protocol=%s seed=%d pause=%v\n", r.Protocol, r.Seed, r.Pause)
		fmt.Printf("  delivery ratio  %.4f  (%d/%d)\n", r.DeliveryRatio, r.DataRecv, r.DataSent)
		fmt.Printf("  network load    %.4f  (%d control packets)\n", r.NetworkLoad, r.ControlTx)
		fmt.Printf("  latency         %.4f s\n", r.Latency)
		fmt.Printf("  mean hops       %.2f\n", r.MeanHops)
		fmt.Printf("  MAC drops/node  %.1f\n", r.MACDrops)
		fmt.Printf("  avg seqno       %.2f\n", r.AvgSeqno)
		if r.MaxDenom > 0 {
			fmt.Printf("  max denominator %d\n", r.MaxDenom)
		}
		if *check {
			fmt.Printf("  loop checks     %d (%d violations)\n", r.LoopChecks, len(r.LoopErrors))
			for _, e := range r.LoopErrors {
				fmt.Printf("    VIOLATION %s\n", e)
			}
		}
	}
	if *trials > 1 {
		deliv := ts.Series(func(r scenario.Result) float64 { return r.DeliveryRatio })
		load := ts.Series(func(r scenario.Result) float64 { return r.NetworkLoad })
		lat := ts.Series(func(r scenario.Result) float64 { return r.Latency })
		fmt.Printf("mean over %d trials: deliv %.4f±%.4f  load %.4f±%.4f  latency %.4f±%.4f\n",
			*trials, deliv.Mean(), deliv.CI(), load.Mean(), load.CI(), lat.Mean(), lat.CI())
	}
	return nil
}

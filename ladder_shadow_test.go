package slr_test

import (
	"os"
	"strconv"
	"testing"

	"slr/internal/scenario"
	"slr/internal/sim"
)

// TestLadderShadowedScenario runs full protocol scenarios with the
// kernel's shadow order checker enabled: every fired event is verified to
// be the global (at, seq) minimum, so any ladder-queue ordering bug that
// only a full-stack workload can trigger fails here with the exact
// divergent event. The default sizes keep it in tier-1 time; set
// LADDER_SHADOW_N to gate a larger node count.
func TestLadderShadowedScenario(t *testing.T) {
	n := 300
	if v := os.Getenv("LADDER_SHADOW_N"); v != "" {
		nv, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad LADDER_SHADOW_N %q: %v", v, err)
		}
		n = nv
	}
	scenario.SimHook = func(s *sim.Simulator) { s.EnableOrderCheck() }
	defer func() { scenario.SimHook = nil }()
	for _, proto := range []scenario.ProtocolName{scenario.SRP, scenario.OLSR} {
		t.Run(string(proto), func(t *testing.T) {
			r := scenario.Run(largeNParams(proto, n))
			t.Logf("%s N=%d deliv-ratio %v", proto, n, r.DeliveryRatio)
		})
	}
}

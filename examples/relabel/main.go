// Relabel reproduces Example 2 / Figure 2 of the paper: inserting nodes
// into an existing DAG by splitting labels, without relabeling any
// predecessor — the property that distinguishes SLR's dense label set from
// integer orderings.
//
// After Fig. 1's chain is labeled, nodes F, G, H appear holding *stale*
// labels from an earlier life (3/4, 2/3, 3/4) and no successors. H requests
// a route to T. Node B cannot reply (its label 2/3 is not below the carried
// request minimum 2/3), so A answers, and B and F relabel themselves by
// mediant splits: B 2/3 -> 3/5, F 3/4 -> 5/8, while G and H keep their
// labels. No node upstream of the splits is touched.
//
// Run with: go run ./examples/relabel
package main

import (
	"fmt"
	"log"

	"slr/internal/core"
	"slr/internal/frac"
)

func main() {
	log.SetFlags(0)

	const (
		nT = iota
		nA
		nB
		nC
		nD
		nE
		nF
		nG
		nH
	)
	names := map[int]string{
		nT: "T", nA: "A", nB: "B", nC: "C", nD: "D",
		nE: "E", nF: "F", nG: "G", nH: "H",
	}

	engine, err := core.NewEngine[frac.F](core.FracSet{}, nT, frac.Zero)
	if err != nil {
		log.Fatal(err)
	}
	for _, l := range [][2]int{{nT, nA}, {nA, nB}, {nB, nC}, {nC, nD}, {nD, nE}} {
		engine.AddLink(l[0], l[1])
	}
	if _, err := engine.Request(nE); err != nil {
		log.Fatal(err)
	}
	fmt.Println("step 1 — Fig. 1 chain labeled: A=1/2 B=2/3 C=3/4 D=4/5 E=5/6")

	// Nodes F, G, H arrive with stale labels and empty successor sets.
	engine.AddLink(nH, nG)
	engine.AddLink(nG, nF)
	engine.AddLink(nF, nB)
	stale := map[int]frac.F{
		nF: frac.MustNew(3, 4),
		nG: frac.MustNew(2, 3),
		nH: frac.MustNew(3, 4),
	}
	for n, l := range stale {
		if err := engine.SetLabel(n, l); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("step 2 — F(3/4), G(2/3), H(3/4) join with stale labels, no routes")
	fmt.Println()
	fmt.Println("node H floods a route request for T ...")

	path, err := engine.Request(nH)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("responder: %s (B could not reply: its label is not below the request minimum)\n", names[path[0]])
	fmt.Println()
	fmt.Println("final labels (paper: H=3/4 G=2/3 F=5/8 B=3/5 A=1/2 T=0/1,")
	fmt.Println("truncated decimals 0.75, .66, .625, .6, .5, 0):")
	for _, n := range []int{nH, nG, nF, nB, nA, nT} {
		l := engine.Label(n)
		fmt.Printf("  %s: %-5s (%.4f)\n", names[n], l, l.Float())
	}
	fmt.Println()
	fmt.Println("note: C, D, E kept their labels — no predecessor was relabeled;")
	fmt.Println("the dense fraction set let B and F be 'inserted' between labels.")

	if err := engine.Verify(); err != nil {
		log.Fatalf("loop-freedom invariant violated: %v", err)
	}
	fmt.Println("invariant verified: the successor graph is loop-free.")
}

// Mobility runs the paper's headline comparison on a small mobile network:
// SRP versus AODV on identical topology and traffic (same seed), at
// constant mobility and at no mobility. It prints the three metrics of
// Table I — delivery ratio, network load, latency — plus the Fig. 7
// sequence-number contrast: AODV must keep incrementing destination
// sequence numbers to stay loop-free, while SRP repairs routes by splitting
// fraction labels and never touches its sequence number.
//
// Run with: go run ./examples/mobility
package main

import (
	"fmt"
	"time"

	"slr/internal/geo"
	"slr/internal/scenario"
	"slr/internal/traffic"
)

func main() {
	fmt.Println("SRP vs AODV, 40 nodes, 12 CBR flows, 180 simulated seconds")
	fmt.Println()

	for _, mob := range []struct {
		name  string
		pause time.Duration
	}{
		{"constant mobility (pause 0s, 0-20 m/s)", 0},
		{"no mobility (pause = full run)", 180 * time.Second},
	} {
		fmt.Println(mob.name)
		for _, proto := range []scenario.ProtocolName{scenario.SRP, scenario.AODV} {
			p := scenario.DefaultParams(proto, mob.pause, 42)
			p.Nodes = 40
			p.Terrain = geo.Terrain{Width: 1400, Height: 400}
			p.Duration = 180 * time.Second
			p.Traffic = traffic.Params{
				Flows: 12, PacketSize: 512, Rate: 4,
				MeanLife: 60 * time.Second,
			}
			p.CheckInvariants = proto == scenario.SRP
			r := scenario.Run(p)
			fmt.Printf("  %-5s delivery %.3f   net load %.3f   latency %.3f s   avg seqno %.1f\n",
				proto, r.DeliveryRatio, r.NetworkLoad, r.Latency, r.AvgSeqno)
			if proto == scenario.SRP {
				if len(r.LoopErrors) > 0 {
					fmt.Printf("  SRP loop-freedom VIOLATED: %v\n", r.LoopErrors)
				} else {
					fmt.Printf("        (loop-freedom verified at %d checkpoints, max fraction denominator %d)\n",
						r.LoopChecks, r.MaxDenom)
				}
			}
		}
		fmt.Println()
	}
	fmt.Println("expected shape (paper §V): SRP delivers at least as much as AODV with")
	fmt.Println("a fraction of the control load, and its sequence numbers stay at zero.")
}

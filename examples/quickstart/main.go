// Quickstart reproduces Example 1 / Figure 1 of the paper: the initial
// labeling of a six-node chain E-D-C-B-A-T by Split Label Routing over the
// proper-fraction ordinal set.
//
// Node E requests a route to destination T. The request floods left; T
// replies with its label 0/1, and each node along the reverse path splits
// the advertised label against its cached request minimum, producing the
// topological order 5/6 -> 4/5 -> 3/4 -> 2/3 -> 1/2 -> 0/1.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"slr/internal/core"
	"slr/internal/frac"
)

func main() {
	log.SetFlags(0)

	const (
		nT = iota
		nA
		nB
		nC
		nD
		nE
	)
	names := map[int]string{nT: "T", nA: "A", nB: "B", nC: "C", nD: "D", nE: "E"}

	// The destination T labels itself 0/1; everyone else is unassigned
	// (the greatest label 1/1).
	engine, err := core.NewEngine[frac.F](core.FracSet{}, nT, frac.Zero)
	if err != nil {
		log.Fatal(err)
	}
	engine.AddLink(nT, nA)
	engine.AddLink(nA, nB)
	engine.AddLink(nB, nC)
	engine.AddLink(nC, nD)
	engine.AddLink(nD, nE)

	fmt.Println("Fig. 1 chain: E - D - C - B - A - T")
	fmt.Println("before: every node unassigned (label 1/1), destination T = 0/1")
	fmt.Println()
	fmt.Println("node E floods a route request for T ...")

	path, err := engine.Request(nE)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print("reply path: ")
	for i := len(path) - 1; i >= 0; i-- {
		fmt.Print(names[path[i]])
		if i > 0 {
			fmt.Print(" -> ")
		}
	}
	fmt.Println()
	fmt.Println()
	fmt.Println("final labels (paper: 5/6 -> 4/5 -> 3/4 -> 2/3 -> 1/2 -> 0/1):")
	for _, n := range []int{nE, nD, nC, nB, nA, nT} {
		l := engine.Label(n)
		fmt.Printf("  %s: %-5s (%.4f)\n", names[n], l, l.Float())
	}

	if err := engine.Verify(); err != nil {
		log.Fatalf("loop-freedom invariant violated: %v", err)
	}
	fmt.Println()
	fmt.Println("invariant verified: labels are in topological order, the successor")
	fmt.Println("graph is a DAG — routing is loop-free at every instant (Theorem 3).")
}

// Multipath demonstrates that SRP is inherently multi-path (§III): because
// the label set keeps all successors in topological order, a node may keep
// *every* feasible in-order neighbor as a successor, not just one.
//
// A 4x4 grid of static nodes runs SRP; several corners request routes to
// node 15. Afterwards the program prints each node's successor set for
// destination 15 and verifies that the union of all successor sets is a
// DAG — multiple forwarding choices, zero loops.
//
// Run with: go run ./examples/multipath
package main

import (
	"fmt"
	"log"
	"time"

	"slr/internal/geo"
	"slr/internal/metrics"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/radio"
	"slr/internal/routing/srp"
	"slr/internal/sim"
)

func main() {
	log.SetFlags(0)

	const (
		rows = 4
		cols = 4
		gap  = 100.0
		dest = 15
	)

	s := sim.New(7)
	rp := radio.DefaultParams()
	rp.Range = 120 // connect only grid neighbors (and not diagonals)
	ch := radio.NewChannel(s, rp)
	mx := metrics.NewCollector()

	protos := make([]*srp.Protocol, rows*cols)
	nodes := make([]*netstack.Node, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := netstack.NodeID(r*cols + c)
			protos[id] = srp.New(srp.DefaultConfig())
			nodes[id] = netstack.NewNode(s, ch, id, protos[id], mx)
			ch.Register(id, &mobility.Static{At: geo.Point{X: float64(c) * gap, Y: float64(r) * gap}}, nodes[id].Mac())
		}
	}
	for _, n := range nodes {
		n.Start()
	}

	// Several sources keep flows toward the far corner alive;
	// overlapping route computations give interior nodes multiple
	// feasible successors, all kept in label order.
	uid := uint64(0)
	for i, src := range []int{0, 1, 4, 2, 8} {
		src := src
		for tick := 0; tick < 20; tick++ {
			at := sim.Time(i)*time.Second + sim.Time(tick)*500*time.Millisecond
			s.At(at, func() {
				uid++
				nodes[src].SendData(&netstack.DataPacket{
					UID: uid, Src: netstack.NodeID(src), Dst: dest,
					Size: 512, TTL: netstack.DefaultTTL, Created: s.Now(),
				})
			})
		}
	}
	s.RunUntil(14 * time.Second)

	fmt.Printf("4x4 grid, destination %d (far corner). Successor sets:\n\n", dest)
	multi := 0
	for id, p := range protos {
		succ := p.SuccessorsOf(dest)
		if len(succ) == 0 {
			continue
		}
		if len(succ) > 1 {
			multi++
		}
		o := p.Orders()[dest]
		fmt.Printf("  node %2d  label %-12s successors %v\n", id, o, succ)
	}
	fmt.Printf("\n%d nodes hold more than one successor for the destination.\n", multi)
	if multi == 0 {
		fmt.Println("(successor sets are single-path for this seed; re-run with more flows)")
	}

	// Verify the invariant the labels guarantee: the union of all
	// successor edges is acyclic.
	for id, p := range protos {
		mine := p.Orders()[dest]
		for _, nxt := range p.SuccessorsOf(dest) {
			their, ok := protos[nxt].Orders()[dest]
			if !ok {
				continue
			}
			if !mine.Precedes(their) {
				log.Fatalf("order violated on edge %d->%d: %v !≺ %v", id, nxt, mine, their)
			}
		}
	}
	fmt.Println("every successor edge satisfies the ordering criteria: the multipath")
	fmt.Println("successor graph is in topological order and therefore loop-free.")
}

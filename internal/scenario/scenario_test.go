package scenario

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/traffic"
)

// smallParams returns a scaled-down scenario (25 nodes, 60 s, 8 flows)
// that keeps test time reasonable while exercising the full stack.
func smallParams(proto ProtocolName, pause time.Duration, seed int64) Params {
	p := DefaultParams(proto, pause, seed)
	p.Nodes = 25
	p.Terrain = geo.Terrain{Width: 1100, Height: 300}
	p.Duration = 60 * time.Second
	p.Traffic = traffic.Params{Flows: 8, PacketSize: 512, Rate: 4, MeanLife: 30 * time.Second}
	return p
}

func TestAllProtocolsDeliverTraffic(t *testing.T) {
	for _, proto := range AllProtocols {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			t.Parallel()
			r := Run(smallParams(proto, 0, 7))
			if r.DataSent == 0 {
				t.Fatal("no traffic generated")
			}
			if r.DeliveryRatio < 0.3 {
				t.Fatalf("delivery ratio %.2f implausibly low (sent %d, recv %d)",
					r.DeliveryRatio, r.DataSent, r.DataRecv)
			}
			if proto != OLSR && r.ControlTx == 0 {
				t.Fatal("no control packets")
			}
			if r.Latency <= 0 || r.Latency > 30 {
				t.Fatalf("latency %.3f s implausible", r.Latency)
			}
		})
	}
}

func TestLoopFreedomInvariantHolds(t *testing.T) {
	// SRP and LDR must never show a successor cycle; run with the
	// continuous checker on, at constant mobility (hardest case).
	for _, proto := range []ProtocolName{SRP, LDR, AODV} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			t.Parallel()
			p := smallParams(proto, 0, 11)
			p.CheckInvariants = true
			r := Run(p)
			if r.LoopChecks == 0 {
				t.Fatal("checker never ran")
			}
			if len(r.LoopErrors) > 0 {
				t.Fatalf("loop-freedom violated: %v", r.LoopErrors)
			}
		})
	}
}

func TestSameSeedSameTopologyAcrossProtocols(t *testing.T) {
	// The same seed must generate identical workloads for different
	// protocols (the paper fixes mobility/traffic scripts per trial).
	a := Run(smallParams(SRP, 900*time.Second, 3))
	b := Run(smallParams(OLSR, 900*time.Second, 3))
	if a.DataSent != b.DataSent {
		t.Fatalf("workload differs across protocols: %d vs %d", a.DataSent, b.DataSent)
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(smallParams(SRP, 0, 5))
	b := Run(smallParams(SRP, 0, 5))
	if a.DataRecv != b.DataRecv || a.ControlTx != b.ControlTx || a.Latency != b.Latency {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSRPSeqnoStaysZero(t *testing.T) {
	r := Run(smallParams(SRP, 0, 13))
	if r.AvgSeqno != 0 {
		t.Fatalf("SRP average seqno = %v, paper reports exactly 0", r.AvgSeqno)
	}
	if r.MaxDenom == 0 {
		t.Fatal("no fraction denominators recorded")
	}
}

func TestAODVSeqnoGrows(t *testing.T) {
	r := Run(smallParams(AODV, 0, 13))
	if r.AvgSeqno <= 0 {
		t.Fatal("AODV average seqno did not grow")
	}
}

func TestRunTrialsOrdered(t *testing.T) {
	p := smallParams(SRP, 900*time.Second, 100)
	p.Nodes = 15
	p.Duration = 20 * time.Second
	ts := RunTrials(p, 4)
	if len(ts.Results) != 4 {
		t.Fatalf("got %d results", len(ts.Results))
	}
	for i, r := range ts.Results {
		if r.Seed != 100+int64(i) {
			t.Fatalf("result %d has seed %d", i, r.Seed)
		}
	}
	s := ts.Series(func(r Result) float64 { return r.DeliveryRatio })
	if len(s.Values) != 4 {
		t.Fatalf("series has %d values", len(s.Values))
	}
}

func TestUnknownProtocolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown protocol")
		}
	}()
	Run(Params{Protocol: "bogus", Nodes: 2, Terrain: geo.Terrain{Width: 100, Height: 100},
		Range: 100, Duration: time.Second, Traffic: traffic.DefaultParams()})
}

// TestFlowAndHistogramAccounting verifies the streaming metrics pipeline
// end to end: a run's per-flow ledger reconciles with its totals, and the
// latency/hop histograms carry exactly the delivered packets.
func TestFlowAndHistogramAccounting(t *testing.T) {
	r := Run(smallParams(SRP, 0, 5))
	if len(r.Flows) == 0 {
		t.Fatal("no per-flow stats recorded")
	}
	var sent, recv uint64
	lastFlow := uint32(0)
	for _, f := range r.Flows {
		if f.Flow <= lastFlow {
			t.Fatalf("flows not in ascending id order: %+v", r.Flows)
		}
		lastFlow = f.Flow
		if f.Recv > f.Sent {
			t.Errorf("flow %d delivered more than it sent: %+v", f.Flow, f)
		}
		if f.Recv > 0 && f.LastRecv < f.FirstRecv {
			t.Errorf("flow %d delivery times inverted: %+v", f.Flow, f)
		}
		sent += f.Sent
		recv += f.Recv
	}
	// Every workload packet belongs to exactly one flow.
	if sent != r.DataSent || recv != r.DataRecv {
		t.Fatalf("flow ledger sums %d/%d != run totals %d/%d", sent, recv, r.DataSent, r.DataRecv)
	}
	if r.LatencyHist.N != r.DataRecv || r.HopHist.N != r.DataRecv {
		t.Fatalf("histogram N (%d, %d) != delivered %d", r.LatencyHist.N, r.HopHist.N, r.DataRecv)
	}
	if !(r.LatencyP50 > 0 && r.LatencyP50 <= r.LatencyP95 && r.LatencyP95 <= r.LatencyP99) {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", r.LatencyP50, r.LatencyP95, r.LatencyP99)
	}
	// Bucket-bound percentiles bound the mean from the right direction:
	// p99 must not sit below the mean of its own samples' histogram.
	if r.LatencyP99 < r.Latency/2 {
		t.Fatalf("p99 %v implausibly below mean %v", r.LatencyP99, r.Latency)
	}
}

package scenario

import (
	"reflect"
	"testing"
	"time"

	"slr/internal/mobility"
	"slr/internal/radio"
)

// TestGridChannelMatchesLinear is the full-stack half of the acceptance
// criterion: a complete protocol run (MAC, routing, traffic, metrics)
// under the spatial-grid channel index must be byte-identical to the same
// run under the linear reference scan — every metric, counter, and drop
// reason — for the paper's default waypoint setup and for the new
// mobility/propagation models.
func TestGridChannelMatchesLinear(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"paper-default", func(*Params) {}},
		{"gauss-markov-shadowing", func(p *Params) {
			p.Mobility = mobility.Spec{Model: "gauss-markov", MinSpeed: 1, MaxSpeed: 15}
			p.Propagation = radio.PropSpec{Model: "shadowing"}
		}},
		{"manhattan-rayleigh-poisson", func(p *Params) {
			p.Mobility = mobility.Spec{Model: "manhattan", MinSpeed: 1, MaxSpeed: 15}
			p.Propagation = radio.PropSpec{Model: "rayleigh"}
			p.Traffic.Model = "poisson"
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for _, proto := range []ProtocolName{SRP, AODV} {
				lin := smallParams(proto, 0, 11)
				tc.mutate(&lin)
				grd := lin
				lin.RadioIndex = radio.IndexLinear
				grd.RadioIndex = radio.IndexGrid
				lr, gr := Run(lin), Run(grd)
				if !reflect.DeepEqual(lr, gr) {
					t.Fatalf("%s: grid and linear runs diverge:\nlinear: %+v\ngrid:   %+v", proto, lr, gr)
				}
				if lr.DataSent == 0 {
					t.Fatalf("%s: scenario generated no traffic", proto)
				}
			}
		})
	}
}

// TestNewModelsDeliverTraffic verifies every registered mobility, traffic,
// and propagation model runs end to end through the full stack and still
// delivers data.
func TestNewModelsDeliverTraffic(t *testing.T) {
	base := func() Params {
		p := smallParams(SRP, 0, 5)
		p.Duration = 30 * time.Second
		return p
	}
	t.Run("mobility", func(t *testing.T) {
		for _, model := range mobility.Models() {
			p := base()
			p.Mobility = mobility.Spec{Model: model, MinSpeed: 1, MaxSpeed: 15, Pause: time.Second}
			r := Run(p)
			if r.DataSent == 0 || r.DataRecv == 0 {
				t.Fatalf("%s: sent %d recv %d, want both > 0", model, r.DataSent, r.DataRecv)
			}
		}
	})
	t.Run("traffic", func(t *testing.T) {
		// Import cycle-free: model names are stable strings.
		for _, model := range []string{"cbr", "poisson", "onoff"} {
			p := base()
			p.Traffic.Model = model
			r := Run(p)
			if r.DataSent == 0 || r.DataRecv == 0 {
				t.Fatalf("%s: sent %d recv %d, want both > 0", model, r.DataSent, r.DataRecv)
			}
		}
	})
	t.Run("propagation", func(t *testing.T) {
		for _, model := range radio.PropagationModels() {
			p := base()
			p.Propagation = radio.PropSpec{Model: model}
			r := Run(p)
			if r.DataSent == 0 || r.DataRecv == 0 {
				t.Fatalf("%s: sent %d recv %d, want both > 0", model, r.DataSent, r.DataRecv)
			}
		}
	})
}

// Package scenario wires a complete simulation run: N nodes moving on a
// terrain, a routing protocol per node, a traffic workload, metrics
// collection, and optional continuous loop-freedom checking. It is the
// reproduction of the paper's GloMoSim experiment driver (§V), defaulting
// to that evaluation's exact setup (random waypoint, CBR, unit-disk
// radio); Params.Mobility, Params.Traffic.Model, and Params.Propagation
// select any other registered model, and internal/spec loads a complete
// Params from a declarative JSON scenario file.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"slr/internal/geo"
	"slr/internal/loopcheck"
	"slr/internal/metrics"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/radio"
	"slr/internal/routing"
	"slr/internal/routing/srp"
	"slr/internal/sim"
	"slr/internal/traffic"
)

// ProtocolName selects the routing protocol of a run; it must name an
// entry of the routing registry (slr/internal/routing).
type ProtocolName string

// The five protocols of the paper's evaluation.
const (
	SRP  ProtocolName = "SRP"
	LDR  ProtocolName = "LDR"
	AODV ProtocolName = "AODV"
	DSR  ProtocolName = "DSR"
	OLSR ProtocolName = "OLSR"
)

// AllProtocols lists the evaluation's protocols in the paper's order.
// Every entry resolves through the routing registry, and vice versa
// (enforced by a scenario test), so sweeps over AllProtocols cover the
// whole registry in a stable order.
var AllProtocols = []ProtocolName{SRP, LDR, AODV, DSR, OLSR}

// Params configures one run. The zero value is unusable; start from
// DefaultParams.
type Params struct {
	Protocol ProtocolName
	Nodes    int
	Terrain  geo.Terrain
	Range    float64
	MinSpeed float64
	MaxSpeed float64
	Pause    sim.Time
	Duration sim.Time
	Seed     int64
	Traffic  traffic.Params
	// CheckInvariants runs the per-destination successor-graph cycle
	// check every CheckEvery of simulated time.
	CheckInvariants bool
	CheckEvery      sim.Time
	// ProtoParams overrides the selected protocol's constants (spec
	// "protocol_params": durations in seconds, booleans as 0/1). Keys are
	// protocol-specific and validated by the routing registry; the
	// ablation benches toggle SRP heuristics through it.
	ProtoParams map[string]float64
	// Mobility optionally selects a registered mobility model. The zero
	// value keeps the paper's random waypoint built from MinSpeed,
	// MaxSpeed, and Pause; a non-empty Model overrides all three from
	// its own fields.
	Mobility mobility.Spec
	// Propagation optionally selects a registered radio propagation
	// model; the zero value is unit-disk at Range, the paper's radio.
	Propagation radio.PropSpec
	// RadioIndex selects the channel's audible-set index. The default
	// (auto) uses the spatial grid whenever the mobility speed bound is
	// known; tests force the linear reference scan to prove the two are
	// byte-identical.
	RadioIndex radio.IndexKind
	// Workers is the kernel's intra-trial worker count (sim.SetWorkers):
	// same-timestamp batches of conflict-disjoint events are applied
	// across this many goroutines. 0 or 1 is pure serial; any value
	// produces byte-identical results per seed by construction (the
	// parallel-replay gate in the repo root enforces it), so Workers only
	// changes wall-clock and never identifies a run — it is deliberately
	// excluded from sweep job identity.
	Workers int
}

// DefaultParams returns the paper's simulation setup: 100 nodes on
// 2200 m x 600 m, 0-20 m/s random waypoint, 30 CBR flows of 512-byte
// packets at 4 pps, 900 s runs.
func DefaultParams(proto ProtocolName, pause sim.Time, seed int64) Params {
	return Params{
		Protocol:   proto,
		Nodes:      100,
		Terrain:    geo.Terrain{Width: 2200, Height: 600},
		Range:      275,
		MinSpeed:   0,
		MaxSpeed:   20,
		Pause:      pause,
		Duration:   900 * time.Second,
		Seed:       seed,
		Traffic:    traffic.DefaultParams(),
		CheckEvery: 5 * time.Second,
	}
}

// PaperPauseTimes are the eight pause times of Figs. 3–7.
var PaperPauseTimes = []sim.Time{
	0, 50 * time.Second, 100 * time.Second, 200 * time.Second,
	300 * time.Second, 500 * time.Second, 700 * time.Second, 900 * time.Second,
}

// Result carries one run's measurements.
type Result struct {
	Protocol ProtocolName
	Pause    sim.Time
	Seed     int64

	DeliveryRatio float64
	NetworkLoad   float64
	Latency       float64 // seconds
	MACDrops      float64 // mean per node (Fig. 3)
	AvgSeqno      float64 // mean own-seqno increments per node (Fig. 7)
	MeanHops      float64

	DataSent   uint64
	DataRecv   uint64
	ControlTx  uint64
	Collisions uint64
	LoopChecks int
	LoopErrors []string
	MaxDenom   uint32 // largest SRP fraction denominator observed

	// Diagnostics: routing-layer drop reasons and the MAC drop split.
	DropReasons   map[string]uint64
	MACDropsRetry uint64
	MACDropsQueue uint64
	// RREQTx/RREPTx/RERRTx break down control traffic for protocols that
	// report it (SRP).
	RREQTx, RREPTx, RERRTx uint64

	// LatencyHist is the delivered-packet end-to-end latency histogram in
	// microseconds; LatencyP50/P95/P99 are its exact bucket-bound
	// percentiles in seconds (the latency tail Fig. 6's mean hides).
	LatencyHist metrics.Hist
	LatencyP50  float64
	LatencyP95  float64
	LatencyP99  float64
	// HopHist is the delivered-packet hop-count histogram.
	HopHist metrics.Hist
	// Flows is the per-flow ledger (sent/recv/first-last delivery), in
	// flow-id order.
	Flows []metrics.FlowStat
}

// seqnoReporter is implemented by SRP, LDR and AODV (Fig. 7's protocols).
type seqnoReporter interface{ SeqnoDelta() uint64 }

// controlReporter is implemented by protocols that split their control
// traffic by type.
type controlReporter interface {
	ControlBreakdown() (rreq, rrep, rerr uint64)
}

// successorLister is implemented by protocols exposing successor sets.
type successorLister interface {
	SuccessorsOf(dst netstack.NodeID) []netstack.NodeID
}

// SimHook, when non-nil, is called with each trial's Simulator right
// after creation, before any event is scheduled. It exists for the
// scheduler-gate tests in the repo root, which use it to enable the
// kernel's shadow order checker on full protocol scenarios.
var SimHook func(*sim.Simulator)

// Run executes one simulation and returns its measurements.
func Run(p Params) Result {
	s := sim.New(p.Seed)
	if SimHook != nil {
		SimHook(s)
	}
	if p.Workers > 1 {
		s.SetWorkers(p.Workers)
		// Stop the worker goroutines when the trial is done so sweeps that
		// run thousands of trials never accumulate idle pools.
		defer s.SetWorkers(1)
	}
	mobSpec := p.Mobility
	if mobSpec.Model == "" {
		// The paper's random waypoint, from the legacy scalar fields.
		mobSpec = mobility.Spec{
			Model:    "waypoint",
			MinSpeed: p.MinSpeed,
			MaxSpeed: p.MaxSpeed,
			Pause:    p.Pause,
		}
	}
	rp := radio.DefaultParams()
	rp.Range = p.Range
	rp.Propagation = p.Propagation
	rp.Seed = p.Seed
	rp.MaxSpeed = mobSpec.MaxSpeed
	rp.Index = p.RadioIndex
	ch := radio.NewChannel(s, rp)
	mx := metrics.NewCollector()

	// Mobility and traffic get RNG streams independent of the protocol
	// stack, and each node's mobility its own stream, so a seed fixes
	// one topology and one workload for every protocol — the paper's
	// offline-generated per-trial scripts.
	//
	// RNG-partitioning audit for intra-trial parallelism: these per-node
	// mobility streams and the traffic stream are the only private RNGs;
	// everything in the protocol stack (routing jitter, multipath picks,
	// MAC backoff) draws from the one shared kernel RNG via node.Rand().
	// The parallel executor therefore treats every RNG-drawing callback as
	// a barrier event — only provably RNG-free event classes (see
	// radio.beginReception) carry conflict keys — and mobility positions
	// are only sampled from inside barrier events (Transmit's audible
	// query), never from keyed callbacks, so the private streams are never
	// raced either.
	protos := make([]netstack.Protocol, p.Nodes)
	nodes := make([]*netstack.Node, p.Nodes)
	senders := make([]traffic.Sender, p.Nodes)
	for i := 0; i < p.Nodes; i++ {
		protos[i] = buildProtocol(p)
		n := netstack.NewNode(s, ch, netstack.NodeID(i), protos[i], mx)
		mobRng := rand.New(rand.NewSource(p.Seed<<16 + int64(i)))
		m, err := mobility.Build(p.Terrain, mobRng, mobSpec)
		if err != nil {
			// Spec loading validates model names and parameters, so an
			// error here is a wiring bug.
			panic(err)
		}
		ch.Register(netstack.NodeID(i), m, n.Mac())
		nodes[i] = n
		senders[i] = n
	}
	for _, n := range nodes {
		n.Start()
	}

	trafRng := rand.New(rand.NewSource(p.Seed<<16 + int64(p.Nodes) + 1))
	gen := traffic.NewGenerator(s, trafRng, senders, p.Traffic, p.Duration)
	gen.Start()

	res := Result{Protocol: p.Protocol, Pause: p.Pause, Seed: p.Seed}

	if p.CheckInvariants {
		every := p.CheckEvery
		if every <= 0 {
			every = 5 * time.Second
		}
		var check func()
		check = func() {
			if err := checkLoops(protos); err != nil {
				res.LoopErrors = append(res.LoopErrors,
					fmt.Sprintf("t=%v: %v", s.Now(), err))
			}
			res.LoopChecks++
			if s.Now() < p.Duration {
				s.After(every, check)
			}
		}
		s.After(every, check)
	}

	// Drain for a grace period after traffic ends so in-flight packets
	// count.
	s.RunUntil(p.Duration + 10*time.Second)

	res.DeliveryRatio = mx.DeliveryRatio()
	res.NetworkLoad = mx.NetworkLoad()
	res.Latency = mx.MeanLatency()
	res.MeanHops = mx.MeanHops()
	res.DataSent = mx.DataSent
	res.DataRecv = mx.DataRecv
	res.ControlTx = mx.ControlTx
	res.Collisions = ch.Collisions()
	res.LatencyHist = mx.LatencyHist
	res.LatencyP50, res.LatencyP95, res.LatencyP99 = mx.LatencyHist.PercentilesSec()
	res.HopHist = mx.HopHist
	res.Flows = mx.Flows()

	var drops uint64
	for _, n := range nodes {
		st := n.Mac().Stats()
		drops += st.Drops()
		res.MACDropsRetry += st.DropsRetry
		res.MACDropsQueue += st.DropsQueue
	}
	res.MACDrops = float64(drops) / float64(p.Nodes)
	res.DropReasons = mx.DataDrops

	var seqSum uint64
	seqCount := 0
	for _, pr := range protos {
		if sr, ok := pr.(seqnoReporter); ok {
			seqSum += sr.SeqnoDelta()
			seqCount++
		}
		if sp, ok := pr.(*srp.Protocol); ok {
			if d := sp.MaxDenominator(); d > res.MaxDenom {
				res.MaxDenom = d
			}
		}
		if cr, ok := pr.(controlReporter); ok {
			q, r, e := cr.ControlBreakdown()
			res.RREQTx += q
			res.RREPTx += r
			res.RERRTx += e
		}
	}
	if seqCount > 0 {
		res.AvgSeqno = float64(seqSum) / float64(seqCount)
	}
	return res
}

func buildProtocol(p Params) netstack.Protocol {
	proto, err := routing.Build(routing.Spec{Name: string(p.Protocol), Params: p.ProtoParams})
	if err != nil {
		// Spec loading validates protocol names and parameters, so an
		// error here is a wiring bug.
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return proto
}

// checkLoops verifies per-destination acyclicity over all protocols'
// successor sets.
func checkLoops(protos []netstack.Protocol) error {
	for dst := range protos {
		adj := make(map[int][]int)
		for i, pr := range protos {
			sl, ok := pr.(successorLister)
			if !ok {
				return nil // protocol does not expose successors
			}
			for _, s := range sl.SuccessorsOf(netstack.NodeID(dst)) {
				adj[i] = append(adj[i], int(s))
			}
		}
		if cyc := loopcheck.FindCycle(adj); cyc != nil {
			return fmt.Errorf("destination %d: successor cycle %v", dst, cyc)
		}
	}
	return nil
}

// TrialSet aggregates per-trial results for one (protocol, pause) point.
type TrialSet struct {
	Protocol ProtocolName
	Pause    sim.Time
	Results  []Result
}

// Series extracts a metric across trials.
func (ts *TrialSet) Series(metric func(Result) float64) *metrics.Series {
	s := &metrics.Series{}
	for _, r := range ts.Results {
		s.Add(metric(r))
	}
	return s
}

// RunTrials runs `trials` independent runs of p (seeds p.Seed, p.Seed+1,
// ...) serially and returns them in seed order. The same seed produces the
// same topology and traffic for every protocol, matching the paper's fixed
// per-trial mobility and traffic scripts.
//
// RunTrials is the serial reference path: the work-stealing scheduler in
// internal/runner must produce byte-identical results for the same seeds,
// and its regression tests compare against this loop. Use
// runner.Run(runner.TrialJobs(p, trials), opts) to saturate all cores.
func RunTrials(p Params, trials int) TrialSet {
	results := make([]Result, trials)
	for i := range results {
		tp := p
		tp.Seed = p.Seed + int64(i)
		results[i] = Run(tp)
	}
	return TrialSet{Protocol: p.Protocol, Pause: p.Pause, Results: results}
}

package mac

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/radio"
	"slr/internal/sim"
)

// upper records MAC indications for assertions.
type upper struct {
	delivered []any
	deliverFr []radio.NodeID
	failed    []any
	acked     []any
}

func (u *upper) Deliver(from radio.NodeID, payload any) {
	u.delivered = append(u.delivered, payload)
	u.deliverFr = append(u.deliverFr, from)
}
func (u *upper) SendFailed(to radio.NodeID, payload any) { u.failed = append(u.failed, payload) }
func (u *upper) SendOK(to radio.NodeID, payload any)     { u.acked = append(u.acked, payload) }

type station struct {
	mac *MAC
	up  *upper
}

// build creates stations at x positions on a 100 m range channel.
func build(xs ...float64) (*sim.Simulator, *radio.Channel, []*station) {
	s := sim.New(42)
	p := radio.DefaultParams()
	p.Range = 100
	ch := radio.NewChannel(s, p)
	sts := make([]*station, len(xs))
	for i, x := range xs {
		up := &upper{}
		m := New(s, ch, radio.NodeID(i), up)
		ch.Register(radio.NodeID(i), &mobility.Static{At: geo.Point{X: x}}, m)
		sts[i] = &station{mac: m, up: up}
	}
	return s, ch, sts
}

func TestUnicastDeliveryAndAck(t *testing.T) {
	s, _, sts := build(0, 50)
	sts[0].mac.Send(1, 512, "hello")
	s.Run()
	if len(sts[1].up.delivered) != 1 || sts[1].up.delivered[0] != "hello" {
		t.Fatalf("delivered = %v", sts[1].up.delivered)
	}
	if sts[1].up.deliverFr[0] != 0 {
		t.Fatalf("from = %v, want 0", sts[1].up.deliverFr[0])
	}
	if len(sts[0].up.acked) != 1 {
		t.Fatalf("acked = %v, want 1 entry", sts[0].up.acked)
	}
	if len(sts[0].up.failed) != 0 {
		t.Fatalf("failed = %v, want none", sts[0].up.failed)
	}
	st := sts[0].mac.Stats()
	if st.TxUnicast != 1 || st.Retries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnicastToUnreachableFails(t *testing.T) {
	s, _, sts := build(0, 500)
	sts[0].mac.Send(1, 512, "lost")
	s.Run()
	if len(sts[0].up.failed) != 1 || sts[0].up.failed[0] != "lost" {
		t.Fatalf("failed = %v, want [lost]", sts[0].up.failed)
	}
	st := sts[0].mac.Stats()
	if st.DropsRetry != 1 {
		t.Fatalf("DropsRetry = %d, want 1", st.DropsRetry)
	}
	if st.Retries != shortRetryLimit-1 {
		t.Fatalf("Retries = %d, want %d", st.Retries, shortRetryLimit-1)
	}
	if len(sts[1].up.delivered) != 0 {
		t.Fatal("unreachable node received payload")
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	s, _, sts := build(0, 50, 90, 400)
	sts[0].mac.Broadcast(64, "flood")
	s.Run()
	for i := 1; i <= 2; i++ {
		if len(sts[i].up.delivered) != 1 {
			t.Fatalf("node %d delivered %v", i, sts[i].up.delivered)
		}
	}
	if len(sts[3].up.delivered) != 0 {
		t.Fatal("out-of-range node received broadcast")
	}
	if st := sts[0].mac.Stats(); st.TxBroadcast != 1 {
		t.Fatalf("TxBroadcast = %d, want 1", st.TxBroadcast)
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	s, _, sts := build(0, 50)
	for i := 0; i < 5; i++ {
		sts[0].mac.Send(1, 100, i)
	}
	s.Run()
	if len(sts[1].up.delivered) != 5 {
		t.Fatalf("delivered %d, want 5", len(sts[1].up.delivered))
	}
	for i, v := range sts[1].up.delivered {
		if v != i {
			t.Fatalf("delivered out of order: %v", sts[1].up.delivered)
		}
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s, _, sts := build(0, 50)
	n := queueCap + 10
	for i := 0; i < n; i++ {
		sts[0].mac.Send(1, 100, i)
	}
	s.Run()
	st := sts[0].mac.Stats()
	// One job is dequeued immediately as cur, so queueCap+1 fit.
	if st.DropsQueue == 0 {
		t.Fatal("no queue drops recorded")
	}
	if got := len(sts[1].up.delivered); got != n-int(st.DropsQueue) {
		t.Fatalf("delivered %d, want %d", got, n-int(st.DropsQueue))
	}
}

func TestContendersBothSucceed(t *testing.T) {
	// Two senders in range of each other contend; carrier sense plus
	// backoff must let both deliver to the middle node.
	s, _, sts := build(0, 50, 100)
	sts[0].mac.Send(1, 512, "a")
	sts[2].mac.Send(1, 512, "b")
	s.Run()
	if len(sts[1].up.delivered) != 2 {
		t.Fatalf("delivered %v, want both", sts[1].up.delivered)
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// Five stations clustered within carrier-sense range all send to
	// station 0 simultaneously.
	s, _, sts := build(0, 10, 20, 30, 40, 50)
	for i := 1; i <= 5; i++ {
		sts[i].mac.Send(0, 512, i)
	}
	s.Run()
	if len(sts[0].up.delivered) != 5 {
		t.Fatalf("delivered %d of 5", len(sts[0].up.delivered))
	}
}

func TestHiddenTerminalEventuallyDelivers(t *testing.T) {
	// 0 and 2 are hidden from each other; ARQ retries must recover at
	// least one of the two transfers to the middle node.
	s, _, sts := build(0, 90, 180)
	sts[0].mac.Send(1, 512, "left")
	sts[2].mac.Send(1, 512, "right")
	s.Run()
	if len(sts[1].up.delivered) == 0 {
		t.Fatal("hidden-terminal collision never recovered")
	}
}

func TestDedupOnAckLoss(t *testing.T) {
	// Force an ACK collision scenario indirectly: deliveries must never
	// exceed the number of distinct payloads even under heavy retry.
	s, _, sts := build(0, 90, 180)
	for i := 0; i < 10; i++ {
		sts[0].mac.Send(1, 512, i)
		sts[2].mac.Send(1, 512, 100+i)
	}
	s.Run()
	seen := make(map[any]int)
	for _, v := range sts[1].up.delivered {
		seen[v]++
		if seen[v] > 1 {
			t.Fatalf("payload %v delivered twice", v)
		}
	}
}

func TestBroadcastDoesNotBlockOnLoss(t *testing.T) {
	// Broadcast has no ARQ: an isolated node's broadcast completes and
	// the queue moves on.
	s, _, sts := build(0)
	sts[0].mac.Broadcast(100, "a")
	sts[0].mac.Broadcast(100, "b")
	s.Run()
	if st := sts[0].mac.Stats(); st.TxBroadcast != 2 {
		t.Fatalf("TxBroadcast = %d, want 2", st.TxBroadcast)
	}
	if len(sts[0].up.failed) != 0 {
		t.Fatal("broadcast reported failure")
	}
}

func TestLatencyReasonable(t *testing.T) {
	// A single unicast on an idle channel completes within ~5 ms
	// (DIFS + backoff + 540-byte frame + SIFS + ACK).
	s, _, sts := build(0, 50)
	var done sim.Time
	start := s.Now()
	sts[0].mac.Send(1, 512, "x")
	s.Run()
	for range sts[1].up.delivered {
		done = s.Now()
	}
	if done == 0 {
		t.Fatal("not delivered")
	}
	if elapsed := done - start; elapsed > 10*time.Millisecond {
		t.Fatalf("idle-channel unicast took %v", elapsed)
	}
}

func TestStatsDropsSum(t *testing.T) {
	st := Stats{DropsRetry: 3, DropsQueue: 4}
	if st.Drops() != 7 {
		t.Fatalf("Drops = %d, want 7", st.Drops())
	}
}

// nullUpper discards every MAC indication, so steady-state alloc
// measurements see only the MAC and kernel, not the test recorder.
type nullUpper struct{}

func (nullUpper) Deliver(radio.NodeID, any)    {}
func (nullUpper) SendFailed(radio.NodeID, any) {}
func (nullUpper) SendOK(radio.NodeID, any)     {}

// pingUpper keeps exactly one unicast in flight: every confirmed send
// immediately queues the next one.
type pingUpper struct {
	nullUpper
	mac *MAC
}

func (u *pingUpper) SendOK(to radio.NodeID, payload any) { u.mac.Send(to, 512, payload) }

// TestSteadyStateZeroAlloc pins the flattened hot path: once the job pool
// and the kernel's event pool are warm, a full unicast exchange
// (backoff, DATA, SIFS, ACK, completion, re-send) allocates nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	s := sim.New(42)
	p := radio.DefaultParams()
	p.Range = 100
	ch := radio.NewChannel(s, p)
	pu := &pingUpper{}
	m0 := New(s, ch, 0, pu)
	pu.mac = m0
	m1 := New(s, ch, 1, nullUpper{})
	ch.Register(0, &mobility.Static{At: geo.Point{X: 0}}, m0)
	ch.Register(1, &mobility.Static{At: geo.Point{X: 50}}, m1)
	m0.Send(1, 512, "payload")
	for i := 0; i < 2000; i++ { // warm the pools across many exchanges
		s.Step()
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 200; i++ {
			s.Step()
		}
	})
	if avg > 1 {
		t.Fatalf("steady-state MAC exchange allocates %.1f times per 200 events, want ~0", avg)
	}
	if st := m0.Stats(); st.TxUnicast < 100 {
		t.Fatalf("traffic did not sustain: %+v", st)
	}
}

// Package mac implements a CSMA/CA medium-access layer over the radio
// channel: DIFS + binary-exponential-backoff contention, unicast DATA/ACK
// with a retry limit, and broadcast without acknowledgment.
//
// It reproduces the 802.11 DCF behaviours the paper's protocols depend on:
//
//   - link-layer unicast loss detection: a unicast that exhausts its
//     retries is reported to the network layer, which treats it as a broken
//     link and can resend the packet on a new route ("packet cache", §V);
//   - contention drops under load, feeding Fig. 3 (MAC layer drops);
//   - shared-capacity contention that penalizes chatty protocols.
//
// The state machine is allocation-free in the steady state: every timer
// re-arms one of a fixed set of callbacks bound once at construction (no
// per-attempt closure churn), job structs are pooled per MAC, and the
// frames a station originates are built in place in per-purpose Frame
// structs whose reuse windows are serialized by the DCF timing itself
// (see the txFrame/respFrame comments).
package mac

import (
	"time"

	"slr/internal/radio"
	"slr/internal/sim"
)

// 802.11-like timing and contention constants for a 2 Mbps channel.
const (
	slotTime = 20 * time.Microsecond
	sifs     = 10 * time.Microsecond
	difs     = 50 * time.Microsecond
	cwMin    = 31
	cwMax    = 1023
	// shortRetryLimit bounds consecutive failed channel acquisitions
	// (RTS with no CTS, or an unacknowledged frame sent without RTS).
	// The short counter resets whenever a CTS is received, per the
	// 802.11 SRC/LRC rules.
	shortRetryLimit = 7
	// longRetryLimit bounds DATA transmissions that won the RTS/CTS
	// handshake but got no ACK.
	longRetryLimit = 4
	// ackSize is the ACK frame length in bytes.
	ackSize = 14
	// rtsSize and ctsSize are the RTS/CTS frame lengths.
	rtsSize = 20
	ctsSize = 14
	// rtsThreshold: unicast payloads at or above this size reserve the
	// medium with an RTS/CTS exchange first, the 802.11 default
	// behaviour for the paper's 512-byte data packets. Hidden terminals
	// hear the receiver's CTS and defer, which is what keeps collision
	// losses from masquerading as link breaks.
	rtsThreshold = 256
	// headerSize is added to every payload for MAC framing.
	headerSize = 28
	// queueCap bounds the interface queue, like ns-2's 50-packet IFQ.
	queueCap = 50
)

// UpperLayer receives MAC indications. Implemented by the network stack.
type UpperLayer interface {
	// Deliver hands up a received payload (unicast to this node or
	// broadcast).
	Deliver(from radio.NodeID, payload any)
	// SendFailed reports a unicast payload dropped after the retry limit;
	// routing treats this as a broken link to `to`.
	SendFailed(to radio.NodeID, payload any)
	// SendOK reports a unicast payload acknowledged by `to`.
	SendOK(to radio.NodeID, payload any)
}

// BroadcastDone is optionally implemented by an UpperLayer that pools its
// broadcast payloads: it fires once the frame's air time has elapsed, at
// which point every audible station has completed (or corrupted) its
// reception, so the sender may reclaim the payload container. Deliveries
// of the frame fire before this notification within the same instant.
type BroadcastDone interface {
	BroadcastDone(payload any)
}

// Stats are per-node MAC counters.
type Stats struct {
	TxUnicast   uint64 // DATA transmissions (including retries)
	TxBroadcast uint64
	TxAck       uint64
	TxRts       uint64
	TxCts       uint64
	RxData      uint64 // frames delivered up
	RxAck       uint64
	Retries     uint64 // retransmission attempts
	DropsRetry  uint64 // unicasts dropped at the retry limit
	DropsQueue  uint64 // payloads dropped on interface-queue overflow
}

// Drops returns the total MAC-layer packet drops (Fig. 3's metric).
func (s Stats) Drops() uint64 { return s.DropsRetry + s.DropsQueue }

type job struct {
	to      radio.NodeID
	size    int
	payload any
	// shortCnt counts failed channel acquisitions since the last
	// successful CTS; longCnt counts unacknowledged DATA transmissions.
	shortCnt int
	longCnt  int
	cw       int
	seq      uint32
	priority bool
}

// MAC is one station's medium-access state machine.
type MAC struct {
	id    radio.NodeID
	sim   *sim.Simulator
	ch    *radio.Channel
	up    UpperLayer
	bd    BroadcastDone // m.up's optional hook, asserted once
	queue []*job
	free  []*job // job pool; see getJob/putJob
	cur   *job
	// ackTimer waits for the CTS or ACK of cur; it is re-armed in place
	// across retries (sim.Reschedule) instead of canceled and reallocated.
	ackTimer sim.Timer
	// waitTimer is the pending backoff/attempt event for cur.
	waitTimer sim.Timer
	// bcastTimer marks the end of cur's broadcast air time; bcastJob is
	// the job it completes (one broadcast in flight per station).
	bcastTimer sim.Timer
	bcastJob   *job
	// respTimer is the pending SIFS-delayed CTS or ACK response, sending
	// respFrame. A station can owe at most one response at a time: a
	// response is armed sifs (10us) after a clean reception ends, and the
	// next clean reception cannot end sooner than one PHY preamble
	// (192us) later — receptions overlapping our response transmission
	// are corrupted and deliver nothing.
	respTimer sim.Timer
	respFrame radio.Frame
	// txFrame carries cur's RTS or DATA frame. One outgoing exchange
	// frame exists at a time, and every reception of it completes at its
	// air-time end, strictly before the earliest event that rebuilds it
	// (retry after timeout, DATA after CTS+SIFS, or the next job's
	// attempt after DIFS+backoff), so in-place reuse is safe.
	txFrame radio.Frame
	// awaitingCts marks the RTS phase of cur's exchange.
	awaitingCts bool
	seq         uint32
	// lastSeq dedups retransmitted unicasts per sender.
	lastSeq map[radio.NodeID]uint32
	stats   Stats

	// Bound callbacks, allocated once here and re-armed through
	// sim.Reschedule ever after: the per-attempt hot path (backoff,
	// timeout, retry, response) closes over nothing.
	onWait     func()
	onTimeout  func()
	onCtsSifs  func()
	onBcastEnd func()
	onResp     func()
}

var _ radio.Receiver = (*MAC)(nil)

// New creates a MAC for station id and registers nothing — the caller
// registers it with the channel (Register requires the mobility model,
// which the scenario owns).
func New(s *sim.Simulator, ch *radio.Channel, id radio.NodeID, up UpperLayer) *MAC {
	m := &MAC{
		id:      id,
		sim:     s,
		ch:      ch,
		up:      up,
		lastSeq: make(map[radio.NodeID]uint32),
	}
	m.bd, _ = up.(BroadcastDone)
	// The timers below are canceled (or superseded by Reschedule) in
	// next() whenever cur changes, so when one fires, cur is still the
	// job it was armed for; the nil checks are the only staleness guards
	// the bound callbacks need.
	m.onWait = func() {
		m.waitTimer = sim.Timer{}
		if m.cur != nil {
			m.attempt()
		}
	}
	m.onTimeout = func() {
		if m.cur != nil {
			m.exchangeTimeout()
		}
	}
	m.onCtsSifs = func() {
		m.ackTimer = sim.Timer{}
		if m.cur != nil {
			m.sendData(m.cur)
		}
	}
	m.onBcastEnd = func() {
		j := m.bcastJob
		m.bcastJob = nil
		if m.cur == j {
			m.next()
		}
		if m.bd != nil {
			m.bd.BroadcastDone(j.payload)
		}
		m.putJob(j)
	}
	m.onResp = func() {
		m.respTimer = sim.Timer{}
		if m.ch.Transmitting(m.id) {
			return // half-duplex conflict: the sender will retry
		}
		if m.respFrame.Kind == radio.Cts {
			m.stats.TxCts++
		} else {
			m.stats.TxAck++
		}
		m.ch.Transmit(&m.respFrame)
	}
	return m
}

// Stats returns a copy of the counters.
func (m *MAC) Stats() Stats { return m.stats }

// QueueLen returns the number of queued (not yet attempted) payloads.
func (m *MAC) QueueLen() int { return len(m.queue) }

// getJob takes a job from the pool, resetting every field.
func (m *MAC) getJob(to radio.NodeID, size int, payload any, priority bool) *job {
	var j *job
	if n := len(m.free); n > 0 {
		j = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
	} else {
		j = &job{}
	}
	*j = job{to: to, size: size, payload: payload, priority: priority}
	return j
}

// putJob returns a completed (delivered, dropped, or evicted) job to the
// pool.
func (m *MAC) putJob(j *job) {
	j.payload = nil
	m.free = append(m.free, j)
}

// Send queues a unicast payload of `size` bytes toward `to`.
func (m *MAC) Send(to radio.NodeID, size int, payload any) {
	if to == radio.Broadcast {
		m.Broadcast(size, payload)
		return
	}
	m.enqueue(to, size, payload, false)
}

// Broadcast queues a link-layer broadcast payload.
func (m *MAC) Broadcast(size int, payload any) {
	m.enqueue(radio.Broadcast, size, payload, false)
}

// SendPriority queues a unicast payload ahead of normal traffic. Network
// stacks use it for routing control packets, mirroring the priority
// interface queue of the ns-2/GloMoSim models the paper's evaluation runs
// on: routing packets do not wait behind full data queues.
func (m *MAC) SendPriority(to radio.NodeID, size int, payload any) {
	if to == radio.Broadcast {
		m.BroadcastPriority(size, payload)
		return
	}
	m.enqueue(to, size, payload, true)
}

// BroadcastPriority queues a broadcast payload ahead of normal traffic.
func (m *MAC) BroadcastPriority(size int, payload any) {
	m.enqueue(radio.Broadcast, size, payload, true)
}

func (m *MAC) enqueue(to radio.NodeID, size int, payload any, priority bool) {
	if len(m.queue) >= queueCap {
		if !priority {
			m.stats.DropsQueue++
			return
		}
		// Priority traffic evicts the newest normal payload.
		evicted := false
		for i := len(m.queue) - 1; i >= 0; i-- {
			if !m.queue[i].priority {
				old := m.queue[i]
				copy(m.queue[i:], m.queue[i+1:])
				m.queue[len(m.queue)-1] = nil
				m.queue = m.queue[:len(m.queue)-1]
				m.stats.DropsQueue++
				m.putJob(old)
				evicted = true
				break
			}
		}
		if !evicted {
			m.stats.DropsQueue++
			return
		}
	}
	j := m.getJob(to, size, payload, priority)
	j.cw = cwMin
	j.seq = m.seq
	m.seq++
	if j.priority {
		// Insert after the last queued priority job, ahead of data.
		pos := 0
		for pos < len(m.queue) && m.queue[pos].priority {
			pos++
		}
		m.queue = append(m.queue, nil)
		copy(m.queue[pos+1:], m.queue[pos:])
		m.queue[pos] = j
	} else {
		m.queue = append(m.queue, j)
	}
	if m.cur == nil {
		m.next()
	}
}

func (m *MAC) next() {
	m.sim.Cancel(m.ackTimer)
	m.ackTimer = sim.Timer{}
	m.sim.Cancel(m.waitTimer)
	m.waitTimer = sim.Timer{}
	m.awaitingCts = false
	if len(m.queue) == 0 {
		m.cur = nil
		return
	}
	m.cur = m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue[len(m.queue)-1] = nil
	m.queue = m.queue[:len(m.queue)-1]
	m.backoff()
}

// backoff schedules the next transmission attempt after the medium is
// expected to go idle, plus DIFS and a random number of slots.
func (m *MAC) backoff() {
	start := m.ch.IdleAt(m.id)
	wait := difs + sim.Time(m.sim.Rand().Intn(m.cur.cw+1))*slotTime
	m.waitTimer = m.sim.Reschedule(m.waitTimer, start+wait, m.onWait)
}

// useRTS reports whether j's exchange starts with RTS/CTS.
func (m *MAC) useRTS(j *job) bool {
	return j.to != radio.Broadcast && j.size+headerSize >= rtsThreshold
}

func (m *MAC) attempt() {
	j := m.cur
	if m.ch.Busy(m.id) {
		// Medium grabbed during our backoff: redraw and retry. This is
		// a simplification of DCF counter freezing; it preserves the
		// contention behaviour without per-slot events.
		m.backoff()
		return
	}
	if m.useRTS(j) {
		m.sendRTS(j)
		return
	}
	m.sendData(j)
}

// sendRTS opens the exchange: RTS reserving CTS + DATA + ACK.
func (m *MAC) sendRTS(j *job) {
	dataAir := m.ch.AirTime(j.size + headerSize)
	dur := 3*sifs + m.ch.AirTime(ctsSize) + dataAir + m.ch.AirTime(ackSize)
	m.txFrame = radio.Frame{From: m.id, To: j.to, Kind: radio.Rts, Seq: j.seq,
		Size: rtsSize, Dur: dur}
	m.stats.TxRts++
	m.awaitingCts = true
	m.ch.Transmit(&m.txFrame)
	timeout := m.ch.AirTime(rtsSize) + sifs + m.ch.AirTime(ctsSize) + 3*slotTime
	m.ackTimer = m.sim.RescheduleAfter(m.ackTimer, timeout, m.onTimeout)
}

// sendData transmits the payload frame (directly, or after winning the
// RTS/CTS handshake).
func (m *MAC) sendData(j *job) {
	dur := sim.Time(0)
	if j.to != radio.Broadcast {
		dur = sifs + m.ch.AirTime(ackSize)
	}
	m.txFrame = radio.Frame{
		From:    m.id,
		To:      j.to,
		Kind:    radio.Data,
		Seq:     j.seq,
		Size:    j.size + headerSize,
		Dur:     dur,
		Payload: j.payload,
	}
	air := m.ch.AirTime(m.txFrame.Size)
	m.ch.Transmit(&m.txFrame)
	if j.to == radio.Broadcast {
		m.stats.TxBroadcast++
		m.bcastJob = j
		m.bcastTimer = m.sim.RescheduleAfter(m.bcastTimer, air, m.onBcastEnd)
		return
	}
	m.stats.TxUnicast++
	timeout := air + sifs + m.ch.AirTime(ackSize) + 3*slotTime
	m.ackTimer = m.sim.RescheduleAfter(m.ackTimer, timeout, m.onTimeout)
}

// exchangeTimeout fires when the expected CTS or ACK for cur never
// arrived.
func (m *MAC) exchangeTimeout() {
	j := m.cur
	m.ackTimer = sim.Timer{}
	failed := false
	if m.awaitingCts || !m.useRTS(j) {
		// Channel acquisition failed (no CTS), or a non-RTS unicast
		// went unacknowledged: short retry counter.
		j.shortCnt++
		failed = j.shortCnt >= shortRetryLimit
	} else {
		// The handshake succeeded but DATA drew no ACK: long retry
		// counter; the retry re-acquires the channel from scratch.
		j.longCnt++
		failed = j.longCnt >= longRetryLimit
	}
	m.awaitingCts = false
	if failed {
		m.stats.DropsRetry++
		payload, to := j.payload, j.to
		m.next()
		m.putJob(j)
		m.up.SendFailed(to, payload)
		return
	}
	m.stats.Retries++
	if j.cw < cwMax {
		j.cw = j.cw*2 + 1
		if j.cw > cwMax {
			j.cw = cwMax
		}
	}
	m.backoff()
}

// OnFrame implements radio.Receiver.
func (m *MAC) OnFrame(f *radio.Frame) {
	// Re-entrancy/parallelism audit: the radio tags end-of-reception
	// events for overheard unicast frames as node-local (see
	// radio.beginReception), which relies on this handler's overheard
	// paths touching nothing beyond this node. That holds: overheard
	// frames with Dur > 0 (every unicast DATA/RTS/CTS) take the NAV
	// branch below — reads of f and AirTime, one write to this station's
	// NAV — and overheard Dur == 0 frames can only be ACKs, which hit the
	// f.To != m.id early return in the switch. Neither draws RNG,
	// schedules, nor transmits. Every other path (addressed frames,
	// broadcasts) runs only under barrier events, where the full MAC —
	// backoff's shared-RNG draw included — is fair game.
	//
	// Virtual carrier sense: frames addressed elsewhere reserve the
	// medium for their advertised duration. An overheard RTS reserves
	// only up to where its CTS would appear (the 802.11 NAV-reset rule):
	// if the handshake fails, the medium is not left blocked for the
	// whole exchange; a successful CTS and the DATA frame extend the
	// reservation themselves at the stations that must defer.
	if f.To != m.id && f.Dur > 0 {
		dur := f.Dur
		if f.Kind == radio.Rts {
			short := sifs + m.ch.AirTime(ctsSize) + 2*slotTime
			if short < dur {
				dur = short
			}
		}
		m.ch.SetNAV(m.id, m.sim.Now()+dur)
		return
	}
	switch f.Kind {
	case radio.Rts:
		m.handleRTS(f)
	case radio.Cts:
		if f.To != m.id {
			return
		}
		j := m.cur
		if j != nil && m.awaitingCts && j.to == f.From && j.seq == f.Seq {
			m.awaitingCts = false
			j.shortCnt = 0 // successful acquisition resets SRC
			// Re-arm the pending CTS-timeout node in place as the SIFS
			// timer that launches DATA.
			m.ackTimer = m.sim.RescheduleAfter(m.ackTimer, sifs, m.onCtsSifs)
		}
	case radio.Ack:
		if f.To != m.id {
			return
		}
		m.stats.RxAck++
		j := m.cur
		if j != nil && !m.awaitingCts && j.to == f.From && j.seq == f.Seq {
			payload, to := j.payload, j.to
			m.next()
			m.putJob(j)
			m.up.SendOK(to, payload)
		}
	case radio.Data:
		switch f.To {
		case radio.Broadcast:
			m.stats.RxData++
			m.up.Deliver(f.From, f.Payload)
		case m.id:
			m.sendAck(f)
			// Dedup retransmissions whose ACK was lost.
			if last, ok := m.lastSeq[f.From]; ok && last == f.Seq {
				return
			}
			m.lastSeq[f.From] = f.Seq
			m.stats.RxData++
			m.up.Deliver(f.From, f.Payload)
		}
	}
}

// handleRTS answers a medium reservation addressed to this station.
func (m *MAC) handleRTS(f *radio.Frame) {
	m.respFrame = radio.Frame{
		From: m.id,
		To:   f.From,
		Kind: radio.Cts,
		Seq:  f.Seq,
		Size: ctsSize,
		Dur:  f.Dur - sifs - m.ch.AirTime(ctsSize),
	}
	m.respTimer = m.sim.RescheduleAfter(m.respTimer, sifs, m.onResp)
}

// sendAck transmits an ACK for f after SIFS, bypassing the contention queue
// (ACKs have priority in DCF).
func (m *MAC) sendAck(f *radio.Frame) {
	m.respFrame = radio.Frame{
		From: m.id,
		To:   f.From,
		Kind: radio.Ack,
		Seq:  f.Seq,
		Size: ackSize,
	}
	m.respTimer = m.sim.RescheduleAfter(m.respTimer, sifs, m.onResp)
}

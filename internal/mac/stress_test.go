package mac

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/radio"
	"slr/internal/sim"
)

// TestStressContention: 20 stations in one collision domain each send 200
// 512-byte unicasts to a hub at an offered load near capacity; false
// link-failure reports (DropsRetry) must be rare.
func TestStressContention(t *testing.T) {
	s := sim.New(9)
	p := radio.DefaultParams()
	p.Range = 300
	ch := radio.NewChannel(s, p)
	ups := make([]*upper, 21)
	macs := make([]*MAC, 21)
	for i := 0; i <= 20; i++ {
		ups[i] = &upper{}
		macs[i] = New(s, ch, radio.NodeID(i), ups[i])
		ch.Register(radio.NodeID(i), &mobility.Static{At: geo.Point{X: float64(i)}}, macs[i])
	}
	const perNode = 200
	for i := 1; i <= 20; i++ {
		i := i
		for k := 0; k < perNode; k++ {
			k := k
			// Bursts: all 20 senders enqueue at the same instants,
			// forcing maximal contention every round.
			at := sim.Time(k) * 60 * time.Millisecond
			s.At(at, func() { macs[i].Send(0, 512, [2]int{i, k}) })
		}
	}
	s.RunUntil(30 * time.Second)
	var retryDrops, queueDrops, retries, sent uint64
	for i := 1; i <= 20; i++ {
		st := macs[i].Stats()
		retryDrops += st.DropsRetry
		queueDrops += st.DropsQueue
		retries += st.Retries
		sent += st.TxUnicast
	}
	delivered := len(ups[0].delivered)
	t.Logf("delivered=%d/%d retryDrops=%d queueDrops=%d retries=%d txUnicast=%d collisions=%d",
		delivered, 20*perNode, retryDrops, queueDrops, retries, sent, ch.Collisions())
	if retryDrops > 20 {
		t.Errorf("excessive false link failures: %d", retryDrops)
	}
}

// Package experiments regenerates the paper's evaluation artifacts:
// Table I and Figures 3–7 (§V). A Sweep runs the (protocol x pause time x
// trial) grid once; every table and figure is derived from that grid, as in
// the paper, where all metrics come from the same 400 simulation runs.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"slr/internal/geo"
	"slr/internal/metrics"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/sim"
	"slr/internal/traffic"
)

// Scale describes an experiment size. Full is the paper's setup; Mid and
// Small shrink nodes, traffic, and duration proportionally so the sweep
// completes quickly on a laptop while preserving the protocol ranking.
type Scale struct {
	Name     string
	Nodes    int
	Terrain  geo.Terrain
	Range    float64
	Flows    int
	Duration sim.Time
	Trials   int
}

// The provided scales.
var (
	// Full is the paper's configuration: 100 nodes, 2200 m x 600 m,
	// 30 flows x 4 pps x 512 B, 900 s, 10 trials per point.
	Full = Scale{
		Name:  "full",
		Nodes: 100, Terrain: geo.Terrain{Width: 2200, Height: 600},
		Range: 275, Flows: 30, Duration: 900 * time.Second, Trials: 10,
	}
	// Mid halves the network and shortens runs while keeping the paper's
	// per-collision-domain offered load (22 flows over ~2 reuse domains
	// matches 30 flows over ~4); the default for regenerating the tables
	// on one machine.
	Mid = Scale{
		Name:  "mid",
		Nodes: 50, Terrain: geo.Terrain{Width: 1500, Height: 450},
		Range: 275, Flows: 22, Duration: 300 * time.Second, Trials: 3,
	}
	// Small is for tests and benchmarks, load-matched like Mid.
	Small = Scale{
		Name:  "small",
		Nodes: 30, Terrain: geo.Terrain{Width: 1200, Height: 350},
		Range: 275, Flows: 14, Duration: 120 * time.Second, Trials: 2,
	}
)

// ScaleByName returns the named scale.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "full":
		return Full, nil
	case "mid":
		return Mid, nil
	case "small":
		return Small, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (want full, mid, or small)", name)
	}
}

// PauseFractions are the paper's eight pause times as fractions of the run
// duration (0–900 s of a 900 s run), so scaled-down runs preserve the
// mobility gradient.
var PauseFractions = []float64{0, 50. / 900, 100. / 900, 200. / 900, 300. / 900, 500. / 900, 700. / 900, 1}

// PauseLabel renders the pause time of fraction f at this scale.
func (s Scale) PauseLabel(f float64) string {
	return fmt.Sprintf("%.0f", (time.Duration(f * float64(s.Duration))).Seconds())
}

// Params builds scenario parameters for one grid point.
func (s Scale) Params(proto scenario.ProtocolName, pauseFrac float64, seed int64) scenario.Params {
	p := scenario.DefaultParams(proto, sim.Time(pauseFrac*float64(s.Duration)), seed)
	p.Nodes = s.Nodes
	p.Terrain = s.Terrain
	p.Range = s.Range
	p.Duration = s.Duration
	p.Traffic = traffic.Params{
		Flows: s.Flows, PacketSize: 512, Rate: 4, MeanLife: 60 * time.Second,
	}
	return p
}

// point identifies a grid cell.
type point struct {
	proto scenario.ProtocolName
	pause float64
}

// Grid holds sweep results.
type Grid struct {
	Scale  Scale
	Protos []scenario.ProtocolName
	cells  map[point]scenario.TrialSet
	// trials holds each cell's trial numbers, parallel to its Results. A
	// full single-process sweep makes it redundant (slice index == trial),
	// but a sharded or resumed run fills cells partially, and JSON() must
	// stamp the real trial number — it is part of the record identity key.
	trials map[point][]int
}

// addResult appends one trial to its cell, tracking its trial number.
func (g *Grid) addResult(pt point, trial int, proto scenario.ProtocolName, pause sim.Time, r scenario.Result) {
	ts, ok := g.cells[pt]
	if !ok {
		ts = scenario.TrialSet{Protocol: proto, Pause: pause}
	}
	ts.Results = append(ts.Results, r)
	g.cells[pt] = ts
	if g.trials == nil {
		g.trials = make(map[point][]int)
	}
	g.trials[pt] = append(g.trials[pt], trial)
}

// SweepOptions configures a sweep beyond its grid coordinates.
type SweepOptions struct {
	// Workers is the runner worker count; 0 means GOMAXPROCS.
	Workers int
	// Progress receives one summary line per completed grid point (the
	// historical per-point format); nil is silent.
	Progress io.Writer
	// Emitters stream every completed trial (JSONL/CSV) as it finishes.
	Emitters []runner.Emitter
	// Shard restricts the sweep to one deterministic slice of the
	// flattened job grid (see runner.ShardSpec) so cooperating processes
	// split the work; the zero value runs everything.
	Shard runner.ShardSpec
	// SkipDone drops jobs whose canonical identity key (runner.Key.String)
	// is present before anything runs — the resume path feeds it
	// runner.KeySet of the records salvaged from an interrupted sweep's
	// JSONL.
	SkipDone map[string]bool
}

// Sweep runs the whole grid across all CPUs. Progress lines go to w (pass
// io.Discard to silence). The same seeds are reused across protocols so
// each trial compares protocols on identical topology and traffic, as the
// paper does.
func Sweep(s Scale, protos []scenario.ProtocolName, seed int64, w io.Writer) *Grid {
	g, _ := SweepOpts(s, protos, seed, SweepOptions{Progress: w})
	return g
}

// SweepOpts runs the whole grid on the work-stealing runner: every
// (protocol, pause, trial) cell becomes one job in a single flat queue, so
// slow cells never serialize the sweep the way per-point parallelism did.
// Results are identical to running every point through the serial
// scenario.RunTrials. The error is the first emitter failure, if any; the
// grid is complete either way.
//
// With opts.Shard or opts.SkipDone set, only the selected slice of the
// grid runs and the returned Grid holds just those trials; merge the
// emitted JSONL shards through GridFromRecords (cmd/slranalyze) to
// reconstruct the full grid.
func SweepOpts(s Scale, protos []scenario.ProtocolName, seed int64, opts SweepOptions) (*Grid, error) {
	g := &Grid{Scale: s, Protos: protos, cells: make(map[point]scenario.TrialSet)}
	jobs := runner.GridJobs(protos, PauseFractions, s.Trials, seed, s.Params)
	jobs = opts.Shard.Select(jobs)
	jobs = runner.SkipCompleted(jobs, opts.SkipDone)

	// Per-point completion tracking for the progress lines; a shard or a
	// resume runs fewer trials per point than the scale's nominal count.
	remaining := make(map[point]int, len(protos)*len(PauseFractions))
	total := make(map[point]int, len(remaining))
	sums := make(map[point]float64, len(remaining))
	for _, j := range jobs {
		pt := point{j.Params.Protocol, j.PauseFrac}
		remaining[pt]++
		total[pt]++
	}
	start := time.Now() //slrlint:allow walltime progress-meter elapsed time, never reaches trial output
	onResult := func(j runner.Job, r scenario.Result) {
		if opts.Progress == nil {
			return
		}
		pt := point{j.Params.Protocol, j.PauseFrac}
		sums[pt] += r.DeliveryRatio
		remaining[pt]--
		if remaining[pt] == 0 {
			fmt.Fprintf(opts.Progress, "%-4s pause=%4ss deliv=%.3f (%d trials, %v elapsed)\n",
				pt.proto, s.PauseLabel(pt.pause), sums[pt]/float64(total[pt]), total[pt],
				time.Since(start).Round(time.Millisecond)) //slrlint:allow walltime progress-meter elapsed time, never reaches trial output
		}
	}

	results, err := runner.Run(jobs, runner.Options{
		Workers:  opts.Workers,
		Emitters: opts.Emitters,
		OnResult: onResult,
	})

	// Scatter the flat results back into (protocol, pause) cells, trials
	// in seed order.
	for i, j := range jobs {
		pt := point{j.Params.Protocol, j.PauseFrac}
		g.addResult(pt, j.Trial, j.Params.Protocol, j.Params.Pause, results[i])
	}
	return g, err
}

// Cell returns the trials at one grid point.
func (g *Grid) Cell(proto scenario.ProtocolName, pauseFrac float64) scenario.TrialSet {
	return g.cells[point{proto, pauseFrac}]
}

// Metric extracts a value from a run.
type Metric struct {
	Name   string
	Fig    string
	Get    func(scenario.Result) float64
	Prec   int
	Protos []scenario.ProtocolName // nil = all in grid
}

// The paper's figures.
var (
	MetricMACDrops = Metric{Name: "MAC drops per node", Fig: "Fig. 3",
		Get: func(r scenario.Result) float64 { return r.MACDrops }, Prec: 1}
	MetricDelivery = Metric{Name: "Delivery ratio", Fig: "Fig. 4",
		Get: func(r scenario.Result) float64 { return r.DeliveryRatio }, Prec: 3}
	MetricNetLoad = Metric{Name: "Network load", Fig: "Fig. 5",
		Get: func(r scenario.Result) float64 { return r.NetworkLoad }, Prec: 3}
	MetricLatency = Metric{Name: "Data latency (s)", Fig: "Fig. 6",
		Get: func(r scenario.Result) float64 { return r.Latency }, Prec: 3}
	MetricSeqno = Metric{Name: "Avg node sequence number", Fig: "Fig. 7",
		Get: func(r scenario.Result) float64 { return r.AvgSeqno }, Prec: 2,
		Protos: []scenario.ProtocolName{scenario.SRP, scenario.LDR, scenario.AODV}}
)

// AllMetrics lists the figures in paper order.
var AllMetrics = []Metric{MetricMACDrops, MetricDelivery, MetricNetLoad, MetricLatency, MetricSeqno}

// MetricByName maps the CLI figure names (cmd/experiments -exp,
// cmd/slranalyze -report) to their metrics, so the live sweep and the
// offline aggregator can never drift on which name renders which figure.
var MetricByName = map[string]*Metric{
	"fig3": &MetricMACDrops,
	"fig4": &MetricDelivery,
	"fig5": &MetricNetLoad,
	"fig6": &MetricLatency,
	"fig7": &MetricSeqno,
}

// meanCI renders a series cell as mean±CI. A series whose every
// measurement was the NaN sentinel (an all-zero-delivery cell's network
// load) has no defined mean: it reads "n/a", never a 0.000±0.000 that
// looks measured and would rank the protocol best on an undefined metric.
// A partially-excluded cell keeps its mean but is starred — the shrunken
// sample must not pass for a fully measured one; excluded reports either
// case so the table can append its footnote.
func meanCI(s *metrics.Series, prec int) (cell string, excluded bool) {
	if len(s.Values) == 0 && s.NaNs > 0 {
		return "n/a", true
	}
	cell = fmt.Sprintf("%.*f±%.*f", prec, s.Mean(), prec, s.CI())
	if s.NaNs > 0 {
		return cell + "*", true
	}
	return cell, false
}

// exclusionFootnote is appended to a table that starred or n/a'd a cell.
const exclusionFootnote = "  * excludes trials with an undefined value (e.g. zero-delivery network load)\n"

// FigureTable renders one figure's series as a text table: one row per
// pause time, one mean±CI column per protocol.
func (g *Grid) FigureTable(m Metric) string {
	protos := m.Protos
	if protos == nil {
		protos = g.Protos
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s vs pause time (%d nodes, %d flows, %s scale)\n",
		m.Fig, m.Name, g.Scale.Nodes, g.Scale.Flows, g.Scale.Name)
	fmt.Fprintf(&b, "%-8s", "pause")
	for _, p := range protos {
		fmt.Fprintf(&b, "%-18s", p)
	}
	b.WriteString("\n")
	flagged := false
	for _, pf := range PauseFractions {
		fmt.Fprintf(&b, "%-8s", g.Scale.PauseLabel(pf))
		for _, p := range protos {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				fmt.Fprintf(&b, "%-18s", "-")
				continue
			}
			s := ts.Series(func(r scenario.Result) float64 { return m.Get(r) })
			cell, ex := meanCI(s, m.Prec)
			flagged = flagged || ex
			fmt.Fprintf(&b, "%-18s", cell)
		}
		b.WriteString("\n")
	}
	if flagged {
		b.WriteString(exclusionFootnote)
	}
	return b.String()
}

// Table1 renders the paper's Table I: delivery ratio, network load, and
// latency averaged over all pause times with 95% confidence intervals.
func (g *Grid) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Performance average over all pause times (%s scale)\n", g.Scale.Name)
	fmt.Fprintf(&b, "%-10s%-18s%-18s%-18s\n", "protocol", "deliv. ratio", "net load", "latency (sec)")
	flagged := false
	for _, p := range g.Protos {
		var deliv, load, lat metrics.Series
		for _, pf := range PauseFractions {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				continue
			}
			for _, r := range ts.Results {
				deliv.Add(r.DeliveryRatio)
				load.Add(r.NetworkLoad)
				lat.Add(r.Latency)
			}
		}
		dc, dex := meanCI(&deliv, 3)
		lc, lex := meanCI(&load, 3)
		tc, tex := meanCI(&lat, 3)
		flagged = flagged || dex || lex || tex
		fmt.Fprintf(&b, "%-10s%-18s%-18s%-18s\n", p, dc, lc, tc)
	}
	if flagged {
		b.WriteString(exclusionFootnote)
	}
	return b.String()
}

// ShapeReport checks the qualitative claims of §V against the grid and
// returns one line per claim with a pass/fail verdict. These are the
// "shape" assertions of the reproduction: who wins and by roughly what
// factor, not absolute numbers. Claims whose inputs are absent — a
// protocol filtered out, or every trial's metric undefined — render an
// [n/a] verdict instead of a vacuous PASS or FAIL.
func (g *Grid) ShapeReport() string {
	// avg averages a metric over every cell the grid actually has; ok is
	// false only when the protocol has no defined values at all. A grid
	// missing some cells (a partial re-analysis, a filtered sweep) must
	// average what is there: the old early-return zeroed the whole
	// protocol on the first missing cell and flipped verdicts.
	avg := func(p scenario.ProtocolName, get func(scenario.Result) float64) (float64, bool) {
		var s metrics.Series
		for _, pf := range PauseFractions {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				continue
			}
			for _, r := range ts.Results {
				s.Add(get(r))
			}
		}
		return s.Mean(), len(s.Values) > 0
	}
	deliv := func(p scenario.ProtocolName) (float64, bool) {
		return avg(p, func(r scenario.Result) float64 { return r.DeliveryRatio })
	}
	load := func(p scenario.ProtocolName) (float64, bool) {
		return avg(p, func(r scenario.Result) float64 { return r.NetworkLoad })
	}
	seq := func(p scenario.ProtocolName) (float64, bool) {
		return avg(p, func(r scenario.Result) float64 { return r.AvgSeqno })
	}

	srpDeliv, okSRPDeliv := deliv(scenario.SRP)
	srpLoad, okSRPLoad := load(scenario.SRP)
	ldrLoad, okLDRLoad := load(scenario.LDR)
	aodvLoad, okAODVLoad := load(scenario.AODV)
	olsrLoad, okOLSRLoad := load(scenario.OLSR)
	srpSeq, okSRPSeq := seq(scenario.SRP)
	ldrSeq, okLDRSeq := seq(scenario.LDR)
	aodvSeq, okAODVSeq := seq(scenario.AODV)
	dsrDeliv, okDSRDeliv := deliv(scenario.DSR)

	// num renders a claim operand; an undefined one (protocol filtered
	// out, every trial NaN) reads "-", never a 0.00 that looks measured.
	num := func(v float64, ok bool, prec int) string {
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.*f", prec, v)
	}

	type claim struct {
		text string
		ok   bool
		na   bool
	}
	claims := []claim{
		{"SRP delivery ratio >= every other protocol", true, !okSRPDeliv},
		{fmt.Sprintf("SRP network load (%s) below LDR (%s), AODV (%s), OLSR (%s)",
			num(srpLoad, okSRPLoad, 2), num(ldrLoad, okLDRLoad, 2),
			num(aodvLoad, okAODVLoad, 2), num(olsrLoad, okOLSRLoad, 2)),
			srpLoad < ldrLoad && srpLoad < aodvLoad && srpLoad < olsrLoad,
			!(okSRPLoad && okLDRLoad && okAODVLoad && okOLSRLoad)},
		{fmt.Sprintf("SRP seqno identically 0 (got %s)", num(srpSeq, okSRPSeq, 3)),
			srpSeq == 0, !okSRPSeq},
		{fmt.Sprintf("AODV seqno (%s) > LDR seqno (%s) > SRP seqno (%s)",
			num(aodvSeq, okAODVSeq, 1), num(ldrSeq, okLDRSeq, 1), num(srpSeq, okSRPSeq, 1)),
			aodvSeq > ldrSeq && ldrSeq >= srpSeq,
			!(okAODVSeq && okLDRSeq && okSRPSeq)},
		{fmt.Sprintf("DSR delivery (%s) lowest of all protocols", num(dsrDeliv, okDSRDeliv, 2)),
			true, !okDSRDeliv},
	}
	srpRivals, dsrRivals := false, false
	for _, p := range g.Protos {
		d, ok := deliv(p)
		if !ok {
			continue
		}
		if p != scenario.SRP {
			srpRivals = true
			if d > srpDeliv {
				claims[0].ok = false
			}
		}
		// SRP competes in the "DSR lowest" claim like everyone else: if
		// a divergent reproduction drags SRP below DSR, that is exactly
		// the verdict flip this check exists to catch.
		if p != scenario.DSR {
			dsrRivals = true
			if d < dsrDeliv {
				claims[4].ok = false
			}
		}
	}
	// A comparison claim with nothing to compare against is not a PASS.
	if !srpRivals {
		claims[0].na = true
	}
	if !dsrRivals {
		claims[4].na = true
	}

	var b strings.Builder
	b.WriteString("Shape checks (paper §V claims):\n")
	for _, c := range claims {
		verdict := "PASS"
		switch {
		case c.na:
			verdict = "n/a"
		case !c.ok:
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s\n", verdict, c.text)
	}
	return b.String()
}

// LatencyPercentileTable renders the delivered-packet latency tail
// alongside Fig. 6's mean±CI: one row per pause time, one p50/p95/p99
// column per protocol (seconds), computed from the per-trial latency
// histograms merged per grid cell. Because histogram merging is exact,
// the offline aggregator (cmd/slranalyze) reproduces this table bit for
// bit from sweep JSONL.
func (g *Grid) LatencyPercentileTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Data latency percentiles (s): p50/p95/p99 vs pause time (%d nodes, %d flows, %s scale)\n",
		g.Scale.Nodes, g.Scale.Flows, g.Scale.Name)
	fmt.Fprintf(&b, "%-8s", "pause")
	for _, p := range g.Protos {
		fmt.Fprintf(&b, "%-20s", p)
	}
	b.WriteString("\n")
	for _, pf := range PauseFractions {
		fmt.Fprintf(&b, "%-8s", g.Scale.PauseLabel(pf))
		for _, p := range g.Protos {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				fmt.Fprintf(&b, "%-20s", "-")
				continue
			}
			var h metrics.Hist
			for i := range ts.Results {
				h.Merge(&ts.Results[i].LatencyHist)
			}
			if h.N == 0 {
				fmt.Fprintf(&b, "%-20s", "-")
				continue
			}
			p50, p95, p99 := h.PercentilesSec()
			fmt.Fprintf(&b, "%-20s", fmt.Sprintf("%.3f/%.3f/%.3f", p50, p95, p99))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Report renders everything: Table I, all figures, the latency
// percentiles, and the shape checks.
func (g *Grid) Report() string {
	var b strings.Builder
	b.WriteString(g.Table1())
	b.WriteString("\n")
	for _, m := range AllMetrics {
		b.WriteString(g.FigureTable(m))
		b.WriteString("\n")
	}
	b.WriteString(g.LatencyPercentileTable())
	b.WriteString("\n")
	b.WriteString(g.ShapeReport())
	return b.String()
}

// TrialReport renders the summary for one scenario's trial set: the
// headline metrics as mean±CI over the trials. It is the single-spec
// counterpart of Table1, used by the -spec mode of cmd/experiments.
func TrialReport(name string, ts scenario.TrialSet) string {
	var b strings.Builder
	deliv := ts.Series(func(r scenario.Result) float64 { return r.DeliveryRatio })
	load := ts.Series(func(r scenario.Result) float64 { return r.NetworkLoad })
	lat := ts.Series(func(r scenario.Result) float64 { return r.Latency })
	drops := ts.Series(func(r scenario.Result) float64 { return r.MACDrops })
	hops := ts.Series(func(r scenario.Result) float64 { return r.MeanHops })
	fmt.Fprintf(&b, "%s: %s, %d trials\n", name, ts.Protocol, len(ts.Results))
	fmt.Fprintf(&b, "  delivery ratio  %.3f±%.3f\n", deliv.Mean(), deliv.CI())
	fmt.Fprintf(&b, "  network load    %.3f±%.3f", load.Mean(), load.CI())
	if load.NaNs > 0 {
		// Zero-delivery trials have no defined load ratio; flag the
		// exclusion instead of folding a raw count into the mean.
		fmt.Fprintf(&b, "  (n/a in %d of %d trials)", load.NaNs, len(ts.Results))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  latency (s)     %.3f±%.3f\n", lat.Mean(), lat.CI())
	var lh metrics.Hist
	for i := range ts.Results {
		lh.Merge(&ts.Results[i].LatencyHist)
	}
	if lh.N > 0 {
		p50, p95, p99 := lh.PercentilesSec()
		fmt.Fprintf(&b, "  latency tail    p50 %.3f / p95 %.3f / p99 %.3f\n", p50, p95, p99)
	}
	fmt.Fprintf(&b, "  MAC drops/node  %.1f±%.1f\n", drops.Mean(), drops.CI())
	fmt.Fprintf(&b, "  mean hops       %.2f±%.2f\n", hops.Mean(), hops.CI())
	return b.String()
}

// SortedPauses returns the pause fractions in order (exported for tools).
func SortedPauses() []float64 {
	out := append([]float64{}, PauseFractions...)
	sort.Float64s(out)
	return out
}

// JSONReport is the machine-readable form of a grid, one record per run.
// Runs are the same runner.Record the JSONL/CSV emitters stream — trial
// index, traffic counters, sorted drop reasons, histograms and all — so
// the two machine-readable outputs agree field for field and both feed
// cmd/slranalyze.
type JSONReport struct {
	Scale  string          `json:"scale"`
	Protos []string        `json:"protocols"`
	Runs   []runner.Record `json:"runs"`
}

// JSON flattens the grid for external tooling (plotting the figures).
func (g *Grid) JSON() JSONReport {
	rep := JSONReport{Scale: g.Scale.Name}
	for _, p := range g.Protos {
		rep.Protos = append(rep.Protos, string(p))
	}
	for _, proto := range g.Protos {
		for _, pf := range PauseFractions {
			pt := point{proto, pf}
			ts, ok := g.cells[pt]
			if !ok {
				continue
			}
			for i, r := range ts.Results {
				// A full sweep's results sit in trial (seed) order, so the
				// slice index is the trial number; partial cells (a shard,
				// a resume) carry their real trial numbers in g.trials —
				// the trial is part of the record identity key, so a
				// default of i would forge keys that never ran.
				trial := i
				if nums := g.trials[pt]; i < len(nums) {
					trial = nums[i]
				}
				rep.Runs = append(rep.Runs, runner.NewRecord(
					runner.Job{Trial: trial, PauseFrac: pf}, r))
			}
		}
	}
	return rep
}

// MissingCells lists the grid cells whose trial count deviates from what
// the scale expects, one human-readable line per anomaly — the merge
// check for sharded sweeps: a complete union of shards reports none, a
// lost shard or an unfinished resume names exactly the holes, and an
// over-full cell (more trials than the scale has seeds for) flags records
// merged from different sweeps — distinct seeds give distinct identity
// keys, so mixing a -seed 2 shard into a -seed 1 sweep doubles cells
// instead of deduplicating, silently tightening every CI. Protocols are
// judged against the grid's own protocol set (a deliberately filtered
// analysis is not "missing" the filtered protocols).
func (g *Grid) MissingCells() []string {
	var out []string
	for _, p := range g.Protos {
		for _, pf := range PauseFractions {
			n := len(g.cells[point{p, pf}].Results)
			switch {
			case n < g.Scale.Trials:
				out = append(out, fmt.Sprintf("%s pause=%ss: %d/%d trials",
					p, g.Scale.PauseLabel(pf), n, g.Scale.Trials))
			case n > g.Scale.Trials:
				out = append(out, fmt.Sprintf("%s pause=%ss: %d/%d trials (excess: mixed sweeps?)",
					p, g.Scale.PauseLabel(pf), n, g.Scale.Trials))
			}
		}
	}
	return out
}

// Package experiments regenerates the paper's evaluation artifacts:
// Table I and Figures 3–7 (§V). A Sweep runs the (protocol x pause time x
// trial) grid once; every table and figure is derived from that grid, as in
// the paper, where all metrics come from the same 400 simulation runs.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"slr/internal/geo"
	"slr/internal/metrics"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/sim"
	"slr/internal/traffic"
)

// Scale describes an experiment size. Full is the paper's setup; Mid and
// Small shrink nodes, traffic, and duration proportionally so the sweep
// completes quickly on a laptop while preserving the protocol ranking.
type Scale struct {
	Name     string
	Nodes    int
	Terrain  geo.Terrain
	Range    float64
	Flows    int
	Duration sim.Time
	Trials   int
}

// The provided scales.
var (
	// Full is the paper's configuration: 100 nodes, 2200 m x 600 m,
	// 30 flows x 4 pps x 512 B, 900 s, 10 trials per point.
	Full = Scale{
		Name:  "full",
		Nodes: 100, Terrain: geo.Terrain{Width: 2200, Height: 600},
		Range: 275, Flows: 30, Duration: 900 * time.Second, Trials: 10,
	}
	// Mid halves the network and shortens runs while keeping the paper's
	// per-collision-domain offered load (22 flows over ~2 reuse domains
	// matches 30 flows over ~4); the default for regenerating the tables
	// on one machine.
	Mid = Scale{
		Name:  "mid",
		Nodes: 50, Terrain: geo.Terrain{Width: 1500, Height: 450},
		Range: 275, Flows: 22, Duration: 300 * time.Second, Trials: 3,
	}
	// Small is for tests and benchmarks, load-matched like Mid.
	Small = Scale{
		Name:  "small",
		Nodes: 30, Terrain: geo.Terrain{Width: 1200, Height: 350},
		Range: 275, Flows: 14, Duration: 120 * time.Second, Trials: 2,
	}
)

// ScaleByName returns the named scale.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "full":
		return Full, nil
	case "mid":
		return Mid, nil
	case "small":
		return Small, nil
	default:
		return Scale{}, fmt.Errorf("unknown scale %q (want full, mid, or small)", name)
	}
}

// PauseFractions are the paper's eight pause times as fractions of the run
// duration (0–900 s of a 900 s run), so scaled-down runs preserve the
// mobility gradient.
var PauseFractions = []float64{0, 50. / 900, 100. / 900, 200. / 900, 300. / 900, 500. / 900, 700. / 900, 1}

// PauseLabel renders the pause time of fraction f at this scale.
func (s Scale) PauseLabel(f float64) string {
	return fmt.Sprintf("%.0f", (time.Duration(f * float64(s.Duration))).Seconds())
}

// Params builds scenario parameters for one grid point.
func (s Scale) Params(proto scenario.ProtocolName, pauseFrac float64, seed int64) scenario.Params {
	p := scenario.DefaultParams(proto, sim.Time(pauseFrac*float64(s.Duration)), seed)
	p.Nodes = s.Nodes
	p.Terrain = s.Terrain
	p.Range = s.Range
	p.Duration = s.Duration
	p.Traffic = traffic.Params{
		Flows: s.Flows, PacketSize: 512, Rate: 4, MeanLife: 60 * time.Second,
	}
	return p
}

// point identifies a grid cell.
type point struct {
	proto scenario.ProtocolName
	pause float64
}

// Grid holds sweep results.
type Grid struct {
	Scale  Scale
	Protos []scenario.ProtocolName
	cells  map[point]scenario.TrialSet
}

// SweepOptions configures a sweep beyond its grid coordinates.
type SweepOptions struct {
	// Workers is the runner worker count; 0 means GOMAXPROCS.
	Workers int
	// Progress receives one summary line per completed grid point (the
	// historical per-point format); nil is silent.
	Progress io.Writer
	// Emitters stream every completed trial (JSONL/CSV) as it finishes.
	Emitters []runner.Emitter
}

// Sweep runs the whole grid across all CPUs. Progress lines go to w (pass
// io.Discard to silence). The same seeds are reused across protocols so
// each trial compares protocols on identical topology and traffic, as the
// paper does.
func Sweep(s Scale, protos []scenario.ProtocolName, seed int64, w io.Writer) *Grid {
	g, _ := SweepOpts(s, protos, seed, SweepOptions{Progress: w})
	return g
}

// SweepOpts runs the whole grid on the work-stealing runner: every
// (protocol, pause, trial) cell becomes one job in a single flat queue, so
// slow cells never serialize the sweep the way per-point parallelism did.
// Results are identical to running every point through the serial
// scenario.RunTrials. The error is the first emitter failure, if any; the
// grid is complete either way.
func SweepOpts(s Scale, protos []scenario.ProtocolName, seed int64, opts SweepOptions) (*Grid, error) {
	g := &Grid{Scale: s, Protos: protos, cells: make(map[point]scenario.TrialSet)}
	jobs := runner.GridJobs(protos, PauseFractions, s.Trials, seed, s.Params)

	// Per-point completion tracking for the progress lines.
	remaining := make(map[point]int, len(protos)*len(PauseFractions))
	sums := make(map[point]float64, len(remaining))
	for _, j := range jobs {
		remaining[point{j.Params.Protocol, j.PauseFrac}]++
	}
	start := time.Now()
	onResult := func(j runner.Job, r scenario.Result) {
		if opts.Progress == nil {
			return
		}
		pt := point{j.Params.Protocol, j.PauseFrac}
		sums[pt] += r.DeliveryRatio
		remaining[pt]--
		if remaining[pt] == 0 {
			fmt.Fprintf(opts.Progress, "%-4s pause=%4ss deliv=%.3f (%d trials, %v elapsed)\n",
				pt.proto, s.PauseLabel(pt.pause), sums[pt]/float64(s.Trials), s.Trials,
				time.Since(start).Round(time.Millisecond))
		}
	}

	results, err := runner.Run(jobs, runner.Options{
		Workers:  opts.Workers,
		Emitters: opts.Emitters,
		OnResult: onResult,
	})

	// Scatter the flat results back into (protocol, pause) cells, trials
	// in seed order.
	for i, j := range jobs {
		pt := point{j.Params.Protocol, j.PauseFrac}
		ts, ok := g.cells[pt]
		if !ok {
			ts = scenario.TrialSet{Protocol: j.Params.Protocol, Pause: j.Params.Pause,
				Results: make([]scenario.Result, 0, s.Trials)}
		}
		ts.Results = append(ts.Results, results[i])
		g.cells[pt] = ts
	}
	return g, err
}

// Cell returns the trials at one grid point.
func (g *Grid) Cell(proto scenario.ProtocolName, pauseFrac float64) scenario.TrialSet {
	return g.cells[point{proto, pauseFrac}]
}

// Metric extracts a value from a run.
type Metric struct {
	Name   string
	Fig    string
	Get    func(scenario.Result) float64
	Prec   int
	Protos []scenario.ProtocolName // nil = all in grid
}

// The paper's figures.
var (
	MetricMACDrops = Metric{Name: "MAC drops per node", Fig: "Fig. 3",
		Get: func(r scenario.Result) float64 { return r.MACDrops }, Prec: 1}
	MetricDelivery = Metric{Name: "Delivery ratio", Fig: "Fig. 4",
		Get: func(r scenario.Result) float64 { return r.DeliveryRatio }, Prec: 3}
	MetricNetLoad = Metric{Name: "Network load", Fig: "Fig. 5",
		Get: func(r scenario.Result) float64 { return r.NetworkLoad }, Prec: 3}
	MetricLatency = Metric{Name: "Data latency (s)", Fig: "Fig. 6",
		Get: func(r scenario.Result) float64 { return r.Latency }, Prec: 3}
	MetricSeqno = Metric{Name: "Avg node sequence number", Fig: "Fig. 7",
		Get: func(r scenario.Result) float64 { return r.AvgSeqno }, Prec: 2,
		Protos: []scenario.ProtocolName{scenario.SRP, scenario.LDR, scenario.AODV}}
)

// AllMetrics lists the figures in paper order.
var AllMetrics = []Metric{MetricMACDrops, MetricDelivery, MetricNetLoad, MetricLatency, MetricSeqno}

// FigureTable renders one figure's series as a text table: one row per
// pause time, one mean±CI column per protocol.
func (g *Grid) FigureTable(m Metric) string {
	protos := m.Protos
	if protos == nil {
		protos = g.Protos
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s vs pause time (%d nodes, %d flows, %s scale)\n",
		m.Fig, m.Name, g.Scale.Nodes, g.Scale.Flows, g.Scale.Name)
	fmt.Fprintf(&b, "%-8s", "pause")
	for _, p := range protos {
		fmt.Fprintf(&b, "%-18s", p)
	}
	b.WriteString("\n")
	for _, pf := range PauseFractions {
		fmt.Fprintf(&b, "%-8s", g.Scale.PauseLabel(pf))
		for _, p := range protos {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				fmt.Fprintf(&b, "%-18s", "-")
				continue
			}
			s := ts.Series(func(r scenario.Result) float64 { return m.Get(r) })
			fmt.Fprintf(&b, "%-18s", fmt.Sprintf("%.*f±%.*f", m.Prec, s.Mean(), m.Prec, s.CI()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table1 renders the paper's Table I: delivery ratio, network load, and
// latency averaged over all pause times with 95% confidence intervals.
func (g *Grid) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Performance average over all pause times (%s scale)\n", g.Scale.Name)
	fmt.Fprintf(&b, "%-10s%-18s%-18s%-18s\n", "protocol", "deliv. ratio", "net load", "latency (sec)")
	for _, p := range g.Protos {
		var deliv, load, lat metrics.Series
		for _, pf := range PauseFractions {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				continue
			}
			for _, r := range ts.Results {
				deliv.Add(r.DeliveryRatio)
				load.Add(r.NetworkLoad)
				lat.Add(r.Latency)
			}
		}
		fmt.Fprintf(&b, "%-10s%-18s%-18s%-18s\n", p,
			fmt.Sprintf("%.3f±%.3f", deliv.Mean(), deliv.CI()),
			fmt.Sprintf("%.3f±%.3f", load.Mean(), load.CI()),
			fmt.Sprintf("%.3f±%.3f", lat.Mean(), lat.CI()))
	}
	return b.String()
}

// ShapeReport checks the qualitative claims of §V against the grid and
// returns one line per claim with a pass/fail verdict. These are the
// "shape" assertions of the reproduction: who wins and by roughly what
// factor, not absolute numbers.
func (g *Grid) ShapeReport() string {
	avg := func(p scenario.ProtocolName, get func(scenario.Result) float64) float64 {
		var s metrics.Series
		for _, pf := range PauseFractions {
			ts, ok := g.cells[point{p, pf}]
			if !ok {
				return 0
			}
			for _, r := range ts.Results {
				s.Add(get(r))
			}
		}
		return s.Mean()
	}
	deliv := func(p scenario.ProtocolName) float64 {
		return avg(p, func(r scenario.Result) float64 { return r.DeliveryRatio })
	}
	load := func(p scenario.ProtocolName) float64 {
		return avg(p, func(r scenario.Result) float64 { return r.NetworkLoad })
	}
	seq := func(p scenario.ProtocolName) float64 {
		return avg(p, func(r scenario.Result) float64 { return r.AvgSeqno })
	}

	type claim struct {
		text string
		ok   bool
	}
	claims := []claim{
		{"SRP delivery ratio >= every other protocol", true},
		{fmt.Sprintf("SRP network load (%.2f) below LDR (%.2f), AODV (%.2f), OLSR (%.2f)",
			load(scenario.SRP), load(scenario.LDR), load(scenario.AODV), load(scenario.OLSR)),
			load(scenario.SRP) < load(scenario.LDR) &&
				load(scenario.SRP) < load(scenario.AODV) &&
				load(scenario.SRP) < load(scenario.OLSR)},
		{fmt.Sprintf("SRP seqno identically 0 (got %.3f)", seq(scenario.SRP)), seq(scenario.SRP) == 0},
		{fmt.Sprintf("AODV seqno (%.1f) > LDR seqno (%.1f) > SRP seqno (%.1f)",
			seq(scenario.AODV), seq(scenario.LDR), seq(scenario.SRP)),
			seq(scenario.AODV) > seq(scenario.LDR) && seq(scenario.LDR) >= seq(scenario.SRP)},
		{fmt.Sprintf("DSR delivery (%.2f) lowest of all protocols", deliv(scenario.DSR)), true},
	}
	for _, p := range g.Protos {
		if p == scenario.SRP {
			continue
		}
		if deliv(p) > deliv(scenario.SRP) {
			claims[0].ok = false
		}
		if p != scenario.DSR && deliv(p) < deliv(scenario.DSR) {
			claims[4].ok = false
		}
	}

	var b strings.Builder
	b.WriteString("Shape checks (paper §V claims):\n")
	for _, c := range claims {
		verdict := "PASS"
		if !c.ok {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "  [%s] %s\n", verdict, c.text)
	}
	return b.String()
}

// Report renders everything: Table I, all figures, and the shape checks.
func (g *Grid) Report() string {
	var b strings.Builder
	b.WriteString(g.Table1())
	b.WriteString("\n")
	for _, m := range AllMetrics {
		b.WriteString(g.FigureTable(m))
		b.WriteString("\n")
	}
	b.WriteString(g.ShapeReport())
	return b.String()
}

// TrialReport renders the summary for one scenario's trial set: the
// headline metrics as mean±CI over the trials. It is the single-spec
// counterpart of Table1, used by the -spec mode of cmd/experiments.
func TrialReport(name string, ts scenario.TrialSet) string {
	var b strings.Builder
	deliv := ts.Series(func(r scenario.Result) float64 { return r.DeliveryRatio })
	load := ts.Series(func(r scenario.Result) float64 { return r.NetworkLoad })
	lat := ts.Series(func(r scenario.Result) float64 { return r.Latency })
	drops := ts.Series(func(r scenario.Result) float64 { return r.MACDrops })
	hops := ts.Series(func(r scenario.Result) float64 { return r.MeanHops })
	fmt.Fprintf(&b, "%s: %s, %d trials\n", name, ts.Protocol, len(ts.Results))
	fmt.Fprintf(&b, "  delivery ratio  %.3f±%.3f\n", deliv.Mean(), deliv.CI())
	fmt.Fprintf(&b, "  network load    %.3f±%.3f\n", load.Mean(), load.CI())
	fmt.Fprintf(&b, "  latency (s)     %.3f±%.3f\n", lat.Mean(), lat.CI())
	fmt.Fprintf(&b, "  MAC drops/node  %.1f±%.1f\n", drops.Mean(), drops.CI())
	fmt.Fprintf(&b, "  mean hops       %.2f±%.2f\n", hops.Mean(), hops.CI())
	return b.String()
}

// SortedPauses returns the pause fractions in order (exported for tools).
func SortedPauses() []float64 {
	out := append([]float64{}, PauseFractions...)
	sort.Float64s(out)
	return out
}

// JSONReport is the machine-readable form of a grid, one record per run.
type JSONReport struct {
	Scale  string      `json:"scale"`
	Protos []string    `json:"protocols"`
	Runs   []JSONPoint `json:"runs"`
}

// JSONPoint is one simulation run's record.
type JSONPoint struct {
	Protocol      string  `json:"protocol"`
	PauseSeconds  float64 `json:"pause_seconds"`
	Seed          int64   `json:"seed"`
	DeliveryRatio float64 `json:"delivery_ratio"`
	NetworkLoad   float64 `json:"network_load"`
	LatencySec    float64 `json:"latency_sec"`
	MACDrops      float64 `json:"mac_drops_per_node"`
	AvgSeqno      float64 `json:"avg_seqno"`
	MeanHops      float64 `json:"mean_hops"`
	MaxDenom      uint32  `json:"max_denom,omitempty"`
}

// JSON flattens the grid for external tooling (plotting the figures).
func (g *Grid) JSON() JSONReport {
	rep := JSONReport{Scale: g.Scale.Name}
	for _, p := range g.Protos {
		rep.Protos = append(rep.Protos, string(p))
	}
	for _, proto := range g.Protos {
		for _, pf := range PauseFractions {
			ts, ok := g.cells[point{proto, pf}]
			if !ok {
				continue
			}
			for _, r := range ts.Results {
				rep.Runs = append(rep.Runs, JSONPoint{
					Protocol:      string(r.Protocol),
					PauseSeconds:  r.Pause.Seconds(),
					Seed:          r.Seed,
					DeliveryRatio: r.DeliveryRatio,
					NetworkLoad:   r.NetworkLoad,
					LatencySec:    r.Latency,
					MACDrops:      r.MACDrops,
					AvgSeqno:      r.AvgSeqno,
					MeanHops:      r.MeanHops,
					MaxDenom:      r.MaxDenom,
				})
			}
		}
	}
	return rep
}

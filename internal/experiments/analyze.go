package experiments

import (
	"sort"
	"time"

	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/sim"
)

// protoRank orders protocols for analysis output: the paper's order for
// the protocols it evaluates, then any registry extras (rank beyond the
// paper list, name-sorted by the callers' tie-break).
func protoRank(p scenario.ProtocolName) int {
	for i, ap := range scenario.AllProtocols {
		if p == ap {
			return i
		}
	}
	return len(scenario.AllProtocols)
}

// protoLess is the shared protocol ordering: paper rank, then name.
func protoLess(a, b scenario.ProtocolName) bool {
	if ra, rb := protoRank(a), protoRank(b); ra != rb {
		return ra < rb
	}
	return a < b
}

// sortTrials restores the in-process sweep's per-cell ordering — trial
// number (the seed order), ties broken by seed — on a completion-ordered
// record stream. Both GridFromRecords and Groups order cells with it, so
// the byte-identity contract holds for every report shape.
func sortTrials(recs []runner.Record) {
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].Trial != recs[b].Trial {
			return recs[a].Trial < recs[b].Trial
		}
		return recs[a].Seed < recs[b].Seed
	})
}

// trialSet converts trial-ordered records into one cell's TrialSet.
func trialSet(proto scenario.ProtocolName, pause sim.Time, recs []runner.Record) scenario.TrialSet {
	ts := scenario.TrialSet{Protocol: proto, Pause: pause}
	for _, rec := range recs {
		ts.Results = append(ts.Results, rec.Result())
	}
	return ts
}

// GridFromRecords reconstructs a sweep Grid from streamed per-trial
// records (a -jsonl file, a JSONReport's runs), so Table I, the figure
// tables, the latency percentiles, and the shape report can be
// regenerated offline — grouping, CIs, and histogram merges included —
// without re-simulating. The scale must be the one the sweep ran at: its
// duration maps each record's pause seconds back to the grid's pause
// fraction, and its node/flow counts label the tables.
//
// Records may be the concatenation of several files — shard outputs, a
// resumed file plus its pre-crash predecessor: trials that repeat an
// identity key are dropped (first occurrence wins; determinism makes the
// copies identical), and Grid.MissingCells afterwards names any cells the
// merge left short.
//
// Every rendered table is byte-identical to the one the live Sweep
// printed, whatever order the records arrived in (see sortTrials). The
// second return value holds records whose pause time matches no pause
// fraction at this scale (wrong -scale, or a single-spec run): they are
// left out of the grid, never silently folded into the wrong cell.
func GridFromRecords(s Scale, recs []runner.Record) (*Grid, []runner.Record) {
	recs, _ = runner.DedupRecords(recs)
	// Pause seconds survive the float64→JSON→float64 round trip exactly
	// (the encoder emits the shortest representation that parses back to
	// the same value), so fractions match by equality, not tolerance.
	fracOf := make(map[float64]float64, len(PauseFractions))
	for _, pf := range PauseFractions {
		fracOf[(sim.Time(pf * float64(s.Duration))).Seconds()] = pf
	}

	byPoint := make(map[point][]runner.Record)
	var leftover []runner.Record
	for _, rec := range recs {
		pf, ok := fracOf[rec.PauseSeconds]
		if !ok {
			leftover = append(leftover, rec)
			continue
		}
		pt := point{scenario.ProtocolName(rec.Protocol), pf}
		byPoint[pt] = append(byPoint[pt], rec)
	}

	g := &Grid{Scale: s, cells: make(map[point]scenario.TrialSet, len(byPoint))}
	seen := make(map[scenario.ProtocolName]bool)
	for pt, cellRecs := range byPoint {
		sortTrials(cellRecs)
		pause := sim.Time(pt.pause * float64(s.Duration))
		for _, rec := range cellRecs {
			g.addResult(pt, rec.Trial, pt.proto, pause, rec.Result())
		}
		seen[pt.proto] = true
	}
	for p := range seen {
		g.Protos = append(g.Protos, p)
	}
	sort.Slice(g.Protos, func(i, j int) bool { return protoLess(g.Protos[i], g.Protos[j]) })
	return g, leftover
}

// Groups splits records into per-(protocol, pause) trial sets for
// analyses that need no grid geometry (single-spec runs, ad-hoc pause
// times). Sets come back in protocol order (see protoLess) and ascending
// pause, trials in trial/seed order within each set. Like GridFromRecords
// it accepts concatenated shard/resume streams: repeated identity keys
// are dropped, first occurrence wins.
func Groups(recs []runner.Record) []scenario.TrialSet {
	recs, _ = runner.DedupRecords(recs)
	type key struct {
		proto scenario.ProtocolName
		pause float64
	}
	byKey := make(map[key][]runner.Record)
	for _, rec := range recs {
		k := key{scenario.ProtocolName(rec.Protocol), rec.PauseSeconds}
		byKey[k] = append(byKey[k], rec)
	}
	keys := make([]key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proto != keys[j].proto {
			return protoLess(keys[i].proto, keys[j].proto)
		}
		return keys[i].pause < keys[j].pause
	})
	out := make([]scenario.TrialSet, 0, len(keys))
	for _, k := range keys {
		sortTrials(byKey[k])
		out = append(out, trialSet(k.proto, sim.Time(k.pause*float64(time.Second)), byKey[k]))
	}
	return out
}

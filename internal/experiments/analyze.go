package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/sim"
)

// protoRank orders protocols for analysis output: the paper's order for
// the protocols it evaluates, then any registry extras (rank beyond the
// paper list, name-sorted by the callers' tie-break).
func protoRank(p scenario.ProtocolName) int {
	for i, ap := range scenario.AllProtocols {
		if p == ap {
			return i
		}
	}
	return len(scenario.AllProtocols)
}

// protoLess is the shared protocol ordering: paper rank, then name.
func protoLess(a, b scenario.ProtocolName) bool {
	if ra, rb := protoRank(a), protoRank(b); ra != rb {
		return ra < rb
	}
	return a < b
}

// sortTrials restores the in-process sweep's per-cell ordering — trial
// number (the seed order), ties broken by seed — on a completion-ordered
// record stream. MergeRecords orders every group with it, so the
// byte-identity contract holds for every report shape.
func sortTrials(recs []runner.Record) {
	sort.SliceStable(recs, func(a, b int) bool {
		if recs[a].Trial != recs[b].Trial {
			return recs[a].Trial < recs[b].Trial
		}
		return recs[a].Seed < recs[b].Seed
	})
}

// mergeGroup is one (protocol, pause) cell of a Merged record set.
type mergeGroup struct {
	proto scenario.ProtocolName
	pause float64 // seconds, exactly as serialized
	recs  []runner.Record
}

// trialSet converts the group's trial-ordered records into a TrialSet.
func (g mergeGroup) trialSet() scenario.TrialSet {
	ts := scenario.TrialSet{Protocol: g.proto, Pause: sim.Time(g.pause * float64(time.Second))}
	for _, rec := range g.recs {
		ts.Results = append(ts.Results, rec.Result())
	}
	return ts
}

// Merged is a record stream folded into per-(protocol, pause) groups: the
// one record-merge entry point behind every analysis of streamed trials.
// cmd/slranalyze's shard merge, the resumed CLI runs that fold salvaged
// records back into their tables, and the sweep coordinator's live report
// endpoint (internal/sweepd) all build a Merged first, so grouping,
// ordering, and dedup semantics cannot drift between them.
//
// Construction dedups on the canonical identity key (first occurrence
// wins; determinism makes the copies identical) and orders groups by
// protocol (paper order, then name) and ascending pause, trials in
// trial/seed order within each group — the in-process sweep's ordering,
// whatever order the records arrived in.
type Merged struct {
	// Duplicates counts the records dropped by identity-key dedup —
	// nonzero when shard files overlap or a file was fed twice.
	Duplicates int
	groups     []mergeGroup
}

// MergeRecords folds records — possibly the concatenation of several
// files: shard outputs, a resumed file plus its pre-crash predecessor, a
// coordinator's checkpoint — into their merged, deterministically ordered
// groups.
func MergeRecords(recs []runner.Record) *Merged {
	recs, dups := runner.DedupRecords(recs)
	type key struct {
		proto scenario.ProtocolName
		pause float64
	}
	byKey := make(map[key][]runner.Record)
	for _, rec := range recs {
		k := key{scenario.ProtocolName(rec.Protocol), rec.PauseSeconds}
		byKey[k] = append(byKey[k], rec)
	}
	keys := make([]key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].proto != keys[j].proto {
			return protoLess(keys[i].proto, keys[j].proto)
		}
		return keys[i].pause < keys[j].pause
	})
	m := &Merged{Duplicates: dups}
	for _, k := range keys {
		sortTrials(byKey[k])
		m.groups = append(m.groups, mergeGroup{proto: k.proto, pause: k.pause, recs: byKey[k]})
	}
	return m
}

// TrialSets returns the groups as per-(protocol, pause) trial sets for
// analyses that need no grid geometry (single-spec runs, ad-hoc pause
// times).
func (m *Merged) TrialSets() []scenario.TrialSet {
	out := make([]scenario.TrialSet, 0, len(m.groups))
	for _, g := range m.groups {
		out = append(out, g.trialSet())
	}
	return out
}

// Grid maps the groups onto the sweep grid of scale s, so Table I, the
// figure tables, the latency percentiles, and the shape report can be
// regenerated offline — grouping, CIs, and histogram merges included —
// without re-simulating. The scale must be the one the sweep ran at: its
// duration maps each group's pause seconds back to the grid's pause
// fraction, and its node/flow counts label the tables.
//
// Every rendered table is byte-identical to the one the live Sweep
// printed. The second return value holds records whose pause time matches
// no pause fraction at this scale (wrong -scale, or a single-spec run):
// they are left out of the grid, never silently folded into the wrong
// cell. Grid.MissingCells afterwards names any cells the merge left
// short.
func (m *Merged) Grid(s Scale) (*Grid, []runner.Record) {
	// Pause seconds survive the float64→JSON→float64 round trip exactly
	// (the encoder emits the shortest representation that parses back to
	// the same value), so fractions match by equality, not tolerance.
	fracOf := make(map[float64]float64, len(PauseFractions))
	for _, pf := range PauseFractions {
		fracOf[(sim.Time(pf * float64(s.Duration))).Seconds()] = pf
	}

	g := &Grid{Scale: s, cells: make(map[point]scenario.TrialSet, len(m.groups))}
	var leftover []runner.Record
	seen := make(map[scenario.ProtocolName]bool)
	for _, grp := range m.groups {
		pf, ok := fracOf[grp.pause]
		if !ok {
			leftover = append(leftover, grp.recs...)
			continue
		}
		pt := point{grp.proto, pf}
		pause := sim.Time(pf * float64(s.Duration))
		for _, rec := range grp.recs {
			g.addResult(pt, rec.Trial, pt.proto, pause, rec.Result())
		}
		seen[grp.proto] = true
	}
	for p := range seen {
		g.Protos = append(g.Protos, p)
	}
	sort.Slice(g.Protos, func(i, j int) bool { return protoLess(g.Protos[i], g.Protos[j]) })
	return g, leftover
}

// TrialsReport renders every group's trial summary, one TrialReport per
// group separated by blank lines — the "-report trials" text of
// cmd/slranalyze and the trials view of the coordinator's /v1/report
// endpoint, byte-identical between the two by construction.
func (m *Merged) TrialsReport() string {
	var b strings.Builder
	for i, g := range m.groups {
		if i > 0 {
			b.WriteString("\n")
		}
		ts := g.trialSet()
		name := fmt.Sprintf("%s pause=%.0fs", ts.Protocol, ts.Pause.Seconds())
		b.WriteString(TrialReport(name, ts))
	}
	return b.String()
}

// GridFromRecords reconstructs a sweep Grid from streamed per-trial
// records (a -jsonl file, a JSONReport's runs); it is
// MergeRecords(recs).Grid(s), kept for callers that need no other view.
func GridFromRecords(s Scale, recs []runner.Record) (*Grid, []runner.Record) {
	return MergeRecords(recs).Grid(s)
}

// Groups splits records into per-(protocol, pause) trial sets; it is
// MergeRecords(recs).TrialSets(), kept for callers that need no other
// view.
func Groups(recs []runner.Record) []scenario.TrialSet {
	return MergeRecords(recs).TrialSets()
}

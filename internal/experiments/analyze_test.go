package experiments

import (
	"math"
	"strings"
	"testing"

	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/sim"
)

// cellResult builds one synthetic trial result.
func cellResult(p scenario.ProtocolName, seed int64, deliv, load, seq float64) scenario.Result {
	return scenario.Result{
		Protocol: p, Seed: seed,
		DeliveryRatio: deliv, NetworkLoad: load, AvgSeqno: seq,
		Latency: 0.02, MeanHops: 2, DataSent: 100, DataRecv: uint64(100 * deliv),
	}
}

// fullGrid builds a complete synthetic grid in which SRP wins every
// paper claim.
func fullGrid(s Scale) *Grid {
	g := &Grid{Scale: s, Protos: scenario.AllProtocols, cells: make(map[point]scenario.TrialSet)}
	loads := map[scenario.ProtocolName]float64{
		scenario.SRP: 0.5, scenario.LDR: 1.0, scenario.AODV: 1.5, scenario.DSR: 0.9, scenario.OLSR: 4.0,
	}
	delivs := map[scenario.ProtocolName]float64{
		scenario.SRP: 0.99, scenario.LDR: 0.95, scenario.AODV: 0.93, scenario.DSR: 0.80, scenario.OLSR: 0.90,
	}
	seqs := map[scenario.ProtocolName]float64{
		scenario.SRP: 0, scenario.LDR: 5, scenario.AODV: 9,
	}
	for _, p := range g.Protos {
		for _, pf := range PauseFractions {
			ts := scenario.TrialSet{Protocol: p, Pause: sim.Time(pf * float64(s.Duration))}
			for trial := 0; trial < 2; trial++ {
				ts.Results = append(ts.Results,
					cellResult(p, int64(trial+1), delivs[p], loads[p], seqs[p]))
			}
			g.cells[point{p, pf}] = ts
		}
	}
	return g
}

// TestShapeReportPartialGrid pins the satellite fix: a single missing
// grid cell used to zero the whole protocol's average and flip PASS/FAIL
// verdicts on partial grids.
func TestShapeReportPartialGrid(t *testing.T) {
	g := fullGrid(Small)
	full := g.ShapeReport()
	if strings.Contains(full, "FAIL") || strings.Contains(full, "n/a") {
		t.Fatalf("synthetic full grid should pass every claim:\n%s", full)
	}

	// Drop one AODV cell. The old early-return made avg(AODV)=0 across
	// the board: network load 0.00 "beat" SRP's 0.50 (claim 2 flipped to
	// FAIL) and AODV's seqno 0.0 broke the seqno ordering claim.
	delete(g.cells, point{scenario.AODV, PauseFractions[3]})
	partial := g.ShapeReport()
	if strings.Contains(partial, "FAIL") || strings.Contains(partial, "n/a") {
		t.Fatalf("one missing cell must not flip verdicts:\n%s", partial)
	}
	if !strings.Contains(partial, "AODV (1.50)") {
		t.Fatalf("AODV average should skip the missing cell, not zero out:\n%s", partial)
	}

	// A protocol with no data at all renders its claims n/a, not FAIL.
	for _, pf := range PauseFractions {
		delete(g.cells, point{scenario.OLSR, pf})
	}
	absent := g.ShapeReport()
	if !strings.Contains(absent, "[n/a] SRP network load") {
		t.Fatalf("claims over an absent protocol must be n/a:\n%s", absent)
	}
	if strings.Contains(absent, "FAIL") {
		t.Fatalf("absent protocol must not fail claims:\n%s", absent)
	}
}

// TestShapeReportSRPBelowDSR verifies SRP competes in the "DSR lowest"
// claim: a divergent reproduction that drags SRP's delivery below DSR's
// must flip that claim to FAIL, not keep a vacuous PASS.
func TestShapeReportSRPBelowDSR(t *testing.T) {
	g := fullGrid(Small)
	for _, pf := range PauseFractions {
		pt := point{scenario.SRP, pf}
		ts := g.cells[pt]
		for i := range ts.Results {
			ts.Results[i].DeliveryRatio = 0.10 // below DSR's 0.80
		}
		g.cells[pt] = ts
	}
	rep := g.ShapeReport()
	if !strings.Contains(rep, "[FAIL] DSR delivery") {
		t.Fatalf("SRP below DSR must fail the lowest-delivery claim:\n%s", rep)
	}
}

// TestShapeReportZeroDeliveryTrials verifies NaN network loads are
// excluded from shape averages rather than poisoning them.
func TestShapeReportZeroDeliveryTrials(t *testing.T) {
	g := fullGrid(Small)
	pt := point{scenario.SRP, PauseFractions[0]}
	ts := g.cells[pt]
	ts.Results = append(ts.Results, cellResult(scenario.SRP, 3, 0, math.NaN(), 0))
	g.cells[pt] = ts
	rep := g.ShapeReport()
	if !strings.Contains(rep, "[PASS] SRP network load (0.50)") {
		t.Fatalf("NaN trial skewed the SRP load average:\n%s", rep)
	}
}

// TestTablesRenderAllNaNCellAsNA verifies a cell whose every trial had
// an undefined network load reads "n/a" in Table I and Fig. 5, not a
// measured-looking 0.000±0.000 that would rank the protocol best.
func TestTablesRenderAllNaNCellAsNA(t *testing.T) {
	g := fullGrid(Small)
	for _, pf := range PauseFractions {
		pt := point{scenario.DSR, pf}
		ts := g.cells[pt]
		for i := range ts.Results {
			ts.Results[i].NetworkLoad = math.NaN()
		}
		g.cells[pt] = ts
	}
	// And one mixed cell: LDR keeps some defined loads at the first pause,
	// so its aggregate renders starred, not silently shrunken.
	mixed := point{scenario.LDR, PauseFractions[0]}
	ts := g.cells[mixed]
	ts.Results[0].NetworkLoad = math.NaN()
	g.cells[mixed] = ts
	for name, tab := range map[string]string{
		"Table1": g.Table1(), "Fig5": g.FigureTable(MetricNetLoad),
	} {
		if !strings.Contains(tab, "n/a") {
			t.Errorf("%s should flag the all-NaN DSR load as n/a:\n%s", name, tab)
		}
		if strings.Contains(tab, "0.000±0.000") {
			t.Errorf("%s renders an undefined load as measured zero:\n%s", name, tab)
		}
		if !strings.Contains(tab, "*") || !strings.Contains(tab, "excludes trials") {
			t.Errorf("%s should star partially-excluded cells and footnote them:\n%s", name, tab)
		}
	}
	if tab := fullGrid(Small).Table1(); strings.Contains(tab, "*") {
		t.Errorf("clean grid must not be starred:\n%s", tab)
	}
}

// TestGridFromRecordsReconstruction verifies grouping, trial ordering,
// and leftover handling on a synthetic shuffled record stream.
func TestGridFromRecordsReconstruction(t *testing.T) {
	s := Small
	pauseSec := func(i int) float64 {
		return (sim.Time(PauseFractions[i] * float64(s.Duration))).Seconds()
	}
	load := 1.5
	mk := func(proto string, pauseIdx, trial int, seed int64, deliv float64) runner.Record {
		return runner.Record{
			Protocol: proto, PauseSeconds: pauseSec(pauseIdx),
			Trial: trial, Seed: seed, DeliveryRatio: deliv, NetworkLoad: &load,
			Schema: runner.RecordSchema,
		}
	}
	recs := []runner.Record{
		mk("AODV", 0, 1, 2, 0.90), // completion order scrambles trials and protocols
		mk("SRP", 0, 1, 2, 0.98),
		mk("SRP", 0, 0, 1, 0.99),
		mk("AODV", 0, 0, 1, 0.91),
		mk("SRP", 2, 0, 1, 0.97),
		{Protocol: "SRP", PauseSeconds: 123.456, Trial: 0, Seed: 9, Schema: runner.RecordSchema},
	}
	g, leftover := GridFromRecords(s, recs)
	if len(leftover) != 1 || leftover[0].PauseSeconds != 123.456 {
		t.Fatalf("leftover = %+v, want the off-grid pause", leftover)
	}
	if len(g.Protos) != 2 || g.Protos[0] != scenario.SRP || g.Protos[1] != scenario.AODV {
		t.Fatalf("protocol order = %v, want paper order SRP,AODV", g.Protos)
	}
	cell := g.Cell(scenario.SRP, PauseFractions[0])
	if len(cell.Results) != 2 || cell.Results[0].Seed != 1 || cell.Results[1].Seed != 2 {
		t.Fatalf("cell trials not in trial order: %+v", cell.Results)
	}
	if got := g.Cell(scenario.SRP, PauseFractions[2]); len(got.Results) != 1 {
		t.Fatalf("sparse cell lost: %+v", got)
	}
}

// TestGridFromRecordsDedupsShardOverlap verifies a double-fed shard (the
// same file concatenated twice, or an overlapping resume) collapses to one
// copy of each trial on the identity key instead of doubling every CI's
// sample.
func TestGridFromRecordsDedupsShardOverlap(t *testing.T) {
	s := Small
	pauseSec := (sim.Time(PauseFractions[0] * float64(s.Duration))).Seconds()
	load := 1.5
	mk := func(trial int, seed int64) runner.Record {
		return runner.Record{
			Protocol: "SRP", PauseSeconds: pauseSec, Trial: trial, Seed: seed,
			DeliveryRatio: 0.9, NetworkLoad: &load, Schema: runner.RecordSchema,
		}
	}
	recs := []runner.Record{mk(0, 1), mk(1, 2), mk(0, 1), mk(1, 2), mk(0, 1)}
	g, leftover := GridFromRecords(s, recs)
	if len(leftover) != 0 {
		t.Fatalf("leftover = %+v", leftover)
	}
	if cell := g.Cell(scenario.SRP, PauseFractions[0]); len(cell.Results) != 2 {
		t.Fatalf("duplicated records inflated the cell to %d trials, want 2", len(cell.Results))
	}

	groups := Groups(recs)
	if len(groups) != 1 || len(groups[0].Results) != 2 {
		t.Fatalf("Groups did not dedup: %+v", groups)
	}
}

// TestMissingCells verifies the merge check names exactly the holes a
// lost shard leaves and stays quiet on a complete grid.
func TestMissingCells(t *testing.T) {
	g := fullGrid(Small)
	if missing := g.MissingCells(); len(missing) != 0 {
		t.Fatalf("complete grid reports missing cells: %v", missing)
	}
	pt := point{scenario.AODV, PauseFractions[1]}
	ts := g.cells[pt]
	ts.Results = ts.Results[:1]
	g.cells[pt] = ts
	delete(g.cells, point{scenario.OLSR, PauseFractions[0]})
	missing := g.MissingCells()
	if len(missing) != 2 {
		t.Fatalf("missing = %v, want 2 entries", missing)
	}
	wantAODV := "AODV pause=" + g.Scale.PauseLabel(PauseFractions[1]) + "s: 1/2 trials"
	if missing[0] != wantAODV || missing[1] != "OLSR pause=0s: 0/2 trials" {
		t.Fatalf("missing = %v, want [%q, %q]", missing, wantAODV, "OLSR pause=0s: 0/2 trials")
	}

	// An over-full cell — records merged from sweeps with different seeds
	// carry distinct identity keys, so they pile up instead of
	// deduplicating — is an anomaly too, not a quietly tightened CI.
	g = fullGrid(Small)
	pt = point{scenario.SRP, PauseFractions[0]}
	ts = g.cells[pt]
	ts.Results = append(ts.Results, cellResult(scenario.SRP, 99, 0.9, 1, 0))
	g.cells[pt] = ts
	excess := g.MissingCells()
	if len(excess) != 1 || excess[0] != "SRP pause=0s: 3/2 trials (excess: mixed sweeps?)" {
		t.Fatalf("excess = %v", excess)
	}
}

// TestGridJSONPartialCellTrialNumbers verifies JSON() stamps the real
// trial numbers on a partial (sharded/resumed) grid — the trial is part of
// the record identity key, so defaulting to the slice index would forge
// records that never ran and break cross-file dedup.
func TestGridJSONPartialCellTrialNumbers(t *testing.T) {
	s := Small
	pauseSec := (sim.Time(PauseFractions[0] * float64(s.Duration))).Seconds()
	load := 1.0
	rec := runner.Record{
		Protocol: "SRP", PauseSeconds: pauseSec, Trial: 1, Seed: 2,
		DeliveryRatio: 0.9, NetworkLoad: &load, Schema: runner.RecordSchema,
	}
	g, _ := GridFromRecords(s, []runner.Record{rec})
	runs := g.JSON().Runs
	if len(runs) != 1 || runs[0].Trial != 1 {
		t.Fatalf("partial-cell JSON runs = %+v, want the real trial number 1", runs)
	}
	if runs[0].Key() != rec.Key() {
		t.Fatalf("identity key changed through Grid.JSON: %+v vs %+v", runs[0].Key(), rec.Key())
	}
}

// TestLatencyPercentileTable verifies the new table merges per-trial
// histograms and renders bucket-bound percentiles.
func TestLatencyPercentileTable(t *testing.T) {
	g := fullGrid(Small)
	for pt, ts := range g.cells {
		for i := range ts.Results {
			// 16383 µs bucket bound for most, one slow outlier bucket.
			for j := 0; j < 99; j++ {
				ts.Results[i].LatencyHist.Observe(10000)
			}
			ts.Results[i].LatencyHist.Observe(400000)
		}
		g.cells[pt] = ts
	}
	tab := g.LatencyPercentileTable()
	if !strings.Contains(tab, "Data latency percentiles") {
		t.Fatalf("missing title:\n%s", tab)
	}
	// p50 and p95 in the 10000-µs bucket (bound 16383 -> 0.016 s), p99
	// merged across both trials stays there too (198 of 200 samples).
	if !strings.Contains(tab, "0.016/0.016/0.016") {
		t.Fatalf("percentiles not merged from histograms:\n%s", tab)
	}
	empty := &Grid{Scale: Small, Protos: []scenario.ProtocolName{scenario.SRP},
		cells: make(map[point]scenario.TrialSet)}
	if tab := empty.LatencyPercentileTable(); !strings.Contains(tab, "-") {
		t.Fatalf("empty cells should render '-':\n%s", tab)
	}
}

package experiments

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/runner"
	"slr/internal/scenario"
)

// tinyScale keeps unit tests fast: 10 nodes, 1 trial, 8-second runs.
func tinyScale() Scale {
	return Scale{
		Name:  "tiny",
		Nodes: 10, Terrain: geo.Terrain{Width: 600, Height: 300},
		Range: 275, Flows: 3, Duration: 8 * time.Second, Trials: 1,
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"full", "mid", "small"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestPauseFractionsMatchPaper(t *testing.T) {
	// The paper's pause times 0,50,...,900 s of a 900 s run.
	want := []float64{0, 50, 100, 200, 300, 500, 700, 900}
	if len(PauseFractions) != len(want) {
		t.Fatalf("got %d pause fractions", len(PauseFractions))
	}
	for i, f := range PauseFractions {
		if got := f * 900; got != want[i] {
			t.Errorf("fraction %d = %v, want %v s of 900", i, got, want[i])
		}
	}
	if Full.PauseLabel(PauseFractions[3]) != "200" {
		t.Errorf("PauseLabel = %q, want 200", Full.PauseLabel(PauseFractions[3]))
	}
}

func TestParamsScalesPause(t *testing.T) {
	s := tinyScale()
	p := s.Params(scenario.SRP, 0.5, 7)
	if p.Pause != 4*time.Second {
		t.Errorf("pause = %v, want 4s (half of 8s)", p.Pause)
	}
	if p.Nodes != 10 || p.Seed != 7 || p.Protocol != scenario.SRP {
		t.Errorf("params = %+v", p)
	}
}

func TestSweepAndReports(t *testing.T) {
	grid := Sweep(tinyScale(), []scenario.ProtocolName{scenario.SRP, scenario.AODV}, 1, io.Discard)

	tab := grid.Table1()
	if !strings.Contains(tab, "Table I") || !strings.Contains(tab, "SRP") || !strings.Contains(tab, "AODV") {
		t.Fatalf("Table1 output malformed:\n%s", tab)
	}

	fig := grid.FigureTable(MetricDelivery)
	if !strings.Contains(fig, "Fig. 4") {
		t.Fatalf("FigureTable output malformed:\n%s", fig)
	}
	// One row per pause time plus two header lines.
	if got := strings.Count(fig, "\n"); got != len(PauseFractions)+2 {
		t.Fatalf("figure rows = %d, want %d:\n%s", got, len(PauseFractions)+2, fig)
	}

	// Fig. 7 restricts to its three protocols even if the grid has fewer.
	fig7 := grid.FigureTable(MetricSeqno)
	if strings.Contains(fig7, "OLSR") || strings.Contains(fig7, "DSR") {
		t.Fatalf("Fig. 7 table includes non-seqno protocols:\n%s", fig7)
	}

	cell := grid.Cell(scenario.SRP, 0)
	if len(cell.Results) != 1 {
		t.Fatalf("cell has %d results", len(cell.Results))
	}
}

func TestSortedPauses(t *testing.T) {
	ps := SortedPauses()
	for i := 1; i < len(ps); i++ {
		if ps[i-1] > ps[i] {
			t.Fatalf("pauses not sorted: %v", ps)
		}
	}
	// Must be a copy, not the shared slice.
	ps[0] = 99
	if PauseFractions[0] == 99 {
		t.Fatal("SortedPauses aliases PauseFractions")
	}
}

func TestJSONReport(t *testing.T) {
	grid := Sweep(tinyScale(), []scenario.ProtocolName{scenario.SRP}, 1, io.Discard)
	rep := grid.JSON()
	if rep.Scale != "tiny" || len(rep.Protos) != 1 {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Runs) != len(PauseFractions) {
		t.Fatalf("runs = %d, want %d", len(rep.Runs), len(PauseFractions))
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	// Grid.JSON and the runner's JSONL stream are the same Record type:
	// trial number, traffic counters, and sorted drop reasons included,
	// so the two machine-readable outputs agree.
	for _, want := range []string{"delivery_ratio", `"trial"`, `"data_sent"`, `"data_recv"`, `"control_tx"`, `"schema"`} {
		if !strings.Contains(string(blob), want) {
			t.Fatalf("json missing %s:\n%s", want, blob)
		}
	}
	if rep.Runs[0].Trial != 0 || rep.Runs[0].Schema != runner.RecordSchema {
		t.Fatalf("run record header = %+v", rep.Runs[0])
	}
}

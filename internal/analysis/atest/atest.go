// Package atest is a minimal, offline stand-in for
// golang.org/x/tools/go/analysis/analysistest. The Go toolchain vendors
// the go/analysis core but not analysistest, and this repo builds
// without network access, so the analyzer tests load their fixtures by
// hand: parse testdata/src/<pkg>, typecheck against the source importer
// (stdlib) plus a recursive fixture importer (local imports like "sim"),
// run the analyzer over a hand-built Pass, and match diagnostics against
// the fixtures' "// want" comments.
//
// The expectation syntax is analysistest's core subset: a comment
// containing
//
//	// want `regexp` `another`
//
// (backquoted or double-quoted Go strings) expects each regexp to match
// one diagnostic message reported on that comment's line. Unmatched
// diagnostics and unmet expectations both fail the test.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Run loads each named package from testdata/src/<pkg>, runs a over it,
// and checks the diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, pkg := range pkgs {
		runPkg(t, ld, a, pkg)
	}
}

func runPkg(t *testing.T, ld *loader, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	lp, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture package %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       ld.fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf: map[*analysis.Analyzer]interface{}{
			inspect.Analyzer: inspector.New(lp.files),
		},
		Report: func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s over %s: %v", a.Name, pkgPath, err)
	}

	wants := collectWants(t, ld.fset, lp.files)
	for _, d := range diags {
		p := ld.fset.Position(d.Pos)
		key := posKey{file: filepath.Base(p.Filename), line: p.Line}
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	wants.reportUnmet(t, pkgPath)
}

type posKey struct {
	file string
	line int
}

type want struct {
	key posKey
	re  *regexp.Regexp
	met bool
}

type wantSet struct{ wants []*want }

// match consumes one unmet expectation at key whose regexp matches msg.
func (ws *wantSet) match(key posKey, msg string) bool {
	for _, w := range ws.wants {
		if !w.met && w.key == key && w.re.MatchString(msg) {
			w.met = true
			return true
		}
	}
	return false
}

func (ws *wantSet) reportUnmet(t *testing.T, pkgPath string) {
	t.Helper()
	for _, w := range ws.wants {
		if !w.met {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				pkgPath, w.key.file, w.key.line, w.re)
		}
	}
}

// collectWants parses every "// want" comment in the package's files.
// The expectation binds to the line the comment starts on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) *wantSet {
	t.Helper()
	ws := &wantSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				p := fset.Position(c.Pos())
				key := posKey{file: filepath.Base(p.Filename), line: p.Line}
				for _, pat := range splitPatterns(t, p, c.Text[i+len("// want "):]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", p, pat, err)
					}
					ws.wants = append(ws.wants, &want{key: key, re: re})
				}
			}
		}
	}
	return ws
}

// splitPatterns scans a want comment's payload as a sequence of Go
// string literals (backquoted or double-quoted).
func splitPatterns(t *testing.T, p token.Position, s string) []string {
	t.Helper()
	var pats []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return pats
		}
		quote := s[0]
		if quote != '`' && quote != '"' {
			t.Fatalf("%s: want pattern must be a quoted or backquoted string, got %q", p, s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern in %q", p, s)
		}
		lit := s[:end+1]
		pat, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", p, lit, err)
		}
		pats = append(pats, pat)
		s = s[end+1:]
	}
}

// loader parses and typechecks fixture packages under srcDir, resolving
// local imports recursively and everything else through the source
// importer (which reads the standard library from GOROOT source, so no
// compiled export data is needed).
type loader struct {
	fset   *token.FileSet
	srcDir string
	std    types.Importer
	cache  map[string]*loadedPkg
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(srcDir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:   fset,
		srcDir: srcDir,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  map[string]*loadedPkg{},
	}
}

// Import implements types.Importer: fixture directories win, the
// standard library backs everything else.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.srcDir, path); isDir(dir) {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.cache[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.srcDir, path)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.cache[path] = lp
	return lp, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}

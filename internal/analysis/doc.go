// Package analysis is the home of slrlint, the repo's determinism
// linter: four golang.org/x/tools/go/analysis analyzers that machine-
// enforce the invariants every PR since PR 1 has re-proven by hand.
//
// The repo's contract is that a trial's JSONL output is a byte-identical
// function of its seed — across worker counts, shards, resumed runs and
// coordinator/worker topologies. Each analyzer encodes one way Go code
// has broken (or could break) that contract:
//
//   - mapiter: map-iteration order escaping into output or scheduling
//     (the PR 1 OLSR/SRP bug class — BFS seeded in range-over-map order).
//   - walltime: wall-clock reads or global math/rand in sim-reachable
//     code; all time must come from sim.Now(), all randomness from
//     seeded per-trial sources.
//   - floatfmt: shortest-form float formatting outside runner.Key, the
//     PR 6 canonical codec that keeps identity keys injective and equal
//     to the JSON encoder's rendering.
//   - pooledescape: pooled values (*sim.Event, control envelopes, radio
//     rx nodes) retained past the callback that received them — the
//     use-after-recycle hazard of the PR 1/PR 3 pooling.
//
// Deliberate exceptions carry //slrlint:allow <analyzer> <reason> on or
// directly above the flagged line; the reason is mandatory. cmd/slrlint
// bundles the analyzers behind the unitchecker protocol so `go vet
// -vettool` (make lint) drives them over the whole repo; the fixtures
// under testdata/ are deliberately pathological and excluded from the
// repo-wide gates (the go tool skips testdata directories by itself, and
// make fmt excludes them explicitly).
package analysis

package floatfmt_test

import (
	"testing"

	"slr/internal/analysis/atest"
	"slr/internal/analysis/floatfmt"
)

func TestFloatfmt(t *testing.T) {
	// runner exercises the function allowlist: the fixture Key.String is
	// the sanctioned codec, while its unlisted neighbor is still flagged.
	atest.Run(t, "../testdata", floatfmt.Analyzer, "floatfmt", "runner")
}

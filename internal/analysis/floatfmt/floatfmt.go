// Package floatfmt defines an analyzer that flags shortest-form float
// formatting outside the canonical runner.Key codec. PR 6 made
// Key.String the single source of shortest-float truth: its
// strconv.FormatFloat(v, 'g', -1, 64) rendering is what makes identity
// keys injective and equal to the JSON encoder's semantics, so dedup
// maps, resume skip-sets, lease tables and the /v1 wire format all agree.
// A second, drifting float-to-string path (a %v verb, an fmt.Sprint, a
// stray FormatFloat) can silently disagree with that codec — two
// renderings of one pause value stop comparing equal — so every such
// site must either be the codec or explain itself.
package floatfmt

import (
	"go/ast"
	"go/constant"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"slr/internal/analysis/slrlint"
)

const doc = `flag shortest-float formatting outside the canonical runner.Key codec

Reports float arguments formatted with %v (fmt's shortest-form rendering,
the same rule the JSON encoder and Key.String apply), floats passed to
the non-verb fmt functions (Sprint, Print, Fprintln, ...), and direct
strconv.FormatFloat/AppendFloat calls. Fixed-precision verbs (%.4f, %g
with an explicit precision) are report formatting, not identity encoding,
and stay legal; so is fmt.Errorf, whose output is human-facing error
text that never participates in identity comparison.

The -allow flag lists the sanctioned codec functions (default
runner.Key.String); other deliberate sites annotate with
//slrlint:allow floatfmt <reason>.`

// allowFuncs are the functions allowed to format floats shortest-form.
var allowFuncs = slrlint.NewList("slr/internal/runner.Key.String")

// Analyzer is the floatfmt analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "floatfmt",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var checkTests *bool

func init() {
	checkTests = slrlint.TestsFlag(Analyzer)
	Analyzer.Flags.Var(allowFuncs, "allow",
		"comma-separated pkg/path.Func (or pkg/path.Recv.Func) patterns allowed to format floats shortest-form")
}

// nonFormat maps fmt's non-verb print functions to the index of their
// first value argument.
var nonFormat = map[string]int{
	"Sprint": 0, "Sprintln": 0, "Print": 0, "Println": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

// withFormat maps fmt's verb-driven functions to their format-string
// argument index. Errorf is deliberately absent: error text is
// human-facing diagnostics, never compared against the Key codec.
var withFormat = map[string]int{
	"Sprintf": 0, "Printf": 0, "Fprintf": 1, "Appendf": 1,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := slrlint.NewSuppressor(pass, *checkTests)

	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fd := slrlint.TopDecl(stack); fd != nil &&
			allowFuncs.MatchFunc(pass.Pkg.Path(), declSym(fd)) {
			return true
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "strconv":
			if name == "FormatFloat" || name == "AppendFloat" {
				sup.Reportf(call.Pos(), "strconv.%s formats a float outside the canonical runner.Key codec; route identity-sensitive floats through Key.String or annotate with //slrlint:allow floatfmt <reason>", name)
			}
		case "fmt":
			if call.Ellipsis.IsValid() {
				return true // a spread argument list cannot be paired with verbs
			}
			if start, ok := nonFormat[name]; ok {
				for _, arg := range call.Args[min(start, len(call.Args)):] {
					if isFloat(pass.TypesInfo.TypeOf(arg)) {
						sup.Reportf(arg.Pos(), "float passed to fmt.%s renders shortest-form like the Key codec; use an explicit precision verb or annotate with //slrlint:allow floatfmt <reason>", name)
					}
				}
			}
			if fi, ok := withFormat[name]; ok && fi < len(call.Args) {
				checkFormat(pass, sup, name, call, fi)
			}
		}
		return true
	})
	return nil, nil
}

// declSym renders the Recv.Name (or Name) part of a declaration for
// allow-list matching.
func declSym(fd *ast.FuncDecl) string {
	full := slrlint.DeclName("", fd)
	return full[1:] // DeclName("", fd) == "." + sym
}

// checkFormat pairs a constant format string's verbs with the call's
// variadic arguments and reports float arguments formatted with %v.
func checkFormat(pass *analysis.Pass, sup *slrlint.Suppressor, name string, call *ast.CallExpr, fi int) {
	tv := pass.TypesInfo.Types[call.Args[fi]]
	if tv.Value == nil || tv.Value.Kind() != constant.String {
		return // dynamic format string: nothing to pair against
	}
	verbs, ok := parseVerbs(constant.StringVal(tv.Value))
	if !ok {
		return // *-widths or explicit indexes: pairing would be a guess
	}
	args := call.Args[fi+1:]
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		if v == 'v' && isFloat(pass.TypesInfo.TypeOf(args[i])) {
			sup.Reportf(args[i].Pos(), "float formatted with %%v in fmt.%s renders shortest-form like the Key codec; use an explicit precision verb or annotate with //slrlint:allow floatfmt <reason>", name)
		}
	}
}

// parseVerbs extracts the verb letters of a format string in argument
// order. It reports !ok for formats it cannot pair positionally
// (* width/precision, %[n] indexes).
func parseVerbs(s string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			continue
		}
		i++
		if i < len(s) && s[i] == '%' {
			continue
		}
		for i < len(s) {
			c := s[i]
			if c == '*' || c == '[' {
				return nil, false
			}
			// flags, width, precision
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs, true
}

// isFloat reports whether t's core type is a floating-point kind,
// including named float types and untyped float constants.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

package mapiter_test

import (
	"testing"

	"slr/internal/analysis/atest"
	"slr/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	atest.Run(t, "../testdata", mapiter.Analyzer, "mapiter")
}

// Package mapiter defines an analyzer that flags ranging over a map
// where the loop body's effects escape in iteration order — the exact
// bug class PR 1 fixed in OLSR and SRP, where map-iteration order leaked
// into BFS seeding and successor sets and broke byte-identical replay.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"slr/internal/analysis/slrlint"
)

const doc = `flag map iteration whose order escapes into output or scheduling

Go randomizes map iteration order, so any observable effect of a
"for k := range m" body that depends on that order breaks the repo's
byte-identical-per-seed contract. The analyzer reports two escape shapes:

 1. an order-sensitive call inside the loop body: an emitter (Emit,
    Broadcast*, UnicastControl, fmt print functions) or a scheduling call
    (Schedule*, Reschedule*, and At/After on the simulator/node clock,
    which consume a FIFO tie-break sequence number per call);
 2. appending values derived from the range variables to a slice that is
    never sorted later in the same function — the PR 1 OLSR BFS-seeding
    bug.

Iterations whose outcome is genuinely order-independent (set membership,
commutative folds) are excused with //slrlint:allow mapiter <reason>.`

// schedRecvs names the types whose At/After methods consume the kernel's
// FIFO sequence numbers, making bare call order observable.
var schedRecvs = slrlint.NewList("slr/internal/sim.Simulator", "slr/internal/netstack.Node")

// Analyzer is the mapiter analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "mapiter",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var checkTests *bool

func init() {
	checkTests = slrlint.TestsFlag(Analyzer)
	Analyzer.Flags.Var(schedRecvs, "schedrecvs",
		"comma-separated types whose At/After methods are scheduling sinks")
}

// accum is one slice the loop body appends range-derived values to.
type accum struct {
	obj types.Object // root object of the target, nil if unresolvable
	str string       // rendered target expression, e.g. "p.symList"
	pos token.Pos    // first offending append
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := slrlint.NewSuppressor(pass, *checkTests)
	reported := map[token.Pos]bool{}

	insp.WithStack([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		rs := n.(*ast.RangeStmt)
		if !isMap(pass.TypesInfo.TypeOf(rs.X)) {
			return true
		}
		checkRange(pass, sup, rs, stack, reported)
		return true
	})
	return nil, nil
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := types.Unalias(t).Underlying().(*types.Map)
	return ok
}

func checkRange(pass *analysis.Pass, sup *slrlint.Suppressor, rs *ast.RangeStmt, stack []ast.Node, reported map[token.Pos]bool) {
	loopVars := rangeVars(pass, rs)
	var accums []accum

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if why := sinkCall(pass, n); why != "" && !reported[n.Pos()] {
				reported[n.Pos()] = true
				sup.Reportf(n.Pos(), "%s inside range over a map runs in map-iteration order; iterate a sorted copy or annotate with //slrlint:allow mapiter <reason>", why)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 {
					continue
				}
				if !refsAny(pass, call.Args[1:], loopVars) {
					continue
				}
				if a, ok := appendTarget(pass, n.Lhs[i], rs); ok {
					accums = append(accums, accum{obj: a.obj, str: a.str, pos: call.Pos()})
				}
			}
		}
		return true
	})

	body, _ := slrlint.EnclosingFunc(stack)
	for _, a := range accums {
		if reported[a.pos] {
			continue
		}
		if body != nil && sortedAfter(pass, body, a) {
			continue
		}
		reported[a.pos] = true
		sup.Reportf(a.pos, "%s accumulates range-over-map values in map-iteration order and is never sorted in this function; sort before it escapes or annotate with //slrlint:allow mapiter <reason>", a.str)
	}
}

// rangeVars collects the objects of the range statement's key and value
// variables.
func rangeVars(pass *analysis.Pass, rs *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if o := pass.TypesInfo.Defs[id]; o != nil {
			out = append(out, o)
		} else if o := pass.TypesInfo.Uses[id]; o != nil {
			out = append(out, o)
		}
	}
	return out
}

// sinkCall classifies a call as order-sensitive: an emitter or a
// scheduling call. It returns a short description, or "".
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	callee := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		return ""
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
			return "fmt." + name + " emits"
		}
		return ""
	}
	switch {
	case name == "Emit" || strings.HasPrefix(name, "Broadcast") || name == "UnicastControl":
		return "emitter call " + name
	case strings.HasPrefix(name, "Schedule") || name == "Reschedule" || name == "RescheduleAfter":
		return "scheduling call " + name
	case name == "At" || name == "After":
		for _, p := range schedRecvs.Items {
			if slrlint.MatchNamed(sig.Recv().Type(), p) {
				return "scheduling call " + name
			}
		}
	}
	return ""
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// refsAny reports whether any expression references one of the objects.
func refsAny(pass *analysis.Pass, exprs []ast.Expr, objs []types.Object) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || found {
				return !found
			}
			use := pass.TypesInfo.Uses[id]
			for _, o := range objs {
				if use == o {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// appendTarget resolves an append assignment's destination to a trackable
// accumulator: an identifier declared outside the loop, or a selector
// path (struct field), both of which outlive the iteration.
func appendTarget(pass *analysis.Pass, lhs ast.Expr, rs *ast.RangeStmt) (accum, bool) {
	switch l := lhs.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[l]
		if obj == nil {
			obj = pass.TypesInfo.Defs[l]
		}
		if obj == nil || insideLoop(obj.Pos(), rs) {
			return accum{}, false
		}
		return accum{obj: obj, str: l.Name}, true
	case *ast.SelectorExpr:
		return accum{obj: rootObj(pass, l), str: types.ExprString(l)}, true
	}
	return accum{}, false
}

func insideLoop(pos token.Pos, rs *ast.RangeStmt) bool {
	return pos >= rs.Pos() && pos <= rs.End()
}

func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		default:
			return nil
		}
	}
}

// sortedAfter reports whether, lexically after the offending append, the
// enclosing function passes the accumulator to a sort: any sort.* or
// slices.Sort* call, or a Sort method, mentioning the accumulator in its
// arguments (including wrapped forms like sort.Sort(byID(x))).
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, a accum) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < a.pos || found {
			return !found
		}
		if !isSortCall(pass, call) {
			return true
		}
		args := call.Args
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			args = append(args[:len(args):len(args)], sel.X)
		}
		for _, arg := range args {
			ast.Inspect(arg, func(m ast.Node) bool {
				e, ok := m.(ast.Expr)
				if !ok || found {
					return !found
				}
				if id, ok := e.(*ast.Ident); ok && a.obj != nil && pass.TypesInfo.Uses[id] == a.obj && a.str == id.Name {
					found = true
				}
				if _, ok := e.(*ast.SelectorExpr); ok && types.ExprString(e) == a.str {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isSortCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	callee := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return fn.Name() != "Search" && fn.Name() != "SearchInts" &&
			fn.Name() != "SearchStrings" && fn.Name() != "SearchFloat64s"
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	// A local helper whose name says it sorts (sortNodeIDs, SortBySeq)
	// restores order too; SRP's RERR path relies on exactly this shape.
	return strings.HasPrefix(fn.Name(), "Sort") || strings.HasPrefix(fn.Name(), "sort")
}

// Package pooledescape defines an analyzer that flags retaining a pooled
// value past the callback that received it. The PR 1/PR 3 pooling made
// *sim.Event, netstack's control envelopes and radio's rx nodes recycled
// storage: the owner reuses them the moment the callback returns, so a
// copy parked in a struct field, package variable or channel is a
// use-after-recycle bug that manifests as another event's data. The
// sanctioned way to keep a reference is a generation-checked handle
// (sim.Timer), which turns stale use into a no-op.
package pooledescape

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"slr/internal/analysis/slrlint"
)

const doc = `flag pooled values retained past the callback that received them

Reports storing a pointer to a pooled type (-types, default *sim.Event,
netstack's control envelopes, radio's rx nodes) into a struct field,
package variable, element of either, or a channel. Local variables and
direct use inside the receiving callback are fine; so is each pool's own
package, whose freelists legitimately retain their nodes, and any
package listed in -owners — by default the kernel and its parallel
executor, whose merge buffers hold fired events between a window's
dispatch and the coordinator's sweep as the ownership-transfer protocol
itself. Deliberate retention elsewhere annotates with
//slrlint:allow pooledescape <reason>.

The check is shallow by design: it sees the pointer itself escape, not a
struct that wraps one. Wrapping a pooled pointer in a new struct is
exactly what sim.Timer is for — a generation-checked handle that makes
stale use a safe no-op — so reach for that instead of a bare copy.`

// pooledTypes names the recycled types whose pointers must not outlive
// their callback.
var pooledTypes = slrlint.NewList(
	"slr/internal/sim.Event",
	"slr/internal/netstack.controlEnvelope",
	"slr/internal/radio.rx",
)

// ownerPkgs lists packages that join the pool-owner exemption beyond each
// type's defining package. The parallel executor's merge buffers
// (ExecCtx.fired, stagedOp.ev, Simulator.mergeBuf) retain pooled
// *sim.Event nodes between a window's dispatch and the coordinator's
// post-join sweep — that retention IS the ownership-transfer protocol,
// not an escape: the node's generation is already bumped, so every timer
// to it is stale, and the sweep is the release. The executor lives inside
// the kernel package today (already owner-exempt as the defining
// package); the /... pattern keeps the exemption attached to it if it is
// ever split into a subpackage.
var ownerPkgs = slrlint.NewList(
	"slr/internal/sim/...",
)

// Analyzer is the pooledescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "pooledescape",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var checkTests *bool

func init() {
	checkTests = slrlint.TestsFlag(Analyzer)
	Analyzer.Flags.Var(pooledTypes, "types",
		"comma-separated pkg/path.Type patterns of pooled types")
	Analyzer.Flags.Var(ownerPkgs, "owners",
		"comma-separated package patterns that join the pool-owner exemption (kernel executor merge buffers)")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if ownerPkgs.MatchPath(pass.Pkg.Path()) {
		// Pool-owner package (the kernel and its executor): freelists and
		// merge buffers retain nodes by construction.
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := slrlint.NewSuppressor(pass, *checkTests)

	insp.Preorder([]ast.Node{(*ast.AssignStmt)(nil), (*ast.SendStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if name, ok := pooled(pass, pass.TypesInfo.TypeOf(n.Value)); ok {
				sup.Reportf(n.Value.Pos(), "pooled *%s sent on a channel outlives the callback that received it; the owner recycles it on return (use a generation-checked handle like sim.Timer, or //slrlint:allow pooledescape <reason>)", name)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i, rhs := range n.Rhs {
				lhs := n.Lhs[i]
				if !persistent(pass, lhs) {
					continue
				}
				if name, ok := pooled(pass, pass.TypesInfo.TypeOf(rhs)); ok {
					sup.Reportf(rhs.Pos(), "pooled *%s stored in %s outlives the callback that received it; the owner recycles it on return (use a generation-checked handle like sim.Timer, or //slrlint:allow pooledescape <reason>)", name, types.ExprString(lhs))
					continue
				}
				// x.evs = append(x.evs, ev): the appended element is what
				// escapes into the persistent slice.
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					for _, arg := range call.Args[1:] {
						if name, ok := pooled(pass, pass.TypesInfo.TypeOf(arg)); ok {
							sup.Reportf(arg.Pos(), "pooled *%s appended to %s outlives the callback that received it; the owner recycles it on return (use a generation-checked handle like sim.Timer, or //slrlint:allow pooledescape <reason>)", name, types.ExprString(lhs))
						}
					}
				}
			}
		}
	})
	return nil, nil
}

// pooled reports whether t is a pointer to a configured pooled type and
// the current package is not the pool's own.
func pooled(pass *analysis.Pass, t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if _, ok := types.Unalias(t).(*types.Pointer); !ok {
		return "", false
	}
	for _, pat := range pooledTypes.Items {
		if !slrlint.MatchNamed(t, pat) {
			continue
		}
		// The defining package is the pool owner: its freelists and queue
		// tiers retain nodes by construction.
		pkgPat, _ := slrlint.SplitSymbol(pat)
		if slrlint.MatchPkg(pkgPat, pass.Pkg.Path()) {
			return "", false
		}
		n := slrlint.Named(t)
		return n.Obj().Name(), true
	}
	return "", false
}

// persistent reports whether an assignment destination outlives the
// enclosing call: a struct field, a package-level variable, or an element
// reached through one.
func persistent(pass *analysis.Pass, lhs ast.Expr) bool {
	switch l := lhs.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[l]; ok {
			return sel.Kind() == types.FieldVal
		}
		// Qualified identifier: pkg.Var.
		return pkgLevelVar(pass.TypesInfo.Uses[l.Sel])
	case *ast.Ident:
		return pkgLevelVar(pass.TypesInfo.Uses[l])
	case *ast.IndexExpr:
		return persistent(pass, l.X)
	case *ast.ParenExpr:
		return persistent(pass, l.X)
	}
	return false
}

func pkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

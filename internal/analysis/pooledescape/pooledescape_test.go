package pooledescape_test

import (
	"testing"

	"slr/internal/analysis/atest"
	"slr/internal/analysis/pooledescape"
)

func TestPooledEscape(t *testing.T) {
	// sim exercises the defining-package exemption: the pool owner's
	// freelist stores must produce zero diagnostics. sim/executor
	// exercises the -owners exemption: the parallel executor's merge
	// buffers retain fired events between dispatch and sweep by design.
	atest.Run(t, "../testdata", pooledescape.Analyzer, "pooledescape", "sim", "sim/executor")
}

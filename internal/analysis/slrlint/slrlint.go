// Package slrlint holds the machinery shared by the repo's determinism
// analyzers (internal/analysis/...): the //slrlint:allow suppression
// contract, package-path and symbol matching for analyzer configuration,
// and small helpers over the analysis.Pass surface.
//
// Suppression contract: a diagnostic is silenced by a comment of the form
//
//	//slrlint:allow <analyzer> <reason>
//
// placed on the flagged line (trailing) or on the line directly above it.
// The reason is mandatory — an allow without one is itself reported — so
// every deliberate exception to the determinism discipline carries its
// justification in the source, next to the code it excuses.
package slrlint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AllowPrefix is the comment directive that suppresses one diagnostic.
const AllowPrefix = "slrlint:allow"

// wantMarker starts an in-fixture expectation comment (see atest); an
// allow reason never extends into one.
const wantMarker = "// want "

// Suppressor filters one analyzer's diagnostics through the pass's
// //slrlint:allow comments and, by default, drops findings in _test.go
// files (test code may use wall clocks and unordered iteration freely —
// golden comparisons, not source hygiene, gate its determinism).
type Suppressor struct {
	pass      *analysis.Pass
	checkTest bool
	// allowed marks file:line coordinates excused for this analyzer: the
	// allow comment's own line and the line below it.
	allowed map[string]map[int]bool
}

// NewSuppressor scans the pass's files for allow comments naming
// pass.Analyzer and reports any that lack a reason. checkTests extends
// reporting into _test.go files.
func NewSuppressor(pass *analysis.Pass, checkTests bool) *Suppressor {
	s := &Suppressor{pass: pass, checkTest: checkTests, allowed: map[string]map[int]bool{}}
	name := pass.Analyzer.Name
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				text = strings.TrimSpace(strings.TrimPrefix(text, AllowPrefix))
				// Fixture expectation comments ride on the same line;
				// they are not part of the reason.
				if i := strings.Index(text, wantMarker); i >= 0 {
					text = strings.TrimSpace(text[:i])
				}
				allowName, reason, _ := strings.Cut(text, " ")
				if allowName != name {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				if s.skipFile(p.Filename) {
					continue
				}
				if strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(), "%s %s needs a non-empty reason", AllowPrefix, name)
					continue
				}
				lines := s.allowed[p.Filename]
				if lines == nil {
					lines = map[int]bool{}
					s.allowed[p.Filename] = lines
				}
				lines[p.Line] = true
				lines[p.Line+1] = true
			}
		}
	}
	return s
}

func (s *Suppressor) skipFile(filename string) bool {
	return !s.checkTest && strings.HasSuffix(filename, "_test.go")
}

// Reportf reports a diagnostic at pos unless an allow comment for this
// analyzer covers the line or the finding is in a skipped test file.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...any) {
	p := s.pass.Fset.Position(pos)
	if s.skipFile(p.Filename) {
		return
	}
	if s.allowed[p.Filename][p.Line] {
		return
	}
	s.pass.Reportf(pos, format, args...)
}

// TestsFlag registers the shared -<analyzer>.tests flag that extends an
// analyzer into _test.go files.
func TestsFlag(a *analysis.Analyzer) *bool {
	return a.Flags.Bool("tests", false, "also report findings in _test.go files")
}

// MatchPkg reports whether package path matches pattern. A pattern
// matches its exact path and any suffix alignment on a '/' boundary in
// either direction, so the analyzer defaults written against this repo's
// full import paths ("slr/internal/sim") also match the short fixture
// paths the analyzer tests typecheck ("sim"). A trailing "/..." matches
// any package under the pattern, with the same suffix tolerance
// ("slr/cmd/..." covers both "slr/cmd/slrsim" and a fixture's
// "cmd/slrsim").
func MatchPkg(pattern, path string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		for {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
			i := strings.Index(sub, "/")
			if i < 0 {
				return false
			}
			sub = sub[i+1:]
		}
	}
	return pattern == path ||
		strings.HasSuffix(pattern, "/"+path) ||
		strings.HasSuffix(path, "/"+pattern)
}

// List is a comma-separated list flag with MatchPkg semantics.
type List struct {
	Items []string
}

// NewList returns a List holding items.
func NewList(items ...string) *List { return &List{Items: items} }

// String implements flag.Value.
func (l *List) String() string {
	if l == nil {
		return ""
	}
	return strings.Join(l.Items, ",")
}

// Set implements flag.Value, replacing the list.
func (l *List) Set(s string) error {
	l.Items = nil
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			l.Items = append(l.Items, f)
		}
	}
	return nil
}

// MatchPath reports whether any pattern in the list matches the package
// path.
func (l *List) MatchPath(path string) bool {
	for _, p := range l.Items {
		if MatchPkg(p, path) {
			return true
		}
	}
	return false
}

// SplitSymbol splits a "pkg/path.Rest.OfName" pattern into its package
// path and the dotted symbol after it: the package part runs through the
// first '.' past the last '/'.
func SplitSymbol(pattern string) (pkg, sym string) {
	slash := strings.LastIndex(pattern, "/")
	dot := strings.Index(pattern[slash+1:], ".")
	if dot < 0 {
		return pattern, ""
	}
	dot += slash + 1
	return pattern[:dot], pattern[dot+1:]
}

// MatchNamed reports whether t (through pointers and aliases) is the
// named type a "pkg/path.Name" pattern describes.
func MatchNamed(t types.Type, pattern string) bool {
	pkgPat, name := SplitSymbol(pattern)
	n := Named(t)
	if n == nil || n.Obj().Name() != name || n.Obj().Pkg() == nil {
		return false
	}
	return MatchPkg(pkgPat, n.Obj().Pkg().Path())
}

// Named unwraps pointers and aliases down to a named type, or nil.
func Named(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// DeclName renders the allow-list identity of a function declaration:
// "pkg/path.Name" for functions, "pkg/path.Recv.Name" for methods.
func DeclName(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	return pkgPath + "." + recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
}

// recvTypeName extracts the bare receiver type name from its AST form.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// MatchFunc reports whether the function identity (as DeclName renders
// it, with pkgPath the pass's package path) matches any
// "pkg/path.Sym.Bol" pattern in the list.
func (l *List) MatchFunc(pkgPath, declSym string) bool {
	for _, p := range l.Items {
		pkgPat, sym := SplitSymbol(p)
		if sym == declSym && MatchPkg(pkgPat, pkgPath) {
			return true
		}
	}
	return false
}

// EnclosingFunc returns the innermost function declaration or literal in
// a WithStack stack, and the enclosing FuncDecl if the innermost function
// is a declaration (nil inside a closure).
func EnclosingFunc(stack []ast.Node) (body *ast.BlockStmt, decl *ast.FuncDecl) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body, f
		case *ast.FuncLit:
			return f.Body, nil
		}
	}
	return nil, nil
}

// TopDecl returns the top-level function declaration a WithStack stack is
// inside, regardless of intervening closures.
func TopDecl(stack []ast.Node) *ast.FuncDecl {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

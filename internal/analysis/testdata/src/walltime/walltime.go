// Package walltime holds fixtures for the walltime analyzer: wall-clock
// reads and global math/rand draws are flagged, the seeded per-source
// path and time's pure value surface stay legal.
package walltime

import (
	"math/rand"
	"time"
)

func badClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func badSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func badGlobalRand() int {
	return rand.Intn(4) // want `rand\.Intn uses the global math/rand generator`
}

func badGlobalFloat() float64 {
	return rand.Float64() // want `rand\.Float64 uses the global math/rand generator`
}

// okSeeded is the sanctioned path: a per-trial source built from a seed.
func okSeeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// okDuration uses time's value surface only — no clock reads.
func okDuration(ticks int64) time.Duration {
	return time.Duration(ticks) * time.Millisecond
}

// allowedMeter documents a deliberate wall-clock use outside the
// allowlisted daemon packages.
func allowedMeter() time.Time {
	//slrlint:allow walltime progress meter timestamps never reach trial output
	return time.Now()
}

// Package runner proves the floatfmt analyzer's function allowlist: the
// default -floatfmt.allow pattern ("slr/internal/runner.Key.String")
// matches this fixture's Key.String by package-path suffix, so the
// canonical codec itself is never flagged.
package runner

import "strconv"

// Key is the fixture twin of the real identity key.
type Key struct {
	Pause float64
}

// String is the canonical shortest-float codec.
func (k Key) String() string {
	return "pause=" + strconv.FormatFloat(k.Pause, 'g', -1, 64)
}

// rogue is NOT on the allowlist, so a second codec in the same package
// is still flagged.
func rogue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) // want `strconv\.FormatFloat formats a float outside the canonical runner\.Key codec`
}

// Package sweepd proves the walltime analyzer's package allowlist: the
// default -walltime.allow patterns ("slr/internal/sweepd", ...) match
// this fixture path by suffix, so its wall-clock reads stay silent.
package sweepd

import "time"

// LeaseDeadline lives on the wall clock by design — the sweep daemon
// coordinates real workers, not simulated ones.
func LeaseDeadline(ttl time.Duration) time.Time {
	return time.Now().Add(ttl)
}

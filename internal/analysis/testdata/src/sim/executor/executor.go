// Package executor is a fixture shaped like the kernel's parallel
// executor: pooled *sim.Event nodes are parked in per-worker merge
// buffers between a window's dispatch and the coordinator's post-join
// sweep. That retention is the ownership-transfer protocol, not an
// escape, so the package joins the pool-owner exemption via the
// analyzer's -owners default ("slr/internal/sim/...") and every store
// below must produce zero diagnostics.
package executor

import "sim"

type stagedOp struct {
	ev *sim.Event
}

type execCtx struct {
	fired []*sim.Event
	log   []stagedOp
}

type coordinator struct {
	mergeBuf []*stagedOp
	jobs     chan *sim.Event
}

// stage retains the fired event and its staged op — owner-exempt.
func stage(c *execCtx, ev *sim.Event) {
	c.fired = append(c.fired, ev)
	c.log = append(c.log, stagedOp{ev: ev})
	c.log[0].ev = ev
}

// merge collects staged ops across workers — owner-exempt.
func merge(co *coordinator, ctxs []*execCtx, ev *sim.Event) {
	for i := range ctxs {
		for j := range ctxs[i].log {
			co.mergeBuf = append(co.mergeBuf, &ctxs[i].log[j])
		}
	}
	co.jobs <- ev
}

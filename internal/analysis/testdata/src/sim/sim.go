// Package sim is a miniature stand-in for slr/internal/sim, just large
// enough for the analyzer fixtures: the pooled Event, the Timer handle,
// and a Simulator whose At/After consume FIFO sequence numbers. The
// suffix-tolerant package matching in slrlint makes the analyzers'
// defaults ("slr/internal/sim.Event", ...) bind to this package too.
package sim

// Time is simulated time.
type Time int64

// Event is a pooled scheduler node: recycled onto the freelist the
// moment its callback returns.
type Event struct {
	ID   uint64
	When Time
	Fn   func()
	next *Event
}

// Timer is the generation-checked handle that may outlive an Event.
type Timer struct {
	ev  *Event
	gen uint64
}

// Simulator is the fixture kernel.
type Simulator struct {
	now      Time
	seq      uint64
	freelist *Event
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// At schedules fn at t, consuming one FIFO sequence number.
func (s *Simulator) At(t Time, fn func()) Timer {
	ev := s.alloc()
	ev.When, ev.Fn = t, fn
	return Timer{ev: ev, gen: ev.ID}
}

// After schedules fn at Now()+d.
func (s *Simulator) After(d Time, fn func()) Timer { return s.At(s.now+d, fn) }

// Schedule is the handle-less scheduling entry point.
func (s *Simulator) Schedule(t Time, fn func()) { s.At(t, fn) }

func (s *Simulator) alloc() *Event {
	s.seq++
	if ev := s.freelist; ev != nil {
		s.freelist = ev.next
		ev.ID = s.seq
		return ev
	}
	return &Event{ID: s.seq}
}

// release returns an Event to the freelist. The defining package is the
// pool owner, so pooledescape exempts these stores by construction.
func (s *Simulator) release(ev *Event) {
	ev.Fn = nil
	ev.next = s.freelist
	s.freelist = ev
}

// Package pooledescape holds fixtures for the pooledescape analyzer:
// parking a pooled pointer anywhere that outlives the callback is
// flagged; local use and the sanctioned Timer handle stay legal.
package pooledescape

import "sim"

type holder struct {
	ev    *sim.Event
	evs   []*sim.Event
	timer sim.Timer
}

var lastEvent *sim.Event

func badField(h *holder, ev *sim.Event) {
	h.ev = ev // want `pooled \*Event stored in h\.ev outlives the callback`
}

func badGlobal(ev *sim.Event) {
	lastEvent = ev // want `pooled \*Event stored in lastEvent outlives the callback`
}

func badAppend(h *holder, ev *sim.Event) {
	h.evs = append(h.evs, ev) // want `pooled \*Event appended to h\.evs outlives the callback`
}

func badSend(ch chan *sim.Event, ev *sim.Event) {
	ch <- ev // want `pooled \*Event sent on a channel outlives the callback`
}

// okLocal: reading the event inside its own callback is the point of
// receiving it.
func okLocal(ev *sim.Event) sim.Time {
	e := ev
	return e.When
}

// okTimer: a generation-checked handle is the sanctioned way to keep a
// reference past the callback.
func okTimer(h *holder, s *sim.Simulator) {
	h.timer = s.After(5, func() {})
}

// allowedTrace documents a deliberate retention.
func allowedTrace(h *holder, ev *sim.Event) {
	//slrlint:allow pooledescape debug trace snapshots the event before the pool reclaims it
	h.ev = ev
}

// Package mapiter holds fixtures for the mapiter analyzer. bfsSeed is a
// minimal reproduction of the PR 1 OLSR bug: BFS seeds accumulated in
// range-over-map order, which leaked map iteration order into route
// tie-breaks and broke byte-identical replay.
package mapiter

import (
	"fmt"
	"sort"

	"sim"
)

type emitter struct{}

func (emitter) Emit(v int)             {}
func (emitter) BroadcastControl(v int) {}

// bfsSeed is the PR 1 shape: the accumulated seeds escape unsorted.
func bfsSeed(links map[int]bool) []int {
	var seeds []int
	for id := range links {
		seeds = append(seeds, id) // want `seeds accumulates range-over-map values`
	}
	return seeds
}

// bfsSeedSorted is the PR 1 fix: the sort after the loop restores a
// deterministic order before the slice escapes.
func bfsSeedSorted(links map[int]bool) []int {
	var seeds []int
	for id := range links {
		seeds = append(seeds, id)
	}
	sort.Ints(seeds)
	return seeds
}

// bfsSeedHelperSorted shows a receiver-less local helper whose name says
// it sorts (the SRP sortNodeIDs shape) also restores order.
func bfsSeedHelperSorted(links map[int]bool) []int {
	var seeds []int
	for id := range links {
		seeds = append(seeds, id)
	}
	sortIDs(seeds)
	return seeds
}

func sortIDs(ids []int) { sort.Ints(ids) }

type proto struct {
	symList []int
}

// fieldAccum exercises the selector-path accumulator with a sort.Slice
// mentioning the same field afterwards.
func (p *proto) fieldAccum(links map[int]bool) {
	for id := range links {
		p.symList = append(p.symList, id)
	}
	sort.Slice(p.symList, func(i, j int) bool { return p.symList[i] < p.symList[j] })
}

// fieldAccumUnsorted leaves the field in map order.
func (p *proto) fieldAccumUnsorted(links map[int]bool) {
	for id := range links {
		p.symList = append(p.symList, id) // want `p.symList accumulates range-over-map values`
	}
}

// emitInRange calls an emitter per iteration: each packet's position in
// the broadcast sequence follows map order.
func emitInRange(e emitter, m map[int]int) {
	for k, v := range m {
		e.Emit(k + v) // want `emitter call Emit inside range over a map`
	}
}

// broadcastInRange covers the Broadcast* emitter family.
func broadcastInRange(e emitter, m map[int]int) {
	for k := range m {
		e.BroadcastControl(k) // want `emitter call BroadcastControl inside range over a map`
	}
}

// scheduleInRange consumes the kernel's FIFO sequence numbers in map
// order: same-timestamp events replay in a different order per run.
func scheduleInRange(s *sim.Simulator, m map[int]int) {
	for k := range m {
		s.At(sim.Time(k), func() {}) // want `scheduling call At inside range over a map`
	}
}

// printInRange emits through fmt directly.
func printInRange(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println emits inside range over a map`
	}
}

// localOnly never lets the loop's effects escape: a scalar fold is
// order-independent and stays silent.
func localOnly(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// allowedFold documents a deliberate order-independent emitter call.
func allowedFold(e emitter, m map[int]int) {
	for k := range m {
		//slrlint:allow mapiter set-membership notification, order-independent by construction
		e.Emit(k)
	}
}

// allowedNoReason shows that a reason-less allow both fails the allow
// contract and leaves the original finding standing.
func allowedNoReason(e emitter, m map[int]int) {
	for k := range m {
		e.Emit(k) //slrlint:allow mapiter // want `needs a non-empty reason` `emitter call Emit inside range over a map`
	}
}

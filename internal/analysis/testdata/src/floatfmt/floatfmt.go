// Package floatfmt holds fixtures for the floatfmt analyzer: shortest-
// form float rendering outside the canonical Key codec is flagged;
// fixed-precision report formatting stays legal.
package floatfmt

import (
	"fmt"
	"strconv"
)

type metres float64

func badFormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64) // want `strconv\.FormatFloat formats a float outside the canonical runner\.Key codec`
}

func badAppendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64) // want `strconv\.AppendFloat formats a float outside the canonical runner\.Key codec`
}

func badSprint(v float64) string {
	return fmt.Sprint(v) // want `float passed to fmt\.Sprint renders shortest-form`
}

func badVerb(v float64) string {
	return fmt.Sprintf("pause=%v", v) // want `float formatted with %v in fmt\.Sprintf`
}

// badNamed shows the check sees through named float types.
func badNamed(m metres) string {
	return fmt.Sprint(m) // want `float passed to fmt\.Sprint renders shortest-form`
}

// okPrecision is report formatting: an explicit precision cannot drift
// from the codec because it never claims to be shortest-form.
func okPrecision(v float64) string {
	return fmt.Sprintf("%.4f", v)
}

// okNonFloat: %v over non-floats is fine.
func okNonFloat(n int, s string) string {
	return fmt.Sprintf("%v/%v", n, s)
}

// okError: Errorf output is human-facing error text, never an identity
// key, so shortest-form floats in it are exempt.
func okError(v float64) error {
	return fmt.Errorf("rate %v out of range", v)
}

// okDynamic: a non-constant format string cannot be paired with
// arguments, so the analyzer stays silent rather than guessing.
func okDynamic(format string, v float64) string {
	return fmt.Sprintf(format, v)
}

// allowedCSV documents a site that deliberately shares the codec's
// rendering.
func allowedCSV(v float64) string {
	//slrlint:allow floatfmt CSV cells share the Key rendering so spreadsheet joins line up
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Package walltime defines an analyzer that forbids wall-clock reads and
// the global math/rand generator in simulation-reachable code. A trial's
// output must be a pure function of its seed: all time comes from
// sim.Now() and all randomness from the seeded per-trial sources
// (sim.Rand and the per-node mobility/traffic streams), never from the
// host clock or process-global state that other goroutines share.
package walltime

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"slr/internal/analysis/slrlint"
)

const doc = `forbid wall-clock and global math/rand in simulation-reachable code

Flags references (calls or function values) to time.Now, time.Since and
the rest of the host-clock surface, and to math/rand's package-level
generator functions. rand.New/NewSource and methods on a *rand.Rand are
the sanctioned seeded path and stay legal, as do time's types and
constants (sim.Time is a time.Duration).

Daemon and CLI code legitimately lives on the wall clock; the -allow flag
lists those package patterns (default: the sweep coordinator/worker
daemon and the command mains). Anything else — e.g. a progress meter in
otherwise sim-adjacent code — carries //slrlint:allow walltime <reason>.`

// allowPkgs are the package patterns allowed to touch the wall clock.
var allowPkgs = slrlint.NewList("slr/internal/sweepd", "slr/cmd/...", "slr/examples/...")

// Analyzer is the walltime analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "walltime",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var checkTests *bool

func init() {
	checkTests = slrlint.TestsFlag(Analyzer)
	Analyzer.Flags.Var(allowPkgs, "allow",
		"comma-separated package patterns allowed to use the wall clock and global rand")
}

// bannedTime is the host-clock surface of package time. Types, constants
// and pure converters (Duration, ParseDuration, Unix…) stay legal.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// bannedRand is the process-global generator surface of math/rand and
// math/rand/v2. Constructors (New, NewSource, NewZipf, NewPCG,
// NewChaCha8) build seeded per-trial sources and stay legal.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint": true, "Uint32": true,
	"Uint64": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if allowPkgs.MatchPath(pass.Pkg.Path()) {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := slrlint.NewSuppressor(pass, *checkTests)

	insp.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "time":
			if bannedTime[name] {
				sup.Reportf(sel.Pos(), "time.%s reads the wall clock; sim code derives time from sim.Now() (allow with //slrlint:allow walltime <reason> or the -walltime.allow package list)", name)
			}
		case "math/rand", "math/rand/v2":
			if bannedRand[name] {
				sup.Reportf(sel.Pos(), "rand.%s uses the global math/rand generator; sim code draws from its seeded per-trial source (sim.Rand or a rand.New(rand.NewSource(seed)) stream)", name)
			}
		}
	})
	return nil, nil
}

package walltime_test

import (
	"testing"

	"slr/internal/analysis/atest"
	"slr/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	// sweepd exercises the package allowlist: wall-clock reads there
	// must produce zero diagnostics.
	atest.Run(t, "../testdata", walltime.Analyzer, "walltime", "sweepd")
}

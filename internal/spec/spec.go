// Package spec loads declarative scenario specifications: versioned JSON
// documents that describe a complete simulation run — node count, terrain,
// radio propagation, mobility model, traffic workload — resolved through
// the model registries in internal/mobility, internal/traffic, and
// internal/radio. A spec file is the single source of truth for a
// workload: the same file drives cmd/slrsim, cmd/experiments, and any
// future sweep tooling, and committing one pins an experiment exactly.
//
// The format is deliberately flat and explicit (all durations in seconds,
// all distances in meters):
//
//	{
//	  "version": 1,
//	  "name": "paper-default",
//	  "protocol": "SRP",
//	  "nodes": 100,
//	  "terrain": {"width_m": 2200, "height_m": 600},
//	  "duration_seconds": 900,
//	  "seed": 1,
//	  "trials": 10,
//	  "radio": {"range_m": 275, "propagation": "unit-disk"},
//	  "mobility": {"model": "waypoint", "min_speed_mps": 0,
//	               "max_speed_mps": 20, "pause_seconds": 0},
//	  "traffic": {"model": "cbr", "flows": 30, "packet_size_bytes": 512,
//	              "rate_pps": 4, "mean_life_seconds": 60}
//	}
//
// Model-specific knobs ride in each section's "params" map (e.g.
// {"model": "manhattan", "params": {"block_m": 150}}), and the routing
// protocol's constants in the top-level "protocol_params" map (durations
// in seconds, booleans as 0/1 — e.g. {"rreq_retries": 4,
// "ttl_0": 35}), resolved against the routing registry's per-protocol
// vocabulary. Unknown fields are rejected so typos fail loudly, and
// Validate resolves every model and protocol name against its registry
// before a simulator is built.
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"slices"
	"strings"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/radio"
	"slr/internal/routing"
	"slr/internal/scenario"
	"slr/internal/sim"
	"slr/internal/traffic"
)

// Version is the spec format version this package reads and writes.
const Version = 1

// Terrain is the rectangular field, in meters.
type Terrain struct {
	WidthM  float64 `json:"width_m"`
	HeightM float64 `json:"height_m"`
}

// Radio is the channel section.
type Radio struct {
	RangeM float64 `json:"range_m"`
	// Propagation names a registered propagation model; empty means
	// "unit-disk".
	Propagation string             `json:"propagation,omitempty"`
	Params      map[string]float64 `json:"params,omitempty"`
}

// Mobility is the mobility section.
type Mobility struct {
	// Model names a registered mobility model: "static", "waypoint",
	// "gauss-markov", "manhattan".
	Model        string             `json:"model"`
	MinSpeedMps  float64            `json:"min_speed_mps"`
	MaxSpeedMps  float64            `json:"max_speed_mps"`
	PauseSeconds float64            `json:"pause_seconds"`
	Params       map[string]float64 `json:"params,omitempty"`
}

// Traffic is the workload section.
type Traffic struct {
	// Model names a registered traffic model; empty means "cbr".
	Model           string             `json:"model,omitempty"`
	Flows           int                `json:"flows"`
	PacketSizeBytes int                `json:"packet_size_bytes"`
	RatePps         float64            `json:"rate_pps"`
	MeanLifeSeconds float64            `json:"mean_life_seconds"`
	Params          map[string]float64 `json:"params,omitempty"`
}

// ScenarioSpec is a complete declarative scenario.
type ScenarioSpec struct {
	Version  int    `json:"version"`
	Name     string `json:"name,omitempty"`
	Protocol string `json:"protocol"`
	// ProtocolParams overrides the protocol's constants; keys are
	// protocol-specific (see each protocol's ConfigFromParams), durations
	// in seconds, booleans as 0/1. Missing keys take the protocol's
	// published defaults; unknown keys fail validation.
	ProtocolParams  map[string]float64 `json:"protocol_params,omitempty"`
	Nodes           int                `json:"nodes"`
	Terrain         Terrain            `json:"terrain"`
	DurationSeconds float64            `json:"duration_seconds"`
	Seed            int64              `json:"seed,omitempty"`   // default 1
	Trials          int                `json:"trials,omitempty"` // default 1
	Radio           Radio              `json:"radio"`
	Mobility        Mobility           `json:"mobility"`
	Traffic         Traffic            `json:"traffic"`
	CheckInvariants bool               `json:"check_invariants,omitempty"`
}

// PaperDefault returns the named built-in spec reproducing the paper's
// evaluation setup (§V): 100 nodes, 2200x600 m, 0-20 m/s random waypoint,
// 30 CBR flows of 512-byte packets at 4 pps, 900 s, unit-disk radio.
func PaperDefault() *ScenarioSpec {
	return &ScenarioSpec{
		Version:         Version,
		Name:            "paper-default",
		Protocol:        "SRP",
		Nodes:           100,
		Terrain:         Terrain{WidthM: 2200, HeightM: 600},
		DurationSeconds: 900,
		Seed:            1,
		Trials:          10,
		Radio:           Radio{RangeM: 275},
		Mobility:        Mobility{Model: "waypoint", MaxSpeedMps: 20},
		Traffic:         Traffic{Model: "cbr", Flows: 30, PacketSizeBytes: 512, RatePps: 4, MeanLifeSeconds: 60},
	}
}

// named lists the built-in specs reachable by name through Resolve.
var named = map[string]func() *ScenarioSpec{
	"paper-default": PaperDefault,
}

// NamedSpecs returns the built-in spec names, sorted.
func NamedSpecs() []string {
	names := make([]string, 0, len(named))
	for n := range named {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Parse decodes and validates one spec document. Unknown fields are
// errors: a typoed knob must not silently fall back to a default.
func Parse(data []byte) (*ScenarioSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s ScenarioSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a spec file.
func Load(path string) (*ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Resolve loads the spec at a path, or a built-in by name when no file
// exists there: "-spec paper-default" works without a file on disk.
func Resolve(arg string) (*ScenarioSpec, error) {
	if mk, ok := named[arg]; ok {
		if _, err := os.Stat(arg); err != nil {
			return mk(), nil
		}
	}
	s, err := Load(arg)
	if err != nil && !strings.ContainsAny(arg, "/.") {
		return nil, fmt.Errorf("%w (built-in specs: %v)", err, NamedSpecs())
	}
	return s, err
}

// Validate checks structural invariants and resolves every model name
// against its registry, so a bad spec fails before any simulator exists.
func (s *ScenarioSpec) Validate() error {
	if s.Version != Version {
		return fmt.Errorf("spec: version %d unsupported (want %d)", s.Version, Version)
	}
	if s.Nodes < 2 {
		return fmt.Errorf("spec: nodes %d must be >= 2", s.Nodes)
	}
	if s.Terrain.WidthM <= 0 || s.Terrain.HeightM <= 0 {
		return fmt.Errorf("spec: terrain %vx%v must be positive", s.Terrain.WidthM, s.Terrain.HeightM)
	}
	if s.DurationSeconds <= 0 {
		return fmt.Errorf("spec: duration_seconds %v must be positive", s.DurationSeconds)
	}
	if s.Trials < 0 {
		return fmt.Errorf("spec: trials %d must be >= 0", s.Trials)
	}
	if s.Radio.RangeM <= 0 {
		return fmt.Errorf("spec: radio range_m %v must be positive", s.Radio.RangeM)
	}
	if err := routing.Validate(routing.Spec{Name: s.Protocol, Params: s.ProtocolParams}); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if !slices.Contains(mobility.Models(), s.Mobility.Model) {
		return fmt.Errorf("spec: unknown mobility model %q (registered: %v)", s.Mobility.Model, mobility.Models())
	}
	if s.Mobility.MaxSpeedMps < s.Mobility.MinSpeedMps || s.Mobility.MinSpeedMps < 0 {
		return fmt.Errorf("spec: mobility speeds [%v, %v] invalid", s.Mobility.MinSpeedMps, s.Mobility.MaxSpeedMps)
	}
	if tm := s.Traffic.Model; tm != "" && !slices.Contains(traffic.Models(), tm) {
		return fmt.Errorf("spec: unknown traffic model %q (registered: %v)", tm, traffic.Models())
	}
	if s.Traffic.Flows <= 0 || s.Traffic.RatePps <= 0 || s.Traffic.PacketSizeBytes <= 0 ||
		s.Traffic.MeanLifeSeconds <= 0 {
		return fmt.Errorf("spec: traffic flows=%d rate_pps=%v packet_size_bytes=%d mean_life_seconds=%v must all be positive",
			s.Traffic.Flows, s.Traffic.RatePps, s.Traffic.PacketSizeBytes, s.Traffic.MeanLifeSeconds)
	}
	if pm := s.Radio.Propagation; pm != "" && !slices.Contains(radio.PropagationModels(), pm) {
		return fmt.Errorf("spec: unknown propagation %q (registered: %v)", pm, radio.PropagationModels())
	}
	// Dry-build the models so parameter errors (bad block_m, negative
	// sigma) surface at load time with the spec's vocabulary.
	p := s.params()
	if _, err := mobility.Build(p.Terrain, nullRng(), p.Mobility); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, err := traffic.NewPacer(p.Traffic); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	rp := radio.DefaultParams()
	rp.Range = p.Range
	rp.Propagation = p.Propagation
	if _, err := radio.NewPropagation(rp); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	return nil
}

// Params resolves the spec into runnable scenario parameters.
func (s *ScenarioSpec) Params() (scenario.Params, error) {
	if err := s.Validate(); err != nil {
		return scenario.Params{}, err
	}
	return s.params(), nil
}

// params is the unvalidated conversion shared by Params and Validate.
func (s *ScenarioSpec) params() scenario.Params {
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	secs := func(v float64) sim.Time { return sim.Time(v * float64(time.Second)) }
	return scenario.Params{
		Protocol:    scenario.ProtocolName(strings.ToUpper(s.Protocol)),
		ProtoParams: s.ProtocolParams,
		Nodes:       s.Nodes,
		Terrain:     geo.Terrain{Width: s.Terrain.WidthM, Height: s.Terrain.HeightM},
		Range:       s.Radio.RangeM,
		MinSpeed:    s.Mobility.MinSpeedMps,
		MaxSpeed:    s.Mobility.MaxSpeedMps,
		Pause:       secs(s.Mobility.PauseSeconds),
		Duration:    secs(s.DurationSeconds),
		Seed:        seed,
		Traffic: traffic.Params{
			Flows:       s.Traffic.Flows,
			PacketSize:  s.Traffic.PacketSizeBytes,
			Rate:        s.Traffic.RatePps,
			MeanLife:    secs(s.Traffic.MeanLifeSeconds),
			Model:       s.Traffic.Model,
			ModelParams: s.Traffic.Params,
		},
		Mobility: mobility.Spec{
			Model:    s.Mobility.Model,
			MinSpeed: s.Mobility.MinSpeedMps,
			MaxSpeed: s.Mobility.MaxSpeedMps,
			Pause:    secs(s.Mobility.PauseSeconds),
			Params:   s.Mobility.Params,
		},
		Propagation: radio.PropSpec{
			Model:  s.Radio.Propagation,
			Params: s.Radio.Params,
		},
		CheckInvariants: s.CheckInvariants,
	}
}

// TrialCount returns the spec's trial count with its default applied.
func (s *ScenarioSpec) TrialCount() int {
	if s.Trials <= 0 {
		return 1
	}
	return s.Trials
}

// nullRng is a throwaway deterministic rng for dry-building models during
// validation.
func nullRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

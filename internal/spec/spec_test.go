package spec

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"slr/internal/scenario"
)

// TestPaperDefaultMatchesDefaultParams verifies the named built-in spec
// resolves to exactly the parameters scenario.DefaultParams hard-codes:
// the declarative path and the legacy path describe the same experiment.
func TestPaperDefaultMatchesDefaultParams(t *testing.T) {
	got, err := PaperDefault().Params()
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.DefaultParams(scenario.SRP, 0, 1)
	// The spec path also fills the explicit model fields; blank them to
	// compare the shared scalar core first.
	gotCore := got
	gotCore.Mobility = want.Mobility
	gotCore.CheckEvery = want.CheckEvery
	if gotCore.Traffic.Model == "cbr" {
		gotCore.Traffic.Model = "" // the legacy spelling of the default
	}
	if !reflect.DeepEqual(gotCore, want) {
		t.Fatalf("paper-default params diverge:\nspec:    %+v\ndefault: %+v", gotCore, want)
	}
	if got.Mobility.Model != "waypoint" || got.Mobility.MaxSpeed != 20 {
		t.Fatalf("paper-default mobility spec = %+v", got.Mobility)
	}
}

// TestPaperDefaultRunsIdenticallyToDefaultParams runs both paths on a
// scaled-down copy and demands byte-identical results.
func TestPaperDefaultRunsIdenticallyToDefaultParams(t *testing.T) {
	shrink := func(p scenario.Params) scenario.Params {
		p.Nodes = 20
		p.Duration = 30 * time.Second
		p.Traffic.Flows = 6
		return p
	}
	fromSpec, err := PaperDefault().Params()
	if err != nil {
		t.Fatal(err)
	}
	a := scenario.Run(shrink(fromSpec))
	b := scenario.Run(shrink(scenario.DefaultParams(scenario.SRP, 0, 1)))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("spec-built and legacy-built runs diverge:\nspec:   %+v\nlegacy: %+v", a, b)
	}
}

// TestParseRoundTrip verifies a marshaled spec parses back identically.
func TestParseRoundTrip(t *testing.T) {
	orig := PaperDefault()
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", orig, back)
	}
}

// TestParseRejects enumerates the load-time failure modes: unknown
// fields, wrong version, unregistered models, broken model params, and
// structural nonsense.
func TestParseRejects(t *testing.T) {
	mutate := func(f func(*ScenarioSpec)) []byte {
		s := PaperDefault()
		f(s)
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"unknown field", []byte(`{"version":1,"protcol":"SRP"}`), "protcol"},
		{"bad version", mutate(func(s *ScenarioSpec) { s.Version = 99 }), "version"},
		{"bad protocol", mutate(func(s *ScenarioSpec) { s.Protocol = "OSPF" }), "protocol"},
		{"bad mobility", mutate(func(s *ScenarioSpec) { s.Mobility.Model = "teleport" }), "mobility"},
		{"bad traffic", mutate(func(s *ScenarioSpec) { s.Traffic.Model = "torrent" }), "traffic"},
		{"bad propagation", mutate(func(s *ScenarioSpec) { s.Radio.Propagation = "warp" }), "propagation"},
		{"bad speeds", mutate(func(s *ScenarioSpec) { s.Mobility.MinSpeedMps = 30 }), "speeds"},
		{"one node", mutate(func(s *ScenarioSpec) { s.Nodes = 1 }), "nodes"},
		{"no duration", mutate(func(s *ScenarioSpec) { s.DurationSeconds = 0 }), "duration"},
		{"no flow lifetime", mutate(func(s *ScenarioSpec) { s.Traffic.MeanLifeSeconds = 0 }), "mean_life_seconds"},
		{"bad model param", mutate(func(s *ScenarioSpec) {
			s.Mobility.Model = "manhattan"
			s.Mobility.Params = map[string]float64{"block_m": 1e9}
		}), "block_m"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.blob)
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.blob)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestResolveBuiltin verifies bare names fall back to the built-ins with a
// helpful error for unknown ones.
func TestResolveBuiltin(t *testing.T) {
	s, err := Resolve("paper-default")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "paper-default" || s.Nodes != 100 {
		t.Fatalf("Resolve(paper-default) = %+v", s)
	}
	if _, err := Resolve("no-such-spec"); err == nil || !strings.Contains(err.Error(), "paper-default") {
		t.Fatalf("Resolve(no-such-spec) error %v does not list built-ins", err)
	}
}

// TestExampleSpecsLoad verifies every committed example spec file parses,
// validates, and resolves to runnable params — the repo never ships a
// stale example.
func TestExampleSpecsLoad(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("want >= 3 example specs, found %v", paths)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Params(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTinySpecRuns loads the CI smoke spec and runs it to completion:
// the exact path the spec-smoke CI job exercises.
func TestTinySpecRuns(t *testing.T) {
	s, err := Load("../../examples/scenarios/tiny-smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	r := scenario.Run(p)
	if r.DataSent == 0 {
		t.Fatal("tiny smoke spec generated no traffic")
	}
}

package spec

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"slr/internal/scenario"
)

// TestPaperDefaultMatchesDefaultParams verifies the named built-in spec
// resolves to exactly the parameters scenario.DefaultParams hard-codes:
// the declarative path and the legacy path describe the same experiment.
func TestPaperDefaultMatchesDefaultParams(t *testing.T) {
	got, err := PaperDefault().Params()
	if err != nil {
		t.Fatal(err)
	}
	want := scenario.DefaultParams(scenario.SRP, 0, 1)
	// The spec path also fills the explicit model fields; blank them to
	// compare the shared scalar core first.
	gotCore := got
	gotCore.Mobility = want.Mobility
	gotCore.CheckEvery = want.CheckEvery
	if gotCore.Traffic.Model == "cbr" {
		gotCore.Traffic.Model = "" // the legacy spelling of the default
	}
	if !reflect.DeepEqual(gotCore, want) {
		t.Fatalf("paper-default params diverge:\nspec:    %+v\ndefault: %+v", gotCore, want)
	}
	if got.Mobility.Model != "waypoint" || got.Mobility.MaxSpeed != 20 {
		t.Fatalf("paper-default mobility spec = %+v", got.Mobility)
	}
}

// TestPaperDefaultRunsIdenticallyToDefaultParams runs both paths on a
// scaled-down copy and demands byte-identical results.
func TestPaperDefaultRunsIdenticallyToDefaultParams(t *testing.T) {
	shrink := func(p scenario.Params) scenario.Params {
		p.Nodes = 20
		p.Duration = 30 * time.Second
		p.Traffic.Flows = 6
		return p
	}
	fromSpec, err := PaperDefault().Params()
	if err != nil {
		t.Fatal(err)
	}
	a := scenario.Run(shrink(fromSpec))
	b := scenario.Run(shrink(scenario.DefaultParams(scenario.SRP, 0, 1)))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("spec-built and legacy-built runs diverge:\nspec:   %+v\nlegacy: %+v", a, b)
	}
}

// TestParseRoundTrip verifies a marshaled spec parses back identically.
func TestParseRoundTrip(t *testing.T) {
	orig := PaperDefault()
	blob, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip diverged:\nin:  %+v\nout: %+v", orig, back)
	}
}

// TestParseRejects enumerates the load-time failure modes: unknown
// fields, wrong version, unregistered models, broken model params, and
// structural nonsense.
func TestParseRejects(t *testing.T) {
	mutate := func(f func(*ScenarioSpec)) []byte {
		s := PaperDefault()
		f(s)
		blob, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"unknown field", []byte(`{"version":1,"protcol":"SRP"}`), "protcol"},
		{"bad version", mutate(func(s *ScenarioSpec) { s.Version = 99 }), "version"},
		{"bad protocol", mutate(func(s *ScenarioSpec) { s.Protocol = "OSPF" }), "protocol"},
		{"bad mobility", mutate(func(s *ScenarioSpec) { s.Mobility.Model = "teleport" }), "mobility"},
		{"bad traffic", mutate(func(s *ScenarioSpec) { s.Traffic.Model = "torrent" }), "traffic"},
		{"bad propagation", mutate(func(s *ScenarioSpec) { s.Radio.Propagation = "warp" }), "propagation"},
		{"bad speeds", mutate(func(s *ScenarioSpec) { s.Mobility.MinSpeedMps = 30 }), "speeds"},
		{"one node", mutate(func(s *ScenarioSpec) { s.Nodes = 1 }), "nodes"},
		{"no duration", mutate(func(s *ScenarioSpec) { s.DurationSeconds = 0 }), "duration"},
		{"no flow lifetime", mutate(func(s *ScenarioSpec) { s.Traffic.MeanLifeSeconds = 0 }), "mean_life_seconds"},
		{"bad model param", mutate(func(s *ScenarioSpec) {
			s.Mobility.Model = "manhattan"
			s.Mobility.Params = map[string]float64{"block_m": 1e9}
		}), "block_m"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.blob)
			if err == nil {
				t.Fatalf("Parse accepted %s", tc.blob)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestResolveBuiltin verifies bare names fall back to the built-ins with a
// helpful error for unknown ones.
func TestResolveBuiltin(t *testing.T) {
	s, err := Resolve("paper-default")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "paper-default" || s.Nodes != 100 {
		t.Fatalf("Resolve(paper-default) = %+v", s)
	}
	if _, err := Resolve("no-such-spec"); err == nil || !strings.Contains(err.Error(), "paper-default") {
		t.Fatalf("Resolve(no-such-spec) error %v does not list built-ins", err)
	}
}

// TestExampleSpecsLoad verifies every committed example spec file parses,
// validates, and resolves to runnable params — the repo never ships a
// stale example.
func TestExampleSpecsLoad(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("want >= 3 example specs, found %v", paths)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			s, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Params(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTinySpecRuns loads the CI smoke spec and runs it to completion:
// the exact path the spec-smoke CI job exercises.
func TestTinySpecRuns(t *testing.T) {
	s, err := Load("../../examples/scenarios/tiny-smoke.json")
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Params()
	if err != nil {
		t.Fatal(err)
	}
	r := scenario.Run(p)
	if r.DataSent == 0 {
		t.Fatal("tiny smoke spec generated no traffic")
	}
}

// TestProtocolParamsThread verifies the spec's protocol_params section
// reaches scenario.Params untouched and that every registered protocol
// accepts a spec overriding at least three of its constants — the
// protocol-parameter-sweep workload contract.
func TestProtocolParamsThread(t *testing.T) {
	overrides := map[string]map[string]float64{
		"SRP":  {"rreq_retries": 4, "hello_interval_seconds": 2, "max_denom": 1e6},
		"LDR":  {"rreq_retries": 3, "queue_cap": 20, "min_reply_hops": 1},
		"AODV": {"active_route_timeout_seconds": 5, "local_repair": 0, "rreq_rate_limit": 20},
		"DSR":  {"cache_lifetime_seconds": 120, "routes_per_dest": 5, "reply_from_cache": 0},
		"OLSR": {"hello_interval_seconds": 1, "tc_interval_seconds": 3, "neighbor_hold_seconds": 3},
	}
	for _, proto := range scenario.AllProtocols {
		t.Run(string(proto), func(t *testing.T) {
			params, ok := overrides[string(proto)]
			if !ok || len(params) < 3 {
				t.Fatalf("need >= 3 override keys for %s", proto)
			}
			s := PaperDefault()
			s.Protocol = string(proto)
			s.ProtocolParams = params
			p, err := s.Params()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(p.ProtoParams, params) {
				t.Fatalf("ProtoParams = %v, want %v", p.ProtoParams, params)
			}
		})
	}
}

// TestProtocolParamsRejected verifies a typoed or out-of-range protocol
// parameter fails at spec load, naming the offending key.
func TestProtocolParamsRejected(t *testing.T) {
	s := PaperDefault()
	s.ProtocolParams = map[string]float64{"helo_interval_seconds": 2}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "helo_interval_seconds") {
		t.Fatalf("typoed key error = %v", err)
	}
	s.ProtocolParams = map[string]float64{"queue_cap": 0}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "queue_cap") {
		t.Fatalf("out-of-range error = %v", err)
	}
}

// TestAodvAggressiveSpec pins the committed tuned-protocol example: it
// must select AODV with at least three overridden constants.
func TestAodvAggressiveSpec(t *testing.T) {
	s, err := Load("../../examples/scenarios/aodv-aggressive.json")
	if err != nil {
		t.Fatal(err)
	}
	if s.Protocol != "AODV" || len(s.ProtocolParams) < 3 {
		t.Fatalf("aodv-aggressive spec = protocol %s with %d params, want AODV with >= 3",
			s.Protocol, len(s.ProtocolParams))
	}
	if _, err := s.Params(); err != nil {
		t.Fatal(err)
	}
}

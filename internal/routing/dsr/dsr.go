// Package dsr implements the Dynamic Source Routing protocol (Johnson,
// Maltz, Hu, Jetcheva; IETF draft-ietf-manet-dsr-07), a baseline of the
// paper's evaluation.
//
// DSR floods route requests that accumulate the traversed path; replies
// return the complete source route, which data packets then carry hop by
// hop. Nodes cache every route they learn or overhear and may answer
// requests from cache, and salvage broken packets with alternate cached
// routes. Packet paths are inherently loop-free, but aggressive caching
// turns stale under mobility — the paper observes DSR collapsing at
// 100 nodes / 30 flows with a MAC drop rate inversely proportional to its
// delivery ratio (Figs. 3–4).
package dsr

import (
	"fmt"
	"time"

	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// Config holds DSR's constants.
type Config struct {
	CacheLifetime sim.Time
	RoutesPerDest int
	RreqRetries   int
	// FirstTTL is the non-propagating first attempt; later attempts
	// flood with NetTTL.
	FirstTTL      int
	NetTTL        int
	NodeTraversal sim.Time
	QueueCap      int
	MaxSalvage    int
	// ReplyFromCache lets intermediate nodes answer with cached routes.
	ReplyFromCache bool
	// RreqRateLimit caps RREQ originations per second.
	RreqRateLimit int
	// DiscoveryHoldDown delays a fresh discovery for a destination that
	// just failed all retries, so saturated flows do not flood the
	// network with back-to-back failed searches.
	DiscoveryHoldDown sim.Time
}

// DefaultConfig returns the evaluation constants.
func DefaultConfig() Config {
	return Config{
		CacheLifetime:     300 * time.Second,
		RoutesPerDest:     3,
		RreqRetries:       2,
		FirstTTL:          1,
		NetTTL:            35,
		NodeTraversal:     40 * time.Millisecond,
		QueueCap:          10,
		MaxSalvage:        3,
		ReplyFromCache:    true,
		RreqRateLimit:     10,
		DiscoveryHoldDown: 3 * time.Second,
	}
}

// ConfigFromParams returns DefaultConfig with the spec-level overrides in
// params applied; durations arrive in seconds, booleans as 0/1. Unknown
// keys and out-of-range values are errors.
func ConfigFromParams(params map[string]float64) (Config, error) {
	cfg := DefaultConfig()
	if err := registry.ApplyParams("dsr", params, map[string]func(float64){
		"cache_lifetime_seconds":     func(v float64) { cfg.CacheLifetime = rcommon.Seconds(v) },
		"routes_per_dest":            func(v float64) { cfg.RoutesPerDest = int(v) },
		"rreq_retries":               func(v float64) { cfg.RreqRetries = int(v) },
		"first_ttl":                  func(v float64) { cfg.FirstTTL = int(v) },
		"net_ttl":                    func(v float64) { cfg.NetTTL = int(v) },
		"node_traversal_seconds":     func(v float64) { cfg.NodeTraversal = rcommon.Seconds(v) },
		"queue_cap":                  func(v float64) { cfg.QueueCap = int(v) },
		"max_salvage":                func(v float64) { cfg.MaxSalvage = int(v) },
		"reply_from_cache":           func(v float64) { cfg.ReplyFromCache = v != 0 },
		"rreq_rate_limit":            func(v float64) { cfg.RreqRateLimit = int(v) },
		"discovery_holddown_seconds": func(v float64) { cfg.DiscoveryHoldDown = rcommon.Seconds(v) },
	}); err != nil {
		return Config{}, err
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// validate rejects configurations no deployment could run.
func (c Config) validate() error {
	if c.CacheLifetime <= 0 || c.NodeTraversal <= 0 {
		return fmt.Errorf("dsr: cache_lifetime %v and node_traversal %v must be positive",
			c.CacheLifetime, c.NodeTraversal)
	}
	if c.RoutesPerDest < 1 || c.FirstTTL < 1 || c.NetTTL < 1 {
		return fmt.Errorf("dsr: routes_per_dest %d, first_ttl %d, net_ttl %d must be >= 1",
			c.RoutesPerDest, c.FirstTTL, c.NetTTL)
	}
	if c.RreqRetries < 0 || c.QueueCap < 1 || c.MaxSalvage < 0 || c.DiscoveryHoldDown < 0 {
		return fmt.Errorf("dsr: rreq_retries %d, queue_cap %d, max_salvage %d, discovery_holddown %v out of range",
			c.RreqRetries, c.QueueCap, c.MaxSalvage, c.DiscoveryHoldDown)
	}
	return nil
}

// rreq accumulates the traversed path in Path (intermediate nodes only,
// excluding Src and Dst).
type rreq struct {
	Src  netstack.NodeID
	ID   uint32
	Dst  netstack.NodeID
	Path []netstack.NodeID
	TTL  int
}

// rrep carries the complete source route Src..Dst in Full and travels back
// along it; Idx is the position of the current holder in Full.
type rrep struct {
	Src  netstack.NodeID
	ID   uint32
	Dst  netstack.NodeID
	Full []netstack.NodeID
}

// rerr reports the broken link A->B toward the packet source along Route.
type rerr struct {
	A, B  netstack.NodeID
	Route []netstack.NodeID // reversed prefix to travel
	Idx   int
}

// Wire sizes: 4 bytes per address in a route record.
const (
	rreqBase = 16
	rrepBase = 16
	rerrBase = 20
	perAddr  = 4
)

type cachedRoute struct {
	path   []netstack.NodeID // self exclusive, ends at destination
	expiry sim.Time
}

// Protocol is one node's DSR instance.
type Protocol struct {
	netstack.BaseProtocol
	cfg  Config
	node *netstack.Node
	self netstack.NodeID

	rreqID uint32
	cache  map[netstack.NodeID][]*cachedRoute
	// seen suppresses duplicate RREQ floods.
	seen *rcommon.DupCache
	// disc owns the pending discoveries, their packet queues, and the
	// post-failure hold-down.
	disc *rcommon.DiscoveryTable
	// rreqLimit enforces the per-second RREQ origination cap.
	rreqLimit rcommon.RateLimiter
	sweeper   rcommon.Beaconer
}

var _ netstack.Protocol = (*Protocol)(nil)

// New returns a DSR instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:       cfg,
		cache:     make(map[netstack.NodeID][]*cachedRoute),
		seen:      rcommon.NewDupCache(30 * time.Second),
		disc:      rcommon.NewDiscoveryTable(cfg.QueueCap, cfg.RreqRetries, cfg.DiscoveryHoldDown),
		rreqLimit: rcommon.RateLimiter{Cap: cfg.RreqRateLimit},
	}
}

// Attach implements netstack.Protocol.
func (p *Protocol) Attach(n *netstack.Node) {
	p.node = n
	p.self = n.ID()
	p.disc.Attach(n)
}

// Start implements netstack.Protocol. Starting twice is a no-op.
func (p *Protocol) Start() {
	p.sweeper.StartEvery(p.node, 10*time.Second, func() {
		p.seen.Sweep(p.node.Now())
	})
}

// SuccessorsOf exposes the first hop of the best cached route, for the
// harness's loop checker (source routes cannot loop, but the checker wants
// a uniform view).
func (p *Protocol) SuccessorsOf(dst netstack.NodeID) []netstack.NodeID {
	if r, ok := p.lookup(dst); ok && len(r) > 0 {
		return []netstack.NodeID{r[0]}
	}
	return nil
}

// --- Route cache ------------------------------------------------------

// lookup returns the shortest live cached path to dst.
func (p *Protocol) lookup(dst netstack.NodeID) ([]netstack.NodeID, bool) {
	now := p.node.Now()
	routes := p.cache[dst]
	var best []netstack.NodeID
	kept := routes[:0]
	for _, r := range routes {
		if r.expiry <= now {
			continue
		}
		kept = append(kept, r)
		if best == nil || len(r.path) < len(best) {
			best = r.path
		}
	}
	p.cache[dst] = kept
	if best == nil {
		return nil, false
	}
	return best, true
}

// addRoute caches path (self-exclusive, ending at its destination) and all
// its prefixes.
func (p *Protocol) addRoute(path []netstack.NodeID) {
	for end := 1; end <= len(path); end++ {
		sub := path[:end]
		dst := sub[end-1]
		if dst == p.self {
			continue
		}
		p.insert(dst, sub)
	}
}

func (p *Protocol) insert(dst netstack.NodeID, path []netstack.NodeID) {
	routes := p.cache[dst]
	for _, r := range routes {
		if equalPath(r.path, path) {
			r.expiry = p.node.Now() + p.cfg.CacheLifetime
			return
		}
	}
	cp := make([]netstack.NodeID, len(path))
	copy(cp, path)
	routes = append(routes, &cachedRoute{path: cp, expiry: p.node.Now() + p.cfg.CacheLifetime})
	if len(routes) > p.cfg.RoutesPerDest {
		// Evict the longest.
		worst := 0
		for i, r := range routes {
			if len(r.path) > len(routes[worst].path) {
				worst = i
			}
		}
		routes[worst] = routes[len(routes)-1]
		routes = routes[:len(routes)-1]
	}
	p.cache[dst] = routes
}

// removeLink drops every cached route using the directed link a->b.
func (p *Protocol) removeLink(a, b netstack.NodeID) {
	for dst, routes := range p.cache {
		kept := routes[:0]
		for _, r := range routes {
			if !usesLink(p.self, r.path, a, b) {
				kept = append(kept, r)
			}
		}
		p.cache[dst] = kept
	}
}

func usesLink(self netstack.NodeID, path []netstack.NodeID, a, b netstack.NodeID) bool {
	prev := self
	for _, n := range path {
		if prev == a && n == b {
			return true
		}
		prev = n
	}
	return false
}

func equalPath(a, b []netstack.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Data plane -------------------------------------------------------

// OriginateData implements netstack.Protocol.
func (p *Protocol) OriginateData(pkt *netstack.DataPacket) {
	if path, ok := p.lookup(pkt.Dst); ok {
		p.sendAlong(pkt, path)
		return
	}
	p.enqueue(pkt)
}

// sendAlong stamps the source route [self, path...] on pkt and forwards.
func (p *Protocol) sendAlong(pkt *netstack.DataPacket, path []netstack.NodeID) {
	route := make([]netstack.NodeID, 0, len(path)+1)
	route = append(route, p.self)
	route = append(route, path...)
	pkt.Route = route
	pkt.RouteIdx = 0
	p.node.ForwardData(route[1], pkt)
}

// RecvData implements netstack.Protocol.
func (p *Protocol) RecvData(from netstack.NodeID, pkt *netstack.DataPacket) {
	pkt.Hops++
	if pkt.Dst == p.self {
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.node.DropData(pkt, rcommon.DropTTL)
		return
	}
	// Advance the source route.
	idx := pkt.RouteIdx + 1
	if idx >= len(pkt.Route) || pkt.Route[idx] != p.self || idx+1 >= len(pkt.Route) {
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	pkt.RouteIdx = idx
	// Cache the remaining path while forwarding.
	p.addRoute(pkt.Route[idx+1:])
	p.node.ForwardData(pkt.Route[idx+1], pkt)
}

// DataFailed implements netstack.Protocol: broken link self->to. Send a
// route error to the packet source and salvage from cache if possible.
func (p *Protocol) DataFailed(to netstack.NodeID, pkt *netstack.DataPacket) {
	p.removeLink(p.self, to)
	p.sendRERR(pkt, to)
	if pkt.Salvaged >= p.cfg.MaxSalvage {
		p.node.DropData(pkt, rcommon.DropLinkLost)
		return
	}
	pkt.Salvaged++
	if path, ok := p.lookup(pkt.Dst); ok {
		p.sendAlong(pkt, path)
		return
	}
	if pkt.Src == p.self {
		p.enqueue(pkt)
		return
	}
	p.node.DropData(pkt, rcommon.DropLinkLost)
}

// sendRERR reports the broken link to pkt's source along the reversed
// traveled prefix of its source route.
func (p *Protocol) sendRERR(pkt *netstack.DataPacket, brokenNext netstack.NodeID) {
	if pkt.Src == p.self || pkt.RouteIdx <= 0 || pkt.RouteIdx >= len(pkt.Route) {
		return
	}
	// Reverse of the traveled portion: route[RouteIdx-1], ..., route[0].
	rev := make([]netstack.NodeID, 0, pkt.RouteIdx)
	for i := pkt.RouteIdx - 1; i >= 0; i-- {
		rev = append(rev, pkt.Route[i])
	}
	e := &rerr{A: p.self, B: brokenNext, Route: rev, Idx: 0}
	p.node.UnicastControl(rev[0], rerrBase+perAddr*len(rev), e)
}

// ControlFailed implements netstack.Protocol.
func (p *Protocol) ControlFailed(to netstack.NodeID, msg any) {
	p.removeLink(p.self, to)
}

func (p *Protocol) enqueue(pkt *netstack.DataPacket) {
	p.disc.Enqueue(pkt, false, p.solicit)
}

// --- Control plane ----------------------------------------------------

// solicit broadcasts a RREQ: a non-propagating first attempt, then
// network-wide floods. Over-cap solicitations are deferred, not abandoned.
func (p *Protocol) solicit(pd *rcommon.Discovery) {
	if !p.rreqLimit.Allow(p.node.Now()) {
		p.disc.Defer(pd, 200*time.Millisecond, p.solicit)
		return
	}
	p.rreqID++
	p.seen.Mark(p.self, p.rreqID, p.node.Now())
	ttl := p.cfg.FirstTTL
	if pd.Attempt > 0 {
		ttl = p.cfg.NetTTL
	}
	r := &rreq{Src: p.self, ID: p.rreqID, Dst: pd.Dst, TTL: ttl}
	p.node.BroadcastControl(rreqBase, r)
	// Binary exponential backoff across retries.
	wait := 2 * sim.Time(ttl) * p.cfg.NodeTraversal << uint(pd.Attempt)
	pd.Timer = p.node.After(wait, func() { p.disc.Retry(pd, p.solicit, nil) })
}

// RecvControl implements netstack.Protocol.
func (p *Protocol) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		p.handleRREQ(from, m)
	case *rrep:
		p.handleRREP(from, m)
	case *rerr:
		p.handleRERR(from, m)
	}
}

func (p *Protocol) handleRREQ(from netstack.NodeID, r *rreq) {
	if r.Src == p.self {
		return
	}
	if !p.seen.Witness(r.Src, r.ID, p.node.Now()) {
		return
	}
	for _, n := range r.Path {
		if n == p.self {
			return // already on the record
		}
	}
	// Cache the reverse route to the requester (bidirectional links).
	rev := make([]netstack.NodeID, 0, len(r.Path)+1)
	for i := len(r.Path) - 1; i >= 0; i-- {
		rev = append(rev, r.Path[i])
	}
	rev = append(rev, r.Src)
	p.addRoute(rev)

	if r.Dst == p.self {
		full := buildFull(r.Src, r.Path, p.self)
		p.reply(from, r, full)
		return
	}
	if p.cfg.ReplyFromCache {
		if cached, ok := p.lookup(r.Dst); ok {
			if full := spliceFull(r.Src, r.Path, p.self, cached); full != nil {
				p.reply(from, r, full)
				return
			}
		}
	}
	if r.TTL <= 1 {
		return
	}
	z := *r
	z.TTL--
	z.Path = append(append([]netstack.NodeID{}, r.Path...), p.self)
	jitter := sim.Time(p.node.Rand().Int63n(int64(10 * time.Millisecond)))
	size := rreqBase + perAddr*len(z.Path)
	p.node.After(jitter, func() { p.node.BroadcastControl(size, &z) })
}

// buildFull assembles src + path + dst.
func buildFull(src netstack.NodeID, path []netstack.NodeID, dst netstack.NodeID) []netstack.NodeID {
	full := make([]netstack.NodeID, 0, len(path)+2)
	full = append(full, src)
	full = append(full, path...)
	full = append(full, dst)
	return full
}

// spliceFull joins src+path+self with a cached route self->dst, rejecting
// splices that repeat a node (which would loop).
func spliceFull(src netstack.NodeID, path []netstack.NodeID, self netstack.NodeID, cached []netstack.NodeID) []netstack.NodeID {
	full := make([]netstack.NodeID, 0, len(path)+len(cached)+2)
	full = append(full, src)
	full = append(full, path...)
	full = append(full, self)
	full = append(full, cached...)
	seen := make(map[netstack.NodeID]struct{}, len(full))
	for _, n := range full {
		if _, dup := seen[n]; dup {
			return nil
		}
		seen[n] = struct{}{}
	}
	return full
}

// reply unicasts a RREP carrying the full route back toward the requester.
func (p *Protocol) reply(from netstack.NodeID, r *rreq, full []netstack.NodeID) {
	if full == nil {
		return
	}
	idx := indexOf(full, p.self)
	if idx < 0 {
		return // the replier must appear on the route record
	}
	rep := &rrep{Src: r.Src, ID: r.ID, Dst: full[len(full)-1], Full: full}
	if idx+1 < len(full) {
		p.addRoute(full[idx+1:])
	}
	p.node.UnicastControl(from, rrepBase+perAddr*len(full), rep)
}

func indexOf(path []netstack.NodeID, n netstack.NodeID) int {
	for i, v := range path {
		if v == n {
			return i
		}
	}
	return -1
}

func (p *Protocol) handleRREP(from netstack.NodeID, rep *rrep) {
	idx := indexOf(rep.Full, p.self)
	if idx < 0 {
		return
	}
	// Cache the forward remainder of the route.
	if idx+1 < len(rep.Full) {
		p.addRoute(rep.Full[idx+1:])
	}
	if rep.Src == p.self {
		p.complete(rep.Dst)
		return
	}
	if idx == 0 {
		return // malformed: not the requester yet at route head
	}
	p.node.UnicastControl(rep.Full[idx-1], rrepBase+perAddr*len(rep.Full), rep)
}

func (p *Protocol) complete(dst netstack.NodeID) {
	pd, ok := p.disc.Complete(dst)
	if !ok {
		return
	}
	for _, pkt := range pd.Queue {
		if path, live := p.lookup(dst); live {
			p.sendAlong(pkt, path)
		} else {
			p.node.DropData(pkt, rcommon.DropNoRoute)
		}
	}
}

func (p *Protocol) handleRERR(from netstack.NodeID, e *rerr) {
	p.removeLink(e.A, e.B)
	// Forward toward the original source along the reversed route.
	next := e.Idx + 1
	if next >= len(e.Route) {
		return
	}
	if e.Route[e.Idx] != p.self {
		return
	}
	z := *e
	z.Idx = next
	p.node.UnicastControl(e.Route[next], rerrBase+perAddr*len(e.Route), &z)
}

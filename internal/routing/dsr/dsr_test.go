package dsr

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/routing/rtest"
	"slr/internal/sim"
)

func factory(id netstack.NodeID) netstack.Protocol { return New(DefaultConfig()) }

func TestChainDiscoveryAndDelivery(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Send(0, 4)
	w.Sim.RunUntil(5 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if h := w.MX.MeanHops(); h != 4 {
		t.Fatalf("hops = %v, want 4", h)
	}
}

func TestSourceRouteCarried(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(4, 100), nil)
	w.Send(0, 3)
	w.Sim.RunUntil(3 * time.Second)
	// The source keeps the discovered route in cache.
	src := w.Nodes[0].Protocol().(*Protocol)
	path, ok := src.lookup(3)
	if !ok {
		t.Fatal("source has no cached route")
	}
	want := []netstack.NodeID{1, 2, 3}
	if !equalPath(path, want) {
		t.Fatalf("cached path = %v, want %v", path, want)
	}
}

func TestPrefixesCached(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(4, 100), nil)
	w.Send(0, 3)
	w.Sim.RunUntil(3 * time.Second)
	src := w.Nodes[0].Protocol().(*Protocol)
	for dst := 1; dst <= 3; dst++ {
		if _, ok := src.lookup(netstack.NodeID(dst)); !ok {
			t.Errorf("prefix route to %d not cached", dst)
		}
	}
}

func TestReplyFromCache(t *testing.T) {
	// After 0 learns a route to 4, node 5 (near 0 and 1 only) requests 4
	// with a non-propagating RREQ; node 1's cache answers.
	pts := rtest.Chain(5, 100)
	pts = append(pts, geo.Point{X: 50, Y: 90})
	w := rtest.New(1, 120, factory, pts, nil)
	w.Send(0, 4)
	w.Sim.RunUntil(3 * time.Second)
	w.Send(5, 4)
	w.Sim.RunUntil(6 * time.Second)
	if w.MX.DataRecv != 2 {
		t.Fatalf("delivered %d, want 2 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
}

func TestSalvageOnLinkBreak(t *testing.T) {
	pts := rtest.Chain(5, 100)
	models := make([]mobility.Model, 6)
	models[2] = mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: pts[2]},
		{At: 5 * time.Second, Pos: pts[2]},
		{At: 8 * time.Second, Pos: geo.Point{X: pts[2].X, Y: 5000}},
	})
	positions := append(pts, geo.Point{X: 200, Y: 60})
	w := rtest.New(1, 120, factory, positions, models)
	for i := 0; i < 30; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() { w.Send(0, 4) })
	}
	w.Sim.RunUntil(40 * time.Second)
	if w.MX.DataRecv < 18 {
		t.Fatalf("delivered %d/30 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
}

func TestRERRPurgesStaleCache(t *testing.T) {
	p := New(DefaultConfig())
	w := rtest.New(1, 120, func(netstack.NodeID) netstack.Protocol { return p },
		[]geo.Point{{X: 0}}, nil)
	_ = w
	p.addRoute([]netstack.NodeID{1, 2, 3})
	if _, ok := p.lookup(3); !ok {
		t.Fatal("route not cached")
	}
	p.handleRERR(1, &rerr{A: 1, B: 2, Route: []netstack.NodeID{0}, Idx: 0})
	if _, ok := p.lookup(3); ok {
		t.Fatal("stale route survived RERR")
	}
	// The 0->1 prefix does not use the broken link and must survive.
	if _, ok := p.lookup(1); !ok {
		t.Fatal("unaffected prefix was purged")
	}
}

func TestSpliceRejectsLoops(t *testing.T) {
	// Splicing src=0 path=[1] self=2 with cached route [1,5] repeats 1.
	if full := spliceFull(0, []netstack.NodeID{1}, 2, []netstack.NodeID{1, 5}); full != nil {
		t.Fatalf("loopy splice accepted: %v", full)
	}
	full := spliceFull(0, []netstack.NodeID{1}, 2, []netstack.NodeID{3, 4})
	want := []netstack.NodeID{0, 1, 2, 3, 4}
	if !equalPath(full, want) {
		t.Fatalf("splice = %v, want %v", full, want)
	}
}

func TestCacheEviction(t *testing.T) {
	p := New(DefaultConfig())
	w := rtest.New(1, 120, func(netstack.NodeID) netstack.Protocol { return p },
		[]geo.Point{{X: 0}}, nil)
	_ = w
	p.insert(9, []netstack.NodeID{1, 9})
	p.insert(9, []netstack.NodeID{2, 3, 9})
	p.insert(9, []netstack.NodeID{4, 5, 6, 9})
	p.insert(9, []netstack.NodeID{7, 9}) // evicts the longest
	routes := p.cache[9]
	if len(routes) != p.cfg.RoutesPerDest {
		t.Fatalf("cache size = %d, want %d", len(routes), p.cfg.RoutesPerDest)
	}
	for _, r := range routes {
		if len(r.path) == 4 {
			t.Fatal("longest route not evicted")
		}
	}
	// Lookup returns the shortest.
	got, _ := p.lookup(9)
	if len(got) != 2 {
		t.Fatalf("lookup returned %v, want a 2-hop path", got)
	}
}

func TestDiscoveryTimeout(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(3, 100), nil)
	w.Send(0, 9)
	w.Sim.RunUntil(time.Minute)
	if w.MX.DataDrops[rcommon.DropTimeout] != 1 {
		t.Fatalf("drops = %v", w.MX.DataDrops)
	}
}

func TestNonPropagatingFirstAttempt(t *testing.T) {
	// First RREQ has TTL 1: in a 3-hop chain the destination cannot hear
	// it, so discovery needs at least two attempts; the second floods.
	w := rtest.New(1, 120, factory, rtest.Chain(4, 100), nil)
	w.Send(0, 3)
	w.Sim.RunUntil(10 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1", w.MX.DataRecv)
	}
}

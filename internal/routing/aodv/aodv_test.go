package aodv

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/routing/rtest"
	"slr/internal/sim"
)

func factory(id netstack.NodeID) netstack.Protocol { return New(DefaultConfig()) }

func TestChainDiscoveryAndDelivery(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Send(0, 4)
	w.Sim.RunUntil(5 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if h := w.MX.MeanHops(); h != 4 {
		t.Fatalf("hops = %v, want 4", h)
	}
}

func TestSourceSeqnoIncrementsPerDiscovery(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(3, 100), nil)
	w.Send(0, 2)
	w.Sim.RunUntil(3 * time.Second)
	src := w.Nodes[0].Protocol().(*Protocol)
	if src.SeqnoDelta() == 0 {
		t.Fatal("AODV source did not increment its sequence number")
	}
}

func TestSecondPacketUsesCachedRoute(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(4, 100), nil)
	w.Send(0, 3)
	w.Sim.RunUntil(2 * time.Second)
	ctl := w.MX.ControlTx
	w.Send(0, 3)
	w.Sim.RunUntil(4 * time.Second)
	if w.MX.DataRecv != 2 {
		t.Fatalf("delivered %d, want 2", w.MX.DataRecv)
	}
	if w.MX.ControlTx != ctl {
		t.Fatalf("cached-route packet generated %d control packets", w.MX.ControlTx-ctl)
	}
}

func TestIntermediateReply(t *testing.T) {
	pts := rtest.Chain(5, 100)
	pts = append(pts, geo.Point{X: 0, Y: 100}) // node 5 near node 0
	w := rtest.New(1, 120, factory, pts, nil)
	w.Send(0, 4)
	w.Sim.RunUntil(3 * time.Second)
	w.Send(5, 4)
	w.Sim.RunUntil(6 * time.Second)
	if w.MX.DataRecv != 2 {
		t.Fatalf("delivered %d, want 2 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
}

func TestLinkBreakTriggersRepairOrRERR(t *testing.T) {
	pts := rtest.Chain(5, 100)
	models := make([]mobility.Model, 6)
	models[2] = mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: pts[2]},
		{At: 5 * time.Second, Pos: pts[2]},
		{At: 8 * time.Second, Pos: geo.Point{X: pts[2].X, Y: 5000}},
	})
	positions := append(pts, geo.Point{X: 200, Y: 60})
	w := rtest.New(1, 120, factory, positions, models)
	for i := 0; i < 30; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() { w.Send(0, 4) })
	}
	w.Sim.RunUntil(40 * time.Second)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	if w.MX.DataRecv < 20 {
		t.Fatalf("delivered %d/30 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
}

func TestDiscoveryTimeout(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(3, 100), nil)
	w.Send(0, 9)
	w.Sim.RunUntil(time.Minute)
	if w.MX.DataDrops[rcommon.DropTimeout] != 1 {
		t.Fatalf("drops = %v", w.MX.DataDrops)
	}
}

func TestNoRouteIntermediateSendsRERR(t *testing.T) {
	// Node 1 receives data for an unknown destination: unicast RERR and
	// drop.
	w := rtest.New(1, 120, factory, rtest.Chain(2, 100), nil)
	// Force a data packet through the stack without discovery by
	// injecting directly at node 1's protocol.
	pkt := &netstack.DataPacket{UID: 1, Src: 0, Dst: 7, Size: 100, TTL: 8, Created: 0}
	w.Nodes[1].Protocol().RecvData(0, pkt)
	w.Sim.RunUntil(time.Second)
	if w.MX.DataDrops[rcommon.DropNoRoute] != 1 {
		t.Fatalf("drops = %v", w.MX.DataDrops)
	}
	if w.MX.ControlTx == 0 {
		t.Fatal("no RERR sent")
	}
}

func TestSeqCompareWraps(t *testing.T) {
	if !seqGT(1, 0xFFFFFFFF) {
		t.Error("wraparound compare failed")
	}
	if seqGT(0xFFFFFFFF, 1) {
		t.Error("wraparound compare inverted")
	}
	if !seqGE(5, 5) {
		t.Error("seqGE equality failed")
	}
}

func TestMobileNetworkLoopFree(t *testing.T) {
	const n = 20
	positions := make([]geo.Point, n)
	models := make([]mobility.Model, n)
	w := rtest.New(5, 250, factory, positions, models)
	_ = w
	// Build with deterministic waypoint models.
	rng := sim.New(77).Rand()
	terrain := geo.Terrain{Width: 800, Height: 300}
	for i := range models {
		models[i] = mobility.NewWaypoint(terrain, rng, 0, 20, 0)
	}
	w = rtest.New(5, 250, factory, positions, models)
	for i := 0; i < 40; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() {
			src := i % n
			w.Send(src, (src+1+i%(n-1))%n)
			if err := w.CheckLoopFree(); err != nil {
				t.Error(err)
			}
		})
	}
	w.Sim.RunUntil(45 * time.Second)
	if w.MX.DataRecv == 0 {
		t.Fatal("nothing delivered")
	}
}

// Package aodv implements the Ad hoc On-demand Distance Vector protocol
// (Perkins, Belding-Royer, Das; IETF draft-ietf-manet-aodv-10), the primary
// baseline of the paper's evaluation.
//
// AODV prevents loops with per-destination sequence numbers and hop counts:
// a route may only be replaced by one with a fresher destination sequence
// number, or an equal one and a smaller hop count. A node that loses a
// route must increment the destination sequence number it requests, which
// usually makes it a local maximum — only the destination (or a node with a
// fresher route) can answer, so repairs are frequently network-wide floods.
// This is the behaviour Fig. 7 of the paper quantifies.
package aodv

import (
	"fmt"
	"sort"
	"time"

	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// Config holds AODV's protocol constants.
type Config struct {
	ActiveRouteTimeout sim.Time
	NodeTraversal      sim.Time
	RreqRetries        int
	TTLs               []int
	QueueCap           int
	// LocalRepair lets an intermediate node that detects a link break
	// attempt a repair discovery before reporting upstream (§V: "AODV
	// uses local repair").
	LocalRepair bool
	MaxSalvage  int
	// RreqRateLimit caps RREQ originations per second (RREQ_RATELIMIT).
	RreqRateLimit int
	// DiscoveryHoldDown delays a fresh discovery for a destination that
	// just failed all retries, so saturated flows do not flood the
	// network with back-to-back failed searches.
	DiscoveryHoldDown sim.Time
}

// DefaultConfig returns the constants used in the evaluation.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 10 * time.Second,
		NodeTraversal:      40 * time.Millisecond,
		RreqRetries:        2,
		TTLs:               []int{5, 10, 35},
		QueueCap:           10,
		LocalRepair:        true,
		MaxSalvage:         3,
		RreqRateLimit:      10,
		DiscoveryHoldDown:  3 * time.Second,
	}
}

// ConfigFromParams returns DefaultConfig with the spec-level overrides in
// params applied; durations arrive in seconds, booleans as 0/1. Unknown
// keys and out-of-range values are errors.
func ConfigFromParams(params map[string]float64) (Config, error) {
	cfg := DefaultConfig()
	if err := registry.ApplyParams("aodv", params, map[string]func(float64){
		"active_route_timeout_seconds": func(v float64) { cfg.ActiveRouteTimeout = rcommon.Seconds(v) },
		"node_traversal_seconds":       func(v float64) { cfg.NodeTraversal = rcommon.Seconds(v) },
		"rreq_retries":                 func(v float64) { cfg.RreqRetries = int(v) },
		"ttl_0":                        func(v float64) { cfg.TTLs[0] = int(v) },
		"ttl_1":                        func(v float64) { cfg.TTLs[1] = int(v) },
		"ttl_2":                        func(v float64) { cfg.TTLs[2] = int(v) },
		"queue_cap":                    func(v float64) { cfg.QueueCap = int(v) },
		"local_repair":                 func(v float64) { cfg.LocalRepair = v != 0 },
		"max_salvage":                  func(v float64) { cfg.MaxSalvage = int(v) },
		"rreq_rate_limit":              func(v float64) { cfg.RreqRateLimit = int(v) },
		"discovery_holddown_seconds":   func(v float64) { cfg.DiscoveryHoldDown = rcommon.Seconds(v) },
	}); err != nil {
		return Config{}, err
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// validate rejects configurations no deployment could run.
func (c Config) validate() error {
	if c.ActiveRouteTimeout <= 0 || c.NodeTraversal <= 0 {
		return fmt.Errorf("aodv: timeouts must be positive (active_route_timeout %v, node_traversal %v)",
			c.ActiveRouteTimeout, c.NodeTraversal)
	}
	if c.RreqRetries < 0 || c.QueueCap < 1 || c.MaxSalvage < 0 || c.DiscoveryHoldDown < 0 {
		return fmt.Errorf("aodv: rreq_retries %d, queue_cap %d, max_salvage %d, discovery_holddown %v out of range",
			c.RreqRetries, c.QueueCap, c.MaxSalvage, c.DiscoveryHoldDown)
	}
	for _, t := range c.TTLs {
		if t < 1 {
			return fmt.Errorf("aodv: ttl schedule entry %d must be >= 1", t)
		}
	}
	return nil
}

// rreq is the AODV route request.
type rreq struct {
	Src        netstack.NodeID
	SrcSeq     uint32
	RreqID     uint32
	Dst        netstack.NodeID
	DstSeq     uint32
	UnknownSeq bool
	HopCount   int
	TTL        int
}

// rrep is the route reply.
type rrep struct {
	Src      netstack.NodeID // RREQ originator (reply travels toward it)
	Dst      netstack.NodeID
	DstSeq   uint32
	HopCount int
	Lifetime sim.Time
}

// rerr lists unreachable destinations with their invalidated sequence
// numbers.
type rerr struct {
	Dests []rerrDest
}

type rerrDest struct {
	Dst netstack.NodeID
	Seq uint32
}

// Wire sizes per the AODV draft.
const (
	rreqSize     = 24
	rrepSize     = 20
	rerrBaseSize = 4
	rerrPerDest  = 8
)

func (e *rerr) size() int { return rerrBaseSize + rerrPerDest*len(e.Dests) }

// routeEntry is a routing-table row.
type routeEntry struct {
	seq        uint32
	validSeq   bool
	hops       int
	nextHop    netstack.NodeID
	valid      bool
	expiry     sim.Time
	precursors map[netstack.NodeID]struct{}
}

// Protocol is one node's AODV instance.
type Protocol struct {
	netstack.BaseProtocol
	cfg  Config
	node *netstack.Node
	self netstack.NodeID

	seq    uint32 // own sequence number, starts at 0 (Fig. 7 baseline)
	rreqID uint32
	table  map[netstack.NodeID]*routeEntry
	// seen suppresses duplicate RREQ floods (PATH_DISCOVERY_TIME).
	seen *rcommon.DupCache
	// disc owns the pending discoveries, their packet queues, and the
	// post-failure hold-down.
	disc *rcommon.DiscoveryTable
	// rreqLimit and rerrLimit enforce RREQ_RATELIMIT / RERR_RATELIMIT.
	rreqLimit rcommon.RateLimiter
	rerrLimit rcommon.RateLimiter
	sweeper   rcommon.Beaconer
}

var _ netstack.Protocol = (*Protocol)(nil)

// New returns an AODV instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:       cfg,
		table:     make(map[netstack.NodeID]*routeEntry),
		seen:      rcommon.NewDupCache(30 * time.Second),
		disc:      rcommon.NewDiscoveryTable(cfg.QueueCap, cfg.RreqRetries, cfg.DiscoveryHoldDown),
		rreqLimit: rcommon.RateLimiter{Cap: cfg.RreqRateLimit},
		rerrLimit: rcommon.RateLimiter{Cap: 10},
	}
}

// Attach implements netstack.Protocol.
func (p *Protocol) Attach(n *netstack.Node) {
	p.node = n
	p.self = n.ID()
	p.disc.Attach(n)
}

// Start implements netstack.Protocol. Starting twice is a no-op.
func (p *Protocol) Start() {
	p.sweeper.StartEvery(p.node, 10*time.Second, func() {
		p.seen.Sweep(p.node.Now())
	})
}

// SeqnoDelta reports this node's own sequence number, which starts at zero
// (the Fig. 7 metric).
func (p *Protocol) SeqnoDelta() uint64 { return uint64(p.seq) }

// SuccessorsOf exposes the next hop for loop checking.
func (p *Protocol) SuccessorsOf(dst netstack.NodeID) []netstack.NodeID {
	if e, ok := p.table[dst]; ok && e.valid && e.expiry > p.node.Now() {
		return []netstack.NodeID{e.nextHop}
	}
	return nil
}

func (p *Protocol) entry(dst netstack.NodeID) *routeEntry {
	e, ok := p.table[dst]
	if !ok {
		e = &routeEntry{precursors: make(map[netstack.NodeID]struct{})}
		p.table[dst] = e
	}
	return e
}

// liveRoute returns the valid, unexpired entry for dst.
func (p *Protocol) liveRoute(dst netstack.NodeID) (*routeEntry, bool) {
	e, ok := p.table[dst]
	if !ok || !e.valid || e.expiry <= p.node.Now() {
		return nil, false
	}
	return e, true
}

// --- Data plane -------------------------------------------------------

// OriginateData implements netstack.Protocol.
func (p *Protocol) OriginateData(pkt *netstack.DataPacket) {
	if e, ok := p.liveRoute(pkt.Dst); ok {
		p.useRoute(e)
		p.node.ForwardData(e.nextHop, pkt)
		return
	}
	p.enqueue(pkt, false)
}

// RecvData implements netstack.Protocol.
func (p *Protocol) RecvData(from netstack.NodeID, pkt *netstack.DataPacket) {
	if pkt.Dst == p.self {
		pkt.Hops++
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.Hops++
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.node.DropData(pkt, rcommon.DropTTL)
		return
	}
	e, ok := p.liveRoute(pkt.Dst)
	if !ok {
		seq := uint32(0)
		if old, exists := p.table[pkt.Dst]; exists {
			seq = old.seq
		}
		out := &rerr{Dests: []rerrDest{{Dst: pkt.Dst, Seq: seq}}}
		p.node.UnicastControl(from, out.size(), out)
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	p.useRoute(e)
	// Refresh the reverse route toward the source as the draft requires.
	if rev, ok := p.liveRoute(pkt.Src); ok {
		p.useRoute(rev)
	}
	p.node.ForwardData(e.nextHop, pkt)
}

func (p *Protocol) useRoute(e *routeEntry) {
	e.expiry = p.node.Now() + p.cfg.ActiveRouteTimeout
}

// enqueue queues pkt behind a (possibly new) discovery.
func (p *Protocol) enqueue(pkt *netstack.DataPacket, repair bool) {
	p.disc.Enqueue(pkt, repair, p.solicit)
}

// solicit broadcasts a RREQ per the expanding-ring schedule; over-cap
// discoveries are deferred, not abandoned (RREQ_RATELIMIT).
func (p *Protocol) solicit(pd *rcommon.Discovery) {
	if !p.rreqLimit.Allow(p.node.Now()) {
		p.disc.Defer(pd, 200*time.Millisecond, p.solicit)
		return
	}
	// "Immediately before a node originates a route discovery, it MUST
	// increment its own sequence number."
	p.seq++
	p.rreqID++
	p.seen.Mark(p.self, p.rreqID, p.node.Now())

	r := &rreq{
		Src:    p.self,
		SrcSeq: p.seq,
		RreqID: p.rreqID,
		Dst:    pd.Dst,
		TTL:    p.cfg.TTLs[min(pd.Attempt, len(p.cfg.TTLs)-1)],
	}
	if e, ok := p.table[pd.Dst]; ok && e.validSeq {
		r.DstSeq = e.seq
	} else {
		r.UnknownSeq = true
	}
	p.node.BroadcastControl(rreqSize, r)
	// Binary exponential backoff across retries, per the draft.
	wait := 2 * sim.Time(r.TTL) * p.cfg.NodeTraversal << uint(pd.Attempt)
	pd.Timer = p.node.After(wait, func() { p.disc.Retry(pd, p.solicit, p.repairFailed) })
}

// repairFailed runs when an abandoned discovery was a local repair:
// invalidate the route and report upstream.
func (p *Protocol) repairFailed(pd *rcommon.Discovery) {
	if !pd.Repair {
		return
	}
	e := p.entry(pd.Dst)
	if e.valid {
		e.valid = false
		e.seq++
	}
	p.propagateRERR(map[netstack.NodeID]*routeEntry{pd.Dst: e})
}

// --- Control plane ----------------------------------------------------

// RecvControl implements netstack.Protocol.
func (p *Protocol) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		p.handleRREQ(from, m)
	case *rrep:
		p.handleRREP(from, m)
	case *rerr:
		p.handleRERR(from, m)
	}
}

func (p *Protocol) handleRREQ(from netstack.NodeID, r *rreq) {
	if r.Src == p.self {
		return
	}
	// Build/refresh the reverse route to the originator.
	p.update(r.Src, r.SrcSeq, true, r.HopCount+1, from)

	if !p.seen.Witness(r.Src, r.RreqID, p.node.Now()) {
		return
	}

	if r.Dst == p.self {
		// "If its own sequence number equals the RREQ's destination
		// sequence number, increment it."
		if !r.UnknownSeq && r.DstSeq >= p.seq {
			p.seq = r.DstSeq
			p.seq++
		}
		rep := &rrep{Src: r.Src, Dst: p.self, DstSeq: p.seq, HopCount: 0,
			Lifetime: p.cfg.ActiveRouteTimeout}
		p.node.UnicastControl(from, rrepSize, rep)
		return
	}
	// Intermediate reply: valid route with a sequence number at least as
	// fresh as requested.
	if e, ok := p.liveRoute(r.Dst); ok && e.validSeq && (r.UnknownSeq || seqGE(e.seq, r.DstSeq)) {
		e.precursors[from] = struct{}{}
		rep := &rrep{Src: r.Src, Dst: r.Dst, DstSeq: e.seq, HopCount: e.hops,
			Lifetime: e.expiry - p.node.Now()}
		p.node.UnicastControl(from, rrepSize, rep)
		return
	}
	// Relay.
	if r.TTL <= 1 {
		return
	}
	z := *r
	z.TTL--
	z.HopCount++
	if e, ok := p.table[r.Dst]; ok && e.validSeq && seqGE(e.seq, z.DstSeq) && !z.UnknownSeq {
		z.DstSeq = e.seq
	}
	jitter := sim.Time(p.node.Rand().Int63n(int64(10 * time.Millisecond)))
	p.node.After(jitter, func() { p.node.BroadcastControl(rreqSize, &z) })
}

func (p *Protocol) handleRREP(from netstack.NodeID, rep *rrep) {
	// Install/refresh the forward route to the destination.
	if !p.update(rep.Dst, rep.DstSeq, true, rep.HopCount+1, from) {
		return
	}
	if rep.Src == p.self {
		p.complete(rep.Dst)
		return
	}
	// Forward along the reverse route toward the originator.
	rev, ok := p.liveRoute(rep.Src)
	if !ok {
		return
	}
	p.useRoute(rev)
	fwd := p.entry(rep.Dst)
	fwd.precursors[rev.nextHop] = struct{}{}
	y := *rep
	y.HopCount++
	p.node.UnicastControl(rev.nextHop, rrepSize, &y)
}

// complete flushes the discovery queue for dst.
func (p *Protocol) complete(dst netstack.NodeID) {
	pd, ok := p.disc.Complete(dst)
	if !ok {
		return
	}
	e, live := p.liveRoute(dst)
	for _, pkt := range pd.Queue {
		if !live {
			p.node.DropData(pkt, rcommon.DropNoRoute)
			continue
		}
		p.useRoute(e)
		p.node.ForwardData(e.nextHop, pkt)
	}
}

// update applies the draft's route-update rule: adopt when the sequence
// number is fresher, equal with fewer hops, or the entry is absent or
// invalid. It reports whether the entry now points via `next`.
func (p *Protocol) update(dst netstack.NodeID, seq uint32, validSeq bool, hops int, next netstack.NodeID) bool {
	if dst == p.self {
		return false
	}
	e := p.entry(dst)
	adopt := !e.valid || !e.validSeq
	if !adopt && validSeq {
		adopt = seqGT(seq, e.seq) || (seq == e.seq && hops < e.hops)
	}
	if !adopt && e.valid && e.nextHop == next && e.seq == seq {
		p.useRoute(e) // same route refreshed
		return true
	}
	if !adopt {
		return e.valid && e.nextHop == next
	}
	e.seq = seq
	e.validSeq = validSeq
	e.hops = hops
	e.nextHop = next
	e.valid = true
	p.useRoute(e)
	return true
}

func (p *Protocol) handleRERR(from netstack.NodeID, e *rerr) {
	broken := make(map[netstack.NodeID]*routeEntry)
	for _, d := range e.Dests {
		ent, ok := p.table[d.Dst]
		if !ok || !ent.valid || ent.nextHop != from {
			continue
		}
		ent.valid = false
		if seqGT(d.Seq, ent.seq) {
			ent.seq = d.Seq
		}
		broken[d.Dst] = ent
	}
	p.propagateRERR(broken)
}

// DataFailed implements netstack.Protocol: the MAC reported a broken link.
func (p *Protocol) DataFailed(to netstack.NodeID, pkt *netstack.DataPacket) {
	broken := p.breakLink(to)
	if p.cfg.LocalRepair && pkt.Salvaged < p.cfg.MaxSalvage {
		pkt.Salvaged++
		p.enqueue(pkt, true)
	} else {
		p.node.DropData(pkt, rcommon.DropLinkLost)
	}
	p.propagateRERR(broken)
}

// ControlFailed implements netstack.Protocol.
func (p *Protocol) ControlFailed(to netstack.NodeID, msg any) {
	p.propagateRERR(p.breakLink(to))
}

// breakLink invalidates all routes through `to`, incrementing their
// sequence numbers as the draft requires on invalidation.
func (p *Protocol) breakLink(to netstack.NodeID) map[netstack.NodeID]*routeEntry {
	broken := make(map[netstack.NodeID]*routeEntry)
	for dst, e := range p.table {
		if e.valid && e.nextHop == to {
			e.valid = false
			e.seq++
			broken[dst] = e
		}
	}
	return broken
}

// propagateRERR notifies precursors of newly invalid destinations, capped
// at RERR_RATELIMIT (10 per second, RFC 3561 §10).
func (p *Protocol) propagateRERR(broken map[netstack.NodeID]*routeEntry) {
	var dests []rerrDest
	for dst, e := range broken {
		if len(e.precursors) == 0 {
			continue
		}
		dests = append(dests, rerrDest{Dst: dst, Seq: e.seq})
		e.precursors = make(map[netstack.NodeID]struct{})
	}
	if len(dests) == 0 || !p.rerrLimit.Allow(p.node.Now()) {
		return
	}
	// Deterministic RERR content whatever the map order.
	sort.Slice(dests, func(i, j int) bool { return dests[i].Dst < dests[j].Dst })
	out := &rerr{Dests: dests}
	p.node.BroadcastControl(out.size(), out)
}

// seqGT and seqGE compare sequence numbers with wraparound (RFC 3561
// §6.1), via the shared helpers.
func seqGT(a, b uint32) bool { return rcommon.SeqGT(a, b) }

func seqGE(a, b uint32) bool { return rcommon.SeqGE(a, b) }

package aodv

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/routing/rtest"
)

// spy records control messages it hears.
type spy struct {
	netstack.BaseProtocol
	node  *netstack.Node
	rreqs []*rreq
	rreps []*rrep
}

func (s *spy) Attach(n *netstack.Node) { s.node = n }
func (s *spy) Start()                  {}
func (s *spy) OriginateData(pkt *netstack.DataPacket) {
	s.node.DropData(pkt, rcommon.DropNoRoute)
}
func (s *spy) RecvData(netstack.NodeID, *netstack.DataPacket) {}
func (s *spy) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		s.rreqs = append(s.rreqs, m)
	case *rrep:
		s.rreps = append(s.rreps, m)
	}
}
func (s *spy) DataFailed(netstack.NodeID, *netstack.DataPacket) {}

func spyWorld(t *testing.T) (*rtest.World, *Protocol, *spy) {
	t.Helper()
	sp := &spy{}
	var pr *Protocol
	w := rtest.New(1, 150, func(id netstack.NodeID) netstack.Protocol {
		if id == 0 {
			pr = New(DefaultConfig())
			return pr
		}
		return sp
	}, []geo.Point{{X: 0}, {X: 100}}, nil)
	return w, pr, sp
}

func TestExpandingRingTTLs(t *testing.T) {
	// Discovery for an unreachable destination walks the TTL schedule
	// 5, 10, 35 with a fresh rreq id and incremented source seqno each
	// time.
	w, pr, sp := spyWorld(t)
	pr.OriginateData(&netstack.DataPacket{UID: 1, Src: 0, Dst: 99, Size: 100, TTL: 64})
	w.Sim.RunUntil(time.Minute)
	if len(sp.rreqs) != 3 {
		t.Fatalf("heard %d RREQs, want 3 ring attempts", len(sp.rreqs))
	}
	wantTTL := []int{5, 10, 35}
	for i, r := range sp.rreqs {
		if r.TTL != wantTTL[i] {
			t.Errorf("attempt %d TTL = %d, want %d", i, r.TTL, wantTTL[i])
		}
		if r.Dst != 99 || r.Src != 0 {
			t.Errorf("attempt %d addressed %d->%d", i, r.Src, r.Dst)
		}
	}
	if sp.rreqs[0].SrcSeq >= sp.rreqs[2].SrcSeq+1 {
		t.Error("source seqno did not increase across attempts")
	}
	if sp.rreqs[0].RreqID == sp.rreqs[1].RreqID {
		t.Error("rreq id reused across attempts")
	}
}

func TestReverseRouteFromRREQ(t *testing.T) {
	w, pr, _ := spyWorld(t)
	pr.handleRREQ(1, &rreq{Src: 7, SrcSeq: 3, RreqID: 1, Dst: 42,
		UnknownSeq: true, HopCount: 2, TTL: 5})
	w.Sim.RunUntil(time.Second)
	e, ok := pr.liveRoute(7)
	if !ok {
		t.Fatal("reverse route not installed")
	}
	if e.nextHop != 1 || e.hops != 3 || e.seq != 3 {
		t.Fatalf("reverse route = %+v", e)
	}
}

func TestDestinationReplyHonorsSeqnoRule(t *testing.T) {
	// "If its own sequence number equals the RREQ's destination sequence
	// number, increment it before replying."
	w, pr, sp := spyWorld(t)
	pr.seq = 5
	pr.handleRREQ(1, &rreq{Src: 7, SrcSeq: 1, RreqID: 2, Dst: 0, DstSeq: 5, TTL: 5})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreps) != 1 {
		t.Fatalf("heard %d RREPs, want 1", len(sp.rreps))
	}
	if sp.rreps[0].DstSeq != 6 {
		t.Fatalf("reply seqno = %d, want 6", sp.rreps[0].DstSeq)
	}
}

func TestRouteUpdateRules(t *testing.T) {
	w, pr, _ := spyWorld(t)
	_ = w
	// Install a route with seq 5, 3 hops.
	if !pr.update(9, 5, true, 3, 1) {
		t.Fatal("initial install failed")
	}
	// Stale seqno rejected.
	if pr.update(9, 4, true, 1, 2) {
		t.Fatal("stale seqno accepted")
	}
	// Equal seqno, more hops rejected.
	if pr.update(9, 5, true, 4, 2) {
		t.Fatal("longer same-seq route accepted")
	}
	// Equal seqno, fewer hops accepted.
	if !pr.update(9, 5, true, 2, 2) {
		t.Fatal("shorter same-seq route rejected")
	}
	// Fresher seqno accepted regardless of hops.
	if !pr.update(9, 6, true, 9, 3) {
		t.Fatal("fresher route rejected")
	}
	if e, _ := pr.liveRoute(9); e.nextHop != 3 || e.hops != 9 {
		t.Fatalf("route = %+v", e)
	}
}

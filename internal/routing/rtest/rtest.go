// Package rtest provides a shared in-memory world harness for routing
// protocol tests: nodes on a radio channel with static or scripted
// mobility, application packet injection, and a per-destination
// successor-graph cycle checker (the loop-freedom invariant).
package rtest

import (
	"fmt"

	"slr/internal/geo"
	"slr/internal/loopcheck"
	"slr/internal/metrics"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/radio"
	"slr/internal/sim"
)

// World is a small simulated network for protocol tests.
type World struct {
	Sim   *sim.Simulator
	Ch    *radio.Channel
	Nodes []*netstack.Node
	MX    *metrics.Collector
	uid   uint64
}

// Factory builds a protocol instance for a node.
type Factory func(id netstack.NodeID) netstack.Protocol

// New builds a world with one node per position and starts every
// protocol. Nodes are static unless models is non-nil, in which case
// models[i] overrides position i.
func New(seed int64, rangeM float64, f Factory, positions []geo.Point, models []mobility.Model) *World {
	w := NewStopped(seed, rangeM, f, positions, models)
	w.StartAll()
	return w
}

// NewStopped builds a world like New but does not start the protocols, so
// tests can observe the before-Start contract (no control traffic) or
// exercise Start explicitly.
func NewStopped(seed int64, rangeM float64, f Factory, positions []geo.Point, models []mobility.Model) *World {
	s := sim.New(seed)
	p := radio.DefaultParams()
	p.Range = rangeM
	ch := radio.NewChannel(s, p)
	mx := metrics.NewCollector()
	w := &World{Sim: s, Ch: ch, MX: mx}
	for i, pos := range positions {
		id := netstack.NodeID(i)
		n := netstack.NewNode(s, ch, id, f(id), mx)
		var m mobility.Model = &mobility.Static{At: pos}
		if models != nil && models[i] != nil {
			m = models[i]
		}
		ch.Register(id, m, n.Mac())
		w.Nodes = append(w.Nodes, n)
	}
	return w
}

// StartAll starts every node's protocol.
func (w *World) StartAll() {
	for _, n := range w.Nodes {
		n.Start()
	}
}

// Chain returns n positions spaced `gap` meters apart on a line.
func Chain(n int, gap float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * gap}
	}
	return pts
}

// Grid returns rows x cols positions spaced `gap` meters apart.
func Grid(rows, cols int, gap float64) []geo.Point {
	pts := make([]geo.Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, geo.Point{X: float64(c) * gap, Y: float64(r) * gap})
		}
	}
	return pts
}

// Send originates one application packet from src to dst.
func (w *World) Send(src, dst int) {
	w.uid++
	w.Nodes[src].SendData(&netstack.DataPacket{
		UID:     w.uid,
		Src:     netstack.NodeID(src),
		Dst:     netstack.NodeID(dst),
		Size:    512,
		TTL:     netstack.DefaultTTL,
		Created: w.Sim.Now(),
	})
}

// SuccessorLister is implemented by protocols that expose their successor
// sets for invariant checking.
type SuccessorLister interface {
	SuccessorsOf(dst netstack.NodeID) []netstack.NodeID
}

// CheckLoopFree verifies that, for every destination, the union of all
// nodes' successor sets forms an acyclic graph — the paper's loop-freedom
// at every instant. It returns an error naming the destination on failure.
func (w *World) CheckLoopFree() error {
	for dst := range w.Nodes {
		adj := make(map[int][]int)
		for i, n := range w.Nodes {
			sl, ok := n.Protocol().(SuccessorLister)
			if !ok {
				continue
			}
			for _, s := range sl.SuccessorsOf(netstack.NodeID(dst)) {
				adj[i] = append(adj[i], int(s))
			}
		}
		if cyc := loopcheck.FindCycle(adj); cyc != nil {
			return fmt.Errorf("destination %d: routing loop %v at t=%v", dst, cyc, w.Sim.Now())
		}
	}
	return nil
}

package rtest

import (
	"reflect"
	"testing"
	"time"

	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// BuildFunc builds one fresh protocol instance, the per-node factory the
// routing registry exposes.
type BuildFunc func() netstack.Protocol

// Conformance runs the contract every registered routing protocol must
// satisfy, independent of what the protocol actually computes:
//
//   - the factory returns a fresh instance per call (protocol state is
//     per node, never shared),
//   - an attached but unstarted protocol transmits nothing,
//   - Start is idempotent: a doubled Start changes no observable result,
//   - identical seeds replay to identical metrics,
//   - every routing-layer drop uses the canonical rcommon vocabulary.
//
// The registry's conformance test (internal/routing) runs it over every
// registered protocol, so a new registration cannot land without meeting
// the contract.
func Conformance(t *testing.T, build BuildFunc) {
	t.Run("FreshInstancePerBuild", func(t *testing.T) {
		if a, b := build(), build(); a == b {
			t.Fatal("factory returned the same instance twice; protocol state must be per node")
		}
	})
	t.Run("QuietBeforeStart", func(t *testing.T) {
		w := NewStopped(1, 120, func(netstack.NodeID) netstack.Protocol { return build() },
			Chain(4, 100), nil)
		w.Sim.RunUntil(5 * time.Second)
		if w.MX.ControlTx != 0 || w.Ch.Frames() != 0 {
			t.Fatalf("control traffic before Start: %d control packets, %d frames",
				w.MX.ControlTx, w.Ch.Frames())
		}
	})
	t.Run("StartIdempotent", func(t *testing.T) {
		once := conformanceRun(build, 1, false)
		twice := conformanceRun(build, 1, true)
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("doubled Start changed the run:\nonce:  %+v\ntwice: %+v", once, twice)
		}
	})
	t.Run("DeterministicReplay", func(t *testing.T) {
		a := conformanceRun(build, 7, false)
		b := conformanceRun(build, 7, false)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("identical seeds diverged:\nfirst:  %+v\nsecond: %+v", a, b)
		}
	})
	t.Run("DropReasonVocabulary", func(t *testing.T) {
		// A partitioned pair forces drops: no-route for proactive
		// protocols, discovery-timeout (and queue overflow) for
		// on-demand ones.
		w := New(3, 120, func(netstack.NodeID) netstack.Protocol { return build() },
			Chain(2, 5000), nil)
		for i := 0; i < 15; i++ {
			w.Sim.At(sim.Time(i)*200*time.Millisecond, func() { w.Send(0, 1) })
		}
		w.Sim.RunUntil(time.Minute)
		var drops uint64
		for reason, n := range w.MX.DataDrops {
			drops += n
			if !rcommon.KnownDropReason(reason) {
				t.Errorf("drop reason %q outside the rcommon vocabulary %v",
					reason, rcommon.DropReasons)
			}
		}
		if drops == 0 {
			t.Fatal("partitioned world recorded no drops; vocabulary check is vacuous")
		}
	})
}

// runStats is the observable outcome conformanceRun compares.
type runStats struct {
	DataSent, DataRecv uint64
	ControlTx          uint64
	ControlBytes       uint64
	HopsSum            uint64
	Frames, Collisions uint64
	Drops              map[string]uint64
}

// conformanceRun drives one fixed workload over a 5-node chain and
// snapshots everything observable.
func conformanceRun(build BuildFunc, seed int64, doubleStart bool) runStats {
	w := New(seed, 120, func(netstack.NodeID) netstack.Protocol { return build() },
		Chain(5, 100), nil)
	if doubleStart {
		w.StartAll()
	}
	for i := 0; i < 5; i++ {
		at := sim.Time(i+1) * time.Second
		src, dst := i%5, (i+4)%5
		w.Sim.At(at, func() { w.Send(src, dst) })
	}
	w.Sim.RunUntil(30 * time.Second)
	return runStats{
		DataSent:     w.MX.DataSent,
		DataRecv:     w.MX.DataRecv,
		ControlTx:    w.MX.ControlTx,
		ControlBytes: w.MX.ControlBytes,
		HopsSum:      w.MX.HopsSum,
		Frames:       w.Ch.Frames(),
		Collisions:   w.Ch.Collisions(),
		Drops:        w.MX.DataDrops,
	}
}

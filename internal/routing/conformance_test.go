package routing_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/netstack"
	"slr/internal/routing"
	"slr/internal/routing/rtest"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/traffic"
)

// TestRegistryCoversPaperProtocols pins the registry to the paper's
// evaluation set: every scenario.AllProtocols entry resolves, and the
// registry holds nothing else — a protocol cannot be registered without
// joining the sweep order, nor swept without being registered.
func TestRegistryCoversPaperProtocols(t *testing.T) {
	want := map[string]bool{}
	for _, p := range scenario.AllProtocols {
		want[string(p)] = true
		if err := routing.Validate(routing.Spec{Name: string(p)}); err != nil {
			t.Errorf("paper protocol %s missing from registry: %v", p, err)
		}
	}
	for _, name := range routing.Protocols() {
		if !want[name] {
			t.Errorf("registered protocol %s missing from scenario.AllProtocols", name)
		}
	}
}

// TestCaseInsensitiveLookup matches the CLI and spec behaviour of
// accepting "srp" for "SRP".
func TestCaseInsensitiveLookup(t *testing.T) {
	if _, err := routing.Build(routing.Spec{Name: "olsr"}); err != nil {
		t.Fatal(err)
	}
}

// TestUnknownProtocolAndParamsRejected exercises the two validation
// failure modes: a name outside the registry, and a typoed parameter key
// for every registered protocol.
func TestUnknownProtocolAndParamsRejected(t *testing.T) {
	if _, err := routing.Build(routing.Spec{Name: "OSPF"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	for _, name := range routing.Protocols() {
		if err := routing.Validate(routing.Spec{
			Name:   name,
			Params: map[string]float64{"definitely_not_a_knob": 1},
		}); err == nil {
			t.Errorf("%s accepted an unknown parameter", name)
		}
		if err := routing.Validate(routing.Spec{
			Name:   name,
			Params: map[string]float64{"rreq_retries": -2, "jitter_seconds": -1},
		}); err == nil {
			t.Errorf("%s accepted out-of-range parameters", name)
		}
	}
	// Conversion hazards: values that would wrap a uint32 or panic the
	// hello jitter must fail validation, not truncate or crash later.
	for _, params := range []map[string]float64{
		{"max_denom": -5},
		{"max_denom": 5e9},
		{"hello_interval_seconds": 1e-9},
	} {
		if err := routing.Validate(routing.Spec{Name: "SRP", Params: params}); err == nil {
			t.Errorf("SRP accepted hazardous params %v", params)
		}
	}
}

// tunedParams gives every protocol at least three override keys, the
// spec-file tuning contract.
var tunedParams = map[string]map[string]float64{
	"SRP":  {"rreq_retries": 4, "ttl_2": 40, "hello_interval_seconds": 2, "max_denom": 1e6},
	"LDR":  {"rreq_retries": 3, "queue_cap": 20, "min_reply_hops": 1},
	"AODV": {"active_route_timeout_seconds": 5, "local_repair": 0, "rreq_rate_limit": 20},
	"DSR":  {"cache_lifetime_seconds": 120, "routes_per_dest": 5, "reply_from_cache": 0},
	"OLSR": {"hello_interval_seconds": 1, "tc_interval_seconds": 3, "neighbor_hold_seconds": 3},
}

// TestParamOverridesBuild verifies a >= 3-key parameter map builds for
// every registered protocol — the registry side of the "a spec file can
// override at least three per-protocol parameters" contract (the spec
// side is covered in internal/spec).
func TestParamOverridesBuild(t *testing.T) {
	for _, name := range routing.Protocols() {
		params, ok := tunedParams[name]
		if !ok {
			t.Fatalf("no tuned parameter map for %s; extend tunedParams with >= 3 keys", name)
		}
		if len(params) < 3 {
			t.Fatalf("tuned parameter map for %s has %d keys, want >= 3", name, len(params))
		}
		if _, err := routing.Build(routing.Spec{Name: name, Params: params}); err != nil {
			t.Errorf("%s rejected tuned params: %v", name, err)
		}
	}
}

// TestConformance runs the shared protocol contract over every registry
// entry, at defaults and with tuned parameters.
func TestConformance(t *testing.T) {
	for _, name := range routing.Protocols() {
		t.Run(name, func(t *testing.T) {
			rtest.Conformance(t, func() netstack.Protocol {
				p, err := routing.Build(routing.Spec{Name: name})
				if err != nil {
					// Not t.Fatal: the factory runs inside nested
					// subtests, where FailNow on this t would break
					// testing's same-goroutine contract.
					panic(err)
				}
				return p
			})
		})
		t.Run(name+"/tuned", func(t *testing.T) {
			rtest.Conformance(t, func() netstack.Protocol {
				p, err := routing.Build(routing.Spec{Name: name, Params: tunedParams[name]})
				if err != nil {
					panic(err) // see above: no FailNow off this goroutine
				}
				return p
			})
		})
	}
}

// TestByteIdenticalReplayAcrossWorkers runs a small multi-trial scenario
// for every registered protocol on the work-stealing runner at two worker
// counts and requires the serialized per-trial records to be
// byte-identical — the regression gate that protocol-parameter sweeps
// (like every other sweep) do not depend on scheduling.
func TestByteIdenticalReplayAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial replay matrix")
	}
	for _, name := range routing.Protocols() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := scenario.Params{
				Protocol: scenario.ProtocolName(name),
				Nodes:    12,
				Terrain:  geo.Terrain{Width: 600, Height: 400},
				Range:    250,
				MaxSpeed: 10,
				Duration: 15 * time.Second,
				Seed:     1,
				Traffic: traffic.Params{
					Flows: 3, PacketSize: 256, Rate: 4, MeanLife: 30 * time.Second,
				},
				ProtoParams: tunedParams[name],
			}
			const trials = 4
			serial := jsonlBytes(t, scenario.RunTrials(p, trials))
			for _, workers := range []int{1, 4} {
				results, err := runner.Run(runner.TrialJobs(p, trials), runner.Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				ts := scenario.TrialSet{Protocol: p.Protocol, Pause: p.Pause, Results: results}
				if got := jsonlBytes(t, ts); !bytes.Equal(got, serial) {
					t.Fatalf("workers=%d records differ from serial reference:\n%s\nvs\n%s",
						workers, got, serial)
				}
			}
		})
	}
}

// jsonlBytes serializes a trial set through the runner's Record form in
// seed order, the byte-stable shape the JSONL emitter writes.
func jsonlBytes(t *testing.T, ts scenario.TrialSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, r := range ts.Results {
		rec := runner.NewRecord(runner.Job{Trial: i}, r)
		blob, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(blob)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

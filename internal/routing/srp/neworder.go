package srp

import (
	"slr/internal/frac"
	"slr/internal/label"
)

// splitKind selects how splitOrder interpolates between orderings.
type splitKind int

const (
	// splitMediant is the paper's Algorithm 1: the fraction mediant.
	splitMediant splitKind = iota
	// splitFarey uses the Stern-Brocot simplest fraction (§VI).
	splitFarey
	// splitNextOnly forbids interpolation: only the next-element of the
	// advertisement is tried, the AblationNextElementOnly mode.
	splitNextOnly
)

// splitMode maps a Config to its splitKind.
func splitMode(cfg Config) splitKind {
	switch {
	case cfg.NextElementOnly:
		return splitNextOnly
	case cfg.Farey:
		return splitFarey
	default:
		return splitMediant
	}
}

// newOrder implements Algorithm 1 (NEWORDER) of the paper: compute node A's
// new ordering G for destination T given its current ordering oA, the cached
// solicitation ordering c (C^A_?, the SLR request minimum M — Unassigned
// when there is no cached request, for RREQ/Hello advertisements, or at the
// RREP terminus), and the advertised ordering oAdv (O^?_T).
//
// It returns the unordered result (0, (1,1)) when no label maintaining
// order exists within 32-bit fraction precision, which forces Procedure 3
// to ignore the advertisement (Theorem 6). When farey is true, mediant
// splits are replaced by the Stern–Brocot simplest-fraction interpolation
// (§VI future work), which produces reduced fractions and postpones
// overflow; this is the AblationFarey variant.
//
// Successor elimination (Algorithm 1 line 13) is the caller's job: the
// route table prunes successors not preceded by G.
func newOrder(oA, c, oAdv label.Order, mode splitKind) label.Order {
	g := label.Unassigned
	switch {
	case oA.SN < oAdv.SN:
		switch {
		case c.SN < oAdv.SN:
			// Line 5: G <- O? + 1/1.
			if next, ok := oAdv.NextElement(); ok {
				g = next
			}
		default:
			// Line 7: split C against O? at the advertised sequence
			// number. Requires Fact 2 (C ≺ O?) for betweenness; under
			// network drift the fact can fail, in which case no
			// in-order label exists and we return unordered.
			g = splitOrder(c, oAdv, mode)
		}
	case oA.SN == oAdv.SN:
		switch {
		case c.Precedes(oA):
			// Line 10: the current label already satisfies the request.
			g = oA
		default:
			// Line 12: as line 7.
			g = splitOrder(c, oAdv, mode)
		}
	}
	// oA.SN > oAdv.SN: the advertisement is infeasible (cannot occur for
	// a feasible advertisement, Theorem 6 Case I); fall through to the
	// unordered result.
	return g
}

// splitOrder returns (sn?, split(F?, F_C)) when the fractions are ordered
// and representable, else Unassigned.
func splitOrder(c, oAdv label.Order, mode splitKind) label.Order {
	// Fact 2 defensively verified: the advertised fraction must be
	// strictly below the cached request fraction.
	if !oAdv.FD.Less(c.FD) {
		return label.Unassigned
	}
	switch mode {
	case splitFarey:
		if f, ok := frac.Between(oAdv.FD, c.FD); ok {
			return label.Order{SN: oAdv.SN, FD: f}
		}
	case splitNextOnly:
		// No interpolation: the next-element must happen to fit below
		// the request bound, else the relabel fails (ablation).
		if f, ok := oAdv.FD.Next(); ok && f.Less(c.FD) {
			return label.Order{SN: oAdv.SN, FD: f}
		}
	default:
		if f, ok := frac.Mediant(oAdv.FD, c.FD); ok {
			return label.Order{SN: oAdv.SN, FD: f}
		}
	}
	return label.Unassigned
}

// lie returns the understated solicitation fraction of §V: a node issuing a
// RREQ advertises (p-1)/(q-1) instead of its true p/q, or, when p = 1,
// (kp-1)/(kq-1) with k = 10000. The lie is strictly below the true
// ordering, which keeps marginally in-order nodes from answering with
// near-useless replies. Fractions that cannot be understated are returned
// unchanged.
func lie(f frac.F) frac.F {
	const k = 10000
	if f == frac.Zero || f == frac.One {
		return f
	}
	if f.Num > 1 {
		return frac.F{Num: f.Num - 1, Den: f.Den - 1}
	}
	if uint64(f.Den)*k <= 1<<32-1 {
		return frac.F{Num: k*f.Num - 1, Den: k*f.Den - 1}
	}
	return f
}

package srp

import (
	"testing"
	"time"

	"slr/internal/frac"
	"slr/internal/geo"
	"slr/internal/label"
	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/routing/rtest"
)

// spy records control messages it hears.
type spy struct {
	netstack.BaseProtocol
	node  *netstack.Node
	rreqs []*rreq
	rreps []*rrep
	rerrs []*rerr
}

func (s *spy) Attach(n *netstack.Node) { s.node = n }
func (s *spy) Start()                  {}
func (s *spy) OriginateData(pkt *netstack.DataPacket) {
	s.node.DropData(pkt, rcommon.DropNoRoute)
}
func (s *spy) RecvData(netstack.NodeID, *netstack.DataPacket) {}
func (s *spy) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		s.rreqs = append(s.rreqs, m)
	case *rrep:
		s.rreps = append(s.rreps, m)
	case *rerr:
		s.rerrs = append(s.rerrs, m)
	}
}
func (s *spy) DataFailed(netstack.NodeID, *netstack.DataPacket) {}

// relayWorld wires node 0 as SRP and node 1 as a spy within range.
func relayWorld(t *testing.T, cfg Config) (*rtest.World, *Protocol, *spy) {
	t.Helper()
	sp := &spy{}
	var pr *Protocol
	w := rtest.New(1, 150, func(id netstack.NodeID) netstack.Protocol {
		if id == 0 {
			pr = New(cfg)
			return pr
		}
		return sp
	}, []geo.Point{{X: 0}, {X: 100}}, nil)
	return w, pr, sp
}

func TestRelayCarriesMinimumOrdering(t *testing.T) {
	// Eq. 10 third case: relay has same sequence number and a smaller
	// fraction — the relayed solicitation must carry the minimum
	// (the relay's own ordering).
	w, pr, sp := relayWorld(t, DefaultConfig())
	r := pr.rt(9)
	r.assigned = true
	r.order = label.Order{SN: 4, FD: frac.MustNew(1, 3)}

	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 1, Dst: 9, DstSeq: 4,
		F: frac.MustNew(1, 2), TTL: 5, Flags: flagN})
	w.Sim.RunUntil(time.Second)

	if len(sp.rreqs) != 1 {
		t.Fatalf("spy heard %d rreqs, want 1", len(sp.rreqs))
	}
	z := sp.rreqs[0]
	if z.DstSeq != 4 || z.F != frac.MustNew(1, 3) {
		t.Fatalf("relayed ordering = (%d, %v), want (4, 1/3)", z.DstSeq, z.F)
	}
	if z.TTL != 4 || z.D != 1 {
		t.Fatalf("TTL/D = %d/%d, want 4/1", z.TTL, z.D)
	}
}

func TestRelayFresherSeqnoClearsReset(t *testing.T) {
	// Eq. 11 second case: the relay knows a fresher sequence number, so
	// it clears the T bit and carries its own ordering (Eq. 10 case 2).
	w, pr, sp := relayWorld(t, DefaultConfig())
	r := pr.rt(9)
	r.assigned = true
	r.order = label.Order{SN: 7, FD: frac.MustNew(2, 3)}

	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 2, Dst: 9, DstSeq: 4,
		F: frac.MustNew(1, 2), TTL: 5, Flags: flagT | flagN})
	w.Sim.RunUntil(time.Second)

	if len(sp.rreqs) != 1 {
		t.Fatalf("spy heard %d rreqs, want 1", len(sp.rreqs))
	}
	z := sp.rreqs[0]
	if z.Flags&flagT != 0 {
		t.Fatal("reset bit not cleared by fresher relay")
	}
	if z.DstSeq != 7 || z.F != frac.MustNew(2, 3) {
		t.Fatalf("relayed ordering = (%d, %v), want (7, 2/3)", z.DstSeq, z.F)
	}
}

func TestRelaySetsResetOnOverflow(t *testing.T) {
	// Eq. 11 third case: an out-of-order relay whose split would
	// overflow 32 bits must set the T bit.
	w, pr, sp := relayWorld(t, DefaultConfig())
	r := pr.rt(9)
	r.assigned = true
	// Same sn, fraction ABOVE the request's (out of order), denominator
	// near the 32-bit cap so n+q overflows.
	r.order = label.Order{SN: 4, FD: frac.F{Num: 1<<32 - 3, Den: 1<<32 - 2}}

	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 3, Dst: 9, DstSeq: 4,
		F: frac.F{Num: 1, Den: 1<<32 - 2}, TTL: 5, Flags: flagN})
	w.Sim.RunUntil(time.Second)

	if len(sp.rreqs) != 1 {
		t.Fatalf("spy heard %d rreqs, want 1", len(sp.rreqs))
	}
	if sp.rreqs[0].Flags&flagT == 0 {
		t.Fatal("T bit not set on out-of-order overflow relay")
	}
}

func TestUnassignedRelayKeepsUnknownBit(t *testing.T) {
	// Eq. 10 first case: both request and relay unassigned — the relayed
	// solicitation stays unknown with the T bit cleared.
	w, pr, sp := relayWorld(t, DefaultConfig())
	_ = pr
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 4, Dst: 9, TTL: 5, Flags: flagU | flagT | flagN})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreqs) != 1 {
		t.Fatalf("spy heard %d rreqs, want 1", len(sp.rreqs))
	}
	z := sp.rreqs[0]
	if z.Flags&flagU == 0 {
		t.Fatal("U bit lost")
	}
	if z.Flags&flagT != 0 {
		t.Fatal("T bit must be cleared when both are unassigned")
	}
}

func TestDuplicateRREQIgnored(t *testing.T) {
	w, pr, sp := relayWorld(t, DefaultConfig())
	req := &rreq{Src: 5, RreqID: 7, Dst: 9, TTL: 5, Flags: flagU | flagN}
	pr.handleRREQ(1, req)
	dup := *req
	pr.handleRREQ(1, &dup)
	w.Sim.RunUntil(time.Second)
	if len(sp.rreqs) != 1 {
		t.Fatalf("duplicate relayed: spy heard %d rreqs", len(sp.rreqs))
	}
}

func TestDestinationReplyBumpsOnReset(t *testing.T) {
	// A reset-required solicitation reaching the destination forces a
	// larger sequence number (§III), counted for Fig. 7.
	w, pr, sp := relayWorld(t, DefaultConfig())
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 8, Dst: 0, DstSeq: 6,
		F: frac.MustNew(1, 2), TTL: 5, Flags: flagT | flagN})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreps) != 1 {
		t.Fatalf("spy heard %d rreps, want 1", len(sp.rreps))
	}
	if got := sp.rreps[0].DstSeq; got != 7 {
		t.Fatalf("reply seqno = %d, want 7 (requested 6 + 1)", got)
	}
	if pr.SeqnoDelta() != 1 {
		t.Fatalf("SeqnoDelta = %d, want 1", pr.SeqnoDelta())
	}
}

func TestDestinationReplyNoBumpWithoutReset(t *testing.T) {
	w, pr, sp := relayWorld(t, DefaultConfig())
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 9, Dst: 0, TTL: 5, Flags: flagU | flagN})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreps) != 1 {
		t.Fatalf("spy heard %d rreps, want 1", len(sp.rreps))
	}
	if got := sp.rreps[0].DstSeq; got != 1 {
		t.Fatalf("reply seqno = %d, want initial 1", got)
	}
	if pr.SeqnoDelta() != 0 {
		t.Fatalf("SeqnoDelta = %d, want 0", pr.SeqnoDelta())
	}
}

func TestAgedControlDropped(t *testing.T) {
	w, pr, sp := relayWorld(t, DefaultConfig())
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 10, Dst: 9, TTL: 5,
		Flags: flagU | flagN, Age: time.Minute})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreqs) != 0 {
		t.Fatal("aged RREQ relayed past DELETE_PERIOD")
	}
}

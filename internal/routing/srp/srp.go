package srp

import (
	"fmt"
	"time"

	"slr/internal/frac"
	"slr/internal/label"
	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// Config holds SRP's protocol constants and the heuristic switches that the
// ablation benchmarks toggle.
type Config struct {
	// ActiveRouteTimeout is how long an unused successor stays valid.
	ActiveRouteTimeout sim.Time
	// DeletePeriod bounds control-packet age and ordering retention
	// (§III, 60 s).
	DeletePeriod sim.Time
	// MaxDenom triggers a destination-controlled path reset when the
	// terminus' fraction denominator exceeds it (§III, one billion).
	MaxDenom uint32
	// NodeTraversal is the estimated per-hop latency for RREQ timers.
	NodeTraversal sim.Time
	// RreqRetries is the number of retries after the first attempt.
	RreqRetries int
	// TTLs is the expanding-ring schedule; the last entry repeats.
	TTLs []int
	// MinReplyHops keeps intermediate nodes within this many hops of the
	// source from answering (§V: "RREQ packets need to travel several
	// hops before allowing a node to reply").
	MinReplyHops int
	// QueueCap bounds the per-destination packet queue during discovery.
	QueueCap int
	// MaxSalvage bounds per-packet packet-cache retransmissions.
	MaxSalvage int
	// RreqRateLimit caps RREQ originations per node per second
	// (RREQ_RATELIMIT of the AODV framework SRP's messaging follows).
	RreqRateLimit int
	// DiscoveryHoldDown delays a fresh discovery for a destination that
	// just failed all retries, so saturated flows do not flood the
	// network with back-to-back failed searches.
	DiscoveryHoldDown sim.Time
	// UseLie enables the understated RREQ ordering of §V.
	UseLie bool
	// UsePacketCache enables resending MAC-dropped packets on new routes.
	UsePacketCache bool
	// Farey replaces mediant splits with Stern–Brocot interpolation.
	Farey bool
	// NextElementOnly disables mediant splits: relabeling may only take
	// the next-element of the advertisement, which frequently violates
	// the cached request bound and forces path resets — an ablation that
	// degrades SRP toward integer-ordering protocols like LDR.
	NextElementOnly bool
	// Multipath selects the successor-choice policy for forwarding.
	Multipath PathPolicy
	// HelloInterval, when positive, broadcasts periodic Hello
	// advertisements carrying this node's orderings for destinations
	// with active routes (Procedure 3 handles Hello advertisements with
	// C = Unassigned). The paper's simulations run without hellos; this
	// is the protocol-complete option.
	HelloInterval sim.Time
	// HelloFanout caps the advertised destinations per Hello.
	HelloFanout int
	// RequestRack asks the next hop of every forwarded RREP to confirm
	// it with a RACK message (AODV's RREP-ACK carrying src and rreqid,
	// §III). With a MAC that ACKs unicasts it is informational.
	RequestRack bool
}

// DefaultConfig returns the configuration used in the paper's simulations.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 10 * time.Second,
		DeletePeriod:       60 * time.Second,
		MaxDenom:           1_000_000_000,
		NodeTraversal:      40 * time.Millisecond,
		RreqRetries:        2,
		TTLs:               []int{5, 10, 35},
		MinReplyHops:       2,
		QueueCap:           10,
		MaxSalvage:         3,
		RreqRateLimit:      10,
		DiscoveryHoldDown:  3 * time.Second,
		UseLie:             true,
		UsePacketCache:     true,
		Farey:              false,
		Multipath:          PolicyMinHop,
		HelloFanout:        10,
	}
}

// ConfigFromParams returns DefaultConfig with the spec-level overrides in
// params applied; durations arrive in seconds, booleans as 0/1, multipath
// as the PathPolicy ordinal (0 min-hop, 1 round-robin, 2 random). Unknown
// keys and out-of-range values are errors.
func ConfigFromParams(params map[string]float64) (Config, error) {
	cfg := DefaultConfig()
	maxDenom := float64(cfg.MaxDenom)
	if err := registry.ApplyParams("srp", params, map[string]func(float64){
		"active_route_timeout_seconds": func(v float64) { cfg.ActiveRouteTimeout = rcommon.Seconds(v) },
		"delete_period_seconds":        func(v float64) { cfg.DeletePeriod = rcommon.Seconds(v) },
		"max_denom":                    func(v float64) { maxDenom = v },
		"node_traversal_seconds":       func(v float64) { cfg.NodeTraversal = rcommon.Seconds(v) },
		"rreq_retries":                 func(v float64) { cfg.RreqRetries = int(v) },
		"ttl_0":                        func(v float64) { cfg.TTLs[0] = int(v) },
		"ttl_1":                        func(v float64) { cfg.TTLs[1] = int(v) },
		"ttl_2":                        func(v float64) { cfg.TTLs[2] = int(v) },
		"min_reply_hops":               func(v float64) { cfg.MinReplyHops = int(v) },
		"queue_cap":                    func(v float64) { cfg.QueueCap = int(v) },
		"max_salvage":                  func(v float64) { cfg.MaxSalvage = int(v) },
		"rreq_rate_limit":              func(v float64) { cfg.RreqRateLimit = int(v) },
		"discovery_holddown_seconds":   func(v float64) { cfg.DiscoveryHoldDown = rcommon.Seconds(v) },
		"use_lie":                      func(v float64) { cfg.UseLie = v != 0 },
		"use_packet_cache":             func(v float64) { cfg.UsePacketCache = v != 0 },
		"farey":                        func(v float64) { cfg.Farey = v != 0 },
		"next_element_only":            func(v float64) { cfg.NextElementOnly = v != 0 },
		"multipath":                    func(v float64) { cfg.Multipath = PathPolicy(v) },
		"hello_interval_seconds":       func(v float64) { cfg.HelloInterval = rcommon.Seconds(v) },
		"hello_fanout":                 func(v float64) { cfg.HelloFanout = int(v) },
		"request_rack":                 func(v float64) { cfg.RequestRack = v != 0 },
	}); err != nil {
		return Config{}, err
	}
	// Range-check before the uint32 conversion: out-of-range float-to-int
	// conversions wrap implementation-specifically, so a negative or
	// oversized max_denom must error here, not truncate.
	if maxDenom < 2 || maxDenom > float64(^uint32(0)) {
		return Config{}, fmt.Errorf("srp: max_denom %v must be in [2, %d]", maxDenom, ^uint32(0))
	}
	cfg.MaxDenom = uint32(maxDenom)
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// validate rejects configurations no deployment could run.
func (c Config) validate() error {
	if c.ActiveRouteTimeout <= 0 || c.DeletePeriod <= 0 || c.NodeTraversal <= 0 {
		return fmt.Errorf("srp: timeouts must be positive (active_route_timeout %v, delete_period %v, node_traversal %v)",
			c.ActiveRouteTimeout, c.DeletePeriod, c.NodeTraversal)
	}
	if c.MaxDenom < 2 {
		return fmt.Errorf("srp: max_denom %d must be >= 2", c.MaxDenom)
	}
	if c.HelloInterval != 0 && c.HelloInterval < time.Millisecond {
		// Start jitters hellos by Rand.Int63n(HelloInterval/4), which
		// needs a positive argument; a sub-millisecond beacon period is
		// nonsense anyway.
		return fmt.Errorf("srp: hello_interval %v must be 0 (disabled) or >= 1ms", c.HelloInterval)
	}
	if c.RreqRetries < 0 || c.QueueCap < 1 || c.MaxSalvage < 0 ||
		c.MinReplyHops < 0 || c.DiscoveryHoldDown < 0 || c.HelloInterval < 0 ||
		c.HelloFanout < 0 {
		return fmt.Errorf("srp: rreq_retries %d, queue_cap %d, max_salvage %d, min_reply_hops %d, discovery_holddown %v, hello_interval %v, hello_fanout %d out of range",
			c.RreqRetries, c.QueueCap, c.MaxSalvage, c.MinReplyHops, c.DiscoveryHoldDown, c.HelloInterval, c.HelloFanout)
	}
	if c.Multipath != PolicyMinHop && c.Multipath != PolicyRoundRobin && c.Multipath != PolicyRandom {
		return fmt.Errorf("srp: multipath policy %d unknown (0 min-hop, 1 round-robin, 2 random)", c.Multipath)
	}
	return nil
}

// Protocol is one node's SRP instance.
type Protocol struct {
	netstack.BaseProtocol
	cfg  Config
	node *netstack.Node
	self netstack.NodeID

	// mySeq is this node's destination-controlled sequence number for
	// itself, starting at 1 (Definition 7); seqIncrements counts resets
	// for Fig. 7.
	mySeq         label.SeqNo
	seqIncrements uint64

	rreqID uint32
	routes map[netstack.NodeID]*route
	rreqs  map[rreqKey]*rreqState
	// disc owns the pending discoveries, their packet queues, and the
	// post-failure hold-down.
	disc *rcommon.DiscoveryTable
	// rreqLimit and rerrLimit enforce RREQ_RATELIMIT / RERR_RATELIMIT of
	// the AODV framework SRP's messaging follows.
	rreqLimit   rcommon.RateLimiter
	rerrLimit   rcommon.RateLimiter
	sweeper     rcommon.Beaconer
	helloBeacon rcommon.Beaconer
	started     bool
	// helloCursor rotates the HelloFanout window over the (sorted) active
	// destinations, so which routes a HELLO advertises is deterministic
	// instead of following map iteration order.
	helloCursor uint32

	// stats for analysis.
	statRREQ, statRREP, statRERR, statRACK uint64
	statOrderViolations                    uint64
	maxDenomSeen                           uint32
}

var _ netstack.Protocol = (*Protocol)(nil)

// New returns an SRP instance with the given configuration.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:       cfg,
		mySeq:     1,
		routes:    make(map[netstack.NodeID]*route),
		rreqs:     make(map[rreqKey]*rreqState),
		disc:      rcommon.NewDiscoveryTable(cfg.QueueCap, cfg.RreqRetries, cfg.DiscoveryHoldDown),
		rreqLimit: rcommon.RateLimiter{Cap: cfg.RreqRateLimit},
		rerrLimit: rcommon.RateLimiter{Cap: 10},
	}
}

// Attach implements netstack.Protocol.
func (p *Protocol) Attach(n *netstack.Node) {
	p.node = n
	p.self = n.ID()
	p.disc.Attach(n)
}

// Start implements netstack.Protocol. SRP as simulated in the paper has no
// periodic messaging; only a slow sweep reclaims expired computation state.
// When HelloInterval is set, periodic Hello advertisements run too.
// Starting twice is a no-op.
func (p *Protocol) Start() {
	if p.started {
		return
	}
	p.started = true
	p.sweeper.StartEvery(p.node, 10*time.Second, p.sweep)

	if p.cfg.HelloInterval > 0 {
		p.helloBeacon.Start(p.node,
			sim.Time(p.node.Rand().Int63n(int64(p.cfg.HelloInterval))),
			func() sim.Time {
				jitter := sim.Time(p.node.Rand().Int63n(int64(p.cfg.HelloInterval) / 4))
				return p.cfg.HelloInterval + jitter
			},
			p.sendHello)
	}
}

// sendHello broadcasts this node's orderings for up to HelloFanout active
// destinations.
func (p *Protocol) sendHello() {
	now := p.node.Now()
	var dsts []netstack.NodeID
	for dst, r := range p.routes {
		if !r.assigned || !r.active(now) {
			continue
		}
		dsts = append(dsts, dst)
	}
	sortNodeIDs(dsts)
	limit := len(dsts)
	if p.cfg.HelloFanout > 0 && limit > p.cfg.HelloFanout {
		limit = p.cfg.HelloFanout
	}
	h := &hello{}
	for k := 0; k < limit; k++ {
		dst := dsts[(int(p.helloCursor)+k)%len(dsts)]
		r := p.routes[dst]
		h.Entries = append(h.Entries, helloEntry{Dst: dst, SN: r.order.SN, F: r.order.FD, D: r.dist})
	}
	p.helloCursor += uint32(limit)
	if len(h.Entries) == 0 {
		return
	}
	p.node.BroadcastControl(h.size(), h)
}

// handleHello applies each advertised ordering via Procedure 3 with
// C = Unassigned.
func (p *Protocol) handleHello(from netstack.NodeID, h *hello) {
	for _, e := range h.Entries {
		if e.Dst == p.self {
			continue
		}
		adv := label.Order{SN: e.SN, FD: e.F}
		p.setRoute(from, e.Dst, adv, e.D+1, label.Unassigned, p.cfg.ActiveRouteTimeout)
	}
}

// SeqnoDelta reports how many times this node incremented its own sequence
// number (Fig. 7's metric; identically zero for SRP in the paper's runs).
func (p *Protocol) SeqnoDelta() uint64 { return p.seqIncrements }

// MaxDenominator reports the largest fraction denominator this node ever
// adopted (the paper observed a maximum below 840 million).
func (p *Protocol) MaxDenominator() uint32 { return p.maxDenomSeen }

// ControlBreakdown reports how many RREQ, RREP, and RERR transmissions this
// node made, for experiment diagnostics.
func (p *Protocol) ControlBreakdown() (rreq, rrep, rerr uint64) {
	return p.statRREQ, p.statRREP, p.statRERR
}

// OrderViolations reports how often the Theorem 1 guard rejected a label
// that would have increased — zero in a correct implementation.
func (p *Protocol) OrderViolations() uint64 { return p.statOrderViolations }

func (p *Protocol) sweep() {
	now := p.node.Now()
	for k, st := range p.rreqs {
		if st.expiry <= now {
			delete(p.rreqs, k)
		}
	}
	for dst, r := range p.routes {
		if !r.active(now) && r.orderExpiry != 0 && r.orderExpiry <= now {
			delete(p.routes, dst)
		}
	}
}

// rt returns the route entry for dst, creating it if needed.
func (p *Protocol) rt(dst netstack.NodeID) *route {
	r, ok := p.routes[dst]
	if !ok {
		r = &route{succ: make(map[netstack.NodeID]*successor)}
		p.routes[dst] = r
	}
	return r
}

// order returns this node's ordering for dst; for itself it is the
// destination label (mySeq, 0/1) per Definition 7.
func (p *Protocol) order(dst netstack.NodeID) label.Order {
	if dst == p.self {
		return label.Destination(p.mySeq)
	}
	if r, ok := p.routes[dst]; ok && r.assigned {
		return r.order
	}
	return label.Unassigned
}

// --- Data plane -------------------------------------------------------

// OriginateData implements netstack.Protocol.
func (p *Protocol) OriginateData(pkt *netstack.DataPacket) {
	p.sendOrDiscover(pkt)
}

// RecvData implements netstack.Protocol.
func (p *Protocol) RecvData(from netstack.NodeID, pkt *netstack.DataPacket) {
	if pkt.Dst == p.self {
		pkt.Hops++
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.Hops++
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.node.DropData(pkt, rcommon.DropTTL)
		return
	}
	r := p.rt(pkt.Dst)
	next, ok := r.pick(p.cfg.Multipath, p.node.Rand(), p.node.Now())
	if !ok {
		// §II route errors: unicast a RERR to the data packet's last
		// hop; it is repeated for each such packet, so no reliability
		// is needed.
		re := &rerr{Dests: []netstack.NodeID{pkt.Dst}}
		p.node.UnicastControl(from, re.size(), re)
		p.statRERR++
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	p.refresh(r, next)
	p.node.ForwardData(next, pkt)
}

// sendOrDiscover forwards pkt if a route is active, else queues it behind a
// route discovery (Procedure 1).
func (p *Protocol) sendOrDiscover(pkt *netstack.DataPacket) {
	r := p.rt(pkt.Dst)
	if next, ok := r.pick(p.cfg.Multipath, p.node.Rand(), p.node.Now()); ok {
		p.refresh(r, next)
		p.node.ForwardData(next, pkt)
		return
	}
	p.disc.Enqueue(pkt, false, p.solicit)
}

// refresh extends the lifetime of a successor in use.
func (p *Protocol) refresh(r *route, next netstack.NodeID) {
	if s, ok := r.succ[next]; ok {
		s.expiry = p.node.Now() + p.cfg.ActiveRouteTimeout
	}
}

// DataFailed implements netstack.Protocol: link-layer loss detection. The
// next hop is declared broken for every destination, and the packet-cache
// heuristic reroutes the dropped packet (§V).
func (p *Protocol) DataFailed(to netstack.NodeID, pkt *netstack.DataPacket) {
	p.linkBreak(to)
	if !p.cfg.UsePacketCache || pkt.Salvaged >= p.cfg.MaxSalvage {
		p.node.DropData(pkt, rcommon.DropLinkLost)
		return
	}
	pkt.Salvaged++
	p.sendOrDiscover(pkt)
}

// ControlFailed implements netstack.Protocol: a lost unicast control packet
// also marks the link broken. RREPs are not retransmitted; the requester's
// retry timer recovers.
func (p *Protocol) ControlFailed(to netstack.NodeID, msg any) {
	p.linkBreak(to)
}

// linkBreak removes `to` as successor for all destinations and broadcasts a
// RERR for those that became invalid.
func (p *Protocol) linkBreak(to netstack.NodeID) {
	now := p.node.Now()
	var lost []netstack.NodeID
	for dst, r := range p.routes {
		if _, ok := r.succ[to]; !ok {
			continue
		}
		if r.dropSuccessor(to, now) {
			r.orderExpiry = now + p.cfg.DeletePeriod
			lost = append(lost, dst)
		}
	}
	if len(lost) > 0 && p.rerrLimit.Allow(now) {
		sortNodeIDs(lost) // deterministic RERR content whatever the map order
		e := &rerr{Dests: lost}
		p.node.BroadcastControl(e.size(), e)
		p.statRERR++
	}
}

// --- Solicitation (Procedures 1 and 2) --------------------------------

// solicit issues a RREQ for pd's destination (Procedure 1). When the
// origination cap is hit the discovery is deferred, not abandoned.
func (p *Protocol) solicit(pd *rcommon.Discovery) {
	if !p.rreqLimit.Allow(p.node.Now()) {
		p.disc.Defer(pd, 200*time.Millisecond, p.solicit)
		return
	}
	p.rreqID++
	key := rreqKey{src: p.self, id: p.rreqID}
	p.rreqs[key] = &rreqState{
		cached:  label.Unassigned, // M_k = infinity at the requester
		lastHop: p.self,
		active:  true,
		expiry:  p.node.Now() + p.cfg.DeletePeriod,
	}
	ttl := p.cfg.TTLs[min(pd.Attempt, len(p.cfg.TTLs)-1)]
	r := &rreq{
		Src:    p.self,
		RreqID: p.rreqID,
		Dst:    pd.Dst,
		TTL:    ttl,
		// Advertisement for self: own destination label.
		SrcSeq:   p.mySeq,
		LF:       frac.Zero,
		LD:       0,
		Lifetime: p.cfg.ActiveRouteTimeout,
	}
	if o := p.order(pd.Dst); !o.IsUnassigned() {
		r.DstSeq = o.SN
		r.F = o.FD
		if p.cfg.UseLie {
			r.F = lie(o.FD)
		}
	} else {
		r.Flags |= flagU
	}
	p.statRREQ++
	p.node.BroadcastControl(rreqSize, r)

	// Binary exponential backoff across attempts, per the AODV
	// framework's retry rule.
	wait := 2 * sim.Time(ttl) * p.cfg.NodeTraversal << uint(pd.Attempt)
	pd.Timer = p.node.After(wait, func() { p.disc.Retry(pd, p.solicit, nil) })
}

// RecvControl implements netstack.Protocol.
func (p *Protocol) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		p.handleRREQ(from, m)
	case *rrep:
		p.handleRREP(from, m)
	case *rerr:
		p.handleRERR(from, m)
	case *rack:
		p.statRACK++
	case *hello:
		p.handleHello(from, m)
	}
}

// handleRREQ implements Procedure 2 (relay solicitation) plus destination
// and intermediate replies (SDC).
func (p *Protocol) handleRREQ(from netstack.NodeID, r *rreq) {
	if r.Age >= p.cfg.DeletePeriod || r.Src == p.self {
		return
	}
	// Process the advertisement piece for the source (Procedure 3 with
	// C = Unassigned), building or refreshing the reverse route.
	if r.Flags&flagN == 0 {
		p.setRoute(from, r.Src, r.srcOrder(), r.LD+1, label.Unassigned, r.Lifetime)
	}

	key := rreqKey{src: r.Src, id: r.RreqID}
	if _, engaged := p.rreqs[key]; engaged {
		return // only passive nodes may become engaged (§III)
	}
	p.rreqs[key] = &rreqState{
		cached:  r.order(),
		lastHop: from,
		expiry:  p.node.Now() + p.cfg.DeletePeriod,
	}

	if r.Dst == p.self {
		p.destinationReply(from, r)
		return
	}
	if r.Flags&flagD == 0 && p.satisfiesSDC(r) {
		p.intermediateReply(from, r)
		return
	}
	p.relayRREQ(from, r)
}

// destinationReply answers a solicitation for this node (§III: "The
// destination T may respond to any solicitation for itself"). A set reset
// bit or a D-bit probe forces a larger sequence number than requested.
func (p *Protocol) destinationReply(from netstack.NodeID, r *rreq) {
	if r.Flags&(flagT|flagD) != 0 {
		if req := r.order().SN; req >= p.mySeq {
			p.mySeq = req + 1
			p.seqIncrements++
		}
	}
	rep := &rrep{
		Src:      r.Src,
		RreqID:   r.RreqID,
		Dst:      p.self,
		DstSeq:   p.mySeq,
		LF:       frac.Zero,
		LD:       0,
		Lifetime: p.cfg.ActiveRouteTimeout,
	}
	if p.cfg.RequestRack {
		rep.Flags |= flagA
	}
	p.statRREP++
	p.node.UnicastControl(from, rrepSize, rep)
}

// satisfiesSDC checks the Start Distance Condition plus the §V
// several-hops heuristic for intermediate replies.
func (p *Protocol) satisfiesSDC(r *rreq) bool {
	if r.D+1 < p.cfg.MinReplyHops {
		return false
	}
	rt, ok := p.routes[r.Dst]
	if !ok || !rt.assigned || !rt.active(p.node.Now()) {
		return false
	}
	if rt.order.SN > r.DstSeq {
		return true
	}
	return r.order().Precedes(rt.order) && r.Flags&flagT == 0
}

// intermediateReply advertises this node's own route to r.Dst.
func (p *Protocol) intermediateReply(from netstack.NodeID, r *rreq) {
	rt := p.routes[r.Dst]
	rep := &rrep{
		Src:      r.Src,
		RreqID:   r.RreqID,
		Dst:      r.Dst,
		DstSeq:   rt.order.SN,
		LF:       rt.order.FD,
		LD:       rt.dist,
		Lifetime: p.cfg.ActiveRouteTimeout,
	}
	if p.cfg.RequestRack {
		rep.Flags |= flagA
	}
	st := p.rreqs[rreqKey{src: r.Src, id: r.RreqID}]
	st.replied = true
	p.statRREP++
	p.node.UnicastControl(from, rrepSize, rep)
}

// relayRREQ implements Eqs. 9–11 and rebroadcasts (or unicasts a D-bit
// probe along the forward path).
func (p *Protocol) relayRREQ(from netstack.NodeID, r *rreq) {
	if r.TTL <= 1 {
		return
	}
	mine := p.order(r.Dst)
	z := *r
	z.TTL = r.TTL - 1
	z.D = r.D + 1 // Eq. 9, unit link costs
	z.Age = r.Age + p.cfg.NodeTraversal

	// Eq. 10: relay the minimum ordering of the node and the request.
	reqO := r.order()
	var zo label.Order
	switch {
	case r.Flags&flagU != 0 && mine.IsUnassigned():
		zo = label.Unassigned
	case mine.SN > reqO.SN:
		zo = mine
	case mine.SN == reqO.SN:
		zo = label.Min(mine, reqO)
	default:
		zo = reqO
	}
	if zo.IsUnassigned() {
		z.Flags |= flagU
	} else {
		z.Flags &^= flagU
		z.DstSeq, z.F = zo.SN, zo.FD
	}

	// Eq. 11: the reset-required bit.
	switch {
	case r.Flags&flagU != 0 && mine.IsUnassigned():
		z.Flags &^= flagT
	case mine.SN > reqO.SN:
		z.Flags &^= flagT
	case !reqO.Precedes(mine) && frac.SplitOverflows(r.F, mine.FD):
		z.Flags |= flagT
	}

	// Advertisement piece for the source: replace with this node's own
	// route to Src if active, else mark N (§III).
	if rt, ok := p.routes[r.Src]; ok && rt.assigned && rt.active(p.node.Now()) {
		z.SrcSeq, z.LF, z.LD = rt.order.SN, rt.order.FD, rt.dist
		z.Flags &^= flagN
		z.Lifetime = p.cfg.ActiveRouteTimeout
	} else {
		z.Flags |= flagN
	}

	p.statRREQ++
	if r.Flags&flagD != 0 {
		// Path-reset probe: travel the unicast forward path to Dst.
		if rt, ok := p.routes[r.Dst]; ok {
			if next, live := rt.best(p.node.Now()); live {
				p.node.UnicastControl(next, rreqSize, &z)
				return
			}
		}
		return
	}
	// Jitter desynchronizes neighbor rebroadcasts of the flood.
	jitter := sim.Time(p.node.Rand().Int63n(int64(10 * time.Millisecond)))
	p.node.After(jitter, func() { p.node.BroadcastControl(rreqSize, &z) })
}

// --- Advertisements (Procedures 3 and 4) ------------------------------

// handleRREP processes an advertisement traveling the reverse path.
func (p *Protocol) handleRREP(from netstack.NodeID, rep *rrep) {
	if rep.Age >= p.cfg.DeletePeriod {
		return
	}
	if rep.Flags&flagA != 0 {
		p.node.UnicastControl(from, rackSize, &rack{Src: rep.Src, RreqID: rep.RreqID})
	}
	terminus := rep.Src == p.self
	key := rreqKey{src: rep.Src, id: rep.RreqID}
	st := p.rreqs[key]

	// C^A_? — Unassigned at the terminus or without cached state.
	c := label.Unassigned
	if !terminus && st != nil {
		c = st.cached
	}

	mine := p.order(rep.Dst)
	adv := rep.order()
	if !mine.IsUnassigned() && !mine.Precedes(adv) {
		// Infeasible advertisement: issue a fresh advertisement from
		// this node's own label if it can (§III), else discard.
		if !terminus && st != nil && !st.replied {
			if rt, ok := p.routes[rep.Dst]; ok && rt.assigned && rt.active(p.node.Now()) && c.Precedes(rt.order) {
				st.replied = true
				p.forwardRREP(st.lastHop, rep, rt.order, rt.dist)
			}
		}
		return
	}

	g := p.setRoute(from, rep.Dst, adv, rep.LD+1, c, rep.Lifetime)
	if !g.Finite() {
		return // Procedure 3: drop the advertisement
	}

	if terminus {
		p.completeDiscovery(rep, g)
		return
	}
	if st == nil || st.replied {
		return // at most one reply per (source, rreqid) (Procedure 4)
	}
	st.replied = true
	rt := p.routes[rep.Dst]
	p.forwardRREP(st.lastHop, rep, g, rt.dist)
}

// forwardRREP relays an advertisement rewritten with this node's ordering
// (Procedure 4: O_y <- O_A, d_y <- d_A).
func (p *Protocol) forwardRREP(to netstack.NodeID, rep *rrep, o label.Order, dist int) {
	y := *rep
	y.DstSeq, y.LF, y.LD = o.SN, o.FD, dist
	y.Age = rep.Age + p.cfg.NodeTraversal
	p.statRREP++
	p.node.UnicastControl(to, rrepSize, &y)
}

// completeDiscovery flushes queued packets once the requester installs the
// route, and requests a path reset when the fraction has grown too deep.
func (p *Protocol) completeDiscovery(rep *rrep, g label.Order) {
	if g.FD.Den > p.cfg.MaxDenom {
		p.requestPathReset(rep.Dst)
	}
	// Any reply for the destination completes the discovery, even one
	// answering an earlier attempt: the route is already installed.
	pd, ok := p.disc.Complete(rep.Dst)
	if !ok {
		return
	}
	r := p.rt(rep.Dst)
	for _, pkt := range pd.Queue {
		next, live := r.best(p.node.Now())
		if !live {
			p.node.DropData(pkt, rcommon.DropNoRoute)
			continue
		}
		p.refresh(r, next)
		p.node.ForwardData(next, pkt)
	}
}

// requestPathReset sends a D-bit unicast RREQ along the forward path so the
// destination issues a reply with a larger sequence number (§III).
func (p *Protocol) requestPathReset(dst netstack.NodeID) {
	rt, ok := p.routes[dst]
	if !ok {
		return
	}
	next, live := rt.best(p.node.Now())
	if !live {
		return
	}
	p.rreqID++
	key := rreqKey{src: p.self, id: p.rreqID}
	p.rreqs[key] = &rreqState{
		cached:  label.Unassigned,
		lastHop: p.self,
		active:  true,
		expiry:  p.node.Now() + p.cfg.DeletePeriod,
	}
	probe := &rreq{
		Src:    p.self,
		RreqID: p.rreqID,
		Dst:    dst,
		DstSeq: rt.order.SN,
		F:      rt.order.FD,
		TTL:    len(p.cfg.TTLs) * 35,
		Flags:  flagD | flagN,
		SrcSeq: p.mySeq,
		LF:     frac.Zero,
	}
	p.statRREQ++
	p.node.UnicastControl(next, rreqSize, probe)
}

// setRoute implements Procedure 3: compute a new ordering via Algorithm 1,
// adopt it if finite, record the advertiser as successor, and prune
// out-of-order successors. It returns the computed ordering.
func (p *Protocol) setRoute(from, dst netstack.NodeID, adv label.Order, dist int, c label.Order, lifetime sim.Time) label.Order {
	if dst == p.self || adv.FD == frac.One {
		return label.Unassigned
	}
	mine := p.order(dst)
	if !mine.IsUnassigned() && !mine.Precedes(adv) {
		return label.Unassigned // infeasible (Theorem 2 guard)
	}
	g := newOrder(mine, c, adv, splitMode(p.cfg))
	if !g.Finite() {
		return g
	}
	// Theorem 1 guard: labels are non-increasing with time. Algorithm 1
	// guarantees this structurally (Theorem 6); the check is defensive
	// and counts violations instead of installing an unsafe label.
	if !mine.IsUnassigned() && !g.Equal(mine) && !mine.Precedes(g) {
		p.statOrderViolations++
		return label.Unassigned
	}
	r := p.rt(dst)
	r.assigned = true
	r.order = g
	r.dist = dist
	if g.FD.Den > p.maxDenomSeen {
		p.maxDenomSeen = g.FD.Den
	}
	if lifetime <= 0 {
		lifetime = p.cfg.ActiveRouteTimeout
	}
	r.succ[from] = &successor{order: adv, dist: dist, expiry: p.node.Now() + lifetime}
	r.pruneOutOfOrder(g)
	r.orderExpiry = 0
	return g
}

// handleRERR drops the sender as successor for the listed destinations and
// propagates for routes that became invalid.
func (p *Protocol) handleRERR(from netstack.NodeID, e *rerr) {
	now := p.node.Now()
	var lost []netstack.NodeID
	for _, dst := range e.Dests {
		r, ok := p.routes[dst]
		if !ok {
			continue
		}
		if _, uses := r.succ[from]; !uses {
			continue
		}
		if r.dropSuccessor(from, now) {
			r.orderExpiry = now + p.cfg.DeletePeriod
			lost = append(lost, dst)
		}
	}
	if len(lost) > 0 && p.rerrLimit.Allow(now) {
		out := &rerr{Dests: lost}
		p.node.BroadcastControl(out.size(), out)
		p.statRERR++
	}
}

// Orders exposes the node's (assigned) orderings per destination for
// invariant checking by the scenario harness.
func (p *Protocol) Orders() map[netstack.NodeID]label.Order {
	out := make(map[netstack.NodeID]label.Order, len(p.routes)+1)
	out[p.self] = label.Destination(p.mySeq)
	for dst, r := range p.routes {
		if r.assigned {
			out[dst] = r.order
		}
	}
	return out
}

// SuccessorsOf exposes the live successor set for a destination, for
// invariant checking and the multipath example.
func (p *Protocol) SuccessorsOf(dst netstack.NodeID) []netstack.NodeID {
	r, ok := p.routes[dst]
	if !ok {
		return nil
	}
	return r.successors(p.node.Now())
}

package srp

import (
	"testing"
	"time"

	"slr/internal/frac"
	"slr/internal/label"
	"slr/internal/netstack"
	"slr/internal/routing/rtest"
	"slr/internal/sim"
)

func TestHelloAdvertisementsBuildRoutes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HelloInterval = 2 * time.Second
	w := rtest.New(1, 120, factory(cfg), rtest.Chain(4, 100), nil)
	// One discovery seeds routes; hellos then propagate them to nodes
	// that never asked.
	w.Send(0, 3)
	w.Sim.RunUntil(15 * time.Second)
	// Node 2 should have learned a route toward 0 (it relayed, but
	// hellos also advertise and refresh).
	p2 := w.Nodes[2].Protocol().(*Protocol)
	if len(p2.SuccessorsOf(0)) == 0 && len(p2.SuccessorsOf(3)) == 0 {
		t.Fatal("hello advertisements built no routes at relay")
	}
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1", w.MX.DataRecv)
	}
}

func TestHelloRespectsFanout(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HelloInterval = time.Second
	cfg.HelloFanout = 1
	w := rtest.New(1, 200, factory(cfg), rtest.Grid(2, 3, 100), nil)
	w.Send(0, 5)
	w.Send(0, 4)
	w.Sim.RunUntil(10 * time.Second)
	// No assertion on exact counts — just exercise the path and keep
	// the invariant.
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestRackRequested(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RequestRack = true
	w := rtest.New(1, 120, factory(cfg), rtest.Chain(3, 100), nil)
	w.Send(0, 2)
	w.Sim.RunUntil(5 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1", w.MX.DataRecv)
	}
	// Every RREP hop draws a RACK: the reply traveled 2 hops, so the
	// repliers' RACK counters total 2.
	var racks uint64
	for _, n := range w.Nodes {
		racks += n.Protocol().(*Protocol).statRACK
	}
	if racks == 0 {
		t.Fatal("no RACKs received")
	}
}

func TestMultipathPolicies(t *testing.T) {
	now := sim.Time(0)
	r := &route{succ: map[netstack.NodeID]*successor{
		1: {dist: 2, expiry: sim.Time(time.Minute)},
		2: {dist: 1, expiry: sim.Time(time.Minute)},
		3: {dist: 2, expiry: sim.Time(time.Minute)},
	}}
	// MinHop always picks 2.
	for i := 0; i < 5; i++ {
		got, ok := r.pick(PolicyMinHop, nil, now)
		if !ok || got != 2 {
			t.Fatalf("minhop pick = %v", got)
		}
	}
	// RoundRobin cycles all three.
	seen := make(map[netstack.NodeID]bool)
	for i := 0; i < 6; i++ {
		got, ok := r.pick(PolicyRoundRobin, nil, now)
		if !ok {
			t.Fatal("rr pick failed")
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Fatalf("round robin visited %v, want all three", seen)
	}
	// Random uses the rng and stays within the live set.
	rng := sim.New(3).Rand()
	for i := 0; i < 20; i++ {
		got, ok := r.pick(PolicyRandom, rng, now)
		if !ok || got < 1 || got > 3 {
			t.Fatalf("random pick = %v", got)
		}
	}
}

func TestRoundRobinDeliveryStaysLoopFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Multipath = PolicyRoundRobin
	w := rtest.New(1, 160, factory(cfg), rtest.Grid(3, 3, 100), nil)
	for i := 0; i < 12; i++ {
		i := i
		w.Sim.At(sim.Time(i)*500*time.Millisecond, func() { w.Send(0, 8) })
	}
	w.Sim.RunUntil(15 * time.Second)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	if w.MX.DataRecv < 10 {
		t.Fatalf("delivered %d/12", w.MX.DataRecv)
	}
}

func TestHelloAdvertisementFeasibilityGuard(t *testing.T) {
	// A hello advertising an ordering that is not feasible for the
	// receiver must be ignored (Theorem 2 guard inside setRoute).
	p := New(DefaultConfig())
	w := rtest.New(1, 120, func(netstack.NodeID) netstack.Protocol { return p },
		rtest.Chain(1, 100), nil)
	_ = w
	// Give the node an assigned order for dst 9.
	r := p.rt(9)
	r.assigned = true
	r.order = label.Order{SN: 2, FD: frac.MustNew(1, 3)}
	// Stale advertisement: older seqno.
	p.handleHello(5, &hello{Entries: []helloEntry{{Dst: 9, SN: 1, F: frac.MustNew(1, 8), D: 1}}})
	if len(p.SuccessorsOf(9)) != 0 {
		t.Fatal("infeasible hello advertisement accepted")
	}
	// Feasible advertisement: same seqno, smaller fraction.
	p.handleHello(5, &hello{Entries: []helloEntry{{Dst: 9, SN: 2, F: frac.MustNew(1, 8), D: 1}}})
	if len(p.SuccessorsOf(9)) != 1 {
		t.Fatal("feasible hello advertisement rejected")
	}
}

package srp

import (
	"math/rand"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/label"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/routing/rtest"
	"slr/internal/sim"
)

func factory(cfg Config) rtest.Factory {
	return func(netstack.NodeID) netstack.Protocol { return New(cfg) }
}

func defaultWorld(t *testing.T, positions []geo.Point, models []mobility.Model) *rtest.World {
	t.Helper()
	return rtest.New(1, 120, factory(DefaultConfig()), positions, models)
}

func TestChainDiscoveryAndDelivery(t *testing.T) {
	w := defaultWorld(t, rtest.Chain(5, 100), nil)
	w.Send(0, 4)
	w.Sim.RunUntil(5 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1 (drops: %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if h := w.MX.MeanHops(); h != 4 {
		t.Fatalf("hops = %v, want 4", h)
	}
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestLabelsInTopologicalOrder(t *testing.T) {
	w := defaultWorld(t, rtest.Chain(5, 100), nil)
	w.Send(0, 4)
	w.Sim.RunUntil(5 * time.Second)
	// Collect orderings for destination 4 along the chain; every hop
	// must precede its successor (O_i ≺ O_{i+1} toward the destination).
	var prev label.Order
	for i := 0; i < 5; i++ {
		p := w.Nodes[i].Protocol().(*Protocol)
		o, ok := p.Orders()[netstack.NodeID(4)]
		if !ok {
			t.Fatalf("node %d unassigned for destination 4", i)
		}
		if i > 0 {
			if !prev.Precedes(o) {
				t.Fatalf("order violated at hop %d: %v then %v", i, prev, o)
			}
		}
		prev = o
	}
}

func TestRepliesComeFromDestinationLabel(t *testing.T) {
	w := defaultWorld(t, rtest.Chain(3, 100), nil)
	w.Send(0, 2)
	w.Sim.RunUntil(3 * time.Second)
	// Destination's own label is (1, 0/1) and never changes.
	d := w.Nodes[2].Protocol().(*Protocol)
	if got := d.Orders()[netstack.NodeID(2)]; got != label.Destination(1) {
		t.Fatalf("destination label = %v", got)
	}
	if d.SeqnoDelta() != 0 {
		t.Fatalf("destination incremented seqno %d times", d.SeqnoDelta())
	}
}

func TestBidirectionalTrafficUsesReversePath(t *testing.T) {
	w := defaultWorld(t, rtest.Chain(4, 100), nil)
	w.Send(0, 3)
	w.Sim.RunUntil(2 * time.Second)
	before := w.MX.ControlTx
	// The RREQ flood advertised node 0; node 3 should reach 0 with at
	// most a cheap discovery.
	w.Send(3, 0)
	w.Sim.RunUntil(4 * time.Second)
	if w.MX.DataRecv != 2 {
		t.Fatalf("delivered %d, want 2 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	_ = before
}

func TestLinkBreakRepairsWithPacketCache(t *testing.T) {
	// Node 2 of the chain 0-1-2-3-4 walks away at t=5s, breaking the
	// path; an alternate node 5 sits parallel to it. Packets keep
	// flowing after repair.
	pts := rtest.Chain(5, 100)
	models := make([]mobility.Model, 6)
	models[2] = mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: pts[2]},
		{At: 5 * time.Second, Pos: pts[2]},
		{At: 8 * time.Second, Pos: geo.Point{X: pts[2].X, Y: 5000}},
	})
	positions := append(pts, geo.Point{X: 200, Y: 60}) // node 5 parallel to 2
	w := defaultWorld(t, positions, models)

	for i := 0; i < 30; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() { w.Send(0, 4) })
	}
	w.Sim.RunUntil(40 * time.Second)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	// The first few packets and the last several must arrive; mid-break
	// ones may drop. Expect clearly more than half.
	if w.MX.DataRecv < 20 {
		t.Fatalf("delivered %d/30 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if w.Nodes[0].Protocol().(*Protocol).SeqnoDelta() != 0 {
		t.Fatal("SRP incremented a sequence number during local repair")
	}
}

func TestDiscoveryTimeoutDropsQueue(t *testing.T) {
	// Destination 9 does not exist; queued packets must drop after the
	// retry schedule.
	w := defaultWorld(t, rtest.Chain(3, 100), nil)
	w.Send(0, 9)
	w.Sim.RunUntil(time.Minute)
	if w.MX.DataDrops[rcommon.DropTimeout] != 1 {
		t.Fatalf("drops = %v, want one discovery-timeout", w.MX.DataDrops)
	}
}

func TestQueueCapDuringDiscovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueCap = 3
	w := rtest.New(1, 120, factory(cfg), rtest.Chain(2, 1000), nil) // partitioned
	for i := 0; i < 10; i++ {
		w.Send(0, 1)
	}
	w.Sim.RunUntil(time.Minute)
	if got := w.MX.DataDrops[rcommon.DropQueueFull]; got != 7 {
		t.Fatalf("queue-full drops = %d, want 7", got)
	}
}

func TestIntermediateReply(t *testing.T) {
	// After 0 reaches 4, node 5 (attached near 0's end) asks for 4; an
	// intermediate node with an active route may answer under SDC.
	pts := rtest.Chain(5, 100)
	pts = append(pts, geo.Point{X: 0, Y: 100}) // node 5 adjacent to 0 and 1
	w := defaultWorld(t, pts, nil)
	w.Send(0, 4)
	w.Sim.RunUntil(3 * time.Second)
	w.Send(5, 4)
	w.Sim.RunUntil(6 * time.Second)
	if w.MX.DataRecv != 2 {
		t.Fatalf("delivered %d, want 2 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestMultipathSuccessors(t *testing.T) {
	// On a 3x3 grid with diagonal-free spacing, repeated discoveries from
	// different corners give the center node multiple successors for the
	// far corner.
	w := defaultWorld(t, rtest.Grid(3, 3, 100), nil)
	for _, src := range []int{0, 1, 3} {
		src := src
		w.Sim.After(sim.Time(src)*time.Second, func() { w.Send(src, 8) })
	}
	w.Sim.RunUntil(10 * time.Second)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	if w.MX.DataRecv != 3 {
		t.Fatalf("delivered %d, want 3", w.MX.DataRecv)
	}
}

func TestMobileNetworkStaysLoopFree(t *testing.T) {
	// 25 random-waypoint nodes at constant motion; periodic checks must
	// never find a successor-graph cycle (Theorem 3).
	const n = 25
	terrain := geo.Terrain{Width: 900, Height: 300}
	positions := make([]geo.Point, n)
	models := make([]mobility.Model, n)
	rng := rand.New(rand.NewSource(99))
	for i := range models {
		models[i] = mobility.NewWaypoint(terrain, rng, 0, 20, 0)
	}
	w := rtest.New(3, 250, factory(DefaultConfig()), positions, models)

	for i := 0; i < 60; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() {
			src := i % n
			w.Send(src, (src+1+i%(n-1))%n)
			if err := w.CheckLoopFree(); err != nil {
				t.Error(err)
			}
		})
	}
	w.Sim.RunUntil(70 * time.Second)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	if w.MX.DataRecv == 0 {
		t.Fatal("no packets delivered in mobile network")
	}
}

func TestRERRInvalidatesStaleRoutes(t *testing.T) {
	// Break 3's link by teleporting node 3 away; node 1 forwarding data
	// must learn via RERR/loss detection and recover or drop, never loop.
	pts := rtest.Chain(4, 100)
	models := make([]mobility.Model, 4)
	models[3] = mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: pts[3]},
		{At: 2 * time.Second, Pos: pts[3]},
		{At: 2*time.Second + time.Millisecond, Pos: geo.Point{X: 9000}},
	})
	w := defaultWorld(t, pts, models)
	w.Send(0, 3)
	w.Sim.RunUntil(time.Second) // route established
	for i := 0; i < 10; i++ {
		i := i
		w.Sim.At(2*time.Second+sim.Time(i)*200*time.Millisecond, func() { w.Send(0, 3) })
	}
	w.Sim.RunUntil(time.Minute)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	// The route through the vanished node must be gone everywhere.
	for i := 0; i < 3; i++ {
		p := w.Nodes[i].Protocol().(*Protocol)
		for _, s := range p.SuccessorsOf(3) {
			if s == 3 && i != 2 {
				t.Errorf("node %d still lists 3 as direct successor", i)
			}
		}
	}
}

func TestSeqnoNeverIncrementsInBenignRuns(t *testing.T) {
	w := defaultWorld(t, rtest.Grid(4, 4, 100), nil)
	for i := 0; i < 20; i++ {
		i := i
		w.Sim.At(sim.Time(i)*500*time.Millisecond, func() { w.Send(i%16, 15-(i%16)) })
	}
	w.Sim.RunUntil(30 * time.Second)
	for i, n := range w.Nodes {
		if d := n.Protocol().(*Protocol).SeqnoDelta(); d != 0 {
			t.Errorf("node %d incremented seqno %d times", i, d)
		}
	}
}

func TestNoOrderViolationsInMobileRuns(t *testing.T) {
	// The Theorem 1 guard must never fire: Algorithm 1 cannot produce a
	// label increase (Theorem 6).
	const n = 20
	positions := make([]geo.Point, n)
	models := make([]mobility.Model, n)
	rng := rand.New(rand.NewSource(123))
	terrain := geo.Terrain{Width: 800, Height: 300}
	for i := range models {
		models[i] = mobility.NewWaypoint(terrain, rng, 0, 20, 0)
	}
	w := rtest.New(9, 250, factory(DefaultConfig()), positions, models)
	for i := 0; i < 50; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() {
			src := i % n
			w.Send(src, (src+1+i%(n-1))%n)
		})
	}
	w.Sim.RunUntil(60 * time.Second)
	for i, node := range w.Nodes {
		if v := node.Protocol().(*Protocol).OrderViolations(); v != 0 {
			t.Errorf("node %d: %d order violations", i, v)
		}
	}
}

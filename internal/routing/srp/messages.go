// Package srp implements the Split-label Routing Protocol (SRP), the
// paper's concrete instance of Split Label Routing (§III).
//
// SRP is an on-demand protocol in the AODV message framework (RREQ, RREP,
// RERR) whose loop-freedom comes from keeping per-destination node
// orderings O = (sequence number, feasible-distance proper fraction) in
// topological order. The dense fraction component lets a node "insert"
// itself between its reply and its cached request minimum by a mediant
// split (Algorithm 1), so broken routes are repaired without touching
// predecessors and — in practice — without ever incrementing the
// destination sequence number (Fig. 7 of the paper).
package srp

import (
	"slr/internal/frac"
	"slr/internal/label"
	"slr/internal/netstack"
	"slr/internal/sim"
)

// Flag bits of RREQ/RREP packets (§III).
type flags uint8

const (
	// flagU marks a solicitation whose issuer has no stored ordering for
	// the destination (Unknown).
	flagU flags = 1 << iota
	// flagN marks a RREQ that is no longer an advertisement for its
	// source, or a RREP whose reverse path could not be built.
	flagN
	// flagD forces the RREQ to travel to the destination itself, used to
	// request a path reset.
	flagD
	// flagT is the reset-required bit rr of a solicitation: an invariant
	// ordering violation could occur and the path must be reset with a
	// larger sequence number.
	flagT
	// flagA asks the next hop of a RREP to confirm receipt with a RACK.
	flagA
)

// rreq is the route request. The solicitation piece is
// {src, rreqID, dst, dstSeq, f, d, flags}; the advertisement piece (for the
// source) is {srcSeq, lf, ld, lifetime}, valid unless flagN is set.
type rreq struct {
	Src    netstack.NodeID
	RreqID uint32
	Dst    netstack.NodeID
	// DstSeq and F are the solicitation ordering O# for Dst (flagU: none).
	DstSeq label.SeqNo
	F      frac.F
	// D is the measured distance the request has traveled.
	D int
	// Advertisement for Src (invalid when flagN set): sequence number,
	// last-hop feasible distance, and last-hop measured distance.
	SrcSeq   label.SeqNo
	LF       frac.F
	LD       int
	Lifetime sim.Time
	Flags    flags
	TTL      int
	Age      sim.Time
}

// order returns the solicitation ordering O# (Definition 5 note: U bit means
// unassigned).
func (r *rreq) order() label.Order {
	if r.Flags&flagU != 0 {
		return label.Unassigned
	}
	return label.Order{SN: r.DstSeq, FD: r.F}
}

// srcOrder returns the advertisement ordering for the source.
func (r *rreq) srcOrder() label.Order {
	return label.Order{SN: r.SrcSeq, FD: r.LF}
}

// rrep is the route reply: an advertisement for Dst traveling back toward
// Src along the reverse path cached per (Src, RreqID).
type rrep struct {
	Src    netstack.NodeID
	RreqID uint32
	Dst    netstack.NodeID
	// DstSeq and LF are the advertised ordering O? for Dst.
	DstSeq   label.SeqNo
	LF       frac.F
	LD       int // advertised measured distance to Dst
	Lifetime sim.Time
	Flags    flags
	Age      sim.Time
}

// order returns the advertised ordering O?.
func (r *rrep) order() label.Order {
	return label.Order{SN: r.DstSeq, FD: r.LF}
}

// rerr reports broken destinations to predecessors, as in AODV.
type rerr struct {
	// Dests lists destinations now unreachable via the sender, with the
	// sequence number known at the sender.
	Dests []netstack.NodeID
}

// rack acknowledges a RREP hop (AODV's RREP-ACK carrying, per §III, the src
// and rreqid of the corresponding RREP). With a MAC that already ACKs
// unicasts it is informational; it is kept for protocol completeness.
type rack struct {
	Src    netstack.NodeID
	RreqID uint32
}

// hello is a periodic advertisement of this node's orderings for a subset
// of its active destinations. Procedure 3 treats Hello advertisements like
// RREP advertisements with no cached solicitation (C = Unassigned). The
// paper's simulations run without hellos; the option completes §III.
type hello struct {
	Entries []helloEntry
}

type helloEntry struct {
	Dst netstack.NodeID
	SN  label.SeqNo
	F   frac.F
	D   int
}

// Wire sizes in bytes, following the AODV packet formats extended with
// SRP's fraction (8 bytes) and 64-bit sequence-number fields.
const (
	rreqSize     = 52
	rrepSize     = 40
	rerrBaseSize = 4
	rerrPerDest  = 12
	rackSize     = 8
	helloBase    = 4
	helloPerDest = 20
)

func (h *hello) size() int { return helloBase + helloPerDest*len(h.Entries) }

func (e *rerr) size() int { return rerrBaseSize + rerrPerDest*len(e.Dests) }

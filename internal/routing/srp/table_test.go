package srp

import (
	"testing"
	"time"

	"slr/internal/frac"
	"slr/internal/label"
	"slr/internal/netstack"
	"slr/internal/sim"
)

func TestBestPrefersMinDistance(t *testing.T) {
	r := &route{succ: map[netstack.NodeID]*successor{
		1: {dist: 3, expiry: sim.Time(10 * time.Second)},
		2: {dist: 1, expiry: sim.Time(10 * time.Second)},
		3: {dist: 2, expiry: sim.Time(10 * time.Second)},
	}}
	got, ok := r.best(0)
	if !ok || got != 2 {
		t.Fatalf("best = %v, want 2", got)
	}
}

func TestBestSkipsExpired(t *testing.T) {
	now := sim.Time(5 * time.Second)
	r := &route{succ: map[netstack.NodeID]*successor{
		1: {dist: 1, expiry: sim.Time(time.Second)}, // expired
		2: {dist: 9, expiry: sim.Time(time.Minute)},
	}}
	got, ok := r.best(now)
	if !ok || got != 2 {
		t.Fatalf("best = %v, want 2", got)
	}
	if _, still := r.succ[1]; still {
		t.Fatal("expired successor not reaped")
	}
	if r.active(now) != true {
		t.Fatal("route with live successor not active")
	}
}

func TestBestTieBreaksByID(t *testing.T) {
	r := &route{succ: map[netstack.NodeID]*successor{
		7: {dist: 2, expiry: sim.Time(time.Minute)},
		3: {dist: 2, expiry: sim.Time(time.Minute)},
	}}
	got, _ := r.best(0)
	if got != 3 {
		t.Fatalf("best = %v, want 3 (lowest id)", got)
	}
}

func TestDropSuccessorInvalidates(t *testing.T) {
	r := &route{succ: map[netstack.NodeID]*successor{
		1: {dist: 1, expiry: sim.Time(time.Minute)},
	}}
	if invalid := r.dropSuccessor(1, 0); !invalid {
		t.Fatal("dropping last successor must invalidate")
	}
	if r.active(0) {
		t.Fatal("route still active")
	}
}

func TestPruneOutOfOrder(t *testing.T) {
	g := label.Order{SN: 2, FD: frac.MustNew(1, 2)}
	r := &route{succ: map[netstack.NodeID]*successor{
		// In order: g ≺ stored (stored fraction below 1/2, same sn).
		1: {order: label.Order{SN: 2, FD: frac.MustNew(1, 3)}, expiry: sim.Time(time.Minute)},
		// Out of order: larger fraction.
		2: {order: label.Order{SN: 2, FD: frac.MustNew(2, 3)}, expiry: sim.Time(time.Minute)},
		// Out of order: stale sequence number.
		3: {order: label.Order{SN: 1, FD: frac.MustNew(1, 4)}, expiry: sim.Time(time.Minute)},
	}}
	pruned := r.pruneOutOfOrder(g)
	if pruned != 2 {
		t.Fatalf("pruned %d, want 2", pruned)
	}
	if _, ok := r.succ[1]; !ok {
		t.Fatal("in-order successor pruned")
	}
}

package srp

import (
	"math/rand"

	"slr/internal/label"
	"slr/internal/netstack"
	"slr/internal/sim"
)

// PathPolicy selects among feasible successors when forwarding. The paper
// leaves multipath selection open ("Node A is free to use any successor
// contained in the successor table", §III); these are the provided
// policies.
type PathPolicy int

const (
	// PolicyMinHop forwards via the minimum measured distance successor
	// (the paper's "simple implementation ... single successor chosen
	// from the min-hop set").
	PolicyMinHop PathPolicy = iota
	// PolicyRoundRobin rotates across feasible successors, spreading
	// load over the multipath DAG.
	PolicyRoundRobin
	// PolicyRandom picks a uniform random feasible successor.
	PolicyRandom
)

// successor is one entry of the successor set S^A_T: a next hop with the
// ordering it advertised and its measured distance.
type successor struct {
	order  label.Order
	dist   int
	expiry sim.Time
}

// route is the per-destination state at a node: its own ordering O^A_T
// (Definition 3: "assigned" once present; it must be kept for at least
// DELETE_PERIOD after the route becomes invalid), the successor set, and
// the measured distance.
type route struct {
	assigned bool
	order    label.Order
	dist     int
	succ     map[netstack.NodeID]*successor
	// orderExpiry is when an invalid route's ordering may be forgotten.
	orderExpiry sim.Time
	// rrIndex cycles PolicyRoundRobin through the successor set.
	rrIndex uint32
}

// active reports whether the route has at least one live successor
// (Definition 2). It prunes every expired successor, not just those seen
// before the first live one: linkBreak and handleRERR make membership
// checks against succ, so the set's content after a call must be a
// function of event history alone, never of map iteration order.
func (r *route) active(now sim.Time) bool {
	live := false
	for n, s := range r.succ {
		if s.expiry > now {
			live = true
			continue
		}
		delete(r.succ, n)
	}
	return live
}

// best returns the live successor with minimum measured distance (the
// "min-hop set" uni-path rule of §III) and false if none.
func (r *route) best(now sim.Time) (netstack.NodeID, bool) {
	bestID := netstack.NodeID(-1)
	bestDist := int(^uint(0) >> 1)
	found := false
	for n, s := range r.succ {
		if s.expiry <= now {
			delete(r.succ, n)
			continue
		}
		if !found || s.dist < bestDist || (s.dist == bestDist && n < bestID) {
			bestID, bestDist, found = n, s.dist, true
		}
	}
	return bestID, found
}

// pick returns a successor per the policy; ok is false when none is live.
func (r *route) pick(policy PathPolicy, rng *rand.Rand, now sim.Time) (netstack.NodeID, bool) {
	switch policy {
	case PolicyRoundRobin:
		live := r.successors(now)
		if len(live) == 0 {
			return 0, false
		}
		r.rrIndex++
		return live[int(r.rrIndex)%len(live)], true
	case PolicyRandom:
		live := r.successors(now)
		if len(live) == 0 {
			return 0, false
		}
		return live[rng.Intn(len(live))], true
	default:
		return r.best(now)
	}
}

func sortNodeIDs(ids []netstack.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// successors returns the ids of live successors, sorted so callers that
// index into the list (round-robin and random picks, the multipath
// example) never see map-iteration order.
func (r *route) successors(now sim.Time) []netstack.NodeID {
	var out []netstack.NodeID
	for n, s := range r.succ {
		if s.expiry > now {
			out = append(out, n)
		}
	}
	sortNodeIDs(out)
	return out
}

// dropSuccessor removes next hop n; it reports whether the route is now
// invalid.
func (r *route) dropSuccessor(n netstack.NodeID, now sim.Time) bool {
	delete(r.succ, n)
	return !r.active(now)
}

// pruneOutOfOrder implements Algorithm 1 line 13: eliminate any successor i
// whose stored ordering is not preceded by g. It returns the number pruned.
func (r *route) pruneOutOfOrder(g label.Order) int {
	pruned := 0
	for n, s := range r.succ {
		if !g.Precedes(s.order) {
			delete(r.succ, n)
			pruned++
		}
	}
	return pruned
}

// rreqState is the per-(source, rreqID) computation state (§III): passive
// nodes have no entry; engaged and active nodes cache the solicitation
// ordering C (the M of SLR) and the last hop for the reverse path.
type rreqState struct {
	cached  label.Order // C^A_?: ordering of the relayed solicitation
	lastHop netstack.NodeID
	active  bool // true at the computation's originator
	replied bool // at most one reply forwarded per computation
	expiry  sim.Time
}

// rreqKey identifies a route computation.
type rreqKey struct {
	src netstack.NodeID
	id  uint32
}

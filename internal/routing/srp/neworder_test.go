package srp

import (
	"math"
	"testing"
	"testing/quick"

	"slr/internal/frac"
	"slr/internal/label"
)

func ord(sn label.SeqNo, num, den uint32) label.Order {
	if num == 0 {
		return label.Order{SN: sn, FD: frac.Zero}
	}
	return label.Order{SN: sn, FD: frac.MustNew(num, den)}
}

func TestNewOrderCaseII(t *testing.T) {
	// Algorithm 1 line 5: snA < sn? and snC < sn? -> O? + 1/1.
	g := newOrder(ord(1, 1, 2), ord(1, 2, 3), ord(2, 0, 1), splitMediant)
	if g != ord(2, 1, 2) {
		t.Fatalf("g = %v, want (2, 1/2)", g)
	}
	// Unassigned node, unassigned cache.
	g = newOrder(label.Unassigned, label.Unassigned, ord(1, 0, 1), splitMediant)
	if g != ord(1, 1, 2) {
		t.Fatalf("g = %v, want (1, 1/2)", g)
	}
}

func TestNewOrderCaseIII(t *testing.T) {
	// Line 7: snA < sn?, snC == sn? -> mediant of C and O? fractions.
	g := newOrder(ord(1, 1, 2), ord(2, 2, 3), ord(2, 1, 2), splitMediant)
	if g != ord(2, 3, 5) {
		t.Fatalf("g = %v, want (2, 3/5)", g)
	}
}

func TestNewOrderCaseIV(t *testing.T) {
	// Line 10: snA == sn?, C ≺ O_A -> keep own label.
	own := ord(2, 2, 3)
	g := newOrder(own, ord(2, 3, 4), ord(2, 1, 2), splitMediant)
	if g != own {
		t.Fatalf("g = %v, want keep %v", g, own)
	}
}

func TestNewOrderCaseV(t *testing.T) {
	// Line 12: snA == sn?, C not ≺ O_A -> split C with O?.
	g := newOrder(ord(2, 2, 3), ord(2, 2, 3), ord(2, 1, 2), splitMediant)
	if g != ord(2, 3, 5) {
		t.Fatalf("g = %v, want (2, 3/5)", g)
	}
}

func TestNewOrderInfeasibleSeqno(t *testing.T) {
	// snA > sn?: Case I — unordered result.
	g := newOrder(ord(3, 1, 2), label.Unassigned, ord(2, 0, 1), splitMediant)
	if !g.IsUnassigned() {
		t.Fatalf("g = %v, want unassigned", g)
	}
}

func TestNewOrderOverflowReturnsUnordered(t *testing.T) {
	big := label.Order{SN: 2, FD: frac.F{Num: math.MaxUint32 - 2, Den: math.MaxUint32 - 1}}
	adv := label.Order{SN: 2, FD: frac.F{Num: 1, Den: math.MaxUint32}}
	g := newOrder(ord(1, 1, 2), big, adv, splitMediant)
	if !g.IsUnassigned() {
		t.Fatalf("g = %v, want unassigned on overflow", g)
	}
}

func TestNewOrderFactTwoViolation(t *testing.T) {
	// If the cached C does not precede the advertisement (unstable
	// network), no in-order label exists; must return unordered.
	g := newOrder(ord(1, 1, 2), ord(2, 1, 3), ord(2, 1, 2), splitMediant)
	if !g.IsUnassigned() {
		t.Fatalf("g = %v, want unassigned when C does not precede O?", g)
	}
}

func TestNewOrderFareyProducesSimplerFractions(t *testing.T) {
	c, adv := ord(2, 7, 9), ord(2, 5, 8)
	med := newOrder(ord(1, 1, 2), c, adv, splitMediant)
	fay := newOrder(ord(1, 1, 2), c, adv, splitFarey)
	if med.IsUnassigned() || fay.IsUnassigned() {
		t.Fatal("unexpected unordered result")
	}
	if fay.FD.Den > med.FD.Den {
		t.Fatalf("farey %v has larger denominator than mediant %v", fay.FD, med.FD)
	}
	// The result sits strictly between: below C's fraction, above the
	// advertised one (c ≺ g ≺ adv in Definition 5's order).
	if !c.Precedes(fay) || !fay.Precedes(adv) {
		t.Fatalf("farey %v not between %v and %v", fay, c, adv)
	}
}

func TestNewOrderMaintainsOrderProperty(t *testing.T) {
	// For any feasible advertisement and cached ordering satisfying
	// Facts 1 and 2, a finite result must satisfy Eqs. 3–5:
	// adv ≺ G, G ⪯ own, G "≺-compatible" with C (C ≺ G or G = own ≺ C
	// ... precisely: Eq. 4 requires C ≺ G unless at terminus).
	mk := func(sn uint8, n, d uint32) label.Order {
		d = d%997 + 2
		n = n % d
		if n == 0 {
			n = 1
		}
		return label.Order{SN: label.SeqNo(sn%4 + 1), FD: frac.MustNew(n, d)}
	}
	prop := func(a1 uint8, a2, a3 uint32, b1 uint8, b2, b3 uint32, c1 uint8, c2, c3 uint32) bool {
		own, c, adv := mk(a1, a2, a3), mk(b1, b2, b3), mk(c1, c2, c3)
		if !own.Precedes(adv) || !c.Precedes(adv) {
			return true // preconditions (Facts 1–2) not met
		}
		g := newOrder(own, c, adv, splitMediant)
		if g.IsUnassigned() {
			return true // overflow path is always allowed
		}
		// Eq. 5: the advertised label stays strictly below G.
		if !g.Precedes(adv) {
			return false
		}
		// Eq. 3: labels are non-increasing — G equals the old label or
		// sits strictly below it in the DAG.
		if !(g.Equal(own) || own.Precedes(g)) {
			return false
		}
		// Eq. 4: G stays strictly below the cached request minimum.
		if !c.Precedes(g) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestLie(t *testing.T) {
	tests := []struct{ in, want frac.F }{
		{frac.MustNew(2, 3), frac.MustNew(1, 2)},
		{frac.MustNew(5, 8), frac.MustNew(4, 7)},
		{frac.MustNew(1, 2), frac.MustNew(9999, 19999)},
		{frac.Zero, frac.Zero},
		{frac.One, frac.One},
	}
	for _, tt := range tests {
		if got := lie(tt.in); got != tt.want {
			t.Errorf("lie(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestLieIsAlwaysBelow(t *testing.T) {
	prop := func(n, d uint32) bool {
		d = d%100000 + 2
		n = n % d
		if n == 0 {
			n = 1
		}
		f := frac.MustNew(n, d)
		l := lie(f)
		return l.Less(f) && l.Valid()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestLieOverflowGuard(t *testing.T) {
	f := frac.F{Num: 1, Den: math.MaxUint32 - 1}
	if got := lie(f); got != f {
		t.Fatalf("lie near overflow = %v, want unchanged", got)
	}
}

// Package routing is the protocol registry: the five protocols of the
// paper's evaluation (SRP and its four baselines) registered by name with
// validated per-protocol parameter maps, exactly like the mobility,
// traffic, and radio-propagation model registries. internal/spec selects
// a protocol through Build, so a declarative scenario file can both name
// the protocol and tune its constants ("protocol_params") without any
// code knowing the concrete type — protocol-parameter sweeps are just
// spec files.
//
// Registration is centralized here rather than in per-protocol init
// functions so importing slr/internal/routing is sufficient to see every
// protocol; nothing needs blank imports.
package routing

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/aodv"
	"slr/internal/routing/dsr"
	"slr/internal/routing/ldr"
	"slr/internal/routing/olsr"
	"slr/internal/routing/srp"
)

// Spec selects a registered protocol by name and carries its parameter
// overrides. It is the protocol section of a declarative scenario spec.
type Spec struct {
	// Name names a registered protocol: "SRP", "LDR", "AODV", "DSR",
	// "OLSR" (case-insensitive).
	Name string
	// Params carries protocol-specific tuning knobs in spec units
	// (durations in seconds, booleans as 0/1); missing keys take the
	// protocol's published defaults, unknown keys are errors.
	Params map[string]float64
}

// Factory builds one node's protocol instance from the spec's parameter
// overrides. Each call must return a fresh instance: protocol state is
// strictly per node.
type Factory func(params map[string]float64) (netstack.Protocol, error)

var factories = registry.New[Factory]("routing protocol")

// Register adds a protocol factory under name. Registering a duplicate
// name panics: it is a wiring bug.
func Register(name string, f Factory) { factories.Register(name, f) }

// Protocols returns the registered protocol names, sorted.
func Protocols() []string { return factories.Names() }

// Build constructs one node's instance of the protocol selected by s.
func Build(s Spec) (netstack.Protocol, error) {
	f, ok := factories.Get(strings.ToUpper(s.Name))
	if !ok {
		return nil, fmt.Errorf("routing: unknown protocol %q (registered: %v)", s.Name, Protocols())
	}
	return f(s.Params)
}

// Validate checks that s names a registered protocol and that its params
// resolve to a buildable configuration, without keeping the instance —
// the spec-load-time check that makes a bad scenario fail before any
// simulator exists.
func Validate(s Spec) error {
	_, err := Build(s)
	return err
}

// ParamsFlag is a flag.Value collecting repeated "name=value" protocol
// parameter overrides — the CLI form of a spec's protocol_params map,
// shared by cmd/slrsim and cmd/experiments (-pparam).
type ParamsFlag map[string]float64

// String renders the collected overrides in sorted key order.
func (f ParamsFlag) String() string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%v", k, f[k]) //slrlint:allow floatfmt flag display round-trips Set's parse; shortest form is the natural rendering
	}
	return strings.Join(parts, ",")
}

// Set parses one "name=value" pair.
func (f ParamsFlag) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("parameter %s: %w", name, err)
	}
	f[name] = v
	return nil
}

// MergeParams overlays override onto base without mutating either,
// returning the combined map (or base itself when there is nothing to
// overlay).
func MergeParams(base, override map[string]float64) map[string]float64 {
	if len(override) == 0 {
		return base
	}
	merged := make(map[string]float64, len(base)+len(override))
	for k, v := range base {
		merged[k] = v
	}
	for k, v := range override {
		merged[k] = v
	}
	return merged
}

func init() {
	Register("SRP", func(params map[string]float64) (netstack.Protocol, error) {
		cfg, err := srp.ConfigFromParams(params)
		if err != nil {
			return nil, err
		}
		return srp.New(cfg), nil
	})
	Register("LDR", func(params map[string]float64) (netstack.Protocol, error) {
		cfg, err := ldr.ConfigFromParams(params)
		if err != nil {
			return nil, err
		}
		return ldr.New(cfg), nil
	})
	Register("AODV", func(params map[string]float64) (netstack.Protocol, error) {
		cfg, err := aodv.ConfigFromParams(params)
		if err != nil {
			return nil, err
		}
		return aodv.New(cfg), nil
	})
	Register("DSR", func(params map[string]float64) (netstack.Protocol, error) {
		cfg, err := dsr.ConfigFromParams(params)
		if err != nil {
			return nil, err
		}
		return dsr.New(cfg), nil
	})
	Register("OLSR", func(params map[string]float64) (netstack.Protocol, error) {
		cfg, err := olsr.ConfigFromParams(params)
		if err != nil {
			return nil, err
		}
		return olsr.New(cfg), nil
	})
}

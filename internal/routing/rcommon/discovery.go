package rcommon

import (
	"slr/internal/netstack"
	"slr/internal/sim"
)

// Discovery is one in-flight route discovery: the packets queued behind
// it, the retry attempt counter, and the timer driving the next retry.
type Discovery struct {
	Dst     netstack.NodeID
	Attempt int
	Timer   sim.Timer
	Queue   []*netstack.DataPacket
	// Repair marks a local-repair discovery started by an intermediate
	// node (AODV §V); the owner consults it when the discovery is
	// abandoned.
	Repair bool
}

// DiscoveryTable owns the per-destination discovery state every on-demand
// protocol keeps: the pending map, the bounded packet queue behind each
// discovery, the retry budget, and the post-failure hold-down that stops
// saturated flows from flooding back-to-back failed searches.
//
// The table does the bookkeeping only — soliciting (building and
// broadcasting the RREQ, arming the retry timer) stays with the protocol,
// which receives the *Discovery to operate on.
type DiscoveryTable struct {
	node     *netstack.Node
	queueCap int
	retries  int
	holdFor  sim.Time
	pending  map[netstack.NodeID]*Discovery
	holdDown map[netstack.NodeID]sim.Time
}

// NewDiscoveryTable returns a table allowing queueCap packets behind each
// discovery, retries re-solicitations after the first attempt, and a
// holdFor hold-down after a discovery fails all retries.
func NewDiscoveryTable(queueCap, retries int, holdFor sim.Time) *DiscoveryTable {
	return &DiscoveryTable{
		queueCap: queueCap,
		retries:  retries,
		holdFor:  holdFor,
		pending:  make(map[netstack.NodeID]*Discovery),
		holdDown: make(map[netstack.NodeID]sim.Time),
	}
}

// Attach binds the table to its node; called from the protocol's Attach.
func (t *DiscoveryTable) Attach(n *netstack.Node) { t.node = n }

// Owns reports whether d is still the current discovery for its
// destination — the staleness check every retry and deferral callback
// performs before acting.
func (t *DiscoveryTable) Owns(d *Discovery) bool { return t.pending[d.Dst] == d }

// Enqueue routes pkt into the discovery machinery: queue it behind an
// existing discovery (dropping with DropQueueFull past the cap), drop it
// with DropNoRoute while the destination is held down, or start a fresh
// discovery and hand it to solicit.
func (t *DiscoveryTable) Enqueue(pkt *netstack.DataPacket, repair bool, solicit func(*Discovery)) {
	d, ok := t.pending[pkt.Dst]
	if ok {
		if len(d.Queue) >= t.queueCap {
			t.node.DropData(pkt, DropQueueFull)
			return
		}
		d.Queue = append(d.Queue, pkt)
		return
	}
	if until, held := t.holdDown[pkt.Dst]; held && t.node.Now() < until {
		t.node.DropData(pkt, DropNoRoute)
		return
	}
	d = &Discovery{Dst: pkt.Dst, Queue: []*netstack.DataPacket{pkt}, Repair: repair}
	t.pending[pkt.Dst] = d
	solicit(d)
}

// Defer re-arms d's timer to re-run solicit after delay — the path a
// rate-limited solicitation takes instead of transmitting.
func (t *DiscoveryTable) Defer(d *Discovery, delay sim.Time, solicit func(*Discovery)) {
	d.Timer = t.node.After(delay, func() {
		if t.Owns(d) {
			solicit(d)
		}
	})
}

// Retry advances d when its retry timer fires: re-solicit while attempts
// remain, otherwise abandon — drop every queued packet with DropTimeout,
// start the destination's hold-down, and invoke abandoned (which may be
// nil) for protocol-specific failure handling such as AODV's local-repair
// error report.
func (t *DiscoveryTable) Retry(d *Discovery, solicit, abandoned func(*Discovery)) {
	if !t.Owns(d) {
		return
	}
	d.Attempt++
	if d.Attempt > t.retries {
		delete(t.pending, d.Dst)
		t.holdDown[d.Dst] = t.node.Now() + t.holdFor
		for _, pkt := range d.Queue {
			t.node.DropData(pkt, DropTimeout)
		}
		if abandoned != nil {
			abandoned(d)
		}
		return
	}
	solicit(d)
}

// Complete ends the discovery for dst, canceling its retry timer and
// returning it so the protocol can flush the queued packets onto the
// fresh route. It returns false when no discovery was pending.
func (t *DiscoveryTable) Complete(dst netstack.NodeID) (*Discovery, bool) {
	d, ok := t.pending[dst]
	if !ok {
		return nil, false
	}
	t.node.Cancel(d.Timer)
	delete(t.pending, dst)
	return d, true
}

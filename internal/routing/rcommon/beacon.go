package rcommon

import (
	"slr/internal/netstack"
	"slr/internal/sim"
)

// Beaconer drives one periodic control schedule — HELLO broadcasts, TC
// floods, state sweeps — re-arming a single pooled sim timer in place
// (sim.Reschedule) instead of allocating a fresh event per period.
//
// Each tick runs fire() first and then draws the next gap from next(), so
// a protocol whose period carries jitter consumes its RNG at exactly the
// same point in the event sequence as the hand-rolled
// "fire; After(interval+jitter, tick)" loops the Beaconer replaces.
type Beaconer struct {
	node  *netstack.Node
	timer sim.Timer
	fire  func()
	next  func() sim.Time
	tick  func()
}

// Start schedules the first beacon `initial` from now, then fires every
// next() thereafter. Starting an already-running Beaconer is a no-op, so
// protocol Start methods are idempotent for free.
func (b *Beaconer) Start(n *netstack.Node, initial sim.Time, next func() sim.Time, fire func()) {
	if b.node != nil {
		return
	}
	b.node = n
	b.fire = fire
	b.next = next
	b.tick = func() {
		b.fire()
		b.timer = b.node.RescheduleAfter(b.timer, b.next(), b.tick)
	}
	b.timer = n.After(initial, b.tick)
}

// StartEvery runs fire every fixed interval, first firing `interval` from
// now — the shape of the periodic state sweeps.
func (b *Beaconer) StartEvery(n *netstack.Node, interval sim.Time, fire func()) {
	b.Start(n, interval, func() sim.Time { return interval }, fire)
}

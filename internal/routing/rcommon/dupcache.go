package rcommon

import (
	"slr/internal/netstack"
	"slr/internal/sim"
)

// DupCache suppresses duplicate processing of flooded control messages:
// each (originator, id) is acted on once and then remembered for a
// retention window. Protocols Sweep it from their periodic housekeeping.
//
// The cache is a flood-rate hot path (every received TC/RREQ probes it),
// so the key is packed into one uint64 — originators are registered node
// ids, dense and non-negative, so 32 bits each side loses nothing — and
// sightings are additionally queued in insertion order. Because the clock
// is monotone and the retention is fixed, insertion order is expiry order,
// so Sweep pops expired sightings from the queue head in O(expired)
// instead of iterating the whole map once per housekeeping tick.
type DupCache struct {
	m    map[uint64]sim.Time
	q    []dupEntry // insertion order == expiry order
	head int        // first live queue slot; compacted when past the midpoint
	ttl  sim.Time
}

type dupEntry struct {
	key uint64
	exp sim.Time
}

func dupKey(orig netstack.NodeID, id uint32) uint64 {
	return uint64(uint32(orig))<<32 | uint64(id)
}

// NewDupCache returns a cache retaining sightings for ttl.
func NewDupCache(ttl sim.Time) *DupCache {
	return &DupCache{m: make(map[uint64]sim.Time), ttl: ttl}
}

// Witness records the first sighting of (orig, id) and reports whether it
// was new; a repeat sighting inside the retention window returns false.
func (c *DupCache) Witness(orig netstack.NodeID, id uint32, now sim.Time) bool {
	key := dupKey(orig, id)
	if _, dup := c.m[key]; dup {
		return false
	}
	c.insert(key, now+c.ttl)
	return true
}

// Mark records (orig, id) as seen without checking — originators mark
// their own floods before transmitting.
func (c *DupCache) Mark(orig netstack.NodeID, id uint32, now sim.Time) {
	c.insert(dupKey(orig, id), now+c.ttl)
}

func (c *DupCache) insert(key uint64, exp sim.Time) {
	c.m[key] = exp
	c.q = append(c.q, dupEntry{key: key, exp: exp})
}

// Sweep drops entries whose retention expired. A key re-seen after its
// first sighting expired appears in the queue twice; the stale queue entry
// is recognized by its mismatched deadline and skipped, so the refreshed
// sighting survives until its own deadline.
func (c *DupCache) Sweep(now sim.Time) {
	for c.head < len(c.q) && c.q[c.head].exp <= now {
		e := c.q[c.head]
		c.q[c.head] = dupEntry{}
		c.head++
		if exp, ok := c.m[e.key]; ok && exp == e.exp {
			delete(c.m, e.key)
		}
	}
	if c.head == len(c.q) {
		c.q, c.head = c.q[:0], 0
	} else if c.head > len(c.q)/2 {
		n := copy(c.q, c.q[c.head:])
		c.q, c.head = c.q[:n], 0
	}
}

// Len returns the number of retained sightings.
func (c *DupCache) Len() int { return len(c.m) }

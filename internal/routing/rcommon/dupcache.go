package rcommon

import (
	"slr/internal/netstack"
	"slr/internal/sim"
)

// DupKey identifies one flooded control message: its originator and the
// originator-scoped id (RREQ id, TC sequence number).
type DupKey struct {
	Orig netstack.NodeID
	ID   uint32
}

// DupCache suppresses duplicate processing of flooded control messages:
// each (originator, id) is acted on once and then remembered for a
// retention window. Protocols Sweep it from their periodic housekeeping.
type DupCache struct {
	m   map[DupKey]sim.Time
	ttl sim.Time
}

// NewDupCache returns a cache retaining sightings for ttl.
func NewDupCache(ttl sim.Time) *DupCache {
	return &DupCache{m: make(map[DupKey]sim.Time), ttl: ttl}
}

// Witness records the first sighting of (orig, id) and reports whether it
// was new; a repeat sighting inside the retention window returns false.
func (c *DupCache) Witness(orig netstack.NodeID, id uint32, now sim.Time) bool {
	key := DupKey{Orig: orig, ID: id}
	if _, dup := c.m[key]; dup {
		return false
	}
	c.m[key] = now + c.ttl
	return true
}

// Mark records (orig, id) as seen without checking — originators mark
// their own floods before transmitting.
func (c *DupCache) Mark(orig netstack.NodeID, id uint32, now sim.Time) {
	c.m[DupKey{Orig: orig, ID: id}] = now + c.ttl
}

// Sweep drops entries whose retention expired.
func (c *DupCache) Sweep(now sim.Time) {
	for k, t := range c.m {
		if t <= now {
			delete(c.m, k)
		}
	}
}

// Len returns the number of retained sightings.
func (c *DupCache) Len() int { return len(c.m) }

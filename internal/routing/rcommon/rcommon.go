// Package rcommon is the shared control-plane toolkit of the routing
// protocols: the machinery that every on-demand or proactive MANET
// protocol reimplements around its actual routing logic. It owns
//
//   - the canonical routing-layer drop-reason vocabulary (drops.go),
//   - the route-discovery bookkeeping — pending queues, retry counting,
//     and post-failure hold-down (discovery.go),
//   - sliding-window rate limiters for RREQ/RERR origination (ratelimit.go),
//   - the periodic beaconer driving HELLO/TC/sweep schedules on re-armed
//     sim timers (beacon.go),
//   - the hello/link-liveness neighbor table (neighbors.go),
//   - duplicate-flood suppression keyed on (originator, id) (dupcache.go),
//   - and sequence-number wraparound comparisons (seqno.go).
//
// Every helper is a pure extraction: porting a protocol onto rcommon must
// not change its packet trace. Helpers therefore never draw randomness
// themselves — jitter stays in protocol callbacks so each protocol's RNG
// draw order is exactly what it was before the extraction — and they
// schedule timers at the same points in the event sequence the inlined
// code did.
package rcommon

import (
	"time"

	"slr/internal/sim"
)

// Seconds converts a spec-level float seconds value (the unit of every
// protocol parameter map) to simulation time.
func Seconds(v float64) sim.Time {
	return sim.Time(v * float64(time.Second))
}

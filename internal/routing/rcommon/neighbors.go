package rcommon

import (
	"slr/internal/netstack"
	"slr/internal/sim"
)

// Neighbor is one entry of a NeighborTable: hello-refreshed liveness plus
// the link-state facts proactive protocols advertise about it.
type Neighbor struct {
	// Sym marks the link symmetric: the neighbor's hello listed us.
	Sym bool
	// Expiry is the hello-liveness deadline; a neighbor whose hellos stop
	// ages out at Expiry.
	Expiry sim.Time
	// TwoHop maps the neighbor's own symmetric neighbors to their
	// liveness deadlines — the two-hop neighborhood MPR selection covers.
	TwoHop map[netstack.NodeID]sim.Time
	// TwoHopList mirrors TwoHop's key set as a flat slice so hot loops can
	// iterate it without map-iteration cost. The owning protocol rebuilds
	// it whenever it rewrites the key set; Expire keeps it in sync when
	// pruning. Protocols that never populate it simply leave it nil.
	TwoHopList []netstack.NodeID
	// TwoHopMax is a conservative upper bound on the ids in TwoHopList,
	// maintained by the writer on insert and never lowered by pruning. It
	// lets id-indexed scratch (MPR cover bitsets) be sized without
	// scanning the list.
	TwoHopMax netstack.NodeID
	// SelectsMe marks that the neighbor chose this node as multipoint
	// relay.
	SelectsMe bool
}

// NeighborTable tracks one node's neighbors with the two liveness signals
// of §V's evaluation: hello receipt (Touch extends Expiry) and link-layer
// delivery failure (Remove kills the entry immediately, without waiting
// for the hold time to expire).
//
// Iteration over All is map-ordered and therefore unordered; callers must
// keep every outcome order-independent (or sort), exactly as the
// protocol-local maps this table replaces required.
type NeighborTable struct {
	m map[netstack.NodeID]*Neighbor
	// horizon is a lower bound on every liveness deadline in the table —
	// neighbor expiries and two-hop expiries alike. Before it, a sweep
	// provably removes nothing and Expire returns immediately; each real
	// sweep recomputes the exact minimum. Touch maintains the bound for
	// the deadlines it writes; callers that write TwoHop deadlines
	// directly must report them via Observe.
	horizon sim.Time
}

// NewNeighborTable returns an empty table.
func NewNeighborTable() *NeighborTable {
	return &NeighborTable{m: make(map[netstack.NodeID]*Neighbor)}
}

// Len returns the number of entries, live or not yet expired-out.
func (t *NeighborTable) Len() int { return len(t.m) }

// Get returns the entry for id, if present.
func (t *NeighborTable) Get(id netstack.NodeID) (*Neighbor, bool) {
	nb, ok := t.m[id]
	return nb, ok
}

// Touch records hello receipt from id: the entry is created on first
// contact and its liveness deadline extended to expiry.
func (t *NeighborTable) Touch(id netstack.NodeID, expiry sim.Time) *Neighbor {
	nb, ok := t.m[id]
	if !ok {
		nb = &Neighbor{TwoHop: make(map[netstack.NodeID]sim.Time)}
		t.m[id] = nb
	}
	nb.Expiry = expiry
	t.Observe(expiry)
	return nb
}

// Observe lowers the sweep horizon to cover a liveness deadline written
// outside Touch (a caller-managed TwoHop entry). Deadlines at or past the
// current horizon need no reporting, but reporting them is harmless.
func (t *NeighborTable) Observe(expiry sim.Time) {
	if expiry < t.horizon {
		t.horizon = expiry
	}
}

// Remove drops id on link-layer failure evidence; it reports whether an
// entry existed.
func (t *NeighborTable) Remove(id netstack.NodeID) bool {
	if _, ok := t.m[id]; !ok {
		return false
	}
	delete(t.m, id)
	return true
}

// Expire ages out neighbors whose hellos stopped and prunes stale two-hop
// entries of the survivors. It reports whether anything changed. Sweeps
// before the horizon return immediately: no deadline in the table has
// passed, so a full scan would find nothing.
func (t *NeighborTable) Expire(now sim.Time) bool {
	if now < t.horizon {
		return false
	}
	const forever = sim.Time(1<<63 - 1)
	min := forever
	changed := false
	for id, nb := range t.m {
		if nb.Expiry <= now {
			delete(t.m, id)
			changed = true
			continue
		}
		if nb.Expiry < min {
			min = nb.Expiry
		}
		pruned := false
		for th, exp := range nb.TwoHop {
			if exp <= now {
				delete(nb.TwoHop, th)
				pruned = true
				changed = true
			} else if exp < min {
				min = exp
			}
		}
		if pruned && len(nb.TwoHopList) > 0 {
			kept := nb.TwoHopList[:0]
			for _, th := range nb.TwoHopList {
				if _, ok := nb.TwoHop[th]; ok {
					kept = append(kept, th)
				}
			}
			nb.TwoHopList = kept
		}
	}
	t.horizon = min
	return changed
}

// All exposes the underlying map for iteration. Outcomes of an iteration
// must not depend on its order.
func (t *NeighborTable) All() map[netstack.NodeID]*Neighbor { return t.m }

package rcommon

import "slices"

// The canonical routing-layer drop reasons. Every DropData call across the
// protocols must use one of these strings: they key Result.DropReasons and
// the JSONL/CSV drop_reasons output, and the conformance suite rejects any
// reason outside this vocabulary so ad-hoc per-protocol spellings cannot
// creep back in.
const (
	// DropNoRoute: no live route and no discovery to queue behind.
	DropNoRoute = "no-route"
	// DropTTL: the packet's hop budget ran out.
	DropTTL = "ttl-expired"
	// DropLinkLost: the MAC exhausted retries toward the next hop and the
	// protocol could not (or may not) salvage the packet.
	DropLinkLost = "link-lost"
	// DropQueueFull: the per-destination discovery queue was full.
	DropQueueFull = "queue-full"
	// DropTimeout: route discovery gave up after its last retry.
	DropTimeout = "discovery-timeout"
)

// DropReasons lists the vocabulary, sorted.
var DropReasons = []string{
	DropTimeout,
	DropLinkLost,
	DropNoRoute,
	DropQueueFull,
	DropTTL,
}

// KnownDropReason reports whether r belongs to the canonical vocabulary.
func KnownDropReason(r string) bool {
	return slices.Contains(DropReasons, r)
}

package rcommon

// SeqGT reports a fresher than b under 32-bit sequence-number wraparound
// (RFC 3561 §6.1): the signed difference decides, so freshness survives
// the counter rolling over.
func SeqGT(a, b uint32) bool { return int32(a-b) > 0 }

// SeqGE reports a at least as fresh as b under wraparound.
func SeqGE(a, b uint32) bool { return a == b || SeqGT(a, b) }

package rcommon

import (
	"time"

	"slr/internal/sim"
)

// RateLimiter is the sliding-window origination cap of the AODV framework
// (RREQ_RATELIMIT / RERR_RATELIMIT): at most Cap events per window,
// enforced over the exact timestamps of the recent events. A non-positive
// Cap disables the limiter. The zero value is a disabled limiter; set Cap
// (and leave Window zero for the framework's one-second window).
type RateLimiter struct {
	Cap    int
	Window sim.Time
	recent []sim.Time
}

// Allow reports whether an event may fire now, recording it when allowed.
func (r *RateLimiter) Allow(now sim.Time) bool {
	if r.Cap <= 0 {
		return true
	}
	window := r.Window
	if window <= 0 {
		window = time.Second
	}
	kept := r.recent[:0]
	for _, t := range r.recent {
		if now-t < window {
			kept = append(kept, t)
		}
	}
	r.recent = kept
	if len(kept) >= r.Cap {
		return false
	}
	r.recent = append(r.recent, now)
	return true
}

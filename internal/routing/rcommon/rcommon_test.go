package rcommon

import (
	"testing"
	"time"

	"slr/internal/sim"
)

func TestDropVocabulary(t *testing.T) {
	for _, r := range DropReasons {
		if !KnownDropReason(r) {
			t.Errorf("listed reason %q not recognized", r)
		}
	}
	for _, bad := range []string{"", "rreq-queue-full", "no route", "NO-ROUTE"} {
		if KnownDropReason(bad) {
			t.Errorf("reason %q should be unknown", bad)
		}
	}
}

func TestRateLimiterWindow(t *testing.T) {
	rl := RateLimiter{Cap: 2}
	now := sim.Time(0)
	if !rl.Allow(now) || !rl.Allow(now) {
		t.Fatal("first two events must pass")
	}
	if rl.Allow(now + 500*time.Millisecond) {
		t.Fatal("third event inside the window must be rejected")
	}
	if !rl.Allow(now + time.Second) {
		t.Fatal("event after the window must pass")
	}
	unlimited := RateLimiter{}
	for i := 0; i < 100; i++ {
		if !unlimited.Allow(0) {
			t.Fatal("non-positive cap must disable the limiter")
		}
	}
}

func TestDupCache(t *testing.T) {
	c := NewDupCache(30 * time.Second)
	if !c.Witness(1, 7, 0) {
		t.Fatal("first sighting must be new")
	}
	if c.Witness(1, 7, time.Second) {
		t.Fatal("repeat sighting inside retention must be suppressed")
	}
	c.Mark(2, 9, 0)
	if c.Witness(2, 9, time.Second) {
		t.Fatal("marked flood must read as seen")
	}
	c.Sweep(31 * time.Second)
	if c.Len() != 0 {
		t.Fatalf("sweep left %d entries", c.Len())
	}
	if !c.Witness(1, 7, 31*time.Second) {
		t.Fatal("sighting after retention must be new again")
	}
}

func TestNeighborTableLiveness(t *testing.T) {
	nt := NewNeighborTable()
	nb := nt.Touch(3, 6*time.Second)
	nb.Sym = true
	nb.TwoHop[9] = 2 * time.Second
	if got, ok := nt.Get(3); !ok || got != nb {
		t.Fatal("Touch must create and return the entry")
	}
	if same := nt.Touch(3, 8*time.Second); same != nb {
		t.Fatal("Touch must reuse the existing entry")
	}
	if nb.Expiry != 8*time.Second {
		t.Fatalf("Touch did not extend liveness: %v", nb.Expiry)
	}
	if !nt.Expire(3 * time.Second) {
		t.Fatal("stale two-hop entry must count as a change")
	}
	if _, stale := nb.TwoHop[9]; stale {
		t.Fatal("stale two-hop entry survived Expire")
	}
	if nt.Expire(3 * time.Second) {
		t.Fatal("second expire at the same instant must be a no-op")
	}
	if !nt.Expire(9*time.Second) || nt.Len() != 0 {
		t.Fatal("hello-silent neighbor must age out")
	}
	if nt.Remove(3) {
		t.Fatal("removing an absent neighbor must report false")
	}
	nt.Touch(5, time.Second)
	if !nt.Remove(5) || nt.Len() != 0 {
		t.Fatal("link-layer removal must drop the entry immediately")
	}

	// A TwoHop deadline written directly (outside Touch) after a sweep has
	// raised the horizon must be reported via Observe; the early-return
	// would otherwise hide its expiry from the next sweep.
	late := nt.Touch(6, 20*time.Second)
	if nt.Expire(2 * time.Second) {
		t.Fatal("nothing should expire at 2s")
	}
	late.TwoHop[7] = 10 * time.Second
	nt.Observe(10 * time.Second)
	if !nt.Expire(11 * time.Second) {
		t.Fatal("observed two-hop deadline must be swept once due")
	}
	if _, stale := late.TwoHop[7]; stale {
		t.Fatal("stale two-hop entry survived the observed sweep")
	}
}

func TestSeqWraparound(t *testing.T) {
	if !SeqGT(1, 0) || SeqGT(0, 1) || !SeqGE(1, 1) {
		t.Fatal("basic ordering broken")
	}
	// Freshness survives rollover: 3 is fresher than MaxUint32-2.
	if !SeqGT(3, ^uint32(0)-2) {
		t.Fatal("wraparound comparison broken")
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(2.5) != 2500*time.Millisecond {
		t.Fatalf("Seconds(2.5) = %v", Seconds(2.5))
	}
}

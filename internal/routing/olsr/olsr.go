// Package olsr implements the Optimized Link State Routing protocol
// (Clausen, Jacquet, et al.; IETF draft-ietf-manet-olsr-06), the proactive
// baseline of the paper's evaluation.
//
// Every node broadcasts periodic HELLOs to discover symmetric neighbors and
// the two-hop neighborhood, selects a minimal multipoint relay (MPR) set
// covering all two-hop neighbors, and floods topology-control (TC) messages
// through the MPR backbone. Routes are shortest paths over the resulting
// link-state database. OLSR has routes ready before traffic arrives (the
// paper's Fig. 6 shows its low latency) at the price of constant control
// overhead (Fig. 5) — and it is not loop-free at every instant during
// topology transients.
package olsr

import (
	"fmt"
	"sort"
	"time"

	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// Config holds OLSR's intervals and holds.
type Config struct {
	HelloInterval sim.Time
	TCInterval    sim.Time
	NeighborHold  sim.Time
	TopologyHold  sim.Time
	Jitter        sim.Time
}

// DefaultConfig returns the draft's default timing.
func DefaultConfig() Config {
	return Config{
		HelloInterval: 2 * time.Second,
		TCInterval:    5 * time.Second,
		NeighborHold:  6 * time.Second,
		TopologyHold:  15 * time.Second,
		Jitter:        500 * time.Millisecond,
	}
}

// ConfigFromParams returns DefaultConfig with the spec-level overrides in
// params applied; durations arrive in seconds. Unknown keys and
// out-of-range values are errors.
func ConfigFromParams(params map[string]float64) (Config, error) {
	cfg := DefaultConfig()
	if err := registry.ApplyParams("olsr", params, map[string]func(float64){
		"hello_interval_seconds": func(v float64) { cfg.HelloInterval = rcommon.Seconds(v) },
		"tc_interval_seconds":    func(v float64) { cfg.TCInterval = rcommon.Seconds(v) },
		"neighbor_hold_seconds":  func(v float64) { cfg.NeighborHold = rcommon.Seconds(v) },
		"topology_hold_seconds":  func(v float64) { cfg.TopologyHold = rcommon.Seconds(v) },
		"jitter_seconds":         func(v float64) { cfg.Jitter = rcommon.Seconds(v) },
	}); err != nil {
		return Config{}, err
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// validate rejects configurations no deployment could run.
func (c Config) validate() error {
	if c.HelloInterval <= 0 || c.TCInterval <= 0 || c.NeighborHold <= 0 ||
		c.TopologyHold <= 0 || c.Jitter <= 0 {
		return fmt.Errorf("olsr: intervals and holds must be positive (hello %v, tc %v, neighbor_hold %v, topology_hold %v, jitter %v)",
			c.HelloInterval, c.TCInterval, c.NeighborHold, c.TopologyHold, c.Jitter)
	}
	return nil
}

// hello advertises the sender's neighbor set; receivers use it for link
// sensing (bidirectionality), two-hop discovery, and MPR signaling.
type hello struct {
	From      netstack.NodeID
	Neighbors []netstack.NodeID // symmetric neighbors of From
	MPRs      []netstack.NodeID // neighbors From selected as MPR
}

// tc floods the sender's MPR-selector set through the MPR backbone.
type tc struct {
	Orig       netstack.NodeID
	Seq        uint32
	Advertised []netstack.NodeID
	TTL        int
}

// Wire sizes.
const (
	helloBase = 8
	tcBase    = 12
	perAddr   = 4
)

type topoEntry struct {
	// advertised is kept sorted by id: route recomputation walks it, and
	// equal-cost tie-breaks must not depend on incidental ordering (the
	// sender serialized its selector map in map-iteration order).
	advertised []netstack.NodeID
	seq        uint32
	expiry     sim.Time
}

// Protocol is one node's OLSR instance.
type Protocol struct {
	netstack.BaseProtocol
	cfg  Config
	node *netstack.Node
	self netstack.NodeID

	// nbrs is the hello-liveness neighbor table: Touch on every HELLO,
	// Remove on link-layer failure, Expire from the periodic sweep.
	nbrs *rcommon.NeighborTable
	mprs map[netstack.NodeID]struct{}
	topo map[netstack.NodeID]*topoEntry
	// seenTC suppresses duplicate TC floods.
	seenTC *rcommon.DupCache
	tcSeq  uint32

	helloBeacon rcommon.Beaconer
	tcBeacon    rcommon.Beaconer
	sweeper     rcommon.Beaconer

	routes  map[netstack.NodeID]netstack.NodeID // dst -> next hop
	hops    map[netstack.NodeID]int
	dirty   bool
	started bool
}

var _ netstack.Protocol = (*Protocol)(nil)

// New returns an OLSR instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:    cfg,
		nbrs:   rcommon.NewNeighborTable(),
		mprs:   make(map[netstack.NodeID]struct{}),
		topo:   make(map[netstack.NodeID]*topoEntry),
		seenTC: rcommon.NewDupCache(30 * time.Second),
		routes: make(map[netstack.NodeID]netstack.NodeID),
		hops:   make(map[netstack.NodeID]int),
	}
}

// Attach implements netstack.Protocol.
func (p *Protocol) Attach(n *netstack.Node) {
	p.node = n
	p.self = n.ID()
}

// Start implements netstack.Protocol: kick off the periodic HELLO and TC
// schedules with initial jitter so nodes do not synchronize. Starting
// twice is a no-op.
func (p *Protocol) Start() {
	if p.started {
		return
	}
	p.started = true
	p.helloBeacon.Start(p.node, p.jitter(),
		func() sim.Time { return p.cfg.HelloInterval + p.jitter() }, p.sendHello)
	p.tcBeacon.Start(p.node, p.cfg.HelloInterval+p.jitter(),
		func() sim.Time { return p.cfg.TCInterval + p.jitter() }, p.sendTC)
	p.sweeper.StartEvery(p.node, time.Second, p.expire)
}

func (p *Protocol) jitter() sim.Time {
	return sim.Time(p.node.Rand().Int63n(int64(p.cfg.Jitter)))
}

// SuccessorsOf exposes the next hop for inspection.
func (p *Protocol) SuccessorsOf(dst netstack.NodeID) []netstack.NodeID {
	p.recompute()
	if nh, ok := p.routes[dst]; ok {
		return []netstack.NodeID{nh}
	}
	return nil
}

// --- Periodic control -------------------------------------------------

func (p *Protocol) sendHello() {
	now := p.node.Now()
	var nbs, mprList []netstack.NodeID
	for id, nb := range p.nbrs.All() {
		if nb.Expiry <= now {
			continue
		}
		// Both heard (asymmetric) and symmetric links are advertised;
		// hearing oneself in a HELLO is what upgrades a link to
		// symmetric, so asymmetric links must be included to
		// bootstrap.
		nbs = append(nbs, id)
		if _, isMPR := p.mprs[id]; isMPR {
			mprList = append(mprList, id)
		}
	}
	h := &hello{From: p.self, Neighbors: nbs, MPRs: mprList}
	p.node.BroadcastControl(helloBase+perAddr*(len(nbs)+len(mprList)), h)
}

func (p *Protocol) sendTC() {
	// Only nodes selected as MPR by someone originate TCs.
	var selectors []netstack.NodeID
	now := p.node.Now()
	for id, nb := range p.nbrs.All() {
		if nb.Expiry > now && nb.SelectsMe {
			selectors = append(selectors, id)
		}
	}
	if len(selectors) == 0 {
		return
	}
	p.tcSeq++
	m := &tc{Orig: p.self, Seq: p.tcSeq, Advertised: selectors, TTL: 35}
	p.seenTC.Mark(p.self, p.tcSeq, now)
	p.node.BroadcastControl(tcBase+perAddr*len(selectors), m)
}

func (p *Protocol) expire() {
	now := p.node.Now()
	if p.nbrs.Expire(now) {
		p.dirty = true
	}
	for id, te := range p.topo {
		if te.expiry <= now {
			delete(p.topo, id)
			p.dirty = true
		}
	}
	p.seenTC.Sweep(now)
	if p.dirty {
		p.selectMPRs()
	}
}

// RecvControl implements netstack.Protocol.
func (p *Protocol) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *hello:
		p.handleHello(from, m)
	case *tc:
		p.handleTC(from, m)
	}
}

func (p *Protocol) handleHello(from netstack.NodeID, h *hello) {
	now := p.node.Now()
	nb := p.nbrs.Touch(from, now+p.cfg.NeighborHold)
	// The link is symmetric once the neighbor lists us.
	nb.Sym = false
	for _, n := range h.Neighbors {
		if n == p.self {
			nb.Sym = true
		}
	}
	nb.SelectsMe = false
	for _, n := range h.MPRs {
		if n == p.self {
			nb.SelectsMe = true
		}
	}
	// Two-hop neighborhood from the neighbor's symmetric set.
	for k := range nb.TwoHop {
		delete(nb.TwoHop, k)
	}
	for _, n := range h.Neighbors {
		if n != p.self {
			nb.TwoHop[n] = now + p.cfg.NeighborHold
		}
	}
	p.dirty = true
	p.selectMPRs()
}

func (p *Protocol) handleTC(from netstack.NodeID, m *tc) {
	if m.Orig == p.self {
		return
	}
	now := p.node.Now()
	if p.seenTC.Witness(m.Orig, m.Seq, now) {
		te, ok := p.topo[m.Orig]
		if !ok || !seqNewer(te.seq, m.Seq) {
			adv := append([]netstack.NodeID(nil), m.Advertised...)
			sort.Slice(adv, func(i, j int) bool { return adv[i] < adv[j] })
			p.topo[m.Orig] = &topoEntry{advertised: adv, seq: m.Seq,
				expiry: now + p.cfg.TopologyHold}
			p.dirty = true
		}
		// MPR forwarding rule: relay only if the transmitter selected
		// this node as MPR.
		if nb, ok := p.nbrs.Get(from); ok && nb.SelectsMe && m.TTL > 1 {
			z := *m
			z.TTL--
			jit := sim.Time(p.node.Rand().Int63n(int64(10 * time.Millisecond)))
			size := tcBase + perAddr*len(z.Advertised)
			p.node.After(jit, func() { p.node.BroadcastControl(size, &z) })
		}
	}
}

// seqNewer reports that stored is newer than incoming, via the shared
// wraparound comparison.
func seqNewer(stored, incoming uint32) bool { return rcommon.SeqGT(stored, incoming) }

// selectMPRs runs the greedy set cover of the strict two-hop neighborhood.
func (p *Protocol) selectMPRs() {
	now := p.node.Now()
	sym := make(map[netstack.NodeID]*rcommon.Neighbor)
	for id, nb := range p.nbrs.All() {
		if nb.Sym && nb.Expiry > now {
			sym[id] = nb
		}
	}
	// Strict two-hop set: reachable through a symmetric neighbor, not a
	// symmetric neighbor itself, not self.
	uncovered := make(map[netstack.NodeID]struct{})
	for _, nb := range sym {
		for th := range nb.TwoHop {
			if th == p.self {
				continue
			}
			if _, oneHop := sym[th]; oneHop {
				continue
			}
			uncovered[th] = struct{}{}
		}
	}
	mprs := make(map[netstack.NodeID]struct{})
	for len(uncovered) > 0 {
		var best netstack.NodeID
		bestCover := 0
		for id, nb := range sym {
			if _, chosen := mprs[id]; chosen {
				continue
			}
			cover := 0
			for th := range nb.TwoHop {
				if _, u := uncovered[th]; u {
					cover++
				}
			}
			if cover > bestCover || (cover == bestCover && cover > 0 && id < best) {
				best, bestCover = id, cover
			}
		}
		if bestCover == 0 {
			break // remaining two-hops unreachable (stale info)
		}
		mprs[best] = struct{}{}
		for th := range sym[best].TwoHop {
			delete(uncovered, th)
		}
	}
	// Keep at least one MPR whenever a symmetric neighbor exists, so
	// every node is advertised in some TC and remains reachable from
	// beyond two hops.
	if len(mprs) == 0 && len(sym) > 0 {
		first := netstack.NodeID(-1)
		for id := range sym {
			if first < 0 || id < first {
				first = id
			}
		}
		mprs[first] = struct{}{}
	}
	p.mprs = mprs
}

// --- Routing table ----------------------------------------------------

// recompute rebuilds shortest paths over the link-state database (BFS on
// unit-cost links).
func (p *Protocol) recompute() {
	if !p.dirty {
		return
	}
	p.dirty = false
	now := p.node.Now()
	routes := make(map[netstack.NodeID]netstack.NodeID)
	hops := map[netstack.NodeID]int{p.self: 0}

	// First ring: symmetric neighbors, visited in id order — the BFS
	// assigns each destination the first equal-cost route it reaches, so
	// tie-breaks must not depend on map iteration order (it varies across
	// goroutines, which would make trial results depend on the worker
	// count of the sweep runner).
	queue := make([]netstack.NodeID, 0, p.nbrs.Len())
	for id, nb := range p.nbrs.All() {
		if nb.Sym && nb.Expiry > now {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	for _, id := range queue {
		routes[id] = id
		hops[id] = 1
	}
	// Expand over TC-advertised links.
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		te, ok := p.topo[cur]
		if !ok || te.expiry <= now {
			continue
		}
		for _, adv := range te.advertised {
			if adv == p.self {
				continue
			}
			if _, known := hops[adv]; known {
				continue
			}
			hops[adv] = hops[cur] + 1
			routes[adv] = routes[cur]
			queue = append(queue, adv)
		}
	}
	p.routes = routes
	p.hops = hops
}

// --- Data plane -------------------------------------------------------

// OriginateData implements netstack.Protocol.
func (p *Protocol) OriginateData(pkt *netstack.DataPacket) {
	p.recompute()
	nh, ok := p.routes[pkt.Dst]
	if !ok {
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	p.node.ForwardData(nh, pkt)
}

// RecvData implements netstack.Protocol.
func (p *Protocol) RecvData(from netstack.NodeID, pkt *netstack.DataPacket) {
	pkt.Hops++
	if pkt.Dst == p.self {
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.node.DropData(pkt, rcommon.DropTTL)
		return
	}
	p.recompute()
	nh, ok := p.routes[pkt.Dst]
	if !ok {
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	p.node.ForwardData(nh, pkt)
}

// DataFailed implements netstack.Protocol: proactive OLSR has no reactive
// repair; the link will age out of the neighbor set. Drop the neighbor
// immediately to react a little faster, as link-layer feedback is enabled
// for all protocols in the evaluation.
func (p *Protocol) DataFailed(to netstack.NodeID, pkt *netstack.DataPacket) {
	p.nbrs.Remove(to)
	p.dirty = true
	p.selectMPRs()
	p.node.DropData(pkt, rcommon.DropLinkLost)
}

// ControlFailed implements netstack.Protocol.
func (p *Protocol) ControlFailed(to netstack.NodeID, msg any) {
	p.nbrs.Remove(to)
	p.dirty = true
}

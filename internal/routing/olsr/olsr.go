// Package olsr implements the Optimized Link State Routing protocol
// (Clausen, Jacquet, et al.; IETF draft-ietf-manet-olsr-06), the proactive
// baseline of the paper's evaluation.
//
// Every node broadcasts periodic HELLOs to discover symmetric neighbors and
// the two-hop neighborhood, selects a minimal multipoint relay (MPR) set
// covering all two-hop neighbors, and floods topology-control (TC) messages
// through the MPR backbone. Routes are shortest paths over the resulting
// link-state database. OLSR has routes ready before traffic arrives (the
// paper's Fig. 6 shows its low latency) at the price of constant control
// overhead (Fig. 5) — and it is not loop-free at every instant during
// topology transients.
//
// # Incremental recomputation
//
// The routing table and the MPR set are pure functions of the link-state
// inputs alive at the evaluation instant: the symmetric-neighbor set, the
// two-hop neighborhoods, and the TC-learned topology, each filtered by its
// expiry deadline. Both computations are therefore cached behind two
// signals:
//
//   - a structure version, bumped only when an input actually changes (a
//     link appears, flips symmetry, or is removed; an advertised set
//     differs; a dead entry revives), not on every control receipt; and
//   - an expiry horizon, the earliest deadline among the inputs the last
//     computation consumed. Before the horizon, with an unchanged version,
//     re-running the computation would read exactly the same inputs and
//     produce exactly the same output, so it is skipped.
//
// Rebuilds that do run reuse preallocated storage (the route and hop maps
// are cleared in place, the BFS queue is popped by head index over a
// reused slice, and the symmetric-neighbor ring is maintained as a sorted
// slice incrementally), so the steady-state data plane allocates nothing —
// pinned by TestRecomputeAllocFree. Outputs are byte-identical per seed to
// the full-rebuild-per-dirty-flag implementation (TestOLSRGoldenJSONL at
// the repo root pins the JSONL stream), because every skip is justified by
// the purity argument above and every rebuild visits neighbors in the same
// sorted order.
package olsr

import (
	"fmt"
	"math"
	"sort"
	"time"

	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// Config holds OLSR's intervals and holds.
type Config struct {
	HelloInterval sim.Time
	TCInterval    sim.Time
	NeighborHold  sim.Time
	TopologyHold  sim.Time
	Jitter        sim.Time
}

// DefaultConfig returns the draft's default timing.
func DefaultConfig() Config {
	return Config{
		HelloInterval: 2 * time.Second,
		TCInterval:    5 * time.Second,
		NeighborHold:  6 * time.Second,
		TopologyHold:  15 * time.Second,
		Jitter:        500 * time.Millisecond,
	}
}

// ConfigFromParams returns DefaultConfig with the spec-level overrides in
// params applied; durations arrive in seconds. Unknown keys and
// out-of-range values are errors.
func ConfigFromParams(params map[string]float64) (Config, error) {
	cfg := DefaultConfig()
	if err := registry.ApplyParams("olsr", params, map[string]func(float64){
		"hello_interval_seconds": func(v float64) { cfg.HelloInterval = rcommon.Seconds(v) },
		"tc_interval_seconds":    func(v float64) { cfg.TCInterval = rcommon.Seconds(v) },
		"neighbor_hold_seconds":  func(v float64) { cfg.NeighborHold = rcommon.Seconds(v) },
		"topology_hold_seconds":  func(v float64) { cfg.TopologyHold = rcommon.Seconds(v) },
		"jitter_seconds":         func(v float64) { cfg.Jitter = rcommon.Seconds(v) },
	}); err != nil {
		return Config{}, err
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// validate rejects configurations no deployment could run.
func (c Config) validate() error {
	if c.HelloInterval <= 0 || c.TCInterval <= 0 || c.NeighborHold <= 0 ||
		c.TopologyHold <= 0 || c.Jitter <= 0 {
		return fmt.Errorf("olsr: intervals and holds must be positive (hello %v, tc %v, neighbor_hold %v, topology_hold %v, jitter %v)",
			c.HelloInterval, c.TCInterval, c.NeighborHold, c.TopologyHold, c.Jitter)
	}
	return nil
}

// hello advertises the sender's neighbor set; receivers use it for link
// sensing (bidirectionality), two-hop discovery, and MPR signaling.
type hello struct {
	From      netstack.NodeID
	Neighbors []netstack.NodeID // symmetric neighbors of From
	MPRs      []netstack.NodeID // neighbors From selected as MPR
}

// tc floods the sender's MPR-selector set through the MPR backbone.
type tc struct {
	Orig       netstack.NodeID
	Seq        uint32
	Advertised []netstack.NodeID
	TTL        int
}

// Wire sizes.
const (
	helloBase = 8
	tcBase    = 12
	perAddr   = 4
)

type topoEntry struct {
	// advertised is kept sorted by id: route recomputation walks it, and
	// equal-cost tie-breaks must not depend on incidental ordering (the
	// sender serialized its selector map in map-iteration order).
	advertised []netstack.NodeID
	seq        uint32
	expiry     sim.Time
}

// forever is the expiry horizon of a computation that consumed no
// expirable inputs: it can never be invalidated by the clock alone.
const forever = sim.Time(math.MaxInt64)

// symNeighbor is one entry of the sorted symmetric-neighbor slice: the id
// plus the table entry, so rebuild loops never pay a map lookup.
type symNeighbor struct {
	id netstack.NodeID
	nb *rcommon.Neighbor
}

// Protocol is one node's OLSR instance.
type Protocol struct {
	netstack.BaseProtocol
	cfg  Config
	node *netstack.Node
	self netstack.NodeID

	// nbrs is the hello-liveness neighbor table: Touch on every HELLO,
	// Remove on link-layer failure, Expire from the periodic sweep.
	nbrs *rcommon.NeighborTable
	// symList mirrors the Sym entries of nbrs as a slice sorted by id,
	// maintained incrementally on symmetry flips and removals (and
	// rebuilt wholesale after the once-a-second expiry sweep). Entries
	// may be expired-but-unswept; consumers filter by Expiry.
	symList []symNeighbor
	mprs    map[netstack.NodeID]struct{}
	topo    map[netstack.NodeID]*topoEntry
	// topoHorizon lower-bounds every topo entry's expiry; the per-second
	// sweep skips scanning the map before it. handleTC lowers it on entry
	// writes, the sweep recomputes the exact minimum.
	topoHorizon sim.Time
	// seenTC suppresses duplicate TC floods.
	seenTC *rcommon.DupCache
	tcSeq  uint32

	helloBeacon rcommon.Beaconer
	tcBeacon    rcommon.Beaconer
	sweeper     rcommon.Beaconer

	routes map[netstack.NodeID]netstack.NodeID // dst -> next hop
	hops   map[netstack.NodeID]int
	queue  []netstack.NodeID // BFS scratch, reused across rebuilds
	// liveSym is selectMPRs' scratch of live symmetric neighbors;
	// symBits/uncov its reusable membership bitsets over node ids.
	liveSym []symNeighbor
	symBits bitset
	uncov   bitset
	// Greedy-cover scratch: coverCnt[i] is candidate liveSym[i]'s count of
	// still-uncovered two-hop neighbors, kept exact by decrementing along
	// covHead/covNext/covOwner — per-two-hop-id chains of the candidate
	// indices covering that id. covHead is indexed by node id and cleared
	// lazily (only the slots of ids in play), so a selection run costs
	// O(two-hop entries), not O(max id).
	coverCnt []int32
	covHead  []int32
	covNext  []int32
	covOwner []int32
	chosen   []bool

	// linkVer counts structural changes to the route inputs (symmetric
	// links and TC-learned links); mprInVer counts structural changes to
	// the MPR inputs (symmetric links and two-hop key sets). Expiry
	// refreshes and content-identical re-advertisements bump neither.
	linkVer  uint64
	mprInVer uint64
	// routeVer/routeHorizon stamp the inputs of the last route rebuild;
	// mprVer/mprHorizon those of the last MPR selection. See the package
	// comment for the skip rule.
	routeVer     uint64
	routeHorizon sim.Time
	mprVer       uint64
	mprHorizon   sim.Time
	// rebuilds/mprRuns count the computations that actually ran, for
	// tests and profiling; skips are the difference against dirty events.
	rebuilds uint64
	mprRuns  uint64

	dirty   bool
	started bool
}

var _ netstack.Protocol = (*Protocol)(nil)

// New returns an OLSR instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:    cfg,
		nbrs:   rcommon.NewNeighborTable(),
		mprs:   make(map[netstack.NodeID]struct{}),
		topo:   make(map[netstack.NodeID]*topoEntry),
		seenTC: rcommon.NewDupCache(30 * time.Second),
		routes: make(map[netstack.NodeID]netstack.NodeID),
		hops:   make(map[netstack.NodeID]int),
	}
}

// Attach implements netstack.Protocol.
func (p *Protocol) Attach(n *netstack.Node) {
	p.node = n
	p.self = n.ID()
}

// Start implements netstack.Protocol: kick off the periodic HELLO and TC
// schedules with initial jitter so nodes do not synchronize. Starting
// twice is a no-op.
func (p *Protocol) Start() {
	if p.started {
		return
	}
	p.started = true
	p.helloBeacon.Start(p.node, p.jitter(),
		func() sim.Time { return p.cfg.HelloInterval + p.jitter() }, p.sendHello)
	p.tcBeacon.Start(p.node, p.cfg.HelloInterval+p.jitter(),
		func() sim.Time { return p.cfg.TCInterval + p.jitter() }, p.sendTC)
	p.sweeper.StartEvery(p.node, time.Second, p.expire)
}

func (p *Protocol) jitter() sim.Time {
	return sim.Time(p.node.Rand().Int63n(int64(p.cfg.Jitter)))
}

// SuccessorsOf exposes the next hop for inspection.
func (p *Protocol) SuccessorsOf(dst netstack.NodeID) []netstack.NodeID {
	p.recompute()
	if nh, ok := p.routes[dst]; ok {
		return []netstack.NodeID{nh}
	}
	return nil
}

// --- Symmetric-neighbor slice ------------------------------------------

// symInsert adds id to the sorted symmetric slice.
func (p *Protocol) symInsert(id netstack.NodeID, nb *rcommon.Neighbor) {
	i := sort.Search(len(p.symList), func(i int) bool { return p.symList[i].id >= id })
	if i < len(p.symList) && p.symList[i].id == id {
		p.symList[i].nb = nb
		return
	}
	p.symList = append(p.symList, symNeighbor{})
	copy(p.symList[i+1:], p.symList[i:])
	p.symList[i] = symNeighbor{id: id, nb: nb}
}

// symRemove drops id from the sorted symmetric slice, if present.
func (p *Protocol) symRemove(id netstack.NodeID) {
	i := sort.Search(len(p.symList), func(i int) bool { return p.symList[i].id >= id })
	if i >= len(p.symList) || p.symList[i].id != id {
		return
	}
	copy(p.symList[i:], p.symList[i+1:])
	p.symList = p.symList[:len(p.symList)-1]
}

// rebuildSymList re-derives the slice from the table after a bulk change
// (the once-a-second expiry sweep, which removes entries en masse).
func (p *Protocol) rebuildSymList() {
	p.symList = p.symList[:0]
	for id, nb := range p.nbrs.All() {
		if nb.Sym {
			p.symList = append(p.symList, symNeighbor{id: id, nb: nb})
		}
	}
	sort.Slice(p.symList, func(i, j int) bool { return p.symList[i].id < p.symList[j].id })
}

// --- Periodic control -------------------------------------------------

func (p *Protocol) sendHello() {
	now := p.node.Now()
	var nbs, mprList []netstack.NodeID
	for id, nb := range p.nbrs.All() {
		if nb.Expiry <= now {
			continue
		}
		// Both heard (asymmetric) and symmetric links are advertised;
		// hearing oneself in a HELLO is what upgrades a link to
		// symmetric, so asymmetric links must be included to
		// bootstrap.
		nbs = append(nbs, id) //slrlint:allow mapiter HELLO advertises a set; receivers only test membership, order never reaches output (PR 1 goldens)
		if _, isMPR := p.mprs[id]; isMPR {
			mprList = append(mprList, id) //slrlint:allow mapiter MPR list is a set for the receiver's SelectsMe membership test
		}
	}
	h := &hello{From: p.self, Neighbors: nbs, MPRs: mprList}
	p.node.BroadcastControl(helloBase+perAddr*(len(nbs)+len(mprList)), h)
}

func (p *Protocol) sendTC() {
	// Only nodes selected as MPR by someone originate TCs.
	var selectors []netstack.NodeID
	now := p.node.Now()
	for id, nb := range p.nbrs.All() {
		if nb.Expiry > now && nb.SelectsMe {
			selectors = append(selectors, id) //slrlint:allow mapiter TC advertises the selector set; receivers fold it into a topology map
		}
	}
	if len(selectors) == 0 {
		return
	}
	p.tcSeq++
	m := &tc{Orig: p.self, Seq: p.tcSeq, Advertised: selectors, TTL: 35}
	p.seenTC.Mark(p.self, p.tcSeq, now)
	p.node.BroadcastControl(tcBase+perAddr*len(selectors), m)
}

func (p *Protocol) expire() {
	now := p.node.Now()
	if p.nbrs.Expire(now) {
		// The sweep removes neighbors and prunes two-hop sets in bulk;
		// re-derive the symmetric slice and invalidate both caches
		// rather than attributing each individual removal. Once a
		// second, this is noise next to the per-hello savings.
		p.dirty = true
		p.linkVer++
		p.mprInVer++
		p.rebuildSymList()
	}
	// The topology sweep is gated on the same horizon rule as the MPR and
	// route caches: topoHorizon lower-bounds every entry's expiry, so a
	// sweep before it provably removes nothing. Each real sweep recomputes
	// the exact minimum; entry writes in handleTC lower the bound.
	if now >= p.topoHorizon {
		min := forever
		for id, te := range p.topo {
			if te.expiry <= now {
				delete(p.topo, id)
				p.dirty = true
				p.linkVer++
			} else if te.expiry < min {
				min = te.expiry
			}
		}
		p.topoHorizon = min
	}
	p.seenTC.Sweep(now)
	if p.dirty {
		p.selectMPRs()
	}
}

// RecvControl implements netstack.Protocol.
func (p *Protocol) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *hello:
		p.handleHello(from, m)
	case *tc:
		p.handleTC(from, m)
	}
}

func (p *Protocol) handleHello(from netstack.NodeID, h *hello) {
	now := p.node.Now()
	old, existed := p.nbrs.Get(from)
	// A live symmetric link before this hello; the hello's Touch always
	// leaves the entry live, so comparing against the recomputed Sym
	// below detects both symmetry flips and the revival of an
	// expired-but-unswept link — the two ways a hello can change which
	// links the next rebuild sees.
	wasLiveSym := existed && old.Sym && old.Expiry > now
	nb := p.nbrs.Touch(from, now+p.cfg.NeighborHold)
	// The link is symmetric once the neighbor lists us.
	sym := false
	for _, n := range h.Neighbors {
		if n == p.self {
			sym = true
			break
		}
	}
	if sym != nb.Sym {
		nb.Sym = sym
		if sym {
			p.symInsert(from, nb)
		} else {
			p.symRemove(from)
		}
	}
	if sym != wasLiveSym {
		p.linkVer++
		p.mprInVer++
	}
	nb.SelectsMe = false
	for _, n := range h.MPRs {
		if n == p.self {
			nb.SelectsMe = true
			break
		}
	}
	// Two-hop neighborhood from the neighbor's symmetric set. Only a
	// changed key set invalidates the MPR cache; the common steady-state
	// hello re-advertises the same neighbors and merely refreshes their
	// deadlines.
	same, count := true, 0
	for _, n := range h.Neighbors {
		if n == p.self {
			continue
		}
		count++
		if _, ok := nb.TwoHop[n]; !ok {
			same = false
		}
	}
	changed := !same || count != len(nb.TwoHop)
	if changed {
		clear(nb.TwoHop)
		nb.TwoHopList = nb.TwoHopList[:0]
		p.mprInVer++
	}
	exp := now + p.cfg.NeighborHold
	// The TwoHop deadlines below are written outside Touch; report them so
	// the table's sweep horizon stays a true lower bound. (exp equals the
	// Touch deadline above, so this is a no-op compare in practice, but the
	// contract belongs to the writer, not to luck.)
	p.nbrs.Observe(exp)
	for _, n := range h.Neighbors {
		if n == p.self {
			continue
		}
		if changed {
			if _, ok := nb.TwoHop[n]; !ok {
				nb.TwoHopList = append(nb.TwoHopList, n)
			}
		}
		if n > nb.TwoHopMax {
			nb.TwoHopMax = n
		}
		nb.TwoHop[n] = exp
	}
	p.dirty = true
	p.selectMPRs()
}

func (p *Protocol) handleTC(from netstack.NodeID, m *tc) {
	if m.Orig == p.self {
		return
	}
	now := p.node.Now()
	if p.seenTC.Witness(m.Orig, m.Seq, now) {
		te, ok := p.topo[m.Orig]
		if !ok || !seqNewer(te.seq, m.Seq) {
			exp := now + p.cfg.TopologyHold
			if ok && te.expiry > now && sameAdvertised(te.advertised, m.Advertised) {
				// The re-advertisement names the same links and the old
				// entry is still live: refresh in place. No link appears
				// or disappears at any instant before the (previous)
				// horizon, so the route cache stays valid.
				te.seq = m.Seq
				te.expiry = exp
			} else {
				adv := append([]netstack.NodeID(nil), m.Advertised...)
				sort.Slice(adv, func(i, j int) bool { return adv[i] < adv[j] })
				if ok {
					te.advertised, te.seq, te.expiry = adv, m.Seq, exp
				} else {
					p.topo[m.Orig] = &topoEntry{advertised: adv, seq: m.Seq, expiry: exp}
				}
				p.linkVer++
			}
			if exp < p.topoHorizon {
				p.topoHorizon = exp
			}
			p.dirty = true
		}
		// MPR forwarding rule: relay only if the transmitter selected
		// this node as MPR.
		if nb, ok := p.nbrs.Get(from); ok && nb.SelectsMe && m.TTL > 1 {
			z := *m
			z.TTL--
			jit := sim.Time(p.node.Rand().Int63n(int64(10 * time.Millisecond)))
			size := tcBase + perAddr*len(z.Advertised)
			p.node.After(jit, func() { p.node.BroadcastControl(size, &z) })
		}
	}
}

// sameAdvertised reports whether the sorted stored set and the unsorted
// incoming list name exactly the same nodes, without allocating.
func sameAdvertised(stored, incoming []netstack.NodeID) bool {
	if len(stored) != len(incoming) {
		return false
	}
	for _, n := range incoming {
		i := sort.Search(len(stored), func(i int) bool { return stored[i] >= n })
		if i >= len(stored) || stored[i] != n {
			return false
		}
	}
	return true
}

// seqNewer reports that stored is newer than incoming, via the shared
// wraparound comparison.
func seqNewer(stored, incoming uint32) bool { return rcommon.SeqGT(stored, incoming) }

// selectMPRs runs the greedy set cover of the strict two-hop neighborhood
// — unless the one/two-hop neighborhood provably has not changed since the
// last run (unchanged structure version, clock before the expiry horizon),
// in which case the cached set is already exactly what the cover would
// produce.
//
// The cover runs over bitsets indexed by node id and the flat TwoHopList
// mirrors, not the TwoHop maps: node ids are dense in every scenario, so
// membership is one shift+mask instead of a map probe, and the scratch
// bitsets are reused across runs. Cover counts are order-independent sums
// and the candidate scan walks liveSym in sorted id order, so the selected
// set is identical to the map-based cover's.
func (p *Protocol) selectMPRs() {
	now := p.node.Now()
	if p.mprVer == p.mprInVer && now < p.mprHorizon {
		return
	}
	p.mprRuns++
	horizon := forever
	p.liveSym = p.liveSym[:0]
	maxID := p.self
	for _, e := range p.symList {
		if e.nb.Expiry > now {
			p.liveSym = append(p.liveSym, e)
			if e.nb.Expiry < horizon {
				horizon = e.nb.Expiry
			}
			if e.id > maxID {
				maxID = e.id
			}
			if e.nb.TwoHopMax > maxID {
				maxID = e.nb.TwoHopMax
			}
		}
	}
	p.symBits.reset(int(maxID) + 1)
	p.uncov.reset(int(maxID) + 1)
	for _, e := range p.liveSym {
		p.symBits.set(e.id)
	}
	nCand := len(p.liveSym)
	p.coverCnt = resizeInt32(p.coverCnt, nCand)
	p.chosen = resizeBool(p.chosen, nCand)
	if len(p.covHead) < int(maxID)+1 {
		p.covHead = append(p.covHead, make([]int32, int(maxID)+1-len(p.covHead))...)
	}
	p.covNext = p.covNext[:0]
	p.covOwner = p.covOwner[:0]
	uncovered := 0
	// One pass builds the strict two-hop set (reachable through a
	// symmetric neighbor, not a symmetric neighbor itself, not self), the
	// per-candidate cover counts, and the per-two-hop chains of covering
	// candidates. Strict-set membership depends only on self and symBits
	// (both fixed here), so a candidate's count and a two-hop id's chain
	// are complete even though uncov is still being populated. A two-hop
	// id cleared during the rounds below was necessarily uncovered here
	// (uncov only shrinks), so its chain names exactly the candidates
	// whose counts must drop — the counts stay equal to the cover the
	// per-round rescan used to recompute, and the selection is identical.
	for i, e := range p.liveSym {
		cnt := int32(0)
		for _, th := range e.nb.TwoHopList {
			if th == p.self || p.symBits.has(th) {
				continue
			}
			if !p.uncov.has(th) {
				p.uncov.set(th)
				p.covHead[th] = -1
				uncovered++
			}
			p.covNext = append(p.covNext, p.covHead[th])
			p.covOwner = append(p.covOwner, int32(i))
			p.covHead[th] = int32(len(p.covNext) - 1)
			cnt++
		}
		p.coverCnt[i] = cnt
	}
	clear(p.mprs)
	for uncovered > 0 {
		best := -1
		bestCover := int32(0)
		for i, e := range p.liveSym {
			if p.chosen[i] {
				continue
			}
			cover := p.coverCnt[i]
			if cover > bestCover ||
				(cover == bestCover && cover > 0 && e.id < p.liveSym[best].id) {
				best, bestCover = i, cover
			}
		}
		if bestCover == 0 {
			break // remaining two-hops unreachable (stale info)
		}
		bestE := p.liveSym[best]
		p.chosen[best] = true
		p.mprs[bestE.id] = struct{}{}
		for _, th := range bestE.nb.TwoHopList {
			if p.uncov.has(th) {
				p.uncov.clearBit(th)
				uncovered--
				for k := p.covHead[th]; k >= 0; k = p.covNext[k] {
					p.coverCnt[p.covOwner[k]]--
				}
			}
		}
	}
	// Keep at least one MPR whenever a symmetric neighbor exists, so
	// every node is advertised in some TC and remains reachable from
	// beyond two hops. liveSym is sorted, so the first entry is the
	// lowest id.
	if len(p.mprs) == 0 && len(p.liveSym) > 0 {
		p.mprs[p.liveSym[0].id] = struct{}{}
	}
	p.mprVer = p.mprInVer
	p.mprHorizon = horizon
}

// resizeInt32 returns s with length n, reallocating only on growth; the
// contents are unspecified (callers overwrite every slot).
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// resizeBool returns s with length n and every slot false.
func resizeBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// bitset is a reusable membership set over dense node ids.
type bitset []uint64

// reset sizes the set to hold ids in [0, n) and clears it, reallocating
// only when n outgrows the previous capacity.
func (b *bitset) reset(n int) {
	words := (n + 63) / 64
	if cap(*b) < words {
		*b = make(bitset, words)
		return
	}
	*b = (*b)[:words]
	clear(*b)
}

func (b bitset) set(i netstack.NodeID)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clearBit(i netstack.NodeID) { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i netstack.NodeID) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// --- Routing table ----------------------------------------------------

// recompute rebuilds shortest paths over the link-state database (BFS on
// unit-cost links) — or proves it does not have to: with an unchanged
// structure version and the clock before the expiry horizon, the rebuild
// would consume exactly the inputs of the previous one.
func (p *Protocol) recompute() {
	if !p.dirty {
		return
	}
	now := p.node.Now()
	if p.routeVer == p.linkVer && now < p.routeHorizon {
		p.dirty = false
		return
	}
	p.dirty = false
	p.rebuilds++
	clear(p.routes)
	clear(p.hops)
	p.hops[p.self] = 0
	horizon := forever

	// First ring: symmetric neighbors, visited in id order — the BFS
	// assigns each destination the first equal-cost route it reaches, so
	// tie-breaks must not depend on map iteration order (it varies across
	// goroutines, which would make trial results depend on the worker
	// count of the sweep runner). symList is maintained sorted, so no
	// per-rebuild sort.
	queue := p.queue[:0]
	for _, e := range p.symList {
		if e.nb.Expiry <= now {
			continue
		}
		queue = append(queue, e.id)
		p.routes[e.id] = e.id
		p.hops[e.id] = 1
		if e.nb.Expiry < horizon {
			horizon = e.nb.Expiry
		}
	}
	// Expand over TC-advertised links, popping by head index (re-slicing
	// the queue would keep the whole backing array pinned and re-grow it
	// every rebuild).
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		te, ok := p.topo[cur]
		if !ok || te.expiry <= now {
			continue
		}
		if te.expiry < horizon {
			horizon = te.expiry
		}
		for _, adv := range te.advertised {
			if adv == p.self {
				continue
			}
			if _, known := p.hops[adv]; known {
				continue
			}
			p.hops[adv] = p.hops[cur] + 1
			p.routes[adv] = p.routes[cur]
			queue = append(queue, adv)
		}
	}
	p.queue = queue
	p.routeVer = p.linkVer
	p.routeHorizon = horizon
}

// --- Data plane -------------------------------------------------------

// OriginateData implements netstack.Protocol.
func (p *Protocol) OriginateData(pkt *netstack.DataPacket) {
	p.recompute()
	nh, ok := p.routes[pkt.Dst]
	if !ok {
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	p.node.ForwardData(nh, pkt)
}

// RecvData implements netstack.Protocol.
func (p *Protocol) RecvData(from netstack.NodeID, pkt *netstack.DataPacket) {
	pkt.Hops++
	if pkt.Dst == p.self {
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.node.DropData(pkt, rcommon.DropTTL)
		return
	}
	p.recompute()
	nh, ok := p.routes[pkt.Dst]
	if !ok {
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	p.node.ForwardData(nh, pkt)
}

// DataFailed implements netstack.Protocol: proactive OLSR has no reactive
// repair; the link will age out of the neighbor set. Drop the neighbor
// immediately to react a little faster, as link-layer feedback is enabled
// for all protocols in the evaluation.
func (p *Protocol) DataFailed(to netstack.NodeID, pkt *netstack.DataPacket) {
	p.removeNeighbor(to)
	p.selectMPRs()
	p.node.DropData(pkt, rcommon.DropLinkLost)
}

// ControlFailed implements netstack.Protocol.
func (p *Protocol) ControlFailed(to netstack.NodeID, msg any) {
	p.removeNeighbor(to)
}

// removeNeighbor drops to from the neighbor table on link-layer failure
// evidence, invalidating the caches only if a live symmetric link actually
// disappeared (removing an asymmetric or already-expired entry changes no
// computation input).
func (p *Protocol) removeNeighbor(to netstack.NodeID) {
	if nb, ok := p.nbrs.Get(to); ok {
		if nb.Sym {
			p.symRemove(to)
			if nb.Expiry > p.node.Now() {
				p.linkVer++
				p.mprInVer++
			}
		}
		p.nbrs.Remove(to)
	}
	p.dirty = true
}

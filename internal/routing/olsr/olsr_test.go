package olsr

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/routing/rtest"
	"slr/internal/sim"
)

func factory(id netstack.NodeID) netstack.Protocol { return New(DefaultConfig()) }

func TestNeighborDiscovery(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(3, 100), nil)
	w.Sim.RunUntil(10 * time.Second)
	p := w.Nodes[1].Protocol().(*Protocol)
	sym := 0
	for _, nb := range p.nbrs.All() {
		if nb.Sym {
			sym++
		}
	}
	if sym != 2 {
		t.Fatalf("node 1 has %d symmetric neighbors, want 2", sym)
	}
	// Edge nodes see only one neighbor.
	p0 := w.Nodes[0].Protocol().(*Protocol)
	if len(p0.SuccessorsOf(1)) != 1 {
		t.Fatal("node 0 cannot route to direct neighbor")
	}
}

func TestProactiveRoutesBeforeTraffic(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Sim.RunUntil(20 * time.Second) // several TC rounds
	// Every pair must be routable without any discovery.
	for i := range w.Nodes {
		p := w.Nodes[i].Protocol().(*Protocol)
		for j := range w.Nodes {
			if i == j {
				continue
			}
			if len(p.SuccessorsOf(netstack.NodeID(j))) == 0 {
				t.Fatalf("node %d has no route to %d", i, j)
			}
		}
	}
	// Data now flows with zero additional control on the data path.
	w.Send(0, 4)
	w.Sim.RunUntil(21 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if h := w.MX.MeanHops(); h != 4 {
		t.Fatalf("hops = %v, want 4 (shortest path)", h)
	}
}

func TestMPRSelectionCoversTwoHop(t *testing.T) {
	// Star-of-chains: center 0 with arms; the center's MPR set must
	// cover all two-hop neighbors.
	pts := []geo.Point{
		{X: 0, Y: 0},    // 0 center
		{X: 100, Y: 0},  // 1
		{X: 200, Y: 0},  // 2 two-hop via 1
		{X: 0, Y: 100},  // 3
		{X: 0, Y: 200},  // 4 two-hop via 3
		{X: -100, Y: 0}, // 5 leaf neighbor
	}
	w := rtest.New(1, 120, factory, pts, nil)
	w.Sim.RunUntil(15 * time.Second)
	p := w.Nodes[0].Protocol().(*Protocol)
	if _, ok := p.mprs[1]; !ok {
		t.Error("node 1 (only path to 2) not selected as MPR")
	}
	if _, ok := p.mprs[3]; !ok {
		t.Error("node 3 (only path to 4) not selected as MPR")
	}
}

func TestTCFloodBuildsRemoteRoutes(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(6, 100), nil)
	w.Sim.RunUntil(25 * time.Second)
	p := w.Nodes[0].Protocol().(*Protocol)
	if got := p.SuccessorsOf(5); len(got) != 1 || got[0] != 1 {
		t.Fatalf("route 0->5 next hop = %v, want [1]", got)
	}
	p.recompute()
	if p.hops[5] != 5 {
		t.Fatalf("hops to 5 = %d, want 5", p.hops[5])
	}
}

func TestPeriodicOverheadAccrues(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(4, 100), nil)
	w.Sim.RunUntil(30 * time.Second)
	// ~15 HELLO rounds x 4 nodes plus TC floods: at least 60 control
	// packets with zero data sent — the proactive cost.
	if w.MX.ControlTx < 60 {
		t.Fatalf("ControlTx = %d, want >= 60", w.MX.ControlTx)
	}
	if w.MX.DataSent != 0 {
		t.Fatal("unexpected data traffic")
	}
}

func TestLinkLossAgesOut(t *testing.T) {
	pts := rtest.Chain(3, 100)
	models := make([]mobility.Model, 3)
	models[2] = mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: pts[2]},
		{At: 10 * time.Second, Pos: pts[2]},
		{At: 10*time.Second + time.Millisecond, Pos: geo.Point{X: 9000}},
	})
	w := rtest.New(1, 120, factory, pts, models)
	w.Sim.RunUntil(9 * time.Second)
	p := w.Nodes[1].Protocol().(*Protocol)
	if len(p.SuccessorsOf(2)) != 1 {
		t.Fatal("route to 2 missing before departure")
	}
	w.Sim.RunUntil(25 * time.Second)
	if len(p.SuccessorsOf(2)) != 0 {
		t.Fatal("route to vanished node survived the hold time")
	}
}

func TestDeliveryInMobileNetwork(t *testing.T) {
	const n = 20
	positions := make([]geo.Point, n)
	models := make([]mobility.Model, n)
	rng := sim.New(13).Rand()
	terrain := geo.Terrain{Width: 600, Height: 300}
	for i := range models {
		models[i] = mobility.NewWaypoint(terrain, rng, 0, 10, 5*time.Second)
	}
	w := rtest.New(5, 250, factory, positions, models)
	for i := 10; i < 40; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() {
			src := i % n
			w.Send(src, (src+1+i%(n-1))%n)
		})
	}
	w.Sim.RunUntil(45 * time.Second)
	if w.MX.DataRecv < 15 {
		t.Fatalf("delivered %d/30 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
}

func TestRecomputeAllocFree(t *testing.T) {
	// Steady-state rebuilds must reuse the preallocated route/hop maps,
	// BFS queue, and MPR bitsets: zero allocations once the scratch is
	// warm, even when the version check is defeated and the full BFS +
	// greedy cover actually run.
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Sim.RunUntil(20 * time.Second)
	p := w.Nodes[2].Protocol().(*Protocol)
	// Warm the scratch with one forced full rebuild of each computation.
	p.dirty, p.linkVer, p.mprInVer = true, p.linkVer+1, p.mprInVer+1
	p.selectMPRs()
	p.recompute()
	if allocs := testing.AllocsPerRun(100, func() {
		p.dirty = true
		p.linkVer++
		p.recompute()
	}); allocs != 0 {
		t.Errorf("steady-state recompute allocates %.0f objects/run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		p.mprInVer++
		p.selectMPRs()
	}); allocs != 0 {
		t.Errorf("steady-state selectMPRs allocates %.0f objects/run, want 0", allocs)
	}
}

func TestRecomputeSkipsWhenInputsUnchanged(t *testing.T) {
	// A dirty flag alone must not force a rebuild: with an unchanged
	// structure version and the clock before the expiry horizon, both
	// cached computations are provably current and must be skipped.
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Sim.RunUntil(20 * time.Second)
	p := w.Nodes[2].Protocol().(*Protocol)
	p.recompute() // settle the cache
	before := p.rebuilds
	for i := 0; i < 5; i++ {
		p.dirty = true // e.g. a content-identical TC refresh
		p.recompute()
	}
	if p.rebuilds != before {
		t.Errorf("recompute ran %d times on unchanged inputs, want 0", p.rebuilds-before)
	}
	p.dirty = true
	p.linkVer++ // a structural change invalidates the cache
	p.recompute()
	if p.rebuilds != before+1 {
		t.Errorf("recompute after version bump ran %d times, want 1", p.rebuilds-before)
	}
	mprBefore := p.mprRuns
	for i := 0; i < 5; i++ {
		p.selectMPRs()
	}
	if p.mprRuns != mprBefore {
		t.Errorf("selectMPRs ran %d times on unchanged inputs, want 0", p.mprRuns-mprBefore)
	}
	p.mprInVer++
	p.selectMPRs()
	if p.mprRuns != mprBefore+1 {
		t.Errorf("selectMPRs after version bump ran %d times, want 1", p.mprRuns-mprBefore)
	}
}

func TestMPRCoverProperty(t *testing.T) {
	// Property: for random neighborhoods, the greedy MPR set covers
	// every strict two-hop neighbor reachable through a symmetric
	// neighbor.
	rng := sim.New(21).Rand()
	for trial := 0; trial < 200; trial++ {
		p := New(DefaultConfig())
		w := rtest.New(int64(trial), 120,
			func(netstack.NodeID) netstack.Protocol { return p },
			[]geo.Point{{X: 0}}, nil)
		_ = w
		nNb := 1 + rng.Intn(8)
		twoHopUniverse := make(map[netstack.NodeID]bool)
		for i := 0; i < nNb; i++ {
			id := netstack.NodeID(100 + i)
			nb := p.nbrs.Touch(id, sim.Time(time.Hour))
			nb.Sym = true
			// Tests mutate the table directly, so mirror the symmetry
			// flip into the sorted slice as handleHello would.
			p.symInsert(id, nb)
			p.mprInVer++
			for j := 0; j < rng.Intn(6); j++ {
				th := netstack.NodeID(200 + rng.Intn(10))
				if _, ok := nb.TwoHop[th]; !ok {
					nb.TwoHopList = append(nb.TwoHopList, th)
				}
				if th > nb.TwoHopMax {
					nb.TwoHopMax = th
				}
				nb.TwoHop[th] = sim.Time(time.Hour)
				twoHopUniverse[th] = true
			}
		}
		p.selectMPRs()
		// Verify cover.
		covered := make(map[netstack.NodeID]bool)
		for id := range p.mprs {
			nb, _ := p.nbrs.Get(id)
			for th := range nb.TwoHop {
				covered[th] = true
			}
		}
		for th := range twoHopUniverse {
			if !covered[th] {
				t.Fatalf("trial %d: two-hop %d uncovered by MPRs %v", trial, th, p.mprs)
			}
		}
		// Non-emptiness rule: some MPR whenever a neighbor exists.
		if nNb > 0 && len(p.mprs) == 0 {
			t.Fatalf("trial %d: no MPR selected with %d neighbors", trial, nNb)
		}
	}
}

package ldr

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/netstack"
	"slr/internal/routing/rcommon"
	"slr/internal/routing/rtest"
)

// spy records control messages it hears.
type spy struct {
	netstack.BaseProtocol
	node  *netstack.Node
	rreqs []*rreq
	rreps []*rrep
}

func (s *spy) Attach(n *netstack.Node) { s.node = n }
func (s *spy) Start()                  {}
func (s *spy) OriginateData(pkt *netstack.DataPacket) {
	s.node.DropData(pkt, rcommon.DropNoRoute)
}
func (s *spy) RecvData(netstack.NodeID, *netstack.DataPacket) {}
func (s *spy) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		s.rreqs = append(s.rreqs, m)
	case *rrep:
		s.rreps = append(s.rreps, m)
	}
}
func (s *spy) DataFailed(netstack.NodeID, *netstack.DataPacket) {}

func spyWorld(t *testing.T) (*rtest.World, *Protocol, *spy) {
	t.Helper()
	sp := &spy{}
	var pr *Protocol
	w := rtest.New(1, 150, func(id netstack.NodeID) netstack.Protocol {
		if id == 0 {
			pr = New(DefaultConfig())
			return pr
		}
		return sp
	}, []geo.Point{{X: 0}, {X: 100}}, nil)
	return w, pr, sp
}

func TestRelayStrengthensConstraint(t *testing.T) {
	// A relay with a same-era smaller FD must carry its own FD as the
	// new constraint (the integer analogue of SRP's Eq. 10).
	w, pr, sp := spyWorld(t)
	e := pr.get(9)
	e.sn, e.fd, e.d = 4, 2, 2
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 1, Dst: 9, DstSeq: 4, FD: 6, TTL: 5, D: 3})
	w.Sim.RunUntil(time.Second)
	// D+1 >= MinReplyHops and the entry is NOT active (no valid next
	// hop), so it relays rather than replies.
	if len(sp.rreqs) != 1 {
		t.Fatalf("heard %d rreqs, want 1", len(sp.rreqs))
	}
	if sp.rreqs[0].FD != 2 {
		t.Fatalf("relayed FD = %d, want 2", sp.rreqs[0].FD)
	}
	if sp.rreqs[0].Reset {
		t.Fatal("in-order relay set the reset flag")
	}
}

func TestOutOfOrderRelayRequestsReset(t *testing.T) {
	// Same era, FD not below the constraint: integers are not dense, so
	// the relay cannot be threaded in-order — reset required.
	w, pr, sp := spyWorld(t)
	e := pr.get(9)
	e.sn, e.fd, e.d = 4, 8, 8
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 2, Dst: 9, DstSeq: 4, FD: 3, TTL: 5, D: 1})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreqs) != 1 {
		t.Fatalf("heard %d rreqs, want 1", len(sp.rreqs))
	}
	if !sp.rreqs[0].Reset {
		t.Fatal("out-of-order relay did not set reset")
	}
	if sp.rreqs[0].FD != 3 {
		t.Fatalf("constraint changed to %d, want 3", sp.rreqs[0].FD)
	}
}

func TestFresherRelayClearsReset(t *testing.T) {
	w, pr, sp := spyWorld(t)
	e := pr.get(9)
	e.sn, e.fd, e.d = 9, 4, 4
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 3, Dst: 9, DstSeq: 4, FD: 3,
		TTL: 5, D: 1, Reset: true})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreqs) != 1 {
		t.Fatalf("heard %d rreqs, want 1", len(sp.rreqs))
	}
	z := sp.rreqs[0]
	if z.Reset {
		t.Fatal("fresher relay kept the reset flag")
	}
	if z.DstSeq != 9 || z.FD != 4 {
		t.Fatalf("relayed ordering = (%d, %d), want (9, 4)", z.DstSeq, z.FD)
	}
}

func TestDestinationAlwaysAnswers(t *testing.T) {
	w, pr, sp := spyWorld(t)
	pr.handleRREQ(1, &rreq{Src: 5, RreqID: 4, Dst: 0, Unknown: true, FD: infinity, TTL: 5})
	w.Sim.RunUntil(time.Second)
	if len(sp.rreps) != 1 {
		t.Fatalf("heard %d rreps, want 1", len(sp.rreps))
	}
	if sp.rreps[0].D != 0 || sp.rreps[0].Dst != 0 {
		t.Fatalf("reply = %+v", sp.rreps[0])
	}
}

package ldr

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/netstack"
	"slr/internal/routing/rtest"
	"slr/internal/sim"
)

func factory(id netstack.NodeID) netstack.Protocol { return New(DefaultConfig()) }

func TestChainDiscoveryAndDelivery(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Send(0, 4)
	w.Sim.RunUntil(5 * time.Second)
	if w.MX.DataRecv != 1 {
		t.Fatalf("delivered %d, want 1 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
	if h := w.MX.MeanHops(); h != 4 {
		t.Fatalf("hops = %v, want 4", h)
	}
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
}

func TestFeasibleDistanceOrdering(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(5, 100), nil)
	w.Send(0, 4)
	w.Sim.RunUntil(5 * time.Second)
	// FDs along the reply path must strictly decrease toward the
	// destination: node 0 has fd 4, node 3 has fd 1.
	for i := 0; i < 4; i++ {
		p := w.Nodes[i].Protocol().(*Protocol)
		e, ok := p.table[netstack.NodeID(4)]
		if !ok {
			t.Fatalf("node %d has no entry", i)
		}
		if want := 4 - i; e.fd != want {
			t.Fatalf("node %d fd = %d, want %d", i, e.fd, want)
		}
	}
}

func TestNoSeqnoBumpOnFirstDiscovery(t *testing.T) {
	w := rtest.New(1, 120, factory, rtest.Chain(3, 100), nil)
	w.Send(0, 2)
	w.Sim.RunUntil(3 * time.Second)
	d := w.Nodes[2].Protocol().(*Protocol)
	if d.SeqnoDelta() != 0 {
		t.Fatalf("destination bumped seqno %d times on clean discovery", d.SeqnoDelta())
	}
}

func TestResetRequiredBumpsSeqno(t *testing.T) {
	// A solicitation with the Reset flag reaching the destination must
	// increment its sequence number past the requested one.
	w := rtest.New(1, 120, factory, rtest.Chain(2, 100), nil)
	d := w.Nodes[1].Protocol().(*Protocol)
	d.handleRREQ(0, &rreq{Src: 0, RreqID: 1, Dst: 1, DstSeq: 5, FD: 3, Reset: true, TTL: 3})
	if d.mySeq != 6 {
		t.Fatalf("mySeq = %d, want 6", d.mySeq)
	}
	if d.SeqnoDelta() != 1 {
		t.Fatalf("SeqnoDelta = %d, want 1", d.SeqnoDelta())
	}
}

func TestOutOfOrderRelaySetsReset(t *testing.T) {
	p := New(DefaultConfig())
	w := rtest.New(1, 120, func(netstack.NodeID) netstack.Protocol { return p },
		[]geo.Point{{X: 0}}, nil)
	_ = w
	// Relay has a same-era entry with fd >= the carried constraint: the
	// relayed RREQ must carry the reset flag.
	e := p.get(9)
	e.sn, e.fd, e.d = 4, 5, 5
	r := &rreq{Src: 3, RreqID: 7, Dst: 9, DstSeq: 4, FD: 3, TTL: 4, D: 1}
	p.handleRREQ(3, r)
	// The relayed packet is scheduled with jitter; run the sim and
	// inspect via the control counter (1 broadcast happened).
	w.Sim.RunUntil(time.Second)
	if w.MX.ControlTx != 1 {
		t.Fatalf("ControlTx = %d, want 1 relayed RREQ", w.MX.ControlTx)
	}
}

func TestAcceptRules(t *testing.T) {
	p := New(DefaultConfig())
	w := rtest.New(1, 120, func(netstack.NodeID) netstack.Protocol { return p },
		[]geo.Point{{X: 0}}, nil)
	_ = w
	// Fresh era accepted.
	if !p.accept(2, &rrep{Dst: 9, DstSeq: 3, D: 4, Lifetime: time.Second}) {
		t.Fatal("fresh era rejected")
	}
	e := p.table[9]
	if e.sn != 3 || e.d != 5 || e.fd != 5 {
		t.Fatalf("entry = %+v", e)
	}
	// Same era, shorter distance accepted; FD decreases.
	if !p.accept(3, &rrep{Dst: 9, DstSeq: 3, D: 2, Lifetime: time.Second}) {
		t.Fatal("same-era shorter rejected")
	}
	if e.fd != 3 || e.d != 3 || e.nextHop != 3 {
		t.Fatalf("entry = %+v", e)
	}
	// Same era, distance >= FD rejected (SNC).
	if p.accept(4, &rrep{Dst: 9, DstSeq: 3, D: 3, Lifetime: time.Second}) {
		t.Fatal("SNC-violating advertisement accepted")
	}
	// Older era rejected.
	if p.accept(4, &rrep{Dst: 9, DstSeq: 2, D: 0, Lifetime: time.Second}) {
		t.Fatal("stale era accepted")
	}
}

func TestLinkBreakRepair(t *testing.T) {
	pts := rtest.Chain(5, 100)
	models := make([]mobility.Model, 6)
	models[2] = mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: pts[2]},
		{At: 5 * time.Second, Pos: pts[2]},
		{At: 8 * time.Second, Pos: geo.Point{X: pts[2].X, Y: 5000}},
	})
	positions := append(pts, geo.Point{X: 200, Y: 60})
	w := rtest.New(1, 120, factory, positions, models)
	for i := 0; i < 30; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() { w.Send(0, 4) })
	}
	w.Sim.RunUntil(40 * time.Second)
	if err := w.CheckLoopFree(); err != nil {
		t.Fatal(err)
	}
	if w.MX.DataRecv < 20 {
		t.Fatalf("delivered %d/30 (drops %v)", w.MX.DataRecv, w.MX.DataDrops)
	}
}

func TestMobileNetworkLoopFree(t *testing.T) {
	const n = 20
	positions := make([]geo.Point, n)
	models := make([]mobility.Model, n)
	rng := sim.New(31).Rand()
	terrain := geo.Terrain{Width: 800, Height: 300}
	for i := range models {
		models[i] = mobility.NewWaypoint(terrain, rng, 0, 20, 0)
	}
	w := rtest.New(5, 250, factory, positions, models)
	for i := 0; i < 40; i++ {
		i := i
		w.Sim.At(sim.Time(i)*time.Second, func() {
			src := i % n
			w.Send(src, (src+1+i%(n-1))%n)
			if err := w.CheckLoopFree(); err != nil {
				t.Error(err)
			}
		})
	}
	w.Sim.RunUntil(45 * time.Second)
	if w.MX.DataRecv == 0 {
		t.Fatal("nothing delivered")
	}
}

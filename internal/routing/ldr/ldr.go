// Package ldr implements Labeled Distance Routing (Garcia-Luna-Aceves,
// Mosko, Perkins — "A new approach to on-demand loop free routing in ad hoc
// networks", PODC 2003), the closest predecessor of SRP and a baseline of
// the paper's evaluation.
//
// LDR orders nodes by (destination sequence number, feasible distance): a
// neighbor advertising (sn', d') is a feasible successor when sn' is
// fresher, or equally fresh with d' below the node's feasible distance FD —
// the non-increasing minimum distance known in the current sequence-number
// era. Because integers are not dense, a broken path whose nodes cannot be
// re-ordered within the current era cannot be repaired locally: the route
// request must travel to the destination, which increments its sequence
// number to reset the ordering. SRP's contribution is precisely removing
// this limitation with a dense label set; Fig. 7 of the paper contrasts the
// resulting sequence-number growth (LDR low but nonzero, SRP zero).
package ldr

import (
	"fmt"
	"sort"
	"time"

	"slr/internal/netstack"
	"slr/internal/registry"
	"slr/internal/routing/rcommon"
	"slr/internal/sim"
)

// infinity is the feasible distance of an unassigned node.
const infinity = int(^uint(0) >> 1)

// Config holds LDR's constants; they mirror SRP's for a fair comparison.
type Config struct {
	ActiveRouteTimeout sim.Time
	NodeTraversal      sim.Time
	RreqRetries        int
	TTLs               []int
	QueueCap           int
	MaxSalvage         int
	MinReplyHops       int
	UsePacketCache     bool
	// RreqRateLimit caps RREQ originations per second.
	RreqRateLimit int
	// DiscoveryHoldDown delays a fresh discovery for a destination that
	// just failed all retries, so saturated flows do not flood the
	// network with back-to-back failed searches.
	DiscoveryHoldDown sim.Time
}

// DefaultConfig returns the evaluation constants.
func DefaultConfig() Config {
	return Config{
		ActiveRouteTimeout: 10 * time.Second,
		NodeTraversal:      40 * time.Millisecond,
		RreqRetries:        2,
		TTLs:               []int{5, 10, 35},
		QueueCap:           10,
		MaxSalvage:         3,
		MinReplyHops:       2,
		UsePacketCache:     true,
		RreqRateLimit:      10,
		DiscoveryHoldDown:  3 * time.Second,
	}
}

// ConfigFromParams returns DefaultConfig with the spec-level overrides in
// params applied; durations arrive in seconds, booleans as 0/1. Unknown
// keys and out-of-range values are errors.
func ConfigFromParams(params map[string]float64) (Config, error) {
	cfg := DefaultConfig()
	if err := registry.ApplyParams("ldr", params, map[string]func(float64){
		"active_route_timeout_seconds": func(v float64) { cfg.ActiveRouteTimeout = rcommon.Seconds(v) },
		"node_traversal_seconds":       func(v float64) { cfg.NodeTraversal = rcommon.Seconds(v) },
		"rreq_retries":                 func(v float64) { cfg.RreqRetries = int(v) },
		"ttl_0":                        func(v float64) { cfg.TTLs[0] = int(v) },
		"ttl_1":                        func(v float64) { cfg.TTLs[1] = int(v) },
		"ttl_2":                        func(v float64) { cfg.TTLs[2] = int(v) },
		"queue_cap":                    func(v float64) { cfg.QueueCap = int(v) },
		"max_salvage":                  func(v float64) { cfg.MaxSalvage = int(v) },
		"min_reply_hops":               func(v float64) { cfg.MinReplyHops = int(v) },
		"use_packet_cache":             func(v float64) { cfg.UsePacketCache = v != 0 },
		"rreq_rate_limit":              func(v float64) { cfg.RreqRateLimit = int(v) },
		"discovery_holddown_seconds":   func(v float64) { cfg.DiscoveryHoldDown = rcommon.Seconds(v) },
	}); err != nil {
		return Config{}, err
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// validate rejects configurations no deployment could run.
func (c Config) validate() error {
	if c.ActiveRouteTimeout <= 0 || c.NodeTraversal <= 0 {
		return fmt.Errorf("ldr: timeouts must be positive (active_route_timeout %v, node_traversal %v)",
			c.ActiveRouteTimeout, c.NodeTraversal)
	}
	if c.RreqRetries < 0 || c.QueueCap < 1 || c.MaxSalvage < 0 ||
		c.MinReplyHops < 0 || c.DiscoveryHoldDown < 0 {
		return fmt.Errorf("ldr: rreq_retries %d, queue_cap %d, max_salvage %d, min_reply_hops %d, discovery_holddown %v out of range",
			c.RreqRetries, c.QueueCap, c.MaxSalvage, c.MinReplyHops, c.DiscoveryHoldDown)
	}
	for _, t := range c.TTLs {
		if t < 1 {
			return fmt.Errorf("ldr: ttl schedule entry %d must be >= 1", t)
		}
	}
	return nil
}

// rreq is the LDR route request: a solicitation carrying the requester's
// ordering (sequence number, feasible distance) and a reset flag.
type rreq struct {
	Src     netstack.NodeID
	RreqID  uint32
	Dst     netstack.NodeID
	DstSeq  uint64
	FD      int // constraint: minimum feasible distance along the path
	Unknown bool
	Reset   bool
	TTL     int
	D       int // hops traveled
}

// rrep advertises a route with the replier's (sequence number, distance).
type rrep struct {
	Src      netstack.NodeID
	RreqID   uint32
	Dst      netstack.NodeID
	DstSeq   uint64
	D        int
	Lifetime sim.Time
}

// rerr lists newly unreachable destinations.
type rerr struct {
	Dests []netstack.NodeID
}

// Wire sizes: AODV formats with 64-bit sequence numbers.
const (
	rreqSize     = 36
	rrepSize     = 28
	rerrBaseSize = 4
	rerrPerDest  = 12
)

func (e *rerr) size() int { return rerrBaseSize + rerrPerDest*len(e.Dests) }

// entry is the per-destination state: the ordering (sn, fd), measured
// distance, and single next hop (uni-path LDR, as simulated in the paper).
type entry struct {
	sn      uint64
	fd      int // feasible distance, non-increasing within an era
	d       int
	nextHop netstack.NodeID
	valid   bool
	expiry  sim.Time
}

type rreqKey struct {
	src netstack.NodeID
	id  uint32
}

type rreqState struct {
	lastHop netstack.NodeID
	reqSn   uint64
	reqFD   int
	replied bool
	expiry  sim.Time
}

// Protocol is one node's LDR instance.
type Protocol struct {
	netstack.BaseProtocol
	cfg  Config
	node *netstack.Node
	self netstack.NodeID

	mySeq    uint64 // own destination sequence number, starts at 0
	seqBumps uint64 // increments, the Fig. 7 metric
	rreqID   uint32
	table    map[netstack.NodeID]*entry
	rreqs    map[rreqKey]*rreqState
	// disc owns the pending discoveries, their packet queues, and the
	// post-failure hold-down.
	disc *rcommon.DiscoveryTable
	// rreqLimit and rerrLimit enforce RREQ_RATELIMIT / RERR_RATELIMIT.
	rreqLimit rcommon.RateLimiter
	rerrLimit rcommon.RateLimiter
	sweeper   rcommon.Beaconer
}

var _ netstack.Protocol = (*Protocol)(nil)

// New returns an LDR instance.
func New(cfg Config) *Protocol {
	return &Protocol{
		cfg:       cfg,
		table:     make(map[netstack.NodeID]*entry),
		rreqs:     make(map[rreqKey]*rreqState),
		disc:      rcommon.NewDiscoveryTable(cfg.QueueCap, cfg.RreqRetries, cfg.DiscoveryHoldDown),
		rreqLimit: rcommon.RateLimiter{Cap: cfg.RreqRateLimit},
		rerrLimit: rcommon.RateLimiter{Cap: 10},
	}
}

// Attach implements netstack.Protocol.
func (p *Protocol) Attach(n *netstack.Node) {
	p.node = n
	p.self = n.ID()
	p.disc.Attach(n)
}

// Start implements netstack.Protocol. Starting twice is a no-op.
func (p *Protocol) Start() {
	p.sweeper.StartEvery(p.node, 10*time.Second, func() {
		now := p.node.Now()
		for k, st := range p.rreqs {
			if st.expiry <= now {
				delete(p.rreqs, k)
			}
		}
	})
}

// SeqnoDelta reports own-sequence-number increments (Fig. 7).
func (p *Protocol) SeqnoDelta() uint64 { return p.seqBumps }

// SuccessorsOf exposes the next hop for loop checking.
func (p *Protocol) SuccessorsOf(dst netstack.NodeID) []netstack.NodeID {
	if e, ok := p.live(dst); ok {
		return []netstack.NodeID{e.nextHop}
	}
	return nil
}

func (p *Protocol) get(dst netstack.NodeID) *entry {
	e, ok := p.table[dst]
	if !ok {
		e = &entry{fd: infinity}
		p.table[dst] = e
	}
	return e
}

func (p *Protocol) live(dst netstack.NodeID) (*entry, bool) {
	e, ok := p.table[dst]
	if !ok || !e.valid || e.expiry <= p.node.Now() {
		return nil, false
	}
	return e, true
}

// --- Data plane -------------------------------------------------------

// OriginateData implements netstack.Protocol.
func (p *Protocol) OriginateData(pkt *netstack.DataPacket) { p.sendOrDiscover(pkt) }

// RecvData implements netstack.Protocol.
func (p *Protocol) RecvData(from netstack.NodeID, pkt *netstack.DataPacket) {
	if pkt.Dst == p.self {
		pkt.Hops++
		p.node.DeliverLocal(pkt)
		return
	}
	pkt.Hops++
	pkt.TTL--
	if pkt.TTL <= 0 {
		p.node.DropData(pkt, rcommon.DropTTL)
		return
	}
	e, ok := p.live(pkt.Dst)
	if !ok {
		out := &rerr{Dests: []netstack.NodeID{pkt.Dst}}
		p.node.UnicastControl(from, out.size(), out)
		p.node.DropData(pkt, rcommon.DropNoRoute)
		return
	}
	e.expiry = p.node.Now() + p.cfg.ActiveRouteTimeout
	p.node.ForwardData(e.nextHop, pkt)
}

func (p *Protocol) sendOrDiscover(pkt *netstack.DataPacket) {
	if e, ok := p.live(pkt.Dst); ok {
		e.expiry = p.node.Now() + p.cfg.ActiveRouteTimeout
		p.node.ForwardData(e.nextHop, pkt)
		return
	}
	p.disc.Enqueue(pkt, false, p.solicit)
}

// DataFailed implements netstack.Protocol.
func (p *Protocol) DataFailed(to netstack.NodeID, pkt *netstack.DataPacket) {
	p.linkBreak(to)
	if !p.cfg.UsePacketCache || pkt.Salvaged >= p.cfg.MaxSalvage {
		p.node.DropData(pkt, rcommon.DropLinkLost)
		return
	}
	pkt.Salvaged++
	p.sendOrDiscover(pkt)
}

// ControlFailed implements netstack.Protocol.
func (p *Protocol) ControlFailed(to netstack.NodeID, msg any) { p.linkBreak(to) }

func (p *Protocol) linkBreak(to netstack.NodeID) {
	var lost []netstack.NodeID
	for dst, e := range p.table {
		if e.valid && e.nextHop == to {
			e.valid = false
			lost = append(lost, dst)
		}
	}
	if len(lost) > 0 && p.rerrLimit.Allow(p.node.Now()) {
		// Deterministic RERR content whatever the map order.
		sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
		out := &rerr{Dests: lost}
		p.node.BroadcastControl(out.size(), out)
	}
}

// --- Control plane ----------------------------------------------------

// solicit broadcasts a RREQ; over-cap solicitations are deferred, not
// abandoned (RREQ_RATELIMIT).
func (p *Protocol) solicit(pd *rcommon.Discovery) {
	if !p.rreqLimit.Allow(p.node.Now()) {
		p.disc.Defer(pd, 200*time.Millisecond, p.solicit)
		return
	}
	p.rreqID++
	key := rreqKey{src: p.self, id: p.rreqID}
	p.rreqs[key] = &rreqState{lastHop: p.self, reqFD: infinity,
		expiry: p.node.Now() + 30*time.Second, replied: true}
	e := p.get(pd.Dst)
	r := &rreq{
		Src:    p.self,
		RreqID: p.rreqID,
		Dst:    pd.Dst,
		TTL:    p.cfg.TTLs[min(pd.Attempt, len(p.cfg.TTLs)-1)],
	}
	if e.fd == infinity && e.sn == 0 {
		r.Unknown = true
		r.FD = infinity
	} else {
		r.DstSeq = e.sn
		r.FD = e.fd
	}
	p.node.BroadcastControl(rreqSize, r)
	// Binary exponential backoff across retries.
	wait := 2 * sim.Time(r.TTL) * p.cfg.NodeTraversal << uint(pd.Attempt)
	pd.Timer = p.node.After(wait, func() { p.disc.Retry(pd, p.solicit, nil) })
}

// RecvControl implements netstack.Protocol.
func (p *Protocol) RecvControl(from netstack.NodeID, msg any) {
	switch m := msg.(type) {
	case *rreq:
		p.handleRREQ(from, m)
	case *rrep:
		p.handleRREP(from, m)
	case *rerr:
		p.handleRERR(from, m)
	}
}

func (p *Protocol) handleRREQ(from netstack.NodeID, r *rreq) {
	if r.Src == p.self {
		return
	}
	key := rreqKey{src: r.Src, id: r.RreqID}
	if _, dup := p.rreqs[key]; dup {
		return
	}
	p.rreqs[key] = &rreqState{
		lastHop: from,
		reqSn:   r.DstSeq,
		reqFD:   r.FD,
		expiry:  p.node.Now() + 30*time.Second,
	}

	if r.Dst == p.self {
		// Destination reply. A reset-required request forces a larger
		// sequence number — LDR's ordering reset.
		if r.Reset && r.DstSeq >= p.mySeq {
			p.mySeq = r.DstSeq + 1
			p.seqBumps++
		}
		rep := &rrep{Src: r.Src, RreqID: r.RreqID, Dst: p.self,
			DstSeq: p.mySeq, D: 0, Lifetime: p.cfg.ActiveRouteTimeout}
		p.node.UnicastControl(from, rrepSize, rep)
		return
	}

	// Intermediate reply: an active route that is in-order for the
	// request (fresher era, or same era below the FD constraint).
	if e, ok := p.live(r.Dst); ok && r.D+1 >= p.cfg.MinReplyHops {
		inOrder := e.sn > r.DstSeq || r.Unknown ||
			(e.sn == r.DstSeq && e.fd < r.FD && !r.Reset)
		if inOrder {
			st := p.rreqs[key]
			st.replied = true
			rep := &rrep{Src: r.Src, RreqID: r.RreqID, Dst: r.Dst,
				DstSeq: e.sn, D: e.d, Lifetime: p.cfg.ActiveRouteTimeout}
			p.node.UnicastControl(from, rrepSize, rep)
			return
		}
	}

	// Relay, strengthening the constraint (the integer analogue of
	// SRP's Eq. 10) and setting the reset flag when this node is
	// out-of-order and cannot be threaded into the current era — the
	// integer set is not dense, so there is no room to re-order it
	// (the situation SRP's mediant split removes).
	if r.TTL <= 1 {
		return
	}
	z := *r
	z.TTL--
	z.D++
	if e, ok := p.table[r.Dst]; ok && e.fd != infinity {
		switch {
		case e.sn > r.DstSeq || r.Unknown:
			z.DstSeq, z.FD = e.sn, e.fd
			z.Unknown = false
			z.Reset = false
		case e.sn == r.DstSeq && e.fd < r.FD:
			z.FD = e.fd
		case e.sn == r.DstSeq:
			z.Reset = true
		}
	}
	jitter := sim.Time(p.node.Rand().Int63n(int64(10 * time.Millisecond)))
	p.node.After(jitter, func() { p.node.BroadcastControl(rreqSize, &z) })
}

func (p *Protocol) handleRREP(from netstack.NodeID, rep *rrep) {
	key := rreqKey{src: rep.Src, id: rep.RreqID}
	st := p.rreqs[key]
	terminus := rep.Src == p.self

	if !p.accept(from, rep) {
		// Infeasible advertisement: answer from the node's own route
		// when it is in-order for the cached request.
		if !terminus && st != nil && !st.replied {
			if e, ok := p.live(rep.Dst); ok &&
				(e.sn > st.reqSn || (e.sn == st.reqSn && e.fd < st.reqFD)) {
				st.replied = true
				y := &rrep{Src: rep.Src, RreqID: rep.RreqID, Dst: rep.Dst,
					DstSeq: e.sn, D: e.d, Lifetime: p.cfg.ActiveRouteTimeout}
				p.node.UnicastControl(st.lastHop, rrepSize, y)
			}
		}
		return
	}

	if terminus {
		p.complete(rep.Dst)
		return
	}
	if st == nil || st.replied {
		return
	}
	// Forward only while the reply can still satisfy the request's
	// feasible-distance constraint (the Eq. 4 analogue): the new
	// distance must sit strictly below the carried minimum FD when the
	// eras match.
	e := p.table[rep.Dst]
	if e.sn == st.reqSn && e.d >= st.reqFD {
		return
	}
	st.replied = true
	y := &rrep{Src: rep.Src, RreqID: rep.RreqID, Dst: rep.Dst,
		DstSeq: e.sn, D: e.d, Lifetime: p.cfg.ActiveRouteTimeout}
	p.node.UnicastControl(st.lastHop, rrepSize, y)
}

// accept applies the SNC update rule: adopt a fresher era, or a same-era
// route whose advertised distance is strictly below the stored feasible
// distance. It reports whether the route was installed.
func (p *Protocol) accept(from netstack.NodeID, rep *rrep) bool {
	if rep.Dst == p.self {
		return false
	}
	e := p.get(rep.Dst)
	switch {
	case rep.DstSeq > e.sn:
		e.sn = rep.DstSeq
		e.d = rep.D + 1
		e.fd = e.d // new era: feasible distance resets
	case rep.DstSeq == e.sn && rep.D < e.fd:
		e.d = rep.D + 1
		if e.d < e.fd {
			e.fd = e.d // FD is the minimum distance seen this era
		}
	default:
		return false
	}
	e.nextHop = from
	e.valid = true
	e.expiry = p.node.Now() + rep.Lifetime
	return true
}

func (p *Protocol) complete(dst netstack.NodeID) {
	pd, ok := p.disc.Complete(dst)
	if !ok {
		return
	}
	for _, pkt := range pd.Queue {
		e, live := p.live(dst)
		if !live {
			p.node.DropData(pkt, rcommon.DropNoRoute)
			continue
		}
		e.expiry = p.node.Now() + p.cfg.ActiveRouteTimeout
		p.node.ForwardData(e.nextHop, pkt)
	}
}

func (p *Protocol) handleRERR(from netstack.NodeID, e *rerr) {
	var lost []netstack.NodeID
	for _, dst := range e.Dests {
		ent, ok := p.table[dst]
		if !ok || !ent.valid || ent.nextHop != from {
			continue
		}
		ent.valid = false
		lost = append(lost, dst)
	}
	if len(lost) > 0 && p.rerrLimit.Allow(p.node.Now()) {
		out := &rerr{Dests: lost}
		p.node.BroadcastControl(out.size(), out)
	}
}

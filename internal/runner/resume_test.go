package runner

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slr/internal/scenario"
	"slr/internal/sim"
)

// twoRecords is a well-formed JSONL stream of two minimal records.
const twoRecords = `{"protocol":"SRP","pause_seconds":0,"trial":0,"seed":1,"schema":2}
{"protocol":"SRP","pause_seconds":0,"trial":1,"seed":2,"schema":2}
`

func TestSalvageRecords(t *testing.T) {
	for _, tc := range []struct {
		name  string
		in    string
		recs  int
		clean int64
		kind  error // nil, ErrTruncatedTail, ErrMissingNewline, or errOther
	}{
		{"clean", twoRecords, 2, int64(len(twoRecords)), nil},
		{"empty", "", 0, 0, nil},
		{"blank lines", "\n" + twoRecords + "\n", 2, int64(len(twoRecords)) + 2, nil},
		{"cut mid-record", twoRecords + `{"protocol":"SRP","pause_se`, 2, int64(len(twoRecords)), ErrTruncatedTail},
		// The record bytes all arrived, only the final newline did not:
		// the record is salvaged, but the append point stays before it.
		{"cut before newline", strings.TrimSuffix(twoRecords, "\n"), 2,
			int64(strings.Index(twoRecords, "\n") + 1), ErrMissingNewline},
		{"garbage line", twoRecords + "protocol,pause_seconds\n", 2, int64(len(twoRecords)), errOther},
		{"foreign JSON object", `{"event":"login","user":"bob"}` + "\n", 0, 0, errOther},
		// Parsed in full despite the missing newline: foreign content, not
		// a killed-writer tail — resume must refuse, never truncate.
		{"foreign JSON no newline", `{"name":"my-app","port":8080}`, 0, 0, errOther},
		// An unterminated line that is no record prefix (records always
		// start with '{') is foreign too, not a mid-record cut.
		{"plain text no newline", "TODO buy milk", 0, 0, errOther},
	} {
		recs, clean, err := SalvageRecords(strings.NewReader(tc.in))
		if len(recs) != tc.recs || clean != tc.clean {
			t.Errorf("%s: got %d records, clean=%d; want %d, %d", tc.name, len(recs), clean, tc.recs, tc.clean)
		}
		switch tc.kind {
		case nil:
			if err != nil {
				t.Errorf("%s: err = %v, want nil", tc.name, err)
			}
		case errOther:
			if err == nil || errors.Is(err, ErrTruncatedTail) || errors.Is(err, ErrMissingNewline) {
				t.Errorf("%s: err = %v, want a non-kill-artifact error", tc.name, err)
			}
		default:
			if !errors.Is(err, tc.kind) {
				t.Errorf("%s: err = %v, want %v", tc.name, err, tc.kind)
			}
		}
	}
}

// errOther marks salvage-table cases whose error must NOT be a
// killed-writer signature (resume refuses instead of repairing).
var errOther = errors.New("any non-kill-artifact error")

func TestKeyIdentityJobVsRecord(t *testing.T) {
	jobs := GridJobs([]scenario.ProtocolName{scenario.SRP, scenario.AODV}, []float64{0, 50. / 900}, 2, 9,
		func(proto scenario.ProtocolName, pf float64, seed int64) scenario.Params {
			p := tinyParams(proto, seed)
			p.Pause = sim.Time(pf * float64(p.Duration))
			return p
		})
	for _, j := range jobs {
		// The record carries the result's pause/seed, which scenario.Run
		// copies verbatim from Params; mirror that here without running.
		rec := NewRecord(j, scenario.Result{
			Protocol: j.Params.Protocol, Pause: j.Params.Pause, Seed: j.Params.Seed,
		})
		if j.Key() != rec.Key() {
			t.Fatalf("job %d: key mismatch: job %+v, record %+v", j.Index, j.Key(), rec.Key())
		}
	}
	// And through actual JSONL bytes: float pauses must survive the trip.
	j := Job{Trial: 3, Params: tinyParams(scenario.SRP, 7)}
	ns := float64(50_000_000_000) // 50/9 s: an awkward decimal
	j.Params.Pause = sim.Time(ns / 9)
	var buf bytes.Buffer
	e := NewJSONL(&buf)
	if err := e.Emit(j, scenario.Result{Protocol: scenario.SRP, Pause: j.Params.Pause, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	recs, err := ReadRecords(&buf)
	if err != nil || len(recs) != 1 {
		t.Fatalf("read back: %v, %d records", err, len(recs))
	}
	if recs[0].Key() != j.Key() {
		t.Fatalf("key changed through JSONL: %+v vs %+v", recs[0].Key(), j.Key())
	}
}

func TestDedupRecords(t *testing.T) {
	recs, err := ReadRecords(strings.NewReader(twoRecords + twoRecords + twoRecords))
	if err != nil {
		t.Fatal(err)
	}
	recs[2].DeliveryRatio = 0.5 // a later duplicate must lose to the first copy
	out, dropped := DedupRecords(recs)
	if len(out) != 2 || dropped != 4 {
		t.Fatalf("got %d records, %d dropped; want 2, 4", len(out), dropped)
	}
	if out[0].DeliveryRatio != 0 {
		t.Fatalf("dedup kept a later duplicate: %+v", out[0])
	}
}

func TestSkipCompleted(t *testing.T) {
	jobs := TrialJobs(tinyParams(scenario.SRP, 1), 4)
	recs, err := ReadRecords(strings.NewReader(twoRecords))
	if err != nil {
		t.Fatal(err)
	}
	left := SkipCompleted(jobs, KeySet(recs))
	if len(left) != 2 {
		t.Fatalf("got %d jobs left, want 2", len(left))
	}
	for i, j := range left {
		if j.Trial != 2+i || j.Params.Seed != int64(3+i) {
			t.Fatalf("wrong job survived: %+v", j)
		}
	}
	if got := SkipCompleted(jobs, nil); len(got) != len(jobs) {
		t.Fatalf("nil done set dropped jobs: %d", len(got))
	}
}

// TestResumeAfterKillConvergesByteIdentically is the kill-mid-sweep
// regression test: stream a sweep to JSONL, cut the file mid-record as a
// kill would, resume, and require (a) only the missing jobs re-run and
// (b) the resumed file's bytes equal the uninterrupted run's.
func TestResumeAfterKillConvergesByteIdentically(t *testing.T) {
	const trials = 4
	jobs := TrialJobs(tinyParams(scenario.SRP, 60), trials)
	path := filepath.Join(t.TempDir(), "sweep.jsonl")

	// The uninterrupted reference. Workers=1 pins completion order to job
	// order, so the resumed file must match byte for byte, not just as a
	// record set.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(jobs, Options{Workers: 1, Emitters: []Emitter{NewJSONL(f)}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Kill: keep 2 complete records plus half of the third line.
	lines := bytes.SplitAfter(golden, []byte("\n"))
	cut := len(lines[0]) + len(lines[1]) + len(lines[2])/2
	if err := os.WriteFile(path, golden[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	salvaged, rf, dropped, err := ResumeJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(salvaged) != 2 {
		t.Fatalf("salvaged %d records, want 2", len(salvaged))
	}
	if want := int64(cut - len(lines[0]) - len(lines[1])); dropped != want {
		t.Fatalf("dropped %d bytes, want %d", dropped, want)
	}
	missing := SkipCompleted(jobs, KeySet(salvaged))
	if len(missing) != trials-2 {
		t.Fatalf("resume would re-run %d jobs, want %d", len(missing), trials-2)
	}
	for i, j := range missing {
		if j.Trial != 2+i {
			t.Fatalf("resume re-runs trial %d, want %d", j.Trial, 2+i)
		}
	}
	if _, err := Run(missing, Options{Workers: 1, Emitters: []Emitter{NewJSONL(rf)}}); err != nil {
		t.Fatal(err)
	}
	rf.Close()

	resumed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatalf("resumed file differs from uninterrupted run:\n--- resumed ---\n%s--- golden ---\n%s", resumed, golden)
	}

	// A kill between the last record's bytes and its newline: resume
	// repairs the terminator in place rather than re-running the trial.
	if err := os.WriteFile(path, golden[:len(golden)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	salvaged, rf, dropped, err = ResumeJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if len(salvaged) != trials || dropped != 0 {
		t.Fatalf("newline repair salvaged %d records, dropped %d; want %d, 0", len(salvaged), dropped, trials)
	}
	if left := SkipCompleted(jobs, KeySet(salvaged)); len(left) != 0 {
		t.Fatalf("newline repair would re-run %d jobs", len(left))
	}
	repaired, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(repaired, golden) {
		t.Fatalf("newline repair did not restore the file (%v):\n%s", err, repaired)
	}

	// Resuming a complete file is a no-op: nothing to run, nothing changed.
	salvaged, rf, dropped, err = ResumeJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	rf.Close()
	if len(salvaged) != trials || dropped != 0 {
		t.Fatalf("re-resume salvaged %d records, dropped %d", len(salvaged), dropped)
	}
	if left := SkipCompleted(jobs, KeySet(salvaged)); len(left) != 0 {
		t.Fatalf("re-resume would re-run %d jobs", len(left))
	}
}

// TestResumeJSONLRefusesForeignFile verifies resume does not truncate a
// non-empty file with no salvageable records and no killed-writer
// signature — e.g. a CSV mistaken for the JSONL.
func TestResumeJSONLRefusesForeignFile(t *testing.T) {
	for name, content := range map[string]string{
		"csv": "protocol,pause_seconds,trial\nSRP,0,0\n",
		// Valid JSONL of some other tool: unmarshals into a Record but has
		// no protocol field — must not be "salvaged" and appended to.
		"foreign jsonl": `{"event":"login","user":"bob"}` + "\n" + `{"event":"logout","user":"bob"}` + "\n",
		// Garbage spliced mid-file is not a kill artifact: truncating at
		// the damage would destroy every good record after it.
		"mid-file corruption": twoRecords + "!!corrupt!!\n" + twoRecords,
		// A one-line config file with no trailing newline parses as JSON
		// but is no record; wiping it with Truncate(0) would be data loss.
		"unterminated foreign json": `{"name":"my-app","port":8080}`,
		// So would wiping a text file that never held a record at all.
		"unterminated plain text": "TODO buy milk",
	} {
		path := filepath.Join(t.TempDir(), "not-a-sweep")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := ResumeJSONL(path); err == nil {
			t.Fatalf("resume accepted a %s file", name)
		}
		got, err := os.ReadFile(path)
		if err != nil || string(got) != content {
			t.Fatalf("refused %s resume still modified the file: %q, %v", name, got, err)
		}
	}

	// A fresh (missing) file is a normal cold start, not an error.
	fresh := filepath.Join(t.TempDir(), "new.jsonl")
	recs, f, dropped, err := ResumeJSONL(fresh)
	if err != nil || len(recs) != 0 || dropped != 0 {
		t.Fatalf("cold-start resume: %d records, %d dropped, %v", len(recs), dropped, err)
	}
	f.Close()
}

func TestCreateOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if err := os.WriteFile(path, []byte("precious sweep\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateOutput(path, false); err == nil {
		t.Fatal("clobbered a non-empty file without -force")
	}
	if got, _ := os.ReadFile(path); string(got) != "precious sweep\n" {
		t.Fatalf("refused create still modified the file: %q", got)
	}
	f, err := CreateOutput(path, true)
	if err != nil {
		t.Fatalf("force overwrite: %v", err)
	}
	f.Close()
	// Empty or missing files are fair game without force.
	for _, p := range []string{path, filepath.Join(t.TempDir(), "new.jsonl")} {
		f, err := CreateOutput(p, false)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		f.Close()
	}
}

package runner

import (
	"fmt"
	"strconv"
	"strings"
)

// ShardSpec selects one deterministic slice of a flattened job list so N
// cooperating processes (or machines) can split a sweep: shard i of n keeps
// the jobs at positions i-1, i-1+n, i-1+2n, ... Round-robin by position —
// not contiguous blocks — so every shard sees the same mix of protocols and
// pause times and the shards finish in comparable wall-clock time.
//
// Because every job carries fully seeded Params fixed at flatten time, the
// union of the n shards' results is record-for-record identical (up to
// completion order) to a single-process sweep of the same grid; see
// cmd/slranalyze for merging the shards' JSONL back into one analysis.
//
// The zero value selects everything. ShardSpec implements flag.Value, so
// CLIs bind it directly: -shard 2/4.
type ShardSpec struct {
	Index int // 1-based shard number, 1 <= Index <= Count
	Count int // total shards; 0 means unsharded
}

// ParseShard parses "i/n" (1-based, e.g. "2/4").
func ParseShard(s string) (ShardSpec, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("shard %q: want i/n, e.g. 2/4", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("shard %q: bad index: %v", s, err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(n))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("shard %q: bad count: %v", s, err)
	}
	if cnt < 1 || idx < 1 || idx > cnt {
		return ShardSpec{}, fmt.Errorf("shard %q: want 1 <= i <= n", s)
	}
	return ShardSpec{Index: idx, Count: cnt}, nil
}

// String renders the spec back to its flag form ("" when unsharded).
func (s ShardSpec) String() string {
	if s.Count == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// Set implements flag.Value.
func (s *ShardSpec) Set(v string) error {
	parsed, err := ParseShard(v)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// Select returns this shard's slice of jobs, by flattened position. The
// zero spec — and any spec without a valid 1-based index, which
// ParseShard would never produce — returns jobs unchanged rather than
// panicking; shards of the same count are disjoint and their union is the
// full list.
func (s ShardSpec) Select(jobs []Job) []Job {
	if s.Count <= 1 || s.Index < 1 || s.Index > s.Count {
		return jobs
	}
	out := make([]Job, 0, (len(jobs)+s.Count-1)/s.Count)
	for i := s.Index - 1; i < len(jobs); i += s.Count {
		out = append(out, jobs[i])
	}
	return out
}

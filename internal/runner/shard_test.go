package runner

import (
	"testing"

	"slr/internal/scenario"
)

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in        string
		want      ShardSpec
		wantError bool
	}{
		{"1/1", ShardSpec{1, 1}, false},
		{"2/4", ShardSpec{2, 4}, false},
		{" 3 / 3 ", ShardSpec{3, 3}, false},
		{"0/4", ShardSpec{}, true},
		{"5/4", ShardSpec{}, true},
		{"1/0", ShardSpec{}, true},
		{"-1/-1", ShardSpec{}, true},
		{"2", ShardSpec{}, true},
		{"a/b", ShardSpec{}, true},
		{"", ShardSpec{}, true},
	} {
		got, err := ParseShard(tc.in)
		if (err != nil) != tc.wantError || got != tc.want {
			t.Errorf("ParseShard(%q) = %+v, %v; want %+v, error=%v", tc.in, got, err, tc.want, tc.wantError)
		}
	}
	// flag.Value round trip.
	var s ShardSpec
	if err := s.Set("2/4"); err != nil || s.String() != "2/4" {
		t.Errorf("Set/String round trip: %+v, %v", s, err)
	}
	if (ShardSpec{}).String() != "" {
		t.Errorf("zero value should render empty")
	}
}

// TestShardSelectPartition verifies the shards of any count are disjoint,
// cover every job, and preserve flatten order — the property that makes
// the union of shard outputs record-for-record equal to one process's.
func TestShardSelectPartition(t *testing.T) {
	jobs := TrialJobs(tinyParams(scenario.SRP, 100), 11)
	if got := (ShardSpec{}).Select(jobs); len(got) != len(jobs) {
		t.Fatalf("zero spec selected %d of %d jobs", len(got), len(jobs))
	}
	if got := (ShardSpec{1, 1}).Select(jobs); len(got) != len(jobs) {
		t.Fatalf("1/1 selected %d of %d jobs", len(got), len(jobs))
	}
	for _, count := range []int{2, 3, 4, 11, 16} {
		claimed := map[int]int{}
		for idx := 1; idx <= count; idx++ {
			part := ShardSpec{idx, count}.Select(jobs)
			last := -1
			for _, j := range part {
				claimed[j.Index]++
				if j.Index <= last {
					t.Fatalf("shard %d/%d out of order: %d after %d", idx, count, j.Index, last)
				}
				last = j.Index
			}
		}
		for i := range jobs {
			if claimed[i] != 1 {
				t.Fatalf("count=%d: job %d claimed %d times", count, i, claimed[i])
			}
		}
	}
	// More shards than jobs: the extras are empty, the union still covers.
	if got := (ShardSpec{16, 16}).Select(jobs[:4]); len(got) != 0 {
		t.Fatalf("shard 16/16 of 4 jobs = %d jobs, want 0", len(got))
	}
	// A hand-built spec with no valid index (ParseShard would reject it)
	// selects everything instead of panicking on jobs[-1].
	for _, s := range []ShardSpec{{0, 2}, {3, 2}, {-1, 2}} {
		if got := s.Select(jobs); len(got) != len(jobs) {
			t.Fatalf("invalid spec %+v selected %d of %d jobs", s, len(got), len(jobs))
		}
	}
}

package runner

import (
	"fmt"
	"strconv"
	"strings"
)

// Key identifies one trial across processes: the (protocol, pause, trial,
// seed) coordinates that are fixed at flatten time and serialized into
// every Record. Because trials are deterministic, two records with the
// same Key hold the same measurements, so the key is what sharded sweeps
// de-duplicate on, what resume uses to skip already-completed jobs, and
// what the sweep coordinator (internal/sweepd) leases and acknowledges
// over the wire.
//
// Pause is in seconds, exactly as serialized: float64 values survive the
// JSON round trip bit for bit (the encoder emits the shortest
// representation that parses back to the same value), so keys built from a
// Job and from its re-read Record always compare equal.
type Key struct {
	Protocol string
	Pause    float64
	Trial    int
	Seed     int64
}

// String renders the key's canonical encoding,
// "protocol|pause|trial|seed" — e.g. "SRP|7.5|2|102". Pause uses the
// shortest float representation that parses back to the same value (the
// same rule the JSON encoder applies to pause_seconds), so String is
// injective: two keys render equal strings exactly when they are equal.
// This one encoding is used everywhere keys are compared or transmitted —
// dedup maps, resume skip-sets, the coordinator's lease table, and the
// /v1 wire format — so the equality semantics cannot drift between them.
func (k Key) String() string {
	return k.Protocol + "|" + strconv.FormatFloat(k.Pause, 'g', -1, 64) +
		"|" + strconv.Itoa(k.Trial) + "|" + strconv.FormatInt(k.Seed, 10)
}

// ParseKey inverts Key.String. It rejects anything String cannot have
// produced: a wrong field count, an empty protocol (no Record carries
// one; see SalvageRecords), or unparsable numbers.
func ParseKey(s string) (Key, error) {
	parts := strings.Split(s, "|")
	if len(parts) != 4 {
		return Key{}, fmt.Errorf("key %q: want protocol|pause|trial|seed", s)
	}
	if parts[0] == "" {
		return Key{}, fmt.Errorf("key %q: empty protocol", s)
	}
	pause, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return Key{}, fmt.Errorf("key %q: bad pause: %v", s, err)
	}
	trial, err := strconv.Atoi(parts[2])
	if err != nil {
		return Key{}, fmt.Errorf("key %q: bad trial: %v", s, err)
	}
	seed, err := strconv.ParseInt(parts[3], 10, 64)
	if err != nil {
		return Key{}, fmt.Errorf("key %q: bad seed: %v", s, err)
	}
	return Key{Protocol: parts[0], Pause: pause, Trial: trial, Seed: seed}, nil
}

// Key returns the job's identity key.
func (j Job) Key() Key {
	return Key{
		Protocol: string(j.Params.Protocol),
		Pause:    j.Params.Pause.Seconds(),
		Trial:    j.Trial,
		Seed:     j.Params.Seed,
	}
}

// Key returns the record's identity key.
func (r Record) Key() Key {
	return Key{Protocol: r.Protocol, Pause: r.PauseSeconds, Trial: r.Trial, Seed: r.Seed}
}

// KeySet collects the canonical identity keys of completed records.
func KeySet(recs []Record) map[string]bool {
	if len(recs) == 0 {
		return nil
	}
	done := make(map[string]bool, len(recs))
	for _, rec := range recs {
		done[rec.Key().String()] = true
	}
	return done
}

// SkipCompleted drops jobs whose canonical identity key is in done — the
// resume filter: feed it the keys salvaged from an existing JSONL output
// and only the missing trials run.
func SkipCompleted(jobs []Job, done map[string]bool) []Job {
	if len(done) == 0 {
		return jobs
	}
	out := make([]Job, 0, len(jobs))
	for _, j := range jobs {
		if !done[j.Key().String()] {
			out = append(out, j)
		}
	}
	return out
}

// DedupRecords drops records whose identity key was already seen, keeping
// the first occurrence, and reports how many were dropped. Merging shard
// outputs or a resumed file with its own partial predecessor can repeat a
// trial; determinism makes the copies identical, so keeping the first is
// lossless.
// Dedup runs on every merge path (often redundantly, as a cheap
// invariant), so the no-duplicates case returns the input slice as is.
func DedupRecords(recs []Record) ([]Record, int) {
	seen := make(map[string]bool, len(recs))
	out := recs
	dropped := 0
	for i, rec := range recs {
		k := rec.Key().String()
		if seen[k] {
			if dropped == 0 {
				out = append([]Record(nil), recs[:i]...)
			}
			dropped++
			continue
		}
		seen[k] = true
		if dropped > 0 {
			out = append(out, rec)
		}
	}
	return out, dropped
}

package runner

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"slr/internal/metrics"
	"slr/internal/scenario"
)

// dropResult builds a result with a many-keyed drop-reason map, the field
// whose map iteration order used to leak into serialized output.
func dropResult() scenario.Result {
	return scenario.Result{
		Protocol: scenario.SRP,
		Seed:     3,
		DropReasons: map[string]uint64{
			"no-route": 4, "ttl": 1, "mac-retry": 9, "queue-full": 2,
			"loop": 7, "stale": 5, "cache-miss": 3, "filter": 8,
		},
	}
}

// TestEmitDropReasonsByteStable verifies repeated serialization of the
// same result is byte-identical: drop reasons are sorted, not emitted in
// map order.
func TestEmitDropReasonsByteStable(t *testing.T) {
	render := func() (string, string) {
		var js, cs bytes.Buffer
		je, ce := NewJSONL(&js), NewCSV(&cs)
		r := dropResult()
		if err := je.Emit(Job{}, r); err != nil {
			t.Fatal(err)
		}
		if err := ce.Emit(Job{}, r); err != nil {
			t.Fatal(err)
		}
		if err := je.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := ce.Flush(); err != nil {
			t.Fatal(err)
		}
		return js.String(), cs.String()
	}
	j0, c0 := render()
	for i := 0; i < 20; i++ {
		if j, c := render(); j != j0 || c != c0 {
			t.Fatalf("iteration %d: serialization not byte-stable:\n%q\n%q", i, j, c)
		}
	}
	wantOrder := "cache-miss=3;filter=8;loop=7;mac-retry=9;no-route=4;queue-full=2;stale=5;ttl=1"
	if !strings.Contains(c0, wantOrder) {
		t.Fatalf("csv drop reasons not reason-sorted:\n%s", c0)
	}
	for _, want := range []string{`"reason":"cache-miss","count":3`, `"drop_reasons":[`} {
		if !strings.Contains(j0, want) {
			t.Fatalf("jsonl missing %q:\n%s", want, j0)
		}
	}
}

// TestCSVEmptySweepWritesHeader verifies a sweep that completed zero
// trials still produces a parseable CSV (header row), not a zero-byte
// file.
func TestCSVEmptySweepWritesHeader(t *testing.T) {
	var buf bytes.Buffer
	e := NewCSV(&buf)
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.HasPrefix(got, "protocol,pause_seconds,trial,seed,") {
		t.Fatalf("empty-sweep CSV missing header: %q", got)
	}
	if strings.Count(got, "\n") != 1 {
		t.Fatalf("empty-sweep CSV should be exactly the header row: %q", got)
	}
	// A second Flush (or an Emit after it) must not duplicate the header.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.Emit(Job{}, scenario.Result{Protocol: scenario.SRP}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "protocol,") != 1 {
		t.Fatalf("header duplicated:\n%s", buf.String())
	}
}

// TestEmitZeroDeliverySentinel verifies the NaN network-load sentinel
// survives both serializations: null in JSONL (JSON has no NaN), "NaN" in
// the CSV cell — never a raw control-packet count.
func TestEmitZeroDeliverySentinel(t *testing.T) {
	r := scenario.Result{Protocol: scenario.SRP, NetworkLoad: math.NaN(), ControlTx: 500}
	var js, cs bytes.Buffer
	je, ce := NewJSONL(&js), NewCSV(&cs)
	if err := je.Emit(Job{}, r); err != nil {
		t.Fatal(err)
	}
	if err := ce.Emit(Job{}, r); err != nil {
		t.Fatal(err)
	}
	je.Flush()
	ce.Flush()
	if !strings.Contains(js.String(), `"network_load":null`) {
		t.Fatalf("jsonl zero-delivery load not null:\n%s", js.String())
	}
	if !strings.Contains(cs.String(), ",NaN,") {
		t.Fatalf("csv zero-delivery load not NaN:\n%s", cs.String())
	}
	// And it reads back as the NaN sentinel.
	recs, err := ReadRecords(&js)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || !math.IsNaN(recs[0].Result().NetworkLoad) {
		t.Fatalf("round trip lost the sentinel: %+v", recs)
	}
}

// TestV1ZeroDeliveryNormalizedOnRead verifies archived version-1 JSONL —
// whose zero-delivery records carry the raw ControlTx count in
// network_load — reads back as the NaN sentinel, so offline analysis of
// old sweeps gets the same exclusion semantics as fresh ones.
func TestV1ZeroDeliveryNormalizedOnRead(t *testing.T) {
	v1 := strings.NewReader(
		`{"protocol":"DSR","pause_seconds":0,"trial":0,"seed":1,"delivery_ratio":0,"network_load":500,"latency_sec":0,"data_sent":100,"data_recv":0,"control_tx":500}
{"protocol":"DSR","pause_seconds":0,"trial":1,"seed":2,"delivery_ratio":0.5,"network_load":2,"data_sent":100,"data_recv":50,"control_tx":100}
`)
	recs, err := ReadRecords(v1)
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[0].Result().NetworkLoad; !math.IsNaN(got) {
		t.Errorf("v1 zero-delivery load = %v, want NaN sentinel (raw count must not skew averages)", got)
	}
	if got := recs[1].Result().NetworkLoad; got != 2 {
		t.Errorf("v1 defined load = %v, want 2 untouched", got)
	}
}

// TestRecordRoundTrip verifies Record.Result inverts NewRecord for every
// field the offline aggregator consumes, through actual JSONL bytes.
func TestRecordRoundTrip(t *testing.T) {
	r := scenario.Result{
		Protocol:      scenario.LDR,
		Pause:         30 * time.Second,
		Seed:          42,
		DeliveryRatio: 0.875,
		NetworkLoad:   1.25,
		Latency:       0.0625,
		MACDrops:      3.5,
		AvgSeqno:      2.25,
		MeanHops:      2.5,
		DataSent:      1000,
		DataRecv:      875,
		ControlTx:     1250,
		Collisions:    77,
		MaxDenom:      12,
		DropReasons:   map[string]uint64{"no-route": 5, "ttl": 1},
		LatencyP50:    0.016383,
		LatencyP95:    0.065535,
		LatencyP99:    0.131071,
		Flows: []metrics.FlowStat{
			{Flow: 1, Sent: 600, Recv: 500, FirstRecv: time.Second, LastRecv: 90 * time.Second},
			{Flow: 3, Sent: 400, Recv: 375, FirstRecv: 2 * time.Second, LastRecv: 80 * time.Second},
		},
	}
	for _, us := range []uint64{900, 14000, 14000, 120000} {
		r.LatencyHist.Observe(us)
	}
	for _, h := range []uint64{1, 2, 2, 4} {
		r.HopHist.Observe(h)
	}

	var buf bytes.Buffer
	e := NewJSONL(&buf)
	if err := e.Emit(Job{Trial: 7}, r); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	recs, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Schema != RecordSchema || recs[0].Trial != 7 {
		t.Errorf("schema/trial = %d/%d", recs[0].Schema, recs[0].Trial)
	}
	got := recs[0].Result()
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

// TestEmitNoDropReasonsOmitted verifies an empty map stays out of the
// JSON line entirely.
func TestEmitNoDropReasonsOmitted(t *testing.T) {
	var js bytes.Buffer
	je := NewJSONL(&js)
	if err := je.Emit(Job{}, scenario.Result{Protocol: scenario.SRP}); err != nil {
		t.Fatal(err)
	}
	if err := je.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js.String(), "drop_reasons") {
		t.Fatalf("empty drop reasons serialized: %s", js.String())
	}
}

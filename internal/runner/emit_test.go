package runner

import (
	"bytes"
	"strings"
	"testing"

	"slr/internal/scenario"
)

// dropResult builds a result with a many-keyed drop-reason map, the field
// whose map iteration order used to leak into serialized output.
func dropResult() scenario.Result {
	return scenario.Result{
		Protocol: scenario.SRP,
		Seed:     3,
		DropReasons: map[string]uint64{
			"no-route": 4, "ttl": 1, "mac-retry": 9, "queue-full": 2,
			"loop": 7, "stale": 5, "cache-miss": 3, "filter": 8,
		},
	}
}

// TestEmitDropReasonsByteStable verifies repeated serialization of the
// same result is byte-identical: drop reasons are sorted, not emitted in
// map order.
func TestEmitDropReasonsByteStable(t *testing.T) {
	render := func() (string, string) {
		var js, cs bytes.Buffer
		je, ce := NewJSONL(&js), NewCSV(&cs)
		r := dropResult()
		if err := je.Emit(Job{}, r); err != nil {
			t.Fatal(err)
		}
		if err := ce.Emit(Job{}, r); err != nil {
			t.Fatal(err)
		}
		if err := je.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := ce.Flush(); err != nil {
			t.Fatal(err)
		}
		return js.String(), cs.String()
	}
	j0, c0 := render()
	for i := 0; i < 20; i++ {
		if j, c := render(); j != j0 || c != c0 {
			t.Fatalf("iteration %d: serialization not byte-stable:\n%q\n%q", i, j, c)
		}
	}
	wantOrder := "cache-miss=3;filter=8;loop=7;mac-retry=9;no-route=4;queue-full=2;stale=5;ttl=1"
	if !strings.Contains(c0, wantOrder) {
		t.Fatalf("csv drop reasons not reason-sorted:\n%s", c0)
	}
	for _, want := range []string{`"reason":"cache-miss","count":3`, `"drop_reasons":[`} {
		if !strings.Contains(j0, want) {
			t.Fatalf("jsonl missing %q:\n%s", want, j0)
		}
	}
}

// TestEmitNoDropReasonsOmitted verifies an empty map stays out of the
// JSON line entirely.
func TestEmitNoDropReasonsOmitted(t *testing.T) {
	var js bytes.Buffer
	je := NewJSONL(&js)
	if err := je.Emit(Job{}, scenario.Result{Protocol: scenario.SRP}); err != nil {
		t.Fatal(err)
	}
	if err := je.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js.String(), "drop_reasons") {
		t.Fatalf("empty drop reasons serialized: %s", js.String())
	}
}

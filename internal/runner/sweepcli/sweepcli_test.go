package sweepcli

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/traffic"
)

func tinyParams(proto scenario.ProtocolName, seed int64) scenario.Params {
	p := scenario.DefaultParams(proto, 0, seed)
	p.Nodes = 12
	p.Terrain = geo.Terrain{Width: 700, Height: 300}
	p.Duration = 15 * time.Second
	p.Traffic = traffic.Params{Flows: 3, PacketSize: 512, Rate: 4, MeanLife: 10 * time.Second}
	return p
}

// TestRegisterFlagSurface pins the shared flag names: every binary that
// calls Register exposes exactly this orchestration surface.
func TestRegisterFlagSurface(t *testing.T) {
	for _, withCSV := range []bool{false, true} {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		Register(fs, withCSV)
		want := []string{"jsonl", "resume", "force", "shard"}
		if withCSV {
			want = append(want, "csv")
		}
		for _, name := range want {
			if fs.Lookup(name) == nil {
				t.Errorf("withCSV=%v: flag -%s not registered", withCSV, name)
			}
		}
		if !withCSV && fs.Lookup("csv") != nil {
			t.Error("withCSV=false registered -csv anyway")
		}
	}
}

// TestValidateRules pins the shared flag-combination refusals.
func TestValidateRules(t *testing.T) {
	if err := (&Flags{Resume: true}).Validate(); err == nil {
		t.Error("-resume without -jsonl accepted")
	}
	if err := (&Flags{Resume: true, JSONL: "a.jsonl", CSV: "a.csv"}).Validate(); err == nil {
		t.Error("-resume with -csv accepted")
	}
	if err := (&Flags{Resume: true, JSONL: "a.jsonl"}).Validate(); err != nil {
		t.Errorf("valid resume combination refused: %v", err)
	}
	if err := (&Flags{}).Validate(); err != nil {
		t.Errorf("zero flags refused: %v", err)
	}
}

// TestOpenClobberGuard verifies Open refuses an existing non-empty
// output without -resume/-force, leaving the file untouched.
func TestOpenClobberGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	if err := os.WriteFile(path, []byte("{\"protocol\":\"SRP\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := &Flags{JSONL: path}
	if _, err := f.Open(io.Discard); !errors.Is(err, runner.ErrWouldClobber) {
		t.Fatalf("got %v, want ErrWouldClobber", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil || string(blob) != "{\"protocol\":\"SRP\"}\n" {
		t.Fatalf("refused file was modified: %q, %v", blob, err)
	}
	// -force truncates and starts fresh.
	ff := &Flags{JSONL: path, Force: true}
	out, err := ff.Open(io.Discard)
	if err != nil {
		t.Fatalf("-force open: %v", err)
	}
	defer out.Close()
	if len(out.Salvaged) != 0 || out.JSONLFile == nil || len(out.Emitters) != 1 {
		t.Fatalf("force-open outputs: salvaged=%d file=%v emitters=%d",
			len(out.Salvaged), out.JSONLFile != nil, len(out.Emitters))
	}
}

// TestOpenResumeAndJobsPipeline runs the full shared pipeline: a sweep's
// JSONL is cut mid-record, Open salvages it, and Jobs re-runs only the
// missing trials after the shard slice.
func TestOpenResumeAndJobsPipeline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	p := tinyParams(scenario.SRP, 1)
	jobs := runner.TrialJobs(p, 4)

	// Write records for trials 0 and 2, then a truncated tail.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	e := runner.NewJSONL(f)
	for _, i := range []int{0, 2} {
		if err := e.Emit(jobs[i], scenario.Result{Protocol: p.Protocol, Pause: jobs[i].Params.Pause, Seed: jobs[i].Params.Seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"protocol":"SRP","pause_`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cli := &Flags{JSONL: path, Resume: true}
	if err := cli.Validate(); err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	out, err := cli.Open(&stderr)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if len(out.Salvaged) != 2 {
		t.Fatalf("salvaged %d records, want 2", len(out.Salvaged))
	}
	left := cli.Jobs(jobs, out, &stderr)
	if len(left) != 2 || left[0].Trial != 1 || left[1].Trial != 3 {
		t.Fatalf("jobs after resume: %+v", left)
	}
	if !strings.Contains(stderr.String(), "2 of 4 jobs already complete") {
		t.Fatalf("missing shared resume message in %q", stderr.String())
	}

	// The shard slice applies before the skip filter, like both CLIs.
	cli.Shard = runner.ShardSpec{Index: 1, Count: 2} // trials 0, 2 — all salvaged
	if left := cli.Jobs(jobs, out, io.Discard); len(left) != 0 {
		t.Fatalf("sharded resume left %d jobs, want 0", len(left))
	}
}

// Package sweepcli is the one implementation of the sweep binaries'
// shared orchestration surface: the -jsonl/-csv output streams, the
// -shard slice, and the -resume/-force clobber semantics that
// cmd/experiments, cmd/slrsim, and cmd/slrserve all expose. Each binary
// registers the same flags with the same help text, validates them with
// the same rules, opens outputs through the same clobber/salvage guards
// (runner.OpenJSONLOutput, runner.CreateOutput), and filters its job list
// through the same shard/resume pipeline — so the three CLIs cannot
// drift on failure semantics or messaging.
package sweepcli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"slr/internal/runner"
)

// Flags holds the shared sweep flags after parsing. Zero values mean the
// flag was not given.
type Flags struct {
	// JSONL is the -jsonl per-trial stream path ("" = none).
	JSONL string
	// CSV is the -csv per-trial stream path; registered only by binaries
	// that pass withCSV to Register (the CSV stream cannot be resumed, so
	// worker-style binaries omit it).
	CSV string
	// Resume continues an interrupted -jsonl stream instead of refusing
	// to touch it: salvage its complete records, skip their jobs, append
	// only the missing trials.
	Resume bool
	// Force overwrites an existing non-empty output.
	Force bool
	// Shard selects one deterministic 1/n slice of the flattened job
	// list.
	Shard runner.ShardSpec

	withCSV bool
}

// Register binds the shared flags onto fs. withCSV also registers -csv
// (cmd/experiments streams CSV; the single-run and daemon binaries do
// not).
func Register(fs *flag.FlagSet, withCSV bool) *Flags {
	f := &Flags{withCSV: withCSV}
	fs.StringVar(&f.JSONL, "jsonl", "", "stream per-trial results as JSON lines to this file")
	if withCSV {
		fs.StringVar(&f.CSV, "csv", "", "stream per-trial results as CSV to this file")
	}
	fs.BoolVar(&f.Resume, "resume", false, "resume an interrupted -jsonl sweep: salvage its complete records, skip their jobs, append only the missing trials")
	fs.BoolVar(&f.Force, "force", false, "overwrite an existing non-empty output")
	fs.Var(&f.Shard, "shard", "run only shard `i/n` (1-based) of the flattened job list; concatenate the shards' JSONL and merge with slranalyze")
	return f
}

// Validate enforces the flag combinations every binary rejects the same
// way.
func (f *Flags) Validate() error {
	if f.Resume && f.JSONL == "" {
		return fmt.Errorf("-resume needs -jsonl: the JSONL stream is the checkpoint it salvages")
	}
	if f.Resume && f.CSV != "" {
		return fmt.Errorf("-resume cannot continue a CSV stream (records are not read back from CSV); resume with -jsonl alone")
	}
	return nil
}

// Outputs holds the opened per-trial streams.
type Outputs struct {
	// Salvaged are the complete records recovered from a resumed -jsonl
	// file (nil on a fresh start).
	Salvaged []runner.Record
	// Emitters stream completed trials to every requested output.
	Emitters []runner.Emitter
	// JSONLFile is the open -jsonl stream, positioned for appending (nil
	// without -jsonl). The coordinator daemon checkpoints through it
	// directly; the sweep binaries use the JSONL Emitter instead.
	JSONLFile *os.File

	files []*os.File
}

// Close closes every opened output file.
func (o *Outputs) Close() {
	for _, f := range o.files {
		f.Close()
	}
}

// Open creates (or, under -resume, reopens) the requested output streams
// behind the shared clobber/salvage guards, reporting salvage results to
// stderr. Callers invoke it only after every flag and spec has validated:
// an existing non-empty output is never truncated unless -force, and a
// typo elsewhere must not clobber an existing sweep's results.
func (f *Flags) Open(stderr io.Writer) (*Outputs, error) {
	out := &Outputs{}
	if f.JSONL != "" {
		recs, jf, err := runner.OpenJSONLOutput(f.JSONL, f.Resume, f.Force, stderr)
		if err != nil {
			return nil, err
		}
		out.Salvaged = recs
		out.JSONLFile = jf
		out.files = append(out.files, jf)
		out.Emitters = append(out.Emitters, runner.NewJSONL(jf))
	}
	if f.CSV != "" {
		cf, err := runner.CreateOutput(f.CSV, f.Force)
		if err != nil {
			out.Close()
			return nil, err
		}
		out.files = append(out.files, cf)
		out.Emitters = append(out.Emitters, runner.NewCSV(cf))
	}
	return out, nil
}

// Jobs runs the job list through the shared shard/resume pipeline: the
// -shard slice first, then — under -resume — the skip filter fed by the
// salvaged records, with the shared progress/warning messages on stderr.
func (f *Flags) Jobs(jobs []runner.Job, o *Outputs, stderr io.Writer) []runner.Job {
	jobs = f.Shard.Select(jobs)
	if f.Resume {
		jobs = runner.ResumeJobs(jobs, o.Salvaged, stderr)
	}
	return jobs
}

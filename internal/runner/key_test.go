package runner

import (
	"math"
	"strings"
	"testing"
	"time"

	"slr/internal/scenario"
)

// TestKeyStringRoundTrip pins the canonical codec: ParseKey(k.String())
// must reproduce k exactly, including pause values that do not render as
// short decimals.
func TestKeyStringRoundTrip(t *testing.T) {
	keys := []Key{
		{},
		{Protocol: "SRP", Pause: 0, Trial: 0, Seed: 1},
		{Protocol: "OLSR", Pause: 7.5, Trial: 3, Seed: -42},
		{Protocol: "AODV", Pause: 50. / 900 * 900, Trial: 9, Seed: 1 << 40},
		{Protocol: "LDR", Pause: 0.1 + 0.2, Trial: 1, Seed: 0}, // 0.30000000000000004
		{Protocol: "DSR", Pause: math.MaxFloat64, Trial: math.MaxInt32, Seed: math.MinInt64},
		{Protocol: "X2", Pause: math.SmallestNonzeroFloat64, Trial: 0, Seed: 7},
	}
	for _, k := range keys {
		s := k.String()
		got, err := ParseKey(s)
		if k.Protocol == "" {
			// The zero key is unparsable by design: no record has an empty
			// protocol, so String output with one never occurs in maps or
			// on the wire.
			if err == nil {
				t.Fatalf("ParseKey(%q) accepted an empty protocol", s)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", s, err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %+v, want %+v", s, got, k)
		}
	}
}

// TestKeyStringMatchesJSONRoundTrip verifies the codec's pause rendering
// agrees with the JSON encoder's: a key built from a Job and one built
// from the Job's emitted-and-reparsed Record render the same string.
func TestKeyStringMatchesJSONRoundTrip(t *testing.T) {
	p := tinyParams(scenario.SRP, 11)
	p.Pause = time.Duration(float64(p.Duration) * 50 / 900) // awkward fraction
	jobs := TrialJobs(p, 2)
	var buf strings.Builder
	e := NewJSONL(&buf)
	for _, j := range jobs {
		if err := e.Emit(j, scenario.Result{Protocol: p.Protocol, Pause: j.Params.Pause, Seed: j.Params.Seed}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		// NewRecord stamps Trial from the job but takes protocol, pause,
		// and seed from the Result, so this also guards NewRecord/Result
		// agreement.
		if js, rs := j.Key().String(), recs[i].Key().String(); js != rs {
			t.Fatalf("job %d key %q != re-read record key %q", i, js, rs)
		}
	}
}

// TestParseKeyRejectsGarbage pins the error cases.
func TestParseKeyRejectsGarbage(t *testing.T) {
	for _, s := range []string{
		"", "SRP", "SRP|0|1", "SRP|0|1|2|3", "|0|1|2",
		"SRP|x|1|2", "SRP|0|x|2", "SRP|0|1|x", "SRP|0|1.5|2",
	} {
		if _, err := ParseKey(s); err == nil {
			t.Fatalf("ParseKey(%q) succeeded, want error", s)
		}
	}
}

// TestKeySetUsesCanonicalStrings pins that the skip-set, dedup, and the
// wire all share one key vocabulary: a record's set entry is exactly its
// Key.String().
func TestKeySetUsesCanonicalStrings(t *testing.T) {
	recs := []Record{
		{Protocol: "SRP", PauseSeconds: 2.5, Trial: 1, Seed: 3},
		{Protocol: "LDR", PauseSeconds: 0, Trial: 0, Seed: 9},
	}
	set := KeySet(recs)
	if len(set) != 2 {
		t.Fatalf("KeySet size %d, want 2", len(set))
	}
	for _, rec := range recs {
		want := rec.Key().String()
		if !set[want] {
			t.Fatalf("KeySet missing %q (has %v)", want, set)
		}
		if _, err := ParseKey(want); err != nil {
			t.Fatalf("set entry %q does not parse: %v", want, err)
		}
	}
}

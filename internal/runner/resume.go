package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrTruncatedTail marks a salvage error caused by a final line cut off
// before its newline — the signature a killed writer leaves, as opposed to
// a complete line that is not a record at all (which suggests the file was
// never sweep JSONL).
var ErrTruncatedTail = errors.New("truncated tail")

// ErrMissingNewline marks the narrower kill artifact of a final record
// whose bytes all arrived but whose terminating newline did not. The
// record itself is whole and usable for analysis (SalvageRecords returns
// it); only appending is unsafe until the newline is restored, which
// ResumeJSONL repairs in place instead of re-running the trial.
var ErrMissingNewline = errors.New("final record missing its newline")

// SalvageRecords reads a JSONL stream of Records, tolerating the damage a
// killed or failing writer leaves behind. It returns every usable record
// (one parseable JSON object per line; blank lines skipped), the byte
// offset just past the last newline-terminated record — the safe point
// for appending — and an error describing the first damage: a line cut
// off mid-record (ErrTruncatedTail), a final record missing only its
// newline (ErrMissingNewline; the record IS returned, it just cannot be
// appended after as-is), a line that is no record at all, or an I/O
// failure. A nil error means the stream was clean JSONL to EOF.
func SalvageRecords(r io.Reader) (recs []Record, clean int64, err error) {
	br := bufio.NewReader(r)
	for {
		line, rerr := br.ReadBytes('\n')
		complete := rerr == nil
		if rerr != nil && rerr != io.EOF {
			return recs, clean, rerr
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var rec Record
			if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
				if complete {
					return recs, clean, fmt.Errorf("line after %d complete records: %w", len(recs), uerr)
				}
				if trimmed[0] != '{' {
					// Every record starts with '{', so any cut-off record's
					// remnant does too; an unterminated tail that does not
					// is foreign content (a notes file, binary junk), not a
					// killed writer — refuse rather than truncate it away.
					return recs, clean, fmt.Errorf("unterminated line is no record prefix after %d complete records", len(recs))
				}
				return recs, clean, fmt.Errorf("%w: record cut off after %d complete records", ErrTruncatedTail, len(recs))
			}
			if rec.Protocol == "" {
				// Any JSON object unmarshals into a Record; one without the
				// mandatory protocol field is some other file's line, and
				// "salvaging" it would let resume append sweep records into
				// an unrelated JSONL file. The line having parsed in full
				// proves it is foreign content, not a cut-off record — even
				// when the final newline is missing — so this is never the
				// killed-writer signature.
				return recs, clean, fmt.Errorf("line after %d complete records: JSON object is not a sweep record (no protocol field)", len(recs))
			}
			if !complete {
				recs = append(recs, rec)
				return recs, clean, fmt.Errorf("%w after %d newline-terminated records (writer killed between record and newline)", ErrMissingNewline, len(recs)-1)
			}
			recs = append(recs, rec)
		}
		if complete {
			clean += int64(len(line))
			continue
		}
		return recs, clean, nil // clean EOF (any trailing whitespace is harmless)
	}
}

// ResumeJSONL opens a JSONL output for resumption: it salvages the
// complete records already present, truncates away any partial tail a
// killed writer left (dropped reports how many bytes), and returns the
// file positioned so the next write appends a fresh record. A missing file
// starts an empty sweep. The caller owns closing f.
//
// Feed the records' KeySet to SkipCompleted and attach NewJSONL(f) to the
// runner: only the missing trials run, and the file converges to the same
// set of records a never-interrupted sweep would have written.
func ResumeJSONL(path string) (recs []Record, f *os.File, dropped int64, err error) {
	f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err == nil {
		_, err = f.Seek(0, io.SeekStart)
	}
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	recs, clean, serr := SalvageRecords(f)
	switch {
	case serr == nil || errors.Is(serr, ErrTruncatedTail):
		// Clean file, or a tail cut off mid-record: truncate to the last
		// newline-terminated record and re-run the cut-off trial.
	case errors.Is(serr, ErrMissingNewline):
		// The final record is whole — only its terminator was lost. Write
		// the newline back instead of discarding a deterministic trial.
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		return recs, f, 0, nil
	default:
		// Damage without a killed-writer signature — a complete line that
		// is no record — is not what resume repairs: the file is either not
		// a sweep output at all (a CSV, a log) or a sweep with garbage
		// spliced mid-file, where truncating at the damage would destroy
		// every good record after it. Refuse and leave the file untouched.
		f.Close()
		return nil, nil, 0, fmt.Errorf("%s: %v; not a resumable JSONL sweep (fix or remove the damaged line first)", path, serr)
	}
	if clean < size {
		if err := f.Truncate(clean); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return recs, f, size - clean, nil
}

// ErrWouldClobber marks a CheckClobber refusal, so callers can
// distinguish "the file has data" from I/O errors when adding hints.
var ErrWouldClobber = errors.New("refusing to overwrite")

// CheckClobber returns an ErrWouldClobber error if path holds data and
// force is not set — the guard behind every results output: overwriting
// hours of sweep output because a flag pointed at the wrong path should
// be an explicit decision, not a silent truncation. Callers that rewrite
// the file late (e.g. a -json report written after the sweep) call this
// up front so the refusal lands before any compute is spent.
func CheckClobber(path string, force bool) error {
	if !force {
		if fi, err := os.Stat(path); err == nil && fi.Size() > 0 {
			return fmt.Errorf("%w: %s already holds %d bytes; use -force to overwrite", ErrWouldClobber, path, fi.Size())
		}
	}
	return nil
}

// CreateOutput creates a results file behind the CheckClobber guard.
func CreateOutput(path string, force bool) (*os.File, error) {
	if err := CheckClobber(path, force); err != nil {
		return nil, err
	}
	return os.Create(path)
}

// ResumeJobs is the one resume filter both CLIs run: it drops the jobs
// whose identity key the salvaged records already cover and reports the
// split to w (stderr), so the binaries cannot drift on skip semantics or
// messaging. Salvaged records that match no job of this run mean the
// flags drifted from the ones that wrote the file (a different -seed,
// -trials, or -shard): every trial still re-runs and appends, but the
// file and any folded summary then mix two sweeps, so that is warned, not
// silent.
func ResumeJobs(jobs []Job, salvaged []Record, w io.Writer) []Job {
	salvaged, _ = DedupRecords(salvaged)
	done := KeySet(salvaged)
	before := len(jobs)
	jobs = SkipCompleted(jobs, done)
	skipped := before - len(jobs)
	fmt.Fprintf(w, "resume: %d of %d jobs already complete, running %d\n",
		skipped, before, len(jobs))
	if skipped < len(done) {
		fmt.Fprintf(w, "resume: warning: %d salvaged records match no job of this run (different -seed, -trials, or -shard than the file was written with?); the output now mixes sweeps\n",
			len(done)-skipped)
	}
	return jobs
}

// OpenJSONLOutput is the one way the CLIs open a -jsonl stream: with
// resume it salvages the file via ResumeJSONL and reports what it found
// to w (stderr), otherwise it creates the file through the CreateOutput
// clobber guard. Keeping both binaries on this helper keeps their
// failure semantics and messaging from drifting apart.
//
// Resume trusts the identity key alone: records carry no topology or
// traffic fingerprint, so resuming with different scenario parameters
// (node count, duration, ...) but the same key coordinates would silently
// accept the old records as done. Resume a file only with the flags that
// produced it.
func OpenJSONLOutput(path string, resume, force bool, w io.Writer) ([]Record, *os.File, error) {
	if !resume {
		f, err := CreateOutput(path, force)
		if errors.Is(err, ErrWouldClobber) {
			// Only on a JSONL clobber refusal is -resume an alternative:
			// the stream can be continued, where CSV and report outputs
			// can only be overwritten. Other errors (bad directory,
			// permissions) would hit -resume all the same.
			err = fmt.Errorf("%w (or -resume to continue the sweep)", err)
		}
		return nil, f, err
	}
	recs, f, dropped, err := ResumeJSONL(path)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(w, "resume %s: %d complete records salvaged", path, len(recs))
	if dropped > 0 {
		fmt.Fprintf(w, " (%d bytes of truncated tail dropped)", dropped)
	}
	fmt.Fprintln(w)
	return recs, f, nil
}

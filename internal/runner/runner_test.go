package runner

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/scenario"
	"slr/internal/traffic"
)

// tinyParams is a fast full-stack scenario (12 nodes, 15 s) for runner
// tests.
func tinyParams(proto scenario.ProtocolName, seed int64) scenario.Params {
	p := scenario.DefaultParams(proto, 0, seed)
	p.Nodes = 12
	p.Terrain = geo.Terrain{Width: 700, Height: 300}
	p.Duration = 15 * time.Second
	p.Traffic = traffic.Params{Flows: 3, PacketSize: 512, Rate: 4, MeanLife: 10 * time.Second}
	return p
}

func TestTrialJobsSeeding(t *testing.T) {
	jobs := TrialJobs(tinyParams(scenario.SRP, 100), 4)
	if len(jobs) != 4 {
		t.Fatalf("got %d jobs", len(jobs))
	}
	for i, j := range jobs {
		if j.Index != i || j.Trial != i || j.Params.Seed != 100+int64(i) {
			t.Fatalf("job %d = {Index:%d Trial:%d Seed:%d}", i, j.Index, j.Trial, j.Params.Seed)
		}
	}
}

func TestGridJobsLayout(t *testing.T) {
	protos := []scenario.ProtocolName{scenario.SRP, scenario.AODV}
	pauses := []float64{0, 0.5, 1}
	jobs := GridJobs(protos, pauses, 2, 7, func(proto scenario.ProtocolName, pf float64, seed int64) scenario.Params {
		p := tinyParams(proto, seed)
		p.Pause = time.Duration(pf * float64(p.Duration))
		return p
	})
	if len(jobs) != 2*3*2 {
		t.Fatalf("got %d jobs, want 12", len(jobs))
	}
	// Protocol-major, then pause, then trial; seeds restart per point.
	if jobs[0].Params.Protocol != scenario.SRP || jobs[11].Params.Protocol != scenario.AODV {
		t.Fatal("grid not protocol-major")
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
		if j.Params.Seed != 7+int64(j.Trial) {
			t.Fatalf("job %d seed = %d, want %d", i, j.Params.Seed, 7+int64(j.Trial))
		}
	}
}

// TestRunnerMatchesSerial is the determinism regression test of the
// work-stealing scheduler: for the same seeds, results must be identical
// to the serial scenario.RunTrials path, whatever the worker count. OLSR
// is included because it is the protocol most sensitive to incidental
// ordering (MPR tie-breaks), so it would surface any nondeterminism the
// scheduler introduced.
func TestRunnerMatchesSerial(t *testing.T) {
	for _, proto := range []scenario.ProtocolName{scenario.SRP, scenario.OLSR} {
		p := tinyParams(proto, 40)
		const trials = 5
		serial := scenario.RunTrials(p, trials)
		for _, workers := range []int{1, 2, 7} {
			results, err := Run(TrialJobs(p, trials), Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", proto, workers, err)
			}
			if !reflect.DeepEqual(serial.Results, results) {
				t.Fatalf("%s workers=%d: results diverge from serial path\nserial: %+v\nrunner: %+v",
					proto, workers, serial.Results, results)
			}
		}
	}
}

func TestRunResultsInJobOrder(t *testing.T) {
	jobs := TrialJobs(tinyParams(scenario.SRP, 300), 6)
	results, err := Run(jobs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Seed != 300+int64(i) {
			t.Fatalf("results[%d].Seed = %d, want %d", i, r.Seed, 300+int64(i))
		}
		if r.DataSent == 0 {
			t.Fatalf("results[%d] looks unrun: %+v", i, r)
		}
	}
}

func TestRunEmptyJobList(t *testing.T) {
	results, err := Run(nil, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("Run(nil) = %v, %v", results, err)
	}
	// A zero-job run (an out-of-range shard slice, a fully-resumed file)
	// still flushes emitters: the CSV gets its header row, not 0 bytes.
	var buf bytes.Buffer
	if _, err := Run(nil, Options{Emitters: []Emitter{NewCSV(&buf)}}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "protocol,") {
		t.Fatalf("empty run left an unflushed CSV: %q", buf.String())
	}
}

func TestSinksObserveEveryTrial(t *testing.T) {
	var jsonl, csvBuf, progress bytes.Buffer
	seen := 0
	jobs := TrialJobs(tinyParams(scenario.SRP, 50), 3)
	_, err := Run(jobs, Options{
		Workers:  2,
		Progress: &progress,
		Emitters: []Emitter{NewJSONL(&jsonl), NewCSV(&csvBuf)},
		OnResult: func(Job, scenario.Result) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(jobs) {
		t.Fatalf("OnResult saw %d trials, want %d", seen, len(jobs))
	}
	if got := strings.Count(progress.String(), "\n"); got != len(jobs) {
		t.Fatalf("progress lines = %d, want %d:\n%s", got, len(jobs), progress.String())
	}

	// JSONL: one parseable record per line, all seeds present.
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != len(jobs) {
		t.Fatalf("jsonl lines = %d, want %d", len(lines), len(jobs))
	}
	seeds := map[int64]bool{}
	for _, line := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad jsonl line %q: %v", line, err)
		}
		if rec.Protocol != "SRP" || rec.DataSent == 0 {
			t.Fatalf("implausible record %+v", rec)
		}
		seeds[rec.Seed] = true
	}
	for i := 0; i < len(jobs); i++ {
		if !seeds[50+int64(i)] {
			t.Fatalf("jsonl missing seed %d: %v", 50+i, seeds)
		}
	}

	// CSV: header plus one row per trial, same column count throughout.
	rows, err := csv.NewReader(&csvBuf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(jobs)+1 {
		t.Fatalf("csv rows = %d, want %d", len(rows), len(jobs)+1)
	}
	if rows[0][0] != "protocol" || len(rows[0]) != len(csvHeader) {
		t.Fatalf("csv header = %v", rows[0])
	}
}

// countingEmitter fails every Emit after `failAt` calls and records how
// often the runner keeps knocking.
type countingEmitter struct {
	emits, flushes int
	failAt         int
}

func (e *countingEmitter) Emit(Job, scenario.Result) error {
	e.emits++
	if e.failAt > 0 && e.emits >= e.failAt {
		return errors.New("sink broke")
	}
	return nil
}

func (e *countingEmitter) Flush() error {
	e.flushes++
	return nil
}

// TestEmitterDisabledAfterFirstError is the failure-path regression test:
// a broken sink (full disk, closed pipe) must be abandoned after its first
// error — not hammered with every remaining trial, interleaving partial
// lines — while healthy sinks keep streaming and the sweep completes.
func TestEmitterDisabledAfterFirstError(t *testing.T) {
	jobs := TrialJobs(tinyParams(scenario.SRP, 70), 4)
	broken := &countingEmitter{failAt: 2}
	healthy := &countingEmitter{}
	results, err := Run(jobs, Options{
		Workers:  2,
		Emitters: []Emitter{broken, healthy},
	})
	if err == nil || err.Error() != "sink broke" {
		t.Fatalf("Run error = %v, want the sink's first error", err)
	}
	if broken.emits != 2 {
		t.Fatalf("broken emitter saw %d Emit calls after failing on its 2nd, want exactly 2", broken.emits)
	}
	if broken.flushes != 0 {
		t.Fatalf("broken emitter was flushed %d times after failing", broken.flushes)
	}
	if healthy.emits != len(jobs) || healthy.flushes != 1 {
		t.Fatalf("healthy emitter saw %d emits / %d flushes, want %d / 1", healthy.emits, healthy.flushes, len(jobs))
	}
	for i, r := range results {
		if r.DataSent == 0 {
			t.Fatalf("results[%d] looks unrun despite emitter failure: %+v", i, r)
		}
	}
}

// TestStealing drives the span/steal machinery directly through a skewed
// partition and checks every job is claimed exactly once.
func TestStealing(t *testing.T) {
	const n = 1000
	spans := make([]span, 4)
	// All jobs start on worker 0; the rest must steal everything.
	spans[0] = span{lo: 0, hi: n}
	var unclaimed atomic.Int64
	unclaimed.Store(n)
	var claimed [n]atomic.Int64
	workers := make(chan struct{}, len(spans))
	for w := range spans {
		go func(self int) {
			defer func() { workers <- struct{}{} }()
			for {
				i, ok := spans[self].pop()
				if !ok {
					if i, ok = steal(spans, self, &unclaimed); !ok {
						return
					}
				}
				unclaimed.Add(-1)
				claimed[i].Add(1)
			}
		}(w)
	}
	for range spans {
		<-workers
	}
	for i := range claimed {
		if c := claimed[i].Load(); c != 1 {
			t.Fatalf("job %d claimed %d times", i, c)
		}
	}
}

func TestStealHalf(t *testing.T) {
	s := span{lo: 10, hi: 20}
	lo, hi, ok := s.stealHalf()
	if !ok || lo != 15 || hi != 20 || s.hi != 15 {
		t.Fatalf("stealHalf = (%d,%d,%v), span now [%d,%d)", lo, hi, ok, s.lo, s.hi)
	}
	// A single remaining job is stealable too.
	s = span{lo: 5, hi: 6}
	lo, hi, ok = s.stealHalf()
	if !ok || lo != 5 || hi != 6 || s.lo != s.hi {
		t.Fatalf("stealHalf single = (%d,%d,%v), span now [%d,%d)", lo, hi, ok, s.lo, s.hi)
	}
	if _, _, ok = s.stealHalf(); ok {
		t.Fatal("stole from empty span")
	}
}

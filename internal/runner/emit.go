package runner

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"

	"slr/internal/scenario"
)

// Emitter is a streaming sink for completed trials. The runner serializes
// Emit calls and calls Flush once after the last job.
type Emitter interface {
	Emit(j Job, r scenario.Result) error
	Flush() error
}

// Record is the flat per-trial form written by the JSONL and CSV emitters.
type Record struct {
	Protocol      string  `json:"protocol"`
	PauseSeconds  float64 `json:"pause_seconds"`
	Trial         int     `json:"trial"`
	Seed          int64   `json:"seed"`
	DeliveryRatio float64 `json:"delivery_ratio"`
	NetworkLoad   float64 `json:"network_load"`
	LatencySec    float64 `json:"latency_sec"`
	MACDrops      float64 `json:"mac_drops_per_node"`
	AvgSeqno      float64 `json:"avg_seqno"`
	MeanHops      float64 `json:"mean_hops"`
	DataSent      uint64  `json:"data_sent"`
	DataRecv      uint64  `json:"data_recv"`
	ControlTx     uint64  `json:"control_tx"`
	Collisions    uint64  `json:"collisions"`
	MaxDenom      uint32  `json:"max_denom,omitempty"`
	// DropReasons is the routing-layer drop breakdown, sorted by reason
	// so the serialized form is byte-stable across processes (Go
	// randomizes map iteration; a map field here would emit rows that
	// differ run to run and defeat output diffing).
	DropReasons []ReasonCount `json:"drop_reasons,omitempty"`
}

// ReasonCount is one drop-reason tally in a Record.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// sortedDropReasons flattens a drop-reason map into reason-sorted pairs.
func sortedDropReasons(m map[string]uint64) []ReasonCount {
	if len(m) == 0 {
		return nil
	}
	out := make([]ReasonCount, 0, len(m))
	for reason, count := range m {
		out = append(out, ReasonCount{Reason: reason, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Reason < out[j].Reason })
	return out
}

// NewRecord flattens one trial.
func NewRecord(j Job, r scenario.Result) Record {
	return Record{
		Protocol:      string(r.Protocol),
		PauseSeconds:  r.Pause.Seconds(),
		Trial:         j.Trial,
		Seed:          r.Seed,
		DeliveryRatio: r.DeliveryRatio,
		NetworkLoad:   r.NetworkLoad,
		LatencySec:    r.Latency,
		MACDrops:      r.MACDrops,
		AvgSeqno:      r.AvgSeqno,
		MeanHops:      r.MeanHops,
		DataSent:      r.DataSent,
		DataRecv:      r.DataRecv,
		ControlTx:     r.ControlTx,
		Collisions:    r.Collisions,
		MaxDenom:      r.MaxDenom,
		DropReasons:   sortedDropReasons(r.DropReasons),
	}
}

// JSONLEmitter streams one JSON object per line per completed trial.
type JSONLEmitter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONL returns a JSONL emitter writing to w.
func NewJSONL(w io.Writer) *JSONLEmitter {
	bw := bufio.NewWriter(w)
	return &JSONLEmitter{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one trial as a JSON line.
func (e *JSONLEmitter) Emit(j Job, r scenario.Result) error {
	return e.enc.Encode(NewRecord(j, r))
}

// Flush flushes buffered lines.
func (e *JSONLEmitter) Flush() error { return e.bw.Flush() }

// csvHeader lists the CSV columns, matching Record field order.
var csvHeader = []string{
	"protocol", "pause_seconds", "trial", "seed",
	"delivery_ratio", "network_load", "latency_sec", "mac_drops_per_node",
	"avg_seqno", "mean_hops", "data_sent", "data_recv", "control_tx",
	"collisions", "max_denom", "drop_reasons",
}

// CSVEmitter streams one CSV row per completed trial, with a header row
// before the first.
type CSVEmitter struct {
	w      *csv.Writer
	header bool
}

// NewCSV returns a CSV emitter writing to w.
func NewCSV(w io.Writer) *CSVEmitter {
	return &CSVEmitter{w: csv.NewWriter(w)}
}

// Emit writes one trial as a CSV row.
func (e *CSVEmitter) Emit(j Job, r scenario.Result) error {
	if !e.header {
		e.header = true
		if err := e.w.Write(csvHeader); err != nil {
			return err
		}
	}
	rec := NewRecord(j, r)
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	// Drop reasons render as "reason=count;..." in reason order, one
	// stable cell regardless of map iteration order.
	var reasons strings.Builder
	for i, rc := range rec.DropReasons {
		if i > 0 {
			reasons.WriteByte(';')
		}
		reasons.WriteString(rc.Reason)
		reasons.WriteByte('=')
		reasons.WriteString(strconv.FormatUint(rc.Count, 10))
	}
	return e.w.Write([]string{
		rec.Protocol, f(rec.PauseSeconds), strconv.Itoa(rec.Trial),
		strconv.FormatInt(rec.Seed, 10),
		f(rec.DeliveryRatio), f(rec.NetworkLoad), f(rec.LatencySec), f(rec.MACDrops),
		f(rec.AvgSeqno), f(rec.MeanHops), u(rec.DataSent), u(rec.DataRecv),
		u(rec.ControlTx), u(rec.Collisions), strconv.FormatUint(uint64(rec.MaxDenom), 10),
		reasons.String(),
	})
}

// Flush flushes buffered rows.
func (e *CSVEmitter) Flush() error {
	e.w.Flush()
	return e.w.Error()
}

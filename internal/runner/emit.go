package runner

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"slr/internal/metrics"
	"slr/internal/scenario"
	"slr/internal/sim"
)

// Emitter is a streaming sink for completed trials. The runner serializes
// Emit calls and calls Flush once after the last job.
type Emitter interface {
	Emit(j Job, r scenario.Result) error
	Flush() error
}

// RecordSchema is the version stamped into every emitted Record. The
// schema is append-only: version 2 added "schema", the latency
// percentiles, the latency/hop histograms, and the per-flow ledger after
// the version-1 fields, and made "network_load" null for zero-delivery
// runs (see scenario.Result.NetworkLoad). Version-1 records are simply
// records without the "schema" key; readers treat a missing version as 1
// and a missing "network_load" value as NaN.
const RecordSchema = 2

// Record is the flat per-trial form written by the JSONL and CSV emitters
// and read back by cmd/slranalyze. Version-1 fields keep their exact
// serialization (order, names, formatting) so existing JSONL consumers and
// byte-level diffs keep working; new fields only ever append.
type Record struct {
	Protocol     string  `json:"protocol"`
	PauseSeconds float64 `json:"pause_seconds"`
	Trial        int     `json:"trial"`
	Seed         int64   `json:"seed"`
	// DeliveryRatio is delivered/sent.
	DeliveryRatio float64 `json:"delivery_ratio"`
	// NetworkLoad is control transmissions per delivered packet; nil
	// (serialized as null) when the run delivered nothing, the JSON form
	// of the NaN sentinel (JSON has no NaN literal).
	NetworkLoad *float64 `json:"network_load"`
	LatencySec  float64  `json:"latency_sec"`
	MACDrops    float64  `json:"mac_drops_per_node"`
	AvgSeqno    float64  `json:"avg_seqno"`
	MeanHops    float64  `json:"mean_hops"`
	DataSent    uint64   `json:"data_sent"`
	DataRecv    uint64   `json:"data_recv"`
	ControlTx   uint64   `json:"control_tx"`
	Collisions  uint64   `json:"collisions"`
	MaxDenom    uint32   `json:"max_denom,omitempty"`
	// DropReasons is the routing-layer drop breakdown, sorted by reason
	// so the serialized form is byte-stable across processes (Go
	// randomizes map iteration; a map field here would emit rows that
	// differ run to run and defeat output diffing).
	DropReasons []ReasonCount `json:"drop_reasons,omitempty"`

	// Version-2 fields (appended; see RecordSchema).

	// Schema is the record version, RecordSchema at write time.
	Schema int `json:"schema"`
	// LatencyP50/P95/P99 are exact histogram bucket-bound percentiles of
	// delivered-packet latency, in seconds.
	LatencyP50 float64 `json:"latency_p50_sec"`
	LatencyP95 float64 `json:"latency_p95_sec"`
	LatencyP99 float64 `json:"latency_p99_sec"`
	// LatencyHist is the sparse latency histogram (µs, log2 buckets) and
	// LatencySumUS its exact-mean accumulator; merging these across trials
	// reproduces in-process percentile aggregation bit for bit.
	LatencyHist  []metrics.HistBucket `json:"latency_hist_us,omitempty"`
	LatencySumUS uint64               `json:"latency_sum_us,omitempty"`
	// HopsHist is the sparse hop-count histogram with its accumulator.
	HopsHist []metrics.HistBucket `json:"hops_hist,omitempty"`
	HopsSum  uint64               `json:"hops_sum,omitempty"`
	// Flows is the per-flow ledger in flow-id order.
	Flows []FlowRecord `json:"flows,omitempty"`
}

// FlowRecord is one traffic flow's ledger in a Record.
type FlowRecord struct {
	Flow uint32 `json:"flow"`
	Sent uint64 `json:"sent"`
	Recv uint64 `json:"recv"`
	// FirstRecvSec/LastRecvSec are the virtual times (seconds) of the
	// flow's first and last delivery; omitted while Recv is zero.
	FirstRecvSec float64 `json:"first_recv_sec,omitempty"`
	LastRecvSec  float64 `json:"last_recv_sec,omitempty"`
}

// ReasonCount is one drop-reason tally in a Record.
type ReasonCount struct {
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// sortedDropReasons flattens a drop-reason map into reason-sorted pairs.
func sortedDropReasons(m map[string]uint64) []ReasonCount {
	if len(m) == 0 {
		return nil
	}
	out := make([]ReasonCount, 0, len(m))
	for reason, count := range m {
		out = append(out, ReasonCount{Reason: reason, Count: count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Reason < out[j].Reason })
	return out
}

// flowRecords flattens the per-flow ledger.
func flowRecords(flows []metrics.FlowStat) []FlowRecord {
	if len(flows) == 0 {
		return nil
	}
	out := make([]FlowRecord, len(flows))
	for i, fs := range flows {
		out[i] = FlowRecord{
			Flow:         fs.Flow,
			Sent:         fs.Sent,
			Recv:         fs.Recv,
			FirstRecvSec: fs.FirstRecv.Seconds(),
			LastRecvSec:  fs.LastRecv.Seconds(),
		}
	}
	return out
}

// NewRecord flattens one trial.
func NewRecord(j Job, r scenario.Result) Record {
	rec := Record{
		Protocol:      string(r.Protocol),
		PauseSeconds:  r.Pause.Seconds(),
		Trial:         j.Trial,
		Seed:          r.Seed,
		DeliveryRatio: r.DeliveryRatio,
		LatencySec:    r.Latency,
		MACDrops:      r.MACDrops,
		AvgSeqno:      r.AvgSeqno,
		MeanHops:      r.MeanHops,
		DataSent:      r.DataSent,
		DataRecv:      r.DataRecv,
		ControlTx:     r.ControlTx,
		Collisions:    r.Collisions,
		MaxDenom:      r.MaxDenom,
		DropReasons:   sortedDropReasons(r.DropReasons),
		Schema:        RecordSchema,
		LatencyP50:    r.LatencyP50,
		LatencyP95:    r.LatencyP95,
		LatencyP99:    r.LatencyP99,
		LatencyHist:   r.LatencyHist.Buckets(),
		LatencySumUS:  r.LatencyHist.Sum,
		HopsHist:      r.HopHist.Buckets(),
		HopsSum:       r.HopHist.Sum,
		Flows:         flowRecords(r.Flows),
	}
	if !math.IsNaN(r.NetworkLoad) {
		v := r.NetworkLoad
		rec.NetworkLoad = &v
	}
	return rec
}

// Result reconstructs the scenario.Result a Record was flattened from, the
// inverse of NewRecord used by the offline aggregator (cmd/slranalyze) to
// rebuild tables from sweep JSONL without re-simulating. Fields the Record
// does not carry (loop checks, control breakdown, MAC drop split) stay
// zero; flow delivery times round-trip through seconds.
func (r Record) Result() scenario.Result {
	res := scenario.Result{
		Protocol:      scenario.ProtocolName(r.Protocol),
		Pause:         sim.Time(r.PauseSeconds * float64(time.Second)),
		Seed:          r.Seed,
		DeliveryRatio: r.DeliveryRatio,
		NetworkLoad:   math.NaN(),
		Latency:       r.LatencySec,
		MACDrops:      r.MACDrops,
		AvgSeqno:      r.AvgSeqno,
		MeanHops:      r.MeanHops,
		DataSent:      r.DataSent,
		DataRecv:      r.DataRecv,
		ControlTx:     r.ControlTx,
		Collisions:    r.Collisions,
		MaxDenom:      r.MaxDenom,
		LatencyP50:    r.LatencyP50,
		LatencyP95:    r.LatencyP95,
		LatencyP99:    r.LatencyP99,
		LatencyHist:   metrics.HistFromBuckets(r.LatencyHist, r.LatencySumUS),
		HopHist:       metrics.HistFromBuckets(r.HopsHist, r.HopsSum),
	}
	if r.NetworkLoad != nil {
		res.NetworkLoad = *r.NetworkLoad
	}
	// Version-1 writers had no NaN sentinel: their zero-delivery records
	// carry the raw ControlTx count in network_load (the bug the sentinel
	// replaced). Normalize on read so archived sweeps analyze with the
	// same exclusion semantics as fresh ones.
	if r.Schema < 2 && r.DataRecv == 0 && r.ControlTx > 0 {
		res.NetworkLoad = math.NaN()
	}
	if len(r.DropReasons) > 0 {
		res.DropReasons = make(map[string]uint64, len(r.DropReasons))
		for _, rc := range r.DropReasons {
			res.DropReasons[rc.Reason] = rc.Count
		}
	}
	if len(r.Flows) > 0 {
		res.Flows = make([]metrics.FlowStat, len(r.Flows))
		for i, fr := range r.Flows {
			res.Flows[i] = metrics.FlowStat{
				Flow:      fr.Flow,
				Sent:      fr.Sent,
				Recv:      fr.Recv,
				FirstRecv: sim.Time(fr.FirstRecvSec * float64(time.Second)),
				LastRecv:  sim.Time(fr.LastRecvSec * float64(time.Second)),
			}
		}
	}
	return res
}

// JSONLEmitter streams one JSON object per line per completed trial.
type JSONLEmitter struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

// NewJSONL returns a JSONL emitter writing to w.
func NewJSONL(w io.Writer) *JSONLEmitter {
	bw := bufio.NewWriter(w)
	return &JSONLEmitter{bw: bw, enc: json.NewEncoder(bw)}
}

// Emit writes one trial as a JSON line.
func (e *JSONLEmitter) Emit(j Job, r scenario.Result) error {
	return e.enc.Encode(NewRecord(j, r))
}

// Flush flushes buffered lines.
func (e *JSONLEmitter) Flush() error { return e.bw.Flush() }

// ReadRecords decodes a JSONL stream of Records, one newline-terminated
// record per line (blank lines skipped). On damaged input it returns the
// complete records before the damage along with the error — the same
// salvage semantics every reader shares (see SalvageRecords); strict
// callers treat any error as fatal, salvage-aware ones (cmd/slranalyze,
// the resume path) analyze what came back.
func ReadRecords(r io.Reader) ([]Record, error) {
	recs, _, err := SalvageRecords(r)
	return recs, err
}

// csvHeader lists the CSV columns, matching Record field order. The
// version-1 columns keep their positions; version-2 columns append (the
// sparse histograms and per-flow ledger stay JSONL-only — a flow list does
// not flatten into a cell — so CSV carries the percentile summary and the
// flow count).
var csvHeader = []string{
	"protocol", "pause_seconds", "trial", "seed",
	"delivery_ratio", "network_load", "latency_sec", "mac_drops_per_node",
	"avg_seqno", "mean_hops", "data_sent", "data_recv", "control_tx",
	"collisions", "max_denom", "drop_reasons",
	"latency_p50_sec", "latency_p95_sec", "latency_p99_sec", "flows",
}

// CSVEmitter streams one CSV row per completed trial, with a header row
// before the first.
type CSVEmitter struct {
	w      *csv.Writer
	header bool
}

// NewCSV returns a CSV emitter writing to w.
func NewCSV(w io.Writer) *CSVEmitter {
	return &CSVEmitter{w: csv.NewWriter(w)}
}

// writeHeader writes the header row once.
func (e *CSVEmitter) writeHeader() error {
	if e.header {
		return nil
	}
	e.header = true
	return e.w.Write(csvHeader)
}

// Emit writes one trial as a CSV row.
func (e *CSVEmitter) Emit(j Job, r scenario.Result) error {
	if err := e.writeHeader(); err != nil {
		return err
	}
	rec := NewRecord(j, r)
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) } //slrlint:allow floatfmt CSV cells share the Key codec's shortest-form rendering so spreadsheet joins line up with JSONL keys
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	// A zero-delivery run has no network-load ratio; the cell reads "NaN"
	// (strconv's rendering of the sentinel), never a raw control count.
	load := f(math.NaN())
	if rec.NetworkLoad != nil {
		load = f(*rec.NetworkLoad)
	}
	// Drop reasons render as "reason=count;..." in reason order, one
	// stable cell regardless of map iteration order.
	var reasons strings.Builder
	for i, rc := range rec.DropReasons {
		if i > 0 {
			reasons.WriteByte(';')
		}
		reasons.WriteString(rc.Reason)
		reasons.WriteByte('=')
		reasons.WriteString(strconv.FormatUint(rc.Count, 10))
	}
	return e.w.Write([]string{
		rec.Protocol, f(rec.PauseSeconds), strconv.Itoa(rec.Trial),
		strconv.FormatInt(rec.Seed, 10),
		f(rec.DeliveryRatio), load, f(rec.LatencySec), f(rec.MACDrops),
		f(rec.AvgSeqno), f(rec.MeanHops), u(rec.DataSent), u(rec.DataRecv),
		u(rec.ControlTx), u(rec.Collisions), strconv.FormatUint(uint64(rec.MaxDenom), 10),
		reasons.String(),
		f(rec.LatencyP50), f(rec.LatencyP95), f(rec.LatencyP99),
		strconv.Itoa(len(rec.Flows)),
	})
}

// Flush flushes buffered rows. An empty sweep still gets the header row,
// so the output is always a parseable CSV, never a zero-byte file.
func (e *CSVEmitter) Flush() error {
	if err := e.writeHeader(); err != nil {
		return err
	}
	e.w.Flush()
	return e.w.Error()
}

// Package runner executes simulation trials across all CPUs with a
// work-stealing scheduler.
//
// The paper's evaluation (§V) is one grid of (protocol x pause time x
// trial) simulation runs. The runner flattens any such grid into a single
// job list and consumes it with GOMAXPROCS workers: each worker owns a
// contiguous span of job indices and, when its span drains, steals the back
// half of the largest remaining span. Long-running cells (a chatty protocol
// at zero pause) therefore never leave cores idle the way per-point
// parallelism does.
//
// Results are deterministic regardless of worker count: every job carries
// fully seeded scenario.Params fixed at flatten time, each trial runs on
// its own single-threaded sim.Simulator, and results[i] is written only by
// the worker that claimed job i. The same flattened grid produces
// byte-identical results under one worker, many workers, or the serial
// reference loop (scenario.RunTrials) — see TestRunnerMatchesSerial.
//
// Completed trials stream, in completion order, through optional Emitters
// (JSONL, CSV) and an OnResult hook, serialized by the runner so sinks need
// no locking; a Progress writer gets a live line per completion.
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"slr/internal/scenario"
)

// Job is one flattened grid cell trial: fully seeded parameters plus the
// coordinates it came from.
type Job struct {
	Index     int     // position in the flattened job list
	PauseFrac float64 // pause as a fraction of run duration (grid sweeps)
	Trial     int     // trial number within the grid point
	Params    scenario.Params
}

// TrialJobs flattens `trials` runs of p into jobs seeded p.Seed, p.Seed+1,
// ..., the same per-trial seeding as the serial scenario.RunTrials.
func TrialJobs(p scenario.Params, trials int) []Job {
	jobs := make([]Job, trials)
	for i := range jobs {
		tp := p
		tp.Seed = p.Seed + int64(i)
		jobs[i] = Job{Index: i, Trial: i, Params: tp}
	}
	return jobs
}

// GridJobs flattens a full (protocol x pause x trial) grid, protocol-major,
// reusing the same seeds across protocols so each trial compares protocols
// on identical topology and traffic, as the paper does. params builds the
// scenario for one grid point from its coordinates and trial seed.
func GridJobs(protos []scenario.ProtocolName, pauses []float64, trials int, seed int64,
	params func(proto scenario.ProtocolName, pauseFrac float64, seed int64) scenario.Params) []Job {
	jobs := make([]Job, 0, len(protos)*len(pauses)*trials)
	for _, proto := range protos {
		for _, pf := range pauses {
			for t := 0; t < trials; t++ {
				jobs = append(jobs, Job{
					Index:     len(jobs),
					PauseFrac: pf,
					Trial:     t,
					Params:    params(proto, pf, seed+int64(t)),
				})
			}
		}
	}
	return jobs
}

// Options configures a Run.
type Options struct {
	// Workers is the worker-goroutine count; 0 means GOMAXPROCS.
	Workers int
	// Progress receives one line per completed trial; nil is silent.
	Progress io.Writer
	// Emitters receive every completed trial in completion order. Calls
	// are serialized by the runner; emitters need no internal locking. An
	// emitter that returns an error is disabled — no further Emit or Flush
	// calls — while the sweep finishes on the healthy sinks; Run returns
	// the first error.
	Emitters []Emitter
	// OnResult, if set, observes every completed trial in completion
	// order, serialized like Emitters.
	OnResult func(Job, scenario.Result)
}

// span is one worker's contiguous range [lo, hi) of unclaimed job indices.
type span struct {
	mu     sync.Mutex
	lo, hi int
}

// pop claims the front job of the span.
func (s *span) pop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lo >= s.hi {
		return 0, false
	}
	i := s.lo
	s.lo++
	return i, true
}

// remaining reports the unclaimed job count.
func (s *span) remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hi - s.lo
}

// stealHalf takes the back half (rounded up) of the span's remaining range.
func (s *span) stealHalf() (lo, hi int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rem := s.hi - s.lo
	if rem == 0 {
		return 0, 0, false
	}
	take := (rem + 1) / 2
	hi = s.hi
	lo = s.hi - take
	s.hi = lo
	return lo, hi, true
}

// steal moves half of the largest remaining span into spans[self] and
// returns the first stolen index. A batch a thief has taken from its victim
// but not yet published into its own span is invisible to this scan, so an
// empty-everywhere scan is not proof the sweep is done; unclaimed (the
// count of jobs no worker has claimed yet) is. steal returns false only
// once unclaimed hits zero, briefly yielding and rescanning while a
// transfer is in flight.
func steal(spans []span, self int, unclaimed *atomic.Int64) (int, bool) {
	for {
		victim, best := -1, 0
		for i := range spans {
			if i == self {
				continue
			}
			if rem := spans[i].remaining(); rem > best {
				best, victim = rem, i
			}
		}
		if victim < 0 {
			if unclaimed.Load() == 0 {
				return 0, false
			}
			runtime.Gosched() // a steal is mid-transfer; let it publish
			continue
		}
		lo, hi, ok := spans[victim].stealHalf()
		if !ok {
			continue // lost a race for the victim's jobs; rescan
		}
		s := &spans[self]
		s.mu.Lock()
		s.lo, s.hi = lo+1, hi
		s.mu.Unlock()
		return lo, true
	}
}

// Run executes every job and returns results in job order. Worker count,
// stealing, and completion order never affect the results, only the
// wall-clock time and the order sinks observe trials. The returned error
// is the first Emitter error, if any; results are complete either way. A
// failed emitter (full disk, closed pipe) is disabled after its first
// error instead of being hammered with every remaining trial — which
// would interleave partial lines into the very file a resume later needs
// to salvage — and the other emitters keep streaming.
func Run(jobs []Job, opts Options) ([]scenario.Result, error) {
	n := len(jobs)
	results := make([]scenario.Result, n)
	if n == 0 {
		// Zero jobs is a real outcome now that shard slices and resume
		// filters feed Run: emitters still get their Flush so an empty
		// sweep leaves a parseable artifact (e.g. the CSV header row),
		// never a zero-byte file.
		var sinkErr error
		for _, e := range opts.Emitters {
			if err := e.Flush(); err != nil && sinkErr == nil {
				sinkErr = err
			}
		}
		return results, sinkErr
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	spans := make([]span, workers)
	for w := range spans {
		spans[w].lo = w * n / workers
		spans[w].hi = (w + 1) * n / workers
	}

	var (
		done      atomic.Int64
		unclaimed atomic.Int64
		sinkMu    sync.Mutex
		sinkErr   error
		failed    = make([]bool, len(opts.Emitters))
		start     = time.Now() //slrlint:allow walltime progress-meter elapsed time, never reaches trial output
	)
	unclaimed.Store(int64(n))
	sink := func(i int) {
		d := done.Add(1)
		if opts.Progress == nil && opts.OnResult == nil && len(opts.Emitters) == 0 {
			return
		}
		sinkMu.Lock()
		defer sinkMu.Unlock()
		for ei, e := range opts.Emitters {
			if failed[ei] {
				continue
			}
			if err := e.Emit(jobs[i], results[i]); err != nil {
				failed[ei] = true
				if sinkErr == nil {
					sinkErr = err
				}
			}
		}
		if opts.OnResult != nil {
			opts.OnResult(jobs[i], results[i])
		}
		if opts.Progress != nil {
			r := results[i]
			fmt.Fprintf(opts.Progress, "[%*d/%d] %-4s pause=%v seed=%d deliv=%.3f (%v elapsed)\n",
				len(fmt.Sprint(n)), d, n, r.Protocol, r.Pause, r.Seed, r.DeliveryRatio,
				time.Since(start).Round(time.Millisecond)) //slrlint:allow walltime progress-meter elapsed time, never reaches trial output
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				i, ok := spans[self].pop()
				if !ok {
					if i, ok = steal(spans, self, &unclaimed); !ok {
						return
					}
				}
				unclaimed.Add(-1)
				results[i] = scenario.Run(jobs[i].Params)
				sink(i)
			}
		}(w)
	}
	wg.Wait()

	for ei, e := range opts.Emitters {
		if failed[ei] {
			continue
		}
		if err := e.Flush(); err != nil && sinkErr == nil {
			sinkErr = err
		}
	}
	return results, sinkErr
}

package radio

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/sim"
)

// benchChannel measures Transmit cost (audible-set lookup plus reception
// bookkeeping) for n mobile stations under the given index kind, on the
// 3000x3000 m terrain of the 500-node example scenarios. The ratio of the
// Linear and Grid variants at the same N is the channel-lookup speedup the
// acceptance criterion demands (>= 3x at N >= 500).
func benchChannel(b *testing.B, n int, kind IndexKind) {
	s := sim.New(1)
	p := DefaultParams()
	p.MaxSpeed = 20
	p.Index = kind
	terrain := geo.Terrain{Width: 3000, Height: 3000}
	ch := NewChannel(s, p)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		ch.Register(NodeID(i), mobility.NewWaypoint(terrain, rng, 1, p.MaxSpeed, 0), nil)
	}
	f := &Frame{To: Broadcast, Kind: Data, Size: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.From = NodeID(i % n)
		ch.Transmit(f)
		// Advance past the frame so receptions drain and stations move:
		// the index keeps re-bucketing, as in a real run.
		s.RunUntil(s.Now() + 2*time.Millisecond)
	}
}

func BenchmarkChannelTransmit(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		for _, kind := range []struct {
			name string
			k    IndexKind
		}{{"linear", IndexLinear}, {"grid", IndexGrid}} {
			b.Run(fmt.Sprintf("%s/N=%d", kind.name, n), func(b *testing.B) {
				benchChannel(b, n, kind.k)
			})
		}
	}
}

// BenchmarkChannelTransmitLargeN checks that the grid's staleness-ring
// amortization holds at the large-N tier: per-transmit cost must stay near
// the N=1000 grid numbers rather than reverting to linear scans. Only the
// grid index runs here — the linear baseline at N=5000 is exactly the
// quadratic blowup the tier exists to avoid.
func BenchmarkChannelTransmitLargeN(b *testing.B) {
	for _, n := range []int{2000, 5000} {
		b.Run(fmt.Sprintf("grid/N=%d", n), func(b *testing.B) {
			benchChannel(b, n, IndexGrid)
		})
	}
}

package radio

import (
	"reflect"
	"testing"
)

// TestPropagationModelsRegistered verifies the built-in propagation models
// resolve.
func TestPropagationModelsRegistered(t *testing.T) {
	want := []string{"rayleigh", "shadowing", "unit-disk"}
	if got := PropagationModels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PropagationModels() = %v, want %v", got, want)
	}
}

// TestUnknownPropagationErrors verifies NewPropagation rejects
// unregistered names (and NewChannel panics on them).
func TestUnknownPropagationErrors(t *testing.T) {
	p := DefaultParams()
	p.Propagation.Model = "warp"
	if _, err := NewPropagation(p); err == nil {
		t.Fatal("NewPropagation accepted unknown model")
	}
}

// TestFadingLinkContract verifies every propagation model keeps the
// contract the channel and grid rely on: LinkRange is symmetric,
// deterministic across instances, positive, and never exceeds MaxRange.
func TestFadingLinkContract(t *testing.T) {
	for _, model := range PropagationModels() {
		t.Run(model, func(t *testing.T) {
			p := DefaultParams()
			p.Seed = 11
			p.Propagation.Model = model
			a, err := NewPropagation(p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewPropagation(p)
			if err != nil {
				t.Fatal(err)
			}
			if a.MaxRange() < p.Range*0.4 {
				t.Fatalf("MaxRange %.1f implausibly small vs base %.1f", a.MaxRange(), p.Range)
			}
			for i := NodeID(0); i < 30; i++ {
				for j := i + 1; j < 30; j++ {
					lr := a.LinkRange(i, j)
					if lr <= 0 || lr > a.MaxRange()+1e-9 {
						t.Fatalf("link %d-%d range %.2f outside (0, %.2f]", i, j, lr, a.MaxRange())
					}
					if rev := a.LinkRange(j, i); rev != lr {
						t.Fatalf("link %d-%d asymmetric: %.4f vs %.4f", i, j, lr, rev)
					}
					if other := b.LinkRange(i, j); other != lr {
						t.Fatalf("link %d-%d differs across instances: %.4f vs %.4f", i, j, lr, other)
					}
				}
			}
		})
	}
}

// TestShadowingVariesPerLink verifies shadowing actually perturbs links
// (both above and below the nominal range) and that the seed changes the
// draw.
func TestShadowingVariesPerLink(t *testing.T) {
	p := DefaultParams()
	p.Seed = 3
	p.Propagation.Model = "shadowing"
	prop, err := NewPropagation(p)
	if err != nil {
		t.Fatal(err)
	}
	shorter, longer := 0, 0
	for i := NodeID(0); i < 40; i++ {
		lr := prop.LinkRange(i, i+100)
		if lr < p.Range {
			shorter++
		}
		if lr > p.Range {
			longer++
		}
	}
	if shorter == 0 || longer == 0 {
		t.Fatalf("shadowing links all on one side of nominal: %d shorter, %d longer", shorter, longer)
	}
	p.Seed = 4
	reseeded, err := NewPropagation(p)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := NodeID(0); i < 10; i++ {
		if reseeded.LinkRange(i, i+100) != prop.LinkRange(i, i+100) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical shadowing draws")
	}
}

// TestShadowingRejectsBadParams verifies parameter validation.
func TestShadowingRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.Propagation = PropSpec{Model: "shadowing", Params: map[string]float64{"pathloss_exp": -1}}
	if _, err := NewPropagation(p); err == nil {
		t.Fatal("negative pathloss_exp accepted")
	}
}

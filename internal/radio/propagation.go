package radio

import (
	"fmt"
	"math"

	"slr/internal/registry"
)

// Propagation decides how far each link reaches. The channel keeps the
// paper's binary audibility model — a frame either arrives at a receiver
// or it does not — but the radius at which it arrives may vary per link:
// unit-disk uses one global range, while fading models give every node
// pair its own deterministic effective range.
//
// Implementations must be pure: LinkRange(a, b) is symmetric, independent
// of call order, and fixed for the whole run, so the linear scan and the
// spatial grid index see identical audibility no matter which stations
// they test or in what order. Per-link randomness therefore comes from
// hashing (seed, link), never from a shared rng stream.
type Propagation interface {
	// MaxRange bounds LinkRange over all links. The spatial grid sizes
	// its cells and its candidate search radius from this.
	MaxRange() float64
	// LinkRange returns the audible distance in meters for the link
	// between a and b.
	LinkRange(a, b NodeID) float64
}

// PropSpec selects a registered propagation model by name. The zero value
// selects unit-disk, the paper's GloMoSim radio.
type PropSpec struct {
	// Model names a registered factory: "unit-disk", "shadowing",
	// "rayleigh". Empty means "unit-disk".
	Model string `json:"model,omitempty"`
	// Params carries model-specific knobs (e.g. shadowing's "sigma_db");
	// missing keys take documented defaults.
	Params map[string]float64 `json:"params,omitempty"`
}

// param returns the named model parameter or its default.
func (s PropSpec) param(name string, def float64) float64 {
	return registry.Param(s.Params, name, def)
}

// PropFactory builds a propagation model from the channel parameters
// (base range, per-run seed) and the spec's knobs.
type PropFactory func(p Params, spec PropSpec) (Propagation, error)

var propFactories = registry.New[PropFactory]("radio propagation")

// RegisterPropagation adds a propagation factory under name. Registering a
// duplicate name panics: it is a wiring bug.
func RegisterPropagation(name string, f PropFactory) { propFactories.Register(name, f) }

// PropagationModels returns the registered propagation names, sorted.
func PropagationModels() []string { return propFactories.Names() }

// NewPropagation builds the propagation selected by p.Propagation; an
// empty model name selects unit-disk.
func NewPropagation(p Params) (Propagation, error) {
	name := p.Propagation.Model
	if name == "" {
		name = "unit-disk"
	}
	f, ok := propFactories.Get(name)
	if !ok {
		return nil, fmt.Errorf("radio: unknown propagation %q (registered: %v)", name, PropagationModels())
	}
	return f(p, p.Propagation)
}

// unitDisk is the paper's propagation: one global radius for every link.
type unitDisk struct {
	r float64
}

func (u unitDisk) MaxRange() float64             { return u.r }
func (u unitDisk) LinkRange(_, _ NodeID) float64 { return u.r }

// linkHash mixes (seed, link) into 64 pseudo-random bits with a
// splitmix64-style finalizer. The link is unordered so gains are
// symmetric.
func linkHash(seed int64, a, b NodeID, stream uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	x ^= uint64(uint32(a))<<32 | uint64(uint32(b))
	x ^= stream * 0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// linkUniform returns a uniform draw in (0, 1] for the link.
func linkUniform(seed int64, a, b NodeID, stream uint64) float64 {
	// 53 high bits -> [0,1); the +1 shifts to (0,1] so ln() is safe.
	return (float64(linkHash(seed, a, b, stream)>>11) + 1) / (1 << 53)
}

// linkNormal returns a standard normal draw for the link via Box-Muller.
func linkNormal(seed int64, a, b NodeID) float64 {
	u1 := linkUniform(seed, a, b, 1)
	u2 := linkUniform(seed, a, b, 2)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// shadowing is log-normal shadowing: every link's pathloss carries a fixed
// Gaussian offset X ~ N(0, sigma_db) in dB, so its effective radius is
// Range * 10^(X / (10*n)) with n the pathloss exponent. Obstructed links
// fall short of the nominal range, lucky ones reach past it — the
// classic reason unit-disk topologies are too optimistic. X is clamped to
// +/-3 sigma so MaxRange (and the spatial grid's search radius) stays
// finite.
//
// PropSpec.Params knobs: "sigma_db" (default 4), "pathloss_exp"
// (default 3).
type shadowing struct {
	r     float64
	seed  int64
	sigma float64
	n     float64
	max   float64
}

func newShadowing(p Params, spec PropSpec) (Propagation, error) {
	sigma := spec.param("sigma_db", 4)
	n := spec.param("pathloss_exp", 3)
	if sigma < 0 || n <= 0 {
		return nil, fmt.Errorf("radio: shadowing sigma_db %v must be >= 0 and pathloss_exp %v > 0", sigma, n)
	}
	return shadowing{
		r:     p.Range,
		seed:  p.Seed,
		sigma: sigma,
		n:     n,
		max:   p.Range * math.Pow(10, 3*sigma/(10*n)),
	}, nil
}

func (s shadowing) MaxRange() float64 { return s.max }

func (s shadowing) LinkRange(a, b NodeID) float64 {
	x := s.sigma * linkNormal(s.seed, a, b)
	if x > 3*s.sigma {
		x = 3 * s.sigma
	} else if x < -3*s.sigma {
		x = -3 * s.sigma
	}
	return s.r * math.Pow(10, x/(10*s.n))
}

// rayleigh is a per-link Rayleigh-fading disk: the link's power gain g is
// exponentially distributed (the envelope is Rayleigh), fixed for the run,
// and the effective radius is Range * g^(1/n). It models dense multipath
// with no line of sight: most links roughly keep their nominal reach, a
// long tail of deeply faded links lose most of it. g is clamped to
// [0.05, 4] to bound both MaxRange and the deepest fade.
//
// PropSpec.Params knobs: "pathloss_exp" (default 3).
type rayleigh struct {
	r    float64
	seed int64
	n    float64
	max  float64
}

const (
	rayleighMinGain = 0.05
	rayleighMaxGain = 4.0
)

func newRayleigh(p Params, spec PropSpec) (Propagation, error) {
	n := spec.param("pathloss_exp", 3)
	if n <= 0 {
		return nil, fmt.Errorf("radio: rayleigh pathloss_exp %v must be positive", n)
	}
	return rayleigh{
		r:    p.Range,
		seed: p.Seed,
		n:    n,
		max:  p.Range * math.Pow(rayleighMaxGain, 1/n),
	}, nil
}

func (r rayleigh) MaxRange() float64 { return r.max }

func (r rayleigh) LinkRange(a, b NodeID) float64 {
	g := -math.Log(linkUniform(r.seed, a, b, 3)) // Exp(1) power gain
	if g < rayleighMinGain {
		g = rayleighMinGain
	} else if g > rayleighMaxGain {
		g = rayleighMaxGain
	}
	return r.r * math.Pow(g, 1/r.n)
}

func init() {
	RegisterPropagation("unit-disk", func(p Params, _ PropSpec) (Propagation, error) {
		return unitDisk{r: p.Range}, nil
	})
	RegisterPropagation("shadowing", newShadowing)
	RegisterPropagation("rayleigh", newRayleigh)
}

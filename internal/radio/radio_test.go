package radio

import (
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/sim"
)

type recorder struct {
	frames []*Frame
}

func (r *recorder) OnFrame(f *Frame) { r.frames = append(r.frames, f) }

// build places stations at the given x coordinates (y = 0) on a channel
// with 100 m range.
func build(t *testing.T, xs ...float64) (*sim.Simulator, *Channel, []*recorder) {
	t.Helper()
	s := sim.New(1)
	p := DefaultParams()
	p.Range = 100
	ch := NewChannel(s, p)
	recs := make([]*recorder, len(xs))
	for i, x := range xs {
		recs[i] = &recorder{}
		ch.Register(NodeID(i), &mobility.Static{At: geo.Point{X: x}}, recs[i])
	}
	return s, ch, recs
}

func TestUnicastInRange(t *testing.T) {
	s, ch, recs := build(t, 0, 50, 250)
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 100})
	s.Run()
	if len(recs[1].frames) != 1 {
		t.Fatalf("node 1 got %d frames, want 1", len(recs[1].frames))
	}
	// Node 2 is out of range (250 > 100) and hears nothing.
	if len(recs[2].frames) != 0 {
		t.Fatalf("node 2 got %d frames, want 0", len(recs[2].frames))
	}
	// Sender does not hear itself.
	if len(recs[0].frames) != 0 {
		t.Fatalf("node 0 got %d frames, want 0", len(recs[0].frames))
	}
}

func TestOverhearing(t *testing.T) {
	// All frames in range are decodable, even if addressed elsewhere;
	// filtering is the MAC's job.
	s, ch, recs := build(t, 0, 50, 90)
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 100})
	s.Run()
	if len(recs[2].frames) != 1 {
		t.Fatalf("node 2 overheard %d frames, want 1", len(recs[2].frames))
	}
}

func TestCollisionAtReceiver(t *testing.T) {
	// Hidden terminal: 0 and 2 cannot hear each other but both reach 1.
	s, ch, recs := build(t, 0, 90, 180)
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 100})
	ch.Transmit(&Frame{From: 2, To: 1, Kind: Data, Size: 100})
	s.Run()
	if len(recs[1].frames) != 0 {
		t.Fatalf("node 1 decoded %d frames during collision, want 0", len(recs[1].frames))
	}
	if ch.Collisions() == 0 {
		t.Fatal("collision counter did not increase")
	}
}

func TestPartialOverlapCorrupts(t *testing.T) {
	s, ch, recs := build(t, 0, 90, 180)
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 1000})
	// Second frame starts mid-way through the first.
	s.After(ch.AirTime(1000)/2, func() {
		ch.Transmit(&Frame{From: 2, To: 1, Kind: Data, Size: 50})
	})
	s.Run()
	if len(recs[1].frames) != 0 {
		t.Fatalf("node 1 decoded %d frames, want 0 (partial overlap)", len(recs[1].frames))
	}
}

func TestSequentialFramesBothDecoded(t *testing.T) {
	s, ch, recs := build(t, 0, 50)
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 100, Seq: 1})
	s.After(ch.AirTime(100)+time.Millisecond, func() {
		ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 100, Seq: 2})
	})
	s.Run()
	if len(recs[1].frames) != 2 {
		t.Fatalf("node 1 decoded %d frames, want 2", len(recs[1].frames))
	}
	if recs[1].frames[0].Seq != 1 || recs[1].frames[1].Seq != 2 {
		t.Fatal("frames out of order")
	}
}

func TestHalfDuplex(t *testing.T) {
	// Node 1 starts transmitting, then node 0's frame arrives: node 1
	// cannot decode it.
	s, ch, recs := build(t, 0, 50)
	ch.Transmit(&Frame{From: 1, To: 0, Kind: Data, Size: 2000})
	s.After(time.Microsecond, func() {
		ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 50})
	})
	s.Run()
	if len(recs[1].frames) != 0 {
		t.Fatalf("transmitting node decoded %d frames, want 0", len(recs[1].frames))
	}
}

func TestBusyAndIdleAt(t *testing.T) {
	s, ch, _ := build(t, 0, 50)
	if ch.Busy(1) {
		t.Fatal("channel busy before any transmission")
	}
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 100})
	if !ch.Busy(1) {
		t.Fatal("receiver does not sense carrier")
	}
	if !ch.Busy(0) {
		t.Fatal("transmitter does not sense itself busy")
	}
	idle := ch.IdleAt(1)
	if idle != ch.AirTime(100) {
		t.Fatalf("IdleAt = %v, want %v", idle, ch.AirTime(100))
	}
	s.Run()
	if ch.Busy(1) {
		t.Fatal("channel busy after run drained")
	}
}

func TestAirTimeScalesWithSize(t *testing.T) {
	_, ch, _ := build(t, 0)
	small, big := ch.AirTime(100), ch.AirTime(1000)
	if big <= small {
		t.Fatalf("AirTime(1000)=%v not greater than AirTime(100)=%v", big, small)
	}
	// 512-byte frame at 2 Mbps is ~2.05 ms + 192 us preamble.
	at := ch.AirTime(512)
	want := 192*time.Microsecond + 2048*time.Microsecond
	if at != want {
		t.Fatalf("AirTime(512) = %v, want %v", at, want)
	}
}

func TestNeighborsTracksMobility(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	p.Range = 100
	ch := NewChannel(s, p)
	ch.Register(0, &mobility.Static{At: geo.Point{}}, &recorder{})
	mover := mobility.NewTrace([]mobility.TracePoint{
		{At: 0, Pos: geo.Point{X: 50}},
		{At: 10 * time.Second, Pos: geo.Point{X: 500}},
	})
	ch.Register(1, mover, &recorder{})
	if nb := ch.Neighbors(0); len(nb) != 1 || nb[0] != 1 {
		t.Fatalf("Neighbors at t=0: %v, want [1]", nb)
	}
	s.At(10*time.Second, func() {
		if nb := ch.Neighbors(0); len(nb) != 0 {
			t.Errorf("Neighbors at t=10s: %v, want none", nb)
		}
	})
	s.Run()
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	s := sim.New(1)
	ch := NewChannel(s, DefaultParams())
	ch.Register(0, &mobility.Static{}, &recorder{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	ch.Register(0, &mobility.Static{}, &recorder{})
}

func TestFramesCounter(t *testing.T) {
	s, ch, _ := build(t, 0, 50)
	ch.Transmit(&Frame{From: 0, To: 1, Kind: Data, Size: 10})
	s.Run()
	if ch.Frames() != 1 {
		t.Fatalf("Frames = %d, want 1", ch.Frames())
	}
}

func TestCaptureNearSenderWins(t *testing.T) {
	// Receiver at 0; near sender at 30 m, far interferer at 90 m:
	// 90/30 = 3 >= 1.78, the near frame captures.
	s, ch, recs := build(t, 0, 30, 90)
	ch.Transmit(&Frame{From: 1, To: 0, Kind: Data, Size: 100, Seq: 1})
	ch.Transmit(&Frame{From: 2, To: 0, Kind: Data, Size: 100, Seq: 2})
	s.Run()
	if len(recs[0].frames) != 1 || recs[0].frames[0].Seq != 1 {
		t.Fatalf("capture failed: got %v", recs[0].frames)
	}
}

func TestNoCaptureAtSimilarDistance(t *testing.T) {
	// Senders at 50 and 60 m: 60/50 = 1.2 < 1.78, both corrupted.
	s, ch, recs := build(t, 0, 50, 60)
	ch.Transmit(&Frame{From: 1, To: 0, Kind: Data, Size: 100})
	ch.Transmit(&Frame{From: 2, To: 0, Kind: Data, Size: 100})
	s.Run()
	if len(recs[0].frames) != 0 {
		t.Fatalf("similar-distance overlap decoded: %v", recs[0].frames)
	}
}

func TestCaptureDisabled(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	p.Range = 100
	p.CaptureRatio = 0
	ch := NewChannel(s, p)
	recs := []*recorder{{}, {}, {}}
	for i, x := range []float64{0, 30, 90} {
		ch.Register(NodeID(i), &mobility.Static{At: geo.Point{X: x}}, recs[i])
	}
	ch.Transmit(&Frame{From: 1, To: 0, Kind: Data, Size: 100})
	ch.Transmit(&Frame{From: 2, To: 0, Kind: Data, Size: 100})
	s.Run()
	if len(recs[0].frames) != 0 {
		t.Fatalf("capture disabled but frame decoded: %v", recs[0].frames)
	}
}

package radio

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/sim"
)

// logRecorder records (time, sender, seq) per decoded frame so two channel
// runs can be compared event for event.
type logRecorder struct {
	s   *sim.Simulator
	log []string
}

func (l *logRecorder) OnFrame(f *Frame) {
	l.log = append(l.log, fmt.Sprintf("%d %d %d", l.s.Now(), f.From, f.Seq))
}

// buildMobile registers n waypoint stations (seeded per node) on a channel
// with the given params and returns per-station logs.
func buildMobile(s *sim.Simulator, p Params, n int, terrain geo.Terrain, maxSpeed float64) (*Channel, []*logRecorder) {
	ch := NewChannel(s, p)
	recs := make([]*logRecorder, n)
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		m := mobility.NewWaypoint(terrain, rng, 1, maxSpeed, 0)
		recs[i] = &logRecorder{s: s}
		ch.Register(NodeID(i), m, recs[i])
	}
	return ch, recs
}

// driveRandomTraffic schedules transmissions from random senders at random
// times over dur, all derived from one seeded rng.
func driveRandomTraffic(s *sim.Simulator, ch *Channel, n int, dur sim.Time, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 600; i++ {
		at := sim.Time(rng.Int63n(int64(dur)))
		from := NodeID(rng.Intn(n))
		seq := uint32(i)
		s.At(at, func() {
			ch.Transmit(&Frame{From: from, To: Broadcast, Kind: Data, Size: 128, Seq: seq})
		})
	}
}

// runIndexed runs one randomized mobile broadcast workload under the given
// index kind and propagation, returning all reception logs plus counters.
func runIndexed(t *testing.T, kind IndexKind, prop PropSpec, n int, seed int64) ([][]string, uint64, uint64) {
	t.Helper()
	s := sim.New(seed)
	p := DefaultParams()
	p.Range = 250
	p.MaxSpeed = 25
	p.Index = kind
	p.Propagation = prop
	p.Seed = seed
	terrain := geo.Terrain{Width: 1500, Height: 900}
	ch, recs := buildMobile(s, p, n, terrain, p.MaxSpeed)
	if kind == IndexGrid && ch.grid == nil {
		t.Fatal("IndexGrid did not build a grid")
	}
	if kind == IndexLinear && ch.grid != nil {
		t.Fatal("IndexLinear built a grid")
	}
	driveRandomTraffic(s, ch, n, 600*time.Second, seed+7)
	s.Run()
	logs := make([][]string, n)
	for i, r := range recs {
		logs[i] = r.log
	}
	return logs, ch.Frames(), ch.Collisions()
}

// TestGridMatchesLinear is the regression test for the acceptance
// criterion: the grid-indexed channel must produce byte-identical
// reception logs and counters to the linear scan for identical seeds, for
// every propagation model.
func TestGridMatchesLinear(t *testing.T) {
	for _, prop := range []PropSpec{
		{},
		{Model: "shadowing"},
		{Model: "rayleigh"},
	} {
		name := prop.Model
		if name == "" {
			name = "unit-disk"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				lin, linFrames, linColl := runIndexed(t, IndexLinear, prop, 60, seed)
				grd, grdFrames, grdColl := runIndexed(t, IndexGrid, prop, 60, seed)
				if linFrames != grdFrames {
					t.Fatalf("seed %d: frames %d vs %d", seed, linFrames, grdFrames)
				}
				if linColl != grdColl {
					t.Fatalf("seed %d: collisions %d vs %d", seed, linColl, grdColl)
				}
				if !reflect.DeepEqual(lin, grd) {
					for i := range lin {
						if !reflect.DeepEqual(lin[i], grd[i]) {
							t.Fatalf("seed %d: station %d logs diverge:\nlinear: %v\ngrid:   %v",
								seed, i, lin[i], grd[i])
						}
					}
					t.Fatalf("seed %d: logs diverge", seed)
				}
			}
		})
	}
}

// TestAutoIndexSelection verifies IndexAuto picks the grid exactly when a
// speed bound is known.
func TestAutoIndexSelection(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	if ch := NewChannel(s, p); ch.grid != nil {
		t.Fatal("auto index built a grid with no speed bound")
	}
	p.MaxSpeed = 20
	if ch := NewChannel(s, p); ch.grid == nil {
		t.Fatal("auto index skipped the grid despite a speed bound")
	}
}

// TestGridNeighborsMatchesLinear verifies the Neighbors query agrees
// between index kinds as stations move.
func TestGridNeighborsMatchesLinear(t *testing.T) {
	const n = 40
	terrain := geo.Terrain{Width: 1200, Height: 800}
	mk := func(kind IndexKind) (*sim.Simulator, *Channel) {
		s := sim.New(1)
		p := DefaultParams()
		p.Range = 250
		p.MaxSpeed = 25
		p.Index = kind
		ch, _ := buildMobile(s, p, n, terrain, p.MaxSpeed)
		return s, ch
	}
	ls, lch := mk(IndexLinear)
	gs, gch := mk(IndexGrid)
	for step := 0; step < 40; step++ {
		at := sim.Time(step) * 10 * time.Second
		ls.RunUntil(at)
		gs.RunUntil(at)
		for id := 0; id < n; id++ {
			lnb := lch.Neighbors(NodeID(id))
			gnb := gch.Neighbors(NodeID(id))
			if !reflect.DeepEqual(lnb, gnb) {
				t.Fatalf("t=%v node %d: linear %v vs grid %v", at, id, lnb, gnb)
			}
		}
	}
}

// TestGridLateRegistrationMatchesLinear verifies stations registered
// after the simulation has been running (several refresh epochs deep) are
// still refreshed correctly: the late insert must join the bulk refresh
// pass, or it silently drifts past the slack bound.
func TestGridLateRegistrationMatchesLinear(t *testing.T) {
	const n, late = 40, 10
	terrain := geo.Terrain{Width: 1500, Height: 900}
	runOne := func(kind IndexKind) [][]string {
		s := sim.New(1)
		p := DefaultParams()
		p.Range = 250
		p.MaxSpeed = 25
		p.Index = kind
		ch, recs := buildMobile(s, p, n, terrain, p.MaxSpeed)
		// Burn through refresh epochs with traffic, then register the
		// late cohort.
		driveRandomTraffic(s, ch, n, 200*time.Second, 5)
		lateRecs := make([]*logRecorder, late)
		s.At(100*time.Second, func() {
			for i := 0; i < late; i++ {
				rng := rand.New(rand.NewSource(int64(5000 + i)))
				m := mobility.NewWaypoint(terrain, rng, 1, p.MaxSpeed, 0)
				lateRecs[i] = &logRecorder{s: s}
				ch.Register(NodeID(n+i), m, lateRecs[i])
			}
		})
		// Traffic that reaches the late cohort.
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 300; i++ {
			at := 100*time.Second + sim.Time(rng.Int63n(int64(300*time.Second)))
			from := NodeID(rng.Intn(n + late))
			seq := uint32(10000 + i)
			s.At(at, func() {
				ch.Transmit(&Frame{From: from, To: Broadcast, Kind: Data, Size: 128, Seq: seq})
			})
		}
		s.Run()
		logs := make([][]string, 0, n+late)
		for _, r := range append(recs, lateRecs...) {
			logs = append(logs, r.log)
		}
		return logs
	}
	lin, grd := runOne(IndexLinear), runOne(IndexGrid)
	if !reflect.DeepEqual(lin, grd) {
		t.Fatal("late-registration logs diverge between linear and grid")
	}
}

// TestGridStaticStations verifies the grid works with MaxSpeed 0 under
// IndexGrid: no refresh machinery, exact lookups.
func TestGridStaticStations(t *testing.T) {
	s := sim.New(1)
	p := DefaultParams()
	p.Range = 100
	p.Index = IndexGrid
	ch := NewChannel(s, p)
	recs := make([]*logRecorder, 3)
	for i, x := range []float64{0, 50, 250} {
		recs[i] = &logRecorder{s: s}
		ch.Register(NodeID(i), &mobility.Static{At: geo.Point{X: x}}, recs[i])
	}
	ch.Transmit(&Frame{From: 0, To: Broadcast, Kind: Data, Size: 100, Seq: 9})
	s.Run()
	if len(recs[1].log) != 1 {
		t.Fatalf("in-range station decoded %d frames, want 1", len(recs[1].log))
	}
	if len(recs[2].log) != 0 {
		t.Fatalf("out-of-range station decoded %d frames, want 0", len(recs[2].log))
	}
}

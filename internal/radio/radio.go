// Package radio models the shared wireless channel: unit-disk propagation,
// half-duplex stations, and collision-on-overlap reception.
//
// The model corresponds to the physical layer the paper's GloMoSim setup
// provides to its 802.11 MAC: a 2 Mbps channel where a frame is received by
// every station within transmission range of the sender unless another
// audible transmission overlaps it in time at that receiver (including the
// hidden-terminal case) or the receiver itself is transmitting.
package radio

import (
	"fmt"
	"math"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/sim"
)

// NodeID identifies a station. IDs are small non-negative integers assigned
// by the scenario; Broadcast is the wildcard destination.
type NodeID int

// Broadcast is the destination of link-layer broadcast frames.
const Broadcast NodeID = -1

// FrameKind distinguishes MAC frame types on the air.
type FrameKind uint8

// Frame kinds.
const (
	Data FrameKind = iota + 1
	Ack
	Rts
	Cts
)

// Frame is a link-layer frame in flight.
type Frame struct {
	From NodeID
	To   NodeID // Broadcast or a unicast destination
	Kind FrameKind
	Seq  uint32 // MAC sequence number, used for ACK matching and dedup
	Size int    // bytes, including MAC framing
	// Dur is the 802.11 duration field: how long the medium remains
	// reserved after this frame ends. Overhearers load it into their
	// NAV (virtual carrier sense).
	Dur sim.Time
	// Payload is opaque to the channel; the network layer owns it.
	Payload any
}

// Receiver is the upper layer (the MAC) notified of decodable frames.
// The channel delivers every frame a station can decode, including frames
// addressed elsewhere; filtering is the MAC's job.
type Receiver interface {
	OnFrame(f *Frame)
}

// Params configures the channel.
type Params struct {
	// Range is the transmission (and interference) radius in meters.
	Range float64
	// BitRate is the channel rate in bits per second.
	BitRate float64
	// PhyOverhead is the fixed per-frame preamble/PLCP time.
	PhyOverhead sim.Time
	// CaptureRatio models physical capture: a frame survives an
	// overlapping transmission whose sender is at least CaptureRatio
	// times farther from the receiver (the distance form of a 10 dB SNR
	// threshold under two-ray d^-4 pathloss: 10^(10/40) ≈ 1.78, as in
	// the GloMoSim/ns-2 radio models). Zero disables capture: any
	// overlap corrupts.
	CaptureRatio float64
}

// DefaultParams matches the paper's setup: 2 Mbps channel and a ~275 m
// nominal radio range with an 802.11-like 192 us preamble.
func DefaultParams() Params {
	return Params{
		Range:        275,
		BitRate:      2e6,
		PhyOverhead:  192 * time.Microsecond,
		CaptureRatio: 1.78,
	}
}

// rx tracks one in-progress reception at a station. rx structs are pooled
// per Channel: a reception is the hottest allocation in a run (every frame
// allocates one per audible receiver), so endReception returns them to a
// freelist and allocRx reuses them, together with their end-of-reception
// closure (built once per pooled node, capturing only the node itself).
type rx struct {
	frame     *Frame
	corrupted bool
	// dist is the sender-receiver distance at transmission start, used
	// for the capture comparison.
	dist float64
	st   *station // receiving station, set for the node's current life
	done func()   // calls endReception(rx); allocated once per node
}

// station is per-node channel state.
type station struct {
	id       NodeID
	mob      mobility.Model
	recv     Receiver
	active   []*rx    // receptions currently on the air at this station
	txUntil  sim.Time // end of this station's own transmission
	busyTill sim.Time // latest end of anything audible here
	navUntil sim.Time // virtual carrier sense (802.11 NAV)
}

// Channel is the shared medium. It is not safe for concurrent use; a
// simulation run is single-threaded by construction.
type Channel struct {
	sim      *sim.Simulator
	p        Params
	stations map[NodeID]*station
	order    []NodeID // registration order, for deterministic iteration
	freeRx   []*rx    // reception freelist (see rx)

	// Stats counters.
	frames     uint64
	collisions uint64
}

// NewChannel returns an empty channel bound to the simulator.
func NewChannel(s *sim.Simulator, p Params) *Channel {
	return &Channel{
		sim:      s,
		p:        p,
		stations: make(map[NodeID]*station),
	}
}

// Register attaches a station with its mobility model and frame receiver.
// Registering the same id twice panics: it is a wiring bug.
func (c *Channel) Register(id NodeID, m mobility.Model, r Receiver) {
	if _, dup := c.stations[id]; dup {
		panic(fmt.Sprintf("radio: station %d registered twice", id))
	}
	c.stations[id] = &station{id: id, mob: m, recv: r}
	c.order = append(c.order, id)
}

// AirTime returns how long a frame of size bytes occupies the medium.
func (c *Channel) AirTime(size int) sim.Time {
	return c.p.PhyOverhead + sim.Time(float64(size*8)/c.p.BitRate*float64(time.Second))
}

// Busy reports whether station id senses the medium busy right now:
// physical carrier sense (any audible transmission, or its own) or virtual
// carrier sense (NAV).
func (c *Channel) Busy(id NodeID) bool {
	st := c.stations[id]
	now := c.sim.Now()
	return st.txUntil > now || len(st.active) > 0 || st.navUntil > now
}

// SetNAV reserves the medium at station id until `until` per an overheard
// duration field; shorter reservations never shrink the NAV.
func (c *Channel) SetNAV(id NodeID, until sim.Time) {
	st := c.stations[id]
	if until > st.navUntil {
		st.navUntil = until
	}
}

// IdleAt returns the earliest time at or after now when station id will
// sense the medium idle, based on currently known transmissions and NAV.
func (c *Channel) IdleAt(id NodeID) sim.Time {
	st := c.stations[id]
	t := c.sim.Now()
	if st.txUntil > t {
		t = st.txUntil
	}
	if st.busyTill > t {
		t = st.busyTill
	}
	if st.navUntil > t {
		t = st.navUntil
	}
	return t
}

// Transmitting reports whether station id is transmitting right now.
func (c *Channel) Transmitting(id NodeID) bool {
	return c.stations[id].txUntil > c.sim.Now()
}

// Position returns station id's current position.
func (c *Channel) Position(id NodeID) geo.Point {
	return c.stations[id].mob.Position(c.sim.Now())
}

// Neighbors returns the stations currently within range of id, in
// registration order. It exists for scenario setup and tests; protocols
// must discover neighbors over the air.
func (c *Channel) Neighbors(id NodeID) []NodeID {
	self := c.stations[id]
	pos := self.mob.Position(c.sim.Now())
	r2 := c.p.Range * c.p.Range
	var out []NodeID
	for _, oid := range c.order {
		if oid == id {
			continue
		}
		if pos.Dist2(c.stations[oid].mob.Position(c.sim.Now())) <= r2 {
			out = append(out, oid)
		}
	}
	return out
}

// Frames returns the total number of transmissions started.
func (c *Channel) Frames() uint64 { return c.frames }

// Collisions returns the number of receptions corrupted by overlap.
func (c *Channel) Collisions() uint64 { return c.collisions }

// Transmit puts f on the air from station f.From, starting now. Receptions
// complete (or are found corrupted) one air-time later. The transmitting
// station cannot decode anything while sending (half-duplex), and any
// overlap of audible frames at a station corrupts all of them.
func (c *Channel) Transmit(f *Frame) {
	sender, ok := c.stations[f.From]
	if !ok {
		panic(fmt.Sprintf("radio: transmit from unregistered station %d", f.From))
	}
	now := c.sim.Now()
	air := c.AirTime(f.Size)
	end := now + air
	c.frames++

	// Half duplex: starting to transmit corrupts anything being received.
	for _, r := range sender.active {
		if !r.corrupted {
			r.corrupted = true
			c.collisions++
		}
	}
	if sender.txUntil < end {
		sender.txUntil = end
	}

	pos := sender.mob.Position(now)
	r2 := c.p.Range * c.p.Range
	for _, oid := range c.order {
		if oid == f.From {
			continue
		}
		st := c.stations[oid]
		d2 := pos.Dist2(st.mob.Position(now))
		if d2 > r2 {
			continue
		}
		c.beginReception(st, f, end, d2)
	}
}

// allocRx takes a reception node from the freelist, or builds a fresh one
// with its reusable end-of-reception closure.
func (c *Channel) allocRx(st *station, f *Frame, dist float64) *rx {
	var r *rx
	if n := len(c.freeRx); n > 0 {
		r = c.freeRx[n-1]
		c.freeRx[n-1] = nil
		c.freeRx = c.freeRx[:n-1]
	} else {
		r = &rx{}
		r.done = func() { c.endReception(r) }
	}
	r.st, r.frame, r.dist, r.corrupted = st, f, dist, false
	return r
}

func (c *Channel) beginReception(st *station, f *Frame, end sim.Time, dist2 float64) {
	r := c.allocRx(st, f, math.Sqrt(dist2))
	// Overlapping receptions corrupt each other unless one captures: its
	// sender is CaptureRatio times closer than the interferer's.
	for _, other := range st.active {
		if !other.corrupted && !c.captures(other, r) {
			other.corrupted = true
			c.collisions++
		}
		if !r.corrupted && !c.captures(r, other) {
			r.corrupted = true
			c.collisions++
		}
	}
	// A station that is transmitting cannot decode.
	if st.txUntil > c.sim.Now() && !r.corrupted {
		r.corrupted = true
		c.collisions++
	}
	st.active = append(st.active, r)
	if st.busyTill < end {
		st.busyTill = end
	}
	c.sim.At(end, r.done)
}

// captures reports whether reception r survives interference from other:
// r's sender must be CaptureRatio times closer than other's.
func (c *Channel) captures(r, other *rx) bool {
	if c.p.CaptureRatio <= 0 {
		return false
	}
	return other.dist >= c.p.CaptureRatio*r.dist
}

func (c *Channel) endReception(r *rx) {
	st := r.st
	// Remove r from the active set.
	for i, other := range st.active {
		if other == r {
			st.active[i] = st.active[len(st.active)-1]
			st.active[len(st.active)-1] = nil
			st.active = st.active[:len(st.active)-1]
			break
		}
	}
	frame, corrupted := r.frame, r.corrupted
	r.frame, r.st = nil, nil
	c.freeRx = append(c.freeRx, r)
	// A transmission that started while r was on the air has already
	// corrupted it (beginReception / Transmit handle both directions).
	if corrupted {
		return
	}
	if st.recv != nil {
		st.recv.OnFrame(frame)
	}
}

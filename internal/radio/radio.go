// Package radio models the shared wireless channel: pluggable binary
// propagation (unit-disk by default, per-link fading models via the
// propagation registry), half-duplex stations, and collision-on-overlap
// reception.
//
// The model corresponds to the physical layer the paper's GloMoSim setup
// provides to its 802.11 MAC: a 2 Mbps channel where a frame is received by
// every station within link range of the sender unless another audible
// transmission overlaps it in time at that receiver (including the
// hidden-terminal case) or the receiver itself is transmitting.
//
// Audible-set lookup is O(neighbors) through an incremental spatial grid
// index (see grid) when Params supplies a speed bound; the O(N) linear
// scan remains as the reference path and the two are byte-identical for
// the same seed.
package radio

import (
	"fmt"
	"math"
	"sync"
	"time"

	"slr/internal/geo"
	"slr/internal/mobility"
	"slr/internal/sim"
)

// NodeID identifies a station. IDs are small non-negative integers assigned
// by the scenario; Broadcast is the wildcard destination.
type NodeID int

// Broadcast is the destination of link-layer broadcast frames.
const Broadcast NodeID = -1

// FrameKind distinguishes MAC frame types on the air.
type FrameKind uint8

// Frame kinds.
const (
	Data FrameKind = iota + 1
	Ack
	Rts
	Cts
)

// Frame is a link-layer frame in flight.
type Frame struct {
	From NodeID
	To   NodeID // Broadcast or a unicast destination
	Kind FrameKind
	Seq  uint32 // MAC sequence number, used for ACK matching and dedup
	Size int    // bytes, including MAC framing
	// Dur is the 802.11 duration field: how long the medium remains
	// reserved after this frame ends. Overhearers load it into their
	// NAV (virtual carrier sense).
	Dur sim.Time
	// Payload is opaque to the channel; the network layer owns it.
	Payload any
}

// Receiver is the upper layer (the MAC) notified of decodable frames.
// The channel delivers every frame a station can decode, including frames
// addressed elsewhere; filtering is the MAC's job.
type Receiver interface {
	OnFrame(f *Frame)
}

// IndexKind selects how the channel finds a transmission's audible set.
type IndexKind uint8

const (
	// IndexAuto uses the spatial grid when MaxSpeed is a known positive
	// bound (the grid needs it to cap position drift) and the linear
	// scan otherwise.
	IndexAuto IndexKind = iota
	// IndexLinear scans every registered station per transmission, the
	// original O(N) reference path.
	IndexLinear
	// IndexGrid uses the spatial grid unconditionally, trusting MaxSpeed
	// as a hard bound (0 = stations never move). Results are
	// byte-identical to IndexLinear for any spec-conformant mobility.
	IndexGrid
)

// Params configures the channel.
type Params struct {
	// Range is the transmission (and interference) radius in meters.
	Range float64
	// BitRate is the channel rate in bits per second.
	BitRate float64
	// PhyOverhead is the fixed per-frame preamble/PLCP time.
	PhyOverhead sim.Time
	// CaptureRatio models physical capture: a frame survives an
	// overlapping transmission whose sender is at least CaptureRatio
	// times farther from the receiver (the distance form of a 10 dB SNR
	// threshold under two-ray d^-4 pathloss: 10^(10/40) ≈ 1.78, as in
	// the GloMoSim/ns-2 radio models). Zero disables capture: any
	// overlap corrupts.
	CaptureRatio float64
	// Propagation selects a registered propagation model; the zero
	// value is unit-disk at Range, the paper's radio.
	Propagation PropSpec
	// Seed feeds deterministic per-link fading draws (shadowing,
	// rayleigh); unit-disk ignores it.
	Seed int64
	// MaxSpeed is an upper bound on any station's speed in m/s. It lets
	// the spatial grid bound how far cached positions drift between
	// refreshes; mobility models built from a mobility.Spec guarantee
	// it. Zero means no bound is known.
	MaxSpeed float64
	// Index selects the audible-set lookup structure; see IndexKind.
	Index IndexKind
}

// DefaultParams matches the paper's setup: 2 Mbps channel and a ~275 m
// nominal radio range with an 802.11-like 192 us preamble.
func DefaultParams() Params {
	return Params{
		Range:        275,
		BitRate:      2e6,
		PhyOverhead:  192 * time.Microsecond,
		CaptureRatio: 1.78,
	}
}

// rx tracks one in-progress reception at a station. rx structs are pooled
// per Channel: a reception is the hottest allocation in a run (every frame
// allocates one per audible receiver), so endReception returns them to a
// freelist and allocRx reuses them, together with their end-of-reception
// closure (built once per pooled node, capturing only the node itself).
type rx struct {
	frame     *Frame
	corrupted bool
	// dist is the sender-receiver distance at transmission start, used
	// for the capture comparison.
	dist float64
	st   *station  // receiving station, set for the node's current life
	done func()    // calls endReception(rx); allocated once per node
	tm   sim.Timer // the end-of-reception event, for conflict re-keying
}

// station is per-node channel state.
type station struct {
	id       NodeID
	idx      int // registration order, the deterministic iteration key
	mob      mobility.Model
	recv     Receiver
	active   []*rx    // receptions currently on the air at this station
	txUntil  sim.Time // end of this station's own transmission
	busyTill sim.Time // latest end of anything audible here
	navUntil sim.Time // virtual carrier sense (802.11 NAV)

	// Spatial grid bookkeeping (see grid): the cached position and where
	// the station sits in the cell hash.
	cachedPos geo.Point
	cellKey   int64
	slot      int
}

// Channel is the shared medium. It is not safe for general concurrent
// use; a simulation run is coordinator-driven by construction. The one
// concession to the kernel's opt-in parallel executor is the class of
// end-of-reception events tagged with node-local conflict keys (corrupted
// receptions, clean overheard unicasts): those may run concurrently with
// each other on disjoint nodes, touching only their receiver's state and
// the mutex-guarded rx freelist.
type Channel struct {
	sim      *sim.Simulator
	p        Params
	prop     Propagation
	stations map[NodeID]*station
	// byID is a dense lookup table over non-negative IDs (the scenario
	// assigns 0..N-1): the per-frame entry points (Busy, IdleAt, SetNAV,
	// Transmit) resolve stations without hashing. Sparse or exotic IDs
	// fall back to the map.
	byID   []*station
	order  []NodeID   // registration order, for deterministic iteration
	byIdx  []*station // stations in registration order
	grid   *grid      // nil = linear scan
	hits   []hit      // scratch for audible-set results
	freeRx []*rx      // reception freelist (see rx)
	// rxMu guards freeRx pushes from parallel end-of-reception events
	// (the only channel state such events share; see endReception). Pops
	// happen only inside Transmit, which is a barrier event, and the
	// window join gives the needed happens-before edge, so pops stay
	// lock-free.
	rxMu sync.Mutex

	// Stats counters.
	frames     uint64
	collisions uint64
}

// NewChannel returns an empty channel bound to the simulator. An
// unregistered Params.Propagation model panics: spec loading validates
// model names, so reaching here with one is a wiring bug.
func NewChannel(s *sim.Simulator, p Params) *Channel {
	prop, err := NewPropagation(p)
	if err != nil {
		panic(err)
	}
	c := &Channel{
		sim:      s,
		p:        p,
		prop:     prop,
		stations: make(map[NodeID]*station),
	}
	useGrid := p.Index == IndexGrid || (p.Index == IndexAuto && p.MaxSpeed > 0)
	if useGrid && prop.MaxRange() > 0 {
		c.grid = newGrid(prop.MaxRange(), p.MaxSpeed)
	}
	return c
}

// Register attaches a station with its mobility model and frame receiver.
// Registering the same id twice panics: it is a wiring bug.
func (c *Channel) Register(id NodeID, m mobility.Model, r Receiver) {
	if _, dup := c.stations[id]; dup {
		panic(fmt.Sprintf("radio: station %d registered twice", id))
	}
	st := &station{id: id, idx: len(c.order), mob: m, recv: r}
	c.stations[id] = st
	c.order = append(c.order, id)
	c.byIdx = append(c.byIdx, st)
	if id >= 0 {
		for int(id) >= len(c.byID) {
			c.byID = append(c.byID, nil)
		}
		c.byID[id] = st
	}
	if c.grid != nil {
		c.grid.insert(st, m.Position(c.sim.Now()), len(c.byIdx))
	}
}

// RefreshPositions eagerly re-caches every station position in the spatial
// index and opens a new refresh epoch. The channel already does this
// lazily on the first transmission of each epoch; scenarios that advance
// mobility in discrete steps can call it at each step boundary to pay the
// bulk pass at a deterministic point instead. Results are unaffected
// either way (the index only ever narrows the candidate set; audibility is
// always decided on exact positions). No-op without a grid or with
// immobile stations.
func (c *Channel) RefreshPositions() {
	if c.grid != nil && c.grid.refresh != 0 {
		c.grid.refreshAll(c.byIdx, c.sim.Now())
	}
}

// station resolves id through the dense table, falling back to the map
// for IDs outside it.
func (c *Channel) station(id NodeID) *station {
	if id >= 0 && int(id) < len(c.byID) {
		if st := c.byID[id]; st != nil {
			return st
		}
	}
	return c.stations[id]
}

// AirTime returns how long a frame of size bytes occupies the medium.
func (c *Channel) AirTime(size int) sim.Time {
	return c.p.PhyOverhead + sim.Time(float64(size*8)/c.p.BitRate*float64(time.Second))
}

// Busy reports whether station id senses the medium busy right now:
// physical carrier sense (any audible transmission, or its own) or virtual
// carrier sense (NAV).
func (c *Channel) Busy(id NodeID) bool {
	st := c.station(id)
	now := c.sim.Now()
	return st.txUntil > now || len(st.active) > 0 || st.navUntil > now
}

// SetNAV reserves the medium at station id until `until` per an overheard
// duration field; shorter reservations never shrink the NAV.
func (c *Channel) SetNAV(id NodeID, until sim.Time) {
	st := c.station(id)
	if until > st.navUntil {
		st.navUntil = until
	}
}

// IdleAt returns the earliest time at or after now when station id will
// sense the medium idle, based on currently known transmissions and NAV.
func (c *Channel) IdleAt(id NodeID) sim.Time {
	st := c.station(id)
	t := c.sim.Now()
	if st.txUntil > t {
		t = st.txUntil
	}
	if st.busyTill > t {
		t = st.busyTill
	}
	if st.navUntil > t {
		t = st.navUntil
	}
	return t
}

// Transmitting reports whether station id is transmitting right now.
func (c *Channel) Transmitting(id NodeID) bool {
	return c.station(id).txUntil > c.sim.Now()
}

// Position returns station id's current position.
func (c *Channel) Position(id NodeID) geo.Point {
	return c.station(id).mob.Position(c.sim.Now())
}

// Neighbors returns the stations currently within link range of id, in
// registration order. It exists for scenario setup and tests; protocols
// must discover neighbors over the air.
func (c *Channel) Neighbors(id NodeID) []NodeID {
	self := c.station(id)
	pos := self.mob.Position(c.sim.Now())
	var out []NodeID
	for _, h := range c.audible(self, pos) {
		out = append(out, h.st.id)
	}
	return out
}

// hit is one audible-set entry: a receiving station and the exact squared
// sender-receiver distance.
type hit struct {
	st *station
	d2 float64
}

// audible returns the stations that can hear a transmission from sender at
// pos right now, in registration order, with exact squared distances. The
// grid path and the linear path apply the identical per-link test to exact
// positions, so they return the identical slice — the grid only narrows
// how many stations are tested. The slice is scratch, valid until the next
// call.
func (c *Channel) audible(sender *station, pos geo.Point) []hit {
	now := c.sim.Now()
	c.hits = c.hits[:0]
	if c.grid != nil {
		c.grid.maybeRefresh(c.byIdx, now)
		for _, idx := range c.grid.query(pos) {
			st := c.byIdx[idx]
			if st == sender {
				continue
			}
			d2 := pos.Dist2(st.mob.Position(now))
			if lr := c.prop.LinkRange(sender.id, st.id); d2 > lr*lr {
				continue
			}
			c.hits = append(c.hits, hit{st: st, d2: d2})
		}
		return c.hits
	}
	for _, oid := range c.order {
		if oid == sender.id {
			continue
		}
		st := c.stations[oid]
		d2 := pos.Dist2(st.mob.Position(now))
		if lr := c.prop.LinkRange(sender.id, st.id); d2 > lr*lr {
			continue
		}
		c.hits = append(c.hits, hit{st: st, d2: d2})
	}
	return c.hits
}

// stationKey returns the node-local conflict footprint for st: the node id
// plus the grid cell its cached position occupies (the cell the spatial
// index would search from), or a position-free node key without a grid.
func (c *Channel) stationKey(st *station) sim.ConflictKey {
	if c.grid != nil {
		return sim.NodeCellKey(int32(st.id), int32(st.cellKey>>32), int32(uint32(st.cellKey)))
	}
	return sim.NodeKey(int32(st.id))
}

// ConflictKey returns the conflict footprint for an event that mutates
// only station id's local channel/MAC state. Unknown stations degrade to
// the conflicts-with-all key.
func (c *Channel) ConflictKey(id NodeID) sim.ConflictKey {
	st := c.station(id)
	if st == nil {
		return sim.ConflictAll
	}
	return c.stationKey(st)
}

// AreaConflictKey returns the conflict footprint for an event that may
// touch station id's whole radio neighborhood (its grid cell plus the
// interference margin). Without a grid there is no neighborhood bound, so
// it degrades to the conflicts-with-all key.
func (c *Channel) AreaConflictKey(id NodeID) sim.ConflictKey {
	st := c.station(id)
	if st == nil || c.grid == nil {
		return sim.ConflictAll
	}
	return sim.AreaKey(int32(st.id), int32(st.cellKey>>32), int32(uint32(st.cellKey)))
}

// corrupt marks r corrupted and downgrades its end-of-reception event to a
// node-local conflict key: a corrupted reception's completion only removes
// it from its receiver's active set and returns the rx to the pool, so the
// parallel executor may run it concurrently with other nodes' receptions.
// Every corruption site runs inside Transmit — a barrier event — strictly
// before the end event fires, and the window partitioner reads keys at
// application time, so the retag is always observed.
func (c *Channel) corrupt(r *rx) {
	r.corrupted = true
	c.collisions++
	c.sim.SetConflictKey(r.tm, c.stationKey(r.st))
}

// Frames returns the total number of transmissions started.
func (c *Channel) Frames() uint64 { return c.frames }

// Collisions returns the number of receptions corrupted by overlap.
func (c *Channel) Collisions() uint64 { return c.collisions }

// Transmit puts f on the air from station f.From, starting now. Receptions
// complete (or are found corrupted) one air-time later. The transmitting
// station cannot decode anything while sending (half-duplex), and any
// overlap of audible frames at a station corrupts all of them.
func (c *Channel) Transmit(f *Frame) {
	if c.sim.Flushing() {
		// Transmission mutates the audible neighborhood, the frame counter,
		// and every receiver's active set — strictly barrier-event work.
		// Keyed callbacks (end-of-reception) never transmit; reaching here
		// from one is a conflict-contract bug.
		panic("radio: Transmit during parallel window application")
	}
	sender := c.station(f.From)
	if sender == nil {
		panic(fmt.Sprintf("radio: transmit from unregistered station %d", f.From))
	}
	now := c.sim.Now()
	air := c.AirTime(f.Size)
	end := now + air
	c.frames++

	// Half duplex: starting to transmit corrupts anything being received.
	for _, r := range sender.active {
		if !r.corrupted {
			c.corrupt(r)
		}
	}
	if sender.txUntil < end {
		sender.txUntil = end
	}

	pos := sender.mob.Position(now)
	for _, h := range c.audible(sender, pos) {
		c.beginReception(h.st, f, end, h.d2)
	}
}

// allocRx takes a reception node from the freelist, or builds a fresh one
// with its reusable end-of-reception closure.
func (c *Channel) allocRx(st *station, f *Frame, dist float64) *rx {
	var r *rx
	if n := len(c.freeRx); n > 0 {
		r = c.freeRx[n-1]
		c.freeRx[n-1] = nil
		c.freeRx = c.freeRx[:n-1]
	} else {
		r = &rx{}
		r.done = func() { c.endReception(r) }
	}
	r.st, r.frame, r.dist, r.corrupted = st, f, dist, false
	return r
}

func (c *Channel) beginReception(st *station, f *Frame, end sim.Time, dist2 float64) {
	r := c.allocRx(st, f, math.Sqrt(dist2))
	// Overlapping receptions corrupt each other unless one captures: its
	// sender is CaptureRatio times closer than the interferer's. r itself
	// is not scheduled yet, so its corruption feeds the initial key below
	// rather than a retag.
	for _, other := range st.active {
		if !other.corrupted && !c.captures(other, r) {
			c.corrupt(other)
		}
		if !r.corrupted && !c.captures(r, other) {
			r.corrupted = true
			c.collisions++
		}
	}
	// A station that is transmitting cannot decode.
	if st.txUntil > c.sim.Now() && !r.corrupted {
		r.corrupted = true
		c.collisions++
	}
	st.active = append(st.active, r)
	if st.busyTill < end {
		st.busyTill = end
	}
	// Conflict key: a corrupted reception completes node-locally (active-
	// set removal, no delivery), and a clean overheard unicast delivers
	// into the MAC's virtual-carrier-sense path, which only reads the
	// frame and writes this station's NAV (see mac.OnFrame's re-entrancy
	// audit). Everything else — broadcast deliveries and frames addressed
	// to this station — climbs into routing code that draws shared RNG and
	// transmits, so it stays a barrier event.
	key := sim.ConflictAll
	if r.corrupted || (f.To != Broadcast && f.To != st.id) {
		key = c.stationKey(st)
	}
	r.tm = c.sim.AtKeyed(end, key, r.done)
}

// captures reports whether reception r survives interference from other:
// r's sender must be CaptureRatio times closer than other's.
func (c *Channel) captures(r, other *rx) bool {
	if c.p.CaptureRatio <= 0 {
		return false
	}
	return other.dist >= c.p.CaptureRatio*r.dist
}

func (c *Channel) endReception(r *rx) {
	st := r.st
	// Remove r from the active set.
	for i, other := range st.active {
		if other == r {
			st.active[i] = st.active[len(st.active)-1]
			st.active[len(st.active)-1] = nil
			st.active = st.active[:len(st.active)-1]
			break
		}
	}
	frame, corrupted := r.frame, r.corrupted
	r.frame, r.st = nil, nil
	// The freelist is the only channel state keyed (parallel-safe)
	// end-of-reception events share, so pushes take a lock during a
	// parallel window. Pops (allocRx, via Transmit) run only in barrier
	// events, after the window join's happens-before edge, so they stay
	// lock-free, and pool order is semantically inert — an rx is fully
	// reinitialized on alloc.
	if c.sim.Flushing() {
		c.rxMu.Lock()
		c.freeRx = append(c.freeRx, r)
		c.rxMu.Unlock()
	} else {
		c.freeRx = append(c.freeRx, r)
	}
	// A transmission that started while r was on the air has already
	// corrupted it (beginReception / Transmit handle both directions).
	if corrupted {
		return
	}
	if st.recv != nil {
		st.recv.OnFrame(frame)
	}
}

package radio

import (
	"math"
	"math/bits"
	"time"

	"slr/internal/geo"
	"slr/internal/sim"
)

// grid is an incremental spatial index over stations: a sparse hash of
// square cells, cell side = the propagation model's maximum range, holding
// each station under a cached position.
//
// Exactness without re-indexing every move: a cached position is allowed
// to drift up to `slack` meters from the station's true position. Querying
// the cells within MaxRange+slack of a transmitter therefore yields a
// superset of every station truly within MaxRange, and the caller applies
// the exact per-link distance test to that superset — so the audible set
// is identical to the O(N) linear scan, station for station.
//
// The drift bound is maintained lazily, with no simulator events: cached
// positions are refreshed in one bulk pass per mobility epoch (epoch =
// slack / MaxSpeed, the time a fastest-possible node needs to travel slack
// meters), triggered by the first query past the epoch deadline. Every
// cache in an epoch is at most one epoch old, so drift stays under slack;
// between epoch boundaries a query touches the index not at all. The bulk
// pass replaces the per-query staleness ring the grid originally carried:
// same amortized work (each station re-cached once per epoch), none of the
// per-transmit age bookkeeping on the hot path.
//
// Candidates are returned in registration order so reception events are
// scheduled in exactly the order the linear scan would produce —
// byte-identical simulation results, enforced by TestGridMatchesLinear.
// Ordering costs no sort: candidates are marked in a bitset over
// registration indices and read back in ascending-bit order.
type grid struct {
	cell    float64  // cell side, = Propagation.MaxRange()
	inv     float64  // 1 / cell
	reach   float64  // query radius: MaxRange + slack
	refresh sim.Time // max cache age (one epoch); 0 = stations never move
	// nextRefresh is the current epoch's deadline: the first query at or
	// past it re-caches every station (see maybeRefresh).
	nextRefresh sim.Time
	cells       map[int64][]*station
	marks       []uint64 // candidate bitset over registration indices
	cands       []int32  // scratch for query results (registration indices)
}

// gridSlackFraction is the allowed cache drift as a fraction of the cell
// side. Smaller means a tighter candidate search radius but more frequent
// cache refreshes; at 1/4 a 20 m/s node under a 275 m range refreshes
// every ~3.4 s of simulated time, a trivial cost next to per-transmit
// work, while the query disk shrinks from 1.5x to 1.25x the range.
const gridSlackFraction = 0.25

// newGrid sizes a grid for the given propagation reach and speed bound.
// maxSpeed 0 means stations are known never to move: no slack, no
// refreshing.
func newGrid(maxRange, maxSpeed float64) *grid {
	g := &grid{
		cell:  maxRange,
		inv:   1 / maxRange,
		reach: maxRange,
		cells: make(map[int64][]*station),
	}
	if maxSpeed > 0 {
		slack := maxRange * gridSlackFraction
		g.reach = maxRange + slack
		g.refresh = sim.Time(slack / maxSpeed * float64(time.Second))
	}
	return g
}

// cellKey packs the cell coordinates of p into one map key.
func (g *grid) cellKey(p geo.Point) int64 {
	cx := int32(math.Floor(p.X * g.inv))
	cy := int32(math.Floor(p.Y * g.inv))
	return int64(cx)<<32 | int64(uint32(cy))
}

// insert adds a newly registered station at its current position. The
// fresh cache is younger than the current epoch's bulk pass, so the drift
// bound holds for it until the next epoch like for everyone else.
func (g *grid) insert(st *station, pos geo.Point, nStations int) {
	st.cachedPos = pos
	st.cellKey = g.cellKey(pos)
	bucket := g.cells[st.cellKey]
	st.slot = len(bucket)
	g.cells[st.cellKey] = append(bucket, st)
	if need := (nStations + 63) / 64; need > len(g.marks) {
		g.marks = append(g.marks, make([]uint64, need-len(g.marks))...)
	}
}

// move re-caches st's position, re-bucketing it if it crossed a cell edge.
func (g *grid) move(st *station, pos geo.Point) {
	st.cachedPos = pos
	key := g.cellKey(pos)
	if key == st.cellKey {
		return
	}
	// Swap-remove from the old bucket.
	old := g.cells[st.cellKey]
	last := old[len(old)-1]
	old[st.slot] = last
	last.slot = st.slot
	old[len(old)-1] = nil
	g.cells[st.cellKey] = old[:len(old)-1]

	st.cellKey = key
	bucket := g.cells[key]
	st.slot = len(bucket)
	g.cells[key] = append(bucket, st)
}

// maybeRefresh starts a new mobility epoch when the current one has
// expired: one bulk pass re-caching every station. Queries between epoch
// boundaries see caches at most one epoch (refresh) old, which bounds
// drift to slack meters and keeps the reach-disk superset sound.
func (g *grid) maybeRefresh(stations []*station, now sim.Time) {
	if g.refresh == 0 || now < g.nextRefresh {
		return
	}
	g.refreshAll(stations, now)
}

// refreshAll re-caches every station's position and opens a fresh epoch
// ending one refresh interval from now.
func (g *grid) refreshAll(stations []*station, now sim.Time) {
	for _, st := range stations {
		g.move(st, st.mob.Position(now))
	}
	g.nextRefresh = now + g.refresh
}

// query returns the registration indices of every station whose true
// position could be within MaxRange of pos, sorted ascending — i.e. in
// registration order, the order the linear scan visits stations. Cells
// overlapping the bounding box of the search disk but not the disk itself
// are skipped outright (the corner cells, ~1/4 of the box). The caller
// must apply the exact distance test; the slice is scratch, valid until
// the next query.
func (g *grid) query(pos geo.Point) []int32 {
	g.cands = g.cands[:0]
	cx0 := int32(math.Floor((pos.X - g.reach) * g.inv))
	cx1 := int32(math.Floor((pos.X + g.reach) * g.inv))
	cy0 := int32(math.Floor((pos.Y - g.reach) * g.inv))
	cy1 := int32(math.Floor((pos.Y + g.reach) * g.inv))
	r2 := g.reach * g.reach
	for cy := cy0; cy <= cy1; cy++ {
		// Distance from pos to the cell row's nearest y edge.
		dy := 0.0
		if lo := float64(cy) * g.cell; pos.Y < lo {
			dy = lo - pos.Y
		} else if hi := float64(cy+1) * g.cell; pos.Y > hi {
			dy = pos.Y - hi
		}
		for cx := cx0; cx <= cx1; cx++ {
			dx := 0.0
			if lo := float64(cx) * g.cell; pos.X < lo {
				dx = lo - pos.X
			} else if hi := float64(cx+1) * g.cell; pos.X > hi {
				dx = pos.X - hi
			}
			if dx*dx+dy*dy > r2 {
				continue // cell entirely outside the search disk
			}
			key := int64(cx)<<32 | int64(uint32(cy))
			for _, st := range g.cells[key] {
				g.marks[st.idx>>6] |= 1 << (uint(st.idx) & 63)
			}
		}
	}
	for w, x := range g.marks {
		if x == 0 {
			continue
		}
		g.marks[w] = 0
		base := int32(w << 6)
		for x != 0 {
			g.cands = append(g.cands, base+int32(bits.TrailingZeros64(x)))
			x &= x - 1
		}
	}
	return g.cands
}

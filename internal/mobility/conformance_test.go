package mobility

import (
	"math/rand"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/sim"
)

// conformanceSpec is the configuration every registered model is held to.
func conformanceSpec(model string) Spec {
	return Spec{
		Model:    model,
		MinSpeed: 1,
		MaxSpeed: 15,
		Pause:    2 * time.Second,
	}
}

// conformanceTimes is a representative non-decreasing query schedule:
// dense and sparse gaps, repeated instants, and long jumps, over ~15 min.
func conformanceTimes() []sim.Time {
	var ts []sim.Time
	rng := rand.New(rand.NewSource(7))
	var t sim.Time
	for t < 900*time.Second {
		ts = append(ts, t)
		if rng.Intn(5) == 0 {
			ts = append(ts, t) // repeated query at the same instant
		}
		switch rng.Intn(3) {
		case 0:
			t += sim.Time(rng.Int63n(int64(100 * time.Millisecond)))
		case 1:
			t += sim.Time(rng.Int63n(int64(5 * time.Second)))
		default:
			t += sim.Time(rng.Int63n(int64(60 * time.Second)))
		}
	}
	return ts
}

// TestModelConformance applies the shared model contract to every
// registered mobility model: positions stay inside the terrain, any
// non-decreasing query schedule is legal (including repeated instants),
// the same seed replays the same trajectory, and displacement between two
// queries never exceeds MaxSpeed * elapsed — the drift bound the radio
// spatial index relies on.
func TestModelConformance(t *testing.T) {
	terrain := geo.Terrain{Width: 1000, Height: 600}
	times := conformanceTimes()
	for _, name := range Models() {
		t.Run(name, func(t *testing.T) {
			spec := conformanceSpec(name)
			for seed := int64(1); seed <= 3; seed++ {
				m, err := Build(terrain, rand.New(rand.NewSource(seed)), spec)
				if err != nil {
					t.Fatalf("Build(%q): %v", name, err)
				}
				replay, err := Build(terrain, rand.New(rand.NewSource(seed)), spec)
				if err != nil {
					t.Fatalf("Build(%q) replay: %v", name, err)
				}
				var prev geo.Point
				var prevT sim.Time
				for i, at := range times {
					p := m.Position(at)
					if !terrain.Contains(p) {
						t.Fatalf("seed %d: position %v at %v outside terrain", seed, p, at)
					}
					if q := replay.Position(at); q != p {
						t.Fatalf("seed %d: replay diverged at %v: %v vs %v", seed, at, q, p)
					}
					if i > 0 {
						// Allow a whisper of float slack on the speed bound.
						limit := spec.MaxSpeed*(at-prevT).Seconds() + 1e-6
						if d := p.Dist(prev); d > limit {
							t.Fatalf("seed %d: moved %.3f m in %v (limit %.3f) between %v and %v",
								seed, d, at-prevT, limit, prevT, at)
						}
					}
					prev, prevT = p, at
				}
			}
		})
	}
}

// TestSpeedBoundSurvivesAntiStallFloor verifies the hard MaxSpeed
// contract for bounds below the historical 0.1 m/s speed floor, and that
// a zero bound parks every model completely — both are what the radio
// spatial grid's drift math assumes.
func TestSpeedBoundSurvivesAntiStallFloor(t *testing.T) {
	terrain := geo.Terrain{Width: 1000, Height: 600}
	for _, name := range Models() {
		for _, maxSpeed := range []float64{0, 0.05} {
			m, err := Build(terrain, rand.New(rand.NewSource(9)),
				Spec{Model: name, MinSpeed: 0, MaxSpeed: maxSpeed})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			var prev geo.Point
			var prevT sim.Time
			for i, at := range []sim.Time{0, time.Second, 10 * time.Second, 600 * time.Second} {
				p := m.Position(at)
				if i > 0 {
					limit := maxSpeed*(at-prevT).Seconds() + 1e-9
					if d := p.Dist(prev); d > limit {
						t.Fatalf("%s maxSpeed=%v: moved %.4f m in %v (limit %.4f)",
							name, maxSpeed, d, at-prevT, limit)
					}
				}
				prev, prevT = p, at
			}
		}
	}
}

// TestBuildUnknownModel verifies the registry rejects unregistered names.
func TestBuildUnknownModel(t *testing.T) {
	_, err := Build(geo.Terrain{Width: 100, Height: 100}, rand.New(rand.NewSource(1)), Spec{Model: "teleport"})
	if err == nil {
		t.Fatal("Build accepted unknown model")
	}
}

// TestRegisterDuplicatePanics verifies double registration is a loud
// wiring bug.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("waypoint", func(geo.Terrain, *rand.Rand, Spec) (Model, error) { return &Static{}, nil })
}

// TestManhattanStaysOnStreets verifies Manhattan positions always lie on a
// street line of the block grid.
func TestManhattanStaysOnStreets(t *testing.T) {
	terrain := geo.Terrain{Width: 1000, Height: 600}
	spec := conformanceSpec("manhattan")
	m, err := Build(terrain, rand.New(rand.NewSource(42)), spec)
	if err != nil {
		t.Fatal(err)
	}
	block := 100.0
	onStreet := func(v float64) bool {
		_, frac := divmod(v, block)
		return frac < 1e-6 || block-frac < 1e-6
	}
	for at := sim.Time(0); at < 600*time.Second; at += 500 * time.Millisecond {
		p := m.Position(at)
		if !onStreet(p.X) && !onStreet(p.Y) {
			t.Fatalf("position %v at %v is off the street grid", p, at)
		}
	}
}

func divmod(v, m float64) (int, float64) {
	n := int(v / m)
	return n, v - float64(n)*m
}

// TestManhattanRejectsOversizedBlock verifies grid fitting is validated.
func TestManhattanRejectsOversizedBlock(t *testing.T) {
	spec := conformanceSpec("manhattan")
	spec.Params = map[string]float64{"block_m": 5000}
	_, err := Build(geo.Terrain{Width: 1000, Height: 600}, rand.New(rand.NewSource(1)), spec)
	if err == nil {
		t.Fatal("oversized block_m accepted")
	}
}

// TestGaussMarkovStraightLineAlphaOne verifies alpha=1 keeps speed and
// heading fixed between bounces: equal steps cover equal distances.
func TestGaussMarkovStraightLineAlphaOne(t *testing.T) {
	spec := conformanceSpec("gauss-markov")
	spec.Params = map[string]float64{"alpha": 1}
	terrain := geo.Terrain{Width: 1e6, Height: 1e6} // no bounces
	m, err := Build(terrain, rand.New(rand.NewSource(5)), spec)
	if err != nil {
		t.Fatal(err)
	}
	p0 := m.Position(0)
	p1 := m.Position(10 * time.Second)
	p2 := m.Position(20 * time.Second)
	d1, d2 := p0.Dist(p1), p1.Dist(p2)
	if diff := d1 - d2; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("alpha=1 step distances differ: %.6f vs %.6f", d1, d2)
	}
}

package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"slr/internal/geo"
	"slr/internal/sim"
)

// manhattanDirs are the four street headings: +x, +y, -x, -y.
var manhattanDirs = [4]geo.Point{{X: 1}, {Y: 1}, {X: -1}, {Y: -1}}

// Manhattan is the Manhattan-grid mobility model: nodes move along a
// rectangular grid of streets spaced "block_m" meters apart (default 100),
// as in an urban map. A node travels one block at a uniform random speed in
// [MinSpeed, MaxSpeed], then at the intersection continues straight with
// probability 1/2 or turns left/right with probability 1/4 each (invalid
// headings at the terrain boundary are re-drawn among the valid ones), and
// rests Spec.Pause before the next block.
//
// The street grid spans the largest whole number of blocks that fits the
// terrain, so every position is inside the terrain and speed never exceeds
// Spec.MaxSpeed — the two contracts the radio spatial index depends on.
type Manhattan struct {
	rng      *rand.Rand
	block    float64
	nx, ny   int // intersections run (0..nx, 0..ny)
	minSpeed float64
	maxSpeed float64
	pause    sim.Time

	// Current leg: moving from `from` (departing at depart) to `to`
	// (arriving at arrive), then pausing until resumeT.
	ix, iy  int // intersection the node is heading to, in grid units
	dir     int // index into manhattanDirs
	from    geo.Point
	to      geo.Point
	depart  sim.Time
	arrive  sim.Time
	resumeT sim.Time
}

var _ Model = (*Manhattan)(nil)

// NewManhattan returns a Manhattan model starting at a uniform random
// intersection with a uniform random valid heading.
func NewManhattan(t geo.Terrain, rng *rand.Rand, s Spec) (*Manhattan, error) {
	block := s.param("block_m", 100)
	if block <= 0 {
		return nil, fmt.Errorf("mobility: manhattan block_m %v must be positive", block)
	}
	nx, ny := int(t.Width/block), int(t.Height/block)
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("mobility: manhattan block_m %v does not fit terrain %vx%v",
			block, t.Width, t.Height)
	}
	m := &Manhattan{
		rng:   rng,
		block: block,
		nx:    nx,
		ny:    ny,
		// The speed floor clamps down to the hard MaxSpeed contract,
		// never the ceiling up.
		minSpeed: math.Min(s.MinSpeed, s.MaxSpeed),
		maxSpeed: s.MaxSpeed,
		pause:    s.Pause,
	}
	m.ix = rng.Intn(nx + 1)
	m.iy = rng.Intn(ny + 1)
	m.dir = m.drawDir(rng.Intn(4))
	// Start as if the node just arrived at its intersection, mirroring
	// Waypoint: different pause times differentiate immediately.
	m.from = geo.Point{X: float64(m.ix) * block, Y: float64(m.iy) * block}
	m.to = m.from
	m.resumeT = m.pause
	if s.MaxSpeed <= 0 {
		// A zero speed bound means the node never moves; parking it
		// outright keeps the MaxSpeed drift contract exact instead of
		// letting the anti-stall speed floor break it.
		m.resumeT = math.MaxInt64
	}
	return m, nil
}

// validDir reports whether heading d from the current intersection stays on
// the street grid.
func (m *Manhattan) validDir(d int) bool {
	nx := m.ix + int(manhattanDirs[d].X)
	ny := m.iy + int(manhattanDirs[d].Y)
	return nx >= 0 && nx <= m.nx && ny >= 0 && ny <= m.ny
}

// drawDir turns the preferred heading into a valid one, re-drawing
// uniformly among valid headings when the preference leads off the grid.
func (m *Manhattan) drawDir(pref int) int {
	if m.validDir(pref) {
		return pref
	}
	valid := make([]int, 0, 4)
	for d := 0; d < 4; d++ {
		if m.validDir(d) {
			valid = append(valid, d)
		}
	}
	return valid[m.rng.Intn(len(valid))]
}

// Position returns the node's position at time t, advancing legs as needed.
func (m *Manhattan) Position(t sim.Time) geo.Point {
	for t >= m.resumeT {
		m.nextLeg()
	}
	if t >= m.arrive {
		return m.to // pausing at the intersection
	}
	frac := float64(t-m.depart) / float64(m.arrive-m.depart)
	return geo.Lerp(m.from, m.to, frac)
}

// nextLeg picks the next heading at the intersection and starts a block.
func (m *Manhattan) nextLeg() {
	// Straight 1/2, left 1/4, right 1/4.
	turn := m.rng.Float64()
	pref := m.dir
	switch {
	case turn < 0.25:
		pref = (m.dir + 1) % 4
	case turn < 0.5:
		pref = (m.dir + 3) % 4
	}
	m.dir = m.drawDir(pref)
	m.ix += int(manhattanDirs[m.dir].X)
	m.iy += int(manhattanDirs[m.dir].Y)

	m.from = m.to
	m.to = geo.Point{X: float64(m.ix) * m.block, Y: float64(m.iy) * m.block}
	m.depart = m.resumeT
	// The anti-stall floor must never exceed the model's hard MaxSpeed
	// bound — the radio grid's drift math depends on it.
	speed := m.minSpeed + m.rng.Float64()*(m.maxSpeed-m.minSpeed)
	if floor := math.Min(0.1, m.maxSpeed); speed < floor {
		speed = floor
	}
	travel := sim.Time(float64(time.Second) * m.block / speed)
	if travel <= 0 {
		travel = 1
	}
	m.arrive = m.depart + travel
	m.resumeT = m.arrive + m.pause
	if m.resumeT <= m.depart {
		m.resumeT = m.depart + 1
	}
}

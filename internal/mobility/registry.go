package mobility

import (
	"fmt"
	"math/rand"

	"slr/internal/geo"
	"slr/internal/registry"
	"slr/internal/sim"
)

// Spec selects a registered mobility model by name and carries its
// configuration. It is the mobility section of a declarative scenario spec
// (internal/spec); the zero Model string is not valid here — callers that
// want "the paper's default" build a waypoint Spec explicitly.
type Spec struct {
	// Model names a registered factory: "static", "waypoint",
	// "gauss-markov", "manhattan".
	Model string
	// MinSpeed and MaxSpeed bound node speed in m/s. MaxSpeed is a hard
	// contract: a model built from this Spec never moves a node faster
	// than MaxSpeed, which the radio layer's spatial index relies on to
	// bound position drift between cache refreshes.
	MinSpeed float64
	MaxSpeed float64
	// Pause is how long a node rests between movement legs (waypoint
	// destinations, manhattan intersections); ignored by models without
	// a natural stopping point.
	Pause sim.Time
	// Params carries model-specific tuning knobs; missing keys take the
	// model's documented defaults.
	Params map[string]float64
}

// param returns the named model parameter or its default.
func (s Spec) param(name string, def float64) float64 {
	return registry.Param(s.Params, name, def)
}

// Factory builds a model for one node. Each node gets its own rng stream so
// a scenario seed fixes every node's trajectory independently of how other
// nodes (or the protocol stack) consume randomness.
type Factory func(t geo.Terrain, rng *rand.Rand, s Spec) (Model, error)

var factories = registry.New[Factory]("mobility model")

// Register adds a model factory under name. Registering a duplicate name
// panics: it is a wiring bug.
func Register(name string, f Factory) { factories.Register(name, f) }

// Models returns the registered model names, sorted.
func Models() []string { return factories.Names() }

// Build constructs the model selected by s for one node.
func Build(t geo.Terrain, rng *rand.Rand, s Spec) (Model, error) {
	f, ok := factories.Get(s.Model)
	if !ok {
		return nil, fmt.Errorf("mobility: unknown model %q (registered: %v)", s.Model, Models())
	}
	return f(t, rng, s)
}

func init() {
	Register("static", func(t geo.Terrain, rng *rand.Rand, s Spec) (Model, error) {
		return &Static{At: randPoint(t, rng)}, nil
	})
	Register("waypoint", func(t geo.Terrain, rng *rand.Rand, s Spec) (Model, error) {
		return NewWaypoint(t, rng, s.MinSpeed, s.MaxSpeed, s.Pause), nil
	})
	Register("gauss-markov", func(t geo.Terrain, rng *rand.Rand, s Spec) (Model, error) {
		return NewGaussMarkov(t, rng, s), nil
	})
	Register("manhattan", func(t geo.Terrain, rng *rand.Rand, s Spec) (Model, error) {
		return NewManhattan(t, rng, s)
	})
}

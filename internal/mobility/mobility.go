// Package mobility implements node mobility models for the wireless
// simulation. The paper's evaluation uses the random waypoint model: each
// node repeatedly picks a uniform random destination on the terrain, moves
// to it at a uniform random speed in [0, 20] m/s, then pauses for a fixed
// pause time. A pause time of 900 s (the full run) means no mobility; 0 s
// means constant motion.
package mobility

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"slr/internal/geo"
	"slr/internal/sim"
)

// Model yields a node's position over time. Position may be called with any
// non-decreasing sequence of times; implementations advance internal state
// lazily and are not safe for concurrent use (a simulation run is
// single-threaded).
type Model interface {
	Position(t sim.Time) geo.Point
}

// Static is a Model that never moves.
type Static struct {
	At geo.Point
}

var _ Model = (*Static)(nil)

// Position returns the fixed location.
func (s *Static) Position(sim.Time) geo.Point { return s.At }

// Waypoint is the random waypoint model.
type Waypoint struct {
	terrain  geo.Terrain
	rng      *rand.Rand
	minSpeed float64 // m/s
	maxSpeed float64 // m/s
	pause    sim.Time

	// Current leg: moving from `from` (departing at depart) to `to`
	// (arriving at arrive), then pausing until arrive+pause.
	from    geo.Point
	to      geo.Point
	depart  sim.Time
	arrive  sim.Time
	resumeT sim.Time
}

var _ Model = (*Waypoint)(nil)

// NewWaypoint returns a random waypoint model starting at a uniform random
// point. Speeds are drawn uniformly from [minSpeed, maxSpeed] m/s; a floor
// of 0.1 m/s prevents the well-known zero-speed stall of the model. The
// node pauses at start (as if it just arrived) so different pause times
// differentiate immediately.
func NewWaypoint(terrain geo.Terrain, rng *rand.Rand, minSpeed, maxSpeed float64, pause sim.Time) *Waypoint {
	// maxSpeed is the hard contract the radio grid trusts; an inverted
	// range clamps the floor down, never the ceiling up.
	minSpeed = math.Min(minSpeed, maxSpeed)
	start := randPoint(terrain, rng)
	w := &Waypoint{
		terrain:  terrain,
		rng:      rng,
		minSpeed: minSpeed,
		maxSpeed: maxSpeed,
		pause:    pause,
		from:     start,
		to:       start,
		depart:   0,
		arrive:   0,
		resumeT:  pause,
	}
	if maxSpeed <= 0 {
		// A zero speed bound means the node never moves; parking it
		// outright keeps the MaxSpeed drift contract exact instead of
		// letting the anti-stall speed floor break it.
		w.resumeT = math.MaxInt64
	}
	return w
}

func randPoint(t geo.Terrain, rng *rand.Rand) geo.Point {
	return geo.Point{X: rng.Float64() * t.Width, Y: rng.Float64() * t.Height}
}

// Position returns the node's position at time t, advancing legs as needed.
func (w *Waypoint) Position(t sim.Time) geo.Point {
	for t >= w.resumeT {
		w.nextLeg()
	}
	if t >= w.arrive {
		return w.to // pausing at the waypoint
	}
	frac := float64(t-w.depart) / float64(w.arrive-w.depart)
	return geo.Lerp(w.from, w.to, frac)
}

// nextLeg starts a new movement leg at the end of the current pause.
func (w *Waypoint) nextLeg() {
	w.from = w.to
	w.to = randPoint(w.terrain, w.rng)
	w.depart = w.resumeT
	// The anti-stall floor must never exceed the model's hard MaxSpeed
	// bound — the radio grid's drift math depends on it.
	speed := w.minSpeed + w.rng.Float64()*(w.maxSpeed-w.minSpeed)
	if floor := math.Min(0.1, w.maxSpeed); speed < floor {
		speed = floor
	}
	dist := w.from.Dist(w.to)
	travel := sim.Time(float64(time.Second) * dist / speed)
	if travel <= 0 {
		travel = 1 // degenerate zero-length leg: keep time advancing
	}
	w.arrive = w.depart + travel
	w.resumeT = w.arrive + w.pause
	if w.resumeT <= w.depart {
		// Guards against a zero pause and zero travel leaving the
		// model stuck at one instant.
		w.resumeT = w.depart + 1
	}
}

// TracePoint is a timestamped waypoint of a Trace model.
type TracePoint struct {
	At  sim.Time
	Pos geo.Point
}

// Trace replays piecewise-linear motion through fixed timestamped
// waypoints, the in-memory equivalent of the paper's offline-generated
// mobility scripts.
type Trace struct {
	points []TracePoint
}

var _ Model = (*Trace)(nil)

// NewTrace returns a Trace through the given waypoints, sorted by time.
// An empty trace pins the node at the origin.
func NewTrace(points []TracePoint) *Trace {
	ps := make([]TracePoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].At < ps[j].At })
	return &Trace{points: ps}
}

// Position interpolates the trace at time t, clamping beyond the ends.
func (tr *Trace) Position(t sim.Time) geo.Point {
	ps := tr.points
	if len(ps) == 0 {
		return geo.Point{}
	}
	if t <= ps[0].At {
		return ps[0].Pos
	}
	last := ps[len(ps)-1]
	if t >= last.At {
		return last.Pos
	}
	i := sort.Search(len(ps), func(i int) bool { return ps[i].At > t }) - 1
	a, b := ps[i], ps[i+1]
	if b.At == a.At {
		return b.Pos
	}
	f := float64(t-a.At) / float64(b.At-a.At)
	return geo.Lerp(a.Pos, b.Pos, f)
}

package mobility

import (
	"math"
	"math/rand"
	"time"

	"slr/internal/geo"
	"slr/internal/sim"
)

// GaussMarkov is the Gauss-Markov mobility model: speed and direction are
// first-order autoregressive processes, so trajectories have tunable
// temporal correlation instead of the random waypoint's sharp turns. At
// each fixed step the node draws
//
//	s' = a*s + (1-a)*meanSpeed + sqrt(1-a^2)*sigmaS*N(0,1)
//	d' = a*d + (1-a)*meanDir   + sqrt(1-a^2)*sigmaD*N(0,1)
//
// with a the memory parameter: a=1 is straight-line motion, a=0 is
// Brownian. Nodes reflect off terrain edges, which also re-aims the mean
// direction so they drift back inside.
//
// Spec.Params knobs: "alpha" (default 0.75), "step_seconds" (default 1),
// "speed_sigma" (default (max-min)/4), "dir_sigma" in radians (default
// 0.4). Speed is clamped to [MinSpeed, MaxSpeed], so the model honours the
// Spec.MaxSpeed drift contract.
type GaussMarkov struct {
	terrain geo.Terrain
	rng     *rand.Rand

	alpha      float64
	meanSpeed  float64
	minSpeed   float64
	maxSpeed   float64
	sigmaSpeed float64
	sigmaDir   float64
	step       sim.Time

	// Current step: moving from `from` (at stepStart) to `to`
	// (at stepStart+step) with the step's speed and direction.
	from      geo.Point
	to        geo.Point
	stepStart sim.Time
	speed     float64
	dir       float64
	meanDir   float64
}

var _ Model = (*GaussMarkov)(nil)

// NewGaussMarkov returns a Gauss-Markov model starting at a uniform random
// point with a uniform random heading.
func NewGaussMarkov(t geo.Terrain, rng *rand.Rand, s Spec) *GaussMarkov {
	// maxSpeed is the hard contract the radio grid trusts; an inverted
	// range clamps the floor down, never the ceiling up.
	minSpeed, maxSpeed := s.MinSpeed, s.MaxSpeed
	if minSpeed > maxSpeed {
		minSpeed = maxSpeed
	}
	step := sim.Time(s.param("step_seconds", 1) * float64(time.Second))
	if step <= 0 {
		step = time.Second
	}
	g := &GaussMarkov{
		terrain:    t,
		rng:        rng,
		alpha:      math.Min(math.Max(s.param("alpha", 0.75), 0), 1),
		meanSpeed:  (minSpeed + maxSpeed) / 2,
		minSpeed:   minSpeed,
		maxSpeed:   maxSpeed,
		sigmaSpeed: s.param("speed_sigma", (maxSpeed-minSpeed)/4),
		sigmaDir:   s.param("dir_sigma", 0.4),
		step:       step,
	}
	g.from = randPoint(t, rng)
	g.dir = rng.Float64() * 2 * math.Pi
	g.meanDir = g.dir
	g.speed = g.meanSpeed
	g.to = g.advanceFrom(g.from)
	return g
}

// Position returns the node's position at time t, advancing steps as needed.
func (g *GaussMarkov) Position(t sim.Time) geo.Point {
	for t >= g.stepStart+g.step {
		g.nextStep()
	}
	frac := float64(t-g.stepStart) / float64(g.step)
	return geo.Lerp(g.from, g.to, frac)
}

// nextStep commits the current step and draws the next speed/direction.
func (g *GaussMarkov) nextStep() {
	g.from = g.to
	g.stepStart += g.step

	decay := math.Sqrt(1 - g.alpha*g.alpha)
	g.speed = g.alpha*g.speed + (1-g.alpha)*g.meanSpeed + decay*g.sigmaSpeed*g.rng.NormFloat64()
	if g.speed < g.minSpeed {
		g.speed = g.minSpeed
	}
	if g.speed > g.maxSpeed {
		g.speed = g.maxSpeed
	}
	// Pull the heading toward meanDir via the nearest angular branch so
	// the mix has no 2-pi discontinuity.
	for g.dir-g.meanDir > math.Pi {
		g.dir -= 2 * math.Pi
	}
	for g.meanDir-g.dir > math.Pi {
		g.dir += 2 * math.Pi
	}
	g.dir = g.alpha*g.dir + (1-g.alpha)*g.meanDir + decay*g.sigmaDir*g.rng.NormFloat64()
	g.to = g.advanceFrom(g.from)
}

// advanceFrom integrates one step from p, reflecting off terrain edges.
// Reflection folds the path, so the end point is never farther from p than
// speed*step: the MaxSpeed drift bound survives bounces.
func (g *GaussMarkov) advanceFrom(p geo.Point) geo.Point {
	dist := g.speed * g.step.Seconds()
	q := geo.Point{X: p.X + dist*math.Cos(g.dir), Y: p.Y + dist*math.Sin(g.dir)}
	if q.X < 0 {
		q.X = -q.X
		g.dir = math.Pi - g.dir
		g.meanDir = math.Pi - g.meanDir
	} else if q.X > g.terrain.Width {
		q.X = 2*g.terrain.Width - q.X
		g.dir = math.Pi - g.dir
		g.meanDir = math.Pi - g.meanDir
	}
	if q.Y < 0 {
		q.Y = -q.Y
		g.dir = -g.dir
		g.meanDir = -g.meanDir
	} else if q.Y > g.terrain.Height {
		q.Y = 2*g.terrain.Height - q.Y
		g.dir = -g.dir
		g.meanDir = -g.meanDir
	}
	// A step longer than the terrain could still land outside after one
	// reflection; clamping keeps the containment contract absolute.
	return g.terrain.Clamp(q)
}

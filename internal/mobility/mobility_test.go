package mobility

import (
	"math/rand"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/sim"
)

var testTerrain = geo.Terrain{Width: 1000, Height: 500}

func TestStatic(t *testing.T) {
	m := &Static{At: geo.Point{X: 3, Y: 4}}
	for _, tt := range []sim.Time{0, time.Second, time.Hour} {
		if got := m.Position(tt); got != (geo.Point{X: 3, Y: 4}) {
			t.Fatalf("Position(%v) = %v", tt, got)
		}
	}
}

func TestWaypointStaysInTerrain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWaypoint(testTerrain, rng, 0, 20, 0)
	for i := 0; i < 10000; i++ {
		p := w.Position(sim.Time(i) * 100 * time.Millisecond)
		if !testTerrain.Contains(p) {
			t.Fatalf("step %d: %v left terrain", i, p)
		}
	}
}

func TestWaypointPausesAtStart(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pause := 10 * time.Second
	w := NewWaypoint(testTerrain, rng, 5, 5, pause)
	p0 := w.Position(0)
	p1 := w.Position(pause - time.Millisecond)
	if p0 != p1 {
		t.Fatalf("node moved during initial pause: %v -> %v", p0, p1)
	}
	// After the pause it must eventually move.
	moved := false
	for i := 1; i <= 100; i++ {
		if w.Position(pause+sim.Time(i)*time.Second) != p0 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("node never moved after pause")
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const maxSpeed = 20.0
	w := NewWaypoint(testTerrain, rng, 0, maxSpeed, 0)
	prev := w.Position(0)
	step := 100 * time.Millisecond
	for i := 1; i < 20000; i++ {
		cur := w.Position(sim.Time(i) * step)
		d := prev.Dist(cur)
		limit := maxSpeed * step.Seconds() * 1.001
		if d > limit {
			t.Fatalf("step %d: moved %.2f m in %v (limit %.2f)", i, d, step, limit)
		}
		prev = cur
	}
}

func TestWaypointNoMobilityEqualsStatic(t *testing.T) {
	// A pause time longer than the observation window means no movement,
	// the paper's 900 s "no mobility" point.
	rng := rand.New(rand.NewSource(5))
	w := NewWaypoint(testTerrain, rng, 0, 20, 900*time.Second)
	p0 := w.Position(0)
	if got := w.Position(899 * time.Second); got != p0 {
		t.Fatalf("node moved before first pause elapsed: %v -> %v", p0, got)
	}
}

func TestWaypointDeterminism(t *testing.T) {
	run := func(seed int64) []geo.Point {
		rng := rand.New(rand.NewSource(seed))
		w := NewWaypoint(testTerrain, rng, 0, 20, time.Second)
		var pts []geo.Point
		for i := 0; i < 500; i++ {
			pts = append(pts, w.Position(sim.Time(i)*time.Second))
		}
		return pts
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestTraceInterpolation(t *testing.T) {
	tr := NewTrace([]TracePoint{
		{At: 10 * time.Second, Pos: geo.Point{X: 0, Y: 0}},
		{At: 20 * time.Second, Pos: geo.Point{X: 100, Y: 0}},
		{At: 0, Pos: geo.Point{X: 0, Y: 0}}, // out of order on purpose
	})
	if got := tr.Position(0); got != (geo.Point{}) {
		t.Errorf("Position(0) = %v", got)
	}
	if got := tr.Position(15 * time.Second); got != (geo.Point{X: 50, Y: 0}) {
		t.Errorf("Position(15s) = %v, want (50,0)", got)
	}
	if got := tr.Position(time.Hour); got != (geo.Point{X: 100, Y: 0}) {
		t.Errorf("Position(1h) = %v, want clamp to last", got)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := NewTrace(nil)
	if got := tr.Position(time.Second); got != (geo.Point{}) {
		t.Errorf("empty trace Position = %v", got)
	}
}

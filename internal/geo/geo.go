// Package geo provides the terrain geometry used by the wireless
// simulation: points in meters on a rectangular field and distance math.
package geo

import (
	"fmt"
	"math"
)

// Point is a position on the terrain, in meters.
type Point struct {
	X float64
	Y float64
}

// String renders the point as "(x, y)".
func (p Point) String() string { return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y) }

// Dist returns the Euclidean distance from p to q in meters.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared distance, avoiding the sqrt for range tests.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Terrain is a rectangular field with the origin at a corner. The paper's
// evaluation uses 2200 m x 600 m.
type Terrain struct {
	Width  float64
	Height float64
}

// Contains reports whether p lies inside the terrain (inclusive edges).
func (t Terrain) Contains(p Point) bool {
	return p.X >= 0 && p.X <= t.Width && p.Y >= 0 && p.Y <= t.Height
}

// Clamp returns p moved to the nearest point inside the terrain.
func (t Terrain) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), t.Width),
		Y: math.Min(math.Max(p.Y, 0), t.Height),
	}
}

// Lerp returns the point a fraction f of the way from p to q; f outside
// [0, 1] extrapolates.
func Lerp(p, q Point, f float64) Point {
	return Point{X: p.X + (q.X-p.X)*f, Y: p.Y + (q.Y-p.Y)*f}
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
	}
}

func TestDist2MatchesDist(t *testing.T) {
	prop := func(a, b, c, d int16) bool {
		p := Point{float64(a), float64(b)}
		q := Point{float64(c), float64(d)}
		d1 := p.Dist(q)
		diff := math.Abs(p.Dist2(q) - d1*d1)
		return diff <= 1e-9*(1+d1*d1) // relative tolerance
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTerrainContainsAndClamp(t *testing.T) {
	terrain := Terrain{Width: 2200, Height: 600}
	if !terrain.Contains(Point{0, 0}) || !terrain.Contains(Point{2200, 600}) {
		t.Error("corners must be contained")
	}
	if terrain.Contains(Point{-1, 0}) || terrain.Contains(Point{0, 601}) {
		t.Error("outside points must not be contained")
	}
	got := terrain.Clamp(Point{-5, 700})
	if got != (Point{0, 600}) {
		t.Errorf("Clamp = %v, want (0,600)", got)
	}
	inside := Point{100, 100}
	if terrain.Clamp(inside) != inside {
		t.Error("Clamp must not move inside points")
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := Lerp(p, q, 0); got != p {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := Lerp(p, q, 1); got != q {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := Lerp(p, q, 0.5); got != (Point{5, 10}) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestString(t *testing.T) {
	if s := (Point{1.25, 3}).String(); s != "(1.2, 3.0)" {
		t.Errorf("String = %q", s)
	}
}

package traffic

import (
	"math/rand"
	"testing"
	"time"

	"slr/internal/netstack"
	"slr/internal/sim"
)

// fakeSender records originated packets.
type fakeSender struct {
	id   netstack.NodeID
	pkts []*netstack.DataPacket
}

func (f *fakeSender) ID() netstack.NodeID               { return f.id }
func (f *fakeSender) SendData(pkt *netstack.DataPacket) { f.pkts = append(f.pkts, pkt) }
func totalPackets(ss []*fakeSender) (n int) {
	for _, s := range ss {
		n += len(s.pkts)
	}
	return n
}

func build(n int) (*sim.Simulator, []*fakeSender, []Sender) {
	s := sim.New(5)
	senders := make([]*fakeSender, n)
	ifaces := make([]Sender, n)
	for i := range senders {
		senders[i] = &fakeSender{id: netstack.NodeID(i)}
		ifaces[i] = senders[i]
	}
	return s, senders, ifaces
}

func TestRateApproximatesWorkload(t *testing.T) {
	s, senders, ifaces := build(50)
	p := DefaultParams()
	end := sim.Time(100 * time.Second)
	g := NewGenerator(s, rand.New(rand.NewSource(1)), ifaces, p, end)
	g.Start()
	s.RunUntil(end + time.Minute)
	got := totalPackets(senders)
	// 30 flows x 4 pps x 100 s = 12000 expected; allow 15% slack for
	// flow-restart gaps and the initial stagger.
	want := 12000
	if got < want*85/100 || got > want*105/100 {
		t.Fatalf("packets = %d, want about %d", got, want)
	}
}

func TestEndpointsDistinct(t *testing.T) {
	s, senders, ifaces := build(10)
	g := NewGenerator(s, rand.New(rand.NewSource(2)), ifaces, DefaultParams(), 50*time.Second)
	g.Start()
	s.RunUntil(time.Minute)
	for _, snd := range senders {
		for _, pkt := range snd.pkts {
			if pkt.Src == pkt.Dst {
				t.Fatalf("self flow: %+v", pkt)
			}
			if pkt.Src != snd.id {
				t.Fatalf("packet src %d originated at %d", pkt.Src, snd.id)
			}
		}
	}
}

func TestUIDsUnique(t *testing.T) {
	s, senders, ifaces := build(10)
	g := NewGenerator(s, rand.New(rand.NewSource(3)), ifaces, DefaultParams(), 30*time.Second)
	g.Start()
	s.RunUntil(time.Minute)
	seen := make(map[uint64]bool)
	for _, snd := range senders {
		for _, pkt := range snd.pkts {
			if seen[pkt.UID] {
				t.Fatalf("duplicate UID %d", pkt.UID)
			}
			seen[pkt.UID] = true
		}
	}
	if len(seen) == 0 {
		t.Fatal("no packets generated")
	}
}

func TestFlowPopulationConstant(t *testing.T) {
	s, _, ifaces := build(20)
	p := DefaultParams()
	p.Flows = 7
	g := NewGenerator(s, rand.New(rand.NewSource(4)), ifaces, p, 5*time.Minute)
	g.Start()
	// Sample the live-flow count during steady state.
	for i := 10; i < 290; i += 10 {
		s.At(sim.Time(i)*time.Second, func() {
			if g.Live() != 7 {
				t.Errorf("live flows = %d at %v, want 7", g.Live(), s.Now())
			}
		})
	}
	s.RunUntil(6 * time.Minute)
}

func TestStopsAtEnd(t *testing.T) {
	s, senders, ifaces := build(5)
	end := sim.Time(10 * time.Second)
	g := NewGenerator(s, rand.New(rand.NewSource(6)), ifaces, DefaultParams(), end)
	g.Start()
	s.RunUntil(time.Hour)
	for _, snd := range senders {
		for _, pkt := range snd.pkts {
			if pkt.Created > end {
				t.Fatalf("packet created at %v after end %v", pkt.Created, end)
			}
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("generator left %d events pending", s.Pending())
	}
}

func TestTooFewNodes(t *testing.T) {
	s, senders, ifaces := build(1)
	g := NewGenerator(s, rand.New(rand.NewSource(7)), ifaces, DefaultParams(), 10*time.Second)
	g.Start()
	s.RunUntil(time.Minute)
	if totalPackets(senders) != 0 {
		t.Fatal("generated traffic with a single node")
	}
}

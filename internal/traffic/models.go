package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"slr/internal/registry"
	"slr/internal/sim"
)

// Pacer yields successive inter-packet gaps for one flow. A fresh Pacer is
// built per flow, so stateful models (on/off bursts) carry per-flow state.
// All randomness must come from the rng passed to Next so a scenario seed
// fully determines the packet schedule.
type Pacer interface {
	Next(rng *rand.Rand) sim.Time
}

// PacerFactory builds a Pacer for one flow from the workload parameters.
type PacerFactory func(p Params) (Pacer, error)

var pacerFactories = registry.New[PacerFactory]("traffic model")

// RegisterModel adds a traffic model under name. Registering a duplicate
// name panics: it is a wiring bug.
func RegisterModel(name string, f PacerFactory) { pacerFactories.Register(name, f) }

// Models returns the registered traffic model names, sorted.
func Models() []string { return pacerFactories.Names() }

// NewPacer builds a pacer for one flow of p. An empty model name selects
// "cbr", the paper's workload.
func NewPacer(p Params) (Pacer, error) {
	name := p.Model
	if name == "" {
		name = "cbr"
	}
	f, ok := pacerFactories.Get(name)
	if !ok {
		return nil, fmt.Errorf("traffic: unknown model %q (registered: %v)", name, Models())
	}
	return f(p)
}

// param returns the named model parameter or its default.
func (p Params) param(name string, def float64) float64 {
	return registry.Param(p.ModelParams, name, def)
}

// cbrPacer emits packets at a constant interval: the paper's CBR flows.
// It draws nothing from the rng, so runs that predate the model registry
// replay byte-identically.
type cbrPacer struct {
	interval sim.Time
}

func (c cbrPacer) Next(*rand.Rand) sim.Time { return c.interval }

// poissonPacer emits packets as a Poisson process with the configured mean
// rate: exponential inter-arrival gaps, the classic open-loop telephony
// workload.
type poissonPacer struct {
	mean float64 // mean gap in seconds
}

func (p poissonPacer) Next(rng *rand.Rand) sim.Time {
	return sim.Time(rng.ExpFloat64() * p.mean * float64(time.Second))
}

// onoffPacer is a bursty on/off source: CBR at the configured rate during
// exponentially distributed ON periods (mean "on_mean_seconds", default 1),
// silent during exponentially distributed OFF periods (mean
// "off_mean_seconds", default 1). The long-run average rate is therefore
// Rate * on/(on+off), with packets arriving in bursts that stress MAC
// queues far harder than CBR at the same average.
type onoffPacer struct {
	interval sim.Time
	onMean   float64 // seconds
	offMean  float64 // seconds
	onLeft   sim.Time
}

func (o *onoffPacer) Next(rng *rand.Rand) sim.Time {
	if o.onLeft <= 0 {
		o.onLeft = sim.Time(rng.ExpFloat64() * o.onMean * float64(time.Second))
	}
	gap := o.interval
	o.onLeft -= o.interval
	if o.onLeft <= 0 {
		gap += sim.Time(rng.ExpFloat64() * o.offMean * float64(time.Second))
	}
	return gap
}

func init() {
	RegisterModel("cbr", func(p Params) (Pacer, error) {
		if p.Rate <= 0 {
			return nil, fmt.Errorf("traffic: cbr rate %v must be positive", p.Rate)
		}
		return cbrPacer{interval: sim.Time(float64(time.Second) / p.Rate)}, nil
	})
	RegisterModel("poisson", func(p Params) (Pacer, error) {
		if p.Rate <= 0 {
			return nil, fmt.Errorf("traffic: poisson rate %v must be positive", p.Rate)
		}
		return poissonPacer{mean: 1 / p.Rate}, nil
	})
	RegisterModel("onoff", func(p Params) (Pacer, error) {
		if p.Rate <= 0 {
			return nil, fmt.Errorf("traffic: onoff rate %v must be positive", p.Rate)
		}
		on := p.param("on_mean_seconds", 1)
		off := p.param("off_mean_seconds", 1)
		if on <= 0 || off <= 0 {
			return nil, fmt.Errorf("traffic: onoff periods on=%v off=%v must be positive", on, off)
		}
		return &onoffPacer{
			interval: sim.Time(float64(time.Second) / p.Rate),
			onMean:   on,
			offMean:  off,
		}, nil
	})
}

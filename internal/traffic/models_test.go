package traffic

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"slr/internal/netstack"
	"slr/internal/sim"
)

// sink collects generated packets; it satisfies Sender.
type sink struct {
	id  netstack.NodeID
	got []sim.Time
	s   *sim.Simulator
}

func (k *sink) ID() netstack.NodeID { return k.id }
func (k *sink) SendData(*netstack.DataPacket) {
	k.got = append(k.got, k.s.Now())
}

// runModel drives one generator of the named model for dur and returns
// every packet send time across all nodes.
func runModel(t *testing.T, model string, params map[string]float64, seed int64, dur sim.Time) []sim.Time {
	t.Helper()
	s := sim.New(seed)
	nodes := make([]Sender, 4)
	sinks := make([]*sink, 4)
	for i := range nodes {
		sinks[i] = &sink{id: netstack.NodeID(i), s: s}
		nodes[i] = sinks[i]
	}
	p := DefaultParams()
	p.Flows = 5
	p.Model = model
	p.ModelParams = params
	g := NewGenerator(s, rand.New(rand.NewSource(seed)), nodes, p, dur)
	g.Start()
	s.RunUntil(dur)
	var all []sim.Time
	for _, k := range sinks {
		all = append(all, k.got...)
	}
	return all
}

// TestModelsRegistered verifies the three built-in pacing models resolve.
func TestModelsRegistered(t *testing.T) {
	want := []string{"cbr", "onoff", "poisson"}
	if got := Models(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Models() = %v, want %v", got, want)
	}
}

// TestEmptyModelIsCBR verifies the zero Params.Model selects the paper's
// constant-bit-rate pacer.
func TestEmptyModelIsCBR(t *testing.T) {
	p := DefaultParams()
	pacer, err := NewPacer(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := sim.Time(float64(time.Second) / p.Rate)
	for i := 0; i < 5; i++ {
		if got := pacer.Next(rng); got != want {
			t.Fatalf("cbr gap %v, want constant %v", got, want)
		}
	}
}

// TestUnknownModelErrors verifies NewPacer rejects unregistered names.
func TestUnknownModelErrors(t *testing.T) {
	p := DefaultParams()
	p.Model = "torrent"
	if _, err := NewPacer(p); err == nil {
		t.Fatal("NewPacer accepted unknown model")
	}
}

// TestModelsGenerateAndReplay verifies every registered model produces
// packets at roughly the configured order of magnitude and replays the
// exact same schedule for the same seed.
func TestModelsGenerateAndReplay(t *testing.T) {
	const dur = 60 * time.Second
	for _, model := range Models() {
		t.Run(model, func(t *testing.T) {
			a := runModel(t, model, nil, 3, dur)
			b := runModel(t, model, nil, 3, dur)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("same seed produced different schedules (%d vs %d packets)", len(a), len(b))
			}
			// 5 flows x 4 pps x 60 s = 1200 packet opportunities; every
			// model should land within a broad factor of that (onoff
			// halves it with the default 1 s / 1 s duty cycle).
			if len(a) < 200 || len(a) > 2400 {
				t.Fatalf("model generated %d packets in %v, outside sane range", len(a), dur)
			}
		})
	}
}

// TestPoissonGapsVary verifies poisson is not constant-rate.
func TestPoissonGapsVary(t *testing.T) {
	p := DefaultParams()
	p.Model = "poisson"
	pacer, err := NewPacer(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	first := pacer.Next(rng)
	for i := 0; i < 16; i++ {
		if pacer.Next(rng) != first {
			return
		}
	}
	t.Fatal("16 identical poisson gaps")
}

// TestOnOffBursts verifies the on/off pacer emits CBR-spaced packets
// inside bursts and longer silences between them.
func TestOnOffBursts(t *testing.T) {
	p := DefaultParams()
	p.Model = "onoff"
	p.ModelParams = map[string]float64{"on_mean_seconds": 2, "off_mean_seconds": 5}
	pacer, err := NewPacer(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	interval := sim.Time(float64(time.Second) / p.Rate)
	inBurst, silences := 0, 0
	for i := 0; i < 200; i++ {
		gap := pacer.Next(rng)
		if gap == interval {
			inBurst++
		} else if gap > interval {
			silences++
		} else {
			t.Fatalf("gap %v shorter than the CBR interval %v", gap, interval)
		}
	}
	if inBurst == 0 || silences == 0 {
		t.Fatalf("want both burst gaps and silences, got %d/%d", inBurst, silences)
	}
}

// TestGeneratorPanicsOnBadModel verifies wiring bugs surface at
// construction time.
func TestGeneratorPanicsOnBadModel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGenerator accepted unknown model")
		}
	}()
	p := DefaultParams()
	p.Model = "torrent"
	NewGenerator(sim.New(1), rand.New(rand.NewSource(1)), nil, p, time.Second)
}

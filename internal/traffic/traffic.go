// Package traffic generates the paper's CBR workload: a fixed number of
// simultaneous constant-bit-rate flows between random endpoint pairs, each
// flow lasting an exponentially distributed time (mean 60 s), replaced by a
// fresh random flow when it ends. The evaluation uses 30 flows of 512-byte
// packets at 4 packets/s (120 pps network-wide).
package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"slr/internal/netstack"
	"slr/internal/sim"
)

// Params configures the generator.
type Params struct {
	Flows      int      // concurrent flows (30 in the paper)
	PacketSize int      // bytes (512)
	Rate       float64  // packets per second per flow (4)
	MeanLife   sim.Time // mean exponential flow lifetime (60 s)
	// Model selects a registered packet-pacing model: "cbr" (the default
	// when empty), "poisson", or "onoff". See RegisterModel.
	Model string
	// ModelParams carries model-specific knobs (e.g. onoff's
	// "on_mean_seconds"); missing keys take documented defaults.
	ModelParams map[string]float64
}

// DefaultParams returns the paper's workload parameters.
func DefaultParams() Params {
	return Params{Flows: 30, PacketSize: 512, Rate: 4, MeanLife: 60 * time.Second}
}

// Sender originates one application packet toward dst; implemented by
// netstack.Node.
type Sender interface {
	ID() netstack.NodeID
	SendData(pkt *netstack.DataPacket)
}

// Generator drives the CBR workload over a set of nodes.
type Generator struct {
	sim   *sim.Simulator
	rng   *rand.Rand
	nodes []Sender
	p     Params
	uid   uint64
	// flowSeq numbers flows from 1 across the whole run; every packet
	// carries its flow's id so the metrics collector can keep a per-flow
	// ledger (flow 0 is reserved for packets injected outside the
	// workload).
	flowSeq uint32
	end     sim.Time
	flows   int // live flows, for introspection
}

// NewGenerator returns a generator over nodes; traffic stops at end.
// An unregistered Params.Model panics: spec loading validates model names,
// so reaching here with one is a wiring bug.
func NewGenerator(s *sim.Simulator, rng *rand.Rand, nodes []Sender, p Params, end sim.Time) *Generator {
	// Surface a bad model or rate at construction, not first packet.
	if _, err := NewPacer(p); err != nil {
		panic(err)
	}
	// A non-positive lifetime would make every flow end the instant it
	// starts and startFlow recurse without bound.
	if p.MeanLife <= 0 {
		panic(fmt.Sprintf("traffic: mean flow lifetime %v must be positive", p.MeanLife))
	}
	return &Generator{sim: s, rng: rng, nodes: nodes, p: p, end: end}
}

// Live returns the number of currently active flows.
func (g *Generator) Live() int { return g.flows }

// Start launches the initial flows with a small random stagger so their
// packets do not synchronize.
func (g *Generator) Start() {
	for i := 0; i < g.p.Flows; i++ {
		delay := sim.Time(g.rng.Int63n(int64(time.Second)))
		g.sim.After(delay, g.startFlow)
	}
}

// startFlow picks random distinct endpoints and schedules its packet train.
func (g *Generator) startFlow() {
	if g.sim.Now() >= g.end || len(g.nodes) < 2 {
		return
	}
	src := g.nodes[g.rng.Intn(len(g.nodes))]
	dst := g.nodes[g.rng.Intn(len(g.nodes))]
	for dst.ID() == src.ID() {
		dst = g.nodes[g.rng.Intn(len(g.nodes))]
	}
	life := sim.Time(g.rng.ExpFloat64() * float64(g.p.MeanLife))
	stop := g.sim.Now() + life
	if stop > g.end {
		stop = g.end
	}
	g.flows++
	g.flowSeq++
	flow := g.flowSeq
	pacer, err := NewPacer(g.p)
	if err != nil {
		panic(err) // NewGenerator validated the model; unreachable
	}
	var tick func()
	tick = func() {
		if g.sim.Now() >= stop {
			// Flow over: keep the population constant.
			g.flows--
			g.startFlow()
			return
		}
		g.uid++
		src.SendData(&netstack.DataPacket{
			UID:     g.uid,
			Flow:    flow,
			Src:     src.ID(),
			Dst:     dst.ID(),
			Size:    g.p.PacketSize,
			TTL:     netstack.DefaultTTL,
			Created: g.sim.Now(),
		})
		g.sim.After(pacer.Next(g.rng), tick)
	}
	tick()
}

package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"slr/internal/geo"
	"slr/internal/runner"
	"slr/internal/scenario"
	"slr/internal/traffic"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// tinyParams is the runner tests' fast full-stack scenario.
func tinyParams(proto scenario.ProtocolName, seed int64) scenario.Params {
	p := scenario.DefaultParams(proto, 0, seed)
	p.Nodes = 12
	p.Terrain = geo.Terrain{Width: 700, Height: 300}
	p.Duration = 15 * time.Second
	p.Traffic = traffic.Params{Flows: 3, PacketSize: 512, Rate: 4, MeanLife: 10 * time.Second}
	return p
}

// fakeRecord derives the deterministic record a trial of j would produce,
// without simulating — state-machine tests only care about identity keys
// and byte equality, and determinism is exactly the property that lets
// them.
func fakeRecord(j runner.Job) runner.Record {
	return runner.Record{
		Protocol:      string(j.Params.Protocol),
		PauseSeconds:  j.Params.Pause.Seconds(),
		Trial:         j.Trial,
		Seed:          j.Params.Seed,
		DeliveryRatio: float64(j.Params.Seed%7) / 7,
		Schema:        runner.RecordSchema,
	}
}

func testJobs(t *testing.T, trials int) []runner.Job {
	t.Helper()
	return runner.TrialJobs(tinyParams(scenario.SRP, 1), trials)
}

func keyStrings(recs []runner.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key().String()
	}
	sort.Strings(out)
	return out
}

// recordSet renders records as sorted canonical JSON lines, for set
// equality up to order.
func recordSet(t *testing.T, recs []runner.Record) []string {
	t.Helper()
	out := make([]string, len(recs))
	for i, r := range recs {
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(blob)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestLeaseExpiryRelease: a leased job is invisible to other workers
// until its deadline passes, then returns to the pool and re-leases.
func TestLeaseExpiryRelease(t *testing.T) {
	clock := newFakeClock()
	c, err := New(testJobs(t, 1), Options{LeaseTimeout: time.Minute, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	batch, done := c.Lease("w1", 4)
	if len(batch) != 1 || done {
		t.Fatalf("w1 lease: %d jobs, done=%v", len(batch), done)
	}
	if b2, _ := c.Lease("w2", 4); len(b2) != 0 {
		t.Fatalf("w2 got %d jobs while w1 holds the lease", len(b2))
	}
	clock.Advance(59 * time.Second)
	if b2, _ := c.Lease("w2", 4); len(b2) != 0 {
		t.Fatalf("w2 got %d jobs before expiry", len(b2))
	}
	clock.Advance(2 * time.Second)
	b2, done := c.Lease("w2", 4)
	if len(b2) != 1 || done {
		t.Fatalf("w2 after expiry: %d jobs, done=%v", len(b2), done)
	}
	if b2[0].Key() != batch[0].Key() {
		t.Fatalf("re-leased job key %v != original %v", b2[0].Key(), batch[0].Key())
	}
	st := c.Status()
	if st.Leased != 1 || st.Pending != 0 || st.Done != 0 || st.Workers != 2 {
		t.Fatalf("status after re-lease: %+v", st)
	}
}

// TestDoubleAckSameKey: acknowledging the same key twice accepts once,
// counts a duplicate, and checkpoints one line.
func TestDoubleAckSameKey(t *testing.T) {
	jobs := testJobs(t, 2)
	var checkpoint bytes.Buffer
	c, err := New(jobs, Options{Checkpoint: &checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	c.Lease("w1", 2)
	rec := fakeRecord(jobs[0])
	sum, err := c.Ingest([]runner.Record{rec})
	if err != nil || sum != (IngestSummary{Accepted: 1}) {
		t.Fatalf("first ack: %+v, %v", sum, err)
	}
	sum, err = c.Ingest([]runner.Record{rec})
	if err != nil || sum != (IngestSummary{Duplicate: 1}) {
		t.Fatalf("second ack: %+v, %v", sum, err)
	}
	recs, rerr := runner.ReadRecords(bytes.NewReader(checkpoint.Bytes()))
	if rerr != nil || len(recs) != 1 {
		t.Fatalf("checkpoint holds %d records (%v), want 1", len(recs), rerr)
	}
	if st := c.Status(); st.Done != 1 {
		t.Fatalf("done=%d after double ack, want 1", st.Done)
	}
}

// TestLateRecordsFromExpiredLease: the original holder's records arrive
// after its lease expired and the job was re-leased — accepted once, and
// the re-leaseholder's copy is the duplicate.
func TestLateRecordsFromExpiredLease(t *testing.T) {
	clock := newFakeClock()
	jobs := testJobs(t, 1)
	var checkpoint bytes.Buffer
	c, err := New(jobs, Options{LeaseTimeout: time.Minute, Now: clock.Now, Checkpoint: &checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := c.Lease("w1", 1)
	clock.Advance(2 * time.Minute)
	b2, _ := c.Lease("w2", 1)
	if len(b1) != 1 || len(b2) != 1 {
		t.Fatalf("leases: w1=%d w2=%d", len(b1), len(b2))
	}
	// w1 is not dead after all — its records land first.
	sum, err := c.Ingest([]runner.Record{fakeRecord(b1[0])})
	if err != nil || sum != (IngestSummary{Accepted: 1}) {
		t.Fatalf("late ack from expired lease: %+v, %v", sum, err)
	}
	// w2 finishes the re-leased copy: identical bytes, deduped.
	sum, err = c.Ingest([]runner.Record{fakeRecord(b2[0])})
	if err != nil || sum != (IngestSummary{Duplicate: 1}) {
		t.Fatalf("re-leaseholder ack: %+v, %v", sum, err)
	}
	st := c.Status()
	if !st.SweepDone || st.Done != 1 {
		t.Fatalf("status: %+v", st)
	}
	if recs, _ := runner.ReadRecords(bytes.NewReader(checkpoint.Bytes())); len(recs) != 1 {
		t.Fatalf("checkpoint holds %d records, want 1", len(recs))
	}
}

// TestIngestUnknownKey: records matching no job are rejected and never
// checkpointed.
func TestIngestUnknownKey(t *testing.T) {
	jobs := testJobs(t, 1)
	var checkpoint bytes.Buffer
	c, err := New(jobs, Options{Checkpoint: &checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	foreign := fakeRecord(jobs[0])
	foreign.Seed += 100 // a differently seeded sweep's record
	sum, err := c.Ingest([]runner.Record{foreign})
	if err != nil || sum != (IngestSummary{Unknown: 1}) {
		t.Fatalf("foreign ingest: %+v, %v", sum, err)
	}
	if checkpoint.Len() != 0 {
		t.Fatalf("foreign record reached the checkpoint: %q", checkpoint.String())
	}
}

// TestSalvagedResume: salvaged checkpoint records mark their jobs done
// before any lease, and foreign salvaged records are counted, not lost.
func TestSalvagedResume(t *testing.T) {
	jobs := testJobs(t, 3)
	foreign := fakeRecord(jobs[0])
	foreign.Seed += 100
	c, err := New(jobs, Options{
		Salvaged: []runner.Record{fakeRecord(jobs[1]), foreign},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Done != 1 || st.Foreign != 1 || st.Total != 3 {
		t.Fatalf("status after salvage: %+v", st)
	}
	batch, _ := c.Lease("w1", 10)
	if len(batch) != 2 {
		t.Fatalf("leased %d jobs after salvage, want 2", len(batch))
	}
	for _, j := range batch {
		if j.Key() == jobs[1].Key() {
			t.Fatal("salvaged job re-leased")
		}
	}
}

// TestDuplicateJobKeysRejected: a job list with two jobs behind one
// identity key cannot be coordinated.
func TestDuplicateJobKeysRejected(t *testing.T) {
	jobs := testJobs(t, 1)
	if _, err := New(append(jobs, jobs[0]), Options{}); err == nil {
		t.Fatal("duplicate job keys accepted")
	}
}

// TestRandomizedWorkersKillOne simulates a 3-worker sweep where one
// worker is killed mid-sweep (leases a batch, never acknowledges), driven
// by a seeded rng over many interleavings: the final record set must
// equal the serial run's, byte for byte.
func TestRandomizedWorkersKillOne(t *testing.T) {
	jobs := runner.GridJobs(
		[]scenario.ProtocolName{scenario.SRP, scenario.AODV},
		[]float64{0, 0.5}, 3, 1,
		func(proto scenario.ProtocolName, pf float64, seed int64) scenario.Params {
			p := tinyParams(proto, seed)
			p.Pause = time.Duration(pf * float64(p.Duration))
			return p
		})
	// Serial reference: every job's record, in job order.
	var serial []runner.Record
	for _, j := range jobs {
		serial = append(serial, fakeRecord(j))
	}

	for round := 0; round < 50; round++ {
		rng := rand.New(rand.NewSource(int64(round)))
		clock := newFakeClock()
		var checkpoint bytes.Buffer
		c, err := New(jobs, Options{LeaseTimeout: time.Minute, Now: clock.Now, Checkpoint: &checkpoint})
		if err != nil {
			t.Fatal(err)
		}
		victim := fmt.Sprintf("w%d", rng.Intn(3))
		killAfter := rng.Intn(len(jobs)) // victim dies at its killAfter-th lease
		victimLeases := 0
		dead := false
		for i := 0; ; i++ {
			if i > 10000 {
				t.Fatalf("round %d: sweep did not converge", round)
			}
			w := fmt.Sprintf("w%d", rng.Intn(3))
			if dead && w == victim {
				continue
			}
			batch, done := c.Lease(w, 1+rng.Intn(3))
			if done {
				break
			}
			if len(batch) == 0 {
				// Everything pending is leased (possibly by the corpse);
				// let time pass so leases expire.
				clock.Advance(30 * time.Second)
				continue
			}
			if w == victim {
				if victimLeases >= killAfter {
					dead = true // kill -9: batch leased, never acknowledged
					continue
				}
				victimLeases++
			}
			recs := make([]runner.Record, len(batch))
			for bi, j := range batch {
				recs[bi] = fakeRecord(j)
			}
			if _, err := c.Ingest(recs); err != nil {
				t.Fatalf("round %d: ingest: %v", round, err)
			}
		}
		if !equalStrings(recordSet(t, c.Records()), recordSet(t, serial)) {
			t.Fatalf("round %d (victim %s after %d leases): record set diverged from serial",
				round, victim, killAfter)
		}
		// The checkpoint holds exactly the same set.
		ckRecs, err := runner.ReadRecords(bytes.NewReader(checkpoint.Bytes()))
		if err != nil {
			t.Fatalf("round %d: checkpoint unreadable: %v", round, err)
		}
		if !equalStrings(keyStrings(ckRecs), keyStrings(serial)) {
			t.Fatalf("round %d: checkpoint key set diverged", round)
		}
	}
}

// TestCheckpointResumeRoundTrip: kill the coordinator (drop it), reopen
// its checkpoint through runner.ResumeJSONL — including a torn tail —
// and the successor finishes only the missing jobs, converging to the
// serial record set.
func TestCheckpointResumeRoundTrip(t *testing.T) {
	jobs := testJobs(t, 4)
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(jobs, Options{Checkpoint: f})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c1.Lease("w1", 2)
	recs := []runner.Record{fakeRecord(b[0]), fakeRecord(b[1])}
	if _, err := c1.Ingest(recs); err != nil {
		t.Fatal(err)
	}
	// kill -9 the coordinator mid-write: a torn half-record tail.
	if _, err := f.WriteString(`{"protocol":"SRP","pa`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	salvaged, f2, dropped, err := runner.ResumeJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if len(salvaged) != 2 || dropped == 0 {
		t.Fatalf("salvaged %d records, dropped %d bytes", len(salvaged), dropped)
	}
	c2, err := New(jobs, Options{Checkpoint: f2, Salvaged: salvaged})
	if err != nil {
		t.Fatal(err)
	}
	for {
		batch, done := c2.Lease("w2", 1)
		if done {
			break
		}
		if len(batch) == 0 {
			t.Fatal("stuck: nothing pending, sweep not done")
		}
		for _, j := range batch {
			if j.Key() == jobs[0].Key() || j.Key() == jobs[1].Key() {
				t.Fatalf("already-checkpointed job %v re-leased", j.Key())
			}
		}
		recs := make([]runner.Record, len(batch))
		for i, j := range batch {
			recs[i] = fakeRecord(j)
		}
		if _, err := c2.Ingest(recs); err != nil {
			t.Fatal(err)
		}
	}
	var serial []runner.Record
	for _, j := range jobs {
		serial = append(serial, fakeRecord(j))
	}
	if !equalStrings(recordSet(t, c2.Records()), recordSet(t, serial)) {
		t.Fatal("resumed coordinator's record set diverged from serial")
	}
	// And the file itself converged to the full set.
	f2.Close()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fileRecs, err := runner.ReadRecords(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(keyStrings(fileRecs), keyStrings(serial)) {
		t.Fatal("checkpoint file diverged from serial key set")
	}
}

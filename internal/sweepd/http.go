package sweepd

import (
	"encoding/json"
	"fmt"
	"net/http"

	"slr/internal/runner"
)

// The /v1 wire format. Versioned JSON whose payloads are exactly the
// runner types: a leased job is a runner.Job (fully seeded
// scenario.Params included — every field is plain data, so the JSON round
// trip is lossless and the worker runs bit-identical trials), and an
// acknowledged result is a runner.Record, one JSON line per record, the
// same schema the -jsonl emitters write. There is no parallel schema to
// drift.
//
//	POST /v1/lease    LeaseRequest  -> LeaseResponse
//	POST /v1/records  JSONL body    -> IngestResponse
//	GET  /v1/status                 -> Status
//	GET  /v1/report?report=<kind>   -> text/plain analysis
const (
	PathLease   = "/v1/lease"
	PathRecords = "/v1/records"
	PathStatus  = "/v1/status"
	PathReport  = "/v1/report"
)

// LeaseRequest asks for a batch of jobs.
type LeaseRequest struct {
	// Worker identifies the puller (for status and lease bookkeeping);
	// any stable non-empty string.
	Worker string `json:"worker"`
	// Max caps the batch size; 0 means 1.
	Max int `json:"max"`
}

// LeaseResponse carries the leased batch.
type LeaseResponse struct {
	// Jobs is the leased batch, possibly empty. Each job's canonical
	// identity key (runner.Key.String of its coordinates) is what the
	// coordinator expects a record back for.
	Jobs []runner.Job `json:"jobs"`
	// Keys are the jobs' canonical identity keys, index-aligned with
	// Jobs — informational (logging, tracing); the coordinator re-derives
	// keys from the records themselves.
	Keys []string `json:"keys,omitempty"`
	// LeaseTimeoutSec is how long the worker has to acknowledge the batch
	// before it returns to the pool.
	LeaseTimeoutSec float64 `json:"lease_timeout_sec"`
	// SweepDone reports that every job is done: an idle worker should
	// exit. An empty batch without SweepDone means everything pending is
	// leased elsewhere — poll again, a lease may expire.
	SweepDone bool `json:"sweep_done"`
}

// IngestResponse reports what a POSTed record batch amounted to.
type IngestResponse struct {
	IngestSummary
	// Error describes body damage (a record batch cut off mid-line); the
	// complete records before the damage were ingested anyway.
	Error string `json:"error,omitempty"`
}

// NewHandler wraps the coordinator in its /v1 HTTP surface.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req LeaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("bad lease request: %v", err), http.StatusBadRequest)
			return
		}
		if req.Worker == "" {
			http.Error(w, "lease request needs a worker id", http.StatusBadRequest)
			return
		}
		jobs, done := c.Lease(req.Worker, req.Max)
		resp := LeaseResponse{
			Jobs:            jobs,
			LeaseTimeoutSec: c.leaseTimeout.Seconds(),
			SweepDone:       done,
		}
		for _, j := range jobs {
			resp.Keys = append(resp.Keys, j.Key().String())
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc(PathRecords, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// The body is JSONL — the exact bytes a -jsonl emitter writes —
		// validated with the same salvage rules as every other reader: a
		// batch cut off mid-line (a worker dying mid-POST) contributes its
		// complete records; a line that is no record at all is foreign.
		recs, _, serr := runner.SalvageRecords(r.Body)
		sum, err := c.Ingest(recs)
		if err != nil {
			// A checkpoint write failure is the coordinator's problem, not
			// the batch's: the un-checkpointed jobs stay re-leasable and the
			// worker should retry.
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp := IngestResponse{IngestSummary: sum}
		status := http.StatusOK
		if serr != nil {
			resp.Error = serr.Error()
			status = http.StatusBadRequest
		}
		writeJSON(w, status, resp)
	})
	mux.HandleFunc(PathStatus, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc(PathReport, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		text, err := c.Report(r.URL.Query().Get("report"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})
	return mux
}

// writeJSON encodes one response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

package sweepd

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"slr/internal/experiments"
	"slr/internal/runner"
	"slr/internal/scenario"
)

// TestServiceMatchesSerialRun is the acceptance test for the whole
// service: a coordinator and two real workers over HTTP, one worker
// killed mid-sweep after leasing a batch it never acknowledges. After the
// lease expires the survivor finishes, and the coordinator's merged
// analysis and checkpointed record set are byte-identical to a serial
// single-process run of the same job list.
func TestServiceMatchesSerialRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	jobs := runner.TrialJobs(tinyParams(scenario.SRP, 1), 3)

	// Serial reference: the single-process sweep and its analysis.
	results, err := runner.Run(jobs, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]runner.Record, len(jobs))
	for i, j := range jobs {
		serial[i] = runner.NewRecord(j, results[i])
	}
	serialReport := experiments.MergeRecords(serial).TrialsReport()

	// The service: short lease timeout so the killed worker's batch
	// returns to the pool within the test's lifetime.
	path := filepath.Join(t.TempDir(), "checkpoint.jsonl")
	ck, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	c, err := New(jobs, Options{LeaseTimeout: 250 * time.Millisecond, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	crashed := errors.New("kill -9")
	var wg sync.WaitGroup
	wg.Add(2)
	var victimErr, survivorErr error
	go func() {
		defer wg.Done()
		victim := &Worker{URL: srv.URL, ID: "victim", Batch: 1,
			OnLease: func([]runner.Job) error { return crashed }}
		victimErr = victim.Run()
	}()
	go func() {
		defer wg.Done()
		// The survivor starts after the victim has leased, and polls fast
		// enough to pick the batch up once the lease expires.
		time.Sleep(50 * time.Millisecond)
		survivor := &Worker{URL: srv.URL, ID: "survivor", Batch: 2,
			Poll: 50 * time.Millisecond, Backoff: 10 * time.Millisecond}
		survivorErr = survivor.Run()
	}()
	wg.Wait()
	if !errors.Is(victimErr, crashed) {
		t.Fatalf("victim exited with %v, want its crash", victimErr)
	}
	if survivorErr != nil {
		t.Fatalf("survivor: %v", survivorErr)
	}

	st := c.Status()
	if !st.SweepDone || st.Done != len(jobs) {
		t.Fatalf("sweep not done: %+v", st)
	}

	// The live report is byte-identical to the serial analysis.
	resp, err := http.Get(srv.URL + PathReport + "?report=trials")
	if err != nil {
		t.Fatal(err)
	}
	report, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(report) != serialReport {
		t.Fatalf("service report diverged from serial:\n--- serial ---\n%s--- service ---\n%s",
			serialReport, report)
	}

	// The checkpoint holds exactly the serial record set — same bytes per
	// record, deduped.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ckRecs, err := runner.ReadRecords(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	deduped, _ := runner.DedupRecords(ckRecs)
	if !equalStrings(recordSet(t, deduped), recordSet(t, serial)) {
		t.Fatal("checkpoint record set diverged from serial run")
	}
}

// TestHandlerSurface pins the /v1 endpoints' method checks, validation,
// and payload shapes without running simulations.
func TestHandlerSurface(t *testing.T) {
	jobs := testJobs(t, 2)
	c, err := New(jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()

	// Method checks.
	for path, badMethod := range map[string]string{
		PathLease:   http.MethodGet,
		PathRecords: http.MethodGet,
		PathStatus:  http.MethodPost,
		PathReport:  http.MethodPost,
	} {
		req, _ := http.NewRequest(badMethod, srv.URL+path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: %d, want 405", badMethod, path, resp.StatusCode)
		}
	}

	// A lease without a worker id is refused.
	resp, err := http.Post(srv.URL+PathLease, "application/json", strings.NewReader(`{"max":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("anonymous lease: %d, want 400", resp.StatusCode)
	}

	// A real lease carries the job and its canonical key, and the job
	// round-trips losslessly: its re-marshaled key matches.
	resp, err = http.Post(srv.URL+PathLease, "application/json",
		strings.NewReader(`{"worker":"w1","max":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var lr LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(lr.Jobs) != 1 || len(lr.Keys) != 1 || lr.SweepDone {
		t.Fatalf("lease response: %+v", lr)
	}
	if got := lr.Jobs[0].Key().String(); got != lr.Keys[0] {
		t.Errorf("decoded job key %q != advertised key %q", got, lr.Keys[0])
	}
	if !reflect.DeepEqual(lr.Jobs[0].Params, jobs[0].Params) {
		t.Error("leased params did not survive the JSON round trip")
	}

	// Records: a batch cut off mid-line lands its complete records and
	// reports the damage with a 400.
	var line bytes.Buffer
	if err := json.NewEncoder(&line).Encode(fakeRecord(lr.Jobs[0])); err != nil {
		t.Fatal(err)
	}
	line.WriteString(`{"protocol":"SRP","pa`)
	resp, err = http.Post(srv.URL+PathRecords, "application/x-ndjson", &line)
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || ir.Accepted != 1 || ir.Error == "" {
		t.Fatalf("torn batch: status %d, %+v", resp.StatusCode, ir)
	}

	// Status reflects the completion.
	resp, err = http.Get(srv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Done != 1 || st.Total != 2 || st.Workers != 1 {
		t.Fatalf("status: %+v", st)
	}

	// An unknown report kind is a 400; trials works without a Scale.
	resp, err = http.Get(srv.URL + PathReport + "?report=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown report: %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + PathReport + "?report=table1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("grid report on a scale-less coordinator: %d, want 400", resp.StatusCode)
	}
}

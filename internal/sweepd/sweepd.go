// Package sweepd is the sweep coordinator: the server side of
// sweep-as-a-service. A Coordinator owns one sweep's flattened job list
// (the same runner.Job list a single process would consume), leases
// identity-keyed job batches to pulling workers, re-leases a batch whose
// lease expired (a dead worker's jobs simply return to the pool), ingests
// streamed record batches with identity-key validation and dedup,
// checkpoints every accepted record to a resumable JSONL stream, and
// serves live merged analyses through the same machinery as
// cmd/slranalyze.
//
// The package is pure coordination logic — no sockets: the /v1 HTTP
// surface wraps it in http.go, and the pulling worker client lives in
// worker.go. Determinism does the heavy lifting: because every job
// carries fully seeded scenario.Params fixed at flatten time, it does not
// matter which worker runs a trial, how often a re-leased trial runs, or
// in what order records arrive — the merged record set, and therefore
// every analysis byte, is identical to a single-process sweep of the same
// job list.
//
// Lease lifecycle: a job is pending, leased, or done. Lease hands out
// pending jobs in flattened-list order and stamps each with a deadline;
// Ingest moves a job to done when a record with its canonical identity
// key (runner.Key.String) arrives, wherever it came from — the current
// leaseholder, a previous one whose lease expired (late records are
// accepted; the duplicate that follows is dropped), or a salvaged
// checkpoint. A leased job whose deadline passes silently returns to
// pending at the next Lease or Status call; acknowledging the same key
// twice is a no-op counted as a duplicate. The sweep is done when every
// job is.
package sweepd

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"slr/internal/experiments"
	"slr/internal/runner"
)

// jobState is one job's position in the lease lifecycle.
type jobState uint8

const (
	statePending jobState = iota
	stateLeased
	stateDone
)

// entry is one job's lease-table row.
type entry struct {
	job      runner.Job
	state    jobState
	worker   string    // current or last leaseholder
	deadline time.Time // lease expiry while leased
}

// Options configures a Coordinator.
type Options struct {
	// LeaseTimeout is how long a leased batch may stay unacknowledged
	// before its jobs return to the pool. It must exceed the wall-clock
	// time a worker needs for one batch; the default is 5 minutes.
	LeaseTimeout time.Duration
	// Now is the clock, injectable for tests; nil means time.Now.
	Now func() time.Time
	// Checkpoint receives every accepted record as one JSON line, in
	// acceptance order — the coordinator's crash story: point it at a
	// file opened through runner.OpenJSONLOutput and a restarted
	// coordinator resumes from the salvaged records (see Salvaged). Nil
	// keeps records in memory only.
	Checkpoint io.Writer
	// Salvaged seeds already-completed trials, typically the records
	// runner.OpenJSONLOutput recovered from the checkpoint of a killed
	// coordinator. Records matching a job mark it done without re-running
	// it; records matching no job are kept for reporting (they are
	// already in the checkpoint file) and counted in Status.Foreign.
	Salvaged []runner.Record
	// Scale, when set, enables the grid report views (table1, fig3...,
	// percentiles, shape, all) at that sweep geometry; nil serves only
	// the "trials" view.
	Scale *experiments.Scale
}

// Coordinator owns one sweep's job list and lease table. All methods are
// safe for concurrent use.
type Coordinator struct {
	mu           sync.Mutex
	now          func() time.Time
	leaseTimeout time.Duration
	jobs         []runner.Job // flattened order; lease scan order
	entries      map[string]*entry
	accepted     []runner.Record // salvaged + ingested, acceptance order
	foreign      int             // salvaged records matching no job
	checkpoint   *json.Encoder   // nil without a checkpoint writer
	flush        func() error
	scale        *experiments.Scale
	started      time.Time
	workers      map[string]time.Time // worker id -> last contact
	done         int
}

// New builds a coordinator over one sweep's flattened job list. Jobs must
// have distinct identity keys (a flattened grid or trial list always
// does); duplicates are rejected rather than silently merged, since two
// jobs behind one key could never both complete.
func New(jobs []runner.Job, opts Options) (*Coordinator, error) {
	c := &Coordinator{
		now:          opts.Now,
		leaseTimeout: opts.LeaseTimeout,
		jobs:         jobs,
		entries:      make(map[string]*entry, len(jobs)),
		scale:        opts.Scale,
		workers:      make(map[string]time.Time),
	}
	if c.now == nil {
		c.now = time.Now
	}
	if c.leaseTimeout <= 0 {
		c.leaseTimeout = 5 * time.Minute
	}
	if opts.Checkpoint != nil {
		c.checkpoint = json.NewEncoder(opts.Checkpoint)
		if f, ok := opts.Checkpoint.(interface{ Sync() error }); ok {
			c.flush = f.Sync
		}
	}
	for _, j := range jobs {
		k := j.Key().String()
		if _, dup := c.entries[k]; dup {
			return nil, fmt.Errorf("sweepd: duplicate job key %s in the job list", k)
		}
		c.entries[k] = &entry{job: j}
	}
	salvaged, _ := runner.DedupRecords(opts.Salvaged)
	for _, rec := range salvaged {
		// Salvaged records are already in the checkpoint file; accept them
		// without re-writing.
		if e, ok := c.entries[rec.Key().String()]; ok {
			if e.state == stateDone {
				continue
			}
			e.state = stateDone
			c.done++
		} else {
			c.foreign++
		}
		c.accepted = append(c.accepted, rec)
	}
	c.started = c.now()
	return c, nil
}

// expire returns every overdue lease to the pool. Callers hold c.mu.
func (c *Coordinator) expire() {
	now := c.now()
	for _, k := range c.keysInOrder() {
		e := c.entries[k]
		if e.state == stateLeased && e.deadline.Before(now) {
			e.state = statePending
		}
	}
}

// keysInOrder iterates entries in flattened-job order. Callers hold c.mu.
func (c *Coordinator) keysInOrder() []string {
	keys := make([]string, len(c.jobs))
	for i, j := range c.jobs {
		keys[i] = j.Key().String()
	}
	return keys
}

// Lease claims up to max pending jobs for worker, in flattened-list
// order, stamping each with the lease deadline. An empty batch means
// nothing is pending right now: either the sweep is done (sweepDone true)
// or every remaining job is leased to someone else — poll again, a lease
// may expire.
func (c *Coordinator) Lease(worker string, max int) (batch []runner.Job, sweepDone bool) {
	if max <= 0 {
		max = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[worker] = c.now()
	c.expire()
	deadline := c.now().Add(c.leaseTimeout)
	for _, k := range c.keysInOrder() {
		if len(batch) == max {
			break
		}
		e := c.entries[k]
		if e.state != statePending {
			continue
		}
		e.state = stateLeased
		e.worker = worker
		e.deadline = deadline
		batch = append(batch, e.job)
	}
	return batch, c.done == len(c.jobs)
}

// IngestSummary reports what one record batch amounted to.
type IngestSummary struct {
	// Accepted records completed a job (and reached the checkpoint).
	Accepted int `json:"accepted"`
	// Duplicate records re-acknowledged an already-done key — a re-leased
	// trial both holders completed, a worker retrying a batch the
	// coordinator already took. Dropped: determinism makes them copies.
	Duplicate int `json:"duplicate"`
	// Unknown records match no job of this sweep (wrong coordinator, a
	// differently seeded worker). Rejected, never checkpointed.
	Unknown int `json:"unknown"`
}

// Ingest validates and accepts a batch of trial records. A record whose
// identity key matches a non-done job completes it — whether the job is
// leased to the sender, leased to someone else, pending again after the
// sender's lease expired, or was never leased at all; arrival beats
// bookkeeping, because a record's bytes are fully determined by its key.
// Each accepted record is appended to the checkpoint before the job is
// marked done, so a checkpoint write error leaves the unwritten jobs
// re-leasable and the file salvageable.
func (c *Coordinator) Ingest(recs []runner.Record) (IngestSummary, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var s IngestSummary
	for _, rec := range recs {
		e, ok := c.entries[rec.Key().String()]
		if !ok {
			s.Unknown++
			continue
		}
		if e.state == stateDone {
			s.Duplicate++
			continue
		}
		if c.checkpoint != nil {
			if err := c.checkpoint.Encode(rec); err != nil {
				return s, fmt.Errorf("checkpoint: %w", err)
			}
		}
		e.state = stateDone
		c.done++
		c.accepted = append(c.accepted, rec)
		s.Accepted++
	}
	if s.Accepted > 0 && c.flush != nil {
		if err := c.flush(); err != nil {
			return s, fmt.Errorf("checkpoint: %w", err)
		}
	}
	return s, nil
}

// Status is a live progress snapshot.
type Status struct {
	Total   int `json:"total"`
	Done    int `json:"done"`
	Leased  int `json:"leased"`
	Pending int `json:"pending"`
	// Foreign counts salvaged checkpoint records matching no job of this
	// sweep (resumed with different flags than the file was written
	// with); they stay in the checkpoint and the reports, so nonzero
	// means the output mixes sweeps.
	Foreign    int     `json:"foreign,omitempty"`
	Workers    int     `json:"workers"`
	ElapsedSec float64 `json:"elapsed_sec"`
	SweepDone  bool    `json:"sweep_done"`
}

// Status reports progress after expiring overdue leases.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expire()
	s := Status{
		Total:      len(c.jobs),
		Done:       c.done,
		Foreign:    c.foreign,
		Workers:    len(c.workers),
		ElapsedSec: c.now().Sub(c.started).Seconds(),
		SweepDone:  c.done == len(c.jobs),
	}
	for _, e := range c.entries {
		if e.state == stateLeased {
			s.Leased++
		}
	}
	s.Pending = s.Total - s.Done - s.Leased
	return s
}

// Records returns the accepted records (salvaged first, then ingested, in
// acceptance order) — the same set the checkpoint file holds.
func (c *Coordinator) Records() []runner.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]runner.Record(nil), c.accepted...)
}

// Report renders the named analysis over the records accepted so far,
// through the same merge entry point as cmd/slranalyze — so a finished
// sweep's report is byte-identical to running slranalyze over the
// checkpoint, and to the single-process sweep's own output. "trials"
// groups by (protocol, pause) with no grid geometry; the grid views
// (all, table1, fig3..fig7, percentiles, shape) need the coordinator to
// have been built with a Scale.
func (c *Coordinator) Report(kind string) (string, error) {
	merged := experiments.MergeRecords(c.Records())
	if kind == "" || kind == "trials" {
		return merged.TrialsReport(), nil
	}
	if c.scale == nil {
		return "", fmt.Errorf("report %q needs the sweep's grid scale; this coordinator runs a scale-less spec sweep (use report=trials)", kind)
	}
	grid, leftover := merged.Grid(*c.scale)
	var prefix string
	if len(leftover) > 0 {
		prefix = fmt.Sprintf("warning: %d records match no %s-scale pause time; analyzing the rest\n",
			len(leftover), c.scale.Name)
	}
	switch kind {
	case "all":
		return prefix + grid.Report(), nil
	case "table1":
		return prefix + grid.Table1(), nil
	case "percentiles":
		return prefix + grid.LatencyPercentileTable(), nil
	case "shape":
		return prefix + grid.ShapeReport(), nil
	default:
		m := experiments.MetricByName[kind]
		if m == nil {
			return "", fmt.Errorf("unknown report %q (want trials, all, table1, fig3..fig7, percentiles, shape)", kind)
		}
		return prefix + grid.FigureTable(*m), nil
	}
}

package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"slr/internal/runner"
)

// Worker is the pulling client side of sweep-as-a-service: it leases job
// batches from a coordinator, runs each batch's trials on the
// work-stealing runner (all local CPUs), and POSTs the resulting records
// back with retry and exponential backoff. Losing a worker loses nothing:
// whatever it leased but never acknowledged returns to the pool when the
// lease expires, and whatever it acknowledged twice (a retried POST, a
// re-leased trial) the coordinator dedups.
type Worker struct {
	// URL is the coordinator's base URL, e.g. "http://host:8356".
	URL string
	// ID identifies this worker to the coordinator.
	ID string
	// Batch is the job count requested per lease; 0 means 1. The
	// coordinator's lease timeout must exceed a batch's wall-clock time,
	// so size batches for minutes, not hours.
	Batch int
	// Workers is the runner's worker-goroutine count per batch; 0 means
	// GOMAXPROCS.
	Workers int
	// Poll is how long to wait when nothing is pending but the sweep is
	// not done (everything is leased elsewhere); 0 means 2 s.
	Poll time.Duration
	// Retries caps how often a failing request is retried before the
	// worker gives up; 0 means 5.
	Retries int
	// Backoff is the first retry's delay, doubling per attempt; 0 means
	// 500 ms.
	Backoff time.Duration
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Progress receives one line per batch; nil is silent.
	Progress io.Writer
	// OnLease, if set, observes every non-empty leased batch before it
	// runs; returning an error abandons the batch without acknowledgment
	// and stops the worker — the hook crash tests use to die
	// mid-sweep like kill -9 would.
	OnLease func([]runner.Job) error
}

// Run pulls and executes batches until the coordinator reports the sweep
// done (returns nil) or a request exhausts its retries.
func (w *Worker) Run() error {
	poll := w.Poll
	if poll <= 0 {
		poll = 2 * time.Second
	}
	for {
		resp, err := w.lease()
		if err != nil {
			return err
		}
		if len(resp.Jobs) == 0 {
			if resp.SweepDone {
				return nil
			}
			time.Sleep(poll)
			continue
		}
		if w.OnLease != nil {
			if err := w.OnLease(resp.Jobs); err != nil {
				return err
			}
		}
		start := time.Now()
		results, runErr := runner.Run(resp.Jobs, runner.Options{Workers: w.Workers})
		if runErr != nil {
			// No emitters are attached, so this cannot happen today; guard
			// anyway rather than acknowledge a batch that did not finish.
			return fmt.Errorf("running leased batch: %w", runErr)
		}
		var body bytes.Buffer
		enc := json.NewEncoder(&body)
		for i, j := range resp.Jobs {
			if err := enc.Encode(runner.NewRecord(j, results[i])); err != nil {
				return err
			}
		}
		sum, err := w.post(body.Bytes())
		if err != nil {
			return err
		}
		if w.Progress != nil {
			fmt.Fprintf(w.Progress, "%s: batch of %d done in %v (accepted %d, dup %d)\n",
				w.ID, len(resp.Jobs), time.Since(start).Round(time.Millisecond),
				sum.Accepted, sum.Duplicate)
		}
	}
}

// lease requests one batch, retrying transient failures.
func (w *Worker) lease() (*LeaseResponse, error) {
	blob, err := json.Marshal(LeaseRequest{Worker: w.ID, Max: w.Batch})
	if err != nil {
		return nil, err
	}
	var resp LeaseResponse
	err = w.retry("lease", func() error {
		r, err := w.client().Post(strings.TrimSuffix(w.URL, "/")+PathLease,
			"application/json", bytes.NewReader(blob))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return httpError(r)
		}
		resp = LeaseResponse{}
		return json.NewDecoder(r.Body).Decode(&resp)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// post acknowledges one batch's records, retrying transient failures. A
// retry after a half-landed POST is safe: the coordinator dedups on the
// identity key, so the records land exactly once.
func (w *Worker) post(jsonl []byte) (IngestSummary, error) {
	var resp IngestResponse
	err := w.retry("post records", func() error {
		r, err := w.client().Post(strings.TrimSuffix(w.URL, "/")+PathRecords,
			"application/x-ndjson", bytes.NewReader(jsonl))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return httpError(r)
		}
		resp = IngestResponse{}
		return json.NewDecoder(r.Body).Decode(&resp)
	})
	return resp.IngestSummary, err
}

// retry runs fn up to 1+Retries times with exponential backoff.
func (w *Worker) retry(what string, fn func() error) error {
	retries := w.Retries
	if retries <= 0 {
		retries = 5
	}
	backoff := w.Backoff
	if backoff <= 0 {
		backoff = 500 * time.Millisecond
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = fn(); err == nil {
			return nil
		}
		if attempt == retries {
			return fmt.Errorf("%s: %w (after %d retries)", what, err, retries)
		}
		if w.Progress != nil {
			fmt.Fprintf(w.Progress, "%s: %s failed (%v), retrying in %v\n", w.ID, what, err, backoff)
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// client returns the HTTP client.
func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// httpError turns a non-200 response into an error carrying the body's
// first line (the server's message).
func httpError(r *http.Response) error {
	blob, _ := io.ReadAll(io.LimitReader(r.Body, 512))
	msg := strings.TrimSpace(string(blob))
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return fmt.Errorf("%s: %s", r.Status, msg)
}

package registry

import (
	"reflect"
	"testing"
)

func TestRegistryBasics(t *testing.T) {
	r := New[int]("test model")
	r.Register("b", 2)
	r.Register("a", 1)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Names() = %v", got)
	}
	if v, ok := r.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if _, ok := r.Get("c"); ok {
		t.Fatal("Get(c) found an unregistered entry")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := New[int]("test model")
	r.Register("a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register("a", 2)
}

func TestParam(t *testing.T) {
	m := map[string]float64{"alpha": 0.5}
	if got := Param(m, "alpha", 0.75); got != 0.5 {
		t.Fatalf("Param(alpha) = %v", got)
	}
	if got := Param(m, "beta", 0.75); got != 0.75 {
		t.Fatalf("Param(beta) = %v", got)
	}
	if got := Param(nil, "beta", 3); got != 3 {
		t.Fatalf("Param(nil map) = %v", got)
	}
}

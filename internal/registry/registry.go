// Package registry is the tiny generic name-to-factory registry shared by
// the pluggable model families (mobility models, traffic pacers, radio
// propagation). One implementation means one behavior everywhere:
// duplicate registration panics, name listings are sorted, and
// model-specific parameter maps resolve through a single accessor.
package registry

import (
	"fmt"
	"sort"
)

// Registry maps model names to factories for one model family. The zero
// value is not usable; call New.
type Registry[T any] struct {
	kind string
	m    map[string]T
}

// New returns an empty registry; kind names the family in panic messages
// (e.g. "mobility model").
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, m: make(map[string]T)}
}

// Register adds v under name. Registering a duplicate name panics: it is
// a wiring bug.
func (r *Registry[T]) Register(name string, v T) {
	if _, dup := r.m[name]; dup {
		panic(fmt.Sprintf("%s %q registered twice", r.kind, name))
	}
	r.m[name] = v
}

// Names returns the registered names, sorted.
func (r *Registry[T]) Names() []string {
	names := make([]string, 0, len(r.m))
	for n := range r.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the entry registered under name.
func (r *Registry[T]) Get(name string) (T, bool) {
	v, ok := r.m[name]
	return v, ok
}

// Param returns params[name], or def when the key is absent — the shared
// accessor for model-specific parameter maps, where missing knobs take
// the model's documented defaults.
func Param(params map[string]float64, name string, def float64) float64 {
	if v, ok := params[name]; ok {
		return v
	}
	return def
}

// ApplyParams walks params in sorted key order, invoking the matching
// applier for each entry. A key with no applier is an error naming the
// known keys — a typoed knob must fail loudly, never silently fall back
// to a default. It is the shared override mechanism for model families
// whose parameter set is fixed and validated (routing protocol configs),
// as opposed to Param's open accessor for optional knobs.
func ApplyParams(kind string, params map[string]float64, apply map[string]func(float64)) error {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f, ok := apply[k]
		if !ok {
			known := make([]string, 0, len(apply))
			for n := range apply {
				known = append(known, n)
			}
			sort.Strings(known)
			return fmt.Errorf("%s: unknown parameter %q (known: %v)", kind, k, known)
		}
		f(params[k])
	}
	return nil
}

package metrics

import "math/bits"

// HistBuckets is the fixed bucket count of a Hist: bucket 0 holds exact
// zeros and bucket i (1 <= i <= 64) holds values in [2^(i-1), 2^i), so any
// uint64 maps to exactly one bucket and the array never grows.
const HistBuckets = 65

// Hist is a fixed-size base-2 histogram for non-negative integer samples
// (latency in microseconds, hop counts). Observing a sample touches one
// array slot and two counters — no allocation, no branching on capacity —
// so the per-packet hot path stays allocation-free. Two histograms built
// from the same multiset of samples are identical regardless of
// observation or merge order, which makes offline aggregation (merging
// per-trial histograms from JSONL) deterministic.
//
// Quantiles are reported as exact bucket upper bounds (2^i - 1), never
// interpolated: the answer depends only on bucket counts, so an offline
// merge reproduces the in-process value bit for bit.
type Hist struct {
	// N counts observed samples.
	N uint64
	// Sum accumulates the raw samples (for the exact mean; Sum is not
	// recoverable from the buckets alone and is serialized alongside them).
	Sum uint64
	// Counts holds per-bucket sample counts.
	Counts [HistBuckets]uint64
}

// Observe records one sample.
func (h *Hist) Observe(v uint64) {
	h.N++
	h.Sum += v
	h.Counts[bits.Len64(v)]++
}

// Merge adds o's samples into h. Merging is commutative and associative.
func (h *Hist) Merge(o *Hist) {
	h.N += o.N
	h.Sum += o.Sum
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
}

// BucketBound returns the inclusive upper bound of bucket i: 0 for bucket
// 0, 2^i - 1 for the rest (saturating at the maximum uint64).
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Quantile returns the upper bound of the bucket containing the q-th
// sample (0 < q <= 1), i.e. the smallest bucket bound b such that at least
// ceil(q*N) samples are <= b. An empty histogram reports 0.
func (h *Hist) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	rank := uint64(q * float64(h.N))
	if float64(rank) < q*float64(h.N) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(HistBuckets - 1)
}

// USToSeconds converts a microsecond quantity (a latency-histogram
// bucket bound, a sum) to seconds — the one conversion between
// Collector.LatencyHist's unit and the reports'.
func USToSeconds(us uint64) float64 { return float64(us) / 1e6 }

// PercentilesSec returns the standard latency-tail summary of a
// microsecond histogram — the exact p50/p95/p99 bucket bounds in seconds
// — so every report (live and offline) derives the tail from one place.
func (h *Hist) PercentilesSec() (p50, p95, p99 float64) {
	return USToSeconds(h.Quantile(0.50)), USToSeconds(h.Quantile(0.95)), USToSeconds(h.Quantile(0.99))
}

// HistBucket is one non-empty bucket in the serialized (sparse) form.
type HistBucket struct {
	// B is the bucket index (0..64): bucket 0 holds exact zeros, bucket
	// B >= 1 covers [2^(B-1), 2^B).
	B int `json:"b"`
	// C is the sample count in the bucket.
	C uint64 `json:"c"`
}

// Buckets returns the non-empty buckets in ascending index order: the
// deterministic serialized form (identical histograms serialize to
// identical bytes).
func (h *Hist) Buckets() []HistBucket {
	if h.N == 0 {
		return nil
	}
	var out []HistBucket
	for i, c := range h.Counts {
		if c != 0 {
			out = append(out, HistBucket{B: i, C: c})
		}
	}
	return out
}

// HistFromBuckets reconstructs a histogram from its serialized form. sum
// restores the exact-mean accumulator (0 when the source did not carry
// one). Out-of-range bucket indices are ignored.
func HistFromBuckets(buckets []HistBucket, sum uint64) Hist {
	var h Hist
	h.Sum = sum
	for _, b := range buckets {
		if b.B < 0 || b.B >= HistBuckets {
			continue
		}
		h.Counts[b.B] += b.C
		h.N += b.C
	}
	return h
}

package metrics

import "slr/internal/sim"

// FlowStat is the per-flow ledger of one traffic flow: how much it
// offered, how much arrived, and when deliveries started and stopped.
// The traffic generator numbers flows from 1; flow 0 means "no flow"
// (packets injected outside the workload) and is tracked only in the
// run totals.
type FlowStat struct {
	// Flow is the generator-assigned flow id (1-based).
	Flow uint32
	// Sent counts packets the flow's source originated.
	Sent uint64
	// Recv counts packets delivered at the flow's destination.
	Recv uint64
	// FirstRecv and LastRecv are the virtual times of the first and last
	// delivery; both are zero while Recv is zero.
	FirstRecv sim.Time
	LastRecv  sim.Time
}

// flowAt returns the ledger slot for flow, growing the index as new flows
// appear. Flow ids are assigned sequentially by the traffic generator, so
// the index is a dense slice: growth is amortized over flow creations
// (dozens per run), never per packet.
func (c *Collector) flowAt(flow uint32) *FlowStat {
	i := int(flow) - 1
	if i >= len(c.flows) {
		if i >= cap(c.flows) {
			grown := make([]FlowStat, i+1, 2*(i+1))
			copy(grown, c.flows)
			c.flows = grown
		} else {
			c.flows = c.flows[:i+1]
		}
	}
	fs := &c.flows[i]
	fs.Flow = flow
	return fs
}

// Flows returns a copy of the per-flow ledgers in flow-id order, skipping
// flows that never carried a packet.
func (c *Collector) Flows() []FlowStat {
	out := make([]FlowStat, 0, len(c.flows))
	for i := range c.flows {
		if fs := &c.flows[i]; fs.Sent > 0 || fs.Recv > 0 {
			out = append(out, *fs)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

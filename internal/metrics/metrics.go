// Package metrics collects per-run counters for the paper's three headline
// metrics — delivery ratio, network load, and data latency — plus the MAC
// drop and sequence-number series of Figs. 3 and 7, and provides the
// mean / 95% confidence-interval statistics used in Table I.
package metrics

import (
	"math"
	"time"

	"slr/internal/sim"
)

// Collector accumulates one simulation run's counters. Protocols and the
// network stack update it; the scenario reads it at the end of the run.
// The per-packet path (Sent, Delivered, Control, Drop) is allocation-free
// in steady state: the histograms are fixed arrays and the per-flow index
// grows only when a new flow appears.
type Collector struct {
	// DataSent counts CBR packets handed to the routing layer at sources.
	DataSent uint64
	// DataRecv counts CBR packets delivered at their destinations.
	DataRecv uint64
	// latencySum accumulates end-to-end delay of delivered packets.
	latencySum time.Duration
	// HopsSum accumulates hop counts of delivered packets.
	HopsSum uint64
	// ControlTx counts control-packet transmissions (every hop of every
	// flood or unicast counts once, matching the paper's "total number of
	// control packets sent").
	ControlTx uint64
	// ControlBytes counts control bytes transmitted.
	ControlBytes uint64
	// DataDrops counts data packets dropped by the routing layer, by
	// reason.
	DataDrops map[string]uint64
	// LatencyHist holds delivered-packet end-to-end latency in
	// microseconds; its bucket bounds give the run's p50/p95/p99 tail
	// (mean latency alone hides the tail behavior that distinguishes
	// on-demand protocols under mobility).
	LatencyHist Hist
	// HopHist holds delivered-packet hop counts.
	HopHist Hist
	// flows is the per-flow ledger, indexed by flow id - 1 (see flows.go).
	flows []FlowStat
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{DataDrops: make(map[string]uint64)}
}

// Sent records a CBR origination on the given flow (0 = outside the
// workload, counted only in the totals).
func (c *Collector) Sent(flow uint32) {
	c.DataSent++
	if flow != 0 {
		c.flowAt(flow).Sent++
	}
}

// Delivered records a CBR delivery on flow at virtual time now with its
// end-to-end latency and hops.
func (c *Collector) Delivered(flow uint32, now sim.Time, latency sim.Time, hops int) {
	c.DataRecv++
	c.latencySum += latency
	c.HopsSum += uint64(hops)
	us := latency / time.Microsecond
	if us < 0 {
		us = 0
	}
	c.LatencyHist.Observe(uint64(us))
	c.HopHist.Observe(uint64(hops))
	if flow != 0 {
		fs := c.flowAt(flow)
		if fs.Recv == 0 {
			fs.FirstRecv = now
		}
		fs.Recv++
		fs.LastRecv = now
	}
}

// Control records one control-packet transmission of size bytes.
func (c *Collector) Control(size int) {
	c.ControlTx++
	c.ControlBytes += uint64(size)
}

// Drop records a routing-layer data drop for the given reason.
func (c *Collector) Drop(reason string) { c.DataDrops[reason]++ }

// DeliveryRatio returns delivered/sent, the paper's delivery-ratio metric.
func (c *Collector) DeliveryRatio() float64 {
	if c.DataSent == 0 {
		return 0
	}
	return float64(c.DataRecv) / float64(c.DataSent)
}

// NetworkLoad returns control transmissions per delivered data packet, the
// paper's network-load metric. A run that sent control traffic but
// delivered nothing has no defined per-packet ratio: NetworkLoad reports
// NaN as the documented sentinel (the old fallback returned the raw
// ControlTx count, silently mixing a count into a ratio and skewing
// Table-I averages). Series.Add excludes NaN from aggregates and counts
// the exclusions, and the JSONL/CSV emitters serialize it as null/"NaN".
// A fully idle run (no control traffic either) reports 0.
func (c *Collector) NetworkLoad() float64 {
	if c.DataRecv == 0 {
		if c.ControlTx == 0 {
			return 0
		}
		return math.NaN()
	}
	return float64(c.ControlTx) / float64(c.DataRecv)
}

// MeanLatency returns the mean end-to-end latency in seconds of delivered
// packets, the paper's latency metric.
func (c *Collector) MeanLatency() float64 {
	if c.DataRecv == 0 {
		return 0
	}
	return c.latencySum.Seconds() / float64(c.DataRecv)
}

// MeanHops returns the mean hop count of delivered packets.
func (c *Collector) MeanHops() float64 {
	if c.DataRecv == 0 {
		return 0
	}
	return float64(c.HopsSum) / float64(c.DataRecv)
}

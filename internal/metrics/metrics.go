// Package metrics collects per-run counters for the paper's three headline
// metrics — delivery ratio, network load, and data latency — plus the MAC
// drop and sequence-number series of Figs. 3 and 7, and provides the
// mean / 95% confidence-interval statistics used in Table I.
package metrics

import (
	"time"

	"slr/internal/sim"
)

// Collector accumulates one simulation run's counters. Protocols and the
// network stack update it; the scenario reads it at the end of the run.
type Collector struct {
	// DataSent counts CBR packets handed to the routing layer at sources.
	DataSent uint64
	// DataRecv counts CBR packets delivered at their destinations.
	DataRecv uint64
	// latencySum accumulates end-to-end delay of delivered packets.
	latencySum time.Duration
	// HopsSum accumulates hop counts of delivered packets.
	HopsSum uint64
	// ControlTx counts control-packet transmissions (every hop of every
	// flood or unicast counts once, matching the paper's "total number of
	// control packets sent").
	ControlTx uint64
	// ControlBytes counts control bytes transmitted.
	ControlBytes uint64
	// DataDrops counts data packets dropped by the routing layer, by
	// reason.
	DataDrops map[string]uint64
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{DataDrops: make(map[string]uint64)}
}

// Sent records a CBR origination.
func (c *Collector) Sent() { c.DataSent++ }

// Delivered records a CBR delivery with its end-to-end latency and hops.
func (c *Collector) Delivered(latency sim.Time, hops int) {
	c.DataRecv++
	c.latencySum += latency
	c.HopsSum += uint64(hops)
}

// Control records one control-packet transmission of size bytes.
func (c *Collector) Control(size int) {
	c.ControlTx++
	c.ControlBytes += uint64(size)
}

// Drop records a routing-layer data drop for the given reason.
func (c *Collector) Drop(reason string) { c.DataDrops[reason]++ }

// DeliveryRatio returns delivered/sent, the paper's delivery-ratio metric.
func (c *Collector) DeliveryRatio() float64 {
	if c.DataSent == 0 {
		return 0
	}
	return float64(c.DataRecv) / float64(c.DataSent)
}

// NetworkLoad returns control transmissions per delivered data packet, the
// paper's network-load metric.
func (c *Collector) NetworkLoad() float64 {
	if c.DataRecv == 0 {
		if c.ControlTx == 0 {
			return 0
		}
		return float64(c.ControlTx)
	}
	return float64(c.ControlTx) / float64(c.DataRecv)
}

// MeanLatency returns the mean end-to-end latency in seconds of delivered
// packets, the paper's latency metric.
func (c *Collector) MeanLatency() float64 {
	if c.DataRecv == 0 {
		return 0
	}
	return c.latencySum.Seconds() / float64(c.DataRecv)
}

// MeanHops returns the mean hop count of delivered packets.
func (c *Collector) MeanHops() float64 {
	if c.DataRecv == 0 {
		return 0
	}
	return float64(c.HopsSum) / float64(c.DataRecv)
}

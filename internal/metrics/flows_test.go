package metrics

import (
	"testing"
	"time"
)

func TestPerFlowAccounting(t *testing.T) {
	c := NewCollector()
	// Flow 2 appears before flow 1 finishes; flow 0 stays out of the
	// ledger; flow 3 sends but never delivers.
	c.Sent(1)
	c.Sent(1)
	c.Sent(2)
	c.Sent(0)
	c.Sent(3)
	c.Delivered(1, 10*time.Second, 100*time.Millisecond, 2)
	c.Delivered(2, 11*time.Second, 50*time.Millisecond, 1)
	c.Delivered(1, 20*time.Second, 200*time.Millisecond, 3)
	c.Delivered(0, 21*time.Second, 10*time.Millisecond, 1)

	if c.DataSent != 5 || c.DataRecv != 4 {
		t.Fatalf("totals: sent=%d recv=%d", c.DataSent, c.DataRecv)
	}
	flows := c.Flows()
	if len(flows) != 3 {
		t.Fatalf("flows = %+v, want 3 entries", flows)
	}
	f1, f2, f3 := flows[0], flows[1], flows[2]
	if f1.Flow != 1 || f1.Sent != 2 || f1.Recv != 2 ||
		f1.FirstRecv != 10*time.Second || f1.LastRecv != 20*time.Second {
		t.Errorf("flow 1 = %+v", f1)
	}
	if f2.Flow != 2 || f2.Sent != 1 || f2.Recv != 1 ||
		f2.FirstRecv != 11*time.Second || f2.LastRecv != 11*time.Second {
		t.Errorf("flow 2 = %+v", f2)
	}
	if f3.Flow != 3 || f3.Sent != 1 || f3.Recv != 0 || f3.FirstRecv != 0 || f3.LastRecv != 0 {
		t.Errorf("flow 3 = %+v", f3)
	}

	// Per-flow counts reconcile with run totals minus out-of-workload
	// (flow 0) traffic.
	var sent, recv uint64
	for _, f := range flows {
		sent += f.Sent
		recv += f.Recv
	}
	if sent != c.DataSent-1 || recv != c.DataRecv-1 {
		t.Errorf("ledger sums sent=%d recv=%d, totals %d/%d", sent, recv, c.DataSent, c.DataRecv)
	}
}

func TestFlowsSparseIDs(t *testing.T) {
	c := NewCollector()
	// A gap in flow ids (ids are dense in practice, but the index must
	// not invent phantom flows for the gap).
	c.Sent(5)
	c.Delivered(5, time.Second, time.Millisecond, 1)
	flows := c.Flows()
	if len(flows) != 1 || flows[0].Flow != 5 {
		t.Fatalf("flows = %+v, want single flow 5", flows)
	}
}

package metrics

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestHistBucketBounds(t *testing.T) {
	h := &Hist{}
	// Each sample must land in the bucket whose bound is the smallest
	// power-of-two upper bound: 0 -> bucket 0, 1 -> bucket 1 ([1,2)),
	// 2,3 -> bucket 2, 4..7 -> bucket 3, ...
	for _, tc := range []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11}, {1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	} {
		before := h.Counts[tc.bucket]
		h.Observe(tc.v)
		if h.Counts[tc.bucket] != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", tc.v, tc.bucket)
		}
		if tc.v > 0 && BucketBound(tc.bucket) < tc.v {
			t.Errorf("BucketBound(%d) = %d < sample %d", tc.bucket, BucketBound(tc.bucket), tc.v)
		}
	}
	if h.N != 12 {
		t.Errorf("N = %d, want 12", h.N)
	}
}

func TestHistQuantileExactBounds(t *testing.T) {
	h := &Hist{}
	// 100 samples: 50 of value 3 (bucket 2, bound 3), 45 of value 100
	// (bucket 7, bound 127), 5 of value 5000 (bucket 13, bound 8191).
	for i := 0; i < 50; i++ {
		h.Observe(3)
	}
	for i := 0; i < 45; i++ {
		h.Observe(100)
	}
	for i := 0; i < 5; i++ {
		h.Observe(5000)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{
		{0.50, 3}, {0.51, 127}, {0.95, 127}, {0.96, 8191}, {0.99, 8191}, {1, 8191},
	} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if (&Hist{}).Quantile(0.99) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
}

// TestHistMergeDeterminism verifies the offline-aggregation contract: any
// split of a sample stream into per-trial histograms, merged in any
// order, equals the histogram of the whole stream.
func TestHistMergeDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]uint64, 5000)
	for i := range samples {
		samples[i] = uint64(rng.Int63n(1 << uint(rng.Intn(40))))
	}
	var whole Hist
	parts := make([]Hist, 7)
	for i, v := range samples {
		whole.Observe(v)
		parts[i%len(parts)].Observe(v)
	}
	mergeAll := func(order []int) Hist {
		var m Hist
		for _, i := range order {
			m.Merge(&parts[i])
		}
		return m
	}
	fwd := mergeAll([]int{0, 1, 2, 3, 4, 5, 6})
	rev := mergeAll([]int{6, 5, 4, 3, 2, 1, 0})
	if !reflect.DeepEqual(fwd, whole) || !reflect.DeepEqual(rev, whole) {
		t.Fatal("merged histograms differ from whole-stream histogram")
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if fwd.Quantile(q) != whole.Quantile(q) {
			t.Errorf("Quantile(%v) differs after merge", q)
		}
	}
}

func TestHistSerializationRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 1, 900, 900, 900, 1 << 40} {
		h.Observe(v)
	}
	buckets := h.Buckets()
	// Sparse form: ascending bucket indices, non-empty only.
	for i := 1; i < len(buckets); i++ {
		if buckets[i-1].B >= buckets[i].B {
			t.Fatalf("buckets not ascending: %v", buckets)
		}
	}
	back := HistFromBuckets(buckets, h.Sum)
	if !reflect.DeepEqual(back, h) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, h)
	}
	if (&Hist{}).Buckets() != nil {
		t.Error("empty histogram must serialize to nil")
	}
	// Hostile input: out-of-range indices ignored, not a panic.
	hostile := HistFromBuckets([]HistBucket{{B: -1, C: 5}, {B: 99, C: 5}, {B: 2, C: 1}}, 0)
	if hostile.N != 1 {
		t.Errorf("hostile buckets: N = %d, want 1", hostile.N)
	}
}

// TestDeliveredPathAllocFree pins the tentpole's hot-path contract: once a
// flow exists, recording deliveries (histograms included) allocates
// nothing.
func TestDeliveredPathAllocFree(t *testing.T) {
	c := NewCollector()
	c.Sent(1)
	c.Delivered(1, time.Second, 10*time.Millisecond, 2) // flow ledger slot exists now
	now := 2 * time.Second
	if avg := testing.AllocsPerRun(1000, func() {
		c.Sent(1)
		c.Delivered(1, now, 10*time.Millisecond, 2)
		now += time.Millisecond
	}); avg != 0 {
		t.Errorf("Sent+Delivered allocates %v per op, want 0", avg)
	}
}

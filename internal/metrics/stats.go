package metrics

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tTable95 holds two-sided 95% Student t critical values for 1..30 degrees
// of freedom; beyond 30 the normal approximation 1.96 is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the mean of
// xs, using the Student t distribution (the paper reports 95% CIs on all
// figures and in Table I).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	t := 1.96
	if df := n - 1; df <= len(tTable95) {
		t = tTable95[df-1]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// Series is a set of trial measurements for one data point. Undefined
// measurements (NaN, e.g. Collector.NetworkLoad's zero-delivery sentinel)
// are excluded from the aggregates and counted in NaNs, so one broken
// trial flags the data point instead of silently skewing its mean.
type Series struct {
	Values []float64
	// NaNs counts measurements excluded because they were NaN.
	NaNs int
}

// Add appends a measurement; NaN is counted in NaNs and otherwise ignored.
func (s *Series) Add(v float64) {
	if math.IsNaN(v) {
		s.NaNs++
		return
	}
	s.Values = append(s.Values, v)
}

// Mean returns the series mean.
func (s *Series) Mean() float64 { return Mean(s.Values) }

// CI returns the 95% confidence half-width.
func (s *Series) CI() float64 { return CI95(s.Values) }

// Overlaps reports whether the 95% confidence intervals of s and o overlap;
// the paper calls measurements "statistically identical" when they do.
func (s *Series) Overlaps(o *Series) bool {
	sLo, sHi := s.Mean()-s.CI(), s.Mean()+s.CI()
	oLo, oHi := o.Mean()-o.CI(), o.Mean()+o.CI()
	return sLo <= oHi && oLo <= sHi
}

package metrics

import (
	"math"
	"testing"
	"time"
)

func TestCollectorRatios(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.Sent()
	}
	for i := 0; i < 8; i++ {
		c.Delivered(time.Duration(i+1)*100*time.Millisecond, 3)
	}
	c.Control(64)
	c.Control(64)
	c.Control(64)
	c.Control(64)

	if got := c.DeliveryRatio(); got != 0.8 {
		t.Errorf("DeliveryRatio = %v, want 0.8", got)
	}
	if got := c.NetworkLoad(); got != 0.5 {
		t.Errorf("NetworkLoad = %v, want 0.5", got)
	}
	// Latencies 0.1..0.8 s mean 0.45 s.
	if got := c.MeanLatency(); math.Abs(got-0.45) > 1e-9 {
		t.Errorf("MeanLatency = %v, want 0.45", got)
	}
	if got := c.MeanHops(); got != 3 {
		t.Errorf("MeanHops = %v, want 3", got)
	}
	if c.ControlBytes != 256 {
		t.Errorf("ControlBytes = %d, want 256", c.ControlBytes)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector()
	if c.DeliveryRatio() != 0 || c.NetworkLoad() != 0 || c.MeanLatency() != 0 || c.MeanHops() != 0 {
		t.Error("empty collector must report zeros")
	}
}

func TestNetworkLoadNoDeliveries(t *testing.T) {
	c := NewCollector()
	c.Control(10)
	c.Control(10)
	if got := c.NetworkLoad(); got != 2 {
		t.Errorf("NetworkLoad with zero deliveries = %v, want raw count 2", got)
	}
}

func TestDropReasons(t *testing.T) {
	c := NewCollector()
	c.Drop("no-route")
	c.Drop("no-route")
	c.Drop("ttl")
	if c.DataDrops["no-route"] != 2 || c.DataDrops["ttl"] != 1 {
		t.Errorf("DataDrops = %v", c.DataDrops)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of this set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestCI95(t *testing.T) {
	// n=10 -> t(9) = 2.262.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
	}
	want := 2.262 * StdDev(xs) / math.Sqrt(10)
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{5}) != 0 {
		t.Error("CI95 of singleton must be 0")
	}
	// Large n falls back to 1.96.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	want = 1.96 * StdDev(big) / 10
	if got := CI95(big); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 large-n = %v, want %v", got, want)
	}
}

func TestSeriesOverlap(t *testing.T) {
	a := &Series{}
	b := &Series{}
	c := &Series{}
	for i := 0; i < 10; i++ {
		a.Add(10 + float64(i%3))
		b.Add(10.5 + float64(i%3))
		c.Add(100 + float64(i%3))
	}
	if !a.Overlaps(b) {
		t.Error("close series must overlap")
	}
	if a.Overlaps(c) {
		t.Error("distant series must not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("series must overlap itself")
	}
}

package metrics

import (
	"math"
	"testing"
	"time"
)

func TestCollectorRatios(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 10; i++ {
		c.Sent(1)
	}
	for i := 0; i < 8; i++ {
		lat := time.Duration(i+1) * 100 * time.Millisecond
		c.Delivered(1, time.Duration(i)*time.Second+lat, lat, 3)
	}
	c.Control(64)
	c.Control(64)
	c.Control(64)
	c.Control(64)

	if got := c.DeliveryRatio(); got != 0.8 {
		t.Errorf("DeliveryRatio = %v, want 0.8", got)
	}
	if got := c.NetworkLoad(); got != 0.5 {
		t.Errorf("NetworkLoad = %v, want 0.5", got)
	}
	// Latencies 0.1..0.8 s mean 0.45 s.
	if got := c.MeanLatency(); math.Abs(got-0.45) > 1e-9 {
		t.Errorf("MeanLatency = %v, want 0.45", got)
	}
	if got := c.MeanHops(); got != 3 {
		t.Errorf("MeanHops = %v, want 3", got)
	}
	if c.ControlBytes != 256 {
		t.Errorf("ControlBytes = %d, want 256", c.ControlBytes)
	}
}

func TestCollectorEmpty(t *testing.T) {
	c := NewCollector()
	if c.DeliveryRatio() != 0 || c.NetworkLoad() != 0 || c.MeanLatency() != 0 || c.MeanHops() != 0 {
		t.Error("empty collector must report zeros")
	}
}

// TestNetworkLoadNoDeliveries pins the zero-delivery sentinel: a run that
// sent control traffic but delivered nothing has no per-packet ratio, and
// the old raw-ControlTx fallback silently mixed a count into Table-I
// averages.
func TestNetworkLoadNoDeliveries(t *testing.T) {
	c := NewCollector()
	c.Control(10)
	c.Control(10)
	if got := c.NetworkLoad(); !math.IsNaN(got) {
		t.Errorf("NetworkLoad with zero deliveries = %v, want NaN sentinel", got)
	}
	// The sentinel is excluded (and counted) by Series, not averaged.
	var s Series
	s.Add(1.5)
	s.Add(c.NetworkLoad())
	s.Add(2.5)
	if s.Mean() != 2 || s.NaNs != 1 || len(s.Values) != 2 {
		t.Errorf("Series after NaN: mean=%v NaNs=%d values=%v", s.Mean(), s.NaNs, s.Values)
	}
}

func TestDropReasons(t *testing.T) {
	c := NewCollector()
	c.Drop("no-route")
	c.Drop("no-route")
	c.Drop("ttl")
	if c.DataDrops["no-route"] != 2 || c.DataDrops["ttl"] != 1 {
		t.Errorf("DataDrops = %v", c.DataDrops)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev of this set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestCI95(t *testing.T) {
	// n=10 -> t(9) = 2.262.
	xs := make([]float64, 10)
	for i := range xs {
		xs[i] = float64(i)
	}
	want := 2.262 * StdDev(xs) / math.Sqrt(10)
	if got := CI95(xs); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if CI95([]float64{5}) != 0 {
		t.Error("CI95 of singleton must be 0")
	}
	// Large n falls back to 1.96.
	big := make([]float64, 100)
	for i := range big {
		big[i] = float64(i % 10)
	}
	want = 1.96 * StdDev(big) / 10
	if got := CI95(big); math.Abs(got-want) > 1e-9 {
		t.Errorf("CI95 large-n = %v, want %v", got, want)
	}
}

// TestCI95TTableBoundary pins the Student-t table handoff: n=31 (df=30)
// is the last entry read from the table, n=32 (df=31) the first normal
// approximation. An off-by-one here would read past the table or apply
// 1.96 a row early.
func TestCI95TTableBoundary(t *testing.T) {
	mk := func(n int) []float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i % 7)
		}
		return xs
	}
	xs31 := mk(31)
	want31 := 2.042 * StdDev(xs31) / math.Sqrt(31) // last t-table row (df=30)
	if got := CI95(xs31); math.Abs(got-want31) > 1e-12 {
		t.Errorf("CI95(n=31) = %v, want t=2.042 giving %v", got, want31)
	}
	xs32 := mk(32)
	want32 := 1.96 * StdDev(xs32) / math.Sqrt(32) // df=31: normal approximation
	if got := CI95(xs32); math.Abs(got-want32) > 1e-12 {
		t.Errorf("CI95(n=32) = %v, want t=1.96 giving %v", got, want32)
	}
}

// TestSeriesOverlapDegenerate covers n<2 series, whose CI collapses to 0:
// the interval is a point, so overlap degrades to exact agreement.
func TestSeriesOverlapDegenerate(t *testing.T) {
	single := func(v float64) *Series { s := &Series{}; s.Add(v); return s }
	if !single(3).Overlaps(single(3)) {
		t.Error("identical singletons must overlap")
	}
	if single(3).Overlaps(single(4)) {
		t.Error("distinct singletons must not overlap")
	}
	empty := &Series{}
	if !empty.Overlaps(empty) {
		t.Error("two empty series (both point-intervals at 0) must overlap")
	}
	wide := &Series{}
	wide.Add(-5)
	wide.Add(5) // mean 0, wide CI straddling a singleton at 1
	if !wide.Overlaps(single(1)) || !single(1).Overlaps(wide) {
		t.Error("singleton inside a wide interval must overlap (both directions)")
	}
	if wide.Overlaps(single(100)) {
		t.Error("singleton far outside a wide interval must not overlap")
	}
}

func TestSeriesOverlap(t *testing.T) {
	a := &Series{}
	b := &Series{}
	c := &Series{}
	for i := 0; i < 10; i++ {
		a.Add(10 + float64(i%3))
		b.Add(10.5 + float64(i%3))
		c.Add(100 + float64(i%3))
	}
	if !a.Overlaps(b) {
		t.Error("close series must overlap")
	}
	if a.Overlaps(c) {
		t.Error("distant series must not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("series must overlap itself")
	}
}

package core

import (
	"errors"
	"fmt"
	"sort"
)

// Engine is a synchronous SLR route computation over a static topology. It
// executes the request/reply procedure of §II directly — flood a request
// recording the minimum predecessor label M at each relay, reply along the
// reverse path with each node relabeling via ChooseLabel — without any
// network asynchrony. It exists to validate the SLR theory in isolation and
// to reproduce the paper's Examples 1 and 2; the asynchronous protocol
// instance is SRP.
type Engine[L any] struct {
	set   Set[L]
	dest  int
	adj   map[int]map[int]struct{}
	graph *Graph[L]
	// m holds the cached request minimum per node for the in-flight
	// computation.
	m map[int]L
}

// ErrNoRoute is returned by Request when no reply can reach the requester.
var ErrNoRoute = errors.New("slr: no feasible route")

// NewEngine returns an Engine for one destination dest with the given
// self-label. All other nodes start unassigned (greatest label).
func NewEngine[L any](set Set[L], dest int, destLabel L) (*Engine[L], error) {
	g := NewGraph[L](set)
	if err := g.SetLabel(dest, destLabel); err != nil {
		return nil, fmt.Errorf("labeling destination: %w", err)
	}
	return &Engine[L]{
		set:   set,
		dest:  dest,
		adj:   map[int]map[int]struct{}{dest: {}},
		graph: g,
	}, nil
}

// AddLink inserts the bidirectional link (a, b).
func (e *Engine[L]) AddLink(a, b int) {
	for _, p := range [2][2]int{{a, b}, {b, a}} {
		s, ok := e.adj[p[0]]
		if !ok {
			s = make(map[int]struct{})
			e.adj[p[0]] = s
		}
		s[p[1]] = struct{}{}
	}
}

// Label returns node n's current label.
func (e *Engine[L]) Label(n int) L { return e.graph.Label(n) }

// SetLabel force-assigns a label (used to set up scenarios such as
// Example 2, where new nodes arrive already holding old labels). The
// non-increasing rule still applies to previously labeled nodes.
func (e *Engine[L]) SetLabel(n int, l L) error { return e.graph.SetLabel(n, l) }

// Successors exposes the successor sets for inspection.
func (e *Engine[L]) Successors(n int) []int { return e.graph.Successors(n) }

// Verify checks loop-freedom of the current successor graph.
func (e *Engine[L]) Verify() error { return e.graph.Verify() }

// neighbors returns n's neighbors in ascending order for determinism.
func (e *Engine[L]) neighbors(n int) []int {
	out := make([]int, 0, len(e.adj[n]))
	for v := range e.adj[n] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Request performs a route computation from src to the destination: a
// breadth-first flood of the request (each node processes it once, caching
// the minimum label M seen, per §II), then a reply along the reverse path
// from the first node allowed to answer. It returns the reply path from
// responder to src. The graph invariant is verified after every relabel.
func (e *Engine[L]) Request(src int) ([]int, error) {
	if src == e.dest {
		return []int{src}, nil
	}
	e.m = make(map[int]L)
	lastHop := make(map[int]int)

	// Flood. The request carries min(M, L) per Eq. 10's SLR analogue.
	e.m[src] = e.set.Greatest() // M_k = infinity at the requester
	carried := map[int]L{src: e.minOf(e.set.Greatest(), e.Label(src))}
	queue := []int{src}
	seen := map[int]struct{}{src: {}}
	var responder = -1
	// Pop by head index: re-slicing with queue[1:] keeps the consumed
	// prefix pinned in the backing array and forces append to grow it
	// repeatedly on large floods.
	for head := 0; head < len(queue) && responder < 0; head++ {
		n := queue[head]
		req := carried[n]
		for _, nb := range e.neighbors(n) {
			if _, dup := seen[nb]; dup {
				continue
			}
			seen[nb] = struct{}{}
			lastHop[nb] = n
			e.m[nb] = req // cache requested ordering as M (§II)
			if e.canReply(nb, req) {
				responder = nb
				break
			}
			carried[nb] = e.minOf(req, e.Label(nb))
			queue = append(queue, nb)
		}
	}
	if responder < 0 {
		return nil, fmt.Errorf("request from %d: %w", src, ErrNoRoute)
	}

	// Reply along the reverse path.
	path := []int{responder}
	adv := e.Label(responder)
	for n := lastHop[responder]; ; n = lastHop[n] {
		g, err := ChooseLabel(e.set, e.Label(n), e.m[n], adv)
		if err != nil {
			return nil, fmt.Errorf("relabel node %d: %w", n, err)
		}
		if err := e.graph.SetLabel(n, g); err != nil {
			return nil, err
		}
		// Taking up the advertised path: successor is the previous
		// node on the reply path.
		prev := path[len(path)-1]
		e.graph.ClearSuccessors(n) // uni-path engine: Eq. 6 by elimination
		if err := e.graph.AddSuccessor(n, prev); err != nil {
			return nil, err
		}
		if err := e.graph.Verify(); err != nil {
			return nil, fmt.Errorf("invariant broken after relabeling %d: %w", n, err)
		}
		path = append(path, n)
		adv = g
		if n == src {
			break
		}
	}
	return path, nil
}

// canReply reports whether node n may answer a request carrying label req:
// it is the destination, or it has non-zero out-degree and a label strictly
// below the requested one (§II).
func (e *Engine[L]) canReply(n int, req L) bool {
	if n == e.dest {
		return true
	}
	return len(e.graph.Successors(n)) > 0 && e.set.Less(e.Label(n), req)
}

// minOf returns the smaller of a and b in SLR label order.
func (e *Engine[L]) minOf(a, b L) L {
	if e.set.Less(b, a) {
		return b
	}
	return a
}

package core

import (
	"fmt"
	"sort"
)

// Graph is a live checker for the SLR invariants of Theorems 1–3 over one
// destination's successor graph. Simulations feed it every relabel and every
// successor change; it rejects label increases (labels must be non-increasing
// over time, the consequence of Eq. 3) and verifies on demand that every
// successor edge respects the topological order and that the graph is
// acyclic — i.e. that routing is loop-free at this instant.
type Graph[L any] struct {
	set    Set[L]
	labels map[int]L
	succ   map[int]map[int]struct{}
	// checks counts invariant verifications, for test introspection.
	checks int
}

// NewGraph returns an empty checker over the given label set. Nodes that
// were never labeled implicitly hold the greatest (unassigned) label.
func NewGraph[L any](set Set[L]) *Graph[L] {
	return &Graph[L]{
		set:    set,
		labels: make(map[int]L),
		succ:   make(map[int]map[int]struct{}),
	}
}

// Label returns node n's current label, or the greatest element if unset.
func (g *Graph[L]) Label(n int) L {
	if l, ok := g.labels[n]; ok {
		return l
	}
	return g.set.Greatest()
}

// SetLabel records a relabel of node n. It returns an error if the new label
// is greater than the node's current label: SLR labels are non-increasing
// with time, and an increase would break Theorem 1.
func (g *Graph[L]) SetLabel(n int, l L) error {
	cur := g.Label(n)
	if g.set.Less(cur, l) {
		return fmt.Errorf("node %d: label increased from %v to %v: %w", n, cur, l, ErrPredecessorOrder)
	}
	g.labels[n] = l
	return nil
}

// AddSuccessor records the successor edge (from, to). It returns an error if
// the edge violates topological order under the *current* labels; because
// labels are non-increasing, the successor's current label is an upper bound
// for any label the predecessor could have cached (Theorem 1's argument).
func (g *Graph[L]) AddSuccessor(from, to int) error {
	lf, lt := g.Label(from), g.Label(to)
	if !g.set.Less(lt, lf) {
		return fmt.Errorf("edge %d->%d: successor label %v not below %v: %w", from, to, lt, lf, ErrInfeasible)
	}
	s, ok := g.succ[from]
	if !ok {
		s = make(map[int]struct{})
		g.succ[from] = s
	}
	s[to] = struct{}{}
	return nil
}

// RemoveSuccessor drops the edge (from, to) if present.
func (g *Graph[L]) RemoveSuccessor(from, to int) {
	delete(g.succ[from], to)
}

// ClearSuccessors drops all successor edges of from.
func (g *Graph[L]) ClearSuccessors(from int) {
	delete(g.succ, from)
}

// Successors returns from's successor set in ascending node order.
func (g *Graph[L]) Successors(from int) []int {
	out := make([]int, 0, len(g.succ[from]))
	for n := range g.succ[from] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Checks returns how many times Verify has run.
func (g *Graph[L]) Checks() int { return g.checks }

// Verify checks the full invariant: every edge (i, j) satisfies
// label(j) < label(i) (topological order, which implies acyclicity,
// Theorem 3), and — defense in depth — an explicit DFS confirms there is no
// directed cycle.
func (g *Graph[L]) Verify() error {
	g.checks++
	for from, set := range g.succ {
		lf := g.Label(from)
		for to := range set {
			if !g.set.Less(g.Label(to), lf) {
				return fmt.Errorf("edge %d->%d: label %v not below %v: topological order broken",
					from, to, g.Label(to), lf)
			}
		}
	}
	if cycle := g.findCycle(); cycle != nil {
		return fmt.Errorf("routing loop: cycle %v", cycle)
	}
	return nil
}

// findCycle runs an iterative three-color DFS over the successor graph and
// returns a cycle as a node list, or nil.
func (g *Graph[L]) findCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(g.succ))
	parent := make(map[int]int)

	var roots []int
	for n := range g.succ {
		roots = append(roots, n)
	}
	sort.Ints(roots)

	for _, root := range roots {
		if color[root] != white {
			continue
		}
		type frame struct {
			node int
			next []int
		}
		stack := []frame{{root, g.Successors(root)}}
		color[root] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			if len(top.next) == 0 {
				color[top.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			n := top.next[0]
			top.next = top.next[1:]
			switch color[n] {
			case white:
				color[n] = gray
				parent[n] = top.node
				stack = append(stack, frame{n, g.Successors(n)})
			case gray:
				// Found a back edge top.node -> n: extract cycle.
				cycle := []int{n}
				for v := top.node; v != n; v = parent[v] {
					cycle = append(cycle, v)
				}
				cycle = append(cycle, n)
				return cycle
			}
		}
	}
	return nil
}

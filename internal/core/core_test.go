package core

import (
	"errors"
	"testing"

	"slr/internal/frac"
	"slr/internal/label"
)

var fs = FracSet{}

func TestCheckOrder(t *testing.T) {
	half := frac.MustNew(1, 2)
	third := frac.MustNew(1, 3)
	twoThirds := frac.MustNew(2, 3)
	threeQuarters := frac.MustNew(3, 4)

	tests := []struct {
		name           string
		g, cur, m, adv frac.F
		smax           *frac.F
		wantErr        error
	}{
		{"valid relabel", half, twoThirds, twoThirds, third, nil, nil},
		{"valid with successors", half, twoThirds, twoThirds, third, &third, nil},
		{"greatest element rejected", frac.One, frac.One, frac.One, half, nil, ErrNotFinite},
		{"label increase rejected", threeQuarters, half, frac.One, third, nil, ErrPredecessorOrder},
		{"not below request min", twoThirds, twoThirds, half, third, nil, ErrRequestOrder},
		{"equal to request min", half, half, half, third, nil, ErrRequestOrder},
		{"infeasible advertisement", third, half, twoThirds, half, nil, ErrInfeasible},
		{"successor out of order", half, twoThirds, twoThirds, third, &twoThirds, ErrSuccessorOrder},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckOrder(fs, tt.g, tt.cur, tt.m, tt.adv, tt.smax)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("CheckOrder = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestChooseLabelKeepsCurrent(t *testing.T) {
	// Example 2, node G: cur=2/3, M=3/4, adv=5/8 -> keep 2/3.
	got, err := ChooseLabel(fs, frac.MustNew(2, 3), frac.MustNew(3, 4), frac.MustNew(5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got != frac.MustNew(2, 3) {
		t.Fatalf("got %v, want 2/3 (keep)", got)
	}
}

func TestChooseLabelSplits(t *testing.T) {
	// Example 2, node B: cur=2/3, M=2/3, adv=1/2 -> split to 3/5.
	got, err := ChooseLabel(fs, frac.MustNew(2, 3), frac.MustNew(2, 3), frac.MustNew(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got != frac.MustNew(3, 5) {
		t.Fatalf("got %v, want 3/5 (split)", got)
	}
}

func TestChooseLabelNextElement(t *testing.T) {
	// Unassigned node with M=1/1 receiving adv 0/1 takes next-element 1/2.
	got, err := ChooseLabel(fs, frac.One, frac.One, frac.Zero)
	if err != nil {
		t.Fatal(err)
	}
	if got != frac.MustNew(1, 2) {
		t.Fatalf("got %v, want 1/2", got)
	}
}

func TestChooseLabelInfeasible(t *testing.T) {
	_, err := ChooseLabel(fs, frac.MustNew(1, 3), frac.One, frac.MustNew(1, 2))
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestChooseLabelMaintainsOrderProperty(t *testing.T) {
	// Any successful ChooseLabel result must pass CheckOrder.
	cases := []struct{ cur, m, adv frac.F }{
		{frac.One, frac.One, frac.Zero},
		{frac.MustNew(2, 3), frac.MustNew(2, 3), frac.MustNew(1, 2)},
		{frac.MustNew(3, 4), frac.MustNew(2, 3), frac.MustNew(3, 5)},
		{frac.MustNew(2, 3), frac.MustNew(3, 4), frac.MustNew(5, 8)},
		{frac.MustNew(3, 4), frac.One, frac.MustNew(2, 3)},
		{frac.MustNew(7, 9), frac.MustNew(7, 9), frac.MustNew(3, 4)},
	}
	for _, c := range cases {
		g, err := ChooseLabel(fs, c.cur, c.m, c.adv)
		if err != nil {
			t.Errorf("ChooseLabel(%v,%v,%v) failed: %v", c.cur, c.m, c.adv, err)
			continue
		}
		// Eq. 4 is relaxed to G <= cur < M in the keep case; CheckOrder
		// demands G < M which keep also satisfies since cur < M there.
		if err := CheckOrder(fs, g, c.cur, c.m, c.adv, nil); err != nil {
			t.Errorf("ChooseLabel(%v,%v,%v) = %v violates order: %v", c.cur, c.m, c.adv, g, err)
		}
	}
}

func TestFareySetSplitsSimplest(t *testing.T) {
	fy := FareySet{}
	got, ok := fy.Split(frac.MustNew(1, 2), frac.MustNew(2, 3))
	if !ok || got != frac.MustNew(3, 5) {
		t.Fatalf("Farey split = %v, want 3/5", got)
	}
	// Unlike the mediant, Farey splits of wide intervals stay simple.
	got, ok = fy.Split(frac.MustNew(5, 8), frac.MustNew(7, 8))
	if !ok {
		t.Fatal("Farey split overflowed")
	}
	if got != frac.MustNew(2, 3) {
		t.Fatalf("Farey split = %v, want 2/3 (simplest in (5/8,7/8))", got)
	}
}

func TestOrderSetDirection(t *testing.T) {
	os := OrderSet{}
	dst := label.Destination(1)
	mid := label.Order{SN: 1, FD: frac.MustNew(1, 2)}
	if !os.Less(dst, mid) {
		t.Error("destination must be SLR-less than interior label")
	}
	if os.Less(mid, dst) {
		t.Error("interior label must not be below destination")
	}
	if !os.Less(mid, os.Greatest()) {
		t.Error("any assigned label must be below Unassigned")
	}
	// Fresher sequence number sits lower in the DAG.
	fresh := label.Order{SN: 2, FD: frac.MustNew(3, 4)}
	if !os.Less(fresh, mid) {
		t.Error("higher seqno must be SLR-less")
	}
	// Split must land strictly between in SLR order.
	m, ok := os.Split(dst, mid)
	if !ok {
		t.Fatal("OrderSet.Split failed")
	}
	if !os.Less(dst, m) || !os.Less(m, mid) {
		t.Fatalf("split %v not between %v and %v", m, dst, mid)
	}
	n, ok := os.Next(dst)
	if !ok || !os.Less(dst, n) {
		t.Fatalf("OrderSet.Next(%v) = %v not above", dst, n)
	}
}

func TestGraphRejectsLabelIncrease(t *testing.T) {
	g := NewGraph[frac.F](fs)
	if err := g.SetLabel(1, frac.MustNew(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLabel(1, frac.MustNew(2, 3)); err == nil {
		t.Fatal("label increase accepted")
	}
	// Equal and lower are fine.
	if err := g.SetLabel(1, frac.MustNew(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := g.SetLabel(1, frac.MustNew(1, 3)); err != nil {
		t.Fatal(err)
	}
}

func TestGraphRejectsOutOfOrderEdge(t *testing.T) {
	g := NewGraph[frac.F](fs)
	mustSet(t, g, 1, frac.MustNew(1, 2))
	mustSet(t, g, 2, frac.MustNew(2, 3))
	if err := g.AddSuccessor(1, 2); err == nil {
		t.Fatal("edge to larger label accepted")
	}
	if err := g.AddSuccessor(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDetectsCycle(t *testing.T) {
	g := NewGraph[frac.F](fs)
	// Force edges in directly to simulate a corrupted state.
	g.succ = map[int]map[int]struct{}{
		1: {2: {}},
		2: {3: {}},
		3: {1: {}},
	}
	if err := g.Verify(); err == nil {
		t.Fatal("cycle not detected")
	}
}

func TestGraphVerifyCountsAndAccessors(t *testing.T) {
	g := NewGraph[frac.F](fs)
	mustSet(t, g, 1, frac.MustNew(1, 2))
	mustSet(t, g, 2, frac.MustNew(2, 3))
	if err := g.AddSuccessor(2, 1); err != nil {
		t.Fatal(err)
	}
	if got := g.Successors(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Successors = %v", got)
	}
	_ = g.Verify()
	_ = g.Verify()
	if g.Checks() != 2 {
		t.Fatalf("Checks = %d, want 2", g.Checks())
	}
	g.RemoveSuccessor(2, 1)
	if got := g.Successors(2); len(got) != 0 {
		t.Fatalf("Successors after remove = %v", got)
	}
}

func mustSet(t *testing.T, g *Graph[frac.F], n int, f frac.F) {
	t.Helper()
	if err := g.SetLabel(n, f); err != nil {
		t.Fatal(err)
	}
}

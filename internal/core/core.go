// Package core implements the Split Label Routing (SLR) framework — the
// paper's primary contribution (§II).
//
// SLR keeps per-destination node labels in topological order over a *dense*
// ordinal set: between any two labels there is always another label, so a
// node can be inserted into an existing DAG by "splitting" labels without
// relabeling its predecessors. The package provides:
//
//   - Set: the ordinal label-set abstraction (dense strict order with a
//     greatest element and a next-element operator).
//   - CheckOrder: Definition 1, the four maintain-order inequalities
//     (Eqs. 3–6) every relabel must satisfy.
//   - ChooseLabel: the constructive label choice of Theorem 4, used by the
//     reply (advertisement) phase.
//   - Graph: a live invariant checker for Theorems 1–3 (predecessor and
//     successor ordering, loop-freedom at every instant).
//   - Engine: a synchronous SLR route computation over a static topology,
//     reproducing the paper's Examples 1 and 2 exactly.
//
// The production asynchronous instance of SLR is SRP, in
// slr/internal/routing/srp, built on the Order label set of
// slr/internal/label.
package core

import (
	"errors"
	"fmt"

	"slr/internal/frac"
	"slr/internal/label"
)

// Set is the label ordinal set L of §II: a dense strict order with a
// greatest element and a next-element operator. Less is the SLR label order
// in which the destination holds the minimum label and every directed edge
// (i, j) of the successor DAG satisfies Less(label(j), label(i)).
type Set[L any] interface {
	// Less reports the strict label order a < b.
	Less(a, b L) bool
	// Equal reports label equality.
	Equal(a, b L) bool
	// Greatest returns the greatest element (the unassigned label).
	Greatest() L
	// Next returns the next-element of a (a < Next(a)); ok is false when
	// a is the greatest element or the set's representation overflows.
	Next(a L) (next L, ok bool)
	// Split returns a label strictly between lo and hi; ok is false when
	// lo >= hi or the representation overflows. Density of the set
	// guarantees existence whenever lo < hi and no overflow occurs.
	Split(lo, hi L) (mid L, ok bool)
}

// Maintain-order violations, one per inequality of Definition 1.
var (
	// ErrNotFinite: the proposed label is the greatest element (G = ∞).
	ErrNotFinite = errors.New("slr: proposed label is the greatest element")
	// ErrPredecessorOrder: Eq. 3 violated (G > current label).
	ErrPredecessorOrder = errors.New("slr: label increase violates predecessor order (eq. 3)")
	// ErrRequestOrder: Eq. 4 violated (G >= cached minimum request label M).
	ErrRequestOrder = errors.New("slr: label not below cached request minimum (eq. 4)")
	// ErrInfeasible: Eq. 5 violated (advertised label >= G).
	ErrInfeasible = errors.New("slr: advertisement not below proposed label (eq. 5)")
	// ErrSuccessorOrder: Eq. 6 violated (max successor label >= G).
	ErrSuccessorOrder = errors.New("slr: proposed label not above successor labels (eq. 6)")
)

// CheckOrder verifies Definition 1 for a proposed new label g at a node with
// current label cur, cached request minimum m, advertised label adv, and
// maximum successor label smax. A nil smax means the successor set is empty
// (Eq. 6 vacuous; in the paper smax is then the least element).
//
// It returns nil when g maintains order, or the first violated inequality.
func CheckOrder[L any](s Set[L], g, cur, m, adv L, smax *L) error {
	if s.Equal(g, s.Greatest()) {
		return ErrNotFinite
	}
	if s.Less(cur, g) { // violates G <= L_i
		return ErrPredecessorOrder
	}
	if !s.Less(g, m) { // violates G < M_i
		return ErrRequestOrder
	}
	if !s.Less(adv, g) { // violates L? < G
		return ErrInfeasible
	}
	if smax != nil && !s.Less(*smax, g) { // violates S_max < G
		return ErrSuccessorOrder
	}
	return nil
}

// ChooseLabel implements the label choice a node makes when it accepts an
// advertisement (Theorem 4). Given the node's current label cur, its cached
// request minimum m, and the advertised label adv (which must satisfy
// adv < cur for the advertisement to be feasible), it returns a label G with
// adv < G < min(m, cur) when a relabel is needed, keeps cur when cur already
// maintains order, and fails only on representation overflow.
//
// The selection mirrors §II: "generally choosing the next-element L?+, so
// long as it maintains order. Otherwise, node i will split the ordering of
// L? and the cached M_i."
func ChooseLabel[L any](s Set[L], cur, m, adv L) (L, error) {
	var zero L
	if !s.Less(adv, cur) {
		return zero, fmt.Errorf("choose label: %w", ErrInfeasible)
	}
	// Keep the current label when it already satisfies Eq. 4 (nodes G and
	// H of Example 2).
	if s.Less(cur, m) {
		return cur, nil
	}
	// Here cur >= m, so min(m, cur) = m bounds the new label from above.
	bound := m
	// Prefer the next-element of the advertisement when it fits.
	if next, ok := s.Next(adv); ok && s.Less(next, bound) {
		return next, nil
	}
	// Otherwise split the advertisement against the bound; density
	// guarantees existence absent overflow.
	if mid, ok := s.Split(adv, bound); ok {
		return mid, nil
	}
	return zero, fmt.Errorf("choose label: ordinal set overflow between %v and %v", adv, bound)
}

// FracSet is the proper-fraction ordinal set of §II used by the paper's
// examples: least element 0/1, greatest element 1/1, mediant interpolation.
type FracSet struct{}

var _ Set[frac.F] = FracSet{}

// Less reports a < b numerically.
func (FracSet) Less(a, b frac.F) bool { return a.Less(b) }

// Equal reports numeric equality.
func (FracSet) Equal(a, b frac.F) bool { return a.Equal(b) }

// Greatest returns 1/1.
func (FracSet) Greatest() frac.F { return frac.One }

// Next returns the next-element (m+1)/(n+1).
func (FracSet) Next(a frac.F) (frac.F, bool) { return a.Next() }

// Split returns the mediant of lo and hi.
func (FracSet) Split(lo, hi frac.F) (frac.F, bool) {
	if !lo.Less(hi) {
		return frac.F{}, false
	}
	return frac.Mediant(lo, hi)
}

// FareySet is FracSet with the Stern–Brocot reduced-mediant interpolation of
// §VI (future work in the paper): Split returns the *simplest* fraction in
// the interval, which keeps denominators minimal and postpones overflow far
// beyond the 45-split mediant bound.
type FareySet struct{}

var _ Set[frac.F] = FareySet{}

// Less reports a < b numerically.
func (FareySet) Less(a, b frac.F) bool { return a.Less(b) }

// Equal reports numeric equality.
func (FareySet) Equal(a, b frac.F) bool { return a.Equal(b) }

// Greatest returns 1/1.
func (FareySet) Greatest() frac.F { return frac.One }

// Next returns the next-element (m+1)/(n+1).
func (FareySet) Next(a frac.F) (frac.F, bool) { return a.Next() }

// Split returns the simplest fraction strictly between lo and hi.
func (FareySet) Split(lo, hi frac.F) (frac.F, bool) { return frac.Between(lo, hi) }

// OrderSet adapts SRP's composite ordering O = (sn, F) to the SLR label
// order. The SLR order is the *reverse* of the precedence relation ≺ of
// Definition 5: O_i ≺ O_j reads "j is a feasible successor of i", i.e. j
// holds the smaller SLR label, so Less(a, b) ⇔ b ≺ a.
type OrderSet struct{}

var _ Set[label.Order] = OrderSet{}

// Less reports that a is below b in the DAG (b ≺ a).
func (OrderSet) Less(a, b label.Order) bool { return b.Precedes(a) }

// Equal reports label equality.
func (OrderSet) Equal(a, b label.Order) bool { return a.Equal(b) }

// Greatest returns the unassigned ordering (0, (1,1)).
func (OrderSet) Greatest() label.Order { return label.Unassigned }

// Next returns a label just above a in the DAG: O + 1/1.
func (OrderSet) Next(a label.Order) (label.Order, bool) { return a.NextElement() }

// Split returns an ordering strictly between lo and hi.
func (OrderSet) Split(lo, hi label.Order) (label.Order, bool) {
	// lo < hi in SLR order means hi ≺ lo; label.Split wants the
	// preceding element first and returns m with hi ≺ m ≺ lo.
	return label.Split(hi, lo)
}

package core_test

import (
	"fmt"

	"slr/internal/core"
	"slr/internal/frac"
)

// Example reproduces the paper's Example 1 (Fig. 1): labeling a chain
// E-D-C-B-A-T by a single request/reply computation.
func Example() {
	const (
		nT = iota
		nA
		nB
		nC
		nD
		nE
	)
	e, err := core.NewEngine[frac.F](core.FracSet{}, nT, frac.Zero)
	if err != nil {
		fmt.Println(err)
		return
	}
	e.AddLink(nT, nA)
	e.AddLink(nA, nB)
	e.AddLink(nB, nC)
	e.AddLink(nC, nD)
	e.AddLink(nD, nE)
	if _, err := e.Request(nE); err != nil {
		fmt.Println(err)
		return
	}
	for _, n := range []int{nE, nD, nC, nB, nA, nT} {
		fmt.Print(e.Label(n), " ")
	}
	fmt.Println()
	// Output: 5/6 4/5 3/4 2/3 1/2 0/1
}

// ExampleChooseLabel shows the Theorem 4 label choice: keep the current
// label when it satisfies the request bound, otherwise split.
func ExampleChooseLabel() {
	set := core.FracSet{}
	// Node G of the paper's Example 2: current 2/3, request bound 3/4,
	// advertised 5/8 — keeps its label.
	g, _ := core.ChooseLabel[frac.F](set, frac.MustNew(2, 3), frac.MustNew(3, 4), frac.MustNew(5, 8))
	fmt.Println(g)
	// Node B: current 2/3, bound 2/3, advertised 1/2 — splits.
	b, _ := core.ChooseLabel[frac.F](set, frac.MustNew(2, 3), frac.MustNew(2, 3), frac.MustNew(1, 2))
	fmt.Println(b)
	// Output:
	// 2/3
	// 3/5
}

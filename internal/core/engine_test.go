package core

import (
	"errors"
	"math/rand"
	"testing"

	"slr/internal/frac"
)

// Node ids for the paper's figures: T=0, A=1, B=2, C=3, D=4, E=5 (Fig. 1)
// and F=6, G=7, H=8 (Fig. 2).
const (
	nT = iota
	nA
	nB
	nC
	nD
	nE
	nF
	nG
	nH
)

func fig1Engine(t *testing.T) *Engine[frac.F] {
	t.Helper()
	e, err := NewEngine[frac.F](FracSet{}, nT, frac.Zero)
	if err != nil {
		t.Fatal(err)
	}
	e.AddLink(nT, nA)
	e.AddLink(nA, nB)
	e.AddLink(nB, nC)
	e.AddLink(nC, nD)
	e.AddLink(nD, nE)
	return e
}

func TestExample1InitialLabeling(t *testing.T) {
	// Paper Example 1 / Fig. 1: E requests a route to T over the chain
	// E-D-C-B-A-T; the final topological order is
	// 5/6 -> 4/5 -> 3/4 -> 2/3 -> 1/2 -> 0/1.
	e := fig1Engine(t)
	path, err := e.Request(nE)
	if err != nil {
		t.Fatal(err)
	}
	wantPath := []int{nT, nA, nB, nC, nD, nE}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range wantPath {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
	want := map[int]frac.F{
		nT: frac.Zero,
		nA: frac.MustNew(1, 2),
		nB: frac.MustNew(2, 3),
		nC: frac.MustNew(3, 4),
		nD: frac.MustNew(4, 5),
		nE: frac.MustNew(5, 6),
	}
	for n, w := range want {
		if got := e.Label(n); got != w {
			t.Errorf("label[%d] = %v, want %v", n, got, w)
		}
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestExample2Relabeling(t *testing.T) {
	// Paper Example 2 / Fig. 2: after Fig. 1's labeling, nodes F, G, H
	// appear holding stale labels (3/4, 2/3, 3/4) with empty successor
	// sets, connected H-G-F-B. H requests a route; final labels are
	// H=3/4, G=2/3, F=5/8, B=3/5, A=1/2, T=0/1.
	e := fig1Engine(t)
	if _, err := e.Request(nE); err != nil {
		t.Fatal(err)
	}
	e.AddLink(nH, nG)
	e.AddLink(nG, nF)
	e.AddLink(nF, nB)
	for n, l := range map[int]frac.F{
		nF: frac.MustNew(3, 4),
		nG: frac.MustNew(2, 3),
		nH: frac.MustNew(3, 4),
	} {
		if err := e.SetLabel(n, l); err != nil {
			t.Fatal(err)
		}
	}
	path, err := e.Request(nH)
	if err != nil {
		t.Fatal(err)
	}
	// Reply must come from A (B cannot answer: L_B = 2/3 is not below
	// the carried request label 2/3).
	if path[0] != nA {
		t.Fatalf("responder = %d, want A(%d); path %v", path[0], nA, path)
	}
	want := map[int]frac.F{
		nT: frac.Zero,
		nA: frac.MustNew(1, 2),
		nB: frac.MustNew(3, 5),
		nF: frac.MustNew(5, 8),
		nG: frac.MustNew(2, 3),
		nH: frac.MustNew(3, 4),
	}
	for n, w := range want {
		if got := e.Label(n); got != w {
			t.Errorf("label[%d] = %v, want %v", n, got, w)
		}
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRequestFromDestination(t *testing.T) {
	e := fig1Engine(t)
	path, err := e.Request(nT)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != nT {
		t.Fatalf("path = %v, want [T]", path)
	}
}

func TestRequestNoRoute(t *testing.T) {
	e, err := NewEngine[frac.F](FracSet{}, nT, frac.Zero)
	if err != nil {
		t.Fatal(err)
	}
	// Island: 10-11 disconnected from T.
	e.AddLink(10, 11)
	if _, err := e.Request(10); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestRepeatedRequestsStayLoopFree(t *testing.T) {
	// Random connected topologies; every node requests repeatedly; the
	// invariant checker must never fire (Theorem 3).
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e, err := NewEngine[frac.F](FracSet{}, 0, frac.Zero)
		if err != nil {
			t.Fatal(err)
		}
		const n = 25
		for i := 1; i < n; i++ {
			// Connect to a random earlier node: connected graph.
			e.AddLink(i, rng.Intn(i))
			// Plus a random extra edge for path diversity.
			e.AddLink(rng.Intn(n), rng.Intn(n))
		}
		for trial := 0; trial < 40; trial++ {
			src := 1 + rng.Intn(n-1)
			if _, err := e.Request(src); err != nil && !errors.Is(err, ErrNoRoute) {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
			if err := e.Verify(); err != nil {
				t.Fatalf("seed %d trial %d: %v", seed, trial, err)
			}
		}
	}
}

func TestEngineWithFareySet(t *testing.T) {
	// The Farey variant must satisfy the same examples with simpler
	// fractions: it is a drop-in Set implementation.
	e, err := NewEngine[frac.F](FareySet{}, nT, frac.Zero)
	if err != nil {
		t.Fatal(err)
	}
	e.AddLink(nT, nA)
	e.AddLink(nA, nB)
	e.AddLink(nB, nC)
	if _, err := e.Request(nC); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
	// Labels must be strictly increasing along the chain.
	if !e.Label(nA).Less(e.Label(nB)) || !e.Label(nB).Less(e.Label(nC)) {
		t.Fatalf("labels out of order: A=%v B=%v C=%v", e.Label(nA), e.Label(nB), e.Label(nC))
	}
}

func TestSelfLinkIgnoredInRouting(t *testing.T) {
	e := fig1Engine(t)
	e.AddLink(nE, nE) // pathological self link must not break anything
	if _, err := e.Request(nE); err != nil {
		t.Fatal(err)
	}
	if err := e.Verify(); err != nil {
		t.Fatal(err)
	}
}

package frac

import "math"

// This file holds Stern–Brocot tree utilities behind the §VI future-work
// extension: reduced-fraction interpolation. Every reduced proper fraction
// appears exactly once in the left half of the Stern–Brocot tree; Between
// (in frac.go) walks it to find the simplest fraction in an interval, and
// the functions here expose the tree structure itself, which the ablation
// benchmarks use to quantify how much headroom Farey splits retain.

// Parents returns the left and right Stern–Brocot ancestors of f — the
// bounds whose mediant is exactly f's reduced form. For 0/1 and 1/1 ok is
// false: they are roots of the bounding interval, not tree nodes.
func Parents(f F) (lo, hi F, ok bool) {
	if !f.Valid() || f == Zero || f == One {
		return F{}, F{}, false
	}
	f = f.Reduce()
	// Walk from the root toward f, tracking the enclosing interval
	// [la/lb, ra/rb). The final interval endpoints are the parents.
	var la, lb uint64 = 0, 1
	var ra, rb uint64 = 1, 0
	for {
		ma, mb := la+ra, lb+rb
		m := F{Num: uint32(ma), Den: uint32(mb)}
		switch f.Cmp(m) {
		case 0:
			// ra/rb may be the pseudo-fraction 1/0 (infinity); report
			// it as One, the greatest label, which is the effective
			// right bound for proper fractions.
			hi = One
			if rb != 0 {
				hi = F{Num: uint32(ra), Den: uint32(rb)}
			}
			return F{Num: uint32(la), Den: uint32(lb)}, hi, true
		case 1: // f > m: go right
			la, lb = ma, mb
		default: // f < m: go left
			ra, rb = ma, mb
		}
		if ma > math.MaxUint32 || mb > math.MaxUint32 {
			return F{}, F{}, false
		}
	}
}

// Depth returns the Stern–Brocot tree depth of f's reduced form (the root
// 1/2 of the left subtree has depth 1 counting from the proper-fraction
// root). It is the number of mediant steps needed to construct f from the
// interval bounds — the "split budget" a label at f has consumed. ok is
// false for the sentinels.
func Depth(f F) (int, bool) {
	if !f.Valid() || f == Zero || f == One {
		return 0, false
	}
	f = f.Reduce()
	// Proper fractions all lie in the left subtree, so the walk starts
	// from the interval [0/1, 1/1] and its root mediant 1/2.
	var la, lb uint64 = 0, 1
	var ra, rb uint64 = 1, 1
	depth := 0
	for {
		ma, mb := la+ra, lb+rb
		depth++
		m := F{Num: uint32(ma), Den: uint32(mb)}
		switch f.Cmp(m) {
		case 0:
			return depth, true
		case 1:
			la, lb = ma, mb
		default:
			ra, rb = ma, mb
		}
		if ma > math.MaxUint32 || mb > math.MaxUint32 {
			return depth, false
		}
	}
}

// FareySequence returns the Farey sequence F_n: all reduced fractions in
// [0/1, 1/1] with denominator at most n, in increasing order. It uses the
// classic next-term recurrence and is O(|F_n|).
func FareySequence(n uint32) []F {
	if n == 0 {
		return nil
	}
	out := []F{Zero}
	// Standard recurrence from (0/1, 1/n).
	a, b, c, d := uint64(0), uint64(1), uint64(1), uint64(n)
	for c <= uint64(n) {
		out = append(out, F{Num: uint32(c), Den: uint32(d)})
		k := (uint64(n) + b) / d
		a, b, c, d = c, d, k*c-a, k*d-b
	}
	return out
}

// Package frac implements the proper-fraction ordinal set used by SRP.
//
// A proper fraction m/n consists of positive 32-bit integers with m < n,
// ranging over the open interval (0, 1). Two sentinels extend the range:
// Zero = 0/1 (the destination's minimum label) and One = 1/1 (the greatest
// element, i.e. the label of an unassigned node). The set is dense: the
// mediant (m+p)/(n+q) of m/n < p/q lies strictly between them (Eq. 1 of the
// paper), and the next-element of m/n is (m+1)/(n+1) (Eq. 2), the mediant
// with 1/1.
//
// Because components are fixed-width, a chain of mediants eventually
// overflows; the paper bounds the number of splits between two fractions by
// the Fibonacci sequence (at least 45 splits in 32 bits). All operations
// report overflow instead of wrapping.
package frac

import (
	"fmt"
	"math"
)

// F is a fraction Num/Den. The zero value is invalid; use Zero, One, or New.
type F struct {
	Num uint32
	Den uint32
}

// Sentinels for the closed label range.
var (
	// Zero is 0/1, the least element and the destination's self-label.
	Zero = F{Num: 0, Den: 1}
	// One is 1/1, the greatest element, representing "unassigned".
	One = F{Num: 1, Den: 1}
)

// New returns the fraction num/den. It returns an error unless the value is
// a proper fraction (0 < num < den) or one of the sentinels 0/1 and 1/1.
func New(num, den uint32) (F, error) {
	f := F{Num: num, Den: den}
	if !f.Valid() {
		return F{}, fmt.Errorf("frac: %d/%d is not a proper fraction or sentinel", num, den)
	}
	return f, nil
}

// MustNew is New for constants in tests and examples; it panics on error.
func MustNew(num, den uint32) F {
	f, err := New(num, den)
	if err != nil {
		panic(err)
	}
	return f
}

// Valid reports whether f is a proper fraction or a sentinel.
func (f F) Valid() bool {
	if f.Den == 0 {
		return false
	}
	if f == Zero || f == One {
		return true
	}
	return f.Num > 0 && f.Num < f.Den
}

// String renders f as "m/n".
func (f F) String() string { return fmt.Sprintf("%d/%d", f.Num, f.Den) }

// Float returns the numeric value of f for display and QoS heuristics only;
// the protocol itself never compares floats.
func (f F) Float() float64 { return float64(f.Num) / float64(f.Den) }

// Less reports f < g by exact cross multiplication in 64 bits.
func (f F) Less(g F) bool {
	return uint64(f.Num)*uint64(g.Den) < uint64(g.Num)*uint64(f.Den)
}

// Equal reports numeric equality (2/4 equals 1/2).
func (f F) Equal(g F) bool {
	return uint64(f.Num)*uint64(g.Den) == uint64(g.Num)*uint64(f.Den)
}

// Cmp returns -1, 0, or 1 as f is less than, equal to, or greater than g.
func (f F) Cmp(g F) int {
	lhs := uint64(f.Num) * uint64(g.Den)
	rhs := uint64(g.Num) * uint64(f.Den)
	switch {
	case lhs < rhs:
		return -1
	case lhs > rhs:
		return 1
	default:
		return 0
	}
}

// SplitOverflows reports whether the mediant of f and g cannot be
// represented in 32 bits. This is the overflow test of Procedure 2 (Eq. 11)
// and Algorithm 1 lines 6 and 11: the relay checks n+q before splitting.
func SplitOverflows(f, g F) bool {
	return uint64(f.Num)+uint64(g.Num) > math.MaxUint32 ||
		uint64(f.Den)+uint64(g.Den) > math.MaxUint32
}

// Mediant returns the mediant (m+p)/(n+q) of f and g (Eq. 1). The mediant of
// f < g lies strictly between them. ok is false on 32-bit overflow, in which
// case the caller must request a path reset or drop the advertisement.
func Mediant(f, g F) (med F, ok bool) {
	if SplitOverflows(f, g) {
		return F{}, false
	}
	return F{Num: f.Num + g.Num, Den: f.Den + g.Den}, true
}

// Next returns the next-element (m+1)/(n+1) of f (Eq. 2), the mediant of f
// and 1/1. ok is false on overflow and always false for One, which has no
// next-element.
func (f F) Next() (next F, ok bool) {
	if f == One {
		return F{}, false
	}
	return Mediant(f, One)
}

// Add returns (m+p)/(n+q) without the betweenness interpretation; it backs
// Definition 6 (ordering addition O + p/q). ok is false on overflow.
func Add(f, g F) (F, bool) { return Mediant(f, g) }

// Reduce returns f with numerator and denominator divided by their GCD.
// SRP as published does not reduce fractions (§VI), but reduction preserves
// numeric order, so it is exposed for the Farey-tree extension and tests.
func (f F) Reduce() F {
	if f.Num == 0 {
		return Zero
	}
	g := gcd(f.Num, f.Den)
	return F{Num: f.Num / g, Den: f.Den / g}
}

func gcd(a, b uint32) uint32 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Between returns the simplest fraction strictly between lo and hi, walking
// the Stern–Brocot tree. This implements the paper's §VI future-work item:
// an interpolation of relatively prime fractions that yields a relatively
// prime fraction, keeping denominators minimal and postponing overflow far
// beyond the 45-split mediant bound. ok is false when no proper fraction
// fits (lo >= hi numerically) or an intermediate step would overflow.
func Between(lo, hi F) (F, bool) {
	if !lo.Less(hi) {
		return F{}, false
	}
	// Walk the Stern–Brocot tree from the root 1/1 with bounds
	// [0/1, 1/0). Invariant: current = (la+ra)/(lb+rb) is the simplest
	// fraction inside the current interval.
	var la, lb uint64 = 0, 1 // left bound la/lb
	var ra, rb uint64 = 1, 0 // right bound ra/rb (represents infinity at start)
	for {
		ma, mb := la+ra, lb+rb
		if ma > math.MaxUint32 || mb > math.MaxUint32 {
			return F{}, false
		}
		m := F{Num: uint32(ma), Den: uint32(mb)}
		switch {
		case !lo.Less(m): // m <= lo: go right
			la, lb = ma, mb
		case !m.Less(hi): // m >= hi: go left
			ra, rb = ma, mb
		default:
			return m, true
		}
	}
}

// SplitDepth returns how many successive mediant splits with One are
// possible starting from f before 32-bit overflow. It quantifies the
// paper's Fibonacci bound: from 0/1 the depth against a fresh reply chain
// is at least 45.
func SplitDepth(f F) int {
	depth := 0
	cur := f
	for {
		next, ok := cur.Next()
		if !ok {
			return depth
		}
		cur = next
		depth++
	}
}

// MaxMediantChain returns the length of the worst-case mediant chain
// starting from the pair (a, b): each step replaces an alternating endpoint
// with the mediant, which makes the components grow like the Fibonacci
// sequence — the fastest possible growth, yielding the paper's "at least 45
// times" figure for 32-bit integers.
func MaxMediantChain(a, b F) int {
	n := 0
	lo, hi := a, b
	if hi.Less(lo) {
		lo, hi = hi, lo
	}
	for {
		m, ok := Mediant(lo, hi)
		if !ok {
			return n
		}
		if n%2 == 0 {
			lo = m
		} else {
			hi = m
		}
		n++
	}
}

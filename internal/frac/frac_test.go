package frac

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name     string
		num, den uint32
		wantErr  bool
	}{
		{"zero sentinel", 0, 1, false},
		{"one sentinel", 1, 1, false},
		{"half", 1, 2, false},
		{"proper", 2, 3, false},
		{"unreduced proper", 2, 4, false},
		{"improper", 3, 2, true},
		{"zero den", 1, 0, true},
		{"zero over two", 0, 2, true},
		{"equal non-unit", 5, 5, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.num, tt.den)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%d,%d) err = %v, wantErr %v", tt.num, tt.den, err, tt.wantErr)
			}
		})
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(3,2) did not panic")
		}
	}()
	MustNew(3, 2)
}

func TestLess(t *testing.T) {
	tests := []struct {
		a, b F
		want bool
	}{
		{Zero, One, true},
		{One, Zero, false},
		{Zero, Zero, false},
		{MustNew(1, 2), MustNew(2, 3), true},
		{MustNew(2, 3), MustNew(1, 2), false},
		{MustNew(1, 2), MustNew(2, 4), false}, // equal values
		{MustNew(2, 4), MustNew(1, 2), false},
		{MustNew(3, 4), MustNew(5, 6), true},
		{Zero, MustNew(1, 1000000000), true},
		{MustNew(999999999, 1000000000), One, true},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCmpAndEqual(t *testing.T) {
	if MustNew(1, 2).Cmp(MustNew(2, 4)) != 0 {
		t.Error("1/2 should compare equal to 2/4")
	}
	if !MustNew(1, 2).Equal(MustNew(2, 4)) {
		t.Error("1/2 should Equal 2/4")
	}
	if Zero.Cmp(One) != -1 || One.Cmp(Zero) != 1 {
		t.Error("sentinel Cmp wrong")
	}
}

func TestMediantExamplesFromPaper(t *testing.T) {
	// Figure 1: splitting 1/1 against the reply chain yields
	// 1/2, 2/3, 3/4, 4/5, 5/6.
	m := One
	want := []F{MustNew(1, 2), MustNew(2, 3), MustNew(3, 4), MustNew(4, 5), MustNew(5, 6)}
	reply := Zero
	for i, w := range want {
		got, ok := Mediant(reply, m)
		if !ok {
			t.Fatalf("step %d: unexpected overflow", i)
		}
		if got != w {
			t.Fatalf("step %d: mediant = %v, want %v", i, got, w)
		}
		reply = got
	}
	// Figure 2: node F splits M=2/3 against reply 1/2 -> 3/5;
	// node B splits M=2/3 against reply 3/5 -> 5/8.
	g, ok := Mediant(MustNew(1, 2), MustNew(2, 3))
	if !ok || g != MustNew(3, 5) {
		t.Fatalf("split(1/2,2/3) = %v, want 3/5", g)
	}
	g, ok = Mediant(MustNew(3, 5), MustNew(2, 3))
	if !ok || g != MustNew(5, 8) {
		t.Fatalf("split(3/5,2/3) = %v, want 5/8", g)
	}
}

func TestNext(t *testing.T) {
	n, ok := Zero.Next()
	if !ok || n != MustNew(1, 2) {
		t.Fatalf("Next(0/1) = %v, want 1/2", n)
	}
	n, ok = MustNew(2, 3).Next()
	if !ok || n != MustNew(3, 4) {
		t.Fatalf("Next(2/3) = %v, want 3/4", n)
	}
	if _, ok := One.Next(); ok {
		t.Fatal("One must have no next-element")
	}
}

func TestMediantOverflow(t *testing.T) {
	big := F{Num: math.MaxUint32 - 1, Den: math.MaxUint32}
	if _, ok := Mediant(big, One); ok {
		t.Fatal("expected overflow")
	}
	if !SplitOverflows(big, One) {
		t.Fatal("SplitOverflows = false, want true")
	}
	if SplitOverflows(Zero, One) {
		t.Fatal("SplitOverflows(0/1,1/1) = true, want false")
	}
}

func TestFibonacciBound(t *testing.T) {
	// The paper: "The least upper bound on the number of times we may do
	// this in a 32-bit unsigned integer is found from the Fibonacci
	// sequence to be 45 times."
	got := MaxMediantChain(Zero, One)
	if got < 45 {
		t.Fatalf("worst-case mediant chain = %d, want >= 45", got)
	}
	if got > 50 {
		t.Fatalf("worst-case mediant chain = %d, suspiciously large", got)
	}
}

func TestSplitDepth(t *testing.T) {
	// Next-element splits grow denominators by 1, so from 0/1 the depth
	// is MaxUint32-1 steps; just check it is monotone on small cases via
	// a capped variant: splitting near the top runs out quickly.
	top := F{Num: math.MaxUint32 - 2, Den: math.MaxUint32 - 1}
	if d := SplitDepth(top); d != 1 {
		t.Fatalf("SplitDepth near max = %d, want 1", d)
	}
}

func TestReduce(t *testing.T) {
	tests := []struct{ in, want F }{
		{MustNew(2, 4), MustNew(1, 2)},
		{MustNew(6, 9), MustNew(2, 3)},
		{MustNew(5, 8), MustNew(5, 8)},
		{Zero, Zero},
		{One, One},
	}
	for _, tt := range tests {
		if got := tt.in.Reduce(); got != tt.want {
			t.Errorf("Reduce(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestBetween(t *testing.T) {
	tests := []struct {
		lo, hi F
		want   F
	}{
		{Zero, One, MustNew(1, 2)},
		{MustNew(1, 2), One, MustNew(2, 3)},
		{Zero, MustNew(1, 2), MustNew(1, 3)},
		{MustNew(1, 3), MustNew(1, 2), MustNew(2, 5)},
		{MustNew(2, 3), MustNew(3, 4), MustNew(5, 7)},
	}
	for _, tt := range tests {
		got, ok := Between(tt.lo, tt.hi)
		if !ok {
			t.Errorf("Between(%v,%v) overflowed", tt.lo, tt.hi)
			continue
		}
		if got != tt.want {
			t.Errorf("Between(%v,%v) = %v, want %v", tt.lo, tt.hi, got, tt.want)
		}
	}
	if _, ok := Between(MustNew(1, 2), MustNew(1, 2)); ok {
		t.Error("Between of equal fractions must fail")
	}
	if _, ok := Between(MustNew(2, 3), MustNew(1, 2)); ok {
		t.Error("Between of reversed fractions must fail")
	}
}

func TestBetweenSimplest(t *testing.T) {
	// The Stern–Brocot answer has the minimal denominator of any
	// fraction strictly inside the interval.
	lo, hi := MustNew(415, 943), MustNew(416, 943)
	got, ok := Between(lo, hi)
	if !ok {
		t.Fatal("Between overflowed")
	}
	if !lo.Less(got) || !got.Less(hi) {
		t.Fatalf("Between result %v not inside (%v,%v)", got, lo, hi)
	}
	for den := uint32(2); den < got.Den; den++ {
		for num := uint32(1); num < den; num++ {
			f := F{Num: num, Den: den}
			if lo.Less(f) && f.Less(hi) {
				t.Fatalf("found simpler fraction %v than %v", f, got)
			}
		}
	}
}

// randFrac maps arbitrary uint32 pairs onto valid proper fractions.
func randFrac(a, b uint32) F {
	if a == b {
		b = a + 1
	}
	if a > b {
		a, b = b, a
	}
	if b == 0 {
		b = 1
	}
	if a == 0 {
		a = 1
	}
	if a == b {
		return One
	}
	return F{Num: a, Den: b}
}

func TestMediantBetweenness(t *testing.T) {
	// Property: for valid f < g, mediant(f,g) is strictly between.
	prop := func(a, b, c, d uint32) bool {
		f, g := randFrac(a, b), randFrac(c, d)
		if !f.Less(g) {
			return true // vacuous
		}
		m, ok := Mediant(f, g)
		if !ok {
			return true // overflow is allowed; reported, not wrapped
		}
		return f.Less(m) && m.Less(g)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNextIsGreater(t *testing.T) {
	prop := func(a, b uint32) bool {
		f := randFrac(a, b)
		n, ok := f.Next()
		if !ok {
			return true
		}
		return f.Less(n) || f.Equal(n) && false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestLessIsStrictOrder(t *testing.T) {
	// Irreflexive and asymmetric; transitive on triples.
	prop := func(a, b, c, d, e, f uint32) bool {
		x, y, z := randFrac(a, b), randFrac(c, d), randFrac(e, f)
		if x.Less(x) {
			return false
		}
		if x.Less(y) && y.Less(x) {
			return false
		}
		if x.Less(y) && y.Less(z) && !x.Less(z) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestReducePreservesValue(t *testing.T) {
	prop := func(a, b uint32) bool {
		f := randFrac(a, b)
		return f.Reduce().Equal(f)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenInsideInterval(t *testing.T) {
	prop := func(a, b, c, d uint32) bool {
		f, g := randFrac(a%1000, b%1000), randFrac(c%1000, d%1000)
		if !f.Less(g) {
			return true
		}
		m, ok := Between(f, g)
		if !ok {
			return true
		}
		if !f.Less(m) || !m.Less(g) {
			return false
		}
		return m == m.Reduce() // Stern–Brocot results are always reduced
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatAndString(t *testing.T) {
	f := MustNew(5, 8)
	if f.Float() != 0.625 {
		t.Errorf("Float = %v, want 0.625", f.Float())
	}
	if f.String() != "5/8" {
		t.Errorf("String = %q, want 5/8", f.String())
	}
}

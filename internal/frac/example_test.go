package frac_test

import (
	"fmt"

	"slr/internal/frac"
)

// ExampleMediant shows the label-splitting primitive of SLR: the mediant of
// two fractions always lies strictly between them, so a node can always be
// inserted between two labels.
func ExampleMediant() {
	lo := frac.MustNew(1, 2)
	hi := frac.MustNew(2, 3)
	mid, ok := frac.Mediant(lo, hi)
	fmt.Println(mid, ok, lo.Less(mid) && mid.Less(hi))
	// Output: 3/5 true true
}

// ExampleF_Next computes the next-element (m+1)/(n+1) used when a reply
// passes an unassigned node.
func ExampleF_Next() {
	n, _ := frac.Zero.Next()
	fmt.Println(n)
	n, _ = n.Next()
	fmt.Println(n)
	// Output:
	// 1/2
	// 2/3
}

// ExampleBetween finds the simplest fraction in an interval via the
// Stern–Brocot tree — the paper's §VI future-work interpolation.
func ExampleBetween() {
	f, _ := frac.Between(frac.MustNew(5, 8), frac.MustNew(7, 8))
	fmt.Println(f)
	// Output: 2/3
}

package frac

import (
	"testing"
	"testing/quick"
)

func TestParentsKnownValues(t *testing.T) {
	tests := []struct {
		f      F
		lo, hi F
	}{
		{MustNew(1, 2), Zero, One},
		{MustNew(1, 3), Zero, MustNew(1, 2)},
		{MustNew(2, 3), MustNew(1, 2), One},
		{MustNew(3, 5), MustNew(1, 2), MustNew(2, 3)},
		{MustNew(5, 8), MustNew(3, 5), MustNew(2, 3)},
	}
	for _, tt := range tests {
		lo, hi, ok := Parents(tt.f)
		if !ok {
			t.Errorf("Parents(%v) failed", tt.f)
			continue
		}
		if lo != tt.lo || hi != tt.hi {
			t.Errorf("Parents(%v) = %v,%v, want %v,%v", tt.f, lo, hi, tt.lo, tt.hi)
		}
	}
}

func TestParentsSentinelsRejected(t *testing.T) {
	if _, _, ok := Parents(Zero); ok {
		t.Error("Parents(0/1) should fail")
	}
	if _, _, ok := Parents(One); ok {
		t.Error("Parents(1/1) should fail")
	}
}

func TestParentsMediantProperty(t *testing.T) {
	// The mediant of a fraction's parents is the fraction itself
	// (reduced), by construction of the Stern–Brocot tree.
	prop := func(a, b uint32) bool {
		d := b%5000 + 2
		n := a % d
		if n == 0 {
			n = 1
		}
		f := MustNew(n, d).Reduce()
		lo, hi, ok := Parents(f)
		if !ok {
			return f == Zero || f == One
		}
		m, ok2 := Mediant(lo, hi)
		return ok2 && m.Reduce() == f
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestDepthKnownValues(t *testing.T) {
	tests := []struct {
		f    F
		want int
	}{
		{MustNew(1, 2), 1},
		{MustNew(1, 3), 2},
		{MustNew(2, 3), 2},
		{MustNew(3, 5), 3},
		{MustNew(5, 8), 4},
	}
	for _, tt := range tests {
		got, ok := Depth(tt.f)
		if !ok || got != tt.want {
			t.Errorf("Depth(%v) = %d,%v, want %d", tt.f, got, ok, tt.want)
		}
	}
}

func TestDepthUnreducedEqualsReduced(t *testing.T) {
	a, _ := Depth(MustNew(2, 4))
	b, _ := Depth(MustNew(1, 2))
	if a != b {
		t.Fatalf("Depth(2/4)=%d != Depth(1/2)=%d", a, b)
	}
}

func TestFareySequenceF5(t *testing.T) {
	// F_5 = 0/1 1/5 1/4 1/3 2/5 1/2 3/5 2/3 3/4 4/5 1/1.
	want := []F{Zero, MustNew(1, 5), MustNew(1, 4), MustNew(1, 3), MustNew(2, 5),
		MustNew(1, 2), MustNew(3, 5), MustNew(2, 3), MustNew(3, 4), MustNew(4, 5), One}
	got := FareySequence(5)
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("F_5[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFareySequenceProperties(t *testing.T) {
	// Strictly increasing, all reduced, all denominators <= n.
	seq := FareySequence(50)
	for i := 1; i < len(seq); i++ {
		if !seq[i-1].Less(seq[i]) {
			t.Fatalf("not increasing at %d: %v %v", i, seq[i-1], seq[i])
		}
		if seq[i].Den > 50 {
			t.Fatalf("denominator %d exceeds 50", seq[i].Den)
		}
		if seq[i].Reduce() != seq[i] {
			t.Fatalf("unreduced member %v", seq[i])
		}
	}
	// Neighboring Farey fractions satisfy bq - ap = 1.
	for i := 1; i < len(seq); i++ {
		a, b := seq[i-1], seq[i]
		if uint64(b.Num)*uint64(a.Den)-uint64(a.Num)*uint64(b.Den) != 1 {
			t.Fatalf("unimodularity broken at %v,%v", a, b)
		}
	}
}

func TestFareySequenceEmpty(t *testing.T) {
	if got := FareySequence(0); got != nil {
		t.Fatalf("FareySequence(0) = %v", got)
	}
}

package sim

import (
	"math/rand"
	"testing"
	"time"
)

// This file differentially tests the ladder queue against a reference
// model: a flat list ordered by the (at, seq) contract. The reference is
// deliberately naive — O(n) sorted insertion — so its correctness is
// evident by inspection; the property is that the Simulator fires exactly
// the sequence the reference predicts, for arbitrary interleavings of
// At/After/Cancel/Reschedule issued both between steps and from inside
// firing callbacks.

// refEv is one reference-model entry. id is the test's label for the
// event; at/seq mirror the Simulator's ordering key exactly (the test
// counts seq consumption alongside the Simulator: one per At, one per
// Reschedule, whether or not the reschedule reused a node).
type refEv struct {
	at  Time
	seq uint64
	id  int
}

// refModel is the sorted reference queue.
type refModel struct {
	evs []refEv
}

func (m *refModel) insert(e refEv) {
	i := len(m.evs)
	for i > 0 {
		p := m.evs[i-1]
		if p.at < e.at || (p.at == e.at && p.seq < e.seq) {
			break
		}
		i--
	}
	m.evs = append(m.evs, refEv{})
	copy(m.evs[i+1:], m.evs[i:])
	m.evs[i] = e
}

func (m *refModel) removeID(id int) (refEv, bool) {
	for i, e := range m.evs {
		if e.id == id {
			m.evs = append(m.evs[:i], m.evs[i+1:]...)
			return e, true
		}
	}
	return refEv{}, false
}

func (m *refModel) pop() refEv {
	e := m.evs[0]
	m.evs = m.evs[1:]
	return e
}

// ladderDiff drives one randomized trace against both the Simulator and
// the reference model and fails on the first ordering divergence. The
// trace mixes scale regimes (a handful to tens of thousands pending),
// time regimes (nanosecond clusters, microsecond ticks, far-future
// bursts), and issues a share of its operations from inside callbacks —
// the cancel-inside-callback and reschedule-across-bucket cases arise
// constantly at scale.
func ladderDiff(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	s := New(seed ^ 0x5eed)
	model := &refModel{}
	live := make(map[int]Timer) // pending events by id
	ids := make([]int, 0)       // keys of live, for random choice
	nextID := 0
	var seq uint64 // mirrors s.seq consumption exactly

	// randomAt picks a firing time at or after now, spanning several
	// magnitudes so events land in bottom, rungs, and top tiers.
	randomAt := func() Time {
		now := s.Now()
		switch rng.Intn(10) {
		case 0: // exactly now: same-instant FIFO
			return now
		case 1, 2: // nanosecond cluster: unsplittable buckets
			return now + Time(rng.Intn(4))
		case 3, 4, 5: // dense near future (MAC-timer regime)
			return now + Time(rng.Intn(int(2*time.Millisecond)))
		case 6, 7: // mid future (beacon regime)
			return now + Time(rng.Intn(int(3*time.Second)))
		case 8: // far future (route-timeout regime)
			return now + Time(rng.Intn(int(10*time.Minute)))
		default: // clustered ticks: many equal timestamps
			tick := Time(rng.Intn(50)) * time.Millisecond
			return now + tick
		}
	}

	removeLiveIdx := func(k int) {
		last := len(ids) - 1
		ids[k] = ids[last]
		ids = ids[:last]
	}

	var schedule func(depth int)
	var onFire func(id int, depth int)

	schedule = func(depth int) {
		id := nextID
		nextID++
		at := randomAt()
		d := depth
		tm := s.At(at, func() { onFire(id, d) })
		model.insert(refEv{at: at, seq: seq, id: id})
		seq++
		live[id] = tm
		ids = append(ids, id)
	}

	// mutate cancels or reschedules a random live event, mirroring the
	// model; fromCallback marks ops issued while an event is firing.
	mutate := func() {
		if len(ids) == 0 {
			return
		}
		k := rng.Intn(len(ids))
		id := ids[k]
		tm := live[id]
		if rng.Intn(2) == 0 {
			s.Cancel(tm)
			model.removeID(id)
			delete(live, id)
			removeLiveIdx(k)
			return
		}
		at := randomAt()
		d := rng.Intn(2)
		nt := s.Reschedule(tm, at, func() { onFire(id, d) })
		model.removeID(id)
		model.insert(refEv{at: at, seq: seq, id: id})
		seq++
		live[id] = nt
	}

	onFire = func(id int, depth int) {
		// The model must agree this is the global minimum.
		if len(model.evs) == 0 {
			t.Fatalf("seed %d: sim fired id %d but model is empty", seed, id)
		}
		want := model.pop()
		if want.id != id {
			t.Fatalf("seed %d: fired id %d at %v, model expected id %d at %v (seq %d)",
				seed, id, s.Now(), want.id, want.at, want.seq)
		}
		if want.at != s.Now() {
			t.Fatalf("seed %d: id %d fired at %v, model expected %v", seed, id, s.Now(), want.at)
		}
		delete(live, id)
		for k, v := range ids {
			if v == id {
				removeLiveIdx(k)
				break
			}
		}
		if depth > 0 {
			// Issue ops from inside the callback: schedules land at
			// now+delta (possibly the same instant), cancels and
			// reschedules hit events resident in any tier.
			for i := rng.Intn(3); i > 0; i-- {
				schedule(rng.Intn(depth))
			}
			if rng.Intn(2) == 0 {
				mutate()
			}
		}
	}

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(100); {
		case r < 45:
			schedule(rng.Intn(3))
		case r < 55:
			mutate()
		case r < 65: // burst: push the pending set into ladder territory
			n := rng.Intn(2000)
			for i := 0; i < n; i++ {
				schedule(rng.Intn(2))
			}
		case r < 90: // drain a few
			n := rng.Intn(64) + 1
			for i := 0; i < n && s.Step(); i++ {
			}
		default: // RunUntil a random horizon, including exact event times
			var end Time
			if len(model.evs) > 0 && rng.Intn(2) == 0 {
				end = model.evs[rng.Intn(len(model.evs))].at
			} else {
				end = s.Now() + Time(rng.Intn(int(time.Second)))
			}
			s.RunUntil(end)
			if s.Now() != end {
				t.Fatalf("seed %d: RunUntil(%v) left clock at %v", seed, end, s.Now())
			}
			for len(model.evs) > 0 && model.evs[0].at <= end {
				t.Fatalf("seed %d: RunUntil(%v) skipped id %d due at %v",
					seed, end, model.evs[0].id, model.evs[0].at)
			}
		}
		if s.Pending() != len(model.evs) {
			t.Fatalf("seed %d op %d: Pending()=%d, model holds %d", seed, op, s.Pending(), len(model.evs))
		}
	}
	// Drain completely: every remaining event must fire in model order.
	for s.Step() {
	}
	if len(model.evs) != 0 {
		t.Fatalf("seed %d: drained sim but model still holds %d events", seed, len(model.evs))
	}
}

// TestLadderVsReference is the always-on property test: a spread of fixed
// seeds covering small and large pending sets.
func TestLadderVsReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ladderDiff(t, seed, 400)
	}
}

// TestLadderVsReferenceDeep pushes tens of thousands of pending events
// through many epochs — the regime where rung spawning, bucket overflow,
// and top spreading all recur.
func TestLadderVsReferenceDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep differential trace skipped in -short")
	}
	for seed := int64(100); seed < 103; seed++ {
		ladderDiff(t, seed, 3000)
	}
}

// FuzzLadderVsHeap lets the fuzzer pick the trace seed and length. The
// corpus seeds replay the deterministic property traces; crashers shrink
// to a (seed, ops) pair that is trivially replayable in ladderDiff.
func FuzzLadderVsHeap(f *testing.F) {
	f.Add(int64(1), uint16(200))
	f.Add(int64(42), uint16(800))
	f.Add(int64(7777), uint16(2000))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		ladderDiff(t, seed, int(ops)%4000)
	})
}

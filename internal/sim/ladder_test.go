package sim

import (
	"math/rand"
	"testing"
	"time"
)

// This file differentially tests the ladder queue against a reference
// model: a flat list ordered by the (at, seq) contract. The reference is
// deliberately naive — O(n) sorted insertion — so its correctness is
// evident by inspection; the property is that the Simulator fires exactly
// the sequence the reference predicts, for arbitrary interleavings of
// At/After/Cancel/Reschedule issued both between steps and from inside
// firing callbacks.

// refEv is one reference-model entry. id is the test's label for the
// event; at/seq mirror the Simulator's ordering key exactly (the test
// counts seq consumption alongside the Simulator: one per At, one per
// Reschedule, whether or not the reschedule reused a node).
type refEv struct {
	at  Time
	seq uint64
	id  int
}

// refModel is the sorted reference queue.
type refModel struct {
	evs []refEv
}

func (m *refModel) insert(e refEv) {
	i := len(m.evs)
	for i > 0 {
		p := m.evs[i-1]
		if p.at < e.at || (p.at == e.at && p.seq < e.seq) {
			break
		}
		i--
	}
	m.evs = append(m.evs, refEv{})
	copy(m.evs[i+1:], m.evs[i:])
	m.evs[i] = e
}

func (m *refModel) removeID(id int) (refEv, bool) {
	for i, e := range m.evs {
		if e.id == id {
			m.evs = append(m.evs[:i], m.evs[i+1:]...)
			return e, true
		}
	}
	return refEv{}, false
}

func (m *refModel) pop() refEv {
	e := m.evs[0]
	m.evs = m.evs[1:]
	return e
}

// ladderDiff drives one randomized trace against both the Simulator and
// the reference model and fails on the first ordering divergence. The
// trace mixes scale regimes (a handful to tens of thousands pending),
// time regimes (nanosecond clusters, microsecond ticks, far-future
// bursts), and issues a share of its operations from inside callbacks —
// the cancel-inside-callback and reschedule-across-bucket cases arise
// constantly at scale.
func ladderDiff(t *testing.T, seed int64, ops int) {
	rng := rand.New(rand.NewSource(seed))
	s := New(seed ^ 0x5eed)
	model := &refModel{}
	live := make(map[int]Timer) // pending events by id
	ids := make([]int, 0)       // keys of live, for random choice
	nextID := 0
	var seq uint64 // mirrors s.seq consumption exactly

	// randomAt picks a firing time at or after now, spanning several
	// magnitudes so events land in bottom, rungs, and top tiers.
	randomAt := func() Time {
		now := s.Now()
		switch rng.Intn(10) {
		case 0: // exactly now: same-instant FIFO
			return now
		case 1, 2: // nanosecond cluster: unsplittable buckets
			return now + Time(rng.Intn(4))
		case 3, 4, 5: // dense near future (MAC-timer regime)
			return now + Time(rng.Intn(int(2*time.Millisecond)))
		case 6, 7: // mid future (beacon regime)
			return now + Time(rng.Intn(int(3*time.Second)))
		case 8: // far future (route-timeout regime)
			return now + Time(rng.Intn(int(10*time.Minute)))
		default: // clustered ticks: many equal timestamps
			tick := Time(rng.Intn(50)) * time.Millisecond
			return now + tick
		}
	}

	removeLiveIdx := func(k int) {
		last := len(ids) - 1
		ids[k] = ids[last]
		ids = ids[:last]
	}

	var schedule func(depth int)
	var onFire func(id int, depth int)

	schedule = func(depth int) {
		id := nextID
		nextID++
		at := randomAt()
		d := depth
		tm := s.At(at, func() { onFire(id, d) })
		model.insert(refEv{at: at, seq: seq, id: id})
		seq++
		live[id] = tm
		ids = append(ids, id)
	}

	// mutate cancels or reschedules a random live event, mirroring the
	// model; fromCallback marks ops issued while an event is firing.
	mutate := func() {
		if len(ids) == 0 {
			return
		}
		k := rng.Intn(len(ids))
		id := ids[k]
		tm := live[id]
		if rng.Intn(2) == 0 {
			s.Cancel(tm)
			model.removeID(id)
			delete(live, id)
			removeLiveIdx(k)
			return
		}
		at := randomAt()
		d := rng.Intn(2)
		nt := s.Reschedule(tm, at, func() { onFire(id, d) })
		model.removeID(id)
		model.insert(refEv{at: at, seq: seq, id: id})
		seq++
		live[id] = nt
	}

	onFire = func(id int, depth int) {
		// The model must agree this is the global minimum.
		if len(model.evs) == 0 {
			t.Fatalf("seed %d: sim fired id %d but model is empty", seed, id)
		}
		want := model.pop()
		if want.id != id {
			t.Fatalf("seed %d: fired id %d at %v, model expected id %d at %v (seq %d)",
				seed, id, s.Now(), want.id, want.at, want.seq)
		}
		if want.at != s.Now() {
			t.Fatalf("seed %d: id %d fired at %v, model expected %v", seed, id, s.Now(), want.at)
		}
		delete(live, id)
		for k, v := range ids {
			if v == id {
				removeLiveIdx(k)
				break
			}
		}
		if depth > 0 {
			// Issue ops from inside the callback: schedules land at
			// now+delta (possibly the same instant), cancels and
			// reschedules hit events resident in any tier.
			for i := rng.Intn(3); i > 0; i-- {
				schedule(rng.Intn(depth))
			}
			if rng.Intn(2) == 0 {
				mutate()
			}
		}
	}

	for op := 0; op < ops; op++ {
		switch r := rng.Intn(100); {
		case r < 45:
			schedule(rng.Intn(3))
		case r < 55:
			mutate()
		case r < 65: // burst: push the pending set into ladder territory
			n := rng.Intn(2000)
			for i := 0; i < n; i++ {
				schedule(rng.Intn(2))
			}
		case r < 90: // drain a few
			n := rng.Intn(64) + 1
			for i := 0; i < n && s.Step(); i++ {
			}
		default: // RunUntil a random horizon, including exact event times
			var end Time
			if len(model.evs) > 0 && rng.Intn(2) == 0 {
				end = model.evs[rng.Intn(len(model.evs))].at
			} else {
				end = s.Now() + Time(rng.Intn(int(time.Second)))
			}
			s.RunUntil(end)
			if s.Now() != end {
				t.Fatalf("seed %d: RunUntil(%v) left clock at %v", seed, end, s.Now())
			}
			for len(model.evs) > 0 && model.evs[0].at <= end {
				t.Fatalf("seed %d: RunUntil(%v) skipped id %d due at %v",
					seed, end, model.evs[0].id, model.evs[0].at)
			}
		}
		if s.Pending() != len(model.evs) {
			t.Fatalf("seed %d op %d: Pending()=%d, model holds %d", seed, op, s.Pending(), len(model.evs))
		}
	}
	// Drain completely: every remaining event must fire in model order.
	for s.Step() {
	}
	if len(model.evs) != 0 {
		t.Fatalf("seed %d: drained sim but model still holds %d events", seed, len(model.evs))
	}
}

// TestLadderVsReference is the always-on property test: a spread of fixed
// seeds covering small and large pending sets.
func TestLadderVsReference(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		ladderDiff(t, seed, 400)
	}
}

// TestLadderVsReferenceDeep pushes tens of thousands of pending events
// through many epochs — the regime where rung spawning, bucket overflow,
// and top spreading all recur.
func TestLadderVsReferenceDeep(t *testing.T) {
	if testing.Short() {
		t.Skip("deep differential trace skipped in -short")
	}
	for seed := int64(100); seed < 103; seed++ {
		ladderDiff(t, seed, 3000)
	}
}

// TestLadderSpawnClampAtRungEnd pins the spawn-path span clamp with the
// exact geometry that broke it: a depth-1 rung whose ceil-rounded bucket
// width overshoots its true span (width 3 over a span of 100 → nominal
// coverage 102), whose last bucket is big enough to spawn a depth-2 child.
// Unclamped, the child's end() extends past the parent's endT into the
// window the coarser rung still holds events for, and a new arrival in
// that window (scheduled from a callback while the child drains) routes
// into the child and fires before the earlier-timestamped event waiting in
// the coarser rung — 1101ns before 1100ns, with Now() going backwards.
//
// The layout below is built entirely through the public API:
//
//   - 40 far-future events spread over [1000, 4999] so spreadTop builds
//     rungs[0] with width ceil(4000/40) = 100ns;
//   - 33 of them at t=1099 so rungs[0]'s bucket 0 (34 events) spawns
//     rungs[1] with width ceil(100/34) = 3ns, whose last bucket
//     [1099, 1102) ∩ span holds all 33 — enough to spawn rungs[2];
//   - one event at t=1100, sitting in rungs[0]'s bucket 1;
//   - the first t=1099 callback schedules t=1101, which must land in
//     rungs[0]'s bucket 1 behind the 1100 event, not in rungs[2].
func TestLadderSpawnClampAtRungEnd(t *testing.T) {
	s := New(1)
	var fired []Time
	record := func() { fired = append(fired, s.Now()) }

	var ats []Time
	add := func(at Time, fn func()) {
		s.At(at, fn)
		ats = append(ats, at)
	}

	add(1000, record)
	for i := 0; i < 33; i++ {
		fn := record
		if i == 0 {
			// First equal-time event to fire (lowest seq): schedule the
			// arrival into the overshoot window while rungs[2] drains.
			fn = func() {
				fired = append(fired, s.Now())
				s.At(1101, record)
			}
		}
		add(1099, fn)
	}
	add(1100, record)
	for _, at := range []Time{2000, 2500, 3000, 4000, 4999} {
		add(at, record)
	}
	ats = append(ats, 1101) // the callback-scheduled arrival

	s.Run()

	if len(fired) != len(ats) {
		t.Fatalf("fired %d events, scheduled %d", len(fired), len(ats))
	}
	sortTimes(ats)
	for i, at := range fired {
		if at != ats[i] {
			t.Fatalf("firing %d: got t=%v, want t=%v (full order %v)", i, at, ats[i], fired)
		}
		if i > 0 && at < fired[i-1] {
			t.Fatalf("time went backwards: t=%v fired after t=%v", at, fired[i-1])
		}
	}
}

func sortTimes(ts []Time) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// TestLadderDeepDrainArrivals is the randomized net over the same class of
// bug: fractally clustered timestamps force depth>=2 rungs with few-ns
// spans (where ceil-rounded widths overshoot constantly), and every firing
// callback schedules fresh events a few nanoseconds ahead — exactly the
// arrivals that land in a mis-clamped child rung's overshoot window. The
// general-purpose ladderDiff trace never hit this geometry because its
// arrival times are spread over milliseconds.
func TestLadderDeepDrainArrivals(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New(seed)
		model := &refModel{}
		var seq uint64
		id := 0

		var onFire func()
		schedule := func(at Time) {
			evID := id
			id++
			s.At(at, onFire)
			model.insert(refEv{at: at, seq: seq, id: evID})
			seq++
		}
		onFire = func() {
			want := model.pop()
			if want.at != s.Now() {
				t.Fatalf("seed %d: fired at %v, model expected %v (seq %d)",
					seed, s.Now(), want.at, want.seq)
			}
			// Subcritical branching (mean 1/2 offspring per firing) so the
			// drain terminates quickly while still spraying arrivals into
			// whatever rung geometry is active at every depth.
			if rng.Intn(2) == 0 {
				schedule(s.Now() + Time(rng.Intn(4)))
			}
		}

		// Three nested cluster scales around fixed bases: the wide spread
		// fixes a coarse rungs[0] width, the µs cluster overflows one of
		// its buckets into rungs[1], and the ns cluster overflows one of
		// rungs[1]'s buckets into a 1ns-wide rungs[2].
		const base = Time(time.Millisecond)
		for i := 0; i < 1500; i++ {
			var at Time
			switch rng.Intn(10) {
			case 0, 1, 2:
				at = base + Time(rng.Intn(int(40*time.Millisecond)))
			case 3, 4, 5:
				at = base + Time(rng.Intn(int(40*time.Microsecond)))
			default:
				at = base + Time(rng.Intn(40))
			}
			schedule(at)
		}
		for s.Step() {
		}
		if len(model.evs) != 0 {
			t.Fatalf("seed %d: drained sim but model still holds %d events", seed, len(model.evs))
		}
	}
}

// FuzzLadderVsHeap lets the fuzzer pick the trace seed and length. The
// corpus seeds replay the deterministic property traces; crashers shrink
// to a (seed, ops) pair that is trivially replayable in ladderDiff.
func FuzzLadderVsHeap(f *testing.F) {
	f.Add(int64(1), uint16(200))
	f.Add(int64(42), uint16(800))
	f.Add(int64(7777), uint16(2000))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16) {
		ladderDiff(t, seed, int(ops)%4000)
	})
}

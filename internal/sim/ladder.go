package sim

// This file implements the ladder queue behind the Simulator API: a
// multi-tier event structure that keeps enqueue/dequeue O(1) amortized for
// the dense near-future timer traffic of a large simulation (MAC
// retransmit/backoff, ACK timeouts, beacons, mobility ticks) while the
// firing order stays the exact (at, seq) total order of the original heap.
//
// Tiers, nearest first:
//
//   - bottom: the original indexed 4-ary min-heap, restricted to the few
//     events promoted from the current bucket. All global pops come from
//     here, so the FIFO tie-break among equal times is enforced by the
//     same comparator the heap-only scheduler used.
//   - rungs: bucket arrays. rungs[0] is the wheel spread over the current
//     epoch's span; rungs[r+1] is a finer wheel spawned from one oversized
//     bucket of rungs[r]. Inserting into a rung is O(1): index the bucket,
//     append.
//   - top: an unsorted overflow list for events at or past the current
//     epoch (at >= topStart). Insertion is O(1); the list is spread into a
//     fresh rungs[0] when everything nearer has drained.
//
// Time partition invariant (left to right, earliest to latest):
//
//	bottom < lowBound <= rung events < topStart <= top events
//
// where lowBound is the consumption boundary: the start of the finest
// rung's first unconsumed bucket. New events route by comparing `at`
// against lowBound and topStart, so the partition is maintained without
// ever scanning a tier.
//
// Promotion (refill) runs when bottom drains: the finest rung's next
// non-empty bucket either dumps into bottom (<= ladderThresh events, or
// the bucket is unsplittable) or spawns a finer rung sized so the expected
// occupancy is ~1 event per bucket. Each event is therefore touched O(1)
// times on its way down (ladder property: occupancy shrinks geometrically
// with each spawn), and the bottom heap stays small, so its log cost is a
// small constant rather than log of the total pending count.
//
// Degradation to heap behavior: when the pending set is tiny (<=
// ladderThresh), or a bucket cannot be split further (all events at one
// timestamp, bucket width already 1ns, or maxRungs reached), the events
// are simply pushed into the bottom heap — exactly the pre-ladder
// scheduler. Correctness never depends on the bucket geometry; only the
// constant factors do.
const (
	// ladderThresh is the bucket size at or below which promotion dumps
	// straight into the bottom heap instead of spawning a finer rung.
	ladderThresh = 32
	// maxRungBuckets caps any rung's bucket count (bounds memory for
	// million-event epochs; deeper rungs absorb the excess occupancy).
	maxRungBuckets = 1 << 15
	// maxRungs bounds the ladder depth; beyond it buckets dump to bottom.
	maxRungs = 8
	// minBucketWidth is the finest bucket granularity. Time is integer
	// nanoseconds, so a 1ns bucket can only hold equal-time events, which
	// no split can separate — the bottom heap's (at, seq) comparator
	// orders them instead.
	minBucketWidth = Time(1)
)

// Event location tags (Event.loc). Values >= 0 index s.rungs.
const (
	locNone   int32 = -1 // not queued (free, fired, or canceled)
	locBottom int32 = -2 // in the bottom heap; Event.index is the heap slot
	locTop    int32 = -3 // in the top list; Event.index is the slot
	locBatch  int32 = -4 // extracted into s.batch; Event.index is the slot
	locStaged int32 = -5 // created by a staged ExecCtx.At, awaiting merge
)

// rung is one bucket array of the ladder: buckets of `width` covering
// [start, start + used*width). Buckets before cur are consumed (empty).
// rungs and their bucket slices are pooled per Simulator, so steady-state
// epochs allocate nothing once warm.
type rung struct {
	start Time
	width Time
	// endT is the exact end of the region this rung covers: start + the
	// span it was spawned for. It is NOT start + used*width — the ceil
	// rounding of the bucket width can make used*width overshoot the
	// span, and treating that overshoot as covered would advance the
	// consumption boundary (lowBound) into a region the parent rung still
	// holds events for, breaking FIFO at the boundary timestamps.
	endT    Time
	cur     int
	used    int
	count   int // events currently stored across buckets
	buckets [][]*Event
}

func (r *rung) end() Time { return r.endT }

// reset prepares a pooled rung for a new span, growing the bucket table to
// `used` entries and clearing any stale lengths.
func (r *rung) reset(start, end, width Time, used int) {
	r.start, r.endT, r.width, r.used, r.cur, r.count = start, end, width, used, 0, 0
	for used > len(r.buckets) {
		r.buckets = append(r.buckets, nil)
	}
	for i := 0; i < used; i++ {
		r.buckets[i] = r.buckets[i][:0]
	}
}

// schedule routes ev into the tier its deadline belongs to. The event's
// at and seq must already be set.
func (s *Simulator) schedule(ev *Event) {
	if s.check != nil {
		s.check.push(ev.at, ev.seq)
	}
	s.npend++
	at := ev.at
	if at >= s.topStart {
		ev.loc, ev.index = locTop, int32(len(s.top))
		s.top = append(s.top, ev)
		return
	}
	if at < s.lowBound || len(s.rungs) == 0 {
		s.bottomPush(ev)
		return
	}
	// Finest rung first: the unconsumed regions of the rung stack tile
	// [lowBound, topStart) contiguously, finest nearest, so the first rung
	// whose span contains `at` is the right one.
	for i := len(s.rungs) - 1; i >= 0; i-- {
		r := s.rungs[i]
		if at >= r.end() && i > 0 {
			continue
		}
		idx := int((at - r.start) / r.width)
		b := r.buckets[idx]
		ev.loc, ev.bucket, ev.index = int32(i), int32(idx), int32(len(b))
		r.buckets[idx] = append(b, ev)
		r.count++
		return
	}
	panic("sim: unreachable — rung walk found no tier")
}

// unlink removes a still-queued event from whatever tier holds it, without
// releasing the node. Top and rung removal are O(1) swap-removes (bucket
// order is irrelevant — ordering happens in the bottom heap); bottom
// removal is the indexed heap delete.
func (s *Simulator) unlink(ev *Event) {
	if s.check != nil {
		s.check.deleted[ev.seq] = struct{}{}
	}
	s.npend--
	switch ev.loc {
	case locBottom:
		s.bottomRemove(int(ev.index))
	case locBatch:
		// Extracted but not yet applied: tombstone the batch slot so
		// application skips it — the same filtering the pre-split kernel
		// got implicitly by never extracting ahead of firing.
		s.batch[ev.index] = nil
	case locTop:
		i := int(ev.index)
		last := len(s.top) - 1
		moved := s.top[last]
		s.top[i] = moved
		moved.index = int32(i)
		s.top[last] = nil
		s.top = s.top[:last]
	default:
		r := s.rungs[ev.loc]
		b := r.buckets[ev.bucket]
		i := int(ev.index)
		last := len(b) - 1
		moved := b[last]
		b[i] = moved
		moved.index = int32(i)
		b[last] = nil
		r.buckets[ev.bucket] = b[:last]
		r.count--
	}
	ev.loc = locNone
}

// refill promotes events toward the bottom heap until it is non-empty,
// reporting whether any event is pending at all. It never fires anything,
// so it is safe to call from peeks (RunUntil) as well as Step.
func (s *Simulator) refill() bool {
	for len(s.bottom) == 0 {
		if n := len(s.rungs); n > 0 {
			r := s.rungs[n-1]
			for r.cur < r.used && len(r.buckets[r.cur]) == 0 {
				r.cur++
			}
			if r.cur == r.used {
				// Rung exhausted; recycle it, and advance the consumption
				// boundary to its end. If the rung's trailing buckets were
				// empty, lowBound still sits at the last bucket actually
				// promoted — leaving it there would route later arrivals in
				// [lowBound, r.end()) into the next-coarser rung's already
				// consumed bucket, stranding them (they'd never be scanned
				// again and would violate FIFO at their timestamp).
				s.lowBound = r.end()
				s.rungs = s.rungs[:n-1]
				s.rungPool = append(s.rungPool, r)
				continue
			}
			b := r.buckets[r.cur]
			bStart := r.start + Time(r.cur)*r.width
			r.cur++
			r.count -= len(b)
			if len(b) <= ladderThresh || r.width <= minBucketWidth || len(s.rungs) >= maxRungs {
				// Small or unsplittable bucket: order it in the bottom
				// heap (the degraded-to-heap path). The last bucket's
				// nominal end can overshoot the rung's true span (ceil
				// rounding); clamp so lowBound never crosses into the
				// parent rung's still-pending region.
				bEnd := bStart + r.width
				if bEnd > r.endT {
					bEnd = r.endT
				}
				s.lowBound = bEnd
				for _, ev := range b {
					s.bottomPush(ev)
				}
			} else {
				// Oversized bucket: spawn a finer rung across its span. Like
				// the dump path above, the last bucket's nominal width can
				// overshoot the rung's true span (ceil rounding); clamp the
				// child's span to r.endT, or the child would claim a window
				// the next-coarser rung still holds events for, and new
				// arrivals in that window would fire ahead of them.
				span := r.width
				if bStart+span > r.endT {
					span = r.endT - bStart
				}
				s.spawnRung(bStart, span, b)
				s.lowBound = bStart
			}
			r.buckets[r.cur-1] = b[:0]
			continue
		}
		if len(s.top) == 0 {
			return false
		}
		s.spreadTop()
	}
	return true
}

// spawnRung spreads the events of one oversized bucket spanning
// [start, start+span) into a fresh finest rung sized for ~1 event per
// bucket.
func (s *Simulator) spawnRung(start, span Time, evs []*Event) {
	nb := len(evs)
	if nb > maxRungBuckets {
		nb = maxRungBuckets
	}
	width := (span + Time(nb) - 1) / Time(nb)
	if width < minBucketWidth {
		width = minBucketWidth
	}
	used := int((span + width - 1) / width)
	r := s.getRung(start, start+span, width, used)
	loc := int32(len(s.rungs))
	s.rungs = append(s.rungs, r)
	for _, ev := range evs {
		idx := int((ev.at - start) / width)
		b := r.buckets[idx]
		ev.loc, ev.bucket, ev.index = loc, int32(idx), int32(len(b))
		r.buckets[idx] = append(b, ev)
	}
	r.count = len(evs)
}

// spreadTop starts a new epoch: the overflow list becomes rungs[0], a
// wheel across the list's exact [min, max] span, and topStart moves past
// it. Called only when bottom and all rungs are empty. A small overflow
// skips the wheel entirely and heaps directly — the sparse-queue fast
// path (and the other degraded-to-heap case).
func (s *Simulator) spreadTop() {
	lo, hi := s.top[0].at, s.top[0].at
	for _, ev := range s.top[1:] {
		if ev.at < lo {
			lo = ev.at
		}
		if ev.at > hi {
			hi = ev.at
		}
	}
	if len(s.top) <= ladderThresh {
		for i, ev := range s.top {
			s.bottomPush(ev)
			s.top[i] = nil
		}
		s.top = s.top[:0]
		s.topStart = hi + 1
		s.lowBound = hi + 1
		return
	}
	nb := len(s.top)
	if nb > maxRungBuckets {
		nb = maxRungBuckets
	}
	span := hi - lo + 1
	width := (span + Time(nb) - 1) / Time(nb)
	if width < minBucketWidth {
		width = minBucketWidth
	}
	used := int((span + width - 1) / width)
	r := s.getRung(lo, hi+1, width, used)
	s.rungs = append(s.rungs, r)
	for i, ev := range s.top {
		idx := int((ev.at - lo) / width)
		b := r.buckets[idx]
		ev.loc, ev.bucket, ev.index = 0, int32(idx), int32(len(b))
		r.buckets[idx] = append(b, ev)
		s.top[i] = nil
	}
	r.count = len(s.top)
	s.top = s.top[:0]
	s.topStart = r.end()
	s.lowBound = r.start
}

// getRung takes a rung from the pool (or allocates one) and sizes it for
// the region [start, end).
func (s *Simulator) getRung(start, end, width Time, used int) *rung {
	var r *rung
	if n := len(s.rungPool); n > 0 {
		r = s.rungPool[n-1]
		s.rungPool = s.rungPool[:n-1]
	} else {
		r = &rung{}
	}
	r.reset(start, end, width, used)
	return r
}

// --- bottom tier: the original indexed 4-ary min-heap ------------------

// arity is the heap branching factor. Four keeps the tree half as deep as
// a binary heap; sift-down scans up to four children in one cache line of
// pointers, which profiles faster than the extra depth costs.
const arity = 4

// less orders events by (at, seq): earliest first, FIFO among equals.
// This comparator alone decides the global firing order — every event
// reaches the bottom heap before it can fire.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) bottomPush(ev *Event) {
	ev.loc = locBottom
	ev.index = int32(len(s.bottom))
	s.bottom = append(s.bottom, ev)
	s.siftUp(int(ev.index))
}

func (s *Simulator) bottomPop() *Event {
	root := s.bottom[0]
	n := len(s.bottom) - 1
	last := s.bottom[n]
	s.bottom[n] = nil
	s.bottom = s.bottom[:n]
	if n > 0 {
		s.bottom[0] = last
		last.index = 0
		s.siftDown(0)
	}
	// npend is NOT decremented here: extraction keeps the event logically
	// pending (Pending counts it, Cancel can still tombstone it); the
	// count drops when the event fires or is unlinked.
	root.loc = locNone
	return root
}

// bottomRemove deletes the node at position i, restoring heap order around
// the displaced tail node.
func (s *Simulator) bottomRemove(i int) {
	n := len(s.bottom) - 1
	last := s.bottom[n]
	s.bottom[n] = nil
	s.bottom = s.bottom[:n]
	if i < n {
		s.bottom[i] = last
		last.index = int32(i)
		if !s.siftDown(i) {
			s.siftUp(i)
		}
	}
}

func (s *Simulator) siftUp(i int) {
	ev := s.bottom[i]
	for i > 0 {
		parent := (i - 1) / arity
		p := s.bottom[parent]
		if !less(ev, p) {
			break
		}
		s.bottom[i] = p
		p.index = int32(i)
		i = parent
	}
	s.bottom[i] = ev
	ev.index = int32(i)
}

// siftDown moves the node at i toward the leaves; it reports whether the
// node moved.
func (s *Simulator) siftDown(i int) bool {
	ev := s.bottom[i]
	start := i
	n := len(s.bottom)
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		best := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(s.bottom[c], s.bottom[best]) {
				best = c
			}
		}
		if !less(s.bottom[best], ev) {
			break
		}
		s.bottom[i] = s.bottom[best]
		s.bottom[i].index = int32(i)
		i = best
	}
	s.bottom[i] = ev
	ev.index = int32(i)
	return i != start
}

package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// BenchmarkHoldModel measures steady-state push/pop cost under the
// classic hold model: the queue is primed with `pending` events, then
// every fired event schedules exactly one successor at a random future
// offset, so the pending count stays constant while events continuously
// migrate down the ladder. ns/op is the cost of one pop + one push.
//
// The interesting read is the scaling across the pending sizes: a pure
// binary/4-ary heap pays O(log n) per op and roughly doubles its ns/op
// from 1k to 1M pending; the ladder's amortized O(1) routing should keep
// the growth well below logarithmic (cache effects, not comparisons,
// dominate what growth remains).
func BenchmarkHoldModel(b *testing.B) {
	for _, pending := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("pending=%d", pending), func(b *testing.B) {
			s := New(1)
			rng := rand.New(rand.NewSource(7))
			gap := func() Time { return Time(rng.Int63n(int64(2*time.Millisecond))) + 1 }
			var hold func()
			hold = func() { s.After(gap(), hold) }
			for i := 0; i < pending; i++ {
				s.After(gap(), hold)
			}
			// Drain one full generation so the pool and the rung stack are
			// warm before measuring.
			for i := 0; i < pending; i++ {
				s.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

package sim

// Shadow order checker: an independently maintained binary heap of
// (at, seq) keys with lazy deletion, verified against every fired event.
// It exists for differential debugging and the in-tree scheduler gate
// (TestLadderShadowedScenario in the repo root): enable it on a Simulator
// and any deviation of the ladder's firing order from the reference
// (at, seq) total order panics at the first divergent event, with the
// expected and actual keys.
//
// The two-phase kernel (batch.go) does not change what the checker sees
// in serial mode: extraction keeps events logically pending, and fire()
// still consults the checker per event in application order, so the
// reference pop sequence is compared exactly as it was against the old
// pop-and-fire loop. In parallel mode (parallel.go) a dispatched window's
// events fire concurrently, so the coordinator consumes the checker for
// the whole window in batch-rank order before dispatch — asserting the
// extracted batch matches the reference heap's pop order — and staged
// batch-cancels merge into the deleted set afterwards (exec.go).

type shadowKey struct {
	at  Time
	seq uint64
}

type shadowChecker struct {
	heap    []shadowKey
	deleted map[uint64]struct{} // seqs unlinked before firing
	s       *Simulator
}

// EnableOrderCheck attaches a shadow reference queue to the simulator:
// every subsequent schedule/unlink/fire is mirrored and each fired event
// is checked to be the global (at, seq) minimum — per fire in serial
// mode, per extracted window (in batch-rank order, before dispatch) when
// workers are configured. Costs O(log n) per operation; for tests only.
func (s *Simulator) EnableOrderCheck() {
	s.check = &shadowChecker{deleted: make(map[uint64]struct{}), s: s}
}

// locate reports which tier currently holds the event with the given seq,
// plus the tier boundaries — forensic context for an OrderViolation.
func (c *shadowChecker) locate(seq uint64) string {
	s := c.s
	out := "lowBound=" + s.lowBound.String() + " topStart=" + s.topStart.String()
	for i, r := range s.rungs {
		out += " rung[" + itoa(uint64(i)) + "]{start=" + r.start.String() +
			" width=" + r.width.String() + " cur=" + itoa(uint64(r.cur)) +
			" used=" + itoa(uint64(r.used)) + "}"
	}
	find := func(ev *Event) bool { return ev != nil && ev.seq == seq }
	for _, ev := range s.bottom {
		if find(ev) {
			return out + "; seq in bottom"
		}
	}
	for i, r := range s.rungs {
		for bi := 0; bi < r.used; bi++ {
			for _, ev := range r.buckets[bi] {
				if find(ev) {
					return out + "; seq in rung " + itoa(uint64(i)) + " bucket " +
						itoa(uint64(bi)) + " (cur " + itoa(uint64(r.cur)) + ") at=" + ev.at.String()
				}
			}
		}
	}
	for _, ev := range s.top {
		if find(ev) {
			return out + "; seq in top"
		}
	}
	return out + "; seq NOT FOUND in any tier"
}

func (c *shadowChecker) push(at Time, seq uint64) {
	c.heap = append(c.heap, shadowKey{at, seq})
	i := len(c.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !c.less(i, p) {
			break
		}
		c.heap[i], c.heap[p] = c.heap[p], c.heap[i]
		i = p
	}
}

func (c *shadowChecker) less(i, j int) bool {
	a, b := c.heap[i], c.heap[j]
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (c *shadowChecker) pop() shadowKey {
	top := c.heap[0]
	n := len(c.heap) - 1
	c.heap[0] = c.heap[n]
	c.heap = c.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && c.less(l, m) {
			m = l
		}
		if r < n && c.less(r, m) {
			m = r
		}
		if m == i {
			break
		}
		c.heap[i], c.heap[m] = c.heap[m], c.heap[i]
		i = m
	}
	return top
}

// fire verifies ev is the reference minimum among live shadow entries.
func (c *shadowChecker) fire(ev *Event) {
	for len(c.heap) > 0 {
		top := c.heap[0]
		if _, dead := c.deleted[top.seq]; dead {
			delete(c.deleted, top.seq)
			c.pop()
			continue
		}
		if top.at != ev.at || top.seq != ev.seq {
			panic(&OrderViolation{WantAt: top.at, WantSeq: top.seq, GotAt: ev.at, GotSeq: ev.seq,
				Detail: c.locate(top.seq)})
		}
		c.pop()
		return
	}
	panic(&OrderViolation{GotAt: ev.at, GotSeq: ev.seq})
}

// OrderViolation reports the first event the scheduler fired out of
// (at, seq) order, as seen by the shadow checker.
type OrderViolation struct {
	WantAt  Time
	WantSeq uint64
	GotAt   Time
	GotSeq  uint64
	Detail  string
}

func (o *OrderViolation) Error() string {
	return "sim: order violation: fired (" + o.GotAt.String() + ", seq " +
		itoa(o.GotSeq) + "), reference minimum is (" + o.WantAt.String() +
		", seq " + itoa(o.WantSeq) + "); " + o.Detail
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

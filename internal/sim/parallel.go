package sim

import (
	"sync"
	"sync/atomic"
)

// This file is the opt-in parallel application path. Run/RunUntil with
// SetWorkers(n>1) apply each extracted batch as a sequence of:
//
//	global event ... [window of keyed events] ... global event ...
//
// Unkeyed (ConflictAll) events are full barriers and fire inline on the
// coordinator, exactly like serial mode — they may draw RNG, transmit,
// touch anything. A window — a maximal run of keyed events between
// barriers — is partitioned into conflict-disjoint groups (conflict.go)
// and fanned across the pool; each group's events run in batch-rank order
// on whichever worker claims the group, staging kernel effects through the
// worker's ExecCtx. After the join the coordinator merges staged effects
// in (rank, call) order and sweeps the fired events (exec.go), leaving
// queue state byte-identical to serial application of the same window.
//
// Windows smaller than minWindow are applied inline: group dispatch costs
// a few microseconds of wake/join latency, so sparse batches must never
// pay it.

// defaultMinWindow is the smallest keyed window worth dispatching to the
// pool; below it the coordinator applies the window inline (still via the
// serial path, so behavior is identical either way).
const defaultMinWindow = 16

// groupChunk is how many groups a worker claims per atomic fetch-add.
const groupChunk = 4

// flushJob is one window dispatch: the groups to run and the join state.
type flushJob struct {
	groups [][]*Event
	next   atomic.Int32
	wg     sync.WaitGroup
}

type workerPool struct {
	jobs chan *flushJob
	done sync.WaitGroup
}

// SetWorkers sets the number of workers (including the coordinator) used
// to apply same-timestamp event windows; n <= 1 restores pure serial
// execution and stops the pool. Output is byte-identical for every n by
// construction — n only changes wall-clock. Must not be called while the
// simulator is running a batch.
func (s *Simulator) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == s.workers || (n == 1 && s.pool == nil) {
		s.workers = n
		return
	}
	if s.pool != nil {
		close(s.pool.jobs)
		s.pool.done.Wait()
		s.pool = nil
		s.wctx = nil
	}
	s.workers = n
	if s.minWindow == 0 {
		s.minWindow = defaultMinWindow
	}
	if n > 1 {
		s.wctx = make([]*ExecCtx, n)
		for i := range s.wctx {
			s.wctx[i] = &ExecCtx{s: s}
		}
		p := &workerPool{jobs: make(chan *flushJob, n-1)}
		p.done.Add(n - 1)
		for i := 1; i < n; i++ {
			c := s.wctx[i]
			go func() {
				defer p.done.Done()
				for job := range p.jobs {
					runGroups(job, c)
					job.wg.Done()
				}
			}()
		}
		s.pool = p
	}
}

// Workers returns the configured worker count (1 = serial).
func (s *Simulator) Workers() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// runGroups claims groups off the job until none remain, firing each
// group's events in batch-rank order through the given staging ctx.
func runGroups(job *flushJob, c *ExecCtx) {
	n := int32(len(job.groups))
	for {
		base := job.next.Add(groupChunk) - groupChunk
		if base >= n {
			return
		}
		hi := base + groupChunk
		if hi > n {
			hi = n
		}
		for gi := base; gi < hi; gi++ {
			for _, ev := range job.groups[gi] {
				if ev.loc != locBatch {
					continue // tombstoned by an earlier event of this group
				}
				// Mirror serial release-before-run semantics without the
				// (coordinator-owned) freelist: the event's own timer goes
				// stale before its callback runs, so in-callback Cancel or
				// Reschedule of it takes the fresh-schedule path.
				ev.loc = locNone
				ev.gen++
				c.fired = append(c.fired, ev)
				c.rank = ev.index
				if ev.kfn != nil {
					ev.kfn(c)
				} else {
					ev.fn()
				}
			}
		}
	}
}

// runParallel is the Run/RunUntil driver for workers > 1. The event limit
// is checked at batch granularity here (a batch is indivisible once its
// application starts), versus per event in serial mode.
func (s *Simulator) runParallel(end Time, bounded bool) {
	for {
		at, ok := s.peek()
		if !ok {
			break
		}
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
		if bounded && at > end {
			s.now = end
			return
		}
		s.applyCurrentBatch()
	}
	if bounded && s.now < end {
		s.now = end
	}
}

// applyCurrentBatch applies the whole current batch (extracting one if
// needed): globals inline, keyed windows via flushWindow.
func (s *Simulator) applyCurrentBatch() {
	if s.batchPos >= len(s.batch) {
		s.resetBatch()
		if !s.extract() {
			return
		}
	}
	for s.batchPos < len(s.batch) {
		ev := s.batch[s.batchPos]
		s.batch[s.batchPos] = nil
		s.batchPos++
		if ev == nil {
			continue
		}
		if ev.key.isGlobal() {
			s.flushWindow()
			s.fire(ev)
			continue
		}
		s.window = append(s.window, ev)
	}
	s.flushWindow()
}

// flushWindow applies the accumulated keyed window: inline when small,
// group-parallel otherwise. Events tombstoned since accumulation (by a
// barrier event firing between windows) are skipped either way.
func (s *Simulator) flushWindow() {
	w := s.window
	if len(w) == 0 {
		return
	}
	// Compact away tombstones in place; w aliases s.window's backing
	// array, which is reset (and its pointers dropped) on exit.
	live := w[:0]
	for _, ev := range w {
		if ev.loc == locBatch {
			live = append(live, ev)
		}
	}
	if len(live) < s.minWindow || s.workers < 2 {
		for _, ev := range live {
			if ev.loc == locBatch { // an earlier window event may cancel a later one
				s.fire(ev)
			}
		}
		s.resetWindow(w)
		return
	}
	groups := s.partitionWindow(live)
	if len(groups) == 1 {
		for _, ev := range groups[0] {
			if ev.loc == locBatch {
				s.fire(ev)
			}
		}
		s.resetWindow(w)
		return
	}
	s.now = live[0].at
	if s.check != nil {
		// The shadow checker asserts extraction order, so it consumes the
		// window in batch-rank order on the coordinator before dispatch —
		// in parallel mode "the extracted batch matches the reference pop
		// order" is checked here rather than per-fire.
		for _, ev := range live {
			s.check.fire(ev)
		}
	}
	job := s.job
	if job == nil {
		job = &flushJob{}
		s.job = job
	}
	job.groups = groups
	job.next.Store(0)
	job.wg.Add(s.workers - 1)
	s.flushing = true
	for i := 1; i < s.workers; i++ {
		s.pool.jobs <- job
	}
	runGroups(job, s.wctx[0])
	job.wg.Wait()
	s.flushing = false
	job.groups = nil
	s.applyStaged()
	s.sweepFired()
	s.resetWindow(w)
}

// resetWindow clears the window scratch without retaining event pointers.
func (s *Simulator) resetWindow(w []*Event) {
	for i := range w {
		w[i] = nil
	}
	s.window = w[:0]
}

package sim

// This file implements the extraction phase of the two-phase kernel: Step,
// Run, and RunUntil no longer pop one event at a time but extract the full
// batch of pending events sharing the minimum timestamp, in seq order, and
// then apply the batch (serially in sim.go, window-parallel in parallel.go).
//
// Extraction is observationally identical to pop-one/fire-one because
// (a) the batch is exactly the prefix of the global (at, seq) order with
// the minimum time, (b) events scheduled during application receive larger
// seqs, so same-timestamp arrivals form a later batch at the same time and
// still run after the current batch, as they would have serially, and
// (c) Cancel/Reschedule of an extracted-but-unfired event tombstones its
// batch slot (see unlink), which application skips.

// extract fills s.batch with every pending event at the minimum pending
// timestamp, in seq order. It reports false when nothing is pending. The
// batch must be empty on entry.
func (s *Simulator) extract() bool {
	if len(s.bottom) == 0 && !s.refill() {
		return false
	}
	t := s.bottom[0].at
	for {
		ev := s.bottomPop()
		ev.loc = locBatch
		ev.index = int32(len(s.batch))
		s.batch = append(s.batch, ev)
		// Tier invariant: bottom events are < lowBound and every rung/top
		// event is >= lowBound, so once the head time is t, *all* events at
		// t are already in the bottom heap — draining while the head
		// matches is exhaustive, no mid-extraction refill can add more.
		if len(s.bottom) == 0 || s.bottom[0].at != t {
			return true
		}
	}
}

// resetBatch discards the (fully consumed) batch. Consumed slots are
// already nil, so truncation leaks no event pointers.
func (s *Simulator) resetBatch() {
	s.batch = s.batch[:0]
	s.batchPos = 0
}

// nextBatchEvent returns the next batch slot (nil for a tombstone),
// extracting a fresh batch when the current one is exhausted. The second
// result is false when the queue is empty.
func (s *Simulator) nextBatchEvent() (*Event, bool) {
	if s.batchPos >= len(s.batch) {
		s.resetBatch()
		if !s.extract() {
			return nil, false
		}
	}
	ev := s.batch[s.batchPos]
	s.batch[s.batchPos] = nil
	s.batchPos++
	return ev, true
}

// peek reports the timestamp of the next event that would fire, advancing
// past tombstones (and extracting) as needed without firing anything.
func (s *Simulator) peek() (Time, bool) {
	for s.batchPos < len(s.batch) && s.batch[s.batchPos] == nil {
		s.batchPos++
	}
	if s.batchPos < len(s.batch) {
		return s.batch[s.batchPos].at, true
	}
	s.resetBatch()
	if len(s.bottom) == 0 && !s.refill() {
		return 0, false
	}
	return s.bottom[0].at, true
}

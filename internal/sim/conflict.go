package sim

// Conflict keys describe an event's mutation footprint so the parallel
// executor (parallel.go) can partition a same-timestamp window into groups
// that provably cannot touch the same state. The partition only ever
// *refines* serial execution — two events land in different groups only if
// their keys say they are disjoint — so any conservative over-approximation
// is safe, and the zero value (ConflictAll) makes every untagged event a
// full barrier.
//
// Keys are spatial because the model's only parallel-safe work is spatial:
// the radio grid (internal/radio) already partitions the arena into cells
// of side MaxRange, so a key carries a node id plus the grid cell the node
// occupied when the key was made. Cells may be stale by the time the event
// fires (the grid refreshes positions in epochs, and nodes drift), so the
// distance thresholds below include margin: they are deliberately larger
// than the exact interference geometry requires.
//
// Kinds:
//
//   - ConflictAll: conflicts with everything (the default; non-spatial).
//   - node key: the event mutates only state owned by one node (e.g. an
//     overheard frame's end-of-reception: receiver's active-list and NAV).
//     Two node keys conflict iff they name the same node — unless one
//     carries no cell, in which case it also conflicts with every area key.
//   - area key: the event mutates state across a node's radio neighborhood.
//     Conflicts with node keys within chebyshev distance areaNodeMargin
//     cells and area keys within areaAreaMargin cells.
//
// Packing (uint64): kind in bits 62-63, node id in bits 32-61, biased cell
// x in bits 16-31, biased cell y in bits 0-15.

// ConflictKey is a packed event-footprint descriptor. The zero value
// conservatively conflicts with every other key.
type ConflictKey uint64

// ConflictAll is the zero ConflictKey: a full barrier.
const ConflictAll ConflictKey = 0

const (
	kindShift = 62
	kindNode  = uint64(1)
	kindArea  = uint64(2)

	nodeShift = 32
	nodeMax   = 1<<30 - 1

	// cellBias recenters signed cell coordinates into 16 bits; cellNone
	// (all ones) marks a key made without position information.
	cellBias = 1 << 15
	cellNone = 0xFFFF

	// areaNodeMargin and areaAreaMargin are the conservative chebyshev
	// cell-distance thresholds. Exact geometry: an area event reaches at
	// most MaxRange = one cell side from its node, so area-vs-node needs
	// cheb <= 2 and area-vs-area cheb <= 3 even when both positions sit at
	// the worst corner of their cells; one extra cell on each absorbs grid
	// staleness (epoch refresh slack plus mobility drift between keying
	// and firing).
	areaNodeMargin = 3
	areaAreaMargin = 4
)

func packCell(c int32) (uint64, bool) {
	b := int64(c) + cellBias
	if b < 0 || b >= cellNone {
		return 0, false
	}
	return uint64(b), true
}

// NodeKey returns the footprint "state owned by node, position unknown".
// Without a cell it must conservatively conflict with every area key; node
// ids outside the packable range degrade to ConflictAll.
func NodeKey(node int32) ConflictKey {
	if node < 0 || node > nodeMax {
		return ConflictAll
	}
	return ConflictKey(kindNode<<kindShift | uint64(node)<<nodeShift | cellNone<<16 | cellNone)
}

// NodeCellKey returns the footprint "state owned by node, last seen in
// grid cell (cx, cy)". Unpackable coordinates degrade to ConflictAll.
func NodeCellKey(node, cx, cy int32) ConflictKey {
	if node < 0 || node > nodeMax {
		return ConflictAll
	}
	bx, okx := packCell(cx)
	by, oky := packCell(cy)
	if !okx || !oky {
		return ConflictAll
	}
	return ConflictKey(kindNode<<kindShift | uint64(node)<<nodeShift | bx<<16 | by)
}

// AreaKey returns the footprint "node plus its radio neighborhood around
// grid cell (cx, cy)". Unpackable coordinates degrade to ConflictAll.
func AreaKey(node, cx, cy int32) ConflictKey {
	if node < 0 || node > nodeMax {
		return ConflictAll
	}
	bx, okx := packCell(cx)
	by, oky := packCell(cy)
	if !okx || !oky {
		return ConflictAll
	}
	return ConflictKey(kindArea<<kindShift | uint64(node)<<nodeShift | bx<<16 | by)
}

func (k ConflictKey) kind() uint64   { return uint64(k) >> kindShift }
func (k ConflictKey) node() uint64   { return uint64(k) >> nodeShift & nodeMax }
func (k ConflictKey) cellX() uint64  { return uint64(k) >> 16 & 0xFFFF }
func (k ConflictKey) cellY() uint64  { return uint64(k) & 0xFFFF }
func (k ConflictKey) hasCell() bool  { return k.cellX() != cellNone }
func (k ConflictKey) isGlobal() bool { return k == ConflictAll }

func chebCells(a, b ConflictKey) uint64 {
	dx := a.cellX() - b.cellX()
	if int64(dx) < 0 {
		dx = -dx
	}
	dy := a.cellY() - b.cellY()
	if int64(dy) < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// Conflicts reports whether events carrying keys k and o may touch the
// same state. It is symmetric and reflexive, and conservative in every
// direction: unknown positions and out-of-range packings conflict.
func (k ConflictKey) Conflicts(o ConflictKey) bool {
	if k.isGlobal() || o.isGlobal() {
		return true
	}
	if k.node() == o.node() {
		return true
	}
	kk, ok := k.kind(), o.kind()
	if kk == kindNode && ok == kindNode {
		return false
	}
	// At least one area key: spatial overlap decides. A missing cell on
	// either side means the position is unknown — conflict.
	if !k.hasCell() || !o.hasCell() {
		return true
	}
	d := chebCells(k, o)
	if kk == kindArea && ok == kindArea {
		return d <= areaAreaMargin
	}
	return d <= areaNodeMargin
}

// groupScratch holds the window partitioner's reusable state: a union-find
// over window indexes, a node-id to representative-index map for the O(1)
// node-node path, and the output group slices.
type groupScratch struct {
	parent  []int32
	nodeRep map[uint64]int32
	groupOf []int32
	groups  [][]*Event
}

func (g *groupScratch) find(i int32) int32 {
	for g.parent[i] != i {
		g.parent[i] = g.parent[g.parent[i]] // path halving
		i = g.parent[i]
	}
	return i
}

func (g *groupScratch) union(a, b int32) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		if ra < rb {
			g.parent[rb] = ra
		} else {
			g.parent[ra] = rb
		}
	}
}

// partitionWindow splits a window of keyed events (batch-rank order) into
// conflict-disjoint groups. Group order and member order both follow batch
// rank, so the partition — and everything the executor derives from it —
// is deterministic. The node/node fast path is a map probe; area keys (rare)
// fall back to a pairwise scan against the whole window, which matches the
// Conflicts predicate by construction.
func (s *Simulator) partitionWindow(w []*Event) [][]*Event {
	g := &s.groups
	if g.nodeRep == nil {
		g.nodeRep = make(map[uint64]int32)
	}
	clear(g.nodeRep)
	g.parent = g.parent[:0]
	g.groupOf = g.groupOf[:0]
	for i := range w {
		g.parent = append(g.parent, int32(i))
		g.groupOf = append(g.groupOf, -1)
	}
	anyArea := false
	for i, ev := range w {
		k := ev.key
		if k.kind() == kindArea {
			anyArea = true
			continue
		}
		if r, ok := g.nodeRep[k.node()]; ok {
			g.union(int32(i), r)
		} else {
			g.nodeRep[k.node()] = int32(i)
		}
	}
	if anyArea {
		for i, ev := range w {
			if ev.key.kind() != kindArea {
				continue
			}
			for j, other := range w {
				if j != i && ev.key.Conflicts(other.key) {
					g.union(int32(i), int32(j))
				}
			}
		}
	}
	ng := 0
	for i := range w {
		r := g.find(int32(i))
		gi := g.groupOf[r]
		if gi < 0 {
			gi = int32(ng)
			g.groupOf[r] = gi
			if ng == len(g.groups) {
				g.groups = append(g.groups, nil)
			}
			g.groups[ng] = g.groups[ng][:0]
			ng++
		}
		g.groups[gi] = append(g.groups[gi], w[i])
	}
	return g.groups[:ng]
}

package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// This file tests the conflict layer and the parallel executor.
//
// The conflict-key tests pin the predicate's algebra (symmetric, reflexive,
// conservative degradations) and the partitioner's two obligations: groups
// form a partition of the window, and events in different groups never
// conflict. The differential harness then closes the loop end to end: the
// same randomized trace of keyed scheduling, staged cancels, and staged
// reschedules is run serially and with every worker count 2..8, and the
// observable event order — captured through the kernel itself, as barrier
// events staged by the keyed callbacks — must be byte-identical.

func TestConflictKeyAlgebra(t *testing.T) {
	keys := []ConflictKey{
		ConflictAll,
		NodeKey(0),
		NodeKey(7),
		NodeCellKey(7, 3, 3),
		NodeCellKey(8, 3, 3),
		NodeCellKey(9, 40, 40),
		AreaKey(10, 3, 3),
		AreaKey(11, 3+areaAreaMargin, 3),
		AreaKey(12, 40, 40),
		NodeCellKey(13, -5, -5),
		AreaKey(14, -5, -5),
	}
	for _, a := range keys {
		if !a.Conflicts(a) {
			t.Fatalf("key %#x not reflexive", uint64(a))
		}
		if !ConflictAll.Conflicts(a) || !a.Conflicts(ConflictAll) {
			t.Fatalf("ConflictAll must conflict with %#x", uint64(a))
		}
		for _, b := range keys {
			if a.Conflicts(b) != b.Conflicts(a) {
				t.Fatalf("asymmetric: %#x vs %#x", uint64(a), uint64(b))
			}
		}
	}

	cases := []struct {
		name string
		a, b ConflictKey
		want bool
	}{
		{"same node, no cells", NodeKey(3), NodeKey(3), true},
		{"distinct nodes, no cells", NodeKey(3), NodeKey(4), false},
		{"distinct nodes, same cell", NodeCellKey(3, 2, 2), NodeCellKey(4, 2, 2), false},
		{"same node, far cells", NodeCellKey(3, 0, 0), NodeCellKey(3, 90, 90), true},
		{"cell-less node vs area", NodeKey(3), AreaKey(4, 2, 2), true},
		{"area vs node at margin", AreaKey(3, 0, 0), NodeCellKey(4, areaNodeMargin, 0), true},
		{"area vs node past margin", AreaKey(3, 0, 0), NodeCellKey(4, areaNodeMargin+1, 0), false},
		{"area vs area at margin", AreaKey(3, 0, 0), AreaKey(4, 0, areaAreaMargin), true},
		{"area vs area past margin", AreaKey(3, 0, 0), AreaKey(4, 0, areaAreaMargin+1), false},
		{"negative cells, adjacent", AreaKey(3, -2, -2), NodeCellKey(4, -4, -3), true},
	}
	for _, tc := range cases {
		if got := tc.a.Conflicts(tc.b); got != tc.want {
			t.Errorf("%s: Conflicts = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Unpackable inputs must degrade to the full barrier, never to a
	// quietly-wrong spatial key.
	for _, k := range []ConflictKey{
		NodeKey(-1), NodeKey(nodeMax + 1),
		NodeCellKey(1, 1<<20, 0), NodeCellKey(1, 0, -(1 << 20)),
		AreaKey(1, 1<<20, 0), AreaKey(-1, 0, 0),
		NodeCellKey(1, cellNone-cellBias, 0), // would collide with the sentinel
	} {
		if k != ConflictAll {
			t.Errorf("unpackable input produced non-barrier key %#x", uint64(k))
		}
	}
}

// randomKey draws a keyed (never global) footprint: node keys dominate, with
// enough cell-carrying and area keys to exercise both partitioner paths.
func randomKey(rng *rand.Rand, nodes int) ConflictKey {
	n := int32(rng.Intn(nodes))
	switch rng.Intn(10) {
	case 0, 1: // area key in a small cell range: forces the pairwise path
		return AreaKey(n, int32(rng.Intn(12)), int32(rng.Intn(12)))
	case 2, 3, 4: // node key with position
		return NodeCellKey(n, int32(rng.Intn(12)), int32(rng.Intn(12)))
	default: // position-unknown node key
		return NodeKey(n)
	}
}

func TestPartitionWindowProperties(t *testing.T) {
	s := New(1)
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		w := make([]*Event, n)
		for i := range w {
			w[i] = &Event{key: randomKey(rng, rng.Intn(20)+1), index: int32(i)}
		}
		groups := s.partitionWindow(w)

		// Partition: every event appears in exactly one group, and both
		// group order and member order follow batch rank (first-seen).
		seen := make(map[*Event]bool)
		total := 0
		for gi, g := range groups {
			if len(g) == 0 {
				t.Fatalf("seed %d: empty group %d", seed, gi)
			}
			for i, ev := range g {
				if seen[ev] {
					t.Fatalf("seed %d: event %d in two groups", seed, ev.index)
				}
				seen[ev] = true
				total++
				if i > 0 && g[i-1].index > ev.index {
					t.Fatalf("seed %d: group %d out of rank order", seed, gi)
				}
			}
		}
		if total != n {
			t.Fatalf("seed %d: partition covers %d of %d events", seed, total, n)
		}

		// Safety: no conflicting pair may be split across groups.
		groupOf := make(map[*Event]int)
		for gi, g := range groups {
			for _, ev := range g {
				groupOf[ev] = gi
			}
		}
		for i, a := range w {
			for _, b := range w[i+1:] {
				if a.key.Conflicts(b.key) && groupOf[a] != groupOf[b] {
					t.Fatalf("seed %d: conflicting keys %#x/%#x split into groups %d/%d",
						seed, uint64(a.key), uint64(b.key), groupOf[a], groupOf[b])
				}
			}
		}

		// Determinism: the same window partitions identically. Snapshot
		// first — the scratch is reused across calls.
		shape := make([][]int32, len(groups))
		for gi, g := range groups {
			for _, ev := range g {
				shape[gi] = append(shape[gi], ev.index)
			}
		}
		again := s.partitionWindow(w)
		if len(again) != len(shape) {
			t.Fatalf("seed %d: repartition changed group count", seed)
		}
		for gi, g := range again {
			if len(g) != len(shape[gi]) {
				t.Fatalf("seed %d: repartition changed group %d size", seed, gi)
			}
			for i, ev := range g {
				if ev.index != shape[gi][i] {
					t.Fatalf("seed %d: repartition changed group %d member %d", seed, gi, i)
				}
			}
		}
	}
}

// parallelTrace drives one randomized trace of keyed activity and returns
// the observable event log. Every kernel-visible decision is drawn from
// RNG streams partitioned exactly as the real model partitions them: a
// driver stream consumed only by barrier events, and one private stream
// per node consumed only by that node's keyed callbacks (which the
// executor serializes per conflict group). The log itself is only ever
// appended by barrier events, so identical logs mean identical seq
// assignment and identical firing order.
func parallelTrace(seed int64, workers int, checked bool) []string {
	const (
		nodes  = 16
		ticks  = 12
		step   = Time(200)
		maxGas = 200000 // safety net: a runaway divergence fails loudly on log length
	)
	s := New(seed)
	s.SetEventLimit(maxGas)
	if checked {
		s.EnableOrderCheck()
	}
	if workers > 1 {
		s.SetWorkers(workers)
		defer s.SetWorkers(1)
		s.minWindow = 2 // dispatch even tiny windows: maximum path coverage
	}

	var log []string
	type nodeState struct {
		rng    *rand.Rand
		timers []Timer // this node's live keyed timers, oldest first
		nextID int
	}
	ns := make([]*nodeState, nodes)
	for i := range ns {
		ns[i] = &nodeState{rng: rand.New(rand.NewSource(seed<<8 + int64(i)))}
	}
	driver := rand.New(rand.NewSource(seed ^ 0x5eedfeed))

	// keyedFire builds node n's staged callback: it records its firing by
	// staging a barrier log event, then mutates only node-n state — more
	// keyed events on n's key, cancels and reschedules of n's own timers.
	var keyedFire func(n, id int) func(*ExecCtx)
	keyedFire = func(n, id int) func(*ExecCtx) {
		return func(ctx *ExecCtx) {
			st := ns[n]
			at := ctx.Now()
			ctx.At(at, func() { log = append(log, fmt.Sprintf("n%d#%d@%d", n, id, at)) })
			r := st.rng.Intn(10)
			switch {
			case r < 4: // offspring on the same key (subcritical overall)
				nid := st.nextID
				st.nextID++
				key := NodeKey(int32(n))
				if st.rng.Intn(3) == 0 {
					key = NodeCellKey(int32(n), int32(n%4), int32(n/4))
				}
				d := Time(st.rng.Intn(3)) * step / 2
				tm := ctx.AtExec(at+d, key, keyedFire(n, nid))
				st.timers = append(st.timers, tm)
			case r < 6: // cancel own oldest still-pending timer
				for len(st.timers) > 0 {
					tm := st.timers[0]
					st.timers = st.timers[1:]
					if ctx.Pending(tm) {
						ctx.Cancel(tm)
						break
					}
				}
			case r < 8: // reschedule own timer into a barrier callback
				if len(st.timers) > 0 {
					i := st.rng.Intn(len(st.timers))
					tm := st.timers[i]
					if ctx.Pending(tm) {
						rid := st.nextID
						st.nextID++
						rat := at + Time(st.rng.Intn(2)+1)*step/3
						st.timers[i] = ctx.Reschedule(tm, rat, func() {
							log = append(log, fmt.Sprintf("resched n%d#%d", n, rid))
						})
					}
				}
			}
		}
	}

	// The driver is a barrier-event chain: each tick logs itself and
	// seeds a burst of keyed events clustered on few timestamps, so the
	// extracted batches contain wide same-time keyed windows.
	var tick func(k int) func()
	tick = func(k int) func() {
		return func() {
			now := s.Now()
			log = append(log, fmt.Sprintf("tick%d@%d", k, now))
			burst := driver.Intn(40) + 10
			for i := 0; i < burst; i++ {
				n := driver.Intn(nodes)
				st := ns[n]
				id := st.nextID
				st.nextID++
				at := now + Time(driver.Intn(3)+1)*step
				key := NodeKey(int32(n))
				switch driver.Intn(6) {
				case 0:
					key = AreaKey(int32(n), int32(n%4)*2, int32(n/4)*2)
				case 1:
					key = NodeCellKey(int32(n), int32(n%4), int32(n/4))
				}
				st.timers = append(st.timers, s.AtExec(at, key, keyedFire(n, id)))
			}
			if k+1 < ticks {
				s.At(now+3*step, tick(k+1))
			}
		}
	}
	s.At(step, tick(0))
	s.Run()
	log = append(log, fmt.Sprintf("end@%d fired=%d pending=%d", s.Now(), s.Fired(), s.Pending()))
	return log
}

// parallelDiff asserts the trace is byte-identical between serial and
// workers-wide execution of the same seed.
func parallelDiff(t *testing.T, seed int64, workers int) {
	t.Helper()
	want := parallelTrace(seed, 1, false)
	got := parallelTrace(seed, workers, false)
	if len(got) != len(want) {
		t.Fatalf("seed %d workers %d: %d log entries, serial produced %d",
			seed, workers, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("seed %d workers %d: log[%d] = %q, serial = %q",
				seed, workers, i, got[i], want[i])
		}
	}
}

// TestParallelVsSerial is the always-on differential gate: every worker
// count 2..8 against the serial reference, over a spread of seeds.
func TestParallelVsSerial(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for w := 2; w <= 8; w++ {
			parallelDiff(t, seed, w)
		}
	}
}

// TestParallelShadowChecked reruns the differential trace under the
// shadow checker, which in parallel mode asserts before dispatch that
// every extracted window matches the reference heap's pop order.
func TestParallelShadowChecked(t *testing.T) {
	for seed := int64(11); seed <= 13; seed++ {
		want := parallelTrace(seed, 1, true)
		got := parallelTrace(seed, 4, true)
		if len(got) != len(want) {
			t.Fatalf("seed %d: checked parallel log length %d, serial %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: checked log[%d] = %q, serial = %q", seed, i, got[i], want[i])
			}
		}
	}
}

// FuzzParallelVsSerial lets the fuzzer pick the seed and worker count;
// crashers shrink to a trivially replayable (seed, workers) pair.
func FuzzParallelVsSerial(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(4))
	f.Add(int64(7), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, workers uint8) {
		parallelDiff(t, seed, int(workers)%7+2)
	})
}

// TestRandPanicsDuringFlush pins the guard that keeps shared-RNG draws out
// of keyed callbacks: Simulator.Rand must refuse while a parallel window
// is in flight.
func TestRandPanicsDuringFlush(t *testing.T) {
	s := New(5)
	s.SetWorkers(2)
	defer s.SetWorkers(1)
	s.minWindow = 2
	panicked := make(chan bool, 1)
	probe := func(ctx *ExecCtx) {
		defer func() { panicked <- recover() != nil }()
		s.Rand()
	}
	s.AtExec(10, NodeKey(1), probe)
	s.AtExec(10, NodeKey(2), func(*ExecCtx) {})
	s.Run()
	select {
	case ok := <-panicked:
		if !ok {
			t.Fatal("Rand did not panic inside a parallel window")
		}
	default:
		t.Fatal("probe callback never ran")
	}
}

// TestSetWorkersIdempotent exercises pool teardown and rebuild.
func TestSetWorkersIdempotent(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 4, 4, 2, 1, 1, 3, 0} {
		s.SetWorkers(n)
		want := n
		if want < 1 {
			want = 1
		}
		if s.Workers() != want {
			t.Fatalf("SetWorkers(%d): Workers() = %d", n, s.Workers())
		}
	}
	// Per-key slots: the 32 keyed callbacks run concurrently but each
	// owns its own element, matching the key contract.
	var fired [32]bool
	s.SetWorkers(3)
	s.minWindow = 1
	for i := 0; i < 32; i++ {
		s.AtKeyed(100, NodeKey(int32(i)), func() { fired[i] = true })
	}
	s.Run()
	for i, ok := range fired {
		if !ok {
			t.Fatalf("keyed event %d never fired after pool rebuild", i)
		}
	}
	s.SetWorkers(1)
}

package sim

import "sort"

// ExecCtx is the kernel handle passed to keyed callbacks (AtExec). It
// exists to solve the one problem parallel application cannot dodge:
// callbacks that schedule, cancel, or reschedule mutate the queue, and the
// queue is coordinator-owned. In serial mode (and for every unkeyed event)
// the ctx is "direct" and forwards straight to the Simulator, so behavior
// and cost are unchanged. During a parallel window flush each worker owns a
// staging ctx: kernel effects are appended to a per-worker log tagged with
// the firing event's batch rank, and after the window joins, the
// coordinator replays all logs sorted by (rank, call order) — the exact
// order a serial run would have issued the same calls, so seq assignment
// and queue state come out identical byte for byte.
//
// Contract for staged execution (enforced by discipline + the differential
// fuzz, not by the type system): a keyed callback touches the kernel only
// through its ctx, never through the Simulator directly, and only ever
// operates on timers its conflict group owns.
type ExecCtx struct {
	s      *Simulator
	direct bool
	rank   int32 // batch rank of the event currently firing on this ctx
	log    []stagedOp
	fired  []*Event // events this ctx ran, for the coordinator's sweep
}

type opKind uint8

const (
	opAt opKind = iota
	opCancel
	opCancelBatch // target was an extracted batch event, slot pre-tombstoned
	opResched
)

// stagedOp is one deferred kernel mutation. rank orders ops across workers
// (batch rank of the staging event); within a rank the log's append order
// is the callback's call order, and the merge sort is stable.
type stagedOp struct {
	kind opKind
	rank int32
	gen  uint32
	ev   *Event
	at   Time
	fn   func()
	kfn  func(*ExecCtx)
	key  ConflictKey
}

// Now returns the current virtual time (the window's shared timestamp
// during staged execution).
func (c *ExecCtx) Now() Time { return c.s.now }

// At schedules fn at absolute time at, like Simulator.At.
func (c *ExecCtx) At(at Time, fn func()) Timer {
	if c.direct {
		return c.s.At(at, fn)
	}
	return c.stageAt(at, fn, nil, ConflictAll)
}

// After schedules fn d after the current time.
func (c *ExecCtx) After(d Time, fn func()) Timer { return c.At(c.s.now+d, fn) }

// AtKeyed schedules a keyed plain callback, like Simulator.AtKeyed.
func (c *ExecCtx) AtKeyed(at Time, key ConflictKey, fn func()) Timer {
	if c.direct {
		return c.s.AtKeyed(at, key, fn)
	}
	return c.stageAt(at, fn, nil, key)
}

// AtExec schedules a keyed staged callback, like Simulator.AtExec.
func (c *ExecCtx) AtExec(at Time, key ConflictKey, fn func(*ExecCtx)) Timer {
	if c.direct {
		return c.s.AtExec(at, key, fn)
	}
	return c.stageAt(at, nil, fn, key)
}

func (c *ExecCtx) stageAt(at Time, fn func(), kfn func(*ExecCtx), key ConflictKey) Timer {
	if at < c.s.now {
		panic("sim: staged scheduling before now")
	}
	// A fresh node rather than a pooled one: the freelist is coordinator-
	// owned. The node joins the pool when it is eventually released.
	ev := &Event{at: at, fn: fn, kfn: kfn, key: key, loc: locStaged, index: -1, bucket: -1}
	c.log = append(c.log, stagedOp{kind: opAt, rank: c.rank, ev: ev})
	return Timer{ev: ev, gen: 0}
}

// Pending reports whether t is still scheduled, taking this ctx's staged
// effects into account. During staged execution raw Timer.Pending can be
// stale for queue-resident targets of a staged Cancel; group-owned code
// must ask the ctx.
func (c *ExecCtx) Pending(t Timer) bool {
	if c.direct {
		return t.Pending()
	}
	return c.stagedPending(t)
}

func (c *ExecCtx) stagedPending(t Timer) bool {
	if t.ev == nil || t.gen != t.ev.gen {
		return false
	}
	for i := len(c.log) - 1; i >= 0; i-- {
		op := &c.log[i]
		if op.ev != t.ev {
			continue
		}
		switch op.kind {
		case opAt, opResched:
			return true
		case opCancel, opCancelBatch:
			return false
		}
	}
	return t.ev.loc != locNone
}

// Cancel removes t's event if still pending, like Simulator.Cancel.
func (c *ExecCtx) Cancel(t Timer) {
	if c.direct {
		c.s.Cancel(t)
		return
	}
	if !c.stagedPending(t) {
		return
	}
	ev := t.ev
	if ev.loc == locBatch {
		// The target is an extracted batch event this group owns (key
		// contract). Tombstone it directly — slot writes are per-slot
		// disjoint across groups and the coordinator does not read the
		// batch during a flush — so the group's own skip check and raw
		// Timer.Pending turn false immediately; queue bookkeeping
		// (npend, shadow checker, node release) happens at merge.
		c.s.batch[ev.index] = nil
		ev.loc = locNone
		c.log = append(c.log, stagedOp{kind: opCancelBatch, rank: c.rank, gen: t.gen, ev: ev})
		return
	}
	c.log = append(c.log, stagedOp{kind: opCancel, rank: c.rank, gen: t.gen, ev: ev})
}

// Reschedule moves t's event to fire fn at time at, like
// Simulator.Reschedule.
func (c *ExecCtx) Reschedule(t Timer, at Time, fn func()) Timer {
	if c.direct {
		return c.s.Reschedule(t, at, fn)
	}
	if at < c.s.now {
		panic("sim: staged rescheduling before now")
	}
	if !c.stagedPending(t) {
		return c.stageAt(at, fn, nil, ConflictAll)
	}
	ev := t.ev
	if ev.loc == locBatch {
		// Same direct-tombstone move as Cancel; the merge re-inserts the
		// node into the queue with its new deadline and a fresh seq.
		c.s.batch[ev.index] = nil
		ev.loc = locStaged
	}
	c.log = append(c.log, stagedOp{kind: opResched, rank: c.rank, gen: t.gen, ev: ev, at: at, fn: fn})
	return t
}

// RescheduleAfter moves t's event to fire fn d after the current time.
func (c *ExecCtx) RescheduleAfter(t Timer, d Time, fn func()) Timer {
	return c.Reschedule(t, c.s.now+d, fn)
}

// applyStaged replays every worker's staged kernel effects on the
// coordinator in (rank, call) order — exactly the order serial execution
// of the window would have issued them, which makes seq assignment (and
// therefore all downstream firing order) identical to serial.
func (s *Simulator) applyStaged() {
	buf := s.mergeBuf[:0]
	for _, c := range s.wctx {
		for i := range c.log {
			buf = append(buf, &c.log[i])
		}
	}
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].rank < buf[j].rank })
	for _, op := range buf {
		switch op.kind {
		case opAt:
			ev := op.ev
			ev.seq = s.seq
			s.seq++
			s.schedule(ev)
		case opCancel:
			s.Cancel(Timer{ev: op.ev, gen: op.gen})
		case opCancelBatch:
			// Slot was tombstoned worker-side; finish unlink's bookkeeping.
			if s.check != nil {
				s.check.deleted[op.ev.seq] = struct{}{}
			}
			s.npend--
			s.release(op.ev)
		case opResched:
			ev := op.ev
			if op.gen != ev.gen {
				// The staged-pending prediction can only diverge from merge
				// state if a callback operated on a timer outside its
				// conflict group — a key-contract violation.
				panic("sim: staged reschedule target raced its group")
			}
			if ev.loc == locStaged {
				// Batch-origin target: the worker tombstoned its slot, so
				// mirror unlink's bookkeeping here before re-inserting.
				if s.check != nil {
					s.check.deleted[ev.seq] = struct{}{}
				}
				s.npend--
			} else {
				s.unlink(ev)
			}
			ev.at = op.at
			ev.fn = op.fn
			ev.kfn = op.kfn
			ev.key = op.key
			ev.seq = s.seq
			s.seq++
			s.schedule(ev)
		}
	}
	for i := range buf {
		buf[i] = nil
	}
	s.mergeBuf = buf[:0]
	for _, c := range s.wctx {
		for i := range c.log {
			c.log[i] = stagedOp{}
		}
		c.log = c.log[:0]
	}
}

// sweepFired finishes the window's per-event accounting on the
// coordinator: every event a worker ran leaves the pending count, bumps
// the fired count, and returns to the freelist. The workers' own loc/gen
// writes already made the events' timers stale at fire time (mirroring
// serial release-before-run); the pool append has to wait until here
// because the freelist is coordinator-owned.
func (s *Simulator) sweepFired() {
	for _, c := range s.wctx {
		for i, ev := range c.fired {
			s.npend--
			s.fired++
			s.release(ev)
			c.fired[i] = nil
		}
		c.fired = c.fired[:0]
	}
}

package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired Time
	s.At(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Second {
		t.Fatalf("fired at %v, want 7s", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	ev := s.At(time.Second, func() { ran = true })
	s.Cancel(ev)
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Canceling twice or canceling nil must be safe.
	s.Cancel(ev)
	s.Cancel(nil)
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	ran := false
	ev := s.At(2*time.Second, func() { ran = true })
	s.At(time.Second, func() { s.Cancel(ev) })
	s.Run()
	if ran {
		t.Fatal("event canceled mid-run still ran")
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	count := 0
	s.At(1*time.Second, func() { count++ })
	s.At(10*time.Second, func() { count++ })
	s.RunUntil(5 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
	// The 10s event must still fire if we keep running.
	s.RunUntil(20 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New(1)
	ran := false
	s.At(5*time.Second, func() { ran = true })
	s.RunUntil(5 * time.Second)
	if !ran {
		t.Fatal("event at boundary did not run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(time.Second, func() {})
	})
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var vals []int64
		var tick func()
		tick = func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) < 50 {
				s.After(time.Duration(s.Rand().Int63n(int64(time.Second))), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestEventLimit(t *testing.T) {
	s := New(1)
	s.SetEventLimit(10)
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(0, tick)
	s.RunUntil(time.Hour)
	if s.Fired() != 10 {
		t.Fatalf("fired %d events, want 10", s.Fired())
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(3*time.Second, func() { got = append(got, 3) })
	s.At(1*time.Second, func() { got = append(got, 1) })
	s.At(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", s.Now())
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("equal-time events not FIFO: %v", got)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired Time
	s.At(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Second {
		t.Fatalf("fired at %v, want 7s", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	ev := s.At(time.Second, func() { ran = true })
	if !ev.Pending() {
		t.Fatal("Pending() = false for a scheduled event")
	}
	s.Cancel(ev)
	s.Run()
	if ran {
		t.Fatal("canceled event ran")
	}
	if ev.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	// Canceling twice or canceling the zero Timer must be safe.
	s.Cancel(ev)
	s.Cancel(Timer{})
}

func TestCancelFromWithinEvent(t *testing.T) {
	s := New(1)
	ran := false
	ev := s.At(2*time.Second, func() { ran = true })
	s.At(time.Second, func() { s.Cancel(ev) })
	s.Run()
	if ran {
		t.Fatal("event canceled mid-run still ran")
	}
}

func TestCancelAfterFire(t *testing.T) {
	// A Timer whose event already fired must be inert: canceling it later
	// must not touch whatever event reuses the pooled node.
	s := New(1)
	fires := 0
	stale := s.At(time.Second, func() { fires++ })
	s.Run()
	if fires != 1 {
		t.Fatalf("fired %d times, want 1", fires)
	}
	if stale.Pending() {
		t.Fatal("fired event still pending")
	}
	// The freelist hands the same node back for the next event.
	fresh := s.At(2*time.Second, func() { fires++ })
	if fresh.ev != stale.ev {
		t.Fatalf("expected pooled reuse of the fired node")
	}
	s.Cancel(stale) // stale generation: must be a no-op
	if !fresh.Pending() {
		t.Fatal("stale Cancel killed the event reusing the node")
	}
	s.Run()
	if fires != 2 {
		t.Fatalf("fired %d times, want 2 (stale cancel resurrected or killed)", fires)
	}
}

func TestPooledReuseDoesNotResurrectCanceled(t *testing.T) {
	// Cancel an event, let a new event claim the pooled node, and check
	// the old handle observes nothing and the new event still fires.
	s := New(1)
	var log []string
	old := s.At(time.Second, func() { log = append(log, "old") })
	s.Cancel(old)
	reused := s.At(time.Second, func() { log = append(log, "new") })
	if reused.ev != old.ev {
		t.Fatalf("expected the canceled node to be reused")
	}
	if old.Pending() {
		t.Fatal("canceled handle reports pending after node reuse")
	}
	s.Cancel(old) // again: must not cancel the new occupant
	s.Run()
	if len(log) != 1 || log[0] != "new" {
		t.Fatalf("log = %v, want [new]", log)
	}
}

func TestRescheduleMovesPendingEvent(t *testing.T) {
	s := New(1)
	var fired []Time
	ev := s.At(time.Second, func() { fired = append(fired, s.Now()) })
	ev2 := s.Reschedule(ev, 3*time.Second, func() { fired = append(fired, s.Now()) })
	if ev2.ev != ev.ev || ev2.gen != ev.gen {
		t.Fatal("reschedule of a pending event did not reuse its node")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 after in-place reschedule", s.Pending())
	}
	s.Run()
	if len(fired) != 1 || fired[0] != 3*time.Second {
		t.Fatalf("fired = %v, want [3s]", fired)
	}
}

func TestRescheduleEarlier(t *testing.T) {
	s := New(1)
	var at Time
	ev := s.At(5*time.Second, func() { at = s.Now() })
	s.Reschedule(ev, time.Second, func() { at = s.Now() })
	s.Run()
	if at != time.Second {
		t.Fatalf("fired at %v, want 1s", at)
	}
}

func TestRescheduleSpentTimerSchedulesFresh(t *testing.T) {
	s := New(1)
	count := 0
	ev := s.At(time.Second, func() { count++ })
	s.Run()
	ev = s.Reschedule(ev, 2*time.Second, func() { count += 10 })
	if !ev.Pending() {
		t.Fatal("reschedule of spent timer did not schedule")
	}
	s.Run()
	if count != 11 {
		t.Fatalf("count = %d, want 11", count)
	}
}

func TestRescheduleFromWithinOwnCallback(t *testing.T) {
	// Rescheduling your own timer while it fires must schedule a fresh
	// event, not act on the node's next occupant.
	s := New(1)
	var times []Time
	var tm Timer
	tm = s.At(time.Second, func() {
		tm = s.RescheduleAfter(tm, time.Second, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 1 || times[0] != 2*time.Second {
		t.Fatalf("times = %v, want [2s]", times)
	}
}

func TestRescheduleIntoPastPanics(t *testing.T) {
	s := New(1)
	ev := s.At(10*time.Second, func() {})
	s.At(5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic rescheduling into the past")
			}
		}()
		s.Reschedule(ev, time.Second, func() {})
	})
	s.RunUntil(6 * time.Second)
}

func TestRunUntilStopsClock(t *testing.T) {
	s := New(1)
	count := 0
	s.At(1*time.Second, func() { count++ })
	s.At(10*time.Second, func() { count++ })
	s.RunUntil(5 * time.Second)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", s.Now())
	}
	// The 10s event must still fire if we keep running.
	s.RunUntil(20 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRunUntilInclusiveBoundary(t *testing.T) {
	s := New(1)
	ran := false
	s.At(5*time.Second, func() { ran = true })
	s.RunUntil(5 * time.Second)
	if !ran {
		t.Fatal("event at boundary did not run")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(5*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.At(time.Second, func() {})
	})
	s.Run()
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		s := New(seed)
		var vals []int64
		var tick func()
		tick = func() {
			vals = append(vals, s.Rand().Int63n(1000))
			if len(vals) < 50 {
				s.After(time.Duration(s.Rand().Int63n(int64(time.Second))), tick)
			}
		}
		s.After(0, tick)
		s.Run()
		return vals
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestEventLimit(t *testing.T) {
	s := New(1)
	s.SetEventLimit(10)
	var tick func()
	tick = func() { s.After(time.Millisecond, tick) }
	s.After(0, tick)
	s.RunUntil(time.Hour)
	if s.Fired() != 10 {
		t.Fatalf("fired %d events, want 10", s.Fired())
	}
}

func TestPending(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {})
	s.At(2*time.Second, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Step()
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

// TestHeapStress drives the 4-ary heap through a large randomized mix of
// schedules, cancels, and reschedules and checks the firing order is
// globally sorted by (time, schedule order).
func TestHeapStress(t *testing.T) {
	s := New(1)
	rng := rand.New(rand.NewSource(99))
	type rec struct {
		at  Time
		seq int
	}
	var fired []rec
	var timers []Timer
	next := 0
	for i := 0; i < 5000; i++ {
		switch rng.Intn(10) {
		case 0, 1: // cancel a random timer (possibly stale)
			if len(timers) > 0 {
				s.Cancel(timers[rng.Intn(len(timers))])
			}
		case 2: // reschedule a random timer (possibly stale)
			if len(timers) > 0 {
				at := Time(rng.Int63n(int64(time.Hour)))
				n := next
				next++
				timers[rng.Intn(len(timers))] = s.Reschedule(
					timers[rng.Intn(len(timers))], at,
					func() { fired = append(fired, rec{s.Now(), n}) })
			}
		default:
			at := Time(rng.Int63n(int64(time.Hour)))
			n := next
			next++
			timers = append(timers, s.At(at, func() { fired = append(fired, rec{s.Now(), n}) }))
		}
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("queue not drained: %d pending", s.Pending())
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool {
		if fired[i].at != fired[j].at {
			return fired[i].at < fired[j].at
		}
		return i < j
	}) {
		t.Fatal("events fired out of time order")
	}
}

// TestSteadyStateZeroAlloc checks the pooled kernel's core promise: a
// schedule/fire cycle in the steady state does not allocate.
func TestSteadyStateZeroAlloc(t *testing.T) {
	s := New(1)
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < 10000 {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	s.Step() // warm the pool
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 50; i++ {
			s.Step()
		}
	})
	if avg > 1 {
		t.Fatalf("steady-state schedule/fire allocates %.1f times per 50 events", avg)
	}
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate equivalent of GloMoSim's event engine used in
// the paper's evaluation: a virtual clock, an event queue, and a seeded
// random number generator. A Simulator is serial by default so that a given
// seed always reproduces the same event ordering; parallelism across trials
// is obtained by running many Simulator instances concurrently (one per
// trial, see internal/runner), and opt-in parallelism *within* a trial by
// SetWorkers (below).
//
// # Two-phase execution: extract, then apply
//
// The kernel runs in two phases. Extraction pops the batch of every pending
// event sharing the minimum timestamp, in seq order (extract in batch.go);
// application fires their callbacks one at a time in that exact order.
// Events scheduled during application always receive larger seq values, so
// if they land on the current timestamp they form a later batch at the same
// time and still run in (at, seq) order: the split is observationally
// identical to the old pop-one/fire-one loop, and the shadow checker
// (debugcheck.go) asserts per-event that extraction order matches the
// reference heap's pop order. Cancel and Reschedule of an extracted-but-
// unfired event tombstone its batch slot, exactly as firing-time filtering
// did before.
//
// # Conflict keys and opt-in intra-trial parallelism
//
// Each event carries a ConflictKey (conflict.go) describing its footprint:
// the zero value ConflictAll conservatively conflicts with everything, a
// node/area key scopes the event to a node and its radio-grid neighborhood.
// With SetWorkers(n>1), Run and RunUntil apply each batch window-by-window:
// maximal runs of keyed events between ConflictAll barriers are partitioned
// into conflict-disjoint groups and fanned across a bounded worker pool
// (parallel.go); kernel mutations from keyed callbacks are staged through
// an ExecCtx (exec.go) and merged on the coordinator in (batch-rank, call)
// order — the exact order serial execution would have issued them, so seq
// assignment, queue state, and therefore every downstream byte of output
// are identical to serial per seed. Default is serial; nothing changes for
// existing callers.
//
// The event queue is a ladder queue (see ladder.go) over a freelist of
// pooled Event structs: a near-future bucket wheel absorbs the dense timer
// traffic of a large simulation in O(1) amortized time per event, an
// overflow ladder of progressively finer rungs holds far-future events,
// and a small indexed 4-ary min-heap — the original heap-only scheduler,
// demoted to the "bottom" tier — totally orders the handful of imminent
// events. Firing order is the exact (at, seq) order the heap-only
// scheduler produced: equal-time events run FIFO in schedule order, so a
// seed's output is byte-identical whichever structure queued the events
// (enforced by the differential fuzz test against the reference heap,
// FuzzLadderVsHeap).
//
// Amortized cost per operation:
//
//	At/After:    O(1) — bucket index + append (O(log b) for the b imminent
//	             events already promoted to the bottom heap, with b small)
//	Step:        O(1) — bottom-heap pop of size <= ~ladderThresh, plus each
//	             event's O(1) share of bucket promotion
//	Cancel:      O(1) in a bucket or the overflow list (swap-remove);
//	             O(log b) in the bottom heap
//	Reschedule:  one unlink + one insert of the same pooled node
//	RunUntil:    peek is O(1) after the same promotion work Step would do
//
// When the pending set is tiny, or events cluster so tightly that buckets
// cannot split further (equal timestamps, 1ns widths, maxRungs deep), the
// ladder degrades gracefully to exactly the old heap: everything sits in
// the bottom tier and costs O(log n). See ladder.go for the bucket width
// policy and the tier invariants.
//
// Because Event structs are recycled, user code holds Timer handles
// rather than raw *Event pointers: a Timer carries the generation of the
// node it was issued for, so Cancel or Reschedule through a stale handle
// (after the event fired, was canceled, or its storage was reused) is a
// safe no-op instead of acting on whatever event now occupies the node.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time. It uses time.Duration so the rest of the
// code can use natural literals (e.g. 50*time.Millisecond) while remaining a
// pure virtual quantity.
type Time = time.Duration

// Event is a pooled scheduler node. User code never constructs or holds
// Events directly; At, After, and Reschedule return Timer handles.
type Event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
	// kfn is the staged-callback form used by AtExec: callbacks that may
	// schedule or cancel during parallel batch application receive an
	// *ExecCtx to do it through. Exactly one of fn and kfn is non-nil.
	kfn func(*ExecCtx)
	// key is the event's conflict footprint (see conflict.go). The zero
	// value ConflictAll conservatively conflicts with everything, so
	// untagged events always serialize.
	key ConflictKey
	// loc says which tier holds the event (locNone / locBottom / locTop /
	// locBatch / a rung index); index is its slot in that tier, and bucket
	// the bucket within a rung.
	loc    int32
	index  int32
	bucket int32
	gen    uint32 // bumped whenever the node returns to the freelist
}

// Timer is a handle to a scheduled event. The zero Timer is inert: Cancel
// and Reschedule through it are safe no-ops. A Timer stays safe to use
// after its event fires or is canceled — the generation check turns stale
// operations into no-ops even once the pooled Event struct has been reused
// for a different event.
type Timer struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the timer's event is still scheduled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.gen == t.ev.gen && t.ev.loc != locNone
}

// eventChunk is how many Event structs the freelist grows by at a time.
const eventChunk = 128

// Simulator is a discrete-event scheduler with a virtual clock.
type Simulator struct {
	now    Time
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	maxGas uint64 // safety bound on total events; 0 = unlimited
	free   []*Event
	npend  int

	// Ladder-queue tiers; see ladder.go for the structure and invariants.
	bottom   []*Event // indexed 4-ary heap of imminent events
	rungs    []*rung  // bucket wheels, coarsest first
	top      []*Event // unsorted overflow: at >= topStart
	lowBound Time     // bottom/rung boundary: bottom events are < lowBound
	topStart Time     // rung/top boundary: top events are >= topStart
	rungPool []*rung

	// Two-phase state: batch holds the currently extracted same-timestamp
	// batch in seq order (nil slots are tombstones from Cancel/Reschedule),
	// batchPos the next unapplied slot. The batch persists across Step /
	// Run / RunUntil entry points so partial application is resumable.
	batch    []*Event
	batchPos int

	// Parallel executor state (parallel.go). workers <= 1 means serial.
	workers   int
	minWindow int  // smallest keyed window worth dispatching to the pool
	flushing  bool // true while a keyed window is being applied in parallel
	pool      *workerPool
	job       *flushJob
	wctx      []*ExecCtx  // one staging context per worker, [0] = coordinator
	dctx      *ExecCtx    // direct (serial) context handed to keyed callbacks
	mergeBuf  []*stagedOp // scratch for the deterministic effect merge
	window    []*Event    // scratch: current keyed window
	groups    groupScratch

	// check, when non-nil, mirrors every operation into a reference
	// (at, seq) heap and panics on the first out-of-order firing. See
	// debugcheck.go; tests only.
	check *shadowChecker
}

// New returns a Simulator whose RNG is seeded with seed.
func New(seed int64) *Simulator {
	s := &Simulator{rng: rand.New(rand.NewSource(seed))}
	s.dctx = &ExecCtx{s: s, direct: true}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation RNG. All randomness in a run must come from
// this generator so a seed fully determines the run. Drawing from it inside
// a keyed callback while a parallel window is in flight would make the
// draw order depend on worker interleaving, so that panics; keyed callbacks
// must be RNG-free (events that need randomness stay unkeyed and run on
// the coordinator between windows).
func (s *Simulator) Rand() *rand.Rand {
	if s.flushing {
		panic("sim: Rand() called from a keyed callback during parallel window application")
	}
	return s.rng
}

// Flushing reports whether a parallel keyed window is currently being
// applied. Model code with shared mutable state (e.g. the radio channel's
// rx pool) uses it to reject or guard accesses that would race.
func (s *Simulator) Flushing() bool { return s.flushing }

// SetEventLimit bounds the total number of events fired by Run; 0 removes
// the bound. It is a guard against runaway event storms in tests.
func (s *Simulator) SetEventLimit(n uint64) { s.maxGas = n }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return s.npend }

// alloc takes an Event node from the freelist, growing it by a chunk when
// empty so steady-state scheduling never touches the garbage collector.
func (s *Simulator) alloc() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	chunk := make([]Event, eventChunk)
	for i := 1; i < eventChunk; i++ {
		chunk[i].loc = locNone
		s.free = append(s.free, &chunk[i])
	}
	chunk[0].loc = locNone
	return &chunk[0]
}

// release returns a fired or canceled node to the freelist. Bumping the
// generation invalidates every Timer issued for the node's previous life.
func (s *Simulator) release(ev *Event) {
	ev.fn = nil
	ev.kfn = nil
	ev.key = ConflictAll
	ev.loc = locNone
	ev.gen++
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a discrete-event model.
func (s *Simulator) At(at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.schedule(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// AtKeyed schedules fn like At but tags the event with a conflict key, so
// the parallel executor may run it concurrently with other keyed events in
// disjoint groups. The contract for a keyed plain callback is strict: it
// must not touch the Simulator at all (no At/Cancel/Reschedule, no Rand)
// and may only mutate state covered by its key. Callbacks that need to
// schedule or cancel use AtExec instead.
func (s *Simulator) AtKeyed(at Time, key ConflictKey, fn func()) Timer {
	t := s.At(at, fn)
	t.ev.key = key
	return t
}

// AtExec schedules a keyed callback that receives an *ExecCtx. In serial
// mode (and for unkeyed events) the ctx forwards directly to the Simulator;
// during parallel window application it stages kernel effects for the
// deterministic merge. Kernel access from the callback must go through the
// ctx; key discipline is as for AtKeyed.
func (s *Simulator) AtExec(at Time, key ConflictKey, fn func(*ExecCtx)) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	ev.kfn = fn
	ev.key = key
	s.seq++
	s.schedule(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// SetConflictKey retags a still-pending event's conflict footprint. The
// radio uses it to downgrade a reception that just got corrupted from
// "conflicts with all" to node-local: corruption is decided strictly no
// later than the end-of-reception event fires, and the window partitioner
// reads keys at application time, so a retag is always observed. Stale
// timers are ignored.
func (s *Simulator) SetConflictKey(t Timer, key ConflictKey) {
	if t.Pending() {
		t.ev.key = key
	}
}

// Reschedule moves t's event to fire fn at absolute time at. When t is
// still pending its pooled node is reused — one unlink from whichever
// ladder tier holds it and one re-insert, no cancel+allocate churn —
// which is the cheap path for the MAC and radio retransmit timers that
// re-arm on every attempt. When t already fired or was canceled a fresh
// event is scheduled. Like At, rescheduling into the past panics. The
// returned Timer supersedes t.
func (s *Simulator) Reschedule(t Timer, at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", at, s.now))
	}
	if !t.Pending() {
		return s.At(at, fn)
	}
	ev := t.ev
	s.unlink(ev)
	ev.at = at
	ev.fn = fn
	ev.kfn = nil
	ev.key = ConflictAll // a plain reschedule makes the event unkeyed again
	ev.seq = s.seq       // a reschedule orders FIFO with fresh schedules
	s.seq++
	s.schedule(ev)
	return t
}

// RescheduleAfter moves t's event to fire fn d after the current time.
func (s *Simulator) RescheduleAfter(t Timer, d Time, fn func()) Timer {
	return s.Reschedule(t, s.now+d, fn)
}

// Cancel removes t's event from the queue if it has not yet fired. Stale
// and zero Timers are ignored.
func (s *Simulator) Cancel(t Timer) {
	if !t.Pending() {
		return
	}
	s.unlink(t.ev)
	s.release(t.ev)
}

// Step applies the next event from the current batch, extracting a new
// batch when the previous one is exhausted. It returns false when the
// queue is empty. Step is always serial — parallel application happens at
// batch granularity inside Run and RunUntil.
func (s *Simulator) Step() bool {
	for {
		ev, ok := s.nextBatchEvent()
		if !ok {
			return false
		}
		if ev == nil {
			continue // tombstoned after extraction
		}
		s.fire(ev)
		return true
	}
}

// fire applies one extracted event: shadow-check, advance the clock,
// release the node, run the callback. Releasing before running means the
// callback sees its own timer as spent — canceling or rescheduling it from
// inside hits the stale-handle path, and the node is immediately reusable
// for events the callback schedules.
func (s *Simulator) fire(ev *Event) {
	if s.check != nil {
		s.check.fire(ev)
	}
	s.now = ev.at
	fn, kfn := ev.fn, ev.kfn
	s.npend--
	s.release(ev)
	s.fired++
	if kfn != nil {
		kfn(s.dctx)
	} else {
		fn()
	}
}

// RunUntil executes events until the clock would pass end or the queue
// drains. Events scheduled exactly at end do run. With SetWorkers(n>1)
// batches are applied window-by-window across the worker pool; the event
// limit is then checked at batch granularity.
func (s *Simulator) RunUntil(end Time) {
	if s.workers > 1 {
		s.runParallel(end, true)
		return
	}
	for {
		at, ok := s.peek()
		if !ok {
			break
		}
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
		if at > end {
			s.now = end
			return
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	if s.workers > 1 {
		s.runParallel(0, false)
		return
	}
	for s.Step() {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
	}
}

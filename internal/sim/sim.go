// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate equivalent of GloMoSim's event engine used in
// the paper's evaluation: a virtual clock, an event queue, and a seeded
// random number generator. A single Simulator instance is single-threaded
// by design so that a given seed always reproduces the same event ordering;
// parallelism is obtained by running many Simulator instances concurrently
// (one per trial, see internal/runner).
//
// The event queue is a ladder queue (see ladder.go) over a freelist of
// pooled Event structs: a near-future bucket wheel absorbs the dense timer
// traffic of a large simulation in O(1) amortized time per event, an
// overflow ladder of progressively finer rungs holds far-future events,
// and a small indexed 4-ary min-heap — the original heap-only scheduler,
// demoted to the "bottom" tier — totally orders the handful of imminent
// events. Firing order is the exact (at, seq) order the heap-only
// scheduler produced: equal-time events run FIFO in schedule order, so a
// seed's output is byte-identical whichever structure queued the events
// (enforced by the differential fuzz test against the reference heap,
// FuzzLadderVsHeap).
//
// Amortized cost per operation:
//
//	At/After:    O(1) — bucket index + append (O(log b) for the b imminent
//	             events already promoted to the bottom heap, with b small)
//	Step:        O(1) — bottom-heap pop of size <= ~ladderThresh, plus each
//	             event's O(1) share of bucket promotion
//	Cancel:      O(1) in a bucket or the overflow list (swap-remove);
//	             O(log b) in the bottom heap
//	Reschedule:  one unlink + one insert of the same pooled node
//	RunUntil:    peek is O(1) after the same promotion work Step would do
//
// When the pending set is tiny, or events cluster so tightly that buckets
// cannot split further (equal timestamps, 1ns widths, maxRungs deep), the
// ladder degrades gracefully to exactly the old heap: everything sits in
// the bottom tier and costs O(log n). See ladder.go for the bucket width
// policy and the tier invariants.
//
// Because Event structs are recycled, user code holds Timer handles
// rather than raw *Event pointers: a Timer carries the generation of the
// node it was issued for, so Cancel or Reschedule through a stale handle
// (after the event fired, was canceled, or its storage was reused) is a
// safe no-op instead of acting on whatever event now occupies the node.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time. It uses time.Duration so the rest of the
// code can use natural literals (e.g. 50*time.Millisecond) while remaining a
// pure virtual quantity.
type Time = time.Duration

// Event is a pooled scheduler node. User code never constructs or holds
// Events directly; At, After, and Reschedule return Timer handles.
type Event struct {
	at  Time
	seq uint64 // tie-break so equal-time events run FIFO
	fn  func()
	// loc says which tier holds the event (locNone / locBottom / locTop /
	// a rung index); index is its slot in that tier, and bucket the bucket
	// within a rung.
	loc    int32
	index  int32
	bucket int32
	gen    uint32 // bumped whenever the node returns to the freelist
}

// Timer is a handle to a scheduled event. The zero Timer is inert: Cancel
// and Reschedule through it are safe no-ops. A Timer stays safe to use
// after its event fires or is canceled — the generation check turns stale
// operations into no-ops even once the pooled Event struct has been reused
// for a different event.
type Timer struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the timer's event is still scheduled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.gen == t.ev.gen && t.ev.loc != locNone
}

// eventChunk is how many Event structs the freelist grows by at a time.
const eventChunk = 128

// Simulator is a discrete-event scheduler with a virtual clock.
type Simulator struct {
	now    Time
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	maxGas uint64 // safety bound on total events; 0 = unlimited
	free   []*Event
	npend  int

	// Ladder-queue tiers; see ladder.go for the structure and invariants.
	bottom   []*Event // indexed 4-ary heap of imminent events
	rungs    []*rung  // bucket wheels, coarsest first
	top      []*Event // unsorted overflow: at >= topStart
	lowBound Time     // bottom/rung boundary: bottom events are < lowBound
	topStart Time     // rung/top boundary: top events are >= topStart
	rungPool []*rung

	// check, when non-nil, mirrors every operation into a reference
	// (at, seq) heap and panics on the first out-of-order firing. See
	// debugcheck.go; tests only.
	check *shadowChecker
}

// New returns a Simulator whose RNG is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation RNG. All randomness in a run must come from
// this generator so a seed fully determines the run.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// SetEventLimit bounds the total number of events fired by Run; 0 removes
// the bound. It is a guard against runaway event storms in tests.
func (s *Simulator) SetEventLimit(n uint64) { s.maxGas = n }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return s.npend }

// alloc takes an Event node from the freelist, growing it by a chunk when
// empty so steady-state scheduling never touches the garbage collector.
func (s *Simulator) alloc() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	chunk := make([]Event, eventChunk)
	for i := 1; i < eventChunk; i++ {
		chunk[i].loc = locNone
		s.free = append(s.free, &chunk[i])
	}
	chunk[0].loc = locNone
	return &chunk[0]
}

// release returns a fired or canceled node to the freelist. Bumping the
// generation invalidates every Timer issued for the node's previous life.
func (s *Simulator) release(ev *Event) {
	ev.fn = nil
	ev.loc = locNone
	ev.gen++
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a discrete-event model.
func (s *Simulator) At(at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.schedule(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// Reschedule moves t's event to fire fn at absolute time at. When t is
// still pending its pooled node is reused — one unlink from whichever
// ladder tier holds it and one re-insert, no cancel+allocate churn —
// which is the cheap path for the MAC and radio retransmit timers that
// re-arm on every attempt. When t already fired or was canceled a fresh
// event is scheduled. Like At, rescheduling into the past panics. The
// returned Timer supersedes t.
func (s *Simulator) Reschedule(t Timer, at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", at, s.now))
	}
	if !t.Pending() {
		return s.At(at, fn)
	}
	ev := t.ev
	s.unlink(ev)
	ev.at = at
	ev.fn = fn
	ev.seq = s.seq // a reschedule orders FIFO with fresh schedules
	s.seq++
	s.schedule(ev)
	return t
}

// RescheduleAfter moves t's event to fire fn d after the current time.
func (s *Simulator) RescheduleAfter(t Timer, d Time, fn func()) Timer {
	return s.Reschedule(t, s.now+d, fn)
}

// Cancel removes t's event from the queue if it has not yet fired. Stale
// and zero Timers are ignored.
func (s *Simulator) Cancel(t Timer) {
	if !t.Pending() {
		return
	}
	s.unlink(t.ev)
	s.release(t.ev)
}

// Step runs the next event. It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.bottom) == 0 && !s.refill() {
		return false
	}
	ev := s.bottomPop()
	if s.check != nil {
		s.check.fire(ev)
	}
	s.now = ev.at
	fn := ev.fn
	// Release before running so fn sees its own timer as spent: canceling
	// or rescheduling it from inside the callback hits the stale-handle
	// path, and the node is immediately reusable for events fn schedules.
	s.release(ev)
	s.fired++
	fn()
	return true
}

// RunUntil executes events until the clock would pass end or the queue
// drains. Events scheduled exactly at end do run.
func (s *Simulator) RunUntil(end Time) {
	for len(s.bottom) > 0 || s.refill() {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
		if s.bottom[0].at > end {
			s.now = end
			return
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
	}
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate equivalent of GloMoSim's event engine used in
// the paper's evaluation: a virtual clock, an event queue, and a seeded
// random number generator. A single Simulator instance is single-threaded
// by design so that a given seed always reproduces the same event ordering;
// parallelism is obtained by running many Simulator instances concurrently
// (one per trial, see internal/runner).
//
// The event queue is an indexed 4-ary min-heap over a freelist of pooled
// Event structs: scheduling in the steady state allocates nothing, and the
// shallower heap does fewer cache-missing compares per sift than a binary
// heap. Because Event structs are recycled, user code holds Timer handles
// rather than raw *Event pointers: a Timer carries the generation of the
// node it was issued for, so Cancel or Reschedule through a stale handle
// (after the event fired, was canceled, or its storage was reused) is a
// safe no-op instead of acting on whatever event now occupies the node.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time. It uses time.Duration so the rest of the
// code can use natural literals (e.g. 50*time.Millisecond) while remaining a
// pure virtual quantity.
type Time = time.Duration

// Event is a pooled scheduler node. User code never constructs or holds
// Events directly; At, After, and Reschedule return Timer handles.
type Event struct {
	at    Time
	seq   uint64 // tie-break so equal-time events run FIFO
	fn    func()
	index int32  // heap position, -1 when not queued
	gen   uint32 // bumped whenever the node returns to the freelist
}

// Timer is a handle to a scheduled event. The zero Timer is inert: Cancel
// and Reschedule through it are safe no-ops. A Timer stays safe to use
// after its event fires or is canceled — the generation check turns stale
// operations into no-ops even once the pooled Event struct has been reused
// for a different event.
type Timer struct {
	ev  *Event
	gen uint32
}

// Pending reports whether the timer's event is still scheduled.
func (t Timer) Pending() bool {
	return t.ev != nil && t.gen == t.ev.gen && t.ev.index >= 0
}

// arity is the heap branching factor. Four keeps the tree half as deep as
// a binary heap; sift-down scans up to four children in one cache line of
// pointers, which profiles faster than the extra depth costs.
const arity = 4

// eventChunk is how many Event structs the freelist grows by at a time.
const eventChunk = 128

// Simulator is a discrete-event scheduler with a virtual clock.
type Simulator struct {
	now    Time
	heap   []*Event
	free   []*Event
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	maxGas uint64 // safety bound on total events; 0 = unlimited
}

// New returns a Simulator whose RNG is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation RNG. All randomness in a run must come from
// this generator so a seed fully determines the run.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// SetEventLimit bounds the total number of events fired by Run; 0 removes
// the bound. It is a guard against runaway event storms in tests.
func (s *Simulator) SetEventLimit(n uint64) { s.maxGas = n }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return len(s.heap) }

// alloc takes an Event node from the freelist, growing it by a chunk when
// empty so steady-state scheduling never touches the garbage collector.
func (s *Simulator) alloc() *Event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	chunk := make([]Event, eventChunk)
	for i := 1; i < eventChunk; i++ {
		chunk[i].index = -1
		s.free = append(s.free, &chunk[i])
	}
	chunk[0].index = -1
	return &chunk[0]
}

// release returns a fired or canceled node to the freelist. Bumping the
// generation invalidates every Timer issued for the node's previous life.
func (s *Simulator) release(ev *Event) {
	ev.fn = nil
	ev.index = -1
	ev.gen++
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a discrete-event model.
func (s *Simulator) At(at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	s.heapPush(ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// Reschedule moves t's event to fire fn at absolute time at. When t is
// still pending its queue node is updated in place — no cancel+allocate
// churn, one heap fix — which is the cheap path for the MAC and radio
// retransmit timers that re-arm on every attempt. When t already fired or
// was canceled a fresh event is scheduled. Like At, rescheduling into the
// past panics. The returned Timer supersedes t.
func (s *Simulator) Reschedule(t Timer, at Time, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("sim: rescheduling event at %v before now %v", at, s.now))
	}
	if !t.Pending() {
		return s.At(at, fn)
	}
	ev := t.ev
	ev.at = at
	ev.fn = fn
	ev.seq = s.seq // a reschedule orders FIFO with fresh schedules
	s.seq++
	s.heapFix(int(ev.index))
	return t
}

// RescheduleAfter moves t's event to fire fn d after the current time.
func (s *Simulator) RescheduleAfter(t Timer, d Time, fn func()) Timer {
	return s.Reschedule(t, s.now+d, fn)
}

// Cancel removes t's event from the queue if it has not yet fired. Stale
// and zero Timers are ignored.
func (s *Simulator) Cancel(t Timer) {
	if !t.Pending() {
		return
	}
	s.heapRemove(int(t.ev.index))
	s.release(t.ev)
}

// Step runs the next event. It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	ev := s.heapPop()
	s.now = ev.at
	fn := ev.fn
	// Release before running so fn sees its own timer as spent: canceling
	// or rescheduling it from inside the callback hits the stale-handle
	// path, and the node is immediately reusable for events fn schedules.
	s.release(ev)
	s.fired++
	fn()
	return true
}

// RunUntil executes events until the clock would pass end or the queue
// drains. Events scheduled exactly at end do run.
func (s *Simulator) RunUntil(end Time) {
	for len(s.heap) > 0 {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
		if s.heap[0].at > end {
			s.now = end
			return
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
	}
}

// less orders events by (at, seq): earliest first, FIFO among equals.
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Simulator) heapPush(ev *Event) {
	ev.index = int32(len(s.heap))
	s.heap = append(s.heap, ev)
	s.siftUp(int(ev.index))
}

func (s *Simulator) heapPop() *Event {
	root := s.heap[0]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if n > 0 {
		s.heap[0] = last
		last.index = 0
		s.siftDown(0)
	}
	root.index = -1
	return root
}

// heapRemove deletes the node at position i, restoring heap order around
// the displaced tail node.
func (s *Simulator) heapRemove(i int) {
	ev := s.heap[i]
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap[n] = nil
	s.heap = s.heap[:n]
	if i < n {
		s.heap[i] = last
		last.index = int32(i)
		s.heapFix(i)
	}
	ev.index = -1
}

// heapFix restores order after the key at position i changed in either
// direction.
func (s *Simulator) heapFix(i int) {
	if !s.siftDown(i) {
		s.siftUp(i)
	}
}

func (s *Simulator) siftUp(i int) {
	ev := s.heap[i]
	for i > 0 {
		parent := (i - 1) / arity
		p := s.heap[parent]
		if !less(ev, p) {
			break
		}
		s.heap[i] = p
		p.index = int32(i)
		i = parent
	}
	s.heap[i] = ev
	ev.index = int32(i)
}

// siftDown moves the node at i toward the leaves; it reports whether the
// node moved.
func (s *Simulator) siftDown(i int) bool {
	ev := s.heap[i]
	start := i
	n := len(s.heap)
	for {
		first := i*arity + 1
		if first >= n {
			break
		}
		best := first
		end := first + arity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !less(s.heap[best], ev) {
			break
		}
		s.heap[i] = s.heap[best]
		s.heap[i].index = int32(i)
		i = best
	}
	s.heap[i] = ev
	ev.index = int32(i)
	return i != start
}

// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate equivalent of GloMoSim's event engine used in
// the paper's evaluation: a virtual clock, a binary-heap event queue, and a
// seeded random number generator. A single Simulator instance is
// single-threaded by design so that a given seed always reproduces the same
// event ordering; parallelism is obtained by running many Simulator
// instances concurrently (one per trial).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual simulation time. It uses time.Duration so the rest of the
// code can use natural literals (e.g. 50*time.Millisecond) while remaining a
// pure virtual quantity.
type Time = time.Duration

// Event is a scheduled callback.
type Event struct {
	at     Time
	seq    uint64 // tie-break so equal-time events run FIFO
	fn     func()
	index  int // heap index, -1 once popped or canceled
	halted bool
}

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.halted }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Simulator is a discrete-event scheduler with a virtual clock.
type Simulator struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	maxGas uint64 // safety bound on total events; 0 = unlimited
}

// New returns a Simulator whose RNG is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulation RNG. All randomness in a run must come from
// this generator so a seed fully determines the run.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// SetEventLimit bounds the total number of events fired by Run; 0 removes
// the bound. It is a guard against runaway event storms in tests.
func (s *Simulator) SetEventLimit(n uint64) { s.maxGas = n }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently scheduled.
func (s *Simulator) Pending() int { return s.queue.Len() }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: it always indicates a logic error in a discrete-event model.
func (s *Simulator) At(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (s *Simulator) After(d Time, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Cancel removes ev from the queue if it has not yet fired.
func (s *Simulator) Cancel(ev *Event) {
	if ev == nil || ev.halted {
		return
	}
	ev.halted = true
	if ev.index >= 0 {
		heap.Remove(&s.queue, ev.index)
	}
}

// Step runs the next event. It returns false when the queue is empty.
func (s *Simulator) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.halted {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the clock would pass end or the queue
// drains. Events scheduled exactly at end do run.
func (s *Simulator) RunUntil(end Time) {
	for s.queue.Len() > 0 {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
		next := s.peek()
		if next == nil {
			return
		}
		if next.at > end {
			s.now = end
			return
		}
		s.Step()
	}
	if s.now < end {
		s.now = end
	}
}

// Run executes events until the queue drains.
func (s *Simulator) Run() {
	for s.Step() {
		if s.maxGas != 0 && s.fired >= s.maxGas {
			return
		}
	}
}

func (s *Simulator) peek() *Event {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if !ev.halted {
			return ev
		}
		heap.Pop(&s.queue)
	}
	return nil
}

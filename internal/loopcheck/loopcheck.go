// Package loopcheck detects directed cycles in successor graphs. It backs
// the loop-freedom-at-every-instant assertions (Theorem 3) in both the test
// harness and the scenario runner's invariant checking.
package loopcheck

// FindCycle returns a directed cycle in adj as a node sequence whose first
// and last elements coincide, or nil if the graph is acyclic. The search is
// iterative, so deep graphs cannot overflow the stack.
func FindCycle(adj map[int][]int) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[int]int, len(adj))

	for root := range adj {
		if color[root] != white {
			continue
		}
		type frame struct {
			node int
			next int // index into adj[node]
		}
		stack := []frame{{node: root}}
		color[root] = gray
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			edges := adj[top.node]
			if top.next >= len(edges) {
				color[top.node] = black
				stack = stack[:len(stack)-1]
				continue
			}
			m := edges[top.next]
			top.next++
			switch color[m] {
			case gray:
				// Back edge: the cycle is the stack suffix from m.
				var cycle []int
				for i := range stack {
					if stack[i].node == m {
						for _, f := range stack[i:] {
							cycle = append(cycle, f.node)
						}
						break
					}
				}
				return append(cycle, m)
			case white:
				color[m] = gray
				stack = append(stack, frame{node: m})
			}
		}
	}
	return nil
}

package loopcheck

import (
	"math/rand"
	"testing"
)

func TestAcyclic(t *testing.T) {
	adj := map[int][]int{0: {1, 2}, 1: {3}, 2: {3}, 3: {}}
	if c := FindCycle(adj); c != nil {
		t.Fatalf("found cycle %v in a DAG", c)
	}
}

func TestSelfLoop(t *testing.T) {
	adj := map[int][]int{5: {5}}
	c := FindCycle(adj)
	if c == nil {
		t.Fatal("self loop not found")
	}
}

func TestTriangle(t *testing.T) {
	adj := map[int][]int{1: {2}, 2: {3}, 3: {1}}
	c := FindCycle(adj)
	if c == nil {
		t.Fatal("triangle not found")
	}
	if len(c) != 4 || c[0] != c[len(c)-1] {
		t.Fatalf("cycle %v malformed", c)
	}
}

func TestCycleOffTheTree(t *testing.T) {
	// A tail leading into a cycle.
	adj := map[int][]int{0: {1}, 1: {2}, 2: {3}, 3: {1}}
	c := FindCycle(adj)
	if c == nil {
		t.Fatal("cycle behind tail not found")
	}
	for _, n := range c {
		if n == 0 {
			t.Fatalf("cycle %v contains tail node", c)
		}
	}
}

func TestEmpty(t *testing.T) {
	if c := FindCycle(nil); c != nil {
		t.Fatalf("cycle in empty graph: %v", c)
	}
}

func TestDeepChainNoOverflow(t *testing.T) {
	adj := make(map[int][]int, 200000)
	for i := 0; i < 200000; i++ {
		adj[i] = []int{i + 1}
	}
	if c := FindCycle(adj); c != nil {
		t.Fatalf("false cycle %v", c)
	}
}

func TestRandomDAGsNeverReportCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		adj := make(map[int][]int)
		n := 2 + rng.Intn(50)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					adj[i] = append(adj[i], j) // edges only forward: DAG
				}
			}
		}
		if c := FindCycle(adj); c != nil {
			t.Fatalf("trial %d: false cycle %v", trial, c)
		}
	}
}

func TestRandomGraphWithKnownCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		adj := make(map[int][]int)
		n := 5 + rng.Intn(50)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				adj[i] = append(adj[i], rng.Intn(n))
			}
		}
		// Plant a definite cycle among three fresh nodes.
		a, b, c := n, n+1, n+2
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], c)
		adj[c] = append(adj[c], a)
		if FindCycle(adj) == nil {
			t.Fatalf("trial %d: planted cycle not found", trial)
		}
	}
}

package label

import (
	"testing"
	"testing/quick"

	"slr/internal/frac"
)

func o(sn SeqNo, num, den uint32) Order {
	return Order{SN: sn, FD: frac.MustNew(num, den)}
}

func TestPrecedes(t *testing.T) {
	tests := []struct {
		name string
		a, b Order
		want bool
	}{
		{"lower seqno precedes", o(1, 1, 2), o(2, 3, 4), true},
		{"higher seqno does not", o(2, 1, 2), o(1, 0, 1), false},
		{"same sn smaller frac is successor", o(5, 2, 3), o(5, 1, 2), true},
		{"same sn larger frac is not", o(5, 1, 2), o(5, 2, 3), false},
		{"same sn equal frac is not", o(5, 1, 2), o(5, 2, 4), false},
		{"unassigned preceded by anything assigned", Unassigned, o(1, 1, 2), true},
		{"destination preceded by nothing same-sn", o(3, 0, 1), o(3, 1, 2), false},
		{"destination precedes its own graph", o(3, 1, 2), o(3, 0, 1), true},
		{"irreflexive", o(4, 1, 2), o(4, 1, 2), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Precedes(tt.b); got != tt.want {
				t.Errorf("%v ≺ %v = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestMin(t *testing.T) {
	a, b := o(5, 2, 3), o(5, 1, 2)
	if got := Min(a, b); got != b {
		t.Errorf("Min(%v,%v) = %v, want %v", a, b, got, b)
	}
	if got := Min(b, a); got != b {
		t.Errorf("Min(%v,%v) = %v, want %v", b, a, got, b)
	}
	// Fresher seqno is "lower" (supersedes).
	c, d := o(1, 1, 2), o(2, 3, 4)
	if got := Min(c, d); got != d {
		t.Errorf("Min(%v,%v) = %v, want %v", c, d, got, d)
	}
	// Min with itself.
	if got := Min(a, a); got != a {
		t.Errorf("Min(a,a) = %v, want %v", got, a)
	}
}

func TestUnassignedAndFinite(t *testing.T) {
	if !Unassigned.IsUnassigned() {
		t.Error("Unassigned.IsUnassigned() = false")
	}
	if Unassigned.Finite() {
		t.Error("Unassigned must not be finite")
	}
	if !o(1, 1, 2).Finite() {
		t.Error("(1,1/2) must be finite")
	}
	if !Destination(7).Finite() {
		t.Error("destination label must be finite")
	}
	if Destination(7) != (Order{SN: 7, FD: frac.Zero}) {
		t.Error("Destination label wrong")
	}
}

func TestAdd(t *testing.T) {
	a := o(3, 1, 2)
	got, ok := a.Add(frac.MustNew(2, 3))
	if !ok || got != o(3, 3, 5) {
		t.Fatalf("Add = %v, want (3, 3/5)", got)
	}
	// Definition 6: if m/n < p/q then O + p/q ≺ O.
	if !got.Precedes(a) {
		t.Errorf("Definition 6 violated: %v should precede %v", got, a)
	}
}

func TestNextElement(t *testing.T) {
	a := o(3, 2, 3)
	got, ok := a.NextElement()
	if !ok || got != o(3, 3, 4) {
		t.Fatalf("NextElement = %v, want (3, 3/4)", got)
	}
}

func TestSplit(t *testing.T) {
	// Same sequence number: mediant.
	a, b := o(5, 2, 3), o(5, 1, 2) // a ≺ b
	got, ok := Split(a, b)
	if !ok {
		t.Fatal("Split failed")
	}
	want := o(5, 3, 5)
	if got != want {
		t.Fatalf("Split = %v, want %v", got, want)
	}
	// Result strictly between: a ≺ got ≺ b... i.e. a ≺ got and got ≺ b.
	if !a.Precedes(got) || !got.Precedes(b) {
		t.Fatalf("Split result %v not between %v and %v", got, a, b)
	}
	// Different sequence numbers: next-element of the fresher label.
	c, d := o(1, 1, 2), o(2, 1, 2)
	got, ok = Split(c, d)
	if !ok {
		t.Fatal("Split across seqnos failed")
	}
	if got.SN != 2 {
		t.Fatalf("Split across seqnos SN = %d, want 2", got.SN)
	}
	if !c.Precedes(got) || !got.Precedes(d) {
		t.Fatalf("Split result %v not between %v and %v", got, c, d)
	}
	// Split of non-preceding pair must fail.
	if _, ok := Split(b, a); ok {
		t.Fatal("Split(b,a) should fail when b does not precede a")
	}
}

func TestPrecedesIsStrictPartialOrder(t *testing.T) {
	mk := func(sn uint8, n, d uint32) Order {
		if d == 0 {
			d = 1
		}
		n %= 64
		d %= 64
		if d == 0 {
			d = 1
		}
		if n >= d {
			n, d = d, n+1
		}
		if n == 0 {
			return Order{SN: SeqNo(sn % 4), FD: frac.Zero}
		}
		return Order{SN: SeqNo(sn % 4), FD: frac.MustNew(n, d)}
	}
	prop := func(a1 uint8, a2, a3 uint32, b1 uint8, b2, b3 uint32, c1 uint8, c2, c3 uint32) bool {
		x, y, z := mk(a1, a2, a3), mk(b1, b2, b3), mk(c1, c2, c3)
		if x.Precedes(x) {
			return false // irreflexive
		}
		if x.Precedes(y) && y.Precedes(x) {
			return false // asymmetric
		}
		if x.Precedes(y) && y.Precedes(z) && !x.Precedes(z) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBetweenProperty(t *testing.T) {
	mk := func(sn uint8, n, d uint32) Order {
		if d == 0 {
			d = 1
		}
		n %= 1000
		d %= 1000
		if d == 0 {
			d = 1
		}
		if n >= d {
			n, d = d, n+1
		}
		if n == 0 {
			return Order{SN: SeqNo(sn % 4), FD: frac.Zero}
		}
		return Order{SN: SeqNo(sn % 4), FD: frac.MustNew(n, d)}
	}
	prop := func(a1 uint8, a2, a3 uint32, b1 uint8, b2, b3 uint32) bool {
		x, y := mk(a1, a2, a3), mk(b1, b2, b3)
		if !x.Precedes(y) {
			return true
		}
		m, ok := Split(x, y)
		if !ok {
			return true
		}
		return x.Precedes(m) && m.Precedes(y)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := o(3, 1, 2).String(); s != "(3, 1/2)" {
		t.Errorf("String = %q", s)
	}
}

// Package label implements SRP's composite node ordering O = (sn, F): a
// 64-bit destination-controlled sequence number paired with a feasible
// distance proper fraction (Definitions 4–7 of the paper).
//
// The ordering criteria OC (Definition 5) define a strict partial order ≺:
//
//	O_A ≺ O_B  iff  sn_A < sn_B, or sn_A = sn_B and F_B < F_A
//
// which reads "B is a feasible in-order successor for A". A higher sequence
// number means a fresher route and supersedes all lower sequence numbers;
// within a sequence number, a smaller fraction is closer to the destination.
// An unassigned node has the maximum ordering (0, 1/1).
package label

import (
	"fmt"

	"slr/internal/frac"
)

// SeqNo is a destination-controlled sequence number. SRP uses a 64-bit
// timestamp-derived value so it never wraps within a node's lifetime and
// survives reboots (§III).
type SeqNo uint64

// Order is the composite label O = (sn, F).
type Order struct {
	SN SeqNo
	FD frac.F
}

// Unassigned is the maximum ordering (0, (1,1)) held by a node with no
// information about a destination (Definition 5).
var Unassigned = Order{SN: 0, FD: frac.One}

// Destination returns the self-label of a destination that booted with
// sequence number sn: (sn, (0,1)) per Definition 7.
func Destination(sn SeqNo) Order { return Order{SN: sn, FD: frac.Zero} }

// String renders the order as "(sn, m/n)".
func (o Order) String() string { return fmt.Sprintf("(%d, %s)", o.SN, o.FD) }

// IsUnassigned reports whether o is the maximum ordering.
func (o Order) IsUnassigned() bool { return o.SN == 0 && o.FD == frac.One }

// Finite reports whether the fraction component is strictly below 1/1
// (Definition 5: "an ordering (sn,(m,n)) is called finite if m/n < 1").
func (o Order) Finite() bool { return o.FD.Less(frac.One) }

// Precedes implements OC (Definition 5): o ≺ p, "p is a feasible in-order
// successor for o".
func (o Order) Precedes(p Order) bool {
	if o.SN != p.SN {
		return o.SN < p.SN
	}
	return p.FD.Less(o.FD)
}

// Equal reports label equality under numeric fraction comparison.
func (o Order) Equal(p Order) bool { return o.SN == p.SN && o.FD.Equal(p.FD) }

// Min returns the minimum ordering per Definition 5: p if o ≺ p, else o.
// "Minimum" is in the SLR label sense: since o ≺ p means p sits lower in the
// DAG (closer to the destination), Min returns the label nearer the
// destination. Relays use it to carry the minimum label seen along a
// request path (Eq. 10), mirroring SLR's M.
func Min(o, p Order) Order {
	if o.Precedes(p) {
		return p
	}
	return o
}

// Add implements ordering addition (Definition 6): O + p/q =
// (sn, (m+p, n+q)). ok is false on fraction overflow or when o is not
// finite in the fraction sense and the addition is meaningless.
func (o Order) Add(p frac.F) (Order, bool) {
	f, ok := frac.Add(o.FD, p)
	if !ok {
		return Order{}, false
	}
	return Order{SN: o.SN, FD: f}, true
}

// NextElement returns O + 1/1, the next-element used by Algorithm 1 line 5
// and by path resets. ok is false on overflow.
func (o Order) NextElement() (Order, bool) { return o.Add(frac.One) }

// Split returns an ordering strictly between o and p when o ≺ p, using the
// fraction mediant when the sequence numbers agree and next-element of p
// when they differ (the constructive density proof of Theorem 5). ok is
// false on fraction overflow or when o does not precede p.
func Split(o, p Order) (Order, bool) {
	if !o.Precedes(p) {
		return Order{}, false
	}
	if o.SN != p.SN {
		return p.NextElement()
	}
	// Same sequence number: p.FD < o.FD, mediant lies strictly between.
	f, ok := frac.Mediant(p.FD, o.FD)
	if !ok {
		return Order{}, false
	}
	return Order{SN: o.SN, FD: f}, true
}

package label_test

import (
	"fmt"

	"slr/internal/frac"
	"slr/internal/label"
)

// ExampleOrder_Precedes demonstrates the ordering criteria OC: a fresher
// sequence number always precedes, and within a sequence number a smaller
// fraction is closer to the destination.
func ExampleOrder_Precedes() {
	a := label.Order{SN: 1, FD: frac.MustNew(2, 3)}
	b := label.Order{SN: 1, FD: frac.MustNew(1, 2)}
	c := label.Order{SN: 2, FD: frac.MustNew(3, 4)}
	fmt.Println(a.Precedes(b)) // b is a feasible successor for a
	fmt.Println(b.Precedes(a))
	fmt.Println(a.Precedes(c)) // fresher seqno supersedes
	// Output:
	// true
	// false
	// true
}

// ExampleSplit inserts an ordering strictly between two others — the dense
// property that lets SRP repair routes without touching predecessors.
func ExampleSplit() {
	hi := label.Order{SN: 5, FD: frac.MustNew(2, 3)}
	lo := label.Order{SN: 5, FD: frac.MustNew(1, 2)}
	mid, _ := label.Split(hi, lo)
	fmt.Println(mid, hi.Precedes(mid) && mid.Precedes(lo))
	// Output: (5, 3/5) true
}
